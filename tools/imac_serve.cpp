// imac_serve: the fault-tolerant distributed sweep orchestrator daemon.
// See src/serve/daemon.h for the orchestration model and
// src/serve/protocol.h for the wire format; workers are `imac_run worker`.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/error.h"
#include "serve/daemon.h"

namespace {

std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: imac_serve --spec spec.json --store DIR [options]\n"
               "\n"
               "Serves one sweep spec to `imac_run worker` processes over TCP\n"
               "(127.0.0.1): workers lease grid points, results are journaled to\n"
               "DIR/results.journal BEFORE they are acknowledged, expired leases are\n"
               "re-leased to live workers, and when the grid is fully journaled the\n"
               "canonical report — byte-identical to `imac_run sweep` of the same\n"
               "spec — is written and the daemon exits 0. A spec already covered by\n"
               "the store is served straight from the journal (\"0 new\n"
               "simulations\") without opening a port.\n"
               "\n"
               "options:\n"
               "  --spec FILE      sweep spec JSON (required)\n"
               "  --store DIR      persistent result journal (required)\n"
               "  --out FILE       write the final report here (default stdout)\n"
               "  --format F       report format: csv (default) | json\n"
               "  --port N         listen port (default 0 = kernel-assigned)\n"
               "  --port-file F    write the bound port to F (harness handshake)\n"
               "  --lease-ms N     lease deadline: a lease with no heartbeat or\n"
               "                   result for N ms is re-queued (default 5000)\n"
               "  --batch N        points granted per lease (default 4)\n"
               "  --fsync          fsync the journal after every record (records\n"
               "                   survive power loss, not just process death)\n"
               "  --progress-ms N  progress/ETA stream interval (default 1000)\n"
               "  --grace-ms N     post-completion window answering \"complete\" to\n"
               "                   late workers (default 500)\n"
               "  --wall-ms N      abort (exit 3) after N ms; 0 = unlimited\n"
               "  -h, --help       show this help and exit\n"
               "\n"
               "SIGINT/SIGTERM stop gracefully: no new leases, in-flight results\n"
               "still journal, then exit 130 with a resume hint (rerun with the\n"
               "same --store; already-journaled points are never re-simulated).\n");
}

std::uint64_t parse_u64_flag(const char* flag, const char* text) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno != 0)
    indexmac::raise(std::string("imac_serve: ") + flag + " expects an unsigned integer, got \"" +
                    text + "\"");
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace indexmac;
  serve::ServeOptions opts;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    }
  }
  try {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) opts.spec_path = argv[++i];
      else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) opts.store_dir = argv[++i];
      else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) opts.out_path = argv[++i];
      else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc)
        opts.port = static_cast<std::uint16_t>(parse_u64_flag("--port", argv[++i]));
      else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc)
        opts.port_file = argv[++i];
      else if (std::strcmp(argv[i], "--lease-ms") == 0 && i + 1 < argc)
        opts.scheduler.lease_ms = parse_u64_flag("--lease-ms", argv[++i]);
      else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc)
        opts.scheduler.batch = static_cast<std::uint32_t>(parse_u64_flag("--batch", argv[++i]));
      else if (std::strcmp(argv[i], "--fsync") == 0)
        opts.durability = core::Durability::kFsyncEach;
      else if (std::strcmp(argv[i], "--progress-ms") == 0 && i + 1 < argc)
        opts.progress_ms = parse_u64_flag("--progress-ms", argv[++i]);
      else if (std::strcmp(argv[i], "--grace-ms") == 0 && i + 1 < argc)
        opts.grace_ms = parse_u64_flag("--grace-ms", argv[++i]);
      else if (std::strcmp(argv[i], "--wall-ms") == 0 && i + 1 < argc)
        opts.wall_ms = parse_u64_flag("--wall-ms", argv[++i]);
      else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
        const char* fmt = argv[++i];
        if (std::strcmp(fmt, "json") == 0) opts.json = true;
        else if (std::strcmp(fmt, "csv") == 0) opts.json = false;
        else {
          std::fprintf(stderr, "imac_serve: unknown format %s (csv|json)\n", fmt);
          return 2;
        }
      } else {
        usage(stderr);
        return 2;
      }
    }
    if (opts.spec_path.empty() || opts.store_dir.empty()) {
      std::fprintf(stderr, "imac_serve: --spec and --store are required\n");
      return 2;
    }
    if (opts.scheduler.batch == 0) {
      std::fprintf(stderr, "imac_serve: --batch must be at least 1\n");
      return 2;
    }
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    opts.stop = &g_stop;
    return serve::run_daemon(opts);
  } catch (const SimError& e) {
    std::fprintf(stderr, "imac_serve: %s\n", e.what());
    return 1;
  }
}
