#!/usr/bin/env python3
"""Unit tests for check_throughput.compare (stdlib only).

Regression coverage for two bugs the original script shipped with:
  * scenarios present only in the current report were silently skipped
    (the loop iterated the baseline), so newly added benchmarks were
    never guarded — now they warn until the baseline is bumped;
  * a baseline entry with mips == 0 crashed with ZeroDivisionError —
    now it warns about the malformed entry instead.
"""

import unittest

import check_throughput


def report(scenarios, sweep=None):
    doc = {"schema": "indexmac-sim-throughput-v1",
           "scenarios": [{"name": n, "mips": m} for n, m in scenarios]}
    if sweep is not None:
        doc["canonical_sweep_seconds"] = sweep
    return doc


class CompareTest(unittest.TestCase):
    def test_no_warnings_when_within_threshold(self):
        lines, warnings = check_throughput.compare(
            report([("a", 95.0), ("b", 210.0)]),
            report([("a", 100.0), ("b", 200.0)]), max_drop=20.0)
        self.assertEqual(warnings, 0)
        self.assertFalse(any(l.startswith("::warning::") for l in lines))

    def test_regression_warns(self):
        lines, warnings = check_throughput.compare(
            report([("a", 50.0)]), report([("a", 100.0)]), max_drop=20.0)
        self.assertEqual(warnings, 1)
        self.assertTrue(any("regression: a at 50.00 MIPS" in l for l in lines))

    def test_current_missing_scenario_warns(self):
        _, warnings = check_throughput.compare(
            report([]), report([("a", 100.0)]), max_drop=20.0)
        self.assertEqual(warnings, 1)

    def test_current_only_scenario_warns_instead_of_silent_skip(self):
        # The original script iterated baseline.items() only: a scenario
        # added to the bench but not yet to the baseline JSON vanished
        # from the comparison entirely. It must surface as a warning.
        lines, warnings = check_throughput.compare(
            report([("a", 100.0), ("new_scenario", 42.0)]),
            report([("a", 100.0)]), max_drop=20.0)
        self.assertEqual(warnings, 1)
        self.assertTrue(any("'new_scenario' has no baseline entry" in l for l in lines))
        # The scenario still appears in the table, not just the annotation.
        self.assertTrue(any(l.startswith("new_scenario") and "42.00" in l for l in lines))

    def test_zero_mips_baseline_warns_instead_of_crashing(self):
        # The original script divided by base["mips"]: a zero entry (e.g.
        # a truncated or hand-edited baseline) raised ZeroDivisionError.
        lines, warnings = check_throughput.compare(
            report([("a", 100.0)]), report([("a", 0.0)]), max_drop=20.0)
        self.assertEqual(warnings, 1)
        self.assertTrue(any("delta undefined" in l for l in lines))

    def test_union_order_is_baseline_then_current_only(self):
        lines, _ = check_throughput.compare(
            report([("x", 1.0), ("c_only", 2.0)]),
            report([("b1", 1.0), ("b2", 1.0)]), max_drop=20.0)
        rows = [l.split()[0] for l in lines[1:]
                if not l.startswith("::warning::") and not l.endswith("warning(s)")]
        self.assertEqual(rows, ["b1", "b2", "x", "c_only"])

    def test_sweep_seconds_rendered(self):
        lines, _ = check_throughput.compare(
            report([("a", 100.0)], sweep=1.25), report([("a", 100.0)]), max_drop=20.0)
        self.assertTrue(any(l.startswith("tiny_sweep") and "1.2500s" in l for l in lines))


if __name__ == "__main__":
    unittest.main()
