#!/usr/bin/env python3
"""Compare a sim_throughput report against the checked-in baseline.

Usage: check_throughput.py CURRENT.json BASELINE.json [--max-drop PCT]

Prints a per-scenario table and emits a GitHub Actions ::warning
annotation for every scenario whose MIPS dropped more than --max-drop
percent (default 20) below the baseline. Scenarios are compared over the
union of both reports: a scenario missing from the current run warns
(coverage lost), and a scenario missing from the baseline warns too — a
newly added scenario is unguarded until the baseline file is bumped, and
the old behaviour of silently skipping it meant regressions in new
scenarios could never fire. A baseline entry with zero/negative MIPS is
malformed (a percent delta against it is undefined) and warns instead of
dividing by zero. Always exits 0: the check is a soft gate — CI hardware
varies, so regressions warn rather than fail, and the uploaded
BENCH_sim_throughput.json artifact carries the numbers.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return doc


def scenario_map(doc):
    return {s["name"]: s for s in doc.get("scenarios", [])}


def compare(current_doc, baseline_doc, max_drop):
    """Compares the two parsed reports. Returns (lines, warnings): the
    table/annotation output as a list of strings, and the warning count.
    Pure function of its inputs so tests can drive it without files."""
    current = scenario_map(current_doc)
    baseline = scenario_map(baseline_doc)

    lines = []
    warnings = 0

    def warn(message):
        nonlocal warnings
        lines.append(f"::warning::{message}")
        warnings += 1

    lines.append(f"{'scenario':<20} {'baseline':>10} {'current':>10} {'delta':>8}")
    # Union of both reports, baseline order first, then current-only
    # scenarios in report order.
    names = list(baseline) + [n for n in current if n not in baseline]
    for name in names:
        base = baseline.get(name)
        cur = current.get(name)
        if cur is None:
            lines.append(f"{name:<20} {base['mips']:>10.2f} {'missing':>10}")
            warn(f"sim_throughput scenario '{name}' missing from current run")
            continue
        if base is None:
            lines.append(f"{name:<20} {'missing':>10} {cur['mips']:>10.2f}")
            warn(f"sim_throughput scenario '{name}' has no baseline entry "
                 f"(bump bench/sim_throughput_baseline.json to guard it)")
            continue
        if base["mips"] <= 0:
            lines.append(f"{name:<20} {base['mips']:>10.2f} {cur['mips']:>10.2f}")
            warn(f"sim_throughput baseline for '{name}' is {base['mips']:.2f} MIPS; "
                 f"delta undefined (malformed baseline entry?)")
            continue
        delta = (cur["mips"] - base["mips"]) / base["mips"] * 100.0
        lines.append(f"{name:<20} {base['mips']:>10.2f} {cur['mips']:>10.2f} {delta:>+7.1f}%")
        if delta < -max_drop:
            warn(f"sim_throughput regression: {name} at {cur['mips']:.2f} MIPS, "
                 f"{-delta:.1f}% below the {base['mips']:.2f} MIPS baseline "
                 f"(threshold {max_drop:.0f}%)")
    sweep = current_doc.get("canonical_sweep_seconds")
    if sweep is not None:
        lines.append(f"{'tiny_sweep':<20} {'':>10} {sweep:>9.4f}s")
    lines.append(f"{warnings} warning(s)")
    return lines, warnings


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--max-drop", type=float, default=20.0,
                        help="warn when MIPS drops more than this percent")
    args = parser.parse_args()

    lines, _ = compare(load(args.current), load(args.baseline), args.max_drop)
    for line in lines:
        print(line)
    return 0


if __name__ == "__main__":
    sys.exit(main())
