#!/usr/bin/env python3
"""Compare a sim_throughput report against the checked-in baseline.

Usage: check_throughput.py CURRENT.json BASELINE.json [--max-drop PCT]

Prints a per-scenario table and emits a GitHub Actions ::warning
annotation for every scenario whose MIPS dropped more than --max-drop
percent (default 20) below the baseline. Always exits 0: the check is a
soft gate — CI hardware varies, so regressions warn rather than fail,
and the uploaded BENCH_sim_throughput.json artifact carries the numbers.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    return {s["name"]: s for s in doc.get("scenarios", [])}, doc


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--max-drop", type=float, default=20.0,
                        help="warn when MIPS drops more than this percent")
    args = parser.parse_args()

    current, current_doc = load(args.current)
    baseline, _ = load(args.baseline)

    warnings = 0
    print(f"{'scenario':<16} {'baseline':>10} {'current':>10} {'delta':>8}")
    for name, base in baseline.items():
        cur = current.get(name)
        if cur is None:
            print(f"{name:<16} {base['mips']:>10.2f} {'missing':>10}")
            print(f"::warning::sim_throughput scenario '{name}' missing from current run")
            warnings += 1
            continue
        delta = (cur["mips"] - base["mips"]) / base["mips"] * 100.0
        print(f"{name:<16} {base['mips']:>10.2f} {cur['mips']:>10.2f} {delta:>+7.1f}%")
        if delta < -args.max_drop:
            print(f"::warning::sim_throughput regression: {name} at {cur['mips']:.2f} MIPS, "
                  f"{-delta:.1f}% below the {base['mips']:.2f} MIPS baseline "
                  f"(threshold {args.max_drop:.0f}%)")
            warnings += 1
    sweep = current_doc.get("canonical_sweep_seconds")
    if sweep is not None:
        print(f"{'tiny_sweep':<16} {'':>10} {sweep:>9.4f}s")
    print(f"{warnings} warning(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
