#!/usr/bin/env python3
"""GDB remote-serial-protocol client for the imac_run gdb stub (stdlib only).

Library half: RspClient speaks enough RSP to drive the stub — packet
framing/checksums/acks, QStartNoAckMode, register/memory access, software
breakpoints, continue/step, and qRcmd ("monitor") commands.

Script half (python3 rsp_client.py --run IMAC_RUN --program FILE.S): the
end-to-end test behind ctest's test_gdb_e2e. For each engine (interp,
threaded) it launches `imac_run gdb`, sets a breakpoint at the program's
`marker 1` pc (found via `monitor markers`), continues to it, single-steps
3 instructions, and then asserts that every x-register, pc, and vl are
bit-identical to a plain `imac_run run --max-steps N --dump-regs` of the
same program stopped at the same instruction count — the stub must observe
execution, never perturb it. Memory reads check the program's self-built
operand arrays; an M/m round-trip checks writes; a final continue must
report the program exit (W00) with the correct kernel result in memory.
Both engines must agree with each other bit-for-bit as well.
"""

import argparse
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

# ---------------------------------------------------------------------------
# library


def checksum(data: bytes) -> int:
    return sum(data) % 256


def escape(payload: bytes) -> bytes:
    out = bytearray()
    for b in payload:
        if b in b"$#}*":
            out += bytes((0x7D, b ^ 0x20))
        else:
            out.append(b)
    return bytes(out)


def unescape(data: bytes) -> bytes:
    out = bytearray()
    i = 0
    while i < len(data):
        if data[i] == 0x7D:
            i += 1
            out.append(data[i] ^ 0x20)
        else:
            out.append(data[i])
        i += 1
    return bytes(out)


class RspError(Exception):
    pass


class RspClient:
    """One RSP connection. Methods raise RspError on protocol violations."""

    def __init__(self, host: str, port: int, timeout: float = 30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)
        self.sock.settimeout(timeout)
        self.buf = bytearray()
        self.no_ack = False

    def close(self):
        self.sock.close()

    # --- packet transport

    def _recv_more(self):
        chunk = self.sock.recv(4096)
        if not chunk:
            raise RspError("stub closed the connection")
        self.buf += chunk

    def _read_byte(self) -> int:
        while not self.buf:
            self._recv_more()
        b = self.buf[0]
        del self.buf[0]
        return b

    def _read_packet(self) -> bytes:
        """Reads one $...#xx frame (skipping acks), verifies, acks it."""
        while True:
            b = self._read_byte()
            if b == ord("$"):
                break
            if b in (ord("+"), ord("-")):
                continue  # stray ack/nak outside send()
        body = bytearray()
        while True:
            b = self._read_byte()
            if b == ord("#"):
                break
            body.append(b)
        sum_text = bytes((self._read_byte(), self._read_byte()))
        if int(sum_text, 16) != checksum(body):
            raise RspError(f"bad checksum from stub on {bytes(body)!r}")
        if not self.no_ack:
            self.sock.sendall(b"+")
        return unescape(bytes(body))

    def send(self, payload: bytes) -> bytes:
        """Sends one packet and returns the stub's reply payload."""
        esc = escape(payload)
        frame = b"$" + esc + b"#" + b"%02x" % checksum(esc)
        self.sock.sendall(frame)
        if not self.no_ack:
            while True:
                b = self._read_byte()
                if b == ord("+"):
                    break
                if b == ord("-"):
                    self.sock.sendall(frame)  # retransmit request
                # anything else: line noise before the ack
        return self._read_packet()

    def cmd(self, text: str) -> str:
        return self.send(text.encode()).decode()

    # --- session helpers

    def handshake(self) -> str:
        features = self.cmd("qSupported:swbreak+")
        if "qXfer:features:read+" not in features:
            raise RspError(f"stub lacks qXfer:features:read: {features!r}")
        if self.cmd("QStartNoAckMode") != "OK":
            raise RspError("QStartNoAckMode refused")
        self.no_ack = True
        return features

    def target_xml(self) -> str:
        xml, offset = "", 0
        while True:
            reply = self.cmd(f"qXfer:features:read:target.xml:{offset:x},800")
            if not reply or reply[0] not in "ml":
                raise RspError(f"bad qXfer reply {reply!r}")
            xml += reply[1:]
            offset += len(reply) - 1
            if reply[0] == "l":
                return xml

    def read_reg(self, regnum: int) -> str:
        """Raw little-endian hex of one register."""
        reply = self.cmd(f"p{regnum:x}")
        if not reply or reply.startswith("E"):
            raise RspError(f"p{regnum:x} -> {reply!r}")
        return reply

    def read_reg_u64(self, regnum: int) -> int:
        return int.from_bytes(bytes.fromhex(self.read_reg(regnum)), "little")

    def write_reg(self, regnum: int, hex_le: str):
        if self.cmd(f"P{regnum:x}={hex_le}") != "OK":
            raise RspError(f"P{regnum:x} refused")

    def read_all_regs(self) -> str:
        reply = self.cmd("g")
        if not reply or reply.startswith("E"):
            raise RspError(f"g -> {reply!r}")
        return reply

    def read_mem(self, addr: int, length: int) -> bytes:
        reply = self.cmd(f"m{addr:x},{length:x}")
        if not reply or reply.startswith("E"):
            raise RspError(f"m{addr:x},{length:x} -> {reply!r}")
        return bytes.fromhex(reply)

    def write_mem(self, addr: int, data: bytes):
        if self.cmd(f"M{addr:x},{len(data):x}:{data.hex()}") != "OK":
            raise RspError(f"M{addr:x} refused")

    def set_bp(self, addr: int):
        if self.cmd(f"Z0,{addr:x},4") != "OK":
            raise RspError(f"Z0 at {addr:#x} refused")

    def clear_bp(self, addr: int):
        if self.cmd(f"z0,{addr:x},4") != "OK":
            raise RspError(f"z0 at {addr:#x} refused")

    def cont(self) -> str:
        return self.cmd("c")

    def step(self) -> str:
        return self.cmd("s")

    def monitor(self, command: str) -> str:
        reply = self.send(b"qRcmd," + command.encode().hex().encode())
        return bytes.fromhex(reply.decode()).decode()

    def kill(self):
        """Sends 'k' (no reply expected) and closes."""
        esc = escape(b"k")
        self.sock.sendall(b"$" + esc + b"#" + b"%02x" % checksum(esc))
        self.close()


# ---------------------------------------------------------------------------
# end-to-end test


PC_REGNUM = 32
VL_REGNUM = 97
STEPS_PAST_BP = 3


def fail(msg: str):
    print(f"FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check(cond: bool, msg: str):
    if not cond:
        fail(msg)


def launch_stub(run_bin: str, program: str, engine: str, workdir: str):
    """Starts `imac_run gdb`, waits for the port file, returns (proc, port)."""
    port_file = os.path.join(workdir, f"port.{engine}")
    proc = subprocess.Popen(
        [run_bin, "gdb", program, "--port", "0", "--port-file", port_file,
         "--engine", engine],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        try:
            with open(port_file) as f:
                port = int(f.read().strip())
            if port > 0:
                return proc, port
        except (FileNotFoundError, ValueError):
            pass
        check(proc.poll() is None, f"stub exited early (engine {engine})")
        time.sleep(0.05)
    fail(f"no port file after 30s (engine {engine})")


def reference_regs(run_bin: str, program: str, engine: str, max_steps: int):
    """x-registers and vl from a plain fsim run stopped at max_steps."""
    out = subprocess.run(
        [run_bin, "run", "--engine", engine, "--max-steps", str(max_steps),
         "--dump-regs", program],
        capture_output=True, text=True, check=True).stdout
    regs = {}
    for m in re.finditer(r"x(\d+)\s*=([0-9a-f]+)", out):
        regs[int(m.group(1))] = int(m.group(2), 16)
    check(len(regs) == 32, f"reference dump parsed {len(regs)} x-regs, want 32")
    vl = re.search(r"vl=(\d+)", out)
    check(vl is not None, "reference dump has no vl")
    return regs, int(vl.group(1))


def drive_session(run_bin: str, program: str, engine: str, workdir: str):
    """Runs the full debug scenario on one engine; returns the final reg file
    hex (for the cross-engine comparison)."""
    proc, port = launch_stub(run_bin, program, engine, workdir)
    client = None
    try:
        client = RspClient("127.0.0.1", port)
        client.handshake()

        xml = client.target_xml()
        for needle in ('name="x31"', 'name="pc"', 'name="v31"', 'name="vl"',
                       "riscv:rv64"):
            check(needle in xml, f"target.xml lacks {needle}")
        check(client.monitor("engine").strip() == engine,
              f"monitor engine != {engine}")

        # Find the marker pc and the program's labels.
        markers = dict(
            (int(m.group(1)), int(m.group(2), 16))
            for m in re.finditer(r"marker (\d+) 0x([0-9a-f]+)",
                                 client.monitor("markers")))
        check(1 in markers, "monitor markers lacks marker 1")
        bp = markers[1]
        check("loop" in client.monitor("symbols"), "monitor symbols lacks 'loop'")

        # Breakpoint at the marker, continue to it.
        client.set_bp(bp)
        stop = client.cont()
        check(stop.startswith("T05") or stop == "S05",
              f"continue to breakpoint -> {stop!r}")
        check(client.read_reg_u64(PC_REGNUM) == bp,
              f"stopped pc != marker pc {bp:#x}")
        retired = int(client.monitor("retired").strip())
        check(retired > 0, "no instructions retired before the marker")

        # The sentinel the program set right before the marker.
        check(client.read_reg_u64(27) == 0xBEEF, "x27 sentinel != 0xbeef at bp")

        # Memory the program built before the marker: B row 0 at 0x8000.
        row0 = client.read_mem(0x8000, 64)
        want = b"".join((100 + j).to_bytes(4, "little") for j in range(16))
        check(row0 == want, "B row 0 bytes mismatch at the breakpoint")

        # Single-step through the breakpointed (fusable) block.
        for i in range(STEPS_PAST_BP):
            stop = client.step()
            check(stop == "S05", f"step {i} -> {stop!r}")
        check(int(client.monitor("retired").strip()) == retired + STEPS_PAST_BP,
              "retired count off after stepping")

        # Bit-identical to a plain run stopped at the same instruction count.
        ref_x, ref_vl = reference_regs(run_bin, program, engine,
                                       retired + STEPS_PAST_BP)
        for r in range(32):
            got = client.read_reg_u64(r)
            check(got == ref_x[r],
                  f"x{r} = {got:#x}, plain run has {ref_x[r]:#x}")
        check(client.read_reg_u64(VL_REGNUM) == ref_vl, "vl mismatch")

        # P/p round-trip on a dead register, restoring it after.
        old = client.read_reg(28)
        client.write_reg(28, "efbeaddeefbeadde")
        check(client.read_reg(28) == "efbeaddeefbeadde", "P/p round-trip failed")
        client.write_reg(28, old)

        # M/m round-trip on scratch memory the program never touches.
        blob = bytes(range(48))
        client.write_mem(0xA000, blob)
        check(client.read_mem(0xA000, len(blob)) == blob, "M/m round-trip failed")

        # g file at the stop point (cross-engine comparison artifact).
        regfile = client.read_all_regs()

        # Run to completion and check the kernel's result.
        client.clear_bp(bp)
        stop = client.cont()
        check(stop == "W00", f"final continue -> {stop!r}")
        c_row = client.read_mem(0x9000, 64)
        want = b"".join((1800 + 8 * j).to_bytes(4, "little") for j in range(16))
        check(c_row == want, "kernel result C row mismatch after W00")

        client.kill()
        client = None
        check(proc.wait(timeout=30) == 0, "stub exit code != 0 after kill")
        proc = None
        return regfile
    finally:
        if client is not None:
            client.close()
        if proc is not None:
            proc.kill()
            proc.wait()


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--run", required=True, help="path to the imac_run binary")
    ap.add_argument("--program", required=True, help="path to debug_demo.s")
    args = ap.parse_args()

    with tempfile.TemporaryDirectory(prefix="imac_gdb_") as workdir:
        regfiles = {}
        for engine in ("interp", "threaded"):
            regfiles[engine] = drive_session(args.run, args.program, engine,
                                             workdir)
            print(f"engine {engine}: debug session OK")
        check(regfiles["interp"] == regfiles["threaded"],
              "register files differ between interp and threaded at the stop")
    print("PASS: gdb stub end-to-end (both engines, bit-identical)")


if __name__ == "__main__":
    main()
