#!/usr/bin/env python3
"""Generates a tiny synthetic N:M-pruned checkpoint for the model importer.

Stdlib-only (json + struct): writes a model.json manifest plus one IMACTNSR
tensor blob per layer (see src/workloads/model_import.h for the format).
Weights are exactly N:M pruned — every M-aligned column block keeps at most
N nonzeros (partial tail blocks keep min(N, width)) — with deterministic
nonzero values bounded away from zero, so the importer's measured density
and conformity have closed-form ground truth. Prints that ground truth as
JSON on stdout for the calling check to compare against `imac_run
import-model --json`.

Usage: make_synthetic_checkpoint.py OUT_DIR
"""

import json
import struct
import sys

MAGIC = b"IMACTNSR"
VERSION = 1
DTYPE_F32 = 0
DTYPE_F16 = 1

# (name, kind, geometry, repeat, sparsity "N:M", dtype). Shapes are
# CI-sized: exact-mode sweepable in seconds, tail blocks (k % M != 0) and
# both dtypes covered.
LAYERS = [
    {
        "name": "conv1",
        "kind": "conv",
        "out_channels": 8,
        "in_channels": 4,
        "kernel_h": 3,
        "kernel_w": 3,
        "stride": 1,
        "pad_h": 1,
        "pad_w": 1,
        "in_h": 6,
        "in_w": 6,
        "sparsity": "2:4",
        "dtype": DTYPE_F32,
        "weights_shape": (8, 4 * 3 * 3),
    },
    {
        "name": "dw1",
        "kind": "depthwise",
        "channels": 8,
        "kernel_h": 3,
        "kernel_w": 3,
        "stride": 1,
        "pad_h": 1,
        "pad_w": 1,
        "in_h": 6,
        "in_w": 6,
        "sparsity": "2:4",
        "dtype": DTYPE_F16,  # 9 cols: a partial tail block, f16 decode path
        "weights_shape": (8, 3 * 3),
    },
    {
        "name": "fc1",
        "kind": "linear",
        "out_features": 16,
        "in_features": 64,
        "tokens": 24,
        "repeat": 2,
        "sparsity": "2:4",
        "dtype": DTYPE_F32,
        "weights_shape": (16, 64),
    },
    {
        "name": "attn1",
        "kind": "attention-proj",
        "out_features": 16,
        "in_features": 32,
        "tokens": 8,
        "sparsity": "1:4",
        "dtype": DTYPE_F32,
        "weights_shape": (16, 32),
    },
]


def pruned_weights(rows, cols, n, m, seed):
    """Exact N:M weights with a deterministic stdlib PRNG-free pattern.

    Block b of row r keeps nonzeros at columns (r + b) % width, (r + b + 1)
    % width, ... — n of them (or the block width if smaller) — with values
    in [0.25, 1.0], representable exactly in f16 (k/64 grid) so the f16
    round trip cannot create or destroy zeros.
    """
    mat = [[0.0] * cols for _ in range(rows)]
    nnz = 0
    for r in range(rows):
        for b in range((cols + m - 1) // m):
            c0 = b * m
            width = min(m, cols - c0)
            keep = min(n, width)
            for j in range(keep):
                c = c0 + (r + b + j * 2 + seed) % width
                if mat[r][c] == 0.0:
                    mat[r][c] = 0.25 + ((r * 31 + c * 7 + seed) % 48) / 64.0
            nnz += sum(1 for c in range(c0, c0 + width) if mat[r][c] != 0.0)
    return mat, nnz


def write_tensor(path, mat, dtype):
    rows, cols = len(mat), len(mat[0])
    flat = [v for row in mat for v in row]
    with open(path, "wb") as f:
        f.write(MAGIC)
        f.write(struct.pack("<IIQQ", VERSION, dtype, rows, cols))
        fmt = "<%d%s" % (len(flat), "f" if dtype == DTYPE_F32 else "e")
        f.write(struct.pack(fmt, *flat))


def main():
    if len(sys.argv) != 2:
        sys.exit("usage: make_synthetic_checkpoint.py OUT_DIR")
    out_dir = sys.argv[1]
    import os

    os.makedirs(out_dir, exist_ok=True)

    manifest = {
        "format": "imac-model/v1",
        "name": "synth24",
        "display_name": "Synth-2:4",
        "description": "synthetic 2:4-pruned checkpoint (CI model-import job)",
        "sparsities": ["2:4"],
        "layers": [],
    }
    truth = {"name": "synth24", "layers": []}
    for seed, spec in enumerate(LAYERS):
        rows, cols = spec["weights_shape"]
        n, m = (int(x) for x in spec["sparsity"].split(":"))
        mat, nnz = pruned_weights(rows, cols, n, m, seed)
        tensor = spec["name"] + ".tensor"
        write_tensor(os.path.join(out_dir, tensor), mat, spec["dtype"])
        entry = {
            k: v for k, v in spec.items() if k not in ("dtype", "weights_shape")
        }
        entry["weights"] = tensor
        manifest["layers"].append(entry)
        truth["layers"].append(
            {
                "name": spec["name"],
                "density": nnz / (rows * cols),
                # Construction keeps every aligned block at <= N nonzeros.
                "nm_conformity": 1.0,
            }
        )

    with open(os.path.join(out_dir, "model.json"), "w") as f:
        json.dump(manifest, f, indent=2)
        f.write("\n")
    json.dump(truth, sys.stdout, indent=2)
    print()


if __name__ == "__main__":
    main()
