#!/usr/bin/env python3
"""Generates docs/cli.md from the binaries' own --help output (stdlib only).

The CLI help text in tools/imac_run.cpp (the SubcommandDoc table) and
tools/imac_serve.cpp is the single source of truth for flag documentation;
this script captures it into a reviewable markdown page. Run it after
changing any --help text:

    python3 tools/gen_cli_docs.py --run build/tools/imac_run \
        --serve build/tools/imac_serve --out docs/cli.md

With --check, the file is regenerated in memory and compared to the
checked-in copy instead; a mismatch exits 1 with a diff hint. ctest's
test_cli_docs and the CI docs-freshness job both run the check, so a help
edit that forgets to regenerate docs/cli.md fails fast.
"""

import argparse
import difflib
import re
import subprocess
import sys

HEADER = """\
<!-- GENERATED FILE - DO NOT EDIT BY HAND.
     Regenerate with:
       python3 tools/gen_cli_docs.py --run <imac_run> --serve <imac_serve> --out docs/cli.md
     The source of truth is the --help text in tools/imac_run.cpp and
     tools/imac_serve.cpp; ctest (test_cli_docs) and CI (docs-freshness)
     fail when this file is stale. -->

# Command-line reference

Captured verbatim from `imac_run <subcommand> --help` and
`imac_serve --help`. See [architecture.md](architecture.md) for how the
pieces fit together and [formats.md](formats.md) for the on-disk and wire
formats these commands produce.
"""


def capture(argv):
    """Runs a --help invocation and returns its stdout (must exit 0)."""
    proc = subprocess.run(argv, capture_output=True, text=True)
    if proc.returncode != 0:
        raise SystemExit(f"gen_cli_docs: {' '.join(argv)} exited {proc.returncode}:\n"
                         f"{proc.stderr}")
    return proc.stdout


def subcommand_names(run_help: str):
    """Parses the summary list of `imac_run --help` ("  name  brief" lines
    between "subcommands:" and the next blank line)."""
    names = []
    in_list = False
    for line in run_help.splitlines():
        if line.strip() == "subcommands:":
            in_list = True
            continue
        if in_list:
            m = re.match(r"  (\S+)\s{2,}\S", line)
            if m is None:
                break
            names.append(m.group(1))
    if not names:
        raise SystemExit("gen_cli_docs: no subcommands found in imac_run --help")
    return names


def render(run_bin: str, serve_bin: str) -> str:
    run_help = capture([run_bin, "--help"])
    out = [HEADER]

    out.append("\n## imac_run\n")
    out.append("```text\n")
    # The summary block only — each subcommand's full help follows.
    summary_end = run_help.index("\n\n", run_help.index("subcommands:"))
    out.append(run_help[: summary_end + 1])
    out.append("```\n")
    for name in subcommand_names(run_help):
        out.append(f"\n### imac_run {name}\n\n```text\n")
        help_text = capture([run_bin, name, "--help"])
        # Drop the generic "usage:" preamble; the section heading names it.
        body = help_text.split("\n\n", 1)[1] if "\n\n" in help_text else help_text
        out.append(body)
        out.append("```\n")

    out.append("\n## imac_serve\n\n```text\n")
    out.append(capture([serve_bin, "--help"]))
    out.append("```\n")
    return "".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--run", required=True, help="path to the imac_run binary")
    ap.add_argument("--serve", required=True, help="path to the imac_serve binary")
    ap.add_argument("--out", required=True, help="path to docs/cli.md")
    ap.add_argument("--check", action="store_true",
                    help="compare instead of write; exit 1 when stale")
    args = ap.parse_args()

    rendered = render(args.run, args.serve)
    if args.check:
        try:
            with open(args.out, encoding="utf-8") as f:
                on_disk = f.read()
        except FileNotFoundError:
            on_disk = ""
        if on_disk != rendered:
            diff = "".join(difflib.unified_diff(
                on_disk.splitlines(keepends=True),
                rendered.splitlines(keepends=True),
                fromfile=f"{args.out} (checked in)",
                tofile=f"{args.out} (regenerated)"))
            sys.stderr.write(diff)
            sys.stderr.write(
                f"\ngen_cli_docs: {args.out} is stale; regenerate it:\n"
                f"  python3 tools/gen_cli_docs.py --run <imac_run> "
                f"--serve <imac_serve> --out {args.out}\n")
            return 1
        print(f"gen_cli_docs: {args.out} is up to date")
        return 0

    with open(args.out, "w", encoding="utf-8") as f:
        f.write(rendered)
    print(f"gen_cli_docs: wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
