#!/usr/bin/env python3
"""Deterministic fault-injection harness for the imac_serve orchestrator.

Runs one daemon plus three workers on a sweep spec and scripts three
failures against them. The workers enter one at a time and every
injection is gated on an OBSERVED event (a process death, a log line),
never a timer, so the scenario replays identically however fast the
simulations are:

  * w0 joins alone and self-SIGKILLs after delivering exactly 2 results
    (the worker's --chaos-kill-after hook: a crash with no goodbye,
    mid-lease — the daemon must re-queue its unfinished lease);
  * w2 joins next with a scripted heartbeat stall after its first
    result; the harness waits until the stall is underway, then SIGKILLs
    w2 from outside — a second crash, taken while provably holding a
    leased batch;
  * w1 joins last, drops its connection halfway through a result frame
    and later stalls past the lease deadline (--chaos-drop-after /
    --chaos-stall-after), reconnects with backoff, and must finish the
    entire remaining grid alone.

The harness then asserts the two contracts that make the machinery
trustworthy:

  1. the merged report is byte-identical to a single-process
     `imac_run sweep` of the same spec (or a supplied golden file);
  2. re-running the daemon over the same store completes with
     "0 new simulations" — the journal, not the grid, answers.

Exit code 0 on success; nonzero with a diagnostic on any violation.
Stdlib only.
"""

import argparse
import filecmp
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

DAEMON_TIMEOUT_S = 150
WORKER_TIMEOUT_S = 150


def fail(message: str) -> None:
    print(f"chaos_sweep: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def wait_checked(proc: subprocess.Popen, name: str, timeout: float) -> int:
    try:
        return proc.wait(timeout=timeout)
    except subprocess.TimeoutExpired:
        proc.kill()
        fail(f"{name} did not exit within {timeout}s")
        raise  # unreachable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--serve", required=True, help="path to the imac_serve binary")
    parser.add_argument("--run", required=True, help="path to the imac_run binary")
    parser.add_argument("--spec", required=True, help="sweep spec JSON file")
    parser.add_argument("--golden", help="expected report CSV; default: run "
                                         "a single-process sweep and use its output")
    parser.add_argument("--workdir", help="working directory (default: a fresh tempdir)")
    parser.add_argument("--lease-ms", type=int, default=1500)
    parser.add_argument("--batch", type=int, default=3)
    parser.add_argument("--keep", action="store_true",
                        help="keep the workdir for postmortems")
    args = parser.parse_args()

    workdir = Path(args.workdir) if args.workdir else Path(tempfile.mkdtemp(prefix="chaos_sweep_"))
    workdir.mkdir(parents=True, exist_ok=True)
    store = workdir / "store"
    port_file = workdir / "port.txt"
    dist_csv = workdir / "dist.csv"
    ref_csv = workdir / "ref.csv"
    if store.exists():
        shutil.rmtree(store)
    port_file.unlink(missing_ok=True)

    # --- reference report (the byte-identity oracle) -----------------------
    if args.golden:
        shutil.copyfile(args.golden, ref_csv)
    else:
        print("chaos_sweep: building reference report (single-process sweep)")
        with open(workdir / "ref.log", "wb") as log:
            rc = subprocess.run([args.run, "sweep", "--spec", args.spec, "--out", str(ref_csv)],
                                stdout=log, stderr=log, timeout=DAEMON_TIMEOUT_S).returncode
        if rc != 0:
            fail(f"reference sweep exited {rc} (see {workdir}/ref.log)")

    # --- the chaos run -----------------------------------------------------
    stall_ms = args.lease_ms + 1000  # guaranteed past the lease deadline
    daemon_log = open(workdir / "daemon.log", "wb")
    daemon = subprocess.Popen(
        [args.serve, "--spec", args.spec, "--store", str(store), "--out", str(dist_csv),
         "--port-file", str(port_file), "--lease-ms", str(args.lease_ms),
         "--batch", str(args.batch), "--wall-ms", str(DAEMON_TIMEOUT_S * 1000)],
        stdout=daemon_log, stderr=daemon_log)

    def worker(name: str, *chaos: str) -> subprocess.Popen:
        log = open(workdir / f"{name}.log", "wb")
        return subprocess.Popen(
            [args.run, "worker", "--port-file", str(port_file), "--name", name,
             "--backoff-base-ms", "25", *chaos],
            stdout=log, stderr=log)

    def await_log_line(name: str, needle: str) -> None:
        """Blocks until the worker's log contains `needle` (an event gate)."""
        deadline = time.monotonic() + WORKER_TIMEOUT_S
        log_path = workdir / f"{name}.log"
        while time.monotonic() < deadline:
            if log_path.exists() and needle in log_path.read_text(errors="replace"):
                return
            time.sleep(0.02)
        fail(f"{name} never logged \"{needle}\"")

    # Injection 1: w0 joins ALONE, so it is guaranteed to be the worker
    # delivering results — it always reaches its scripted self-SIGKILL.
    print("chaos_sweep: daemon up; w0 joins alone (self-SIGKILL after 2 results)")
    w0 = worker("w0", "--chaos-kill-after", "2")
    rc0 = wait_checked(w0, "w0", WORKER_TIMEOUT_S)
    if rc0 != -signal.SIGKILL:
        fail(f"w0 was scripted to SIGKILL itself but exited {rc0}")

    # Injection 2: w2 stalls (no heartbeats) right after its first result,
    # provably holding the rest of a leased batch; the harness SIGKILLs it
    # mid-stall. Gated on w2's own log line, not a timer.
    print("chaos_sweep: w0 died by SIGKILL as scripted; w2 joins (stall, then killed)")
    w2 = worker("w2", "--chaos-stall-after", "0", "--chaos-stall-ms", "600000")
    await_log_line("w2", "chaos: stalling")
    w2.kill()
    w2.wait(timeout=WORKER_TIMEOUT_S)
    print("chaos_sweep: w2 SIGKILLed mid-stall while holding a lease; w1 joins")

    # w1 (mid-record drop + lease-expiry stall) finishes the grid alone.
    w1 = worker("w1", "--chaos-drop-after", "4",
                "--chaos-stall-after", "6", "--chaos-stall-ms", str(stall_ms))
    rc1 = wait_checked(w1, "w1", WORKER_TIMEOUT_S)
    if rc1 != 0:
        fail(f"w1 should survive its chaos and finish the grid, exited {rc1}")
    rc_daemon = wait_checked(daemon, "daemon", DAEMON_TIMEOUT_S)
    daemon_log.close()
    if rc_daemon != 0:
        fail(f"daemon exited {rc_daemon} (see {workdir}/daemon.log)")

    if not filecmp.cmp(ref_csv, dist_csv, shallow=False):
        fail(f"chaos report {dist_csv} differs from reference {ref_csv}")
    print("chaos_sweep: merged report is byte-identical to the single-process sweep")

    # --- re-query: the journal answers, nothing re-simulates ---------------
    requery_csv = workdir / "requery.csv"
    requery = subprocess.run(
        [args.serve, "--spec", args.spec, "--store", str(store), "--out", str(requery_csv)],
        capture_output=True, text=True, timeout=DAEMON_TIMEOUT_S)
    (workdir / "requery.log").write_text(requery.stderr)
    if requery.returncode != 0:
        fail(f"re-query daemon exited {requery.returncode}")
    if "store: 0 new simulations journaled" not in requery.stderr:
        fail("re-query did not report '0 new simulations' — the journal was not trusted")
    if not filecmp.cmp(ref_csv, requery_csv, shallow=False):
        fail("re-query report differs from the reference")
    print("chaos_sweep: re-query served from journal with 0 new simulations")

    if not args.keep and not args.workdir:
        shutil.rmtree(workdir, ignore_errors=True)
    print("chaos_sweep: PASS")


if __name__ == "__main__":
    main()
