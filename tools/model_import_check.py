#!/usr/bin/env python3
"""End-to-end check of the checkpoint import + network-rollup pipeline.

Stdlib-only driver shared by ctest (test_model_import_e2e) and the CI
model-import job:

  1. generates a synthetic exactly-2:4-pruned checkpoint
     (make_synthetic_checkpoint.py) and captures its ground-truth
     per-layer density/conformity,
  2. runs `imac_run import-model --json` and compares every measured
     per-layer sparsity against the ground truth (exact equality at the
     JSON wire precision of %.10g: both sides compute nnz/total in double
     from identical integers),
  3. sweeps the imported model with the checked-in golden spec and
     byte-compares the CSV + rollup section against the checked-in golden
     (timing is data-independent, so the golden is stable across hosts),
  4. re-renders the rollup via `report --rollup` as a smoke test that
     rollup-bearing CSVs stay parseable.

Usage: model_import_check.py IMAC_RUN_BINARY SOURCE_DIR [WORK_DIR]
"""

import json
import os
import subprocess
import sys
import tempfile


def run(cmd, **kw):
    res = subprocess.run(cmd, capture_output=True, text=True, **kw)
    if res.returncode != 0:
        sys.exit(
            "FAIL: %s exited %d\nstdout:\n%s\nstderr:\n%s"
            % (" ".join(map(str, cmd)), res.returncode, res.stdout, res.stderr)
        )
    return res.stdout


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit("usage: model_import_check.py IMAC_RUN_BINARY SOURCE_DIR [WORK_DIR]")
    imac_run = os.path.abspath(sys.argv[1])
    source = os.path.abspath(sys.argv[2])
    work = (
        os.path.abspath(sys.argv[3])
        if len(sys.argv) == 4
        else tempfile.mkdtemp(prefix="model_import_check.")
    )
    os.makedirs(work, exist_ok=True)
    ckpt = os.path.join(work, "ckpt")
    generator = os.path.join(source, "tools", "make_synthetic_checkpoint.py")
    spec = os.path.join(source, "tests", "golden", "model_import_sweep.json")
    golden = os.path.join(source, "tests", "golden", "model_import_rollup.csv")

    # 1. Generate; stdout is the ground truth.
    truth = json.loads(run([sys.executable, generator, ckpt]))

    # 2. Measured sparsity must equal the generator's ground truth exactly.
    imported = json.loads(run([imac_run, "import-model", ckpt, "--json"]))
    measured = {layer["name"]: layer for layer in imported["layer_records"]}
    for expect in truth["layers"]:
        got = measured[expect["name"]]
        for key in ("density", "nm_conformity"):
            # The C++ side serializes doubles at %.10g, so compare the
            # ground truth through the same wire precision.
            if got[key] != float("%.10g" % expect[key]):
                sys.exit(
                    "FAIL: layer %s %s: measured %r != ground truth %r"
                    % (expect["name"], key, got[key], expect[key])
                )
        if not got["measured"]:
            sys.exit("FAIL: layer %s not flagged as measured" % expect["name"])
    print(
        "import-model: %d layers match generator ground truth exactly"
        % len(truth["layers"])
    )

    # 3. Sweep + rollup must be byte-identical to the checked-in golden.
    out_csv = os.path.join(work, "rollup.csv")
    run(
        [
            imac_run,
            "sweep",
            "--import",
            ckpt,
            "--spec",
            spec,
            "--rollup",
            "--out",
            out_csv,
        ]
    )
    with open(out_csv, "rb") as f:
        produced = f.read()
    with open(golden, "rb") as f:
        expected = f.read()
    if produced != expected:
        sys.exit(
            "FAIL: rollup CSV differs from golden %s\nproduced:\n%s"
            % (golden, produced.decode())
        )
    print("sweep --rollup: byte-identical to %s" % os.path.basename(golden))

    # 4. The rollup-bearing CSV must stay consumable by the report reader.
    table = run([imac_run, "report", "--rollup", out_csv])
    if "network rollup" not in table or "synth24" not in table:
        sys.exit("FAIL: report --rollup did not render the rollup table:\n" + table)
    print("report --rollup: rollup-bearing CSV re-parses cleanly")
    print("OK")


if __name__ == "__main__":
    main()
