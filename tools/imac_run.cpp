// imac-run: assemble and execute a text-assembly program on the functional
// simulator or the cycle-level timing model.
//
// Usage:
//   imac_run [--timing] [--trace] [--max-steps N] [--dump-regs] file.s
//
// The assembly dialect is the library's subset (see isa::disassemble /
// assemble_text), including the custom vindexmac.vx instruction. Programs
// halt with ebreak.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "asm/text_assembler.h"
#include "common/error.h"
#include "fsim/machine.h"
#include "fsim/tracer.h"
#include "timing/timing_sim.h"

namespace {

// Requested help goes to stdout (exit 0); usage errors go to stderr.
void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: imac_run [--timing] [--trace] [--max-steps N] [--dump-regs] file.s\n"
               "\n"
               "Assembles file.s (the library's RISC-V subset, including vindexmac.vx)\n"
               "and executes it; programs halt with ebreak.\n"
               "\n"
               "  --timing       run on the cycle-level timing model (default: functional)\n"
               "  --trace        print each executed instruction (functional mode)\n"
               "  --max-steps N  stop after N instructions (default 100000000)\n"
               "  --dump-regs    print architectural registers on exit (functional mode)\n"
               "  -h, --help     show this help and exit\n");
}

void dump_registers(const indexmac::ArchState& state) {
  std::printf("\nregisters:\n");
  for (unsigned r = 0; r < 32; r += 4) {
    for (unsigned i = r; i < r + 4; ++i)
      std::printf("  x%-2u=%-16llx", i, static_cast<unsigned long long>(state.x[i]));
    std::printf("\n");
  }
  std::printf("  vl=%u\n", state.vl);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace indexmac;
  bool timing = false;
  bool trace = false;
  bool dump_regs = false;
  std::uint64_t max_steps = 100'000'000;
  const char* path = nullptr;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    }
    else if (std::strcmp(argv[i], "--timing") == 0) timing = true;
    else if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    else if (std::strcmp(argv[i], "--dump-regs") == 0) dump_regs = true;
    else if (std::strcmp(argv[i], "--max-steps") == 0 && i + 1 < argc)
      max_steps = std::strtoull(argv[++i], nullptr, 10);
    else if (argv[i][0] != '-' && path == nullptr) path = argv[i];
    else {
      usage(stderr);
      return 2;
    }
  }
  if (path == nullptr) {
    usage(stderr);
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "imac_run: cannot open %s\n", path);
    return 1;
  }
  std::stringstream source;
  source << file.rdbuf();

  try {
    const AssembledText assembled = assemble_text(source.str());
    std::printf("assembled %zu instructions at 0x%llx\n", assembled.program.size(),
                static_cast<unsigned long long>(assembled.program.base()));

    MainMemory mem;
    if (timing) {
      timing::TimingSim sim(assembled.program, mem, timing::ProcessorConfig{});
      const timing::TimingStats& stats = sim.run(max_steps);
      std::printf("cycles: %llu  instructions: %llu  IPC: %.2f\n",
                  static_cast<unsigned long long>(stats.cycles),
                  static_cast<unsigned long long>(stats.instructions), stats.ipc());
      std::printf("vector: %llu instrs (%llu loads, %llu stores, %llu MACs, %llu moves)\n",
                  static_cast<unsigned long long>(stats.vector_instructions),
                  static_cast<unsigned long long>(stats.vector_loads),
                  static_cast<unsigned long long>(stats.vector_stores),
                  static_cast<unsigned long long>(stats.vector_macs),
                  static_cast<unsigned long long>(stats.vector_to_scalar_moves));
      std::printf("memory: %llu data accesses, %llu DRAM lines\n",
                  static_cast<unsigned long long>(stats.mem.data_accesses()),
                  static_cast<unsigned long long>(stats.mem.dram_lines));
      std::printf("dispatch stalls: operand %llu, branch %llu, queue %llu, bandwidth %llu\n",
                  static_cast<unsigned long long>(stats.dispatch_stalls.scalar_operand),
                  static_cast<unsigned long long>(stats.dispatch_stalls.branch_shadow),
                  static_cast<unsigned long long>(stats.dispatch_stalls.queue_full),
                  static_cast<unsigned long long>(stats.dispatch_stalls.bandwidth));
    } else {
      Machine machine(assembled.program, mem);
      StopReason stop;
      if (trace) {
        Tracer tracer(machine);
        stop = tracer.run(std::cout, max_steps);
      } else {
        stop = machine.run(max_steps);
      }
      const char* why = stop == StopReason::kEbreak   ? "ebreak"
                        : stop == StopReason::kEcall  ? "ecall"
                                                      : "max-steps";
      std::printf("stopped: %s after %llu instructions\n", why,
                  static_cast<unsigned long long>(machine.instructions_retired()));
      if (dump_regs) dump_registers(machine.state());
    }
  } catch (const SimError& e) {
    std::fprintf(stderr, "imac_run: %s\n", e.what());
    return 1;
  }
  return 0;
}
