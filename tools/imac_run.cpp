// imac-run: the simulator's command-line front end.
//
// Subcommands:
//   run             assemble + execute a text-assembly program (functional
//                   or cycle-level timing simulation)
//   sweep           execute a declarative sweep spec (JSON) over the
//                   workload registry and emit a CSV/JSON report; with
//                   --store/--resume/--shard the run is crash-safe,
//                   restartable, and horizontally partitionable
//   merge           fuse shard stores and/or shard CSV reports back into
//                   the canonical single-process report
//   gdb             serve a GDB remote-serial-protocol debug session over
//                   an assembled program (debug/gdb_server.h): breakpoints,
//                   single-step, register/memory inspection, both engines
//   list-workloads  show the registered workload suites (or one suite's
//                   layer list); --json for tooling
//   list-algorithms show the registered kernel families (id, name, report
//                   role, sampled-mode support)
//   import-model    load a pruned checkpoint directory (model.json +
//                   IMACTNSR tensor blobs) and print its measured
//                   per-layer sparsity; `sweep --import DIR` registers it
//   report          pretty-print a sweep CSV, pairing algorithms into
//                   speedup columns by their registry pairing role; with
//                   --rollup, fold count-weighted rows into whole-network
//                   latency / energy-proxy totals
//
// Invoking with a .s file and no subcommand keeps the historical
// single-purpose interface working: `imac_run [flags] file.s` == `imac_run
// run [flags] file.s`.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "asm/text_assembler.h"
#include "common/error.h"
#include "common/format.h"
#include "core/algorithm_registry.h"
#include "core/batch.h"
#include "core/result_store.h"
#include "core/rollup.h"
#include "core/sweep.h"
#include "debug/gdb_server.h"
#include "fsim/engine.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"
#include "fsim/tracer.h"
#include "serve/worker.h"
#include "timing/timing_sim.h"
#include "workloads/model_import.h"
#include "workloads/workloads.h"

namespace {

/// SIGINT/SIGTERM flag for the graceful-shutdown paths (sweep, worker).
/// An atomic store is the only thing the handler does — async-signal-safe.
std::atomic<bool> g_stop{false};

extern "C" void handle_stop_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

void install_stop_handlers() {
  std::signal(SIGINT, handle_stop_signal);
  std::signal(SIGTERM, handle_stop_signal);
}

/// Per-subcommand documentation. The summary list, the full help, and
/// `imac_run <sub> --help` all render from this one table, and
/// tools/gen_cli_docs.py regenerates docs/cli.md from the same output —
/// a flag documented here is documented everywhere.
struct SubcommandDoc {
  const char* name;
  const char* brief;  ///< one line for the summary list
  const char* help;   ///< full section (usage line + flag descriptions)
};

const SubcommandDoc kSubcommands[] = {
    {"run", "assemble and execute a text-assembly program",
     "  run [--timing] [--trace] [--max-steps N] [--dump-regs] [--threads N]\n"
     "      [--engine interp|threaded] file.s\n"
     "      Assembles file.s (the library's RISC-V subset, including\n"
     "      vindexmac.vx) and executes it; programs halt with ebreak.\n"
     "      --timing       run on the cycle-level timing model\n"
     "      --trace        print each executed instruction (functional mode)\n"
     "      --max-steps N  stop after N instructions (default 100000000)\n"
     "      --dump-regs    print architectural registers on exit\n"
     "      --engine E     functional engine: \"interp\" (default) or\n"
     "                     \"threaded\" (predecoded threaded code; identical\n"
     "                     results, faster; --trace requires interp)\n"},
    {"sweep", "run a declarative sweep spec and emit a CSV/JSON report",
     "  sweep --spec spec.json [--out file] [--format csv|json] [--threads N]\n"
     "        [--store DIR] [--resume] [--fsync] [--shard i/N]\n"
     "        [--engine interp|threaded] [--import DIR]... [--rollup]\n"
     "      Runs the sweep described by spec.json (see README: sweep specs)\n"
     "      on a parallel BatchRunner pool and writes the report to stdout\n"
     "      or --out.\n"
     "      --store DIR   journal every completed point to DIR/results.journal\n"
     "                    (append-only, CRC-checked; survives a killed run)\n"
     "      --resume      with --store: serve already-journaled points from\n"
     "                    the store and simulate only what is missing\n"
     "      --shard i/N   run only shard i of N: points are partitioned by\n"
     "                    digest (fnv1a(key) %% N == i-1), so N processes with\n"
     "                    disjoint shards cover the grid exactly once\n"
     "      --engine E    override the spec's functional engine (reports and\n"
     "                    cache keys are engine-independent by construction)\n"
     "      --fsync       with --store: fsync the journal after every record\n"
     "                    (survives power loss, not just process death)\n"
     "      --import DIR  register the checkpoint in DIR (see import-model)\n"
     "                    before parsing the spec, so specs can sweep it\n"
     "      --rollup      append whole-network totals to the report: a\n"
     "                    \"# rollup\" CSV section / \"rollup\" JSON key with\n"
     "                    count-weighted end-to-end cycles and a bytes-moved\n"
     "                    energy proxy per (suite x sparsity x config)\n"
     "      SIGINT/SIGTERM stop gracefully: queued points are skipped,\n"
     "      in-flight points finish and journal, and the run exits 130 with\n"
     "      a resume hint (rerun with --resume).\n"},
    {"worker", "join an imac_serve daemon as a fault-tolerant sweep worker",
     "  worker (--port N | --port-file F) [--host A] [--name W]\n"
     "         [--heartbeat-ms N] [--poll-ms N] [--backoff-base-ms N]\n"
     "         [--backoff-cap-ms N] [--give-up-ms N] [--quiet]\n"
     "         [--chaos-kill-after N] [--chaos-drop-after N]\n"
     "         [--chaos-stall-after N --chaos-stall-ms N]\n"
     "      Joins an imac_serve daemon as a sweep worker: leases grid\n"
     "      points, measures them, streams results back, and reconnects\n"
     "      with capped exponential backoff when the daemon goes away.\n"
     "      Exits 0 when the daemon reports the grid complete, 3 after\n"
     "      --give-up-ms without a reachable daemon, 130 on SIGINT.\n"
     "      --port-file F  read the port from F (as written by imac_serve\n"
     "                     --port-file), waiting for it to appear\n"
     "      --give-up-ms N give up after N ms without a reachable daemon\n"
     "                     (default 60000); also bounds the --port-file wait\n"
     "      --chaos-*      scripted fault injection for tests: SIGKILL self\n"
     "                     before sending result N / drop the connection\n"
     "                     mid-record at result N / stall without heartbeats\n"
     "                     after result N\n"},
    {"merge", "fuse shard stores/reports into the canonical report",
     "  merge --spec spec.json [--store DIR]... [--out file] [--format csv|json]\n"
     "        [--import DIR]... [shard.csv]...\n"
     "      Fuses shard stores and/or shard CSV reports into the canonical\n"
     "      report of spec.json — byte-identical to a single-process sweep.\n"
     "      Conflicting or missing points abort with an error. Stores keep\n"
     "      full double precision; shard CSVs round sampled-mode cycles to\n"
     "      2 decimals, so for sampled sweeps merge from stores (CSV inputs\n"
     "      still give byte-exact CSV output, but not JSON, and must not\n"
     "      overlap a store's points).\n"},
    {"gdb", "serve a GDB remote-debug session over a program",
     "  gdb [--port N] [--port-file F] [--engine interp|threaded] [--quiet]\n"
     "      file.s\n"
     "      Assembles file.s and serves ONE GDB remote-serial-protocol\n"
     "      debug session on 127.0.0.1 (registers x0..x31/pc/f/v/vl, memory,\n"
     "      software breakpoints, continue/step, Ctrl-C interrupt). Connect\n"
     "      a RISC-V-aware gdb with `target remote :PORT`, or script it with\n"
     "      tools/rsp_client.py. Breakpoints are pc-checks, never program\n"
     "      patches: architectural results match an undebugged run exactly,\n"
     "      and with --engine threaded only breakpointed blocks drop to\n"
     "      interpreter stepping.\n"
     "      --port N       listen port (default 0 = kernel-assigned; the\n"
     "                     bound port is printed to stderr)\n"
     "      --port-file F  also write the bound port to F (harness handshake,\n"
     "                     same contract as imac_serve --port-file)\n"
     "      --engine E     execution engine: \"interp\" (default) or \"threaded\"\n"
     "      --quiet        suppress the listening/connected stderr notes\n"
     "      monitor commands (gdb `monitor ...`): markers (pc of each marker\n"
     "      instruction), symbols (label addresses), retired (instruction\n"
     "      count), engine, fault (text of the last execution fault).\n"
     "      Exits 0 when the debugger detaches, kills, or disconnects;\n"
     "      130 on SIGINT/SIGTERM.\n"},
    {"list-workloads", "show registered workload suites (or one suite's layers)",
     "  list-workloads [suite] [--json]\n"
     "      Lists the registered workload suites, or one suite's layers.\n"
     "      --json emits a machine-readable listing (name, display name,\n"
     "      layer count, total MACs, default sparsities) for tooling.\n"},
    {"list-algorithms", "show registered kernel families",
     "  list-algorithms\n"
     "      Lists the registered kernel families: id (as used in sweep specs\n"
     "      and CSV reports), display name, report pairing role, and whether\n"
     "      sampled sweep mode supports the family.\n"},
    {"import-model", "load a pruned checkpoint and print measured sparsity",
     "  import-model DIR [--json]\n"
     "      Loads the checkpoint in DIR (model.json manifest + IMACTNSR\n"
     "      tensor blobs, f32/f16; see README: model import) and prints each\n"
     "      layer's measured sparsity: nonzero density, N:M block\n"
     "      conformity against the declared pattern, and ELLPACK\n"
     "      row-imbalance. Sweep it with `sweep --import DIR` and a spec\n"
     "      naming the model.\n"},
    {"report", "pretty-print a sweep CSV with paired speedup columns",
     "  report [--rollup] file.csv\n"
     "      Pretty-prints a sweep CSV; rows measured with both kernels are\n"
     "      paired into a speedup column (standalone families keep their\n"
     "      own rows). --rollup prints whole-network totals instead: per\n"
     "      (suite x sparsity x config), count-weighted end-to-end cycles,\n"
     "      data accesses and the bytes-moved energy proxy (accesses x 64,\n"
     "      a cache-line-granularity upper bound).\n"},
};

// Requested help goes to stdout (exit 0); usage errors go to stderr (the
// summary only — `imac_run <sub> --help` has the details).
void usage(std::FILE* out) {
  std::fprintf(out,
               "usage: imac_run <subcommand> [args]\n"
               "\n"
               "subcommands:\n");
  for (const SubcommandDoc& doc : kSubcommands)
    std::fprintf(out, "  %-16s %s\n", doc.name, doc.brief);
  std::fprintf(out,
               "\n"
               "`imac_run <subcommand> --help` shows that subcommand's flags;\n"
               "`imac_run --help` shows every subcommand's flags.\n"
               "`imac_run [flags] file.s` (no subcommand) is accepted as `run`.\n"
               "  -h, --help     show this help and exit\n");
}

void usage_full(std::FILE* out) {
  usage(out);
  std::fprintf(out, "\n");
  for (const SubcommandDoc& doc : kSubcommands) std::fprintf(out, "%s", doc.help);
  std::fprintf(out,
               "\n"
               "  --threads N (run, sweep) sets the worker-pool width for any batched\n"
               "  work. It mirrors the INDEXMAC_THREADS environment variable — same\n"
               "  [1, 1024] validation, rejecting anything else — and wins over it\n"
               "  when both are given.\n");
}

/// Full help for one subcommand, or nullptr if the name is unknown.
const SubcommandDoc* find_subcommand_doc(const char* name) {
  for (const SubcommandDoc& doc : kSubcommands)
    if (std::strcmp(doc.name, name) == 0) return &doc;
  return nullptr;
}

void dump_registers(const indexmac::ArchState& state) {
  std::printf("\nregisters:\n");
  for (unsigned r = 0; r < 32; r += 4) {
    for (unsigned i = r; i < r + 4; ++i)
      std::printf("  x%-2u=%-16llx", i, static_cast<unsigned long long>(state.x[i]));
    std::printf("\n");
  }
  std::printf("  vl=%u\n", state.vl);
}

int cmd_run(int argc, char** argv) {
  using namespace indexmac;
  bool timing = false;
  bool trace = false;
  bool dump_regs = false;
  std::uint64_t max_steps = 100'000'000;
  ExecEngine engine = ExecEngine::kInterp;
  const char* path = nullptr;

  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--timing") == 0) timing = true;
    else if (std::strcmp(argv[i], "--trace") == 0) trace = true;
    else if (std::strcmp(argv[i], "--dump-regs") == 0) dump_regs = true;
    else if (std::strcmp(argv[i], "--max-steps") == 0 && i + 1 < argc)
      max_steps = std::strtoull(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc)
      engine = parse_exec_engine(argv[++i]);  // throws SimError listing names
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
      // Throws SimError (caught in main) on anything outside [1, 1024].
      core::BatchRunner::set_thread_override(core::BatchRunner::parse_thread_count(argv[++i]));
    else if (argv[i][0] != '-' && path == nullptr) path = argv[i];
    else {
      usage(stderr);
      return 2;
    }
  }
  if (path == nullptr) {
    usage(stderr);
    return 2;
  }
  if (trace && engine == ExecEngine::kThreaded) {
    // The Tracer drives Machine::step itself; silently ignoring --engine
    // would misreport what executed.
    std::fprintf(stderr, "imac_run run: --trace requires --engine interp\n");
    return 2;
  }

  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "imac_run: cannot open %s\n", path);
    return 1;
  }
  std::stringstream source;
  source << file.rdbuf();

  const AssembledText assembled = assemble_text(source.str());
  std::printf("assembled %zu instructions at 0x%llx\n", assembled.program.size(),
              static_cast<unsigned long long>(assembled.program.base()));

  MainMemory mem;
  if (timing) {
    timing::TimingSim sim(assembled.program, mem, timing::ProcessorConfig{}, engine);
    const timing::TimingStats& stats = sim.run(max_steps);
    std::printf("cycles: %llu  instructions: %llu  IPC: %.2f\n",
                static_cast<unsigned long long>(stats.cycles),
                static_cast<unsigned long long>(stats.instructions), stats.ipc());
    std::printf("vector: %llu instrs (%llu loads, %llu stores, %llu MACs, %llu moves)\n",
                static_cast<unsigned long long>(stats.vector_instructions),
                static_cast<unsigned long long>(stats.vector_loads),
                static_cast<unsigned long long>(stats.vector_stores),
                static_cast<unsigned long long>(stats.vector_macs),
                static_cast<unsigned long long>(stats.vector_to_scalar_moves));
    std::printf("memory: %llu data accesses, %llu DRAM lines\n",
                static_cast<unsigned long long>(stats.mem.data_accesses()),
                static_cast<unsigned long long>(stats.mem.dram_lines));
    std::printf("dispatch stalls: operand %llu, branch %llu, queue %llu, bandwidth %llu\n",
                static_cast<unsigned long long>(stats.dispatch_stalls.scalar_operand),
                static_cast<unsigned long long>(stats.dispatch_stalls.branch_shadow),
                static_cast<unsigned long long>(stats.dispatch_stalls.queue_full),
                static_cast<unsigned long long>(stats.dispatch_stalls.bandwidth));
  } else {
    Machine machine(assembled.program, mem);
    StopReason stop;
    if (trace) {
      Tracer tracer(machine);
      stop = tracer.run(std::cout, max_steps);
    } else if (engine == ExecEngine::kThreaded) {
      ThreadedEngine threaded(machine);
      stop = threaded.run(max_steps);
    } else {
      stop = machine.run(max_steps);
    }
    const char* why = stop == StopReason::kEbreak   ? "ebreak"
                      : stop == StopReason::kEcall  ? "ecall"
                                                    : "max-steps";
    std::printf("stopped: %s after %llu instructions\n", why,
                static_cast<unsigned long long>(machine.instructions_retired()));
    if (dump_regs) dump_registers(machine.state());
  }
  return 0;
}

/// Writes a rendered report to --out (binary, so CSV bytes are exact) or
/// stdout. Returns a process exit code.
int write_report(const std::string& rendered, const char* out_path, std::size_t rows,
                 const char* subcommand) {
  if (out_path != nullptr) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "imac_run %s: cannot write %s\n", subcommand, out_path);
      return 1;
    }
    out << rendered;
    // Flush and verify before claiming success: a full disk (or a signal
    // killing us during the message below) must not leave a silently
    // truncated report behind a "wrote N rows" line.
    out.close();
    if (!out) {
      std::fprintf(stderr, "imac_run %s: write to %s failed\n", subcommand, out_path);
      return 1;
    }
    std::fprintf(stderr, "wrote %zu rows to %s\n", rows, out_path);
  } else {
    // stdout is frequently a redirect; a short write (full disk, closed
    // pipe) must fail the process, not masquerade as a complete report.
    if (std::fwrite(rendered.data(), 1, rendered.size(), stdout) != rendered.size() ||
        std::fflush(stdout) != 0) {
      std::fprintf(stderr, "imac_run %s: write to stdout failed\n", subcommand);
      return 1;
    }
  }
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  using namespace indexmac;
  const char* spec_path = nullptr;
  const char* out_path = nullptr;
  const char* store_dir = nullptr;
  const char* shard_text = nullptr;
  const char* engine_text = nullptr;
  bool resume = false;
  bool fsync_each = false;
  bool json = false;
  bool rollup = false;
  unsigned threads = 0;
  std::vector<const char*> import_dirs;

  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) spec_path = argv[++i];
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) store_dir = argv[++i];
    else if (std::strcmp(argv[i], "--shard") == 0 && i + 1 < argc) shard_text = argv[++i];
    else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc) engine_text = argv[++i];
    else if (std::strcmp(argv[i], "--import") == 0 && i + 1 < argc) import_dirs.push_back(argv[++i]);
    else if (std::strcmp(argv[i], "--resume") == 0) resume = true;
    else if (std::strcmp(argv[i], "--rollup") == 0) rollup = true;
    else if (std::strcmp(argv[i], "--fsync") == 0) fsync_each = true;
    else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // Same strictness as INDEXMAC_THREADS (throws SimError on anything
      // outside [1, 1024]): a silently-mangled typo would run the sweep at
      // an unintended width.
      threads = core::BatchRunner::parse_thread_count(argv[++i]);
      core::BatchRunner::set_thread_override(threads);
    }
    else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      const char* fmt = argv[++i];
      if (std::strcmp(fmt, "json") == 0) json = true;
      else if (std::strcmp(fmt, "csv") == 0) json = false;
      else {
        std::fprintf(stderr, "imac_run sweep: unknown format %s (csv|json)\n", fmt);
        return 2;
      }
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (spec_path == nullptr) {
    std::fprintf(stderr, "imac_run sweep: --spec is required\n");
    return 2;
  }
  if (resume && store_dir == nullptr) {
    std::fprintf(stderr, "imac_run sweep: --resume requires --store DIR\n");
    return 2;
  }
  if (fsync_each && store_dir == nullptr) {
    std::fprintf(stderr, "imac_run sweep: --fsync requires --store DIR\n");
    return 2;
  }

  // Checkpoints register before the spec parses: parse_sweep_spec rejects
  // unknown suite names, so a spec may only sweep an imported model when
  // its --import precedes validation.
  for (const char* dir : import_dirs) {
    workloads::register_model(workloads::import_model(dir));
    std::fprintf(stderr, "imported %s\n", dir);
  }

  core::SweepSpec spec = core::parse_sweep_spec_file(spec_path);
  // The CLI flag wins over the spec's "engine" key. Applied before
  // expansion so every point's RunConfig carries it; cache keys and
  // reports are unaffected by construction.
  if (engine_text != nullptr) spec.engine = parse_exec_engine(engine_text);
  std::vector<core::SweepPoint> points = core::expand_sweep(spec);
  const std::size_t full_grid = points.size();
  if (shard_text != nullptr) {
    const core::ShardSpec shard = core::parse_shard(shard_text);
    points = core::filter_shard(spec, points, shard);
    std::fprintf(stderr, "shard %u/%u owns %zu of %zu points\n", shard.index, shard.count,
                 points.size(), full_grid);
  }

  // The store (when given) backs the sweep cache: every completed point is
  // journaled as it finishes, and --resume additionally serves journaled
  // points without re-simulation.
  std::unique_ptr<core::ResultStore> store;
  core::SweepCache cache;
  if (store_dir != nullptr) {
    store = std::make_unique<core::ResultStore>(
        store_dir, fsync_each ? core::Durability::kFsyncEach : core::Durability::kFlush);
    cache.attach_store(*store, resume);
    if (store->dropped_bytes() > 0)
      std::fprintf(stderr, "store %s: recovered (dropped %llu corrupt tail bytes)\n",
                   store->journal_path().c_str(),
                   static_cast<unsigned long long>(store->dropped_bytes()));
    std::fprintf(stderr, "store %s: %llu journaled results%s\n", store->journal_path().c_str(),
                 static_cast<unsigned long long>(store->loaded()),
                 resume ? " (resuming)" : "");
  }

  core::BatchRunner pool(threads);
  std::fprintf(stderr, "sweep %s: %zu points on %u threads\n", spec.name.c_str(), points.size(),
               pool.thread_count());
  install_stop_handlers();
  try {
    const core::SweepReport report = core::run_sweep(spec, points, pool, &cache, &g_stop);
    if (store != nullptr)
      std::fprintf(stderr, "store: %llu new simulations journaled (%llu already on disk)\n",
                   static_cast<unsigned long long>(store->appended()),
                   static_cast<unsigned long long>(store->loaded()));
    std::string rendered;
    if (rollup) {
      const core::RollupReport totals = core::compute_rollup(report);
      rendered = json ? core::report_to_json_with_rollup(report, totals)
                      : core::report_to_csv(report) + core::rollup_to_csv(totals);
    } else {
      rendered = json ? core::report_to_json(report) : core::report_to_csv(report);
    }
    return write_report(rendered, out_path, report.rows.size(), "sweep");
  } catch (const core::BatchCancelled&) {
    // Graceful interrupt: in-flight points finished and (with --store)
    // journaled before we got here; queued points were skipped. No report
    // is written — a partial grid must never render as a complete one.
    if (store != nullptr) {
      std::fprintf(stderr,
                   "sweep %s: interrupted; %llu completed points journaled to %s\n"
                   "resumable: rerun with --resume to simulate only the missing points\n",
                   spec.name.c_str(), static_cast<unsigned long long>(store->appended()),
                   store->journal_path().c_str());
    } else {
      std::fprintf(stderr,
                   "sweep %s: interrupted; completed points were DISCARDED (no --store)\n"
                   "hint: rerun with --store DIR to make interrupted sweeps resumable\n",
                   spec.name.c_str());
    }
    return 130;
  }
}

/// Strict numeric flag parsing: a mistyped chaos or timing flag must not
/// silently become 0 and invalidate what a chaos test believes it proved.
std::uint64_t parse_u64_flag(const char* flag, const char* text, const char* cmd = "worker") {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(text, &end, 10);
  if (end == text || *end != '\0' || errno != 0)
    indexmac::raise(std::string("imac_run ") + cmd + ": " + flag +
                    " expects an unsigned integer, got \"" + text + "\"");
  return v;
}

int cmd_gdb(int argc, char** argv) {
  using namespace indexmac;
  debug::GdbServerOptions opts;
  const char* path = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc)
      opts.port = static_cast<std::uint16_t>(parse_u64_flag("--port", argv[++i], "gdb"));
    else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) opts.port_file = argv[++i];
    else if (std::strcmp(argv[i], "--engine") == 0 && i + 1 < argc)
      opts.engine = parse_exec_engine(argv[++i]);
    else if (std::strcmp(argv[i], "--quiet") == 0) opts.quiet = true;
    else if (argv[i][0] != '-' && path == nullptr) path = argv[i];
    else {
      usage(stderr);
      return 2;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr, "imac_run gdb: a .s program file is required\n");
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "imac_run: cannot open %s\n", path);
    return 1;
  }
  std::stringstream source;
  source << file.rdbuf();
  const AssembledText assembled = assemble_text(source.str());

  MainMemory mem;
  install_stop_handlers();
  opts.stop = &g_stop;
  return debug::run_gdb_server(assembled, mem, opts);
}

int cmd_worker(int argc, char** argv) {
  using namespace indexmac;
  serve::WorkerOptions opts;
  const char* port_file = nullptr;

  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) opts.host = argv[++i];
    else if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc)
      opts.port = static_cast<std::uint16_t>(parse_u64_flag("--port", argv[++i]));
    else if (std::strcmp(argv[i], "--port-file") == 0 && i + 1 < argc) port_file = argv[++i];
    else if (std::strcmp(argv[i], "--name") == 0 && i + 1 < argc) opts.name = argv[++i];
    else if (std::strcmp(argv[i], "--heartbeat-ms") == 0 && i + 1 < argc)
      opts.heartbeat_ms = parse_u64_flag("--heartbeat-ms", argv[++i]);
    else if (std::strcmp(argv[i], "--poll-ms") == 0 && i + 1 < argc)
      opts.poll_ms = parse_u64_flag("--poll-ms", argv[++i]);
    else if (std::strcmp(argv[i], "--backoff-base-ms") == 0 && i + 1 < argc)
      opts.backoff_base_ms = parse_u64_flag("--backoff-base-ms", argv[++i]);
    else if (std::strcmp(argv[i], "--backoff-cap-ms") == 0 && i + 1 < argc)
      opts.backoff_cap_ms = parse_u64_flag("--backoff-cap-ms", argv[++i]);
    else if (std::strcmp(argv[i], "--give-up-ms") == 0 && i + 1 < argc)
      opts.give_up_ms = parse_u64_flag("--give-up-ms", argv[++i]);
    else if (std::strcmp(argv[i], "--chaos-kill-after") == 0 && i + 1 < argc)
      opts.chaos.kill_after = static_cast<long>(parse_u64_flag("--chaos-kill-after", argv[++i]));
    else if (std::strcmp(argv[i], "--chaos-drop-after") == 0 && i + 1 < argc)
      opts.chaos.drop_after = static_cast<long>(parse_u64_flag("--chaos-drop-after", argv[++i]));
    else if (std::strcmp(argv[i], "--chaos-stall-after") == 0 && i + 1 < argc)
      opts.chaos.stall_after =
          static_cast<long>(parse_u64_flag("--chaos-stall-after", argv[++i]));
    else if (std::strcmp(argv[i], "--chaos-stall-ms") == 0 && i + 1 < argc)
      opts.chaos.stall_ms = parse_u64_flag("--chaos-stall-ms", argv[++i]);
    else if (std::strcmp(argv[i], "--quiet") == 0) opts.quiet = true;
    else {
      usage(stderr);
      return 2;
    }
  }
  if ((opts.port == 0) == (port_file == nullptr)) {
    std::fprintf(stderr, "imac_run worker: exactly one of --port/--port-file is required\n");
    return 2;
  }
  if (port_file != nullptr) {
    // The daemon writes its (possibly kernel-assigned) port here right
    // after binding; wait for it so harnesses can start both in parallel.
    const auto give_up = std::chrono::steady_clock::now() +
                         std::chrono::milliseconds(opts.give_up_ms);
    for (;;) {
      std::ifstream pf(port_file);
      unsigned long port = 0;
      if (pf >> port && port > 0 && port <= 65535) {
        opts.port = static_cast<std::uint16_t>(port);
        break;
      }
      if (std::chrono::steady_clock::now() > give_up) {
        std::fprintf(stderr, "imac_run worker: no usable port in %s after --give-up-ms\n",
                     port_file);
        return 3;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  install_stop_handlers();
  opts.stop = &g_stop;
  return serve::run_worker(opts);
}

int cmd_merge(int argc, char** argv) {
  using namespace indexmac;
  const char* spec_path = nullptr;
  const char* out_path = nullptr;
  bool json = false;
  std::vector<const char*> store_dirs;
  std::vector<const char*> csv_paths;

  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--spec") == 0 && i + 1 < argc) spec_path = argv[++i];
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];
    else if (std::strcmp(argv[i], "--store") == 0 && i + 1 < argc) store_dirs.push_back(argv[++i]);
    else if (std::strcmp(argv[i], "--import") == 0 && i + 1 < argc) {
      // Same contract as sweep --import: the spec names the model, so the
      // checkpoint must register before the spec parses below.
      workloads::register_model(workloads::import_model(argv[++i]));
    }
    else if (std::strcmp(argv[i], "--format") == 0 && i + 1 < argc) {
      const char* fmt = argv[++i];
      if (std::strcmp(fmt, "json") == 0) json = true;
      else if (std::strcmp(fmt, "csv") == 0) json = false;
      else {
        std::fprintf(stderr, "imac_run merge: unknown format %s (csv|json)\n", fmt);
        return 2;
      }
    } else if (argv[i][0] != '-') {
      csv_paths.push_back(argv[i]);
    } else {
      usage(stderr);
      return 2;
    }
  }
  if (spec_path == nullptr) {
    std::fprintf(stderr, "imac_run merge: --spec is required\n");
    return 2;
  }
  if (store_dirs.empty() && csv_paths.empty()) {
    std::fprintf(stderr, "imac_run merge: nothing to merge (give --store DIR and/or shard CSVs)\n");
    return 2;
  }

  const core::SweepSpec spec = core::parse_sweep_spec_file(spec_path);
  std::map<std::string, core::StoredResult> merged;
  for (const char* dir : store_dirs) {
    const core::ResultStore store(dir);
    core::accumulate_results(store, merged);
    std::fprintf(stderr, "merged store %s: %zu results\n", store.journal_path().c_str(),
                 store.size());
  }
  for (const char* path : csv_paths) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "imac_run merge: cannot open %s\n", path);
      return 1;
    }
    std::stringstream buf;
    buf << file.rdbuf();
    const core::SweepReport shard = core::parse_csv_report(buf.str());
    core::accumulate_results(spec, shard, merged);
    std::fprintf(stderr, "merged report %s: %zu rows\n", path, shard.rows.size());
  }

  const core::SweepReport report = core::assemble_report(spec, merged);
  const std::string rendered = json ? core::report_to_json(report) : core::report_to_csv(report);
  return write_report(rendered, out_path, report.rows.size(), "merge");
}

/// Machine-readable suite facts: the fields tooling keys sweeps off
/// (satellite of the model-IR refactor). One object per suite, or layer
/// detail (kind, geometry, sparsity profile) when a suite is named.
indexmac::JsonValue suite_json(const indexmac::workloads::ModelGraph& graph,
                               bool with_layers) {
  using namespace indexmac;
  JsonValue o = JsonValue::make_object();
  o.set("name", JsonValue(graph.name));
  o.set("display_name", JsonValue(graph.display_name));
  o.set("description", JsonValue(graph.description));
  o.set("layers", JsonValue(static_cast<double>(graph.layer_count())));
  o.set("workloads", JsonValue(static_cast<double>(graph.layers.size())));
  o.set("total_macs", JsonValue(static_cast<double>(graph.total_macs())));
  JsonValue sparsities = JsonValue::make_array();
  for (const auto sp : graph.default_sparsities)
    sparsities.push_back(JsonValue(workloads::sparsity_label(sp)));
  o.set("sparsities", std::move(sparsities));
  o.set("measured", JsonValue(graph.measured));
  if (!with_layers) return o;
  JsonValue layers = JsonValue::make_array();
  for (const workloads::LayerRecord& layer : graph.layers) {
    JsonValue l = JsonValue::make_object();
    l.set("name", JsonValue(layer.name));
    l.set("kind", JsonValue(std::string(workloads::layer_kind_id(layer.kind))));
    l.set("rows", JsonValue(static_cast<double>(layer.gemm.rows_a)));
    l.set("k", JsonValue(static_cast<double>(layer.gemm.k)));
    l.set("cols", JsonValue(static_cast<double>(layer.gemm.cols_b)));
    l.set("repeat", JsonValue(static_cast<double>(layer.repeat)));
    l.set("macs", JsonValue(static_cast<double>(layer.macs())));
    l.set("sparsity", JsonValue(workloads::sparsity_label(layer.sparsity.pattern)));
    l.set("measured", JsonValue(layer.sparsity.measured));
    l.set("density", JsonValue(layer.sparsity.density));
    l.set("nm_conformity", JsonValue(layer.sparsity.nm_conformity));
    l.set("row_imbalance", JsonValue(layer.sparsity.row_imbalance));
    layers.push_back(std::move(l));
  }
  o.set("layer_records", std::move(layers));
  return o;
}

int cmd_list_workloads(int argc, char** argv) {
  using namespace indexmac;
  bool json = false;
  const char* suite_name = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (argv[i][0] != '-' && suite_name == nullptr) suite_name = argv[i];
    else {
      usage(stderr);
      return 2;
    }
  }
  if (json) {
    if (suite_name != nullptr) {
      std::printf("%s\n", suite_json(workloads::model_graph(suite_name), true).dump().c_str());
      return 0;
    }
    JsonValue doc = JsonValue::make_array();
    for (const std::string& name : workloads::suite_names())
      doc.push_back(suite_json(workloads::model_graph(name), false));
    std::printf("%s\n", doc.dump().c_str());
    return 0;
  }
  if (suite_name != nullptr) {
    const workloads::Suite& s = workloads::suite(suite_name);
    std::printf("%s: %s\n\n", s.name.c_str(), s.description.c_str());
    TextTable table;
    table.set_header({"workload", "GEMM (RxKxN)", "count", "MMACs"});
    for (const workloads::Workload& w : s.workloads) {
      const double mmacs = static_cast<double>(w.dims.rows_a) * static_cast<double>(w.dims.k) *
                           static_cast<double>(w.dims.cols_b) * w.count / 1e6;
      table.add_row({w.name,
                     std::to_string(w.dims.rows_a) + "x" + std::to_string(w.dims.k) + "x" +
                         std::to_string(w.dims.cols_b),
                     std::to_string(w.count), fmt_fixed(mmacs, 1)});
    }
    std::printf("%s", table.to_string().c_str());
    return 0;
  }
  TextTable table;
  table.set_header({"suite", "workloads", "layers", "GMACs", "sparsities", "description"});
  for (const std::string& name : workloads::suite_names()) {
    const workloads::Suite& s = workloads::suite(name);
    std::string sparsities;
    for (const auto sp : s.sparsities) {
      if (!sparsities.empty()) sparsities += ' ';
      sparsities += workloads::sparsity_label(sp);
    }
    table.add_row({s.name, std::to_string(s.workloads.size()), std::to_string(s.source_layers),
                   fmt_fixed(static_cast<double>(s.total_macs()) / 1e9, 2), sparsities,
                   s.description});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_list_algorithms(int argc, char** /*argv*/) {
  using namespace indexmac;
  if (argc != 0) {
    usage(stderr);
    return 2;
  }
  TextTable table;
  table.set_header({"id", "name", "role", "sampled", "description"});
  for (const core::AlgorithmDescriptor& d : core::AlgorithmRegistry::instance().all())
    table.add_row({d.id, d.display_name, core::pairing_role_name(d.pairing),
                   d.supports_sampled ? "yes" : "no", d.description});
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_import_model(int argc, char** argv) {
  using namespace indexmac;
  bool json = false;
  const char* dir = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    else if (argv[i][0] != '-' && dir == nullptr) dir = argv[i];
    else {
      usage(stderr);
      return 2;
    }
  }
  if (dir == nullptr) {
    std::fprintf(stderr, "imac_run import-model: checkpoint directory is required\n");
    return 2;
  }
  const workloads::ModelGraph graph = workloads::import_model(dir);
  if (json) {
    std::printf("%s\n", suite_json(graph, true).dump().c_str());
    return 0;
  }
  std::printf("%s (%s): %zu layers, %.2f GMACs\n\n", graph.name.c_str(),
              graph.display_name.c_str(), graph.layer_count(),
              static_cast<double>(graph.total_macs()) / 1e9);
  TextTable table;
  table.set_header({"layer", "kind", "GEMM (RxKxN)", "repeat", "pattern", "density",
                    "conformity", "imbalance"});
  for (const workloads::LayerRecord& layer : graph.layers)
    table.add_row({layer.name, workloads::layer_kind_id(layer.kind),
                   std::to_string(layer.gemm.rows_a) + "x" + std::to_string(layer.gemm.k) +
                       "x" + std::to_string(layer.gemm.cols_b),
                   std::to_string(layer.repeat),
                   workloads::sparsity_label(layer.sparsity.pattern),
                   fmt_fixed(layer.sparsity.density, 4),
                   fmt_fixed(layer.sparsity.nm_conformity, 4),
                   fmt_fixed(layer.sparsity.row_imbalance, 4)});
  std::printf("%s", table.to_string().c_str());
  std::printf(
      "\nsweep it: imac_run sweep --import %s --spec spec.json with \"workloads\": "
      "[\"%s\"]\n",
      dir, graph.name.c_str());
  return 0;
}

/// The --rollup report view: whole-network totals per (suite x sparsity x
/// config), algorithms paired into speedup columns like the per-point view.
int print_rollup_report(const indexmac::core::SweepReport& report) {
  using namespace indexmac;
  const core::RollupReport totals = core::compute_rollup(report);

  struct Pair {
    const core::RollupRow* baseline = nullptr;
    const core::RollupRow* proposed = nullptr;
    const core::RollupRow* proposed_v2 = nullptr;
    const core::RollupRow* any = nullptr;
  };
  std::map<std::string, Pair> pairs;  // keyed by everything but the paired algorithm
  std::vector<std::string> order;
  for (const core::RollupRow& row : totals.rows) {
    const core::AlgorithmDescriptor& desc =
        core::AlgorithmRegistry::instance().by_algorithm(row.algorithm);
    std::string key = row.suite + "|" + workloads::sparsity_label(row.sp) + "|u" +
                      std::to_string(row.unroll) + "|df" +
                      std::to_string(static_cast<int>(row.dataflow)) + "|L" +
                      std::to_string(row.tile_rows) + "|" + core::sweep_mode_name(row.mode);
    if (desc.pairing == core::PairingRole::kStandalone) key += "|" + desc.id;
    auto [it, inserted] = pairs.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.any = &row;
    switch (desc.pairing) {
      case core::PairingRole::kBaseline: it->second.baseline = &row; break;
      case core::PairingRole::kProposed: it->second.proposed = &row; break;
      case core::PairingRole::kProposedV2: it->second.proposed_v2 = &row; break;
      case core::PairingRole::kStandalone: break;
    }
  }

  std::printf("sweep %s: network rollup (%zu groups)\n\n", report.spec_name.c_str(),
              totals.rows.size());
  TextTable table;
  table.set_header({"suite", "sparsity", "unroll", "algorithm", "layers", "net cycles",
                    "net accesses", "energy (bytes)", "speedup"});
  for (const std::string& key : order) {
    const Pair& pair = pairs.at(key);
    const core::RollupRow& shown = pair.proposed != nullptr ? *pair.proposed : *pair.any;
    std::string speedup = "-";
    if (pair.baseline != nullptr && pair.proposed != nullptr)
      speedup = fmt_speedup(pair.baseline->cycles / pair.proposed->cycles);
    table.add_row({shown.suite, workloads::sparsity_label(shown.sp),
                   std::to_string(shown.unroll),
                   core::AlgorithmRegistry::instance().by_algorithm(shown.algorithm).id,
                   std::to_string(shown.layers), fmt_fixed(shown.cycles, 0),
                   fmt_count(shown.data_accesses), fmt_count(shown.energy_proxy_bytes()),
                   speedup});
    if (pair.proposed_v2 != nullptr) {
      const core::RollupRow* v2_base =
          pair.proposed != nullptr ? pair.proposed : pair.baseline;
      const core::RollupRow& v2 = *pair.proposed_v2;
      table.add_row({v2.suite, workloads::sparsity_label(v2.sp), std::to_string(v2.unroll),
                     core::AlgorithmRegistry::instance().by_algorithm(v2.algorithm).id,
                     std::to_string(v2.layers), fmt_fixed(v2.cycles, 0),
                     fmt_count(v2.data_accesses), fmt_count(v2.energy_proxy_bytes()),
                     v2_base != nullptr ? fmt_speedup(v2_base->cycles / v2.cycles) : "-"});
    }
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_report(int argc, char** argv) {
  using namespace indexmac;
  bool rollup = false;
  const char* path = nullptr;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rollup") == 0) rollup = true;
    else if (argv[i][0] != '-' && path == nullptr) path = argv[i];
    else {
      usage(stderr);
      return 2;
    }
  }
  if (path == nullptr) {
    usage(stderr);
    return 2;
  }
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "imac_run report: cannot open %s\n", path);
    return 1;
  }
  std::stringstream buf;
  buf << file.rdbuf();
  const core::SweepReport report = core::parse_csv_report(buf.str());
  if (rollup) return print_rollup_report(report);

  // Pair baseline/proposed/proposed-v2 measurements of the same point into
  // one line, by each family's registry pairing role. Standalone families
  // (dense, ssr) get the family id folded into the key, so every one keeps
  // its own line instead of vanishing behind a pair.
  struct Pair {
    const core::SweepRow* baseline = nullptr;
    const core::SweepRow* proposed = nullptr;
    const core::SweepRow* proposed_v2 = nullptr;
    const core::SweepRow* any = nullptr;
  };
  std::map<std::string, Pair> pairs;  // keyed by everything but the paired algorithm
  std::vector<std::string> order;
  for (const core::SweepRow& row : report.rows) {
    const core::SweepPoint& p = row.point;
    const core::AlgorithmDescriptor& desc =
        core::AlgorithmRegistry::instance().by_algorithm(p.config.algorithm);
    std::string key = p.suite + "|" + p.workload + "|" +
                      workloads::sparsity_label(p.sp) + "|u" +
                      std::to_string(p.config.kernel.unroll) + "|df" +
                      std::to_string(static_cast<int>(p.config.kernel.dataflow)) + "|L" +
                      std::to_string(p.config.tile_rows) + "|" +
                      core::sweep_mode_name(p.mode) + "|" +
                      std::to_string(p.dims.rows_a) + "x" + std::to_string(p.dims.k) + "x" +
                      std::to_string(p.dims.cols_b);
    if (desc.pairing == core::PairingRole::kStandalone) key += "|" + desc.id;
    auto [it, inserted] = pairs.try_emplace(key);
    if (inserted) order.push_back(key);
    it->second.any = &row;
    switch (desc.pairing) {
      case core::PairingRole::kBaseline: it->second.baseline = &row; break;
      case core::PairingRole::kProposed: it->second.proposed = &row; break;
      case core::PairingRole::kProposedV2: it->second.proposed_v2 = &row; break;
      case core::PairingRole::kStandalone: break;
    }
  }
  bool any_v2 = false;
  for (const std::string& key : order) any_v2 = any_v2 || pairs.at(key).proposed_v2 != nullptr;

  std::printf("sweep %s (%zu rows)\n\n", report.spec_name.c_str(), report.rows.size());
  TextTable table;
  std::vector<std::string> header = {"suite",  "workload", "GEMM (RxKxN)",
                                     "sparsity", "dataflow", "unroll", "algorithm",
                                     "cycles", "accesses", "speedup"};
  if (any_v2) {
    header.push_back("v2 cycles");
    header.push_back("v2 speedup");
  }
  table.set_header(header);
  for (const std::string& key : order) {
    const Pair& pair = pairs.at(key);
    const core::SweepRow& base = *pair.any;
    const core::SweepPoint& p = base.point;
    std::string speedup = "-";
    std::string cycles;
    if (pair.baseline != nullptr && pair.proposed != nullptr) {
      speedup = fmt_speedup(pair.baseline->cycles / pair.proposed->cycles);
      cycles = fmt_fixed(pair.proposed->cycles, 0);
    } else {
      cycles = fmt_fixed(base.cycles, 0);
    }
    const core::SweepRow& shown =
        pair.proposed != nullptr ? *pair.proposed : *pair.any;
    const char* df = p.config.kernel.dataflow == kernels::Dataflow::kAStationary   ? "a"
                     : p.config.kernel.dataflow == kernels::Dataflow::kBStationary ? "b"
                                                                                   : "c";
    std::vector<std::string> cells = {
        p.suite, p.workload,
        std::to_string(p.dims.rows_a) + "x" + std::to_string(p.dims.k) + "x" +
            std::to_string(p.dims.cols_b),
        workloads::sparsity_label(p.sp), df, std::to_string(p.config.kernel.unroll),
        core::AlgorithmRegistry::instance().by_algorithm(shown.point.config.algorithm).id,
        cycles, fmt_count(shown.data_accesses), speedup};
    if (any_v2) {
      // v2 speedup is measured against the strongest available baseline:
      // Algorithm 3 when present, else Algorithm 2.
      const core::SweepRow* v2_base =
          pair.proposed != nullptr ? pair.proposed : pair.baseline;
      cells.push_back(pair.proposed_v2 != nullptr ? fmt_fixed(pair.proposed_v2->cycles, 0) : "-");
      cells.push_back(pair.proposed_v2 != nullptr && v2_base != nullptr
                          ? fmt_speedup(v2_base->cycles / pair.proposed_v2->cycles)
                          : "-");
    }
    table.add_row(cells);
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

bool is_subcommand(const char* s) { return find_subcommand_doc(s) != nullptr; }

}  // namespace

int main(int argc, char** argv) {
  // `imac_run <sub> --help` prints that subcommand's section; `--help`
  // anywhere else prints everything.
  const bool named = argc >= 2 && is_subcommand(argv[1]);
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      if (named) {
        std::printf("usage: imac_run <subcommand> [args]\n\n%s",
                    find_subcommand_doc(argv[1])->help);
      } else {
        usage_full(stdout);
      }
      return 0;
    }
  if (argc < 2) {
    usage(stderr);
    return 2;
  }

  try {
    if (named) {
      const char* cmd = argv[1];
      char** rest = argv + 2;
      const int nrest = argc - 2;
      if (std::strcmp(cmd, "run") == 0) return cmd_run(nrest, rest);
      if (std::strcmp(cmd, "sweep") == 0) return cmd_sweep(nrest, rest);
      if (std::strcmp(cmd, "worker") == 0) return cmd_worker(nrest, rest);
      if (std::strcmp(cmd, "merge") == 0) return cmd_merge(nrest, rest);
      if (std::strcmp(cmd, "gdb") == 0) return cmd_gdb(nrest, rest);
      if (std::strcmp(cmd, "list-workloads") == 0) return cmd_list_workloads(nrest, rest);
      if (std::strcmp(cmd, "list-algorithms") == 0) return cmd_list_algorithms(nrest, rest);
      if (std::strcmp(cmd, "import-model") == 0) return cmd_import_model(nrest, rest);
      return cmd_report(nrest, rest);
    }
    // Historical interface: flags + a .s file, no subcommand.
    return cmd_run(argc - 1, argv + 1);
  } catch (const indexmac::SimError& e) {
    std::fprintf(stderr, "imac_run: %s\n", e.what());
    return 1;
  }
}
