// Debug-stub tests: the RSP packet layer (framing, checksums, escaping,
// incremental decode across recv boundaries), the BreakpointSet, the
// engines' run_with_breakpoints contract (stop BEFORE the breakpointed
// instruction, bit-identical state on both engines, including a breakpoint
// inside a fusable superblock chain), and the GdbSession command layer
// driven packet-by-packet without a socket.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/text_assembler.h"
#include "common/error.h"
#include "debug/gdb_server.h"
#include "debug/gdb_stub.h"
#include "fsim/breakpoints.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"
#include "mem/main_memory.h"

namespace indexmac::debug {
namespace {

// --- packet layer ----------------------------------------------------------

TEST(RspChecksum, MatchesKnownVectors) {
  EXPECT_EQ(rsp_checksum(""), 0u);
  EXPECT_EQ(rsp_checksum("OK"), ('O' + 'K') % 256);
  // The canonical example from the GDB manual: "$g#67".
  EXPECT_EQ(rsp_checksum("g"), 0x67u);
  // Wraps mod 256.
  EXPECT_EQ(rsp_checksum(std::string(256, 'a')), static_cast<std::uint8_t>(256 * 'a'));
}

TEST(RspEscape, RoundTripsReservedBytes) {
  const std::string payload = "a$b#c}d*e";
  const std::string escaped = rsp_escape(payload);
  // Every reserved byte costs two output bytes.
  EXPECT_EQ(escaped.size(), payload.size() + 4);
  EXPECT_EQ(escaped.find('$'), std::string::npos);
  EXPECT_EQ(escaped.find('#'), std::string::npos);
  EXPECT_EQ(escaped.find('*'), std::string::npos);
  EXPECT_EQ(rsp_unescape(escaped), payload);
}

TEST(RspEscape, EscapeByteItselfRoundTrips) {
  const std::string payload = "\x7d\x7d$\x7d";
  EXPECT_EQ(rsp_unescape(rsp_escape(payload)), payload);
}

TEST(RspEscape, LoneTrailingEscapeThrows) {
  EXPECT_THROW((void)rsp_unescape("abc\x7d"), SimError);
}

TEST(RspFrame, ChecksumCoversEscapedBytes) {
  // '#' escapes to 0x7d,0x03; the checksum must cover those two bytes.
  const std::string frame = rsp_frame("#");
  EXPECT_EQ(frame.substr(0, 1), "$");
  const std::string escaped = rsp_escape("#");
  char expect[3];
  std::snprintf(expect, sizeof expect, "%02x", rsp_checksum(escaped));
  EXPECT_EQ(frame, "$" + escaped + "#" + expect);
}

TEST(RspHex, ByteConversionsRoundTrip) {
  EXPECT_EQ(bytes_to_hex(std::string("\x00\xff\x10", 3)), "00ff10");
  EXPECT_EQ(hex_to_bytes("00ff10"), std::string("\x00\xff\x10", 3));
  EXPECT_THROW((void)hex_to_bytes("abc"), SimError);   // odd length
  EXPECT_THROW((void)hex_to_bytes("zz"), SimError);    // non-hex digit
}

TEST(RspHex, LittleEndianU64) {
  EXPECT_EQ(u64_to_hex_le(0x1122334455667788ull, 8), "8877665544332211");
  EXPECT_EQ(hex_le_to_u64("8877665544332211"), 0x1122334455667788ull);
  EXPECT_EQ(u64_to_hex_le(0xbeef, 4), "efbe0000");
  EXPECT_EQ(hex_le_to_u64("efbe0000"), 0xbeefull);
  EXPECT_THROW((void)hex_le_to_u64(""), SimError);
  EXPECT_THROW((void)hex_le_to_u64("112233445566778899"), SimError);  // 9 bytes
}

TEST(RspHex, BigEndianNumbers) {
  EXPECT_EQ(parse_hex_u64("1000"), 0x1000ull);
  EXPECT_EQ(parse_hex_u64("ffffffffffffffff"), ~0ull);
  EXPECT_THROW((void)parse_hex_u64(""), SimError);
  EXPECT_THROW((void)parse_hex_u64("0x10"), SimError);  // no 0x prefix in RSP
}

TEST(PacketBuffer, DecodesWholePacket) {
  PacketBuffer buf;
  buf.feed(rsp_frame("qSupported"));
  const auto ev = buf.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, PacketBuffer::Kind::kPacket);
  EXPECT_EQ(ev->payload, "qSupported");
  EXPECT_FALSE(buf.next().has_value());
  EXPECT_EQ(buf.pending_bytes(), 0u);
}

TEST(PacketBuffer, EmptyPacket) {
  PacketBuffer buf;
  buf.feed("$#00");
  const auto ev = buf.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, PacketBuffer::Kind::kPacket);
  EXPECT_EQ(ev->payload, "");
}

TEST(PacketBuffer, ReassemblesAcrossEveryRecvBoundary) {
  // The same frame split at every possible byte boundary must decode to the
  // same packet exactly once — the "interrupted $...#xx frame across recv
  // boundaries" case.
  const std::string frame = rsp_frame("m8000,40") + "+";
  for (std::size_t split = 0; split <= frame.size(); ++split) {
    PacketBuffer buf;
    buf.feed(frame.substr(0, split));
    std::vector<PacketBuffer::Event> events;
    while (auto ev = buf.next()) events.push_back(*ev);
    buf.feed(frame.substr(split));
    while (auto ev = buf.next()) events.push_back(*ev);
    ASSERT_EQ(events.size(), 2u) << "split at " << split;
    EXPECT_EQ(events[0].kind, PacketBuffer::Kind::kPacket);
    EXPECT_EQ(events[0].payload, "m8000,40");
    EXPECT_EQ(events[1].kind, PacketBuffer::Kind::kAck);
  }
}

TEST(PacketBuffer, EscapedPayloadAcrossBoundaries) {
  const std::string payload = "X}$#*Y";
  const std::string frame = rsp_frame(payload);
  for (std::size_t split = 0; split <= frame.size(); ++split) {
    PacketBuffer buf;
    buf.feed(frame.substr(0, split));
    auto ev = buf.next();
    if (!ev.has_value()) {
      buf.feed(frame.substr(split));
      ev = buf.next();
    }
    ASSERT_TRUE(ev.has_value()) << "split at " << split;
    EXPECT_EQ(ev->payload, payload);
  }
}

TEST(PacketBuffer, BadChecksumSurfacesForNak) {
  PacketBuffer buf;
  buf.feed("$g#00");  // checksum of "g" is 67, not 00
  const auto ev = buf.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, PacketBuffer::Kind::kBadChecksum);
  EXPECT_EQ(ev->payload, "g");
}

TEST(PacketBuffer, AckNakInterruptBetweenPackets) {
  PacketBuffer buf;
  buf.feed("+-\x03");
  buf.feed(rsp_frame("?"));
  std::vector<PacketBuffer::Kind> kinds;
  while (auto ev = buf.next()) kinds.push_back(ev->kind);
  ASSERT_EQ(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], PacketBuffer::Kind::kAck);
  EXPECT_EQ(kinds[1], PacketBuffer::Kind::kNak);
  EXPECT_EQ(kinds[2], PacketBuffer::Kind::kInterrupt);
  EXPECT_EQ(kinds[3], PacketBuffer::Kind::kPacket);
}

TEST(PacketBuffer, LineNoiseIsSkipped) {
  PacketBuffer buf;
  buf.feed("garbage\r\n");
  buf.feed(rsp_frame("OK"));
  const auto ev = buf.next();
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, PacketBuffer::Kind::kPacket);
  EXPECT_EQ(ev->payload, "OK");
}

TEST(PacketBuffer, OversizedInFlightBodyThrows) {
  PacketBuffer buf;
  buf.feed("$");
  buf.feed(std::string(kMaxPacketBytes + 1, 'a'));  // no '#' yet
  EXPECT_THROW((void)buf.next(), SimError);
}

// --- breakpoint set --------------------------------------------------------

TEST(BreakpointSet, AddRemoveContains) {
  BreakpointSet bps;
  EXPECT_TRUE(bps.empty());
  bps.add(0x1010);
  bps.add(0x1000);
  bps.add(0x1010);  // duplicate is a no-op
  EXPECT_EQ(bps.size(), 2u);
  EXPECT_TRUE(bps.contains(0x1000));
  EXPECT_TRUE(bps.contains(0x1010));
  EXPECT_FALSE(bps.contains(0x1004));
  EXPECT_TRUE(bps.remove(0x1000));
  EXPECT_FALSE(bps.remove(0x1000));  // already gone
  EXPECT_EQ(bps.size(), 1u);
}

TEST(BreakpointSet, IntersectsHalfOpenRange) {
  BreakpointSet bps;
  bps.add(0x1010);
  EXPECT_TRUE(bps.intersects(0x1000, 0x1014));
  EXPECT_TRUE(bps.intersects(0x1010, 0x1014));  // lo inclusive
  EXPECT_FALSE(bps.intersects(0x1000, 0x1010));  // hi exclusive
  EXPECT_FALSE(bps.intersects(0x1014, 0x1020));
}

// --- run_with_breakpoints --------------------------------------------------

/// A loop whose body is the fusable index-extract -> MAC -> slide chain, so
/// a breakpoint inside it lands in the middle of a threaded superblock.
const char* kLoopSource = R"(
    li   t0, 16
    vsetvli zero, t0, e32m1
    li   t1, 0x8000
    li   t2, 3
    sw   t2, 0(t1)
    li   t2, 5
    sw   t2, 4(t1)
    vle32.v v4, (t1)
    li   t1, 0x8100
    li   t2, 16
    sw   t2, 0(t1)
    li   t2, 17
    sw   t2, 4(t1)
    vle32.v v8, (t1)
    vmv.v.i v0, 0
    vmv.v.i v16, 7
    vmv.v.i v17, 9
    marker 1
loop:
    vmv.x.s t4, v8
    vindexmac.vx v0, v4, t4
    vslide1down.vx v4, v4, zero
    vslide1down.vx v8, v8, zero
    addi t5, t5, 1
    li   t6, 2
    blt  t5, t6, loop
    ebreak
)";

TEST(RunWithBreakpoints, InterpreterStopsBeforeBreakpoint) {
  const AssembledText assembled = assemble_text(kLoopSource);
  const std::uint64_t bp = assembled.symbols.at("loop");
  MainMemory mem;
  Machine m(assembled.program, mem);
  BreakpointSet bps;
  bps.add(bp);
  EXPECT_EQ(m.run_with_breakpoints(bps), StopReason::kRunning);
  EXPECT_EQ(m.state().pc, bp);  // parked ON the breakpoint, not past it
  // The breakpointed instruction has not executed: t4 (x29) still zero.
  EXPECT_EQ(m.state().x[29], 0u);
}

TEST(RunWithBreakpoints, PcAlreadyOnBreakpointReturnsImmediately) {
  const AssembledText assembled = assemble_text(kLoopSource);
  MainMemory mem;
  Machine m(assembled.program, mem);
  BreakpointSet bps;
  bps.add(assembled.program.base());
  const std::uint64_t before = m.instructions_retired();
  EXPECT_EQ(m.run_with_breakpoints(bps), StopReason::kRunning);
  EXPECT_EQ(m.instructions_retired(), before);  // nothing executed
}

TEST(RunWithBreakpoints, MaxStepsStillReported) {
  const AssembledText assembled = assemble_text(kLoopSource);
  MainMemory mem;
  Machine m(assembled.program, mem);
  BreakpointSet bps;
  bps.add(0xdead000);  // never hit
  EXPECT_EQ(m.run_with_breakpoints(bps, 5), StopReason::kMaxSteps);
  EXPECT_EQ(m.instructions_retired(), 5u);
}

TEST(RunWithBreakpoints, EmptySetRunsToCompletion) {
  const AssembledText assembled = assemble_text(kLoopSource);
  MainMemory mem;
  Machine m(assembled.program, mem);
  EXPECT_EQ(m.run_with_breakpoints(BreakpointSet{}), StopReason::kEbreak);
}

/// Drives both engines to the same breakpoint (inside the fused chain) and
/// requires bit-identical architectural state at every stop.
TEST(RunWithBreakpoints, ThreadedMatchesInterpreterThroughFusedChain) {
  const AssembledText assembled = assemble_text(kLoopSource);
  // vindexmac.vx is the second instruction of the fusable chain: a
  // breakpoint here forces the threaded engine off the superblock path.
  const std::uint64_t bp = assembled.symbols.at("loop") + 4;
  MainMemory mem_a, mem_b;
  Machine interp(assembled.program, mem_a);
  Machine machine_b(assembled.program, mem_b);
  ThreadedEngine threaded(machine_b);
  BreakpointSet bps;
  bps.add(bp);

  for (int stop = 0; stop < 2; ++stop) {  // loop runs twice through the bp
    ASSERT_EQ(interp.run_with_breakpoints(bps), StopReason::kRunning);
    ASSERT_EQ(threaded.run_with_breakpoints(bps), StopReason::kRunning);
    EXPECT_EQ(interp.state().pc, bp);
    EXPECT_EQ(machine_b.state().pc, bp);
    EXPECT_EQ(interp.instructions_retired(), machine_b.instructions_retired());
    for (unsigned r = 0; r < isa::kNumXRegs; ++r)
      EXPECT_EQ(interp.state().x[r], machine_b.state().x[r]) << "x" << r;
    for (unsigned v = 0; v < isa::kNumVRegs; ++v)
      for (unsigned lane = 0; lane < isa::kVlMax; ++lane)
        EXPECT_EQ(interp.state().v[v][lane], machine_b.state().v[v][lane])
            << "v" << v << "[" << lane << "]";
    // Step over the breakpoint on both before resuming.
    ASSERT_EQ(interp.step(), StopReason::kRunning);
    ASSERT_EQ(threaded.step(), StopReason::kRunning);
  }
  EXPECT_EQ(interp.run_with_breakpoints(bps), StopReason::kEbreak);
  EXPECT_EQ(threaded.run_with_breakpoints(bps), StopReason::kEbreak);
  EXPECT_EQ(interp.instructions_retired(), machine_b.instructions_retired());
}

// --- GdbSession command layer ---------------------------------------------

struct SessionFixture {
  AssembledText assembled = assemble_text(kLoopSource);
  MainMemory mem;
  Machine machine{assembled.program, mem};
  GdbSession session{assembled, machine, mem, ExecEngine::kInterp};
};

TEST(GdbSession, SupportedAndFeatures) {
  SessionFixture f;
  const std::string reply = f.session.handle("qSupported:swbreak+");
  EXPECT_NE(reply.find("qXfer:features:read+"), std::string::npos);
  EXPECT_NE(reply.find("QStartNoAckMode+"), std::string::npos);
  EXPECT_NE(reply.find("PacketSize="), std::string::npos);

  // Chunked target.xml fetch reassembles to the full document.
  std::string xml;
  std::size_t offset = 0;
  for (;;) {
    char req[64];
    std::snprintf(req, sizeof req, "qXfer:features:read:target.xml:%zx,40", offset);
    const std::string chunk = f.session.handle(req);
    ASSERT_FALSE(chunk.empty());
    ASSERT_TRUE(chunk[0] == 'm' || chunk[0] == 'l');
    xml += chunk.substr(1);
    offset += chunk.size() - 1;
    if (chunk[0] == 'l') break;
  }
  EXPECT_EQ(xml, target_xml());
  EXPECT_NE(xml.find("riscv:rv64"), std::string::npos);
  EXPECT_NE(xml.find("name=\"vl\""), std::string::npos);
}

TEST(GdbSession, NoAckModeNegotiation) {
  SessionFixture f;
  EXPECT_FALSE(f.session.no_ack());
  EXPECT_EQ(f.session.handle("QStartNoAckMode"), "OK");
  EXPECT_TRUE(f.session.no_ack());
}

TEST(GdbSession, RegisterFileMatchesMachineState) {
  SessionFixture f;
  f.machine.state().x[5] = 0x1122334455667788ull;
  f.machine.state().v[4][0] = 0xabcd;
  f.machine.state().vl = 16;
  const std::string g = f.session.handle("g");
  // x5 at offset 5*16 hex digits, little-endian.
  EXPECT_EQ(g.substr(5 * 16, 16), "8877665544332211");
  // p picks out single registers: pc is regnum 32 (0x20).
  EXPECT_EQ(f.session.handle("p20"),
            u64_to_hex_le(f.machine.state().pc, 8));
  // vl is regnum 97 (0x61), a 32-bit register.
  EXPECT_EQ(f.session.handle("p61"), "10000000");
  // v4 is regnum 69 (0x45): 16 little-endian u32 lanes.
  const std::string v4 = f.session.handle("p45");
  ASSERT_EQ(v4.size(), isa::kVlMax * 8);
  EXPECT_EQ(v4.substr(0, 8), "cdab0000");
}

TEST(GdbSession, RegisterWriteReadRoundTrip) {
  SessionFixture f;
  EXPECT_EQ(f.session.handle("P5=efbeaddeefbeadde"), "OK");
  EXPECT_EQ(f.machine.state().x[5], 0xdeadbeefdeadbeefull);
  EXPECT_EQ(f.session.handle("p5"), "efbeaddeefbeadde");
  // x0 writes are accepted and ignored.
  EXPECT_EQ(f.session.handle("P0=0102030405060708"), "OK");
  EXPECT_EQ(f.machine.state().x[0], 0u);
  // Whole-file write round-trips.
  const std::string g = f.session.handle("g");
  EXPECT_EQ(f.session.handle("G" + g), "OK");
  EXPECT_EQ(f.session.handle("g"), g);
  // Bad register numbers and lengths error, not crash.
  EXPECT_EQ(f.session.handle("p7f"), "E01");
  EXPECT_EQ(f.session.handle("P5=1234"), "E01");
}

TEST(GdbSession, MemoryAccess) {
  SessionFixture f;
  f.mem.write_u32(0x8000, 0x11223344);
  EXPECT_EQ(f.session.handle("m8000,4"), "44332211");
  EXPECT_EQ(f.session.handle("M9000,4:efbeadde"), "OK");
  EXPECT_EQ(f.mem.read_u32(0x9000), 0xdeadbeefu);
  EXPECT_EQ(f.session.handle("m9000,4"), "efbeadde");
  // Length/payload mismatch and absurd lengths are errors.
  EXPECT_EQ(f.session.handle("M9000,4:efbe"), "E01");
  EXPECT_EQ(f.session.handle("m9000,10001"), "E01");
  EXPECT_EQ(f.session.handle("m9000"), "E01");
}

TEST(GdbSession, BreakpointContinueStep) {
  SessionFixture f;
  const std::uint64_t bp = f.assembled.symbols.at("loop");
  char zpkt[32];
  std::snprintf(zpkt, sizeof zpkt, "Z0,%llx,4", static_cast<unsigned long long>(bp));
  EXPECT_EQ(f.session.handle(zpkt), "OK");
  EXPECT_EQ(f.session.handle("c"), "T05swbreak:;");
  EXPECT_EQ(f.machine.state().pc, bp);
  EXPECT_EQ(f.session.handle("?"), "T05swbreak:;");  // '?' repeats last stop
  // Single steps report S05 and advance exactly one instruction.
  const std::uint64_t retired = f.machine.instructions_retired();
  EXPECT_EQ(f.session.handle("s"), "S05");
  EXPECT_EQ(f.machine.instructions_retired(), retired + 1);
  // Continue resumes past the (still-set) breakpoint pc via step-over, hits
  // it again on the loop's second iteration, then removing it lets the
  // program run to ebreak (W00).
  f.machine.state().pc = bp;  // rewind onto the breakpoint
  EXPECT_EQ(f.session.handle("c"), "T05swbreak:;");
  char zrem[32];
  std::snprintf(zrem, sizeof zrem, "z0,%llx,4", static_cast<unsigned long long>(bp));
  EXPECT_EQ(f.session.handle(zrem), "OK");
  EXPECT_EQ(f.session.handle("c"), "W00");
  EXPECT_EQ(f.session.handle("c"), "W00");  // resuming an exited process
  // Non-software breakpoint types are unsupported (empty reply).
  EXPECT_EQ(f.session.handle("Z1,8000,4"), "");
}

TEST(GdbSession, ExecutionFaultBecomesSignalStop) {
  SessionFixture f;
  f.machine.state().pc = 0xdead0000;  // outside the program
  EXPECT_EQ(f.session.handle("s"), "S0b");
  EXPECT_EQ(f.session.handle("?"), "S0b");
  EXPECT_FALSE(f.session.last_fault().empty());
  // monitor fault surfaces the SimError text (hex-encoded qRcmd reply).
  const std::string reply = f.session.handle("qRcmd," + bytes_to_hex("fault"));
  EXPECT_EQ(hex_to_bytes(reply), f.session.last_fault() + "\n");
}

TEST(GdbSession, MonitorCommands) {
  SessionFixture f;
  const auto run_monitor = [&](const std::string& cmd) {
    return hex_to_bytes(f.session.handle("qRcmd," + bytes_to_hex(cmd)));
  };
  EXPECT_EQ(run_monitor("retired"), "0\n");
  EXPECT_EQ(run_monitor("engine"), "interp\n");
  EXPECT_EQ(run_monitor("fault"), "none\n");
  // markers lists the marker pc; symbols lists the labels.
  const std::string markers = run_monitor("markers");
  EXPECT_NE(markers.find("marker 1 0x"), std::string::npos);
  const std::string symbols = run_monitor("symbols");
  EXPECT_NE(symbols.find("loop 0x"), std::string::npos);
  EXPECT_NE(run_monitor("bogus").find("unknown monitor command"), std::string::npos);
}

TEST(GdbSession, DetachAndKill) {
  SessionFixture f;
  EXPECT_FALSE(f.session.finished());
  EXPECT_EQ(f.session.handle("D"), "OK");
  EXPECT_TRUE(f.session.finished());

  SessionFixture g;
  EXPECT_EQ(g.session.handle("k"), "");
  EXPECT_TRUE(g.session.finished());
  EXPECT_TRUE(g.session.reply_suppressed());
}

TEST(GdbSession, UnsupportedAndMalformedPackets) {
  SessionFixture f;
  EXPECT_EQ(f.session.handle("vMustReplyEmpty"), "");
  EXPECT_EQ(f.session.handle(""), "");
  EXPECT_EQ(f.session.handle("qC"), "QC1");
  EXPECT_EQ(f.session.handle("qAttached"), "1");
  EXPECT_EQ(f.session.handle("Hg0"), "OK");
  EXPECT_EQ(f.session.handle("mzz,4"), "E01");  // bad hex -> error, not throw
}

}  // namespace
}  // namespace indexmac::debug
