// Layer-table invariants for the three evaluated CNNs: conv counts,
// feature-map geometry, channel bookkeeping and the conv->GEMM mapping.
#include <gtest/gtest.h>

#include "cnn/conv_layer.h"

namespace indexmac::cnn {
namespace {

TEST(ConvLayer, OutputGeometry) {
  const ConvLayer conv{"c", 3, 64, 7, 7, 2, 3, 3, 224, 224};
  EXPECT_EQ(conv.out_h(), 112u);
  EXPECT_EQ(conv.out_w(), 112u);
}

TEST(ConvLayer, NonSquareKernels) {
  const ConvLayer conv{"c", 128, 128, 1, 7, 1, 0, 3, 17, 17};
  EXPECT_EQ(conv.out_h(), 17u);
  EXPECT_EQ(conv.out_w(), 17u);
  EXPECT_EQ(conv.gemm().k, 128u * 7);
}

TEST(ConvLayer, GemmMapping) {
  const ConvLayer conv{"c", 64, 256, 3, 3, 1, 1, 1, 56, 56};
  const auto g = conv.gemm();
  EXPECT_EQ(g.rows_a, 256u);
  EXPECT_EQ(g.k, 64u * 9);
  EXPECT_EQ(g.cols_b, 56u * 56);
  EXPECT_EQ(conv.macs(), 256ull * 576 * 3136);
}

TEST(ConvLayer, GeometryUnderflowThrows) {
  const ConvLayer conv{"c", 3, 8, 7, 7, 1, 0, 0, 5, 5};
  EXPECT_THROW((void)conv.out_h(), SimError);
}

TEST(Resnet50, HasFiftyThreeConvLayers) {
  EXPECT_EQ(resnet50().layers.size(), 53u);
}

TEST(Resnet50, FirstAndLastLayersMatchArchitecture) {
  const auto model = resnet50();
  const ConvLayer& first = model.layers.front();
  EXPECT_EQ(first.name, "conv1");
  EXPECT_EQ(first.gemm().k, 3u * 49);
  EXPECT_EQ(first.gemm().cols_b, 112u * 112);
  const ConvLayer& last = model.layers.back();
  // layer4.2.conv3: 512 -> 2048 at 7x7.
  EXPECT_EQ(last.out_channels, 2048u);
  EXPECT_EQ(last.gemm().cols_b, 49u);
}

TEST(Resnet50, StageGeometry) {
  const auto model = resnet50();
  for (const ConvLayer& l : model.layers) {
    if (l.name.rfind("layer1", 0) == 0) {
      EXPECT_EQ(l.gemm().cols_b, 56u * 56) << l.name;
    }
    if (l.name.rfind("layer4", 0) == 0 && l.name.find("conv1") == std::string::npos &&
        l.name.find("downsample") == std::string::npos) {
      EXPECT_EQ(l.gemm().cols_b, 49u) << l.name;
    }
  }
}

TEST(Resnet50, DownsampleProjectionsPresent) {
  const auto model = resnet50();
  unsigned downsamples = 0;
  for (const ConvLayer& l : model.layers)
    if (l.name.find("downsample") != std::string::npos) {
      ++downsamples;
      EXPECT_EQ(l.kernel_h, 1u);
    }
  EXPECT_EQ(downsamples, 4u);
}

TEST(Resnet50, TotalMacsMatchKnownBudget) {
  // ResNet50 conv MACs ~= 4.09 GMac at 224x224 (excluding the FC layer).
  std::uint64_t macs = 0;
  for (const ConvLayer& l : resnet50().layers) macs += l.macs();
  EXPECT_GT(macs, 3'900'000'000ull);
  EXPECT_LT(macs, 4'200'000'000ull);
}

TEST(Densenet121, HasOneHundredTwentyConvLayers) {
  EXPECT_EQ(densenet121().layers.size(), 120u);
}

TEST(Densenet121, ChannelBookkeeping) {
  const auto model = densenet121();
  // First dense layer consumes 64 channels; last consumes 512 + 15*32.
  const ConvLayer* first_dense = nullptr;
  const ConvLayer* last_dense = nullptr;
  for (const ConvLayer& l : model.layers) {
    if (l.name == "denseblock1.denselayer1.conv1") first_dense = &l;
    if (l.name == "denseblock4.denselayer16.conv1") last_dense = &l;
  }
  ASSERT_NE(first_dense, nullptr);
  ASSERT_NE(last_dense, nullptr);
  EXPECT_EQ(first_dense->in_channels, 64u);
  EXPECT_EQ(last_dense->in_channels, 512u + 15 * 32);
  EXPECT_EQ(last_dense->gemm().cols_b, 49u);
}

TEST(Densenet121, TransitionsHalveChannels) {
  const auto model = densenet121();
  for (const ConvLayer& l : model.layers)
    if (l.name.rfind("transition", 0) == 0) {
      EXPECT_EQ(l.out_channels, l.in_channels / 2) << l.name;
    }
}

TEST(Inceptionv3, HasNinetyFourConvLayers) {
  EXPECT_EQ(inceptionv3().layers.size(), 94u);
}

TEST(Inceptionv3, StemGeometry) {
  const auto model = inceptionv3();
  EXPECT_EQ(model.layers[0].gemm().cols_b, 149u * 149);
  EXPECT_EQ(model.layers[1].gemm().cols_b, 147u * 147);
  EXPECT_EQ(model.layers[4].gemm().cols_b, 71u * 71);  // Conv2d_4a_3x3
}

TEST(Inceptionv3, MixedBlockInputChannels) {
  const auto model = inceptionv3();
  auto find = [&model](const std::string& name) -> const ConvLayer& {
    for (const ConvLayer& l : model.layers)
      if (l.name == name) return l;
    ADD_FAILURE() << "missing layer " << name;
    static ConvLayer dummy{};
    return dummy;
  };
  EXPECT_EQ(find("Mixed_5b.branch1x1").in_channels, 192u);
  EXPECT_EQ(find("Mixed_5c.branch1x1").in_channels, 256u);
  EXPECT_EQ(find("Mixed_5d.branch1x1").in_channels, 288u);
  EXPECT_EQ(find("Mixed_6b.branch1x1").in_channels, 768u);
  EXPECT_EQ(find("Mixed_7b.branch1x1").in_channels, 1280u);
  EXPECT_EQ(find("Mixed_7c.branch1x1").in_channels, 2048u);
  // 17x17 seven-wide factorized convs.
  EXPECT_EQ(find("Mixed_6b.branch7x7_2").kernel_w, 7u);
  EXPECT_EQ(find("Mixed_6b.branch7x7_2").gemm().cols_b, 17u * 17);
}

TEST(Inceptionv3, FactorizedConvIm2colMatchesHandComputation) {
  // The 1x7 / 7x1 factorized pair of Mixed_6b.branch7x7, im2col'd by hand.
  // branch7x7_2: 128 -> 128, 1x7 kernel, pad (0,3), 17x17 input:
  //   out = 17x17 (height untouched, width padded back to 17),
  //   A = [128 x 128*1*7], B columns = 289.
  // branch7x7_3: 128 -> 192, 7x1 kernel, pad (3,0) — the transpose-shaped
  // sibling with the same k.
  const auto model = inceptionv3();
  const ConvLayer* h = nullptr;
  const ConvLayer* v = nullptr;
  for (const ConvLayer& l : model.layers) {
    if (l.name == "Mixed_6b.branch7x7_2") h = &l;
    if (l.name == "Mixed_6b.branch7x7_3") v = &l;
  }
  ASSERT_NE(h, nullptr);
  ASSERT_NE(v, nullptr);

  EXPECT_EQ(h->kernel_h, 1u);
  EXPECT_EQ(h->kernel_w, 7u);
  EXPECT_EQ(h->out_h(), 17u);
  EXPECT_EQ(h->out_w(), (17u + 2 * 3 - 7) / 1 + 1);  // 17
  EXPECT_EQ(h->gemm().rows_a, 128u);
  EXPECT_EQ(h->gemm().k, 128u * 1 * 7);
  EXPECT_EQ(h->gemm().cols_b, 289u);
  EXPECT_EQ(h->macs(), 128ull * 896 * 289);

  EXPECT_EQ(v->kernel_h, 7u);
  EXPECT_EQ(v->kernel_w, 1u);
  EXPECT_EQ(v->pad_h, 3u);
  EXPECT_EQ(v->pad_w, 0u);
  EXPECT_EQ(v->gemm().rows_a, 192u);
  EXPECT_EQ(v->gemm().k, 128u * 7 * 1);
  EXPECT_EQ(v->gemm().cols_b, 289u);
}

TEST(UniqueGemms, GroupsRepeatedShapes) {
  const auto model = resnet50();
  const auto groups = unique_gemms(model);
  // Far fewer unique shapes than layers, and multiplicities must add up.
  EXPECT_LT(groups.size(), model.layers.size());
  unsigned total = 0;
  for (const auto& g : groups) total += g.count;
  EXPECT_EQ(total, model.layers.size());
  // The 64->256 1x1 shape at 56x56 appears four times: the conv3 expansion
  // of all three layer1 blocks plus the block-0 projection shortcut.
  bool found = false;
  for (const auto& g : groups)
    if (g.dims.rows_a == 256 && g.dims.k == 64 && g.dims.cols_b == 3136) {
      EXPECT_EQ(g.count, 4u);
      found = true;
    }
  EXPECT_TRUE(found);
}

TEST(UniqueGemms, AllModelsProduceValidDims) {
  for (const auto& model : {resnet50(), densenet121(), inceptionv3()}) {
    for (const auto& g : unique_gemms(model)) {
      EXPECT_GT(g.dims.rows_a, 0u) << model.name;
      EXPECT_GT(g.dims.k, 0u) << model.name;
      EXPECT_GT(g.dims.cols_b, 0u) << model.name;
      EXPECT_GE(g.count, 1u) << model.name;
    }
  }
}

}  // namespace
}  // namespace indexmac::cnn
