// Fuzz-style assembler round-trip over every generated kernel: each
// program the kernel generators emit is disassembled to text, re-assembled
// with the text assembler, and must come back with identical encodings.
// This pins the text assembler to the full vocabulary the generators
// actually use (all algorithms x dataflows x unrolls x element types,
// markers included, plus the SpMV and ELLPACK kernels), not just the
// hand-picked instructions of test_text_assembler.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "asm/text_assembler.h"
#include "kernels/ellpack_kernel.h"
#include "kernels/kernels.h"
#include "kernels/spmv_kernel.h"
#include "workloads/workloads.h"

namespace indexmac::kernels {
namespace {

/// Disassembles `program`, re-assembles the text at the same base, and
/// expects bit-identical instruction words.
void expect_round_trip(const Program& program, const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_GT(program.size(), 0u);
  const std::string text = program_to_source(program);
  const AssembledText again = assemble_text(text, program.base());
  ASSERT_EQ(again.program.size(), program.size());
  EXPECT_EQ(again.program.words(), program.words());
}

SpmmLayout layout_for(const GemmDims& dims, sparse::Sparsity sp, unsigned tile_rows) {
  AddressAllocator alloc;
  return make_layout(dims, sp, tile_rows, alloc);
}

TEST(KernelRoundTrip, IndexmacAllUnrollsSparsitiesMarkers) {
  const GemmDims dims{16, 64, 40};  // full strips + ragged tail
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24})
    for (const unsigned unroll : {1u, 2u, 4u})
      for (const bool markers : {false, true}) {
        KernelOptions options{.unroll = unroll, .emit_markers = markers};
        const SpmmLayout layout = layout_for(dims, sp, 16);
        expect_round_trip(emit_indexmac_kernel(layout, options),
                          "indexmac u" + std::to_string(unroll) + " " + std::to_string(sp.n) +
                              ":" + std::to_string(sp.m) + (markers ? " markers" : ""));
      }
}

TEST(KernelRoundTrip, Algorithm4AllUnrollsSparsitiesMarkers) {
  const GemmDims dims{16, 64, 40};  // full strips + ragged tail
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24})
    for (const unsigned unroll : {1u, 2u, 4u})
      for (const bool markers : {false, true}) {
        KernelOptions options{.unroll = unroll, .emit_markers = markers};
        const SpmmLayout layout = layout_for(dims, sp, 16);
        expect_round_trip(emit_algorithm4(layout, options),
                          "algorithm4 u" + std::to_string(unroll) + " " + std::to_string(sp.n) +
                              ":" + std::to_string(sp.m) + (markers ? " markers" : ""));
      }
}

TEST(KernelRoundTrip, Algorithm4IntegerLanesAndOddSlots) {
  KernelOptions options{.unroll = 2, .elem = ElemType::kI32};
  const SpmmLayout layout = layout_for({8, 32, 16}, sparse::kSparsity14, 16);
  expect_round_trip(emit_algorithm4(layout, options), "algorithm4 i32");
  // 3 slots per (row, k-tile): dual MAC plus trailing packed single.
  KernelOptions odd{.unroll = 2};
  const SpmmLayout odd_layout = layout_for({8, 32, 16}, sparse::Sparsity{3, 8}, 8);
  expect_round_trip(emit_algorithm4(odd_layout, odd), "algorithm4 odd slots");
}

TEST(KernelRoundTrip, SsrSparsitiesAndMarkers) {
  // Pins the text assembler to the SSR vocabulary the generator emits
  // (ssrcfg/ssren and the operand-less streaming MACs).
  const GemmDims dims{16, 64, 40};  // full strips + ragged tail
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24})
    for (const bool markers : {false, true}) {
      KernelOptions options{.unroll = 1, .emit_markers = markers};
      const SpmmLayout layout = layout_for(dims, sp, 16);
      expect_round_trip(emit_algorithm_ssr(layout, options),
                        "ssr " + std::to_string(sp.n) + ":" + std::to_string(sp.m) +
                            (markers ? " markers" : ""));
    }
  KernelOptions i32{.unroll = 1, .elem = ElemType::kI32};
  expect_round_trip(emit_algorithm_ssr(layout_for({8, 32, 16}, sparse::kSparsity14, 8), i32),
                    "ssr i32");
}

TEST(KernelRoundTrip, RowwiseAllDataflowsAndUnrolls) {
  const GemmDims dims{16, 64, 40};
  for (const auto df :
       {Dataflow::kAStationary, Dataflow::kBStationary, Dataflow::kCStationary})
    for (const unsigned unroll : {1u, 2u, 4u}) {
      KernelOptions options{.unroll = unroll, .dataflow = df};
      const SpmmLayout layout = layout_for(dims, sparse::kSparsity24, 16);
      expect_round_trip(emit_rowwise_spmm_kernel(layout, options),
                        std::string("rowwise df=") + std::to_string(static_cast<int>(df)) +
                            " u" + std::to_string(unroll));
    }
}

TEST(KernelRoundTrip, RowwiseIntegerLanes) {
  KernelOptions options{.unroll = 2, .elem = ElemType::kI32};
  const SpmmLayout layout = layout_for({8, 32, 16}, sparse::kSparsity14, 16);
  expect_round_trip(emit_rowwise_spmm_kernel(layout, options), "rowwise i32");
  options.elem = ElemType::kF32;
  expect_round_trip(emit_rowwise_spmm_kernel(layout, options), "rowwise f32");
}

TEST(KernelRoundTrip, DenseBaseline) {
  AddressAllocator alloc;
  const SpmmLayout layout = make_layout({8, 32, 24}, sparse::kSparsity14, 16, alloc);
  const std::uint64_t a_dense = alloc.alloc(8 * 32 * 4);
  for (const auto elem : {ElemType::kF32, ElemType::kI32}) {
    KernelOptions options{.unroll = 1, .elem = elem};
    expect_round_trip(emit_dense_rowwise_kernel(layout, a_dense, 32, options),
                      elem == ElemType::kF32 ? "dense f32" : "dense i32");
  }
}

TEST(KernelRoundTrip, SpmvBothElementTypes) {
  AddressAllocator alloc;
  const SpmvLayout layout = make_spmv_layout(24, 64, 32, alloc);
  expect_round_trip(emit_spmv_kernel(layout, ElemType::kF32), "spmv f32");
  expect_round_trip(emit_spmv_kernel(layout, ElemType::kI32), "spmv i32");
}

TEST(KernelRoundTrip, Ellpack) {
  AddressAllocator alloc;
  const EllpackLayout layout = make_ellpack_layout({16, 64, 40}, 32, alloc);
  expect_round_trip(emit_ellpack_kernel(layout), "ellpack");
}

TEST(KernelRoundTrip, RegistryShapesSurviveGeneration) {
  // Shrunk versions of every registry suite's first shapes still produce
  // round-trippable kernels (guards new suites against emitting shapes the
  // generators cannot encode).
  const kernels::GemmDims cap{16, 64, 48};
  for (const std::string& name : workloads::suite_names()) {
    const workloads::Suite& suite = workloads::suite(name);
    const std::size_t take = std::min<std::size_t>(2, suite.workloads.size());
    for (std::size_t i = 0; i < take; ++i) {
      const GemmDims dims = workloads::shrink(suite.workloads[i].dims, cap);
      const SpmmLayout layout = layout_for(dims, sparse::kSparsity24, 16);
      KernelOptions options{.unroll = 4};
      expect_round_trip(emit_indexmac_kernel(layout, options),
                        name + "/" + suite.workloads[i].name);
    }
  }
}

}  // namespace
}  // namespace indexmac::kernels
