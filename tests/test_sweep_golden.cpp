// Golden-file regression tests: the checked-in canonical sweep spec
// (tests/golden/tiny_sweep.json) must reproduce the checked-in CSV
// (tests/golden/tiny_sweep.csv) byte-for-byte. Exact-mode cycles and
// data-access counts are integers fully determined by the timing model, so
// ANY drift in kernels, timing, memory hierarchy or report formatting
// fails tier-1 loudly here.
//
// To regenerate after an intentional model change:
//   build/tools/imac_run sweep --spec tests/golden/tiny_sweep.json
//     --out tests/golden/tiny_sweep.csv     (one command line)
// and explain the cycle deltas in the commit message.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/sweep.h"

#ifndef INDEXMAC_GOLDEN_DIR
#error "tests/CMakeLists.txt must define INDEXMAC_GOLDEN_DIR"
#endif

namespace indexmac::core {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  IMAC_CHECK(file.good(), "cannot open golden file " + path);
  std::stringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

std::string golden_path(const char* name) {
  return std::string(INDEXMAC_GOLDEN_DIR) + "/" + name;
}

TEST(SweepGolden, TinySweepReproducesCheckedInCsvByteForByte) {
  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  const std::string expected = read_file(golden_path("tiny_sweep.csv"));

  const SweepReport report = run_sweep(spec, /*threads=*/2);
  const std::string actual = report_to_csv(report);

  if (actual != expected) {
    // Print both documents whole: the diff IS the regression report.
    ADD_FAILURE() << "golden sweep drifted.\n--- expected (tiny_sweep.csv)\n"
                  << expected << "--- actual\n"
                  << actual
                  << "--- if the timing-model change is intentional, regenerate with:\n"
                     "    imac_run sweep --spec tests/golden/tiny_sweep.json "
                     "--out tests/golden/tiny_sweep.csv\n";
  }
}

TEST(SweepGolden, GoldenCsvIsSelfConsistent) {
  // The checked-in artifact itself parses, re-renders identically, and
  // carries the spec's full grid (guards against hand-edited golden files).
  const std::string csv = read_file(golden_path("tiny_sweep.csv"));
  const SweepReport parsed = parse_csv_report(csv);
  EXPECT_EQ(report_to_csv(parsed), csv);

  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  EXPECT_EQ(parsed.spec_name, spec.name);
  EXPECT_EQ(parsed.rows.size(), expand_sweep(spec).size());
  for (const SweepRow& row : parsed.rows) {
    EXPECT_EQ(row.point.mode, SweepMode::kExact);
    EXPECT_GT(row.cycles, 0.0);
    EXPECT_GT(row.data_accesses, 0u);
  }
}

TEST(SweepGolden, HeadlineSpeedupHoldsInGoldenData) {
  // The paper's core claim, locked into the golden artifact: for every
  // (shape, sparsity, unroll) cell, indexmac beats rowwise and performs
  // fewer memory accesses.
  const SweepReport parsed = parse_csv_report(read_file(golden_path("tiny_sweep.csv")));
  std::size_t pairs = 0;
  for (const SweepRow& a : parsed.rows) {
    if (a.point.config.algorithm != Algorithm::kRowwiseSpmm) continue;
    for (const SweepRow& b : parsed.rows) {
      if (b.point.config.algorithm != Algorithm::kIndexmac) continue;
      if (b.point.workload != a.point.workload || !(b.point.sp == a.point.sp) ||
          b.point.config.kernel.unroll != a.point.config.kernel.unroll)
        continue;
      ++pairs;
      EXPECT_GT(a.cycles, b.cycles) << a.point.workload;
      EXPECT_GE(a.data_accesses, b.data_accesses) << a.point.workload;
    }
  }
  EXPECT_EQ(pairs, 12u);  // 3 shapes x 2 sparsities x 2 unrolls
}

}  // namespace
}  // namespace indexmac::core
