// Golden-file regression tests: the checked-in canonical sweep spec
// (tests/golden/tiny_sweep.json) must reproduce the checked-in CSV
// (tests/golden/tiny_sweep.csv) byte-for-byte. Exact-mode cycles and
// data-access counts are integers fully determined by the timing model, so
// ANY drift in kernels, timing, memory hierarchy or report formatting
// fails tier-1 loudly here.
//
// To regenerate after an intentional model change:
//   build/tools/imac_run sweep --spec tests/golden/tiny_sweep.json
//     --out tests/golden/tiny_sweep.csv     (one command line)
// and explain the cycle deltas in the commit message.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/result_store.h"
#include "core/rollup.h"
#include "core/sweep.h"
#include "locale_test_util.h"

#ifndef INDEXMAC_GOLDEN_DIR
#error "tests/CMakeLists.txt must define INDEXMAC_GOLDEN_DIR"
#endif

namespace indexmac::core {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  IMAC_CHECK(file.good(), "cannot open golden file " + path);
  std::stringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

std::string golden_path(const char* name) {
  return std::string(INDEXMAC_GOLDEN_DIR) + "/" + name;
}

TEST(SweepGolden, TinySweepReproducesCheckedInCsvByteForByte) {
  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  const std::string expected = read_file(golden_path("tiny_sweep.csv"));

  const SweepReport report = run_sweep(spec, /*threads=*/2);
  const std::string actual = report_to_csv(report);

  if (actual != expected) {
    // Print both documents whole: the diff IS the regression report.
    ADD_FAILURE() << "golden sweep drifted.\n--- expected (tiny_sweep.csv)\n"
                  << expected << "--- actual\n"
                  << actual
                  << "--- if the timing-model change is intentional, regenerate with:\n"
                     "    imac_run sweep --spec tests/golden/tiny_sweep.json "
                     "--out tests/golden/tiny_sweep.csv\n";
  }
}

TEST(SweepGolden, TinySweepReproducesCheckedInJsonByteForByte) {
  // The JSON rendition is golden too: it locks the locale-pinned number
  // formatter (std::to_chars) in addition to the timing model.
  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  const std::string expected = read_file(golden_path("tiny_sweep_report.json"));
  const SweepReport report = run_sweep(spec, /*threads=*/2);
  EXPECT_EQ(report_to_json(report), expected)
      << "golden JSON drifted; regenerate with:\n    imac_run sweep --spec "
         "tests/golden/tiny_sweep.json --format json --out tests/golden/tiny_sweep_report.json\n";
}

TEST(SweepGolden, TinySweepRollupReproducesCheckedInCsvByteForByte) {
  // The network-rollup section is golden too: exact-mode cycles and access
  // counts fold into integer network totals, so the whole rollup-bearing
  // CSV is byte-stable like the per-point report.
  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  const std::string expected = read_file(golden_path("tiny_sweep_rollup.csv"));
  const SweepReport report = run_sweep(spec, /*threads=*/2);
  const std::string actual = report_to_csv(report) + rollup_to_csv(compute_rollup(report));
  EXPECT_EQ(actual, expected)
      << "golden rollup drifted; regenerate with:\n    imac_run sweep --spec "
         "tests/golden/tiny_sweep.json --rollup --out tests/golden/tiny_sweep_rollup.csv\n";
  // The point section of the rollup-bearing file IS the plain golden: the
  // parser stops at the marker, so both artifacts stay interchangeable for
  // merge/report/round-trip consumers.
  EXPECT_EQ(report_to_csv(parse_csv_report(expected)),
            read_file(golden_path("tiny_sweep.csv")));
}

TEST(SweepGolden, TwoShardsWithStoresMergeByteIdenticalToGolden) {
  // The acceptance path of the sharded/resumable subsystem, end to end:
  // run the canonical sweep as two digest-partitioned shards, each
  // journaling into its own store, merge the stores, and require the fused
  // CSV and JSON to equal the checked-in single-process artifacts byte for
  // byte. Then resume both shards against their warm stores and require
  // zero new simulations.
  namespace fs = std::filesystem;
  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  const std::vector<SweepPoint> points = expand_sweep(spec);
  std::vector<std::string> dirs;
  for (unsigned i = 1; i <= 2; ++i) {
    const fs::path dir = fs::path(::testing::TempDir()) / ("golden_shard" + std::to_string(i));
    fs::remove_all(dir);
    dirs.push_back(dir.string());
    ResultStore store(dirs.back());
    SweepCache cache;
    cache.attach_store(store, /*preload=*/true);
    BatchRunner pool(2);
    const auto shard_points = filter_shard(spec, points, ShardSpec{i, 2});
    (void)run_sweep(spec, shard_points, pool, &cache);
    EXPECT_EQ(store.appended(), shard_points.size()) << "shard " << i;
  }

  std::map<std::string, StoredResult> merged;
  for (const std::string& dir : dirs) {
    const ResultStore store(dir);
    accumulate_results(store, merged);
  }
  const SweepReport fused = assemble_report(spec, merged);
  EXPECT_EQ(report_to_csv(fused), read_file(golden_path("tiny_sweep.csv")));
  EXPECT_EQ(report_to_json(fused), read_file(golden_path("tiny_sweep_report.json")));

  for (unsigned i = 1; i <= 2; ++i) {
    ResultStore store(dirs[i - 1]);
    SweepCache cache;
    cache.attach_store(store, /*preload=*/true);
    BatchRunner pool(2);
    (void)run_sweep(spec, filter_shard(spec, points, ShardSpec{i, 2}), pool, &cache);
    EXPECT_EQ(store.appended(), 0u) << "resume of shard " << i << " re-simulated a point";
  }
}

TEST(SweepGolden, GoldenArtifactsAreStableUnderCommaDecimalLocale) {
  // End-to-end locale lock: the full parse-spec -> sweep -> render
  // pipeline must emit the checked-in bytes even when LC_NUMERIC says ','
  // is the decimal separator (CI runs the tier-1 gcc job under
  // de_DE.UTF-8 to keep this executing).
  testutil::ScopedCommaLocale locale;
  if (!locale.active()) GTEST_SKIP() << "no comma-decimal locale installed";
  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  const SweepReport report = run_sweep(spec, /*threads=*/2);
  EXPECT_EQ(report_to_csv(report), read_file(golden_path("tiny_sweep.csv")));
  EXPECT_EQ(report_to_json(report), read_file(golden_path("tiny_sweep_report.json")));
  // And the CSV re-parser reads them back unchanged under the same locale.
  EXPECT_EQ(report_to_csv(parse_csv_report(read_file(golden_path("tiny_sweep.csv")))),
            read_file(golden_path("tiny_sweep.csv")));
}

TEST(SweepGolden, GoldenCsvSurvivesHeaderHashCorruption) {
  // A damaged header hash must fail like any malformed field — SimError,
  // never an uncaught std::stoull exception aborting the report tool.
  const std::string csv = read_file(golden_path("tiny_sweep.csv"));
  const std::size_t hash_at = csv.find("hash=");
  ASSERT_NE(hash_at, std::string::npos);
  const std::string truncated = csv.substr(0, hash_at + 5) + "\n" + csv.substr(csv.find('\n') + 1);
  EXPECT_THROW((void)parse_csv_report(truncated), SimError);
  std::string garbled = csv;
  garbled.replace(hash_at + 5, 4, "zzzz");
  EXPECT_THROW((void)parse_csv_report(garbled), SimError);
}

TEST(SweepGolden, GoldenCsvIsSelfConsistent) {
  // The checked-in artifact itself parses, re-renders identically, and
  // carries the spec's full grid (guards against hand-edited golden files).
  const std::string csv = read_file(golden_path("tiny_sweep.csv"));
  const SweepReport parsed = parse_csv_report(csv);
  EXPECT_EQ(report_to_csv(parsed), csv);

  const SweepSpec spec = parse_sweep_spec_file(golden_path("tiny_sweep.json"));
  EXPECT_EQ(parsed.spec_name, spec.name);
  EXPECT_EQ(parsed.rows.size(), expand_sweep(spec).size());
  for (const SweepRow& row : parsed.rows) {
    EXPECT_EQ(row.point.mode, SweepMode::kExact);
    EXPECT_GT(row.cycles, 0.0);
    EXPECT_GT(row.data_accesses, 0u);
  }
}

TEST(SweepGolden, HeadlineSpeedupHoldsInGoldenData) {
  // The paper's core claim, locked into the golden artifact: for every
  // (shape, sparsity, unroll) cell, indexmac beats rowwise and performs
  // fewer memory accesses.
  const SweepReport parsed = parse_csv_report(read_file(golden_path("tiny_sweep.csv")));
  std::size_t pairs = 0;
  for (const SweepRow& a : parsed.rows) {
    if (a.point.config.algorithm != Algorithm::kRowwiseSpmm) continue;
    for (const SweepRow& b : parsed.rows) {
      if (b.point.config.algorithm != Algorithm::kIndexmac) continue;
      if (b.point.workload != a.point.workload || !(b.point.sp == a.point.sp) ||
          b.point.config.kernel.unroll != a.point.config.kernel.unroll)
        continue;
      ++pairs;
      EXPECT_GT(a.cycles, b.cycles) << a.point.workload;
      EXPECT_GE(a.data_accesses, b.data_accesses) << a.point.workload;
    }
  }
  EXPECT_EQ(pairs, 12u);  // 3 shapes x 2 sparsities x 2 unrolls
}

TEST(SweepGolden, Algorithm4BeatsAlgorithm3InGoldenData) {
  // The follow-up paper's claim, also locked in: the packed-index/dual-row
  // kernel spends fewer simulated cycles than Algorithm 3 in every
  // (shape, sparsity, unroll) cell, at no extra memory accesses.
  const SweepReport parsed = parse_csv_report(read_file(golden_path("tiny_sweep.csv")));
  std::size_t pairs = 0;
  for (const SweepRow& a : parsed.rows) {
    if (a.point.config.algorithm != Algorithm::kIndexmac) continue;
    for (const SweepRow& b : parsed.rows) {
      if (b.point.config.algorithm != Algorithm::kIndexmac4) continue;
      if (b.point.workload != a.point.workload || !(b.point.sp == a.point.sp) ||
          b.point.config.kernel.unroll != a.point.config.kernel.unroll)
        continue;
      ++pairs;
      EXPECT_GT(a.cycles, b.cycles) << a.point.workload;
      EXPECT_GE(a.data_accesses, b.data_accesses) << a.point.workload;
    }
  }
  EXPECT_EQ(pairs, 12u);  // 3 shapes x 2 sparsities x 2 unrolls
}

}  // namespace
}  // namespace indexmac::core
