#include <gtest/gtest.h>

#include "common/error.h"
#include "isa/encoding.h"
#include "isa/isa.h"

namespace indexmac::isa {
namespace {

/// Round-trip (encode -> decode) must reproduce the instruction exactly.
void expect_roundtrip(const Instruction& inst) {
  std::string err;
  const std::uint32_t word = encode(inst);
  const Instruction back = decode(word, &err);
  EXPECT_EQ(back, inst) << "word=0x" << std::hex << word << " err=" << err
                        << " disasm=" << disassemble(inst);
}

TEST(IsaEncoding, RoundTripScalarAluRegister) {
  for (Op op : {Op::kAdd, Op::kSub, Op::kSll, Op::kSlt, Op::kSltu, Op::kXor, Op::kSrl, Op::kSra,
                Op::kOr, Op::kAnd, Op::kMul}) {
    expect_roundtrip(Instruction{op, 1, 2, 3, 0});
    expect_roundtrip(Instruction{op, 31, 30, 29, 0});
  }
}

TEST(IsaEncoding, RoundTripScalarAluImmediate) {
  for (Op op : {Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori, Op::kOri, Op::kAndi}) {
    expect_roundtrip(Instruction{op, 5, 6, 0, 2047});
    expect_roundtrip(Instruction{op, 5, 6, 0, -2048});
    expect_roundtrip(Instruction{op, 0, 0, 0, 0});
  }
}

TEST(IsaEncoding, RoundTripShifts) {
  for (Op op : {Op::kSlli, Op::kSrli, Op::kSrai}) {
    expect_roundtrip(Instruction{op, 7, 8, 0, 0});
    expect_roundtrip(Instruction{op, 7, 8, 0, 63});
  }
}

TEST(IsaEncoding, RoundTripLoadsStores) {
  expect_roundtrip(Instruction{Op::kLw, 4, 9, 0, 128});
  expect_roundtrip(Instruction{Op::kLwu, 4, 9, 0, -4});
  expect_roundtrip(Instruction{Op::kLd, 4, 9, 0, 2040});
  expect_roundtrip(Instruction{Op::kSw, 0, 9, 4, -2048});
  expect_roundtrip(Instruction{Op::kSd, 0, 9, 4, 16});
  expect_roundtrip(Instruction{Op::kFlw, 3, 9, 0, 12});
  expect_roundtrip(Instruction{Op::kFsw, 0, 9, 3, -12});
}

TEST(IsaEncoding, RoundTripBranchesAndJumps) {
  for (Op op : {Op::kBeq, Op::kBne, Op::kBlt, Op::kBge, Op::kBltu, Op::kBgeu}) {
    expect_roundtrip(Instruction{op, 0, 1, 2, 4094});
    expect_roundtrip(Instruction{op, 0, 1, 2, -4096});
    expect_roundtrip(Instruction{op, 0, 1, 2, -4});
  }
  expect_roundtrip(Instruction{Op::kJal, 1, 0, 0, 1048574});
  expect_roundtrip(Instruction{Op::kJal, 1, 0, 0, -1048576});
  expect_roundtrip(Instruction{Op::kJalr, 1, 2, 0, -2});
  expect_roundtrip(Instruction{Op::kLui, 10, 0, 0, 0x7ffff});
  expect_roundtrip(Instruction{Op::kLui, 10, 0, 0, -0x80000});
  expect_roundtrip(Instruction{Op::kAuipc, 10, 0, 0, 1});
}

TEST(IsaEncoding, RoundTripSystemAndMarker) {
  expect_roundtrip(Instruction{Op::kEcall, 0, 0, 0, 0});
  expect_roundtrip(Instruction{Op::kEbreak, 0, 0, 0, 0});
  expect_roundtrip(Instruction{Op::kMarker, 0, 0, 0, 0});
  expect_roundtrip(Instruction{Op::kMarker, 0, 0, 0, 4095});
}

TEST(IsaEncoding, RoundTripVectorConfigAndMemory) {
  expect_roundtrip(Instruction{Op::kVsetvli, 5, 6, 0, kVtypeE32M1});
  expect_roundtrip(Instruction{Op::kVle32, 8, 11, 0, 0});
  expect_roundtrip(Instruction{Op::kVse32, 9, 12, 0, 0});
}

TEST(IsaEncoding, RoundTripVectorArithmetic) {
  expect_roundtrip(Instruction{Op::kVaddVx, 1, 2, 3, 0});
  expect_roundtrip(Instruction{Op::kVaddVi, 1, 0, 3, -16});
  expect_roundtrip(Instruction{Op::kVaddVi, 1, 0, 3, 15});
  expect_roundtrip(Instruction{Op::kVmaccVx, 4, 5, 6, 0});
  expect_roundtrip(Instruction{Op::kVfmaccVf, 4, 5, 6, 0});
  expect_roundtrip(Instruction{Op::kVmvVX, 7, 8, 0, 0});
  expect_roundtrip(Instruction{Op::kVmvVI, 7, 0, 0, -1});
  expect_roundtrip(Instruction{Op::kVmvXS, 9, 0, 10, 0});
  expect_roundtrip(Instruction{Op::kVfmvFS, 9, 0, 10, 0});
  expect_roundtrip(Instruction{Op::kVmvSX, 11, 12, 0, 0});
  expect_roundtrip(Instruction{Op::kVslidedownVx, 13, 14, 15, 0});
  expect_roundtrip(Instruction{Op::kVslidedownVi, 13, 0, 15, 7});
  expect_roundtrip(Instruction{Op::kVslide1downVx, 13, 14, 15, 0});
}

TEST(IsaEncoding, RoundTripCustomIndexmac) {
  expect_roundtrip(Instruction{Op::kVindexmacVx, 1, 7, 4, 0});
  expect_roundtrip(Instruction{Op::kVfindexmacVx, 2, 8, 5, 0});
  expect_roundtrip(Instruction{Op::kVindexmacVx, 31, 31, 31, 0});
}

TEST(IsaEncoding, CustomIndexmacUsesReservedOpivxSpace) {
  // funct6 0b110000 / 0b110001, OPIVX funct3 (0b100), OP-V major opcode.
  const std::uint32_t w = encode(Instruction{Op::kVindexmacVx, 3, 9, 20, 0});
  EXPECT_EQ(w & 0x7f, 0b1010111u);          // OP-V
  EXPECT_EQ((w >> 12) & 0x7, 0b100u);       // OPIVX
  EXPECT_EQ(w >> 26, 0b110000u);            // funct6
  EXPECT_EQ((w >> 25) & 1, 1u);             // unmasked
  EXPECT_EQ((w >> 20) & 0x1f, 20u);         // vs2
  EXPECT_EQ((w >> 15) & 0x1f, 9u);          // rs1 (x register)
  EXPECT_EQ((w >> 7) & 0x1f, 3u);           // vd
}

TEST(IsaEncoding, FollowUpVariantsUseReservedOpivxSpace) {
  // The packed-index and dual-row variants extend the custom block:
  // funct6 0b110010/0b110011 (vindexmacp/vfindexmacp) and
  // 0b110100/0b110101 (vindexmac2/vfindexmac2), all OPIVX.
  const struct {
    Op op;
    std::uint32_t funct6;
  } cases[] = {
      {Op::kVindexmacpVx, 0b110010u},
      {Op::kVfindexmacpVx, 0b110011u},
      {Op::kVindexmac2Vx, 0b110100u},
      {Op::kVfindexmac2Vx, 0b110101u},
  };
  for (const auto& c : cases) {
    const std::uint32_t w = encode(Instruction{c.op, 3, 9, 20, 0});
    EXPECT_EQ(w & 0x7f, 0b1010111u) << mnemonic(c.op);   // OP-V
    EXPECT_EQ((w >> 12) & 0x7, 0b100u) << mnemonic(c.op);  // OPIVX
    EXPECT_EQ(w >> 26, c.funct6) << mnemonic(c.op);
    EXPECT_EQ((w >> 25) & 1, 1u) << mnemonic(c.op);      // unmasked
    EXPECT_EQ((w >> 20) & 0x1f, 20u) << mnemonic(c.op);  // vs2
    EXPECT_EQ((w >> 15) & 0x1f, 9u) << mnemonic(c.op);   // rs1 (x register)
    EXPECT_EQ((w >> 7) & 0x1f, 3u) << mnemonic(c.op);    // vd
  }
}

TEST(IsaEncoding, RoundTripSsrOps) {
  for (std::uint8_t sid = 0; sid < 4; ++sid)
    expect_roundtrip(Instruction{Op::kSsrCfg, sid, 5, 6, 0});
  expect_roundtrip(Instruction{Op::kSsrEn, 0, 7, 0, 0});
  expect_roundtrip(Instruction{Op::kSsrEn, 0, 0, 0, 0});
  expect_roundtrip(Instruction{Op::kVindexmacsV, 2, 0, 0, 0});
  expect_roundtrip(Instruction{Op::kVfindexmacsV, 31, 0, 0, 0});
}

TEST(IsaEncoding, SsrControlUsesCustom0MinorOpcodes) {
  // ssrcfg/ssren share the custom-0 major opcode with the marker,
  // distinguished by funct3 (001/010 vs the marker's 000).
  const std::uint32_t cfg = encode(Instruction{Op::kSsrCfg, 2, 5, 6, 0});
  EXPECT_EQ(cfg & 0x7f, 0b0001011u);        // custom-0
  EXPECT_EQ((cfg >> 12) & 0x7, 0b001u);     // ssrcfg minor opcode
  EXPECT_EQ((cfg >> 7) & 0x1f, 2u);         // stream id in rd
  EXPECT_EQ((cfg >> 15) & 0x1f, 5u);        // rs1 = base
  EXPECT_EQ((cfg >> 20) & 0x1f, 6u);        // rs2 = wrap count
  const std::uint32_t en = encode(Instruction{Op::kSsrEn, 0, 7, 0, 0});
  EXPECT_EQ(en & 0x7f, 0b0001011u);
  EXPECT_EQ((en >> 12) & 0x7, 0b010u);      // ssren minor opcode
  EXPECT_EQ((en >> 15) & 0x1f, 7u);
}

TEST(IsaEncoding, StreamingMacUsesReservedOpivxSpace) {
  // vindexmacs/vfindexmacs extend the custom OPIVX block at funct6
  // 0b110110/0b110111 with rs1 and vs2 hard-wired to zero.
  const struct {
    Op op;
    std::uint32_t funct6;
  } cases[] = {{Op::kVindexmacsV, 0b110110u}, {Op::kVfindexmacsV, 0b110111u}};
  for (const auto& c : cases) {
    const std::uint32_t w = encode(Instruction{c.op, 3, 0, 0, 0});
    EXPECT_EQ(w & 0x7f, 0b1010111u) << mnemonic(c.op);     // OP-V
    EXPECT_EQ((w >> 12) & 0x7, 0b100u) << mnemonic(c.op);  // OPIVX
    EXPECT_EQ(w >> 26, c.funct6) << mnemonic(c.op);
    EXPECT_EQ((w >> 25) & 1, 1u) << mnemonic(c.op);        // unmasked
    EXPECT_EQ((w >> 20) & 0x1f, 0u) << mnemonic(c.op);     // vs2 == 0
    EXPECT_EQ((w >> 15) & 0x1f, 0u) << mnemonic(c.op);     // rs1 == 0
    EXPECT_EQ((w >> 7) & 0x1f, 3u) << mnemonic(c.op);      // vd
  }
}

TEST(IsaEncoding, MalformedSsrWordsAreRejected) {
  EXPECT_THROW((void)encode(Instruction{Op::kSsrCfg, 4, 5, 6, 0}), SimError);  // sid > 3
  std::string err;
  // ssrcfg with a stream id outside 0..3 in the rd field.
  const std::uint32_t cfg = encode(Instruction{Op::kSsrCfg, 3, 5, 6, 0});
  EXPECT_EQ(decode(cfg | (0x10u << 7), &err).op, Op::kIllegal);
  // ssren with non-zero rd or rs2 fields.
  const std::uint32_t en = encode(Instruction{Op::kSsrEn, 0, 7, 0, 0});
  EXPECT_EQ(decode(en | (1u << 7), &err).op, Op::kIllegal);
  EXPECT_EQ(decode(en | (1u << 20), &err).op, Op::kIllegal);
  // Streaming MACs with explicit rs1/vs2 operands do not decode.
  const std::uint32_t mac = encode(Instruction{Op::kVindexmacsV, 3, 0, 0, 0});
  EXPECT_EQ(decode(mac | (1u << 15), &err).op, Op::kIllegal);
  EXPECT_EQ(decode(mac | (1u << 20), &err).op, Op::kIllegal);
}

TEST(IsaEncoding, ImmediateRangeChecksThrow) {
  EXPECT_THROW((void)encode(Instruction{Op::kAddi, 1, 1, 0, 2048}), SimError);
  EXPECT_THROW((void)encode(Instruction{Op::kAddi, 1, 1, 0, -2049}), SimError);
  EXPECT_THROW((void)encode(Instruction{Op::kBeq, 0, 1, 2, 3}), SimError);  // odd offset
  EXPECT_THROW((void)encode(Instruction{Op::kMarker, 0, 0, 0, 4096}), SimError);
  EXPECT_THROW((void)encode(Instruction{Op::kVaddVi, 1, 0, 3, 16}), SimError);
  EXPECT_THROW((void)encode(Instruction{Op::kVslidedownVi, 1, 0, 3, 32}), SimError);
}

TEST(IsaEncoding, DecodeRejectsUnknownWords) {
  std::string err;
  EXPECT_EQ(decode(0x00000000, &err).op, Op::kIllegal);
  EXPECT_FALSE(err.empty());
  EXPECT_EQ(decode(0xffffffff, &err).op, Op::kIllegal);
  // Masked vector op (vm=0) is rejected.
  const std::uint32_t vadd = encode(Instruction{Op::kVaddVx, 1, 2, 3, 0});
  EXPECT_EQ(decode(vadd & ~(1u << 25), &err).op, Op::kIllegal);
}

TEST(IsaEncoding, DecodeRejectsUnsupportedWidths) {
  std::string err;
  // lb: LOAD with funct3=000.
  EXPECT_EQ(decode(0x00000003, &err).op, Op::kIllegal);
  // 8-bit vector load (width=000 with vector mask bit set is lb actually);
  // craft vle8-like: LOAD-FP, width=000.
  const std::uint32_t vle8 = (1u << 25) | (5u << 15) | (0b000u << 12) | (3u << 7) | 0b0000111u;
  EXPECT_EQ(decode(vle8, &err).op, Op::kIllegal);
}

TEST(IsaEncoding, DisassembleProducesExpectedText) {
  EXPECT_EQ(disassemble(Instruction{Op::kVindexmacVx, 2, 7, 4, 0}), "vindexmac.vx v2, v4, x7");
  EXPECT_EQ(disassemble(Instruction{Op::kVfindexmacVx, 2, 7, 4, 0}), "vfindexmac.vx v2, v4, x7");
  EXPECT_EQ(disassemble(Instruction{Op::kVindexmacpVx, 2, 7, 4, 0}), "vindexmacp.vx v2, v4, x7");
  EXPECT_EQ(disassemble(Instruction{Op::kVindexmac2Vx, 2, 7, 4, 0}), "vindexmac2.vx v2, v4, x7");
  EXPECT_EQ(disassemble(Instruction{Op::kVfindexmac2Vx, 2, 7, 4, 0}),
            "vfindexmac2.vx v2, v4, x7");
  EXPECT_EQ(disassemble(Instruction{Op::kLw, 5, 6, 0, 16}), "lw x5, 16(x6)");
  EXPECT_EQ(disassemble(Instruction{Op::kSw, 0, 6, 5, -4}), "sw x5, -4(x6)");
  EXPECT_EQ(disassemble(Instruction{Op::kVle32, 8, 11, 0, 0}), "vle32.v v8, (x11)");
  EXPECT_EQ(disassemble(Instruction{Op::kVfmaccVf, 1, 2, 3, 0}), "vfmacc.vf v1, f2, v3");
  EXPECT_EQ(disassemble(Instruction{Op::kVmvXS, 9, 0, 10, 0}), "vmv.x.s x9, v10");
  EXPECT_EQ(disassemble(Instruction{Op::kMarker, 0, 0, 0, 42}), "marker 42");
  EXPECT_EQ(disassemble(Instruction{Op::kSsrCfg, 2, 5, 6, 0}), "ssrcfg 2, x5, x6");
  EXPECT_EQ(disassemble(Instruction{Op::kSsrEn, 0, 7, 0, 0}), "ssren x7");
  EXPECT_EQ(disassemble(Instruction{Op::kVindexmacsV, 3, 0, 0, 0}), "vindexmacs.v v3");
  EXPECT_EQ(disassemble(Instruction{Op::kVfindexmacsV, 3, 0, 0, 0}), "vfindexmacs.v v3");
}

class AllOpsRoundTrip : public ::testing::TestWithParam<Op> {};

TEST_P(AllOpsRoundTrip, EncodeDecodeIdentity) {
  const Op op = GetParam();
  // Pick operands that are legal for every op class; fields an op does not
  // encode must be zero for the round trip to be an identity.
  Instruction inst{op, 1, 2, 3, 0};
  switch (op) {
    case Op::kVsetvli: inst = Instruction{op, 1, 2, 0, kVtypeE32M1}; break;
    case Op::kEcall:
    case Op::kEbreak:
    case Op::kMarker: inst = Instruction{op, 0, 0, 0, 0}; break;
    case Op::kLui: case Op::kAuipc:
      inst = Instruction{op, 1, 0, 0, 5}; break;
    case Op::kJal:
      inst = Instruction{op, 1, 0, 0, 8}; break;
    case Op::kJalr: case Op::kLw: case Op::kLwu: case Op::kLd: case Op::kFlw:
    case Op::kAddi: case Op::kSlti: case Op::kSltiu: case Op::kXori:
    case Op::kOri: case Op::kAndi:
      inst = Instruction{op, 1, 2, 0, 4}; break;
    case Op::kSlli: case Op::kSrli: case Op::kSrai:
      inst = Instruction{op, 1, 2, 0, 3}; break;
    case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBge: case Op::kBltu: case Op::kBgeu:
      inst = Instruction{op, 0, 2, 3, 8}; break;
    case Op::kVmvXS: case Op::kVfmvFS:
      inst = Instruction{op, 1, 0, 3, 0}; break;
    case Op::kVmvVX: case Op::kVmvSX:
      inst = Instruction{op, 1, 2, 0, 0}; break;
    case Op::kVmvVI:
      inst = Instruction{op, 1, 0, 0, 5}; break;
    case Op::kVaddVi: case Op::kVslidedownVi:
      inst = Instruction{op, 1, 0, 3, 5}; break;
    case Op::kVle32: case Op::kVse32:
      inst = Instruction{op, 1, 2, 0, 0}; break;
    case Op::kSsrEn:
      inst = Instruction{op, 0, 2, 0, 0}; break;
    case Op::kVindexmacsV: case Op::kVfindexmacsV:
      inst = Instruction{op, 1, 0, 0, 0}; break;
    case Op::kSw: case Op::kSd: case Op::kFsw:
      inst = Instruction{op, 0, 2, 3, 4}; break;
    default: break;
  }
  std::string err;
  EXPECT_EQ(decode(encode(inst), &err), inst) << mnemonic(op) << ": " << err;
}

INSTANTIATE_TEST_SUITE_P(
    EverySupportedOp, AllOpsRoundTrip,
    ::testing::Values(
        Op::kLui, Op::kAuipc, Op::kJal, Op::kJalr, Op::kBeq, Op::kBne, Op::kBlt, Op::kBge,
        Op::kBltu, Op::kBgeu, Op::kLw, Op::kLwu, Op::kLd, Op::kSw, Op::kSd, Op::kFlw, Op::kFsw,
        Op::kAddi, Op::kSlti, Op::kSltiu, Op::kXori, Op::kOri, Op::kAndi, Op::kSlli, Op::kSrli,
        Op::kSrai, Op::kAdd, Op::kSub, Op::kSll, Op::kSlt, Op::kSltu, Op::kXor, Op::kSrl, Op::kSra,
        Op::kOr, Op::kAnd, Op::kMul, Op::kEcall, Op::kEbreak, Op::kMarker, Op::kVsetvli,
        Op::kVle32, Op::kVse32, Op::kVluxei32, Op::kVaddVx, Op::kVaddVi, Op::kVaddVV,
        Op::kVfaddVV, Op::kVmulVV, Op::kVfmulVV, Op::kVredsumVS, Op::kVfredusumVS, Op::kVmaccVx,
        Op::kVfmaccVf, Op::kVmvVX, Op::kVmvVI, Op::kVmvXS, Op::kVfmvFS, Op::kVmvSX,
        Op::kVslidedownVx, Op::kVslidedownVi, Op::kVslide1downVx, Op::kVindexmacVx,
        Op::kVfindexmacVx, Op::kVindexmacpVx, Op::kVfindexmacpVx, Op::kVindexmac2Vx,
        Op::kVfindexmac2Vx, Op::kSsrCfg, Op::kSsrEn, Op::kVindexmacsV, Op::kVfindexmacsV),
    [](const ::testing::TestParamInfo<Op>& info) {
      std::string name = mnemonic(info.param);
      for (char& c : name)
        if (c == '.') c = '_';
      return name;
    });

TEST(IsaClassification, VectorQueries) {
  EXPECT_TRUE(is_vector(Op::kVindexmacVx));
  EXPECT_TRUE(is_vector(Op::kVle32));
  EXPECT_FALSE(is_vector(Op::kVsetvli));  // executes on the scalar core
  EXPECT_FALSE(is_vector(Op::kAdd));
  EXPECT_TRUE(is_vector_load(Op::kVle32));
  EXPECT_TRUE(is_vector_store(Op::kVse32));
  EXPECT_TRUE(is_vector_to_scalar(Op::kVmvXS));
  EXPECT_TRUE(is_vector_to_scalar(Op::kVfmvFS));
  EXPECT_FALSE(is_vector_to_scalar(Op::kVmvSX));
}

TEST(IsaClassification, RegisterFileWrites) {
  EXPECT_TRUE(writes_x(Instruction{Op::kAdd, 1, 2, 3, 0}));
  EXPECT_FALSE(writes_x(Instruction{Op::kAdd, 0, 2, 3, 0}));  // rd == x0
  EXPECT_TRUE(writes_x(Instruction{Op::kVmvXS, 1, 0, 3, 0}));
  EXPECT_TRUE(writes_f(Instruction{Op::kVfmvFS, 1, 0, 3, 0}));
  EXPECT_TRUE(writes_v(Instruction{Op::kVindexmacVx, 1, 2, 3, 0}));
  EXPECT_FALSE(writes_v(Instruction{Op::kVse32, 1, 2, 0, 0}));
  EXPECT_TRUE(writes_x(Instruction{Op::kVsetvli, 1, 2, 0, kVtypeE32M1}));
}

TEST(IsaClassification, RegisterFileReads) {
  EXPECT_TRUE(reads_x_rs1(Instruction{Op::kVindexmacVx, 1, 2, 3, 0}));
  EXPECT_TRUE(reads_x_rs1(Instruction{Op::kVle32, 1, 2, 0, 0}));
  EXPECT_FALSE(reads_x_rs1(Instruction{Op::kVmvXS, 1, 0, 3, 0}));
  EXPECT_TRUE(reads_x_rs2(Instruction{Op::kSw, 0, 2, 3, 0}));
  EXPECT_TRUE(reads_f_rs1(Instruction{Op::kVfmaccVf, 1, 2, 3, 0}));
}

}  // namespace
}  // namespace indexmac::isa
