#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "asm/text_assembler.h"
#include "common/error.h"
#include "fsim/machine.h"

namespace indexmac {
namespace {

/// Runs `body` (already containing ebreak) and returns the machine.
struct SimRun {
  MainMemory mem;
  std::unique_ptr<Machine> machine;
  Program program;

  explicit SimRun(Assembler& a) : program(a.finish()) {
    machine = std::make_unique<Machine>(program, mem);
  }
  StopReason go(std::uint64_t max_steps = 1'000'000) { return machine->run(max_steps); }
  [[nodiscard]] const ArchState& state() const { return machine->state(); }
};

TEST(Fsim, ArithmeticAndHalt) {
  Assembler a;
  a.li(x(1), 20);
  a.li(x(2), 22);
  a.add(x(3), x(1), x(2));
  a.ebreak();
  SimRun r(a);
  EXPECT_EQ(r.go(), StopReason::kEbreak);
  EXPECT_EQ(r.state().x[3], 42u);
}

TEST(Fsim, X0IsHardwiredZero) {
  Assembler a;
  a.li(x(0), 99);
  a.add(x(1), x(0), x(0));
  a.ebreak();
  SimRun r(a);
  r.go();
  EXPECT_EQ(r.state().x[0], 0u);
  EXPECT_EQ(r.state().x[1], 0u);
}

TEST(Fsim, SignedArithmeticAndComparisons) {
  Assembler a;
  a.li(x(1), -5);
  a.li(x(2), 3);
  a.slt(x(3), x(1), x(2));   // -5 < 3 -> 1
  a.sltu(x(4), x(1), x(2));  // huge unsigned < 3 -> 0
  a.sub(x(5), x(2), x(1));   // 3 - (-5) = 8
  a.mul(x(6), x(1), x(2));   // -15
  a.sra(x(7), x(1), x(2));   // -5 >> 3 = -1
  a.ebreak();
  SimRun r(a);
  r.go();
  EXPECT_EQ(r.state().x[3], 1u);
  EXPECT_EQ(r.state().x[4], 0u);
  EXPECT_EQ(r.state().x[5], 8u);
  EXPECT_EQ(static_cast<std::int64_t>(r.state().x[6]), -15);
  EXPECT_EQ(static_cast<std::int64_t>(r.state().x[7]), -1);
}

TEST(Fsim, LoadStoreWidths) {
  Assembler a;
  a.li(x(1), 0x1000);
  a.li(x(2), -2);           // 0xfffffffffffffffe
  a.sw(x(2), x(1), 0);      // stores 0xfffffffe
  a.lw(x(3), x(1), 0);      // sign-extends
  a.lwu(x(4), x(1), 0);     // zero-extends
  a.sd(x(2), x(1), 8);
  a.ld(x(5), x(1), 8);
  a.ebreak();
  SimRun r(a);
  r.go();
  EXPECT_EQ(static_cast<std::int64_t>(r.state().x[3]), -2);
  EXPECT_EQ(r.state().x[4], 0xfffffffeu);
  EXPECT_EQ(static_cast<std::int64_t>(r.state().x[5]), -2);
}

TEST(Fsim, BranchLoopSumsIntegers) {
  Assembler a;
  a.li(x(1), 10);   // counter
  a.li(x(2), 0);    // sum
  auto loop = a.new_label();
  a.bind(loop);
  a.add(x(2), x(2), x(1));
  a.addi(x(1), x(1), -1);
  a.bne(x(1), x(0), loop);
  a.ebreak();
  SimRun r(a);
  EXPECT_EQ(r.go(), StopReason::kEbreak);
  EXPECT_EQ(r.state().x[2], 55u);
}

TEST(Fsim, JalAndJalrLinkCorrectly) {
  Assembler a;
  auto func = a.new_label();
  a.jal(x(1), func);        // call
  a.li(x(10), 111);         // executed after return
  a.ebreak();
  a.bind(func);
  a.li(x(11), 222);
  a.jalr(x(0), x(1), 0);    // return
  SimRun r(a);
  r.go();
  EXPECT_EQ(r.state().x[10], 111u);
  EXPECT_EQ(r.state().x[11], 222u);
}

TEST(Fsim, EcallStops) {
  Assembler a;
  a.ecall();
  SimRun r(a);
  EXPECT_EQ(r.go(), StopReason::kEcall);
}

TEST(Fsim, MaxStepsStops) {
  Assembler a;
  auto loop = a.new_label();
  a.bind(loop);
  a.j(loop);
  SimRun r(a);
  EXPECT_EQ(r.go(100), StopReason::kMaxSteps);
}

TEST(Fsim, MarkerHookFires) {
  Assembler a;
  a.marker(3);
  a.marker(9);
  a.ebreak();
  SimRun r(a);
  std::vector<int> ids;
  r.machine->set_marker_hook([&ids](int id) { ids.push_back(id); });
  r.go();
  EXPECT_EQ(ids, (std::vector<int>{3, 9}));
}

TEST(Fsim, VsetvliClampsToVlmax) {
  Assembler a;
  a.li(x(1), 100);
  a.vsetvli_e32m1(x(2), x(1));
  a.ebreak();
  SimRun r(a);
  r.go();
  EXPECT_EQ(r.state().vl, isa::kVlMax);
  EXPECT_EQ(r.state().x[2], isa::kVlMax);
}

TEST(Fsim, VsetvliPartialVl) {
  Assembler a;
  a.li(x(1), 5);
  a.vsetvli_e32m1(x(2), x(1));
  a.ebreak();
  SimRun r(a);
  r.go();
  EXPECT_EQ(r.state().vl, 5u);
}

TEST(Fsim, VectorLoadStoreRoundTrip) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.li(x(3), 0x2000);
  a.vle32(v(1), x(2));
  a.vse32(v(1), x(3));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> data(16);
  for (int i = 0; i < 16; ++i) data[i] = i * 3 - 7;
  r.mem.write_i32s(0x1000, data);
  r.go();
  EXPECT_EQ(r.mem.read_i32s(0x2000, 16), data);
}

TEST(Fsim, VectorLoadRespectsVl) {
  Assembler a;
  a.li(x(1), 4);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(1), x(2));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> data(16, 5);
  r.mem.write_i32s(0x1000, data);
  r.go();
  EXPECT_EQ(r.state().v[1][3], 5u);
  EXPECT_EQ(r.state().v[1][4], 0u);  // untouched beyond vl
}

TEST(Fsim, VaddVxAddsScalar) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(1), x(2));
  a.li(x(3), 100);
  a.vadd_vx(v(2), v(1), x(3));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> data(16);
  for (int i = 0; i < 16; ++i) data[i] = i;
  r.mem.write_i32s(0x1000, data);
  r.go();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.state().v[2][i], i + 100);
}

TEST(Fsim, VmaccVxAccumulates) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(1), x(2));   // v1 = data
  a.vmv_v_i(v(2), 1);    // v2 = 1
  a.li(x(3), 10);
  a.vmacc_vx(v(2), x(3), v(1));  // v2 += 10 * v1
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> data(16);
  for (int i = 0; i < 16; ++i) data[i] = i;
  r.mem.write_i32s(0x1000, data);
  r.go();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.state().v[2][i], 1 + 10 * i);
}

TEST(Fsim, VfmaccVfAccumulatesFloats) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.li(x(4), 0x2000);
  a.vle32(v(1), x(2));
  a.vmv_v_i(v(2), 0);
  a.flw(f(1), x(4), 0);
  a.vfmacc_vf(v(2), f(1), v(1));
  a.ebreak();
  SimRun r(a);
  std::vector<float> data(16);
  for (int i = 0; i < 16; ++i) data[i] = 0.5f * static_cast<float>(i);
  r.mem.write_f32s(0x1000, data);
  r.mem.write_f32(0x2000, 2.0f);
  r.go();
  for (unsigned i = 0; i < 16; ++i)
    EXPECT_FLOAT_EQ(r.state().velem_f32(2, i), static_cast<float>(i));
}

TEST(Fsim, VmvXsSignExtends) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), -7);
  a.vmv_s_x(v(1), x(2));
  a.vmv_x_s(x(3), v(1));
  a.ebreak();
  SimRun r(a);
  r.go();
  EXPECT_EQ(static_cast<std::int64_t>(r.state().x[3]), -7);
}

TEST(Fsim, Slide1DownShiftsAndInsertsScalar) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(1), x(2));
  a.li(x(3), 999);
  a.vslide1down_vx(v(1), v(1), x(3));  // in-place slide
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> data(16);
  for (int i = 0; i < 16; ++i) data[i] = i + 1;
  r.mem.write_i32s(0x1000, data);
  r.go();
  for (unsigned i = 0; i < 15; ++i) EXPECT_EQ(r.state().v[1][i], i + 2);
  EXPECT_EQ(r.state().v[1][15], 999u);
}

TEST(Fsim, SlidedownByImmediate) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(1), x(2));
  a.vslidedown_vi(v(2), v(1), 3);
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> data(16);
  for (int i = 0; i < 16; ++i) data[i] = 10 * i;
  r.mem.write_i32s(0x1000, data);
  r.go();
  for (unsigned i = 0; i < 13; ++i) EXPECT_EQ(r.state().v[2][i], 10 * (i + 3));
  EXPECT_EQ(r.state().v[2][13], 0u);  // slid past VLMAX -> zero
}

TEST(Fsim, VindexmacIntegerIndirectRead) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  // v8 holds the "B row"; v1 holds packed values; accumulate into v2.
  a.li(x(2), 0x1000);
  a.vle32(v(8), x(2));
  a.li(x(3), 0x2000);
  a.vle32(v(1), x(3));
  a.vmv_v_i(v(2), 0);
  a.li(x(4), 8);                    // VRF index 8
  a.vindexmac_vx(v(2), v(1), x(4)); // v2 += v1[0] * v8
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> brow(16);
  for (int i = 0; i < 16; ++i) brow[i] = i + 1;
  r.mem.write_i32s(0x1000, brow);
  std::vector<std::int32_t> values(16, 0);
  values[0] = 3;
  r.mem.write_i32s(0x2000, values);
  r.go();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.state().v[2][i], 3u * (i + 1));
}

TEST(Fsim, VindexmacUsesOnlyLow5BitsOfRs) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(8), x(2));
  a.li(x(3), 0x2000);
  a.vle32(v(1), x(3));
  a.vmv_v_i(v(2), 0);
  a.li(x(4), 32 + 8);               // 0x28: low 5 bits = 8
  a.vindexmac_vx(v(2), v(1), x(4));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> brow(16, 2);
  r.mem.write_i32s(0x1000, brow);
  std::vector<std::int32_t> values(16, 0);
  values[0] = 5;
  r.mem.write_i32s(0x2000, values);
  r.go();
  EXPECT_EQ(r.state().v[2][0], 10u);
}

TEST(Fsim, VfindexmacFloatIndirectRead) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(20), x(2));
  a.li(x(3), 0x2000);
  a.vle32(v(1), x(3));
  a.li(x(5), 0x3000);
  a.vle32(v(2), x(5));              // initial C values
  a.li(x(4), 20);
  a.vfindexmac_vx(v(2), v(1), x(4));
  a.ebreak();
  SimRun r(a);
  std::vector<float> brow(16), values(16, 0.0f), c0(16);
  for (int i = 0; i < 16; ++i) {
    brow[i] = 0.25f * static_cast<float>(i);
    c0[i] = 1.0f;
  }
  values[0] = -2.0f;
  r.mem.write_f32s(0x1000, brow);
  r.mem.write_f32s(0x2000, values);
  r.mem.write_f32s(0x3000, c0);
  r.go();
  for (unsigned i = 0; i < 16; ++i)
    EXPECT_FLOAT_EQ(r.state().velem_f32(2, i), 1.0f - 0.5f * static_cast<float>(i));
}

TEST(Fsim, VindexmacpPackedNibbleAddressesUpperHalf) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(24), x(2));             // B row in the upper register-file half
  a.li(x(3), 0x2000);
  a.vle32(v(1), x(3));
  a.vmv_v_i(v(2), 0);
  a.li(x(4), 0xa8);                 // low nibble 8 -> v24; upper bits ignored
  a.vindexmacp_vx(v(2), v(1), x(4));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> brow(16);
  for (int i = 0; i < 16; ++i) brow[i] = i + 1;
  r.mem.write_i32s(0x1000, brow);
  std::vector<std::int32_t> values(16, 0);
  values[0] = 3;
  r.mem.write_i32s(0x2000, values);
  r.go();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.state().v[2][i], 3u * (i + 1));
}

TEST(Fsim, Vindexmac2EqualsTwoPackedMacs) {
  // One dual-row MAC must be bit-identical to two packed MACs consuming
  // nibbles 0 and 1 with values vs2[0] and vs2[1].
  const auto build = [](bool dual) {
    Assembler a;
    a.li(x(1), 16);
    a.vsetvli_e32m1(x(0), x(1));
    a.li(x(2), 0x1000);
    a.vle32(v(20), x(2));           // rows v20 (nibble 4) and v21 (nibble 5)
    a.li(x(2), 0x1040);
    a.vle32(v(21), x(2));
    a.li(x(3), 0x2000);
    a.vle32(v(1), x(3));            // values: vs2[0], vs2[1]
    a.vmv_v_i(v(2), 0);
    a.li(x(4), 0x54);               // nibbles: slot0 -> 4 (v20), slot1 -> 5 (v21)
    if (dual) {
      a.vfindexmac2_vx(v(2), v(1), x(4));
    } else {
      a.vfindexmacp_vx(v(2), v(1), x(4));
      a.srli(x(4), x(4), 4);
      a.vslide1down_vx(v(1), v(1), x(0));
      a.vfindexmacp_vx(v(2), v(1), x(4));
    }
    a.ebreak();
    return a;
  };
  std::array<std::uint32_t, 16> lanes_dual{}, lanes_two{};
  for (const bool dual : {true, false}) {
    Assembler a = build(dual);
    SimRun r(a);
    std::vector<float> row0(16), row1(16), values(16, 0.0f);
    for (int i = 0; i < 16; ++i) {
      row0[i] = 0.5f * static_cast<float>(i) + 0.125f;
      row1[i] = -0.25f * static_cast<float>(i) + 1.0f;
    }
    values[0] = 3.5f;
    values[1] = -1.25f;
    r.mem.write_f32s(0x1000, row0);
    r.mem.write_f32s(0x1040, row1);
    r.mem.write_f32s(0x2000, values);
    r.go();
    for (unsigned i = 0; i < 16; ++i)
      (dual ? lanes_dual : lanes_two)[i] = r.state().v[2][i];
  }
  EXPECT_EQ(lanes_dual, lanes_two);
}

TEST(Fsim, SsrStreamingMacMatchesExplicitVindexmac) {
  // vindexmacs.v consuming (value, index) pairs from streams 0/1 must
  // produce the bits of the equivalent explicit vindexmac.vx sequence.
  std::array<std::uint32_t, 16> lanes_ssr{}, lanes_explicit{};
  for (const bool streaming : {true, false}) {
    Assembler a;
    a.li(x(1), 16);
    a.vsetvli_e32m1(x(0), x(1));
    a.li(x(2), 0x1000);
    a.vle32(v(8), x(2));              // B rows in v8 and v9
    a.li(x(2), 0x1040);
    a.vle32(v(9), x(2));
    a.vmv_v_i(v(2), 0);
    if (streaming) {
      a.li(x(3), 0x2000);             // A values
      a.li(x(4), 0x3000);             // VRF row indices
      a.li(x(5), 2);
      a.ssrcfg(0, x(3), x(5));
      a.ssrcfg(1, x(4), x(5));
      a.li(x(5), 0b11);
      a.ssren(x(5));
      a.vindexmacs_v(v(2));
      a.vindexmacs_v(v(2));
    } else {
      a.li(x(6), 3);                  // values[0]
      a.li(x(7), 8);                  // indices[0] -> v8
      a.vmv_s_x(v(1), x(6));
      a.vindexmac_vx(v(2), v(1), x(7));
      a.li(x(6), -5);                 // values[1]
      a.li(x(7), 9);                  // indices[1] -> v9
      a.vmv_s_x(v(1), x(6));
      a.vindexmac_vx(v(2), v(1), x(7));
    }
    a.ebreak();
    SimRun r(a);
    std::vector<std::int32_t> row8(16), row9(16);
    for (int i = 0; i < 16; ++i) {
      row8[i] = i + 1;
      row9[i] = 2 * i - 3;
    }
    r.mem.write_i32s(0x1000, row8);
    r.mem.write_i32s(0x1040, row9);
    r.mem.write_i32s(0x2000, std::vector<std::int32_t>{3, -5});
    r.mem.write_i32s(0x3000, std::vector<std::int32_t>{8, 9});
    EXPECT_EQ(r.go(), StopReason::kEbreak);
    for (unsigned i = 0; i < 16; ++i)
      (streaming ? lanes_ssr : lanes_explicit)[i] = r.state().v[2][i];
  }
  EXPECT_EQ(lanes_ssr, lanes_explicit);
}

TEST(Fsim, SsrFloatVariantAndIndexMasking) {
  // vfindexmacs.v interprets the stream-0 word as fp32 bits, and only the
  // low 5 bits of the stream-1 word select the VRF row.
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(12), x(2));
  a.vmv_v_i(v(2), 0);
  a.li(x(3), 0x2000);
  a.li(x(4), 0x3000);
  a.li(x(5), 1);
  a.ssrcfg(0, x(3), x(5));
  a.ssrcfg(1, x(4), x(5));
  a.li(x(5), 0b11);
  a.ssren(x(5));
  a.vfindexmacs_v(v(2));
  a.ebreak();
  SimRun r(a);
  std::vector<float> brow(16);
  for (int i = 0; i < 16; ++i) brow[i] = 0.25f * static_cast<float>(i);
  r.mem.write_f32s(0x1000, brow);
  r.mem.write_f32(0x2000, -2.0f);
  r.mem.write_i32s(0x3000, std::vector<std::int32_t>{32 + 12});  // low 5 bits = 12
  r.go();
  for (unsigned i = 0; i < 16; ++i)
    EXPECT_FLOAT_EQ(r.state().velem_f32(2, i), -0.5f * static_cast<float>(i));
}

TEST(Fsim, SsrStreamWrapsAtConfiguredCount) {
  // A 2-word window replays (value, index) pairs: four MACs with count 2
  // accumulate each pair twice.
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(8), x(2));
  a.vmv_v_i(v(2), 0);
  a.li(x(3), 0x2000);
  a.li(x(4), 0x3000);
  a.li(x(5), 2);
  a.ssrcfg(0, x(3), x(5));
  a.ssrcfg(1, x(4), x(5));
  a.li(x(5), 0b11);
  a.ssren(x(5));
  for (int i = 0; i < 4; ++i) a.vindexmacs_v(v(2));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> brow(16, 1);
  r.mem.write_i32s(0x1000, brow);
  r.mem.write_i32s(0x2000, std::vector<std::int32_t>{3, 5});
  r.mem.write_i32s(0x3000, std::vector<std::int32_t>{8, 8});
  r.go();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.state().v[2][i], 2u * (3u + 5u));
}

TEST(Fsim, SsrReEnableRewindsToBase) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(8), x(2));
  a.vmv_v_i(v(2), 0);
  a.li(x(3), 0x2000);
  a.li(x(4), 0x3000);
  a.li(x(5), 4);
  a.ssrcfg(0, x(3), x(5));
  a.ssrcfg(1, x(4), x(5));
  a.li(x(5), 0b11);
  a.ssren(x(5));
  a.vindexmacs_v(v(2));    // consumes pair 0 of the 4-word window
  a.ssren(x(5));           // re-enable: both streams rewind to base
  a.vindexmacs_v(v(2));    // consumes pair 0 again
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> brow(16, 1);
  r.mem.write_i32s(0x1000, brow);
  r.mem.write_i32s(0x2000, std::vector<std::int32_t>{7, 100, 100, 100});
  r.mem.write_i32s(0x3000, std::vector<std::int32_t>{8, 8, 8, 8});
  r.go();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.state().v[2][i], 14u);
}

TEST(Fsim, SsrMacWithoutEnableRaises) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(3), 0x2000);
  a.li(x(5), 2);
  a.ssrcfg(0, x(3), x(5));
  a.ssrcfg(1, x(3), x(5));
  a.vindexmacs_v(v(2));    // streams configured but never enabled
  a.ebreak();
  SimRun r(a);
  EXPECT_THROW((void)r.go(), SimError);
}

TEST(Fsim, SsrDisableAllStopsStreaming) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(3), 0x2000);
  a.li(x(5), 2);
  a.ssrcfg(0, x(3), x(5));
  a.ssrcfg(1, x(3), x(5));
  a.li(x(5), 0b11);
  a.ssren(x(5));
  a.ssren(x(0));           // disables every stream
  a.vindexmacs_v(v(2));
  a.ebreak();
  SimRun r(a);
  EXPECT_THROW((void)r.go(), SimError);
}

TEST(Fsim, SsrEmptyWindowRaises) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(3), 0x2000);
  a.ssrcfg(0, x(3), x(0));  // count 0: configured empty
  a.ssrcfg(1, x(3), x(0));
  a.li(x(5), 0b11);
  a.ssren(x(5));
  a.vindexmacs_v(v(2));
  a.ebreak();
  SimRun r(a);
  EXPECT_THROW((void)r.go(), SimError);
}

TEST(Fsim, TextAssembledSsrKernelMatchesBuilder) {
  const auto out = assemble_text(R"(
      li t0, 16
      vsetvli zero, t0, e32m1
      li t1, 0x1000
      vle32.v v8, (t1)
      vmv.v.i v2, 0
      li t2, 0x2000
      li t3, 0x3000
      li t4, 1
      ssrcfg 0, t2, t4
      ssrcfg 1, t3, t4
      li t4, 3
      ssren t4
      vindexmacs.v v2
      ebreak
  )");
  MainMemory mem;
  std::vector<std::int32_t> brow(16);
  for (int i = 0; i < 16; ++i) brow[i] = i;
  mem.write_i32s(0x1000, brow);
  mem.write_i32s(0x2000, std::vector<std::int32_t>{7});
  mem.write_i32s(0x3000, std::vector<std::int32_t>{8});
  Machine machine(out.program, mem);
  EXPECT_EQ(machine.run(), StopReason::kEbreak);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(machine.state().v[2][i], 7u * i);
}

TEST(Fsim, TextAssembledKernelMatchesBuilder) {
  const auto out = assemble_text(R"(
      li t0, 16
      vsetvli zero, t0, e32m1
      li t1, 0x1000
      vle32.v v8, (t1)
      li t2, 0x2000
      vle32.v v1, (t2)
      vmv.v.i v2, 0
      li t3, 8
      vindexmac.vx v2, v1, t3
      ebreak
  )");
  MainMemory mem;
  std::vector<std::int32_t> brow(16);
  for (int i = 0; i < 16; ++i) brow[i] = i;
  mem.write_i32s(0x1000, brow);
  std::vector<std::int32_t> values(16, 0);
  values[0] = 7;
  mem.write_i32s(0x2000, values);
  Machine machine(out.program, mem);
  EXPECT_EQ(machine.run(), StopReason::kEbreak);
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(machine.state().v[2][i], 7u * i);
}

TEST(Fsim, RetiredInstructionCount) {
  Assembler a;
  a.li(x(1), 3);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(x(1), x(1), -1);
  a.bne(x(1), x(0), loop);
  a.ebreak();
  SimRun r(a);
  r.go();
  // li(1) + 3*(addi+bne) + ebreak = 8
  EXPECT_EQ(r.machine->instructions_retired(), 8u);
}

}  // namespace
}  // namespace indexmac
