// BatchRunner: parallel sweeps must be indistinguishable from serial runs —
// identical per-job stats, submission-order results at any thread count,
// and robust to jobs that throw.
#include "core/batch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "common/error.h"

namespace {

using namespace indexmac;
using core::Algorithm;
using core::BatchJob;
using core::BatchResult;
using core::BatchRunner;
using core::RunConfig;

void expect_same_stats(const BatchResult& a, const BatchResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);  // bit-identical, no tolerance
  EXPECT_EQ(a.data_accesses, b.data_accesses);
  EXPECT_EQ(a.stats.cycles, b.stats.cycles);
  EXPECT_EQ(a.stats.instructions, b.stats.instructions);
  EXPECT_EQ(a.stats.scalar_instructions, b.stats.scalar_instructions);
  EXPECT_EQ(a.stats.vector_instructions, b.stats.vector_instructions);
  EXPECT_EQ(a.stats.vector_loads, b.stats.vector_loads);
  EXPECT_EQ(a.stats.vector_stores, b.stats.vector_stores);
  EXPECT_EQ(a.stats.vector_macs, b.stats.vector_macs);
  EXPECT_EQ(a.stats.vector_to_scalar_moves, b.stats.vector_to_scalar_moves);
  EXPECT_EQ(a.stats.branch_mispredicts, b.stats.branch_mispredicts);
  EXPECT_EQ(a.stats.dispatch_stalls.total(), b.stats.dispatch_stalls.total());
  EXPECT_EQ(a.stats.mem.data_accesses(), b.stats.mem.data_accesses());
}

/// A mixed sweep: both algorithms, both run modes, several shapes/seeds.
std::vector<BatchJob> mixed_sweep() {
  const timing::ProcessorConfig proc{};
  std::vector<BatchJob> jobs;
  const RunConfig rowwise{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}};
  const RunConfig proposed{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}};
  unsigned seed = 1;
  for (const auto sp : {sparse::kSparsity14, sparse::kSparsity24}) {
    for (const auto& dims :
         {kernels::GemmDims{16, 64, 32}, kernels::GemmDims{32, 48, 16}}) {
      for (const RunConfig& config : {rowwise, proposed}) {
        BatchJob job;
        job.mode = BatchJob::Mode::kExact;
        job.dims = dims;
        job.sp = sp;
        job.config = config;
        job.processor = proc;
        job.seed = seed++;
        jobs.push_back(job);
      }
    }
    jobs.push_back(core::sampled_job({64, 128, 48}, sp, proposed, proc,
                                     {.sample_rows = 8, .sample_full_strips = 2}));
  }
  return jobs;
}

TEST(BatchRunner, MatchesSerialExecutionBitExactly) {
  const auto jobs = mixed_sweep();

  std::vector<BatchResult> serial;
  serial.reserve(jobs.size());
  for (const BatchJob& job : jobs) serial.push_back(core::run_job(job));

  const auto parallel = core::run_batch(jobs, 4);
  ASSERT_EQ(parallel.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE("job " + std::to_string(i));
    expect_same_stats(parallel[i], serial[i]);
  }
}

TEST(BatchRunner, ResultOrderMatchesSubmissionOrderAtAnyThreadCount) {
  const auto jobs = mixed_sweep();
  const auto baseline = core::run_batch(jobs, 1);
  for (const unsigned threads : {2u, 3u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto results = core::run_batch(jobs, threads);
    ASSERT_EQ(results.size(), baseline.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE("job " + std::to_string(i));
      expect_same_stats(results[i], baseline[i]);
    }
  }
}

TEST(BatchRunner, SharedProblemJobsMatchDirectRuns) {
  const timing::ProcessorConfig proc{};
  auto problem = std::make_shared<const core::SpmmProblem>(
      core::SpmmProblem::random({16, 64, 32}, sparse::kSparsity24, 42));
  const RunConfig rowwise{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 2}};
  const RunConfig proposed{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 2}};

  const auto results =
      core::run_batch({core::exact_job(problem, rowwise, proc),
                       core::exact_job(problem, proposed, proc)},
                      2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].stats.cycles, core::run_exact(*problem, rowwise, proc).stats.cycles);
  EXPECT_EQ(results[1].stats.cycles, core::run_exact(*problem, proposed, proc).stats.cycles);
  EXPECT_GT(results[0].cycles, results[1].cycles);  // the paper's headline result
}

TEST(BatchRunner, ThrowingTaskDoesNotDeadlockThePool) {
  BatchRunner pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(bad.get(), std::runtime_error);

  // The pool must still accept and complete work on every worker.
  std::atomic<int> completed{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 8; ++i)
    futures.push_back(pool.submit([i, &completed] {
      ++completed;
      return i;
    }));
  for (int i = 0; i < 8; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i);
  EXPECT_EQ(completed.load(), 8);
}

TEST(BatchRunner, ThrowingJobReportsFirstErrorAfterAllJobsFinish) {
  const timing::ProcessorConfig proc{};
  std::vector<BatchJob> jobs = mixed_sweep();
  BatchJob bad;  // unroll=5 is rejected by the kernel generators
  bad.mode = BatchJob::Mode::kExact;
  bad.dims = {16, 64, 32};
  bad.sp = sparse::kSparsity14;
  bad.config = RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 5}};
  bad.processor = proc;
  jobs.insert(jobs.begin() + 1, bad);

  EXPECT_THROW((void)core::run_batch(jobs, 4), SimError);

  // A failed batch must leave the pool reusable (fresh pool semantics are
  // covered above; here reuse one across a failing and a clean batch).
  BatchRunner pool(4);
  EXPECT_THROW((void)core::run_batch(pool, jobs), SimError);
  const auto good = core::run_batch(pool, mixed_sweep());
  EXPECT_EQ(good.size(), mixed_sweep().size());
}

TEST(BatchRunner, DefaultThreadCountHonorsEnvironment) {
  EXPECT_GE(BatchRunner::default_thread_count(), 1u);
  ASSERT_EQ(setenv("INDEXMAC_THREADS", "3", 1), 0);
  EXPECT_EQ(BatchRunner::default_thread_count(), 3u);
  ASSERT_EQ(setenv("INDEXMAC_THREADS", "1", 1), 0);
  EXPECT_EQ(BatchRunner::default_thread_count(), 1u);
  const auto max = std::to_string(BatchRunner::kMaxThreads);
  ASSERT_EQ(setenv("INDEXMAC_THREADS", max.c_str(), 1), 0);
  EXPECT_EQ(BatchRunner::default_thread_count(), BatchRunner::kMaxThreads);
  ASSERT_EQ(unsetenv("INDEXMAC_THREADS"), 0);
}

TEST(BatchRunner, DefaultThreadCountRejectsMalformedEnvironment) {
  // A bad INDEXMAC_THREADS must fail loudly, never clamp or fall back:
  // zero/negative, garbage, partial parses, and absurd widths.
  const char* bad[] = {"0",          "-2",    "abc", "3abc",       "",
                       "2147483648", "99999", "1e3", "4294967297", " "};
  for (const char* value : bad) {
    SCOPED_TRACE(std::string("INDEXMAC_THREADS=\"") + value + "\"");
    ASSERT_EQ(setenv("INDEXMAC_THREADS", value, 1), 0);
    EXPECT_THROW((void)BatchRunner::default_thread_count(), SimError);
  }
  ASSERT_EQ(unsetenv("INDEXMAC_THREADS"), 0);
  EXPECT_GE(BatchRunner::default_thread_count(), 1u);  // clean fallback restored
}

TEST(BatchRunner, ParseThreadCountMirrorsEnvValidation) {
  // The CLI --threads flag and INDEXMAC_THREADS share one rule set:
  // the whole string must parse as an integer in [1, kMaxThreads].
  EXPECT_EQ(BatchRunner::parse_thread_count("1"), 1u);
  EXPECT_EQ(BatchRunner::parse_thread_count("16"), 16u);
  EXPECT_EQ(BatchRunner::parse_thread_count(std::to_string(BatchRunner::kMaxThreads)),
            BatchRunner::kMaxThreads);
  const char* bad[] = {"0",          "-2",    "abc", "3abc",       "",
                       "2147483648", "99999", "1e3", "4294967297", " "};
  for (const char* value : bad) {
    SCOPED_TRACE(std::string("--threads \"") + value + "\"");
    EXPECT_THROW((void)BatchRunner::parse_thread_count(value), SimError);
  }
}

TEST(BatchRunner, ThreadOverrideWinsOverEnvironment) {
  // The CLI flag routes through set_thread_override, which must beat the
  // environment variable and restore cleanly when cleared.
  ASSERT_EQ(setenv("INDEXMAC_THREADS", "3", 1), 0);
  BatchRunner::set_thread_override(2);
  EXPECT_EQ(BatchRunner::default_thread_count(), 2u);
  BatchRunner::set_thread_override(0);  // cleared: env applies again
  EXPECT_EQ(BatchRunner::default_thread_count(), 3u);
  // With the override set, even a malformed environment is never consulted.
  ASSERT_EQ(setenv("INDEXMAC_THREADS", "garbage", 1), 0);
  BatchRunner::set_thread_override(5);
  EXPECT_EQ(BatchRunner::default_thread_count(), 5u);
  BatchRunner::set_thread_override(0);
  ASSERT_EQ(unsetenv("INDEXMAC_THREADS"), 0);
}

}  // namespace
