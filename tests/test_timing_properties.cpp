// Property tests on the timing model: shrinking a resource can never help,
// and headline results are robust across processor configurations. These
// guard the model against regressions that would silently invalidate the
// reproduced figures.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/spmm_problem.h"

namespace indexmac::timing {
namespace {

using core::Algorithm;
using core::RunConfig;
using core::SpmmProblem;

const kernels::GemmDims kDims{24, 96, 48};

std::uint64_t cycles_with(const ProcessorConfig& proc, Algorithm alg,
                          sparse::Sparsity sp = sparse::kSparsity14) {
  const auto problem = SpmmProblem::random(kDims, sp, 77);
  return core::run_exact(problem, RunConfig{.algorithm = alg, .kernel = {.unroll = 4}}, proc)
      .stats.cycles;
}

TEST(TimingProperties, SmallerRobNeverFaster) {
  ProcessorConfig base{};
  ProcessorConfig small = base;
  small.scalar.rob_entries = 16;
  for (const auto alg : {Algorithm::kIndexmac, Algorithm::kRowwiseSpmm})
    EXPECT_GE(cycles_with(small, alg), cycles_with(base, alg));
}

TEST(TimingProperties, NarrowerIssueNeverFaster) {
  ProcessorConfig base{};
  ProcessorConfig narrow = base;
  narrow.scalar.issue_width = 2;
  narrow.scalar.fetch_width = 2;
  narrow.scalar.commit_width = 2;
  for (const auto alg : {Algorithm::kIndexmac, Algorithm::kRowwiseSpmm})
    EXPECT_GE(cycles_with(narrow, alg), cycles_with(base, alg));
}

TEST(TimingProperties, SmallerVectorQueueNeverFaster) {
  ProcessorConfig base{};
  ProcessorConfig small = base;
  small.vector.queue_entries = 2;
  for (const auto alg : {Algorithm::kIndexmac, Algorithm::kRowwiseSpmm})
    EXPECT_GE(cycles_with(small, alg), cycles_with(base, alg));
}

TEST(TimingProperties, FewerLoadQueuesSlowBothButPreserveTheWin) {
  // Throttling the vector load queues hurts both kernels (the proposed one
  // relatively more: its B-tile preload and per-row A/C loads are a larger
  // fraction of its time once the per-non-zero loads are gone), but the
  // proposed kernel must stay ahead.
  ProcessorConfig base{};
  ProcessorConfig throttled = base;
  throttled.vector.load_queues = 2;
  for (const auto alg : {Algorithm::kIndexmac, Algorithm::kRowwiseSpmm})
    EXPECT_GT(cycles_with(throttled, alg), cycles_with(base, alg));
  EXPECT_GT(static_cast<double>(cycles_with(throttled, Algorithm::kRowwiseSpmm)) /
                static_cast<double>(cycles_with(throttled, Algorithm::kIndexmac)),
            1.2);
}

TEST(TimingProperties, SlowerDramNeverFaster) {
  ProcessorConfig base{};
  ProcessorConfig slow = base;
  slow.memory.dram_latency = 300;
  slow.memory.dram_line_occupancy = 21;
  for (const auto alg : {Algorithm::kIndexmac, Algorithm::kRowwiseSpmm})
    EXPECT_GT(cycles_with(slow, alg), cycles_with(base, alg));
}

TEST(TimingProperties, SpeedupHoldsAcrossConfigurations) {
  // The headline result must not be an artifact of one parameter choice.
  std::vector<ProcessorConfig> configs(4);
  configs[1].memory.dram_latency = 200;           // slow memory
  configs[2].scalar.issue_width = 4;              // narrower core
  configs[2].scalar.fetch_width = 4;
  configs[3].vector.mac_latency = 8;              // slower vector MAC pipe
  for (const auto& proc : configs) {
    const double speedup = static_cast<double>(cycles_with(proc, Algorithm::kRowwiseSpmm)) /
                           static_cast<double>(cycles_with(proc, Algorithm::kIndexmac));
    EXPECT_GT(speedup, 1.25);
    EXPECT_LT(speedup, 3.0);
  }
}

TEST(TimingProperties, DenseBaselineSlowerThanSparse) {
  // Executing the same logical product densely does all M/N times the MACs.
  const auto problem = SpmmProblem::random(kDims, sparse::kSparsity14, 78);
  const ProcessorConfig proc{};
  const auto dense = core::run_exact(
      problem, RunConfig{.algorithm = Algorithm::kDenseRowwise, .kernel = {.unroll = 1}}, proc);
  const auto sparse_run = core::run_exact(
      problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}}, proc);
  EXPECT_GT(dense.stats.cycles, sparse_run.stats.cycles);
}

TEST(TimingProperties, CyclesScaleRoughlyLinearlyWithRows) {
  const ProcessorConfig proc{};
  const auto small = SpmmProblem::random({16, 96, 48}, sparse::kSparsity14, 79);
  const auto big = SpmmProblem::random({64, 96, 48}, sparse::kSparsity14, 79);
  const auto cs = core::run_exact(
      small, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}}, proc);
  const auto cb = core::run_exact(
      big, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}}, proc);
  const double ratio = static_cast<double>(cb.stats.cycles) / static_cast<double>(cs.stats.cycles);
  EXPECT_GT(ratio, 2.8);  // 4x rows, minus fixed overheads
  EXPECT_LT(ratio, 4.6);
}

}  // namespace
}  // namespace indexmac::timing
