// Workload registry: the suites that generalize the paper's CNN tables.
// The CNN suites must reproduce cnn::unique_gemms exactly (the figure
// benches rely on identical layer lists), and the transformer suites must
// carry the documented projection shapes.
#include "workloads/workloads.h"

#include <gtest/gtest.h>

#include "cnn/conv_layer.h"

namespace indexmac::workloads {
namespace {

TEST(Workloads, RegistryHasTheAdvertisedSuites) {
  // The CLI's list-workloads contract: at least ResNet50, MobileNet-style,
  // BERT-base and ViT suites, plus the CI tiny suite.
  for (const char* name :
       {"resnet50", "densenet121", "inceptionv3", "mobilenetv1", "bert-base", "vit-base",
        "tiny"}) {
    EXPECT_TRUE(has_suite(name)) << name;
    EXPECT_FALSE(suite(name).workloads.empty()) << name;
    EXPECT_FALSE(suite(name).display_name.empty()) << name;
  }
  EXPECT_GE(suite_names().size(), 4u);
  EXPECT_FALSE(has_suite("no-such-net"));
  EXPECT_THROW((void)suite("no-such-net"), SimError);
}

TEST(Workloads, CnnSuitesMatchUniqueGemms) {
  const struct {
    const char* suite_name;
    cnn::CnnModel (*model)();
  } cases[] = {{"resnet50", cnn::resnet50},
               {"densenet121", cnn::densenet121},
               {"inceptionv3", cnn::inceptionv3},
               {"mobilenetv1", cnn::mobilenetv1}};
  for (const auto& c : cases) {
    SCOPED_TRACE(c.suite_name);
    const Suite& s = suite(c.suite_name);
    const cnn::CnnModel model = c.model();
    const auto layers = cnn::unique_gemms(model);
    EXPECT_EQ(s.source_layers, model.layers.size());
    ASSERT_EQ(s.workloads.size(), layers.size());
    for (std::size_t i = 0; i < layers.size(); ++i) {
      EXPECT_EQ(s.workloads[i].name, layers[i].representative.name);
      EXPECT_EQ(s.workloads[i].dims.rows_a, layers[i].dims.rows_a);
      EXPECT_EQ(s.workloads[i].dims.k, layers[i].dims.k);
      EXPECT_EQ(s.workloads[i].dims.cols_b, layers[i].dims.cols_b);
      EXPECT_EQ(s.workloads[i].count, layers[i].count);
    }
    // Count-weighted shapes cover every layer of the source network.
    std::size_t total = 0;
    for (const Workload& w : s.workloads) total += w.count;
    EXPECT_EQ(total, model.layers.size());
  }
}

TEST(Workloads, MobilenetContainsDepthwiseAndPointwiseShapes) {
  const Suite& s = suite("mobilenetv1");
  bool saw_dw = false, saw_pw = false;
  for (const Workload& w : s.workloads) {
    if (w.name.find(".dw") != std::string::npos) {
      saw_dw = true;
      EXPECT_EQ(w.dims.k, 9u) << w.name;  // 3x3 single-channel filter proxy
    }
    if (w.name.find(".pw") != std::string::npos) {
      saw_pw = true;
      EXPECT_GE(w.dims.k, 32u) << w.name;  // pointwise 1x1: k == in_channels
    }
  }
  EXPECT_TRUE(saw_dw);
  EXPECT_TRUE(saw_pw);
  // MobileNetV1 @224: 0.57 GMACs dense (the well-known headline count).
  EXPECT_NEAR(static_cast<double>(s.total_macs()) / 1e9, 0.57, 0.02);
}

TEST(Workloads, TransformerSuitesCarryProjectionShapes) {
  const Suite& bert = suite("bert-base");
  ASSERT_EQ(bert.workloads.size(), 4u);
  EXPECT_EQ(bert.workloads[0].name, "attention.qkv_proj");
  EXPECT_EQ(bert.workloads[0].count, 36u);  // 3 projections x 12 layers
  for (const Workload& w : bert.workloads) EXPECT_EQ(w.dims.cols_b, 128u) << w.name;
  // FFN up/down are transposes of each other.
  EXPECT_EQ(bert.workloads[2].dims.rows_a, 3072u);
  EXPECT_EQ(bert.workloads[2].dims.k, 768u);
  EXPECT_EQ(bert.workloads[3].dims.rows_a, 768u);
  EXPECT_EQ(bert.workloads[3].dims.k, 3072u);

  const Suite& vit = suite("vit-base");
  EXPECT_EQ(vit.workloads.front().name, "patch_embed");
  EXPECT_EQ(vit.workloads.front().dims.k, 768u);  // 3*16*16
  bool found_encoder = false;
  for (const Workload& w : vit.workloads)
    if (w.name == "attention.qkv_proj") {
      found_encoder = true;
      EXPECT_EQ(w.dims.cols_b, 197u);  // 196 patches + CLS token
    }
  EXPECT_TRUE(found_encoder);
}

TEST(Workloads, ExpandCrossesSparsities) {
  const Suite& s = suite("tiny");
  ASSERT_EQ(s.sparsities.size(), 2u);
  const auto instances = expand(s);
  ASSERT_EQ(instances.size(), s.workloads.size() * 2);
  // All workloads at the first sparsity, then all at the second.
  for (std::size_t i = 0; i < s.workloads.size(); ++i) {
    EXPECT_EQ(instances[i].sp, s.sparsities[0]);
    EXPECT_EQ(instances[i].workload.name, s.workloads[i].name);
    EXPECT_EQ(instances[s.workloads.size() + i].sp, s.sparsities[1]);
  }
}

TEST(Workloads, ShrinkClampsEachDimension) {
  const kernels::GemmDims big{3072, 768, 197};
  const kernels::GemmDims cap{32, 64, 48};
  const kernels::GemmDims small = shrink(big, cap);
  EXPECT_EQ(small.rows_a, 32u);
  EXPECT_EQ(small.k, 64u);
  EXPECT_EQ(small.cols_b, 48u);
  const kernels::GemmDims tiny_dims = shrink({8, 16, 20}, cap);
  EXPECT_EQ(tiny_dims.rows_a, 8u);
  EXPECT_EQ(tiny_dims.k, 16u);
  EXPECT_EQ(tiny_dims.cols_b, 20u);
}

TEST(Workloads, ShrinkCornerCases) {
  const kernels::GemmDims cap{32, 64, 48};
  // Every dimension exactly at the cap: unchanged.
  const kernels::GemmDims at_cap = shrink({32, 64, 48}, cap);
  EXPECT_EQ(at_cap.rows_a, 32u);
  EXPECT_EQ(at_cap.k, 64u);
  EXPECT_EQ(at_cap.cols_b, 48u);
  // Mixed: one dimension over, one exactly at, one under the cap.
  const kernels::GemmDims mixed = shrink({128, 64, 7}, cap);
  EXPECT_EQ(mixed.rows_a, 32u);
  EXPECT_EQ(mixed.k, 64u);
  EXPECT_EQ(mixed.cols_b, 7u);
  // Degenerate k=1 / cols_b=1 shapes survive (skinny LLM-decode limits).
  const kernels::GemmDims skinny = shrink({4096, 1, 1}, cap);
  EXPECT_EQ(skinny.rows_a, 32u);
  EXPECT_EQ(skinny.k, 1u);
  EXPECT_EQ(skinny.cols_b, 1u);
}

TEST(Workloads, SparsityLabelsRoundTrip) {
  EXPECT_EQ(parse_sparsity("1:4"), sparse::kSparsity14);
  EXPECT_EQ(parse_sparsity("2:4"), sparse::kSparsity24);
  EXPECT_EQ(sparsity_label(parse_sparsity("12:16")), "12:16");
  EXPECT_THROW((void)parse_sparsity("14"), SimError);
  EXPECT_THROW((void)parse_sparsity(":4"), SimError);
  EXPECT_THROW((void)parse_sparsity("1:"), SimError);
  EXPECT_THROW((void)parse_sparsity("4:1"), SimError);  // N > M
  EXPECT_THROW((void)parse_sparsity("0:4"), SimError);
  EXPECT_THROW((void)parse_sparsity("a:b"), SimError);
}

TEST(Workloads, ParseSparsityRejectsDegenerateLabels) {
  // N == M is dense, not a sparsity pattern.
  EXPECT_THROW((void)parse_sparsity("4:4"), SimError);
  EXPECT_THROW((void)parse_sparsity("1:1"), SimError);
  // Over-full (N > M), including the small-field case.
  EXPECT_THROW((void)parse_sparsity("3:2"), SimError);
  // Whitespace anywhere in the label is malformed, never trimmed.
  EXPECT_THROW((void)parse_sparsity(" 2:4"), SimError);
  EXPECT_THROW((void)parse_sparsity("2:4 "), SimError);
  EXPECT_THROW((void)parse_sparsity("2 :4"), SimError);
  EXPECT_THROW((void)parse_sparsity("2: 4"), SimError);
  // Fields beyond the 4096 bound (including u32-overflowing digits).
  EXPECT_THROW((void)parse_sparsity("2:4097"), SimError);
  EXPECT_THROW((void)parse_sparsity("5000:8000"), SimError);
  EXPECT_THROW((void)parse_sparsity("1:99999999999999999999"), SimError);
  // The boundary itself is accepted, and errors name the offending label.
  EXPECT_EQ(sparsity_label(parse_sparsity("2048:4096")), "2048:4096");
  try {
    (void)parse_sparsity("4:4");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("4:4"), std::string::npos) << e.what();
  }
}

TEST(Workloads, SourceLayersMatchModelGraphCounts) {
  // Satellite fix: source_layers comes from ModelGraph::layer_count() for
  // every registered suite (it used to be wrong for the non-CNN suites).
  for (const std::string& name : suite_names())
    EXPECT_EQ(suite(name).source_layers, model_graph(name).layer_count()) << name;
  EXPECT_EQ(suite("bert-base").source_layers, 72u);   // 6 shapes x 12 layers
  EXPECT_EQ(suite("vit-base").source_layers, 74u);    // patch + 6x12 + head
  EXPECT_EQ(suite("tiny").source_layers, 4u);
  EXPECT_EQ(suite("llm-decode").source_layers, 225u);
}

TEST(Workloads, LlmDecodeCarriesGqaDecodeShapes) {
  ASSERT_TRUE(has_suite("llm-decode"));
  const ModelGraph& graph = model_graph("llm-decode");
  // Decode-step activations are batch-sized (skinny): every GEMM has the
  // same tiny cols_b.
  for (const LayerRecord& l : graph.layers) EXPECT_EQ(l.gemm.cols_b, 8u) << l.name;
  // GQA: the fused K/V projection is narrower than Q and repeats twice per
  // block (K and V), 2 x 32 blocks.
  const LayerRecord* kv = nullptr;
  for (const LayerRecord& l : graph.layers)
    if (l.name == "attn.kv_proj") kv = &l;
  ASSERT_NE(kv, nullptr);
  EXPECT_EQ(kv->kind, LayerKind::kAttentionProj);
  EXPECT_EQ(kv->gemm.rows_a, 1024u);
  EXPECT_EQ(kv->gemm.k, 4096u);
  EXPECT_EQ(kv->repeat, 64u);
  // Default evaluation grid: 2:4 plus the coarser 2:8 pattern.
  ASSERT_EQ(graph.default_sparsities.size(), 2u);
  EXPECT_EQ(sparsity_label(graph.default_sparsities[0]), "2:4");
  EXPECT_EQ(sparsity_label(graph.default_sparsities[1]), "2:8");
  // 8B-class decode step: ~60 GMACs dominated by the MLP and lm_head.
  EXPECT_NEAR(static_cast<double>(graph.total_macs()) / 1e9, 60.0, 1.0);
}

TEST(Workloads, AllShapesAreLayoutCompatible) {
  // Every registered shape must survive layout construction at the paper's
  // L=16 tile under both paper sparsities (the sweep engine's precondition).
  for (const std::string& name : suite_names()) {
    const Suite& s = suite(name);
    for (const sparse::Sparsity sp : s.sparsities)
      for (const Workload& w : s.workloads) {
        AddressAllocator alloc;
        const auto layout = kernels::make_layout(w.dims, sp, 16, alloc);
        EXPECT_GT(layout.num_ktiles, 0u) << name << "/" << w.name;
      }
  }
}

}  // namespace
}  // namespace indexmac::workloads
