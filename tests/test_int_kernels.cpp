// Integer (int32) element path of the kernels: vindexmac.vx and vmacc.vx
// variants, exercised end to end through packing, code generation and the
// functional simulator. (The float path is covered by test_kernels.cpp.)
#include <gtest/gtest.h>

#include "fsim/machine.h"
#include "kernels/kernels.h"
#include "sparse/packing.h"

namespace indexmac::kernels {
namespace {

using sparse::DenseMatrix;
using sparse::NmMatrix;
using sparse::Sparsity;

struct IntRun {
  SpmmLayout layout;
  MainMemory mem;
};

/// Places int32 operands per `layout` and the packing mode of `alg3`.
void place_int_operands(IntRun& run, const NmMatrix<std::int32_t>& a,
                        const DenseMatrix<std::int32_t>& b, bool alg3) {
  const SpmmLayout& l = run.layout;
  sparse::PackConfig pc{
      .tile_rows = l.tile_rows,
      .mode = alg3 ? sparse::IndexMode::kVrfIndex : sparse::IndexMode::kByteOffset,
      .b_pitch_bytes = static_cast<std::uint32_t>(l.b_pitch_elems * 4),
      .base_vreg = b_tile_base_vreg(l.tile_rows),
  };
  const auto packed = sparse::pack_a(a, pc);
  run.mem.write_i32s(l.a_values, packed.values);
  run.mem.write_i32s(l.a_indices, packed.indices);
  run.mem.write_i32s(l.b_base, sparse::to_padded_rows(b, l.b_pitch_elems, l.k_padded));
}

DenseMatrix<std::int32_t> read_int_c(const IntRun& run) {
  DenseMatrix<std::int32_t> c(run.layout.dims.rows_a, run.layout.dims.cols_b);
  for (std::size_t r = 0; r < c.rows(); ++r) {
    const auto row =
        run.mem.read_i32s(run.layout.c_base + r * run.layout.c_pitch_elems * 4, c.cols());
    for (std::size_t j = 0; j < c.cols(); ++j) c.at(r, j) = row[j];
  }
  return c;
}

class IntKernelSweep
    : public ::testing::TestWithParam<std::tuple<bool /*alg3*/, int /*unroll*/, Sparsity>> {};

TEST_P(IntKernelSweep, IntegerKernelsMatchReference) {
  const auto [alg3, unroll, sp] = GetParam();
  const GemmDims dims{9, 40, 33};
  const auto dense = sparse::random_matrix<std::int32_t>(dims.rows_a, dims.k, 3, -9, 9);
  const auto a = NmMatrix<std::int32_t>::prune_from_dense(dense, sp);
  const auto b = sparse::random_matrix<std::int32_t>(dims.k, dims.cols_b, 4, -9, 9);

  IntRun run;
  AddressAllocator alloc;
  run.layout = make_layout(dims, sp, 16, alloc);
  place_int_operands(run, a, b, alg3);

  const KernelOptions options{.unroll = static_cast<unsigned>(unroll),
                              .elem = ElemType::kI32};
  const Program program =
      alg3 ? emit_indexmac_kernel(run.layout, options)
           : emit_rowwise_spmm_kernel(run.layout, options);
  Machine machine(program, run.mem);
  ASSERT_EQ(machine.run(50'000'000), StopReason::kEbreak);

  const auto c = read_int_c(run);
  const auto ref = matmul_reference(a.to_dense(), b);
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j)
      ASSERT_EQ(c.at(i, j), ref.at(i, j)) << (alg3 ? "alg3" : "alg2") << " (" << i << "," << j
                                          << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Variants, IntKernelSweep,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1, 4),
                       ::testing::Values(sparse::kSparsity14, sparse::kSparsity24)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) ? "indexmac" : "rowwise") + "_u" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::to_string(std::get<2>(info.param).n) + "of" +
             std::to_string(std::get<2>(info.param).m);
    });

TEST(IntKernels, IntegerOverflowWrapsModulo32Bits) {
  // int32 lanes wrap (unsigned semantics in hardware); verify on a value
  // pair that overflows.
  const GemmDims dims{1, 16, 16};
  DenseMatrix<std::int32_t> dense(1, 16);
  dense.at(0, 0) = 1 << 30;
  const auto a = NmMatrix<std::int32_t>::from_dense(dense, sparse::kSparsity14);
  DenseMatrix<std::int32_t> b(16, 16);
  for (int j = 0; j < 16; ++j) b.at(0, j) = 8;  // (1<<30)*8 wraps to 0 mod 2^32

  IntRun run;
  AddressAllocator alloc;
  run.layout = make_layout(dims, sparse::kSparsity14, 16, alloc);
  place_int_operands(run, a, b, /*alg3=*/true);
  const Program program =
      emit_indexmac_kernel(run.layout, KernelOptions{.unroll = 1, .elem = ElemType::kI32});
  Machine machine(program, run.mem);
  ASSERT_EQ(machine.run(1'000'000), StopReason::kEbreak);
  EXPECT_EQ(read_int_c(run).at(0, 0), 0);
}

}  // namespace
}  // namespace indexmac::kernels
