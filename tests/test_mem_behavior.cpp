// Behavioural tests of the memory hierarchy under kernel-like access
// patterns: capacity evictions, writeback paths, bandwidth saturation and
// the vector path's L1 bypass — the mechanisms behind the Fig. 4-6 shapes.
#include <gtest/gtest.h>

#include "mem/memory_system.h"

namespace indexmac {
namespace {

TEST(MemBehavior, StreamingBeyondL2CapacityEvicts) {
  MemorySystem ms{MemHierConfig{}};
  // Stream 1 MB (2x the 512KB L2) of vector lines, then re-touch the start:
  // it must miss again (capacity eviction).
  std::uint64_t cycle = 0;
  for (std::uint64_t addr = 0; addr < 1'048'576; addr += 64)
    cycle = ms.vector_data(addr, 64, false, cycle);
  const std::uint64_t before = ms.stats().dram_lines;
  (void)ms.vector_data(0, 64, false, cycle + 1000);
  EXPECT_EQ(ms.stats().dram_lines, before + 1);  // went to DRAM again
}

TEST(MemBehavior, WorkingSetWithinL2StaysResident) {
  MemorySystem ms{MemHierConfig{}};
  std::uint64_t cycle = 0;
  // 64 KB working set streamed twice: second pass must be all L2 hits.
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t addr = 0; addr < 65'536; addr += 64)
      cycle = ms.vector_data(addr, 64, false, cycle);
  EXPECT_EQ(ms.stats().dram_lines, 65'536u / 64);  // only first-pass misses
}

TEST(MemBehavior, DirtyL1EvictionWritesBackToL2) {
  MemorySystem ms{MemHierConfig{}};
  // Dirty one line, then stream conflicting lines through its L1 set
  // (64KB 4-way, 64B lines -> set stride 16KB).
  (void)ms.scalar_data(0x100, 8, true, 0);
  const std::uint64_t l2_before = ms.l2().stats().accesses();
  for (int i = 1; i <= 4; ++i) (void)ms.scalar_data(0x100 + i * 16384, 8, false, 1000 * i);
  // The victim writeback appears as an extra L2 access beyond the 4 fills.
  EXPECT_GE(ms.l2().stats().accesses() - l2_before, 5u);
}

TEST(MemBehavior, DramChannelSerializesColdStreams) {
  MemorySystem ms{MemHierConfig{}};
  // 32 cold lines at the same instant: the channel transfers one line per
  // dram_line_occupancy cycles, so the last completion reflects queueing.
  std::uint64_t last = 0;
  for (int i = 0; i < 32; ++i)
    last = std::max(last, ms.vector_data(static_cast<std::uint64_t>(i) * 64, 64, false, 0));
  const MemHierConfig cfg{};
  EXPECT_GE(last, cfg.dram_latency + 31ull * cfg.dram_line_occupancy);
}

TEST(MemBehavior, ScalarPathWarmsL1NotJustL2) {
  MemorySystem ms{MemHierConfig{}};
  (void)ms.scalar_data(0x40, 4, false, 0);
  EXPECT_TRUE(ms.l1d().probe(0x40));
  EXPECT_TRUE(ms.l2().probe(0x40));
}

TEST(MemBehavior, VectorAndScalarSeeTheSameL2Lines) {
  // The L2 is shared (Table I): a line warmed by the vector engine is an L2
  // hit for the scalar side afterwards.
  MemorySystem ms{MemHierConfig{}};
  const std::uint64_t warm = ms.vector_data(0x1000, 64, false, 0);
  const std::uint64_t done = ms.scalar_data(0x1000, 4, false, warm + 100);
  // L1 miss -> L2 hit: 2 + 8 cycles, no DRAM.
  EXPECT_EQ(done, warm + 100 + 2 + 8);
}

TEST(MemBehavior, InterleavedBanksSustainThroughput) {
  MemorySystem ms{MemHierConfig{}};
  // Warm 8 lines mapping to the 8 different banks.
  for (int i = 0; i < 8; ++i) (void)ms.vector_data(static_cast<std::uint64_t>(i) * 64, 64, false, 0);
  // Re-access all 8 at the same cycle: all complete at hit latency.
  std::uint64_t worst = 0;
  for (int i = 0; i < 8; ++i)
    worst = std::max(worst, ms.vector_data(static_cast<std::uint64_t>(i) * 64, 64, false, 5000));
  EXPECT_EQ(worst, 5000u + 8);
}

TEST(MemBehavior, CustomGeometryRespected) {
  MemHierConfig cfg{};
  cfg.l2.size_bytes = 64 * 1024;
  cfg.l2.ways = 4;
  MemorySystem ms{cfg};
  std::uint64_t cycle = 0;
  for (std::uint64_t addr = 0; addr < 131'072; addr += 64)
    cycle = ms.vector_data(addr, 64, false, cycle);
  const std::uint64_t before = ms.stats().dram_lines;
  (void)ms.vector_data(0, 64, false, cycle + 1000);
  EXPECT_EQ(ms.stats().dram_lines, before + 1);  // 128KB stream thrashed 64KB L2
}

}  // namespace
}  // namespace indexmac
