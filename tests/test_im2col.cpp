// End-to-end convolution: real feature maps lowered with im2col, weights
// pruned to N:M, the whole thing executed by the simulated vindexmac
// kernel, compared against a direct convolution. This closes the loop the
// paper's Section IV describes ("convolutions ... are mapped to
// sparse-dense matrix multiplications").
#include <gtest/gtest.h>

#include "cnn/im2col.h"
#include "core/spmm_problem.h"
#include "fsim/machine.h"

namespace indexmac::cnn {
namespace {

TEST(Im2col, IdentityFor1x1Stride1) {
  // A 1x1 conv's im2col is the flattened input itself.
  const FeatureMap input = random_feature_map(3, 4, 5, 1);
  const ConvLayer layer{"c", 3, 8, 1, 1, 1, 0, 0, 4, 5};
  const auto b = im2col(input, layer);
  ASSERT_EQ(b.rows(), 3u);
  ASSERT_EQ(b.cols(), 20u);
  for (unsigned c = 0; c < 3; ++c)
    for (unsigned y = 0; y < 4; ++y)
      for (unsigned x = 0; x < 5; ++x)
        EXPECT_FLOAT_EQ(b.at(c, y * 5 + x), input.at(c, y, x));
}

TEST(Im2col, PaddingProducesZeros) {
  const FeatureMap input = random_feature_map(1, 3, 3, 2);
  const ConvLayer layer{"c", 1, 1, 3, 3, 1, 1, 1, 3, 3};
  const auto b = im2col(input, layer);
  // Output position (0,0), kernel tap (0,0) reads input(-1,-1) -> 0.
  EXPECT_FLOAT_EQ(b.at(0, 0), 0.0f);
  // Kernel tap (1,1) at output (0,0) reads input(0,0).
  EXPECT_FLOAT_EQ(b.at(4, 0), input.at(0, 0, 0));
}

TEST(Im2col, StrideSkipsPositions) {
  const FeatureMap input = random_feature_map(1, 6, 6, 3);
  const ConvLayer layer{"c", 1, 1, 1, 1, 2, 0, 0, 6, 6};
  const auto b = im2col(input, layer);
  ASSERT_EQ(b.cols(), 9u);  // 3x3 output
  EXPECT_FLOAT_EQ(b.at(0, 1), input.at(0, 0, 2));
  EXPECT_FLOAT_EQ(b.at(0, 3), input.at(0, 2, 0));
}

TEST(Im2col, GemmTimesIm2colEqualsDirectConvolution) {
  const ConvLayer layer{"c", 4, 6, 3, 3, 1, 1, 1, 8, 8};
  const FeatureMap input = random_feature_map(4, 8, 8, 4);
  const auto weights = sparse::random_matrix<float>(6, 36, 5, -1.0f, 1.0f);
  const auto direct = conv_reference(input, layer, weights);
  const auto gemm = sparse::matmul_reference(weights, im2col(input, layer));
  const FeatureMap via_gemm = gemm_result_to_map(gemm, layer);
  for (unsigned o = 0; o < 6; ++o)
    for (unsigned y = 0; y < 8; ++y)
      for (unsigned x = 0; x < 8; ++x)
        EXPECT_NEAR(via_gemm.at(o, y, x), direct.at(o, y, x), 1e-4);
}

struct ConvCase {
  ConvLayer layer;
  sparse::Sparsity sp;
};

class EndToEndConv : public ::testing::TestWithParam<ConvCase> {};

TEST_P(EndToEndConv, SimulatedVindexmacKernelComputesTheConvolution) {
  const ConvLayer& layer = GetParam().layer;
  const sparse::Sparsity sp = GetParam().sp;

  const FeatureMap input = random_feature_map(layer.in_channels, layer.in_h, layer.in_w, 7);
  const auto dense_weights =
      sparse::random_matrix<float>(layer.out_channels, layer.gemm().k, 8, -1.0f, 1.0f);
  const auto nm = sparse::NmMatrix<float>::prune_from_dense(dense_weights, sp);

  // Direct convolution with the *pruned* weights is the golden output.
  const FeatureMap golden = conv_reference(input, layer, nm.to_dense());

  // Simulated path: pack, emit, execute the vindexmac kernel.
  core::SpmmProblem problem{layer.gemm(), sp, nm, im2col(input, layer)};
  MainMemory mem;
  const auto run = core::prepare(
      problem, core::RunConfig{.algorithm = core::Algorithm::kIndexmac, .kernel = {.unroll = 4}},
      mem);
  Machine machine(run.program, mem);
  ASSERT_EQ(machine.run(200'000'000), StopReason::kEbreak);
  const FeatureMap out = gemm_result_to_map(core::read_c(run, mem), layer);

  for (unsigned o = 0; o < layer.out_channels; ++o)
    for (unsigned y = 0; y < layer.out_h(); ++y)
      for (unsigned x = 0; x < layer.out_w(); ++x)
        ASSERT_NEAR(out.at(o, y, x), golden.at(o, y, x), 5e-3)
            << layer.name << " @(" << o << "," << y << "," << x << ")";
}

INSTANTIATE_TEST_SUITE_P(
    LayerShapes, EndToEndConv,
    ::testing::Values(
        ConvCase{{"conv3x3", 8, 12, 3, 3, 1, 1, 1, 10, 10}, sparse::kSparsity24},
        ConvCase{{"conv1x1", 16, 12, 1, 1, 1, 0, 0, 7, 7}, sparse::kSparsity14},
        ConvCase{{"strided", 8, 10, 3, 3, 2, 1, 1, 9, 9}, sparse::kSparsity24},
        ConvCase{{"asym7x1", 8, 6, 7, 1, 1, 3, 0, 9, 9}, sparse::kSparsity14}),
    [](const auto& info) { return info.param.layer.name; });

}  // namespace
}  // namespace indexmac::cnn
