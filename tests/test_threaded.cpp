// ThreadedEngine correctness: the engine's contract is that every
// observable effect (architectural state, memory, retired counts, marker
// hooks, stop reasons, SimError text) is bit-identical to Machine::step.
// These tests drive both executors over the same programs — including the
// corners that force the engine off its fast path (vl < VLMAX at a fused
// chain, a MAC whose runtime row names a slid register, SSR stream ops,
// out-of-range pcs) — and require exact equality every time.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/assembler.h"
#include "common/error.h"
#include "core/spmm_problem.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"

namespace indexmac {
namespace {

bool states_equal(const ArchState& a, const ArchState& b) {
  if (a.pc != b.pc || a.vl != b.vl) return false;
  for (unsigned i = 0; i < isa::kNumXRegs; ++i)
    if (a.x[i] != b.x[i]) return false;
  for (unsigned i = 0; i < isa::kNumFRegs; ++i)
    if (a.f[i] != b.f[i]) return false;
  for (unsigned i = 0; i < isa::kNumVRegs; ++i)
    for (unsigned j = 0; j < isa::kVlMax; ++j)
      if (a.v[i][j] != b.v[i][j]) return false;
  return true;
}

/// Runs `program` to completion on both executors (fresh memory each) and
/// requires identical stop reason, retired count and architectural state.
/// Returns the threaded engine's stats for fast-path assertions.
ThreadedEngine::Stats run_both(const Program& program,
                               std::uint64_t max_steps = 1'000'000) {
  MainMemory mem_a, mem_b;
  Machine interp(program, mem_a);
  Machine mach(program, mem_b);
  ThreadedEngine engine(mach);
  const StopReason stop_a = interp.run(max_steps);
  const StopReason stop_b = engine.run(max_steps);
  EXPECT_EQ(stop_a, stop_b);
  EXPECT_EQ(interp.instructions_retired(), mach.instructions_retired());
  EXPECT_TRUE(states_equal(interp.state(), mach.state()));
  return engine.stats();
}

TEST(Threaded, ScalarProgramBitExact) {
  Assembler a;
  const Assembler::Label loop = a.new_label();
  a.li(x(1), 0);
  a.li(x(2), 100);
  a.li(x(5), 0x2000);
  a.bind(loop);
  a.sw(x(1), x(5), 0);
  a.lw(x(3), x(5), 0);
  a.add(x(4), x(4), x(3));
  a.addi(x(1), x(1), 1);
  a.blt(x(1), x(2), loop);
  a.ebreak();
  const Program p = a.finish();
  const ThreadedEngine::Stats stats = run_both(p);
  EXPECT_GT(stats.block_runs, 0u);
  EXPECT_EQ(stats.fallback_steps, 0u);
}

// Satellite regression: a jump below the program base must raise the same
// SimError from both executors. (Machine::step once computed pc - base_
// as an unsigned offset; a pc below base wrapped huge, and the error text
// depended on which of the range/alignment checks the wrapped value hit.)
TEST(Threaded, PcBelowBaseRaisesIdenticalErrorBothEngines) {
  Assembler a;
  a.li(x(1), 0x10);  // below the 0x1000 load base
  a.jalr(x(0), x(1), 0);
  a.ebreak();
  const Program p = a.finish();

  std::string err_interp;
  std::uint64_t retired_interp = 0;
  {
    MainMemory mem;
    Machine m(p, mem);
    try {
      (void)m.run(100);
      FAIL() << "interpreter did not raise on pc below base";
    } catch (const SimError& e) {
      err_interp = e.what();
    }
    retired_interp = m.instructions_retired();
  }

  std::string err_threaded;
  {
    MainMemory mem;
    Machine m(p, mem);
    ThreadedEngine engine(m);
    try {
      (void)engine.run(100);
      FAIL() << "threaded engine did not raise on pc below base";
    } catch (const SimError& e) {
      err_threaded = e.what();
    }
    EXPECT_EQ(m.instructions_retired(), retired_interp);
  }

  EXPECT_EQ(err_interp, err_threaded);
  EXPECT_NE(err_interp.find("left the program"), std::string::npos) << err_interp;
}

TEST(Threaded, MisalignedPcRaisesIdenticalErrorBothEngines) {
  Assembler a;
  a.li(x(1), 0x1002);  // inside the program but not 4-aligned
  a.jalr(x(0), x(1), 0);
  a.ebreak();
  const Program p = a.finish();

  const auto run_expect_throw = [&](bool threaded) {
    MainMemory mem;
    Machine m(p, mem);
    try {
      if (threaded) {
        ThreadedEngine engine(m);
        (void)engine.run(100);
      } else {
        (void)m.run(100);
      }
    } catch (const SimError& e) {
      return std::string(e.what());
    }
    ADD_FAILURE() << "no SimError raised (threaded=" << threaded << ")";
    return std::string();
  };
  EXPECT_EQ(run_expect_throw(false), run_expect_throw(true));
}

TEST(Threaded, MarkerHookFiresIdentically) {
  Assembler a;
  a.marker(7);
  a.li(x(1), 5);
  a.marker(11);
  a.marker(13);
  a.ebreak();
  const Program p = a.finish();

  std::vector<int> ids_interp, ids_threaded;
  {
    MainMemory mem;
    Machine m(p, mem);
    m.set_marker_hook([&](int id) { ids_interp.push_back(id); });
    (void)m.run();
  }
  {
    MainMemory mem;
    Machine m(p, mem);
    ThreadedEngine engine(m);
    // Set after engine construction: the engine must observe the hook
    // through the Machine, not a snapshot taken at build time.
    m.set_marker_hook([&](int id) { ids_threaded.push_back(id); });
    (void)engine.run();
  }
  EXPECT_EQ(ids_interp, (std::vector<int>{7, 11, 13}));
  EXPECT_EQ(ids_interp, ids_threaded);
}

/// Emits the canonical fusable inner-loop shape: a deferred-slide chain
/// (vmv.x.s -> vindexmac -> vslide1down) the superblock builder fuses.
void emit_chain_kernel(Assembler& a, int rows) {
  const Assembler::Label loop = a.new_label();
  a.li(x(1), static_cast<std::int64_t>(isa::kVlMax));
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 3);
  a.vmv_v_x(v(2), x(2));   // VRF rows the MAC indexes
  a.li(x(2), -5);
  a.vmv_v_x(v(3), x(2));
  a.li(x(2), 0x01020304);
  a.vmv_v_x(v(4), x(2));   // index words driving the indirect row choice
  a.vmv_v_i(v(6), 0);      // accumulator
  a.li(x(9), 0);
  a.li(x(10), rows);
  a.bind(loop);
  a.vmv_x_s(x(5), v(4));   // chain: extract index word
  a.andi(x(5), x(5), 3);
  a.addi(x(5), x(5), 2);   // row 2 or 3
  a.vindexmac_vx(v(6), v(4), x(5));
  a.vslide1down_vx(v(4), v(4), x(0));
  a.addi(x(9), x(9), 1);
  a.blt(x(9), x(10), loop);
  a.ebreak();
}

TEST(Threaded, FusedChainBitExact) {
  Assembler a;
  emit_chain_kernel(a, 12);
  const Program p = a.finish();
  const ThreadedEngine::Stats stats = run_both(p);
  EXPECT_EQ(stats.fallback_steps, 0u);
}

TEST(Threaded, ChainBailsWhenMacNamesSlidRegister) {
  // The MAC's runtime-resolved row is v4 — the very register the chain
  // defers slides on — so the fused loop must bail and replay per-op.
  Assembler a;
  a.li(x(1), static_cast<std::int64_t>(isa::kVlMax));
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 9);
  a.vmv_v_x(v(4), x(2));
  a.vmv_v_i(v(6), 1);
  a.li(x(5), 4);                      // names row v4
  a.vslide1down_vx(v(4), v(4), x(0));  // chain: slide first...
  a.vindexmac_vx(v(6), v(7), x(5));    // ...then MAC reading the slid row
  a.ebreak();
  const Program p = a.finish();
  const ThreadedEngine::Stats stats = run_both(p);
  EXPECT_GE(stats.chain_bails, 1u);
}

TEST(Threaded, ChainBailsWhenVlBelowMax) {
  Assembler a;
  a.li(x(1), 7);  // vl = 7 < VLMAX: fused chains assume full-width lanes
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 2);
  a.vmv_v_x(v(2), x(2));
  a.vmv_v_i(v(6), 0);
  a.li(x(5), 2);
  a.vslide1down_vx(v(4), v(4), x(0));
  a.vindexmac_vx(v(6), v(4), x(5));
  a.ebreak();
  const Program p = a.finish();
  const ThreadedEngine::Stats stats = run_both(p);
  EXPECT_GE(stats.chain_bails, 1u);
}

TEST(Threaded, StepModeMatchesInterpreterLockstep) {
  Assembler a;
  emit_chain_kernel(a, 5);
  const Program p = a.finish();

  MainMemory mem_a, mem_b;
  Machine interp(p, mem_a);
  Machine mach(p, mem_b);
  ThreadedEngine engine(mach);
  for (std::uint64_t i = 0; i < 1'000'000; ++i) {
    const StopReason sa = interp.step();
    const StopReason sb = engine.step();
    ASSERT_EQ(sa, sb) << "stop divergence at instruction " << i;
    ASSERT_TRUE(states_equal(interp.state(), mach.state()))
        << "state divergence at instruction " << i;
    if (sa != StopReason::kRunning) return;
  }
  FAIL() << "program did not halt";
}

TEST(Threaded, InterleavingEngineAndMachineStepIsSafe) {
  Assembler a;
  emit_chain_kernel(a, 5);
  const Program p = a.finish();

  MainMemory mem_a, mem_b;
  Machine interp(p, mem_a);
  Machine mach(p, mem_b);
  ThreadedEngine engine(mach);
  for (std::uint64_t i = 0; i < 1'000'000; ++i) {
    const StopReason sa = interp.step();
    // Alternate the stepper: the engine is a view over the Machine, so
    // mixing the two must not desynchronize anything.
    const StopReason sb = (i % 2 == 0) ? engine.step() : mach.step();
    ASSERT_EQ(sa, sb);
    ASSERT_TRUE(states_equal(interp.state(), mach.state())) << "at instruction " << i;
    if (sa != StopReason::kRunning) return;
  }
  FAIL() << "program did not halt";
}

TEST(Threaded, MaxStepsBudgetIsInstructionExact) {
  Assembler a;
  emit_chain_kernel(a, 50);
  const Program p = a.finish();
  // Budgets that stop before the program, mid-block and mid-chain.
  for (const std::uint64_t budget : {1ull, 2ull, 13ull, 14ull, 60ull, 61ull, 100ull}) {
    MainMemory mem_a, mem_b;
    Machine interp(p, mem_a);
    Machine mach(p, mem_b);
    ThreadedEngine engine(mach);
    const StopReason sa = interp.run(budget);
    const StopReason sb = engine.run(budget);
    EXPECT_EQ(sa, sb) << "budget " << budget;
    EXPECT_EQ(interp.instructions_retired(), mach.instructions_retired())
        << "budget " << budget;
    EXPECT_TRUE(states_equal(interp.state(), mach.state())) << "budget " << budget;
  }
}

TEST(Threaded, SsrStreamProgramFallsBackBitExact) {
  // SSR ops are outside the threaded fast path by design: the engine must
  // delegate them to Machine::step and still match bit-for-bit.
  const kernels::GemmDims dims{8, 32, 17};
  const core::SpmmProblem problem = core::SpmmProblem::random(dims, sparse::kSparsity14, 3);
  const core::RunConfig config{.algorithm = core::Algorithm::kSsr, .kernel = {.unroll = 1}};

  MainMemory mem_a, mem_b;
  const core::PreparedRun run_a = core::prepare(problem, config, mem_a);
  const core::PreparedRun run_b = core::prepare(problem, config, mem_b);
  Machine interp(run_a.program, mem_a);
  Machine mach(run_b.program, mem_b);
  ThreadedEngine engine(mach);
  EXPECT_EQ(interp.run(10'000'000), engine.run(10'000'000));
  EXPECT_EQ(interp.instructions_retired(), mach.instructions_retired());
  EXPECT_TRUE(states_equal(interp.state(), mach.state()));
  EXPECT_GT(engine.stats().fallback_steps, 0u);

  const auto c_a = core::read_c(run_a, mem_a);
  const auto c_b = core::read_c(run_b, mem_b);
  for (std::size_t i = 0; i < c_a.rows(); ++i)
    for (std::size_t j = 0; j < c_a.cols(); ++j)
      ASSERT_EQ(c_a.at(i, j), c_b.at(i, j)) << "C(" << i << "," << j << ")";
}

TEST(Threaded, AlgorithmKernelsUseSuperblocks) {
  // The three hot kernels must actually hit the fused fast path — a silent
  // regression to per-op dispatch would still be bit-exact, so the stats
  // are the only guard on the engine's reason to exist.
  const kernels::GemmDims dims{16, 64, 32};
  const core::SpmmProblem problem = core::SpmmProblem::random(dims, sparse::kSparsity14, 5);
  for (const auto alg : {core::Algorithm::kRowwiseSpmm, core::Algorithm::kIndexmac,
                         core::Algorithm::kIndexmac4}) {
    MainMemory mem;
    const core::PreparedRun run = core::prepare(
        problem, core::RunConfig{.algorithm = alg, .kernel = {}}, mem);
    Machine mach(run.program, mem);
    ThreadedEngine engine(mach);
    EXPECT_EQ(engine.run(100'000'000), StopReason::kEbreak);
    EXPECT_GT(engine.stats().superblock_macs, 0u) << core::algorithm_name(alg);
    EXPECT_EQ(engine.stats().fallback_steps, 0u) << core::algorithm_name(alg);
  }
}

}  // namespace
}  // namespace indexmac
