// Regression coverage for the zero-allocation dynamic-instruction trace:
//  * TraceSource must perform no heap allocation per retired instruction,
//    gathers included (a counting global allocator verifies this over a
//    gather-heavy kernel);
//  * the DynInst stream must be bit-identical to an independent
//    re-derivation of every field from the pre-instruction architectural
//    state (the pre-refactor TraceSource semantics) on a mixed kernel;
//  * the gather scratch buffer must be stable (pointer identity) across
//    next() calls, as documented.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "asm/assembler.h"
#include "asm/text_assembler.h"
#include "fsim/machine.h"
#include "kernels/spmv_kernel.h"
#include "sparse/nm_matrix.h"
#include "timing/trace.h"

// ---- counting global allocator (whole test binary) ----

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_allocations;
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) - 1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace indexmac {
namespace {

using timing::DynInst;
using timing::TraceSource;

/// Builds a gather-heavy program (the SpMV kernel: one vluxei32 per slot
/// chunk) with its operands laid out in `mem`.
Program build_spmv(MainMemory& mem, std::size_t rows, std::size_t k) {
  const auto dense = sparse::random_matrix<float>(rows, k, 3, -1.0f, 1.0f);
  const auto a = sparse::NmMatrix<float>::prune_from_dense(dense, sparse::kSparsity14);
  const auto packed = kernels::pack_spmv(a);
  AddressAllocator alloc;
  const kernels::SpmvLayout layout = kernels::make_spmv_layout(rows, k, packed.slots_padded, alloc);
  mem.write_f32s(layout.a_values, packed.values);
  mem.write_i32s(layout.a_offsets, packed.offsets);
  mem.write_f32s(layout.x_base, std::vector<float>(k, 0.25f));
  return kernels::emit_spmv_kernel(layout, kernels::ElemType::kF32);
}

TEST(TraceAllocation, NoHeapAllocationPerInstructionOnGatherKernel) {
  MainMemory mem;
  const Program program = build_spmv(mem, 8, 128);
  {
    // Materialize every page the kernel touches (first-touch page
    // allocation is setup cost, not per-instruction cost).
    Machine warmup(program, mem);
    ASSERT_EQ(warmup.run(1'000'000), StopReason::kEbreak);
  }

  Machine machine(program, mem);
  TraceSource trace(machine);
  DynInst d;
  std::uint64_t instructions = 0;
  std::uint64_t gathers = 0;
  const std::uint64_t allocations_before = g_allocations.load();
  while (trace.next(d)) {
    ++instructions;
    if (d.gather_count > 0) ++gathers;
  }
  const std::uint64_t allocations_after = g_allocations.load();
  EXPECT_GT(instructions, 100u);
  EXPECT_GT(gathers, 8u);  // the scenario actually exercises the gather path
  EXPECT_EQ(allocations_after, allocations_before)
      << "TraceSource::next allocated on a " << instructions << "-instruction trace";
}

TEST(TraceAllocation, GatherScratchPointerIsStable) {
  MainMemory mem;
  const Program program = build_spmv(mem, 4, 64);
  Machine machine(program, mem);
  TraceSource trace(machine);
  DynInst d;
  const std::uint64_t* scratch = nullptr;
  while (trace.next(d)) {
    ASSERT_NE(d.gather_addrs, nullptr);
    if (scratch == nullptr) scratch = d.gather_addrs;
    ASSERT_EQ(d.gather_addrs, scratch) << "scratch storage moved mid-trace";
  }
}

/// Re-derives every DynInst field for the instruction at the machine's
/// current pc directly from the pre-instruction architectural state and
/// the isa:: classification predicates — the exact logic TraceSource used
/// before fields were predecoded — then steps the machine.
struct ReferenceRecord {
  isa::Instruction inst;
  std::uint64_t pc = 0;
  bool branch_taken = false;
  bool is_halt = false;
  std::uint64_t mem_addr = 0;
  std::uint32_t mem_bytes = 0;
  std::uint32_t vl = 0;
  std::uint8_t indirect_vreg = 0;
  std::vector<std::uint64_t> gather_addrs;
  std::int32_t marker_id = -1;
};

ReferenceRecord reference_next(Machine& machine) {
  using isa::Op;
  const ArchState& pre = machine.state();
  ReferenceRecord out;
  out.pc = pre.pc;
  out.inst = machine.program().at(pre.pc);
  out.vl = pre.vl;
  const isa::Instruction& in = out.inst;
  if (in.op == Op::kVluxei32) {
    const std::uint64_t base = pre.x[in.rs1];
    for (unsigned i = 0; i < pre.vl; ++i) out.gather_addrs.push_back(base + pre.v[in.rs2][i]);
    out.mem_bytes = pre.vl * 4;
  } else if (isa::is_scalar_load(in.op) || isa::is_scalar_store(in.op)) {
    out.mem_addr = pre.x[in.rs1] + static_cast<std::int64_t>(in.imm);
    out.mem_bytes = (in.op == Op::kLd || in.op == Op::kSd) ? 8 : 4;
  } else if (isa::is_vector_load(in.op) || isa::is_vector_store(in.op)) {
    out.mem_addr = pre.x[in.rs1];
    out.mem_bytes = pre.vl * 4;
  } else if (in.op == Op::kVindexmacVx || in.op == Op::kVfindexmacVx) {
    out.indirect_vreg = static_cast<std::uint8_t>(pre.x[in.rs1] & 0x1f);
  } else if (in.op == Op::kMarker) {
    out.marker_id = in.imm;
  }
  const StopReason stop = machine.step();
  out.branch_taken = (isa::is_branch(in.op) || isa::is_jump(in.op)) &&
                     machine.state().pc != out.pc + 4;
  out.is_halt = stop == StopReason::kEbreak || stop == StopReason::kEcall;
  return out;
}

TEST(TraceStream, BitIdenticalToReferenceOnMixedKernel) {
  // A hand-written kernel mixing every trace-relevant shape: scalar
  // loads/stores (4- and 8-byte), branches taken and not taken, vector
  // unit-stride loads/stores, a gather, vindexmac (indirect vreg), a
  // vector->scalar move, and a marker.
  const char* source = R"(
      lui   x1, 1          # x1 = 0x1000 (data)
      addi  x2, x0, 16
      vsetvli x0, x2, e32m1
      vle32.v v8, (x1)     # offsets for the gather
      addi  x3, x1, 256
      vluxei32.v v12, (x3), v8
      addi  x4, x0, 30     # v30 as indirect source
      vmv.v.i v30, 3
      vmv.v.i v2, 1
      vindexmac.vx v12, v2, x4
      vmv.x.s x5, v12
      sw    x5, 64(x1)
      sd    x5, 72(x1)
      ld    x6, 72(x1)
      lw    x7, 64(x1)
      marker 7
      addi  x8, x0, 3
  loop:
      addi  x8, x8, -1
      vadd.vi v4, v2, 2
      vse32.v v4, (x3)
      bne   x8, x0, loop
      beq   x8, x8, fallthru   # taken forward branch
      addi  x9, x0, 99
  fallthru:
      ebreak
  )";
  const AssembledText assembled = assemble_text(source);

  MainMemory mem_a;
  MainMemory mem_b;
  std::vector<std::int32_t> offsets(16);
  for (int i = 0; i < 16; ++i) offsets[i] = 4 * ((i * 7) % 16);
  mem_a.write_i32s(0x1000, offsets);
  mem_b.write_i32s(0x1000, offsets);

  Machine machine(assembled.program, mem_a);
  Machine reference_machine(assembled.program, mem_b);
  TraceSource trace(machine);

  DynInst d;
  std::uint64_t n = 0;
  bool saw_gather = false, saw_indexmac = false, saw_marker = false;
  while (trace.next(d)) {
    const ReferenceRecord want = reference_next(reference_machine);
    ASSERT_EQ(d.inst, want.inst) << "instruction " << n;
    ASSERT_EQ(d.pc, want.pc) << "instruction " << n;
    ASSERT_EQ(d.branch_taken, want.branch_taken) << "instruction " << n;
    ASSERT_EQ(d.is_halt, want.is_halt) << "instruction " << n;
    ASSERT_EQ(d.mem_addr, want.mem_addr) << "instruction " << n;
    ASSERT_EQ(d.mem_bytes, want.mem_bytes) << "instruction " << n;
    ASSERT_EQ(d.vl, want.vl) << "instruction " << n;
    ASSERT_EQ(d.indirect_vreg, want.indirect_vreg) << "instruction " << n;
    ASSERT_EQ(d.marker_id, want.marker_id) << "instruction " << n;
    ASSERT_EQ(d.gather_count, want.gather_addrs.size()) << "instruction " << n;
    for (std::uint32_t i = 0; i < d.gather_count; ++i)
      ASSERT_EQ(d.gather_addrs[i], want.gather_addrs[i]) << "instruction " << n << " lane " << i;
    ASSERT_NE(d.info, nullptr);
    saw_gather |= d.gather_count > 0;
    saw_indexmac |= d.info->has(isa::kSiIndirectVreg);
    saw_marker |= d.marker_id >= 0;
    ++n;
  }
  EXPECT_TRUE(saw_gather);
  EXPECT_TRUE(saw_indexmac);
  EXPECT_TRUE(saw_marker);
  EXPECT_TRUE(d.is_halt);  // last delivered instruction was the ebreak
  EXPECT_EQ(machine.instructions_retired(), reference_machine.instructions_retired());
}

}  // namespace
}  // namespace indexmac
