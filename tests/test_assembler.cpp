#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "asm/program.h"
#include "common/error.h"
#include "isa/isa.h"

namespace indexmac {
namespace {

using isa::Op;

TEST(Assembler, EmitsInstructionsInOrder) {
  Assembler a;
  a.addi(x(1), x(0), 5);
  a.add(x(2), x(1), x(1));
  a.ebreak();
  Program p = a.finish(0x1000);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.decoded()[0].op, Op::kAddi);
  EXPECT_EQ(p.decoded()[1].op, Op::kAdd);
  EXPECT_EQ(p.decoded()[2].op, Op::kEbreak);
  EXPECT_EQ(p.base(), 0x1000u);
}

TEST(Assembler, BackwardBranchOffset) {
  Assembler a;
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(x(1), x(1), -1);
  a.bne(x(1), x(0), loop);
  Program p = a.finish();
  EXPECT_EQ(p.decoded()[1].imm, -4);
}

TEST(Assembler, ForwardBranchOffset) {
  Assembler a;
  auto done = a.new_label();
  a.beq(x(1), x(0), done);
  a.nop();
  a.nop();
  a.bind(done);
  a.ebreak();
  Program p = a.finish();
  EXPECT_EQ(p.decoded()[0].imm, 12);
}

TEST(Assembler, JumpToLabel) {
  Assembler a;
  auto target = a.new_label();
  a.j(target);
  a.nop();
  a.bind(target);
  a.ebreak();
  Program p = a.finish();
  EXPECT_EQ(p.decoded()[0].op, Op::kJal);
  EXPECT_EQ(p.decoded()[0].imm, 8);
}

TEST(Assembler, UnboundLabelThrows) {
  Assembler a;
  auto label = a.new_label();
  a.j(label);
  EXPECT_THROW((void)a.finish(), SimError);
}

TEST(Assembler, DoubleBindThrows) {
  Assembler a;
  auto label = a.new_label();
  a.bind(label);
  EXPECT_THROW(a.bind(label), SimError);
}

TEST(Assembler, LiSmallUsesSingleAddi) {
  Assembler a;
  a.li(x(5), 42);
  Program p = a.finish();
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.decoded()[0].op, Op::kAddi);
  EXPECT_EQ(p.decoded()[0].imm, 42);
}

TEST(Assembler, LiLargeUsesLuiAddi) {
  Assembler a;
  a.li(x(5), 0x12345678);
  Program p = a.finish();
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.decoded()[0].op, Op::kLui);
  EXPECT_EQ(p.decoded()[1].op, Op::kAddi);
}

TEST(Assembler, LiRejectsValuesBeyond32Bits) {
  Assembler a;
  EXPECT_THROW(a.li(x(5), 0x1'0000'0000ll), SimError);
}

TEST(Assembler, RegisterConstructorsRangeCheck) {
  EXPECT_THROW((void)x(32), SimError);
  EXPECT_THROW((void)f(32), SimError);
  EXPECT_THROW((void)v(32), SimError);
  EXPECT_EQ(x(31).num, 31);
}

TEST(Assembler, CustomInstructionEncodes) {
  Assembler a;
  a.vindexmac_vx(v(1), v(4), x(7));
  a.vfindexmac_vx(v(2), v(5), x(8));
  Program p = a.finish();
  EXPECT_EQ(p.decoded()[0].op, Op::kVindexmacVx);
  EXPECT_EQ(p.decoded()[0].rd, 1);
  EXPECT_EQ(p.decoded()[0].rs2, 4);
  EXPECT_EQ(p.decoded()[0].rs1, 7);
  EXPECT_EQ(p.decoded()[1].op, Op::kVfindexmacVx);
}

TEST(Assembler, FinishTwiceThrows) {
  Assembler a;
  a.nop();
  (void)a.finish();
  EXPECT_THROW((void)a.finish(), SimError);
}

TEST(Program, AtChecksBounds) {
  Assembler a;
  a.nop();
  Program p = a.finish(0x1000);
  EXPECT_NO_THROW((void)p.at(0x1000));
  EXPECT_THROW((void)p.at(0x1004), SimError);
  EXPECT_THROW((void)p.at(0x0ffc), SimError);
  EXPECT_THROW((void)p.at(0x1001), SimError);
}

TEST(Program, ListingContainsDisassembly) {
  Assembler a;
  a.vindexmac_vx(v(3), v(6), x(9));
  Program p = a.finish(0x2000);
  const std::string listing = p.listing();
  EXPECT_NE(listing.find("vindexmac.vx v3, v6, x9"), std::string::npos);
  EXPECT_NE(listing.find("00002000"), std::string::npos);
}

}  // namespace
}  // namespace indexmac
