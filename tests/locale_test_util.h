// Test-only helper: temporarily switches LC_NUMERIC to a comma-decimal
// locale so suites can prove that report formatting/parsing is
// locale-independent. CI installs de_DE.UTF-8 for the tier-1 gcc job;
// development machines without any comma-decimal locale skip these tests
// (ScopedCommaLocale::active() returns false).
#pragma once

#include <clocale>
#include <cstdio>
#include <string>

namespace indexmac::testutil {

class ScopedCommaLocale {
 public:
  ScopedCommaLocale() {
    if (const char* current = std::setlocale(LC_NUMERIC, nullptr)) previous_ = current;
    for (const char* name :
         {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8", "fr_FR.utf8", "it_IT.UTF-8"}) {
      if (std::setlocale(LC_NUMERIC, name) == nullptr) continue;
      // Trust printf, not the locale name: the locale only matters for
      // these tests if the C library actually renders a ',' separator.
      char buf[16];
      std::snprintf(buf, sizeof buf, "%.1f", 1.5);
      if (std::string(buf) == "1,5") {
        active_ = true;
        break;
      }
    }
    if (!active_) std::setlocale(LC_NUMERIC, previous_.c_str());
  }

  ~ScopedCommaLocale() { std::setlocale(LC_NUMERIC, previous_.c_str()); }

  ScopedCommaLocale(const ScopedCommaLocale&) = delete;
  ScopedCommaLocale& operator=(const ScopedCommaLocale&) = delete;

  /// True when a comma-decimal locale is actually in effect.
  [[nodiscard]] bool active() const { return active_; }

 private:
  std::string previous_ = "C";
  bool active_ = false;
};

}  // namespace indexmac::testutil
