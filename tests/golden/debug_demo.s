# debug_demo.s — self-contained vindexmac micro-kernel for the GDB-stub
# end-to-end test (tests/test_gdb_e2e via tools/rsp_client.py).
#
# Memory starts zeroed under `imac_run gdb`, so the program first builds its
# own operands with scalar stores: four B rows at 0x8000 (pitch 64 bytes,
# B[row][j] = (row+1)*100 + j), the packed non-zero values [3, 5] of a
# 1:2-sparse A row at 0x8800, and their VRF indices [16, 18] at 0x8900.
# It then runs the Algorithm 2 inner loop — vmv.x.s index extract,
# vindexmac.vx MAC, vslide1down.vx — and stores C to 0x9000, where
# C[j] = 3*(100+j) + 5*(300+j) = 1800 + 8j.
#
# `marker 1` sits right before the loop: the e2e test breakpoints there
# (found via `monitor markers`), and the loop body is exactly the fused
# superblock shape, so a breakpoint inside it exercises the threaded
# engine's interpreter-stepping fallback.

    li   t0, 16
    vsetvli zero, t0, e32m1

    # ---- build B rows with scalar stores: B[row][j] = (row+1)*100 + j
    li   t1, 0x8000         # B base (row pointer)
    li   s0, 0              # row
b_rows:
    addi s3, s0, 1
    li   s2, 100
    mul  s4, s3, s2         # (row+1)*100
    li   s1, 0              # j
b_elems:
    add  s5, s4, s1         # element value
    slli s6, s1, 2
    add  s6, s6, t1
    sw   s5, 0(s6)
    addi s1, s1, 1
    li   s7, 16
    blt  s1, s7, b_elems
    addi t1, t1, 64
    addi s0, s0, 1
    li   s7, 4
    blt  s0, s7, b_rows

    # ---- packed A row 0: values [3, 5], VRF indices [16, 18]
    li   s8, 0x8800
    li   s9, 3
    sw   s9, 0(s8)
    li   s9, 5
    sw   s9, 4(s8)
    li   s8, 0x8900
    li   s9, 16
    sw   s9, 0(s8)
    li   s9, 18
    sw   s9, 4(s8)

    # ---- preload B rows into the VRF (v16..v19)
    li   t1, 0x8000
    vle32.v v16, (t1)
    addi t1, t1, 64
    vle32.v v17, (t1)
    addi t1, t1, 64
    vle32.v v18, (t1)
    addi t1, t1, 64
    vle32.v v19, (t1)

    li   t2, 0x8800
    vle32.v v4, (t2)        # values:  [3, 5, 0, ...]
    li   t3, 0x8900
    vle32.v v8, (t3)        # col_idx: [16, 18, 0, ...]

    vmv.v.i v0, 0           # C accumulator
    li   s11, 48879         # 0xbeef sentinel: known x-reg value at the marker

    marker 1                # e2e breakpoint target (monitor markers)
loop:                       # two non-zeros in this row
    vmv.x.s t4, v8          # index -> scalar register
    vindexmac.vx v0, v4, t4 # C += value * VRF[t4]
    vslide1down.vx v4, v4, zero
    vslide1down.vx v8, v8, zero
    addi t5, t5, 1
    li   t6, 2
    blt  t5, t6, loop

    li   a0, 0x9000
    vse32.v v0, (a0)        # store C row: C[j] = 1800 + 8j
    ebreak
