// Direct coverage of the timing-side Cache tag array: LRU victim
// selection, dirty-writeback victim address reconstruction,
// invalidate_all, and an equivalence check of the MRU-front-path /
// shift-mask implementation against a straightforward reference model
// over randomized access streams.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "mem/cache.h"

namespace indexmac {
namespace {

// A 2-set, 2-way, 64B-line cache: set = bit 6, tag = addr >> 7.
CacheConfig tiny_config() {
  return CacheConfig{.size_bytes = 256, .ways = 2, .line_bytes = 64, .hit_latency = 1};
}

std::uint64_t addr_of(std::uint64_t tag, std::uint64_t set) { return (tag * 2 + set) * 64; }

TEST(Cache, HitsAfterAllocation) {
  Cache cache(tiny_config());
  EXPECT_FALSE(cache.probe(addr_of(1, 0)));
  EXPECT_FALSE(cache.access(addr_of(1, 0), false).hit);
  EXPECT_TRUE(cache.probe(addr_of(1, 0)));
  EXPECT_TRUE(cache.access(addr_of(1, 0), false).hit);
  EXPECT_TRUE(cache.access(addr_of(1, 0) + 63, false).hit);  // same line
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, LruVictimSelection) {
  Cache cache(tiny_config());
  // Fill set 0 with tags 1 and 2, then re-touch 1 so 2 becomes LRU.
  cache.access(addr_of(1, 0), false);
  cache.access(addr_of(2, 0), false);
  cache.access(addr_of(1, 0), false);
  // Allocating tag 3 must evict tag 2 and keep 1.
  EXPECT_FALSE(cache.access(addr_of(3, 0), false).hit);
  EXPECT_TRUE(cache.probe(addr_of(1, 0)));
  EXPECT_FALSE(cache.probe(addr_of(2, 0)));
  EXPECT_TRUE(cache.probe(addr_of(3, 0)));
  // Set 1 is untouched by all of the above.
  EXPECT_FALSE(cache.probe(addr_of(1, 1)));
}

TEST(Cache, DirtyVictimWritebackAddress) {
  Cache cache(tiny_config());
  const std::uint64_t dirty_addr = addr_of(5, 1) + 12;  // mid-line store
  cache.access(dirty_addr, /*is_store=*/true);
  cache.access(addr_of(6, 1), false);
  // Touch the clean line so the dirty one is LRU, then evict it.
  cache.access(addr_of(6, 1), false);
  const CacheLineResult r = cache.access(addr_of(7, 1), false);
  EXPECT_FALSE(r.hit);
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_addr, addr_of(5, 1));  // line-aligned reconstruction
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanVictimHasNoWriteback) {
  Cache cache(tiny_config());
  cache.access(addr_of(1, 0), false);
  cache.access(addr_of(2, 0), false);
  const CacheLineResult r = cache.access(addr_of(3, 0), false);
  EXPECT_FALSE(r.hit);
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, InvalidateAllDropsEverything) {
  Cache cache(tiny_config());
  cache.access(addr_of(1, 0), true);
  cache.access(addr_of(2, 1), false);
  cache.invalidate_all();
  EXPECT_FALSE(cache.probe(addr_of(1, 0)));
  EXPECT_FALSE(cache.probe(addr_of(2, 1)));
  // Re-allocating the previously dirty line must not write it back
  // (invalidate_all drops dirty state; functional data lives elsewhere).
  cache.access(addr_of(3, 0), false);
  const CacheLineResult r = cache.access(addr_of(4, 0), false);
  EXPECT_FALSE(r.writeback);
  // Stats survive invalidation (only reset_stats clears them).
  EXPECT_GT(cache.stats().misses, 0u);
}

// ---- randomized equivalence against a reference model ----

/// Straightforward true-LRU set-associative model: no MRU shortcut, no
/// shift/mask tricks, victim = first invalid way else smallest stamp.
class ReferenceCache {
 public:
  explicit ReferenceCache(const CacheConfig& config)
      : config_(config),
        num_sets_(config.size_bytes / config.ways / config.line_bytes),
        sets_(num_sets_) {}

  CacheLineResult access(std::uint64_t addr, bool is_store) {
    auto& set = sets_[(addr / config_.line_bytes) % num_sets_];
    const std::uint64_t tag = addr / config_.line_bytes / num_sets_;
    ++stamp_;
    for (Way& w : set.ways) {
      if (w.valid && w.tag == tag) {
        w.stamp = stamp_;
        w.dirty = w.dirty || is_store;
        return CacheLineResult{.hit = true};
      }
    }
    if (set.ways.size() < config_.ways) {
      set.ways.push_back(Way{tag, stamp_, is_store, true});
      return CacheLineResult{};
    }
    Way* victim = &set.ways.front();
    for (Way& w : set.ways)
      if (w.stamp < victim->stamp) victim = &w;
    CacheLineResult r{};
    if (victim->dirty) {
      r.writeback = true;
      r.victim_addr =
          (victim->tag * num_sets_ + (addr / config_.line_bytes) % num_sets_) *
          config_.line_bytes;
    }
    *victim = Way{tag, stamp_, is_store, true};
    return r;
  }

  [[nodiscard]] bool probe(std::uint64_t addr) const {
    const auto& set = sets_[(addr / config_.line_bytes) % num_sets_];
    const std::uint64_t tag = addr / config_.line_bytes / num_sets_;
    for (const Way& w : set.ways)
      if (w.valid && w.tag == tag) return true;
    return false;
  }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t stamp = 0;
    bool dirty = false;
    bool valid = false;
  };
  struct Set {
    std::vector<Way> ways;
  };

  CacheConfig config_;
  std::uint64_t num_sets_;
  std::vector<Set> sets_;
  std::uint64_t stamp_ = 0;
};

class CacheEquivalence : public ::testing::TestWithParam<CacheConfig> {};

TEST_P(CacheEquivalence, MatchesReferenceOnRandomStream) {
  const CacheConfig config = GetParam();
  Cache cache(config);
  ReferenceCache reference(config);
  std::mt19937 rng(12345);
  // Working set a few times the cache size, with a bias toward re-touching
  // recent addresses so the MRU fast path is exercised both ways.
  const std::uint64_t span = 4 * config.size_bytes;
  std::uniform_int_distribution<std::uint64_t> pick_addr(0, span - 1);
  std::uniform_int_distribution<int> pick_kind(0, 9);
  std::uint64_t last_addr = 0;
  for (int i = 0; i < 20000; ++i) {
    const int kind = pick_kind(rng);
    std::uint64_t addr = kind < 4 ? last_addr + (kind == 0 ? 0 : 4 * kind) : pick_addr(rng);
    last_addr = addr;
    const bool is_store = kind % 3 == 0;
    const CacheLineResult got = cache.access(addr, is_store);
    const CacheLineResult want = reference.access(addr, is_store);
    ASSERT_EQ(got.hit, want.hit) << "access " << i << " addr " << addr;
    ASSERT_EQ(got.writeback, want.writeback) << "access " << i << " addr " << addr;
    if (want.writeback)
      ASSERT_EQ(got.victim_addr, want.victim_addr) << "access " << i << " addr " << addr;
    if (i % 97 == 0) {
      const std::uint64_t probe_addr = pick_addr(rng);
      ASSERT_EQ(cache.probe(probe_addr), reference.probe(probe_addr)) << "probe at " << i;
    }
  }
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 20000u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheEquivalence,
    ::testing::Values(
        CacheConfig{.size_bytes = 256, .ways = 2, .line_bytes = 64, .hit_latency = 1},
        CacheConfig{.size_bytes = 1024, .ways = 1, .line_bytes = 32, .hit_latency = 1},
        CacheConfig{.size_bytes = 4096, .ways = 4, .line_bytes = 64, .hit_latency = 2},
        CacheConfig{.size_bytes = 8192, .ways = 8, .line_bytes = 64, .hit_latency = 8}),
    [](const auto& info) {
      return "s" + std::to_string(info.param.size_bytes) + "w" +
             std::to_string(info.param.ways) + "l" + std::to_string(info.param.line_bytes);
    });

}  // namespace
}  // namespace indexmac
