// Gather/reduction vector-ISA extensions and the structured-sparse SpMV
// kernel built on them.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "asm/text_assembler.h"
#include "fsim/machine.h"
#include "isa/encoding.h"
#include "kernels/spmv_kernel.h"
#include "timing/timing_sim.h"

namespace indexmac {
namespace {

using isa::Instruction;
using isa::Op;

// ---------- encodings ----------

TEST(GatherOps, EncodeDecodeRoundTrips) {
  for (const Op op : {Op::kVaddVV, Op::kVfaddVV, Op::kVmulVV, Op::kVfmulVV, Op::kVredsumVS,
                      Op::kVfredusumVS}) {
    const Instruction inst{op, 1, 2, 3, 0};
    std::string err;
    EXPECT_EQ(isa::decode(isa::encode(inst), &err), inst) << isa::mnemonic(op) << err;
  }
  const Instruction gather{Op::kVluxei32, 4, 5, 6, 0};
  EXPECT_EQ(isa::decode(isa::encode(gather)), gather);
}

TEST(GatherOps, DisassemblyAndTextAssemblyAgree) {
  const auto out = assemble_text(R"(
    vadd.vv v1, v2, v3
    vfmul.vv v4, v5, v6
    vfredusum.vs v7, v8, v9
    vluxei32.v v10, (a0), v11
  )");
  EXPECT_EQ(out.program.decoded()[0].op, Op::kVaddVV);
  EXPECT_EQ(out.program.decoded()[1].op, Op::kVfmulVV);
  EXPECT_EQ(out.program.decoded()[2].op, Op::kVfredusumVS);
  EXPECT_EQ(out.program.decoded()[3].op, Op::kVluxei32);
  EXPECT_EQ(isa::disassemble(out.program.decoded()[3]), "vluxei32.v v10, (x10), v11");
  // Round trip through disassembly.
  std::string text;
  for (const auto& inst : out.program.decoded()) text += isa::disassemble(inst) + "\n";
  EXPECT_EQ(assemble_text(text).program.words(), out.program.words());
}

TEST(GatherOps, IndexedStoreRejected) {
  // Flip the unit-stride store's mop field to 01: must not decode.
  Assembler a;
  a.vse32(v(1), x(2));
  const std::uint32_t word = a.finish().words()[0] | (0b01u << 26);
  std::string err;
  EXPECT_EQ(isa::decode(word, &err).op, Op::kIllegal);
}

// ---------- functional semantics ----------

struct SimRun {
  MainMemory mem;
  std::unique_ptr<Machine> machine;
  Program program;
  explicit SimRun(Assembler& a) : program(a.finish()) {
    machine = std::make_unique<Machine>(program, mem);
  }
};

TEST(GatherOps, VluxeiGathersByByteOffset) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);  // offsets
  a.vle32(v(8), x(2));
  a.li(x(3), 0x2000);  // x base
  a.vluxei32(v(12), x(3), v(8));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> offsets(16), data(64);
  for (int i = 0; i < 16; ++i) offsets[i] = ((15 - i) * 4);  // reversed gather
  for (int i = 0; i < 64; ++i) data[i] = 1000 + i;
  r.mem.write_i32s(0x1000, offsets);
  r.mem.write_i32s(0x2000, data);
  r.machine->run();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.machine->state().v[12][i], 1000u + 15 - i);
}

TEST(GatherOps, VluxeiAliasedIndexRegisterIsSafe) {
  // vd == vs2: indices must be snapshotted before writes.
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(8), x(2));
  a.li(x(3), 0x2000);
  a.vluxei32(v(8), x(3), v(8));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> offsets(16), data(64);
  for (int i = 0; i < 16; ++i) offsets[i] = 4 * i;
  for (int i = 0; i < 64; ++i) data[i] = 7 * i;
  r.mem.write_i32s(0x1000, offsets);
  r.mem.write_i32s(0x2000, data);
  r.machine->run();
  for (unsigned i = 0; i < 16; ++i) EXPECT_EQ(r.machine->state().v[8][i], 7u * i);
}

TEST(GatherOps, VectorVectorArithmetic) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(1), x(2));
  a.li(x(3), 0x2000);
  a.vle32(v(2), x(3));
  a.vadd_vv(v(3), v(1), v(2));
  a.vmul_vv(v(4), v(1), v(2));
  a.ebreak();
  SimRun r(a);
  std::vector<std::int32_t> p(16), q(16);
  for (int i = 0; i < 16; ++i) {
    p[i] = i + 1;
    q[i] = 2 * i - 3;
  }
  r.mem.write_i32s(0x1000, p);
  r.mem.write_i32s(0x2000, q);
  r.machine->run();
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(static_cast<std::int32_t>(r.machine->state().v[3][i]), p[i] + q[i]);
    EXPECT_EQ(static_cast<std::int32_t>(r.machine->state().v[4][i]), p[i] * q[i]);
  }
}

TEST(GatherOps, FloatAddMulAndReduction) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(1), x(2));
  a.vfadd_vv(v(2), v(1), v(1));   // 2x
  a.vfmul_vv(v(3), v(1), v(1));   // x^2
  a.vmv_v_i(v(9), 0);
  a.vfredusum_vs(v(5), v(1), v(9));
  a.ebreak();
  SimRun r(a);
  std::vector<float> xs(16);
  float sum = 0;
  for (int i = 0; i < 16; ++i) {
    xs[i] = 0.5f * static_cast<float>(i) - 2.0f;
    sum += xs[i];
  }
  r.mem.write_f32s(0x1000, xs);
  r.machine->run();
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_FLOAT_EQ(r.machine->state().velem_f32(2, i), 2.0f * xs[i]);
    EXPECT_FLOAT_EQ(r.machine->state().velem_f32(3, i), xs[i] * xs[i]);
  }
  EXPECT_NEAR(r.machine->state().velem_f32(5, 0), sum, 1e-4);
}

TEST(GatherOps, IntReductionWithSeed) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.vmv_v_i(v(1), 3);    // sixteen threes
  a.li(x(2), 100);
  a.vmv_s_x(v(9), x(2));  // seed 100
  a.vredsum_vs(v(5), v(1), v(9));
  a.vmv_x_s(x(3), v(5));
  a.ebreak();
  SimRun r(a);
  r.machine->run();
  EXPECT_EQ(r.machine->state().x[3], 100u + 16 * 3);
}

TEST(GatherOps, ReductionRespectsVl) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.vmv_v_i(v(1), 1);
  a.li(x(2), 5);
  a.vsetvli_e32m1(x(0), x(2));  // only 5 elements participate
  a.vmv_v_i(v(9), 0);
  a.vredsum_vs(v(5), v(1), v(9));
  a.vmv_x_s(x(3), v(5));
  a.ebreak();
  SimRun r(a);
  r.machine->run();
  EXPECT_EQ(r.machine->state().x[3], 5u);
}

// ---------- gather timing ----------

TEST(GatherTiming, GatherCountsOneAccessPerElement) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x1000);
  a.vle32(v(8), x(2));
  a.li(x(3), 0x2000);
  a.vluxei32(v(12), x(3), v(8));
  a.ebreak();
  MainMemory mem;
  std::vector<std::int32_t> offsets(16);
  for (int i = 0; i < 16; ++i) offsets[i] = 256 * i;  // scattered lines
  mem.write_i32s(0x1000, offsets);
  Program p = a.finish();
  timing::TimingSim sim(p, mem, timing::ProcessorConfig{});
  const auto& stats = sim.run();
  // 1 unit-stride load + 16 gathered element accesses.
  EXPECT_EQ(stats.mem.vector_reads, 1u + 16u);
}

// ---------- SpMV kernel ----------

class SpmvKernel
    : public ::testing::TestWithParam<std::tuple<sparse::Sparsity, int /*rows*/, int /*k*/>> {};

TEST_P(SpmvKernel, MatchesReference) {
  const auto [sp, rows, k] = GetParam();
  const auto dense = sparse::random_matrix<float>(static_cast<std::size_t>(rows),
                                                  static_cast<std::size_t>(k), 7, -1.0f, 1.0f);
  const auto a = sparse::NmMatrix<float>::prune_from_dense(dense, sp);
  const auto xvec = sparse::random_matrix<float>(static_cast<std::size_t>(k), 1, 8, -1.0f, 1.0f);

  const auto packed = kernels::pack_spmv(a);
  AddressAllocator alloc;
  const auto layout = kernels::make_spmv_layout(a.rows(), static_cast<std::size_t>(k),
                                                packed.slots_padded, alloc);
  MainMemory mem;
  mem.write_f32s(layout.a_values, packed.values);
  mem.write_i32s(layout.a_offsets, packed.offsets);
  std::vector<float> x_image(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) x_image[static_cast<std::size_t>(i)] = xvec.at(i, 0);
  mem.write_f32s(layout.x_base, x_image);

  const Program program = emit_spmv_kernel(layout, kernels::ElemType::kF32);
  Machine machine(program, mem);
  ASSERT_EQ(machine.run(20'000'000), StopReason::kEbreak);

  const auto y = mem.read_f32s(layout.y_base, a.rows());
  const auto ref = sparse::matmul_reference(a.to_dense(), xvec);
  for (std::size_t r = 0; r < a.rows(); ++r)
    ASSERT_NEAR(y[r], ref.at(r, 0), 2e-3) << "row " << r;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SpmvKernel,
    ::testing::Values(std::make_tuple(sparse::kSparsity14, 8, 64),
                      std::make_tuple(sparse::kSparsity24, 8, 64),
                      std::make_tuple(sparse::kSparsity24, 17, 100),  // ragged
                      std::make_tuple(sparse::Sparsity{1, 2}, 5, 32),
                      std::make_tuple(sparse::Sparsity{2, 8}, 3, 128)),
    [](const auto& info) {
      return std::to_string(std::get<0>(info.param).n) + "of" +
             std::to_string(std::get<0>(info.param).m) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(SpmvKernel, IntegerVariantMatchesReference) {
  const auto dense = sparse::random_matrix<std::int32_t>(6, 48, 9, -5, 5);
  const auto a = sparse::NmMatrix<std::int32_t>::prune_from_dense(dense, sparse::kSparsity24);
  const auto xvec = sparse::random_matrix<std::int32_t>(48, 1, 10, -5, 5);

  const auto packed = kernels::pack_spmv(a);
  AddressAllocator alloc;
  const auto layout = kernels::make_spmv_layout(6, 48, packed.slots_padded, alloc);
  MainMemory mem;
  mem.write_i32s(layout.a_values, packed.values);
  mem.write_i32s(layout.a_offsets, packed.offsets);
  std::vector<std::int32_t> x_image(48);
  for (int i = 0; i < 48; ++i) x_image[static_cast<std::size_t>(i)] = xvec.at(i, 0);
  mem.write_i32s(layout.x_base, x_image);

  const Program program = emit_spmv_kernel(layout, kernels::ElemType::kI32);
  Machine machine(program, mem);
  ASSERT_EQ(machine.run(10'000'000), StopReason::kEbreak);
  const auto y = mem.read_i32s(layout.y_base, 6);
  const auto ref = sparse::matmul_reference(a.to_dense(), xvec);
  for (std::size_t r = 0; r < 6; ++r) EXPECT_EQ(y[r], ref.at(r, 0)) << r;
}

}  // namespace
}  // namespace indexmac
