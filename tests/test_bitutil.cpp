#include "common/bitutil.h"

#include <gtest/gtest.h>

namespace indexmac {
namespace {

TEST(BitUtil, BitsExtractsInclusiveRange) {
  EXPECT_EQ(bits(0xDEADBEEF, 31, 28), 0xDu);
  EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
  EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
  EXPECT_EQ(bits(0b1010, 3, 1), 0b101u);
}

TEST(BitUtil, BitExtractsSingle) {
  EXPECT_EQ(bit(0b100, 2), 1u);
  EXPECT_EQ(bit(0b100, 1), 0u);
}

TEST(BitUtil, SignExtendPositive) { EXPECT_EQ(sign_extend(0x7ff, 12), 0x7ff); }
TEST(BitUtil, SignExtendNegative) { EXPECT_EQ(sign_extend(0xfff, 12), -1); }
TEST(BitUtil, SignExtendMinValue) { EXPECT_EQ(sign_extend(0x800, 12), -2048); }
TEST(BitUtil, SignExtendFullWidthIsIdentity) {
  EXPECT_EQ(sign_extend(0xffffffffffffffffull, 64), -1);
}

TEST(BitUtil, FitsSignedBounds) {
  EXPECT_TRUE(fits_signed(2047, 12));
  EXPECT_TRUE(fits_signed(-2048, 12));
  EXPECT_FALSE(fits_signed(2048, 12));
  EXPECT_FALSE(fits_signed(-2049, 12));
}

TEST(BitUtil, FitsUnsignedBounds) {
  EXPECT_TRUE(fits_unsigned(31, 5));
  EXPECT_FALSE(fits_unsigned(32, 5));
  EXPECT_TRUE(fits_unsigned(~0ull, 64));
}

TEST(BitUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(48));
}

TEST(BitUtil, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(64), 6u);
}

TEST(BitUtil, RoundUpAndCeilDiv) {
  EXPECT_EQ(round_up(0, 16), 0u);
  EXPECT_EQ(round_up(1, 16), 16u);
  EXPECT_EQ(round_up(16, 16), 16u);
  EXPECT_EQ(ceil_div(17, 16), 2u);
  EXPECT_EQ(ceil_div(16, 16), 1u);
}

TEST(BitUtil, Crc32MatchesKnownVectors) {
  // Reference values of the zlib/PNG CRC-32 (reflected 0xEDB88320).
  EXPECT_EQ(crc32(nullptr, 0), 0x00000000u);
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);  // the classic check value
  EXPECT_EQ(crc32("a", 1), 0xE8B7BE43u);
  // Seedable incremental computation equals the one-shot digest.
  const std::uint32_t part = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, part), crc32("123456789", 9));
  // Single-bit corruption is detected.
  EXPECT_NE(crc32("123456789", 9), crc32("123456788", 9));
}

}  // namespace
}  // namespace indexmac
