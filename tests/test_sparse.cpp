#include <gtest/gtest.h>

#include "sparse/dense_matrix.h"
#include "sparse/nm_matrix.h"
#include "sparse/packing.h"

namespace indexmac::sparse {
namespace {

// ---------- DenseMatrix ----------

TEST(DenseMatrix, BasicAccess) {
  DenseMatrix<float> m(2, 3, 1.5f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m.at(1, 2), 1.5f);
  m.at(0, 0) = -2.0f;
  EXPECT_FLOAT_EQ(m.row(0)[0], -2.0f);
  EXPECT_THROW((void)m.at(2, 0), SimError);
  EXPECT_THROW((void)m.at(0, 3), SimError);
}

TEST(DenseMatrix, RandomIsDeterministic) {
  const auto a = random_matrix<float>(4, 4, 42, -1.0f, 1.0f);
  const auto b = random_matrix<float>(4, 4, 42, -1.0f, 1.0f);
  const auto c = random_matrix<float>(4, 4, 43, -1.0f, 1.0f);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DenseMatrix, ReferenceMatmulSmallKnownResult) {
  DenseMatrix<std::int32_t> a(2, 2);
  a.at(0, 0) = 1; a.at(0, 1) = 2;
  a.at(1, 0) = 3; a.at(1, 1) = 4;
  DenseMatrix<std::int32_t> b(2, 2);
  b.at(0, 0) = 5; b.at(0, 1) = 6;
  b.at(1, 0) = 7; b.at(1, 1) = 8;
  const auto c = matmul_reference(a, b);
  EXPECT_EQ(c.at(0, 0), 19);
  EXPECT_EQ(c.at(0, 1), 22);
  EXPECT_EQ(c.at(1, 0), 43);
  EXPECT_EQ(c.at(1, 1), 50);
}

TEST(DenseMatrix, MatmulDimensionMismatchThrows) {
  DenseMatrix<float> a(2, 3), b(4, 2);
  EXPECT_THROW((void)matmul_reference(a, b), SimError);
}

// ---------- N:M validation ----------

TEST(NmValidation, AcceptsCompliantMatrix) {
  DenseMatrix<float> m(1, 8);
  m.at(0, 1) = 1.0f;  // block 0: one non-zero
  m.at(0, 4) = 2.0f;
  m.at(0, 7) = 3.0f;  // block 1: two non-zeros
  EXPECT_TRUE(is_valid_nm(m, kSparsity24));
  EXPECT_FALSE(is_valid_nm(m, kSparsity14));  // block 1 has 2 > 1
}

TEST(NmValidation, RejectsMisalignedColumns) {
  DenseMatrix<float> m(1, 6);
  EXPECT_FALSE(is_valid_nm(m, kSparsity24));
}

// ---------- NmMatrix ----------

TEST(NmMatrix, FromDenseRoundTrips) {
  DenseMatrix<float> m(3, 8);
  m.at(0, 1) = 1.0f;
  m.at(1, 4) = 2.0f;
  m.at(1, 6) = -3.0f;
  m.at(2, 0) = 4.0f;
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity24);
  EXPECT_EQ(nm.to_dense(), m);
  EXPECT_EQ(nm.nnz(), 4u);
  EXPECT_EQ(nm.blocks_per_row(), 2u);
  EXPECT_EQ(nm.slots_per_row(), 4u);
}

TEST(NmMatrix, FromDenseRejectsViolation) {
  DenseMatrix<float> m(1, 4);
  m.at(0, 0) = m.at(0, 1) = m.at(0, 2) = 1.0f;  // 3 nnz in one 4-block
  EXPECT_THROW((void)NmMatrix<float>::from_dense(m, kSparsity24), SimError);
  EXPECT_NO_THROW((void)NmMatrix<float>::from_dense(m, Sparsity{3, 4}));
}

TEST(NmMatrix, PadsColumnsToMultipleOfM) {
  DenseMatrix<float> m(1, 6);
  m.at(0, 5) = 9.0f;
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity24);
  EXPECT_EQ(nm.cols(), 6u);
  EXPECT_EQ(nm.padded_cols(), 8u);
  EXPECT_EQ(nm.to_dense(), m);
}

TEST(NmMatrix, PruneKeepsLargestMagnitudes) {
  DenseMatrix<float> m(1, 4);
  m.at(0, 0) = 0.1f;
  m.at(0, 1) = -5.0f;
  m.at(0, 2) = 3.0f;
  m.at(0, 3) = 0.2f;
  const auto nm = NmMatrix<float>::prune_from_dense(m, kSparsity24);
  const auto d = nm.to_dense();
  EXPECT_FLOAT_EQ(d.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(d.at(0, 1), -5.0f);
  EXPECT_FLOAT_EQ(d.at(0, 2), 3.0f);
  EXPECT_FLOAT_EQ(d.at(0, 3), 0.0f);
}

TEST(NmMatrix, PruneProducesValidNm) {
  const auto dense = random_matrix<float>(16, 64, 7, -1.0f, 1.0f);
  for (const Sparsity sp : {kSparsity14, kSparsity24, Sparsity{1, 2}, Sparsity{2, 8}}) {
    const auto nm = NmMatrix<float>::prune_from_dense(dense, sp);
    EXPECT_TRUE(is_valid_nm(nm.to_dense(), sp)) << sp.n << ":" << sp.m;
    EXPECT_LE(nm.nnz(), dense.rows() * (dense.cols() / sp.m) * sp.n);
  }
}

TEST(NmMatrix, PruneOfSparserInputKeepsEverything) {
  DenseMatrix<float> m(1, 8);
  m.at(0, 2) = 1.0f;
  m.at(0, 5) = 2.0f;
  const auto nm = NmMatrix<float>::prune_from_dense(m, kSparsity24);
  EXPECT_EQ(nm.to_dense(), m);
}

TEST(NmMatrix, IndicesAreLocalToBlock) {
  DenseMatrix<float> m(1, 8);
  m.at(0, 6) = 1.0f;  // block 1, local index 2
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity24);
  EXPECT_EQ(nm.index_at(0, 1, 0), 2);
  EXPECT_FLOAT_EQ(nm.value_at(0, 1, 0), 1.0f);
  // Padding slot uses index m-1 with zero value.
  EXPECT_EQ(nm.index_at(0, 1, 1), 3);
  EXPECT_FLOAT_EQ(nm.value_at(0, 1, 1), 0.0f);
}

TEST(NmMatrix, SparsityInvariantChecked) {
  DenseMatrix<float> m(1, 4);
  EXPECT_THROW((void)NmMatrix<float>::from_dense(m, Sparsity{0, 4}), SimError);
  EXPECT_THROW((void)NmMatrix<float>::from_dense(m, Sparsity{5, 4}), SimError);
}

TEST(NmMatrix, SpmmReferenceMatchesDenseGemm) {
  const auto dense_a = random_matrix<float>(8, 32, 11, -1.0f, 1.0f);
  const auto b = random_matrix<float>(32, 12, 13, -1.0f, 1.0f);
  const auto nm = NmMatrix<float>::prune_from_dense(dense_a, kSparsity24);
  const auto via_sparse = spmm_reference(nm, b);
  const auto via_dense = matmul_reference(nm.to_dense(), b);
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 12; ++j)
      EXPECT_FLOAT_EQ(via_sparse.at(i, j), via_dense.at(i, j));
}

// ---------- Packing ----------

TEST(Packing, VrfIndexModeProducesRegisterNumbers) {
  DenseMatrix<float> m(1, 16);
  m.at(0, 2) = 1.0f;    // ktile 0, block 0, local 2 -> vreg 16+2
  m.at(0, 13) = 2.0f;   // ktile 0, block 3, local 1 -> vreg 16+13
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity14);
  const auto packed = pack_a(nm, PackConfig{.tile_rows = 16, .mode = IndexMode::kVrfIndex});
  EXPECT_EQ(packed.num_ktiles, 1u);
  EXPECT_EQ(packed.slots_per_tile, 4u);
  EXPECT_EQ(packed.indices[0], 16 + 2);
  EXPECT_EQ(packed.indices[3], 16 + 13);
  EXPECT_FLOAT_EQ(packed.values[0], 1.0f);
  EXPECT_FLOAT_EQ(packed.values[3], 2.0f);
}

TEST(Packing, ByteOffsetModeProducesGlobalOffsets) {
  DenseMatrix<float> m(1, 32);
  m.at(0, 18) = 5.0f;  // ktile 1 (rows 16..31), row-in-tile 2, global row 18
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity14);
  const auto packed = pack_a(
      nm, PackConfig{.tile_rows = 16, .mode = IndexMode::kByteOffset, .b_pitch_bytes = 256});
  EXPECT_EQ(packed.num_ktiles, 2u);
  const std::size_t base = packed.slot_offset(1, 0);
  EXPECT_EQ(packed.indices[base + 0], 18 * 256);
  EXPECT_FLOAT_EQ(packed.values[base + 0], 5.0f);
}

TEST(Packing, PadsKtilesToTileRows) {
  DenseMatrix<float> m(2, 20);  // 20 cols -> padded to 32 with L=16
  m.at(0, 19) = 1.0f;
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity24);
  const auto packed = pack_a(nm, PackConfig{.tile_rows = 16, .mode = IndexMode::kVrfIndex});
  EXPECT_EQ(packed.k_padded, 32u);
  EXPECT_EQ(packed.num_ktiles, 2u);
  // All padding slots must carry zero values and in-range vreg indices.
  for (std::size_t i = 0; i < packed.indices.size(); ++i) {
    EXPECT_GE(packed.indices[i], 16);
    EXPECT_LT(packed.indices[i], 32);
  }
}

TEST(Packing, TileRowsMustBeMultipleOfM) {
  DenseMatrix<float> m(1, 8);
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity24);
  EXPECT_THROW((void)pack_a(nm, PackConfig{.tile_rows = 6}), SimError);
}

TEST(Packing, ByteOffsetRequiresPitch) {
  DenseMatrix<float> m(1, 8);
  const auto nm = NmMatrix<float>::from_dense(m, kSparsity24);
  EXPECT_THROW(
      (void)pack_a(nm, PackConfig{.tile_rows = 8, .mode = IndexMode::kByteOffset}),
      SimError);
}

TEST(Packing, PaddedRowImageLayout) {
  DenseMatrix<float> m(2, 3);
  m.at(0, 0) = 1.0f;
  m.at(1, 2) = 2.0f;
  const auto image = to_padded_rows(m, 16, 4);
  EXPECT_EQ(image.size(), 64u);
  EXPECT_FLOAT_EQ(image[0], 1.0f);
  EXPECT_FLOAT_EQ(image[16 + 2], 2.0f);
  EXPECT_FLOAT_EQ(image[32], 0.0f);  // padded row
  EXPECT_THROW((void)to_padded_rows(m, 2, 4), SimError);
  EXPECT_THROW((void)to_padded_rows(m, 16, 1), SimError);
}

/// Property: for random matrices and all sparsities, applying the packed
/// operands (as the kernels would) reproduces the reference SpMM exactly.
class PackedSpmmProperty
    : public ::testing::TestWithParam<std::tuple<Sparsity, int /*rows*/, int /*k*/, int /*bcols*/>> {};

TEST_P(PackedSpmmProperty, PackedStreamsReproduceReference) {
  const auto [sp, rows, k, bcols] = GetParam();
  const auto dense_a =
      random_matrix<float>(static_cast<std::size_t>(rows), static_cast<std::size_t>(k),
                           777u + sp.n * 13 + sp.m, -2.0f, 2.0f);
  const auto nm = NmMatrix<float>::prune_from_dense(dense_a, sp);
  const auto b = random_matrix<float>(static_cast<std::size_t>(k), static_cast<std::size_t>(bcols),
                                      999u, -1.0f, 1.0f);
  const auto reference = spmm_reference(nm, b);

  const unsigned l = 16;
  const std::size_t k_padded = round_up(round_up(k, sp.m), l);
  const std::size_t pitch = 16;  // elements
  const auto b_image = to_padded_rows(b, pitch, k_padded);

  // VRF mode.
  const auto packed_v = pack_a(nm, PackConfig{.tile_rows = l, .mode = IndexMode::kVrfIndex});
  const auto c_v = packed_spmm_reference(packed_v, b_image, pitch, b.cols());
  // Byte-offset mode.
  const auto packed_b = pack_a(nm, PackConfig{.tile_rows = l,
                                              .mode = IndexMode::kByteOffset,
                                              .b_pitch_bytes = pitch * 4});
  const auto c_b = packed_spmm_reference(packed_b, b_image, pitch, b.cols());

  for (std::size_t i = 0; i < reference.rows(); ++i)
    for (std::size_t j = 0; j < reference.cols(); ++j) {
      EXPECT_NEAR(c_v.at(i, j), reference.at(i, j), 1e-3) << i << "," << j;
      EXPECT_NEAR(c_b.at(i, j), reference.at(i, j), 1e-3) << i << "," << j;
    }
}

INSTANTIATE_TEST_SUITE_P(
    SparsitiesAndShapes, PackedSpmmProperty,
    ::testing::Values(std::make_tuple(kSparsity14, 4, 16, 8),
                      std::make_tuple(kSparsity24, 4, 16, 8),
                      std::make_tuple(kSparsity14, 7, 35, 5),   // ragged shapes
                      std::make_tuple(kSparsity24, 7, 35, 5),
                      std::make_tuple(Sparsity{1, 2}, 3, 24, 10),
                      std::make_tuple(Sparsity{2, 8}, 5, 40, 12),
                      std::make_tuple(kSparsity24, 1, 64, 16),
                      std::make_tuple(kSparsity14, 16, 16, 1)));

}  // namespace
}  // namespace indexmac::sparse
