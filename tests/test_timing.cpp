// Behavioural tests of the cycle-level timing model: pipeline widths,
// dependency latencies, structural hazards, the decoupled vector engine,
// and the vector->scalar round trip that the vindexmac optimization targets.
#include <gtest/gtest.h>

#include "asm/assembler.h"
#include "common/error.h"
#include "timing/port_scheduler.h"
#include "timing/timing_sim.h"

namespace indexmac::timing {
namespace {

struct Timed {
  MainMemory mem;
  Program program;
  TimingStats stats;
  std::vector<MarkerEvent> markers;

  explicit Timed(Assembler& a, const ProcessorConfig& config = ProcessorConfig{})
      : program(a.finish()) {
    TimingSim sim(program, mem, config);
    stats = sim.run();
    markers = sim.markers();
  }
};

// ---------- PortScheduler / SlotPool ----------

TEST(PortScheduler, WidthLimitsPerCycle) {
  PortScheduler ports(2);
  EXPECT_EQ(ports.claim(10), 10u);
  EXPECT_EQ(ports.claim(10), 10u);
  EXPECT_EQ(ports.claim(10), 11u);  // third request spills to the next cycle
  EXPECT_EQ(ports.claim(5), 5u);    // earlier cycles still have room
}

TEST(PortScheduler, WindowSlidesForward) {
  PortScheduler ports(1, 64);
  EXPECT_EQ(ports.claim(0), 0u);
  EXPECT_EQ(ports.claim(1'000'000), 1'000'000u);
  // Requests far behind the window are clamped forward, never lost.
  const std::uint64_t c = ports.claim(0);
  EXPECT_GE(c, 1'000'000u - 64);
}

TEST(SlotPool, BlocksWhenAllSlotsHeld) {
  SlotPool pool(2);
  EXPECT_EQ(pool.available(0), 0u);
  pool.claim(100);
  pool.claim(200);
  EXPECT_EQ(pool.available(0), 100u);  // ring: oldest slot frees first
  pool.claim(150);
  EXPECT_EQ(pool.available(0), 200u);
}

// ---------- scalar pipeline ----------

TEST(Timing, IndependentAddsReachIssueWidth) {
  Assembler a;
  for (int i = 0; i < 800; ++i) a.addi(x(1 + (i % 8)), x(0), i % 100);
  a.ebreak();
  Timed t(a);
  // 8-wide front end and issue: IPC must be near 8.
  EXPECT_GT(t.stats.ipc(), 6.0);
  EXPECT_EQ(t.stats.instructions, 801u);
}

TEST(Timing, DependencyChainSerializes) {
  Assembler a;
  for (int i = 0; i < 400; ++i) a.addi(x(1), x(1), 1);
  a.ebreak();
  Timed t(a);
  // Chained adds: ~1 IPC regardless of width.
  EXPECT_LT(t.stats.ipc(), 1.3);
  EXPECT_GT(t.stats.cycles, 390u);
}

TEST(Timing, MulLatencyLongerThanAdd) {
  Assembler chain_add;
  for (int i = 0; i < 200; ++i) chain_add.add(x(1), x(1), x(1));
  chain_add.ebreak();
  Assembler chain_mul;
  for (int i = 0; i < 200; ++i) chain_mul.mul(x(1), x(1), x(1));
  chain_mul.ebreak();
  Timed ta(chain_add);
  Timed tm(chain_mul);
  EXPECT_GT(tm.stats.cycles, 2 * ta.stats.cycles);
}

TEST(Timing, ColdLoadPaysDramLatency) {
  Assembler a;
  a.li(x(1), 0x100000);
  a.lw(x(2), x(1), 0);
  a.add(x(3), x(2), x(2));  // dependent on the load
  a.ebreak();
  Timed t(a);
  EXPECT_GT(t.stats.cycles, 100u);  // DRAM latency dominates
}

TEST(Timing, WarmLoadIsFast) {
  Assembler a;
  a.li(x(1), 0x100000);
  a.lw(x(2), x(1), 0);   // cold
  for (int i = 0; i < 50; ++i) a.lw(x(2), x(1), 0);  // warm hits
  a.ebreak();
  Timed t(a);
  // 50 warm hits add only a few cycles each beyond the cold miss.
  EXPECT_LT(t.stats.cycles, 400u);
}

TEST(Timing, StoreToLoadForwards) {
  Assembler a;
  a.li(x(1), 0x100000);
  a.li(x(2), 42);
  a.sw(x(2), x(1), 0);
  a.lw(x(3), x(1), 0);  // must forward, not wait for DRAM
  a.ebreak();
  Timed t(a);
  EXPECT_LT(t.stats.cycles, 60u);
}

TEST(Timing, PredictableLoopBranchesAreCheap) {
  Assembler a;
  a.li(x(1), 100);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(x(1), x(1), -1);
  a.bne(x(1), x(0), loop);  // backward: predicted taken, right 99/100 times
  a.ebreak();
  Timed t(a);
  EXPECT_EQ(t.stats.branch_mispredicts, 1u);  // only the loop exit
}

TEST(Timing, MispredictsCostCycles) {
  // Alternating forward branches taken half the time: static not-taken
  // prediction misses on every taken instance.
  Assembler a;
  a.li(x(1), 50);
  auto loop = a.new_label();
  a.bind(loop);
  auto skip = a.new_label();
  a.andi(x(2), x(1), 1);
  a.beq(x(2), x(0), skip);  // forward branch: predicted not-taken
  a.nop();
  a.bind(skip);
  a.addi(x(1), x(1), -1);
  a.bne(x(1), x(0), loop);
  a.ebreak();
  Timed t(a);
  EXPECT_GT(t.stats.branch_mispredicts, 20u);
  // Each mispredict costs at least the refill penalty.
  EXPECT_GT(t.stats.cycles, t.stats.instructions);
}

TEST(Timing, RobBoundsInflightWork) {
  // A long dependency stall at the head must back-pressure dispatch: total
  // time ~ stall + drain rather than overlapping everything.
  Assembler a;
  a.li(x(1), 0x200000);
  a.lw(x(2), x(1), 0);        // cold miss ~110 cycles
  a.add(x(3), x(2), x(2));    // blocks at ROB head until the load returns
  for (int i = 0; i < 300; ++i) a.addi(x(4 + (i % 4)), x(0), 1);
  a.ebreak();
  Timed t(a);
  // With a 60-entry ROB the adds cannot all hide under the miss: 300 adds
  // at 8/cycle = ~38 cycles, but only ~60 fit in flight during the miss.
  EXPECT_GT(t.stats.cycles, 130u);
}

// ---------- vector engine ----------

TEST(Timing, VectorInstructionsFlowThroughEngine) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x100000);
  a.vle32(v(1), x(2));
  a.vadd_vi(v(2), v(1), 1);
  a.vse32(v(2), x(2));
  a.ebreak();
  Timed t(a);
  EXPECT_EQ(t.stats.vector_instructions, 3u);
  EXPECT_EQ(t.stats.vector_loads, 1u);
  EXPECT_EQ(t.stats.vector_stores, 1u);
  EXPECT_EQ(t.stats.mem.vector_reads, 1u);
  EXPECT_EQ(t.stats.mem.vector_writes, 1u);
}

TEST(Timing, VectorToScalarRoundTripStalls) {
  // vmv.x.s followed by a dependent scalar op pays the engine round trip.
  Assembler with_roundtrip;
  with_roundtrip.li(x(1), 16);
  with_roundtrip.vsetvli_e32m1(x(0), x(1));
  for (int i = 0; i < 64; ++i) {
    with_roundtrip.vmv_x_s(x(2), v(1));
    with_roundtrip.addi(x(3), x(2), 1);  // dependent
  }
  with_roundtrip.ebreak();
  Assembler without;
  without.li(x(1), 16);
  without.vsetvli_e32m1(x(0), x(1));
  for (int i = 0; i < 64; ++i) {
    without.vadd_vi(v(2), v(1), 1);   // engine work, no scalar result
    without.addi(x(3), x(0), 1);      // independent
  }
  without.ebreak();
  Timed tr(with_roundtrip);
  Timed tw(without);
  EXPECT_GT(tr.stats.cycles, tw.stats.cycles);
  EXPECT_EQ(tr.stats.vector_to_scalar_moves, 64u);
}

TEST(Timing, EngineQueueDecouplesAhead) {
  // Independent vector adds behind a scalar dependency chain: the engine
  // keeps working while the scalar core grinds -> high overlap.
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  for (int i = 0; i < 100; ++i) {
    a.vadd_vi(v(1 + (i % 4)), v(10), 1);
    a.addi(x(2), x(2), 1);
  }
  a.ebreak();
  Timed t(a);
  // 100 vector + ~100 scalar in ~max(engine, scalar) time, not the sum.
  EXPECT_LT(t.stats.cycles, 260u);
}

TEST(Timing, VectorLoadsOverlapInLoadQueues) {
  // 16 independent warm vector loads should pipeline through the L2.
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 0x100000);
  for (int rep = 0; rep < 2; ++rep) {  // first pass warms, second measures
    for (int i = 0; i < 16; ++i) {
      a.addi(x(3), x(2), i * 64);
      a.vle32(v(i % 8), x(3));
    }
  }
  a.ebreak();
  Timed t(a);
  // Serial L2 hits would cost 32*8 = 256+ cycles in the engine alone.
  EXPECT_LT(t.stats.cycles, 220u);
}

TEST(Timing, VindexmacAvoidsMemorySystem) {
  // One vindexmac vs one vle32+vfmacc: the indirect read makes no memory
  // accesses at all.
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.li(x(2), 20);
  for (int i = 0; i < 32; ++i) a.vfindexmac_vx(v(1), v(2), x(2));
  a.ebreak();
  Timed t(a);
  EXPECT_EQ(t.stats.mem.data_accesses(), 0u);
  EXPECT_EQ(t.stats.vector_macs, 32u);
}

TEST(Timing, MarkersRecordCommitOrderAndStats) {
  Assembler a;
  a.marker(7);
  a.li(x(1), 0x100000);
  a.lw(x(2), x(1), 0);
  a.marker(8);
  a.ebreak();
  Timed t(a);
  ASSERT_EQ(t.markers.size(), 2u);
  EXPECT_EQ(t.markers[0].id, 7);
  EXPECT_EQ(t.markers[1].id, 8);
  EXPECT_LT(t.markers[0].cycle, t.markers[1].cycle);
  EXPECT_EQ(t.markers[1].mem.scalar_reads, 1u);
  EXPECT_GT(t.markers[1].instructions, t.markers[0].instructions);
}

TEST(Timing, DeterministicAcrossRuns) {
  auto build = [] {
    Assembler a;
    a.li(x(1), 16);
    a.vsetvli_e32m1(x(0), x(1));
    a.li(x(2), 0x100000);
    for (int i = 0; i < 50; ++i) {
      a.vle32(v(1), x(2));
      a.vadd_vi(v(2), v(1), 1);
      a.vse32(v(2), x(2));
    }
    a.ebreak();
    return a;
  };
  Assembler a1 = build();
  Assembler a2 = build();
  Timed t1(a1);
  Timed t2(a2);
  EXPECT_EQ(t1.stats.cycles, t2.stats.cycles);
  EXPECT_EQ(t1.stats.mem.dram_lines, t2.stats.mem.dram_lines);
}

TEST(Timing, RunTwiceThrows) {
  Assembler a;
  a.ebreak();
  MainMemory mem;
  Program p = a.finish();
  TimingSim sim(p, mem, ProcessorConfig{});
  (void)sim.run();
  EXPECT_THROW((void)sim.run(), SimError);
}

TEST(Timing, InstructionBudgetGuard) {
  Assembler a;
  auto loop = a.new_label();
  a.bind(loop);
  a.j(loop);
  MainMemory mem;
  Program p = a.finish();
  TimingSim sim(p, mem, ProcessorConfig{});
  EXPECT_THROW((void)sim.run(1000), SimError);
}

// ---------- SSR stream-control line-buffer invalidation ----------

/// Streams 0/1 configured over one 64 B line each (4 value/index pairs),
/// two streaming MACs, `tweak(a)` injected, then two more MACs. The index
/// words name v8 so the MACs resolve a valid VRF row.
template <typename Tweak>
TimingStats ssr_mac_stats(Tweak&& tweak) {
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.vmv_v_i(v(2), 0);
  a.vmv_v_i(v(8), 0);
  a.li(x(3), 0x2000);  // value stream
  a.li(x(4), 0x3000);  // index stream
  a.li(x(5), 4);
  a.ssrcfg(0, x(3), x(5));
  a.ssrcfg(1, x(4), x(5));
  a.li(x(5), 0b11);
  a.ssren(x(5));
  a.vindexmacs_v(v(2));
  a.vindexmacs_v(v(2));
  tweak(a);
  a.vindexmacs_v(v(2));
  a.vindexmacs_v(v(2));
  a.ebreak();
  Program p = a.finish();
  MainMemory mem;
  for (int i = 0; i < 4; ++i) {
    mem.write_u32(0x2000 + 4 * i, 0);  // values (bits irrelevant to timing)
    mem.write_u32(0x3000 + 4 * i, 8);  // indices -> v8
  }
  TimingSim sim(p, mem, ProcessorConfig{});
  return sim.run();
}

TEST(Timing, UnrelatedStreamConfigKeepsLineBuffers) {
  // Regression: ssrcfg on streams 2/3 between streaming MACs used to flush
  // the line buffers of streams 0/1 too, charging refetches the hardware's
  // per-stream address generators would never issue. Setup traffic on
  // other streams must leave the active pair's amortization intact.
  const TimingStats plain = ssr_mac_stats([](Assembler&) {});
  const TimingStats tweaked = ssr_mac_stats([](Assembler& a) {
    a.li(x(6), 0x5000);
    a.li(x(7), 4);
    a.ssrcfg(2, x(6), x(7));
    a.ssrcfg(3, x(6), x(7));
  });
  EXPECT_EQ(tweaked.vector_loads, plain.vector_loads);
  EXPECT_EQ(tweaked.mem.vector_reads, plain.mem.vector_reads);
}

TEST(Timing, ReenableForcesStreamLineRefetch) {
  // ssren re-enabling streams 0/1 rewinds their address generators to
  // base: the held lines must be refetched (one per stream).
  const TimingStats plain = ssr_mac_stats([](Assembler&) {});
  const TimingStats rewound = ssr_mac_stats([](Assembler& a) {
    a.li(x(5), 0b11);
    a.ssren(x(5));
  });
  EXPECT_EQ(rewound.vector_loads, plain.vector_loads + 2);
}

TEST(Timing, ReconfiguringActiveStreamDropsOnlyThatLine) {
  // ssrcfg on stream 0 alone re-fetches stream 0's line but keeps stream
  // 1's buffer (before the fix both were flushed: +2 loads, not +1).
  const TimingStats plain = ssr_mac_stats([](Assembler&) {});
  const TimingStats recfg = ssr_mac_stats([](Assembler& a) {
    a.li(x(6), 0x2008);  // re-point stream 0 inside the same line
    a.li(x(7), 2);
    a.ssrcfg(0, x(6), x(7));
  });
  EXPECT_EQ(recfg.vector_loads, plain.vector_loads + 1);
}

// ---------- execution-engine parity ----------

TEST(Timing, ThreadedEngineProducesIdenticalStatsAndMarkers) {
  // The --engine choice changes only how the trace-driving functional
  // simulation advances; every cycle count, stall bucket, memory counter
  // and marker must be identical.
  Assembler a;
  a.li(x(1), 16);
  a.vsetvli_e32m1(x(0), x(1));
  a.vmv_v_i(v(2), 0);
  a.vmv_v_i(v(4), 0);
  a.li(x(2), 0x2000);
  a.vle32(v(8), x(2));
  a.marker(1);
  auto loop = a.new_label();
  a.li(x(31), 5);
  a.bind(loop);
  a.vmv_x_s(x(5), v(4));
  a.andi(x(5), x(5), 7);
  a.vindexmac_vx(v(2), v(4), x(5));
  a.vslide1down_vx(v(4), v(4), x(0));
  a.addi(x(31), x(31), -1);
  a.bne(x(31), x(0), loop);
  a.marker(2);
  a.vse32(v(2), x(2));
  a.ebreak();
  Program p = a.finish();

  MainMemory imem;
  TimingSim isim(p, imem, ProcessorConfig{}, ExecEngine::kInterp);
  const TimingStats is = isim.run();

  MainMemory tmem;
  TimingSim tsim(p, tmem, ProcessorConfig{}, ExecEngine::kThreaded);
  const TimingStats ts = tsim.run();

  EXPECT_EQ(ts.cycles, is.cycles);
  EXPECT_EQ(ts.instructions, is.instructions);
  EXPECT_EQ(ts.scalar_instructions, is.scalar_instructions);
  EXPECT_EQ(ts.vector_instructions, is.vector_instructions);
  EXPECT_EQ(ts.vector_loads, is.vector_loads);
  EXPECT_EQ(ts.vector_stores, is.vector_stores);
  EXPECT_EQ(ts.vector_macs, is.vector_macs);
  EXPECT_EQ(ts.vector_to_scalar_moves, is.vector_to_scalar_moves);
  EXPECT_EQ(ts.branch_mispredicts, is.branch_mispredicts);
  EXPECT_EQ(ts.dispatch_stalls.scalar_operand, is.dispatch_stalls.scalar_operand);
  EXPECT_EQ(ts.dispatch_stalls.branch_shadow, is.dispatch_stalls.branch_shadow);
  EXPECT_EQ(ts.dispatch_stalls.queue_full, is.dispatch_stalls.queue_full);
  EXPECT_EQ(ts.dispatch_stalls.bandwidth, is.dispatch_stalls.bandwidth);
  EXPECT_EQ(ts.mem.data_accesses(), is.mem.data_accesses());
  EXPECT_EQ(ts.mem.dram_lines, is.mem.dram_lines);

  ASSERT_EQ(tsim.markers().size(), isim.markers().size());
  for (std::size_t i = 0; i < isim.markers().size(); ++i) {
    EXPECT_EQ(tsim.markers()[i].id, isim.markers()[i].id);
    EXPECT_EQ(tsim.markers()[i].cycle, isim.markers()[i].cycle);
    EXPECT_EQ(tsim.markers()[i].instructions, isim.markers()[i].instructions);
  }
}

TEST(Timing, ConfigDescribeMentionsTableOneNumbers) {
  const std::string text = ProcessorConfig{}.describe();
  EXPECT_NE(text.find("8-way-issue out-of-order"), std::string::npos);
  EXPECT_NE(text.find("60-entry ROB"), std::string::npos);
  EXPECT_NE(text.find("16-entry LSQ"), std::string::npos);
  EXPECT_NE(text.find("512-bit vector engine"), std::string::npos);
  EXPECT_NE(text.find("512KB"), std::string::npos);
}

}  // namespace
}  // namespace indexmac::timing
