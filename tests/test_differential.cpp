// Differential and fuzz tests across the simulation stack:
//  * decoder fuzzing — random words never crash; they decode or report
//    kIllegal, and everything that decodes re-encodes to an equivalent
//    instruction (field-level idempotence);
//  * random-program differential runs — the timing model commits exactly
//    the instruction stream the functional model retires, for arbitrary
//    generated programs (loops, branches, memory, vector ops);
//  * tracer consistency — the trace length matches retired instructions
//    and records the same architectural effects.
//  * sampled-vs-exact tolerance matrix — the sampled estimator stays
//    within its documented error bound across dataflows, unroll factors
//    and (shrunk) transformer GEMM shapes, and rejects exactly the
//    configurations it documents as unsupported.
#include <gtest/gtest.h>

#include <random>
#include <sstream>

#include "asm/assembler.h"
#include "core/runner.h"
#include "core/spmm_problem.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"
#include "fsim/tracer.h"
#include "isa/encoding.h"
#include "timing/timing_sim.h"
#include "timing/trace.h"
#include "workloads/workloads.h"

namespace indexmac {
namespace {

TEST(DecoderFuzz, RandomWordsNeverCrashAndRoundTrip) {
  std::mt19937 rng(2024);
  std::uniform_int_distribution<std::uint32_t> dist;
  int decoded = 0;
  for (int i = 0; i < 200'000; ++i) {
    const std::uint32_t word = dist(rng);
    std::string err;
    const isa::Instruction inst = isa::decode(word, &err);
    if (inst.op == isa::Op::kIllegal) {
      EXPECT_FALSE(err.empty());
      continue;
    }
    ++decoded;
    // Whatever decodes must re-encode to a word that decodes identically
    // (the re-encoded word may differ in don't-care bits).
    const std::uint32_t again = isa::encode(inst);
    EXPECT_EQ(isa::decode(again), inst) << std::hex << word;
  }
  EXPECT_GT(decoded, 100);  // the subset is dense enough to hit randomly
}

TEST(DecoderFuzz, AllZerosAndOnesAreIllegal) {
  EXPECT_EQ(isa::decode(0x00000000).op, isa::Op::kIllegal);
  EXPECT_EQ(isa::decode(0xffffffff).op, isa::Op::kIllegal);
}

/// Generates a random but well-formed program: a bounded loop skeleton
/// filled with random scalar ALU ops, memory ops into a scratch buffer,
/// and vector ops (vl set once), terminated by ebreak.
Program random_program(std::uint32_t seed) {
  std::mt19937 rng(seed);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  Assembler a;
  constexpr std::int64_t kScratch = 0x40000;
  a.li(x(1), kScratch);
  a.li(x(2), 16);
  a.vsetvli_e32m1(x(0), x(2));
  a.li(x(31), pick(2, 6));  // outer loop count
  auto loop = a.new_label();
  a.bind(loop);
  const int body = pick(5, 40);
  for (int i = 0; i < body; ++i) {
    const XReg rd = x(static_cast<unsigned>(pick(3, 15)));
    const XReg rs1 = x(static_cast<unsigned>(pick(0, 15)));
    const XReg rs2 = x(static_cast<unsigned>(pick(0, 15)));
    switch (pick(0, 9)) {
      case 0: a.add(rd, rs1, rs2); break;
      case 1: a.sub(rd, rs1, rs2); break;
      case 2: a.mul(rd, rs1, rs2); break;
      case 3: a.andi(rd, rs1, pick(-16, 16)); break;
      case 4: a.slli(rd, rs1, static_cast<unsigned>(pick(0, 8))); break;
      case 5: {  // scalar store+load into scratch (bounded offset)
        const std::int32_t off = pick(0, 63) * 8;
        a.sd(rs1, x(1), off);
        a.ld(rd, x(1), off);
        break;
      }
      case 6: a.vle32(v(static_cast<unsigned>(pick(1, 7))), x(1)); break;
      case 7: a.vadd_vi(v(static_cast<unsigned>(pick(1, 7))),
                        v(static_cast<unsigned>(pick(1, 7))), pick(-15, 15)); break;
      case 8: a.vmv_x_s(rd, v(static_cast<unsigned>(pick(1, 7)))); break;
      case 9: {
        a.li(x(30), pick(8, 23));
        a.vindexmac_vx(v(static_cast<unsigned>(pick(1, 7))),
                       v(static_cast<unsigned>(pick(1, 7))), x(30));
        break;
      }
    }
  }
  a.addi(x(31), x(31), -1);
  a.bne(x(31), x(0), loop);
  a.vse32(v(1), x(1));
  a.ebreak();
  return a.finish();
}

class RandomProgramDifferential : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RandomProgramDifferential, TimingCommitsExactlyWhatFunctionalRetires) {
  const Program program = random_program(GetParam());

  MainMemory fmem;
  Machine machine(program, fmem);
  const StopReason stop = machine.run(5'000'000);
  ASSERT_EQ(stop, StopReason::kEbreak);

  MainMemory tmem;
  timing::TimingSim sim(program, tmem, timing::ProcessorConfig{});
  const timing::TimingStats& stats = sim.run();
  EXPECT_EQ(stats.instructions, machine.instructions_retired());
  EXPECT_GE(stats.cycles, stats.instructions / 8);  // cannot beat 8-wide commit
  EXPECT_GT(stats.cycles, 0u);

  // The timing model drives its own functional machine: final architectural
  // memory must agree with the standalone functional run.
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(tmem.read_u64(0x40000 + 8 * i), fmem.read_u64(0x40000 + 8 * i)) << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramDifferential,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u, 144u,
                                           233u, 377u, 610u, 987u, 1597u));

/// The sampled estimator's documented cross-validation bound (see
/// test_runner.cpp's SampledTracksExactOnModerateProblem).
constexpr double kSampledErrorBound = 0.12;

/// One transformer GEMM shrunk to exact-simulation size via the registry's
/// shrink helper; the cap choices keep strip tails and k-tiling non-trivial.
struct MatrixShape {
  const char* label;
  kernels::GemmDims dims;
};

std::vector<MatrixShape> transformer_matrix_shapes() {
  const workloads::Suite& bert = workloads::suite("bert-base");
  const workloads::Suite& vit = workloads::suite("vit-base");
  return {
      {"bert.qkv_proj", workloads::shrink(bert.workloads[0].dims, {24, 96, 48})},
      {"bert.mlp_down", workloads::shrink(bert.workloads[3].dims, {16, 128, 33})},
      {"vit.patch_embed", workloads::shrink(vit.workloads[0].dims, {32, 64, 41})},
  };
}

TEST(SampledVsExactMatrix, TransformerShapesAcrossDataflowsAndUnrolls) {
  using core::Algorithm;
  using core::RunConfig;
  const timing::ProcessorConfig proc{};
  const sparse::Sparsity sp = sparse::kSparsity24;

  std::uint32_t seed = 100;
  for (const MatrixShape& shape : transformer_matrix_shapes()) {
    const core::SpmmProblem problem = core::SpmmProblem::random(shape.dims, sp, seed++);
    for (const auto df : {kernels::Dataflow::kAStationary, kernels::Dataflow::kBStationary,
                          kernels::Dataflow::kCStationary})
      for (const unsigned unroll : {1u, 2u, 4u, 8u})
        for (const auto alg :
             {Algorithm::kRowwiseSpmm, Algorithm::kIndexmac, Algorithm::kIndexmac4}) {
          SCOPED_TRACE(std::string(shape.label) + " df=" +
                       std::to_string(static_cast<int>(df)) + " u" + std::to_string(unroll) +
                       " " + core::algorithm_name(alg));
          RunConfig config{.algorithm = alg, .kernel = {.unroll = unroll, .dataflow = df}};

          // The generators document unroll in [1,4] and Algorithms 3/4 as
          // B-stationary-only; those cells must reject, not mis-simulate.
          const bool kernel_supported =
              unroll <= 4 &&
              (alg == Algorithm::kRowwiseSpmm || df == kernels::Dataflow::kBStationary);
          // The sampled runner additionally documents B-stationary-only.
          const bool sampled_supported =
              kernel_supported && df == kernels::Dataflow::kBStationary;

          if (!kernel_supported) {
            EXPECT_THROW((void)core::run_exact(problem, config, proc), SimError);
            EXPECT_THROW((void)core::run_sampled(shape.dims, sp, config, proc), SimError);
            continue;
          }
          const auto exact = core::run_exact(problem, config, proc);
          EXPECT_GT(exact.stats.cycles, 0u);
          if (!sampled_supported) {
            EXPECT_THROW((void)core::run_sampled(shape.dims, sp, config, proc), SimError);
            continue;
          }
          const auto sampled = core::run_sampled(shape.dims, sp, config, proc);
          const double err =
              std::abs(sampled.cycles - static_cast<double>(exact.stats.cycles)) /
              static_cast<double>(exact.stats.cycles);
          EXPECT_LT(err, kSampledErrorBound)
              << "sampled=" << sampled.cycles << " exact=" << exact.stats.cycles;
          // Access counts are structure-determined: exact in both modes.
          EXPECT_EQ(sampled.data_accesses, exact.data_accesses());
        }
  }
}

TEST(SampledVsExactMatrix, BothSparsitiesOnTransformerShapes) {
  // The B-stationary tolerance cells again at 1:4 (the matrix above pins
  // 2:4): sparsity changes the A-stream geometry the extrapolation scales.
  using core::Algorithm;
  using core::RunConfig;
  const timing::ProcessorConfig proc{};
  std::uint32_t seed = 200;
  for (const MatrixShape& shape : transformer_matrix_shapes()) {
    const core::SpmmProblem problem =
        core::SpmmProblem::random(shape.dims, sparse::kSparsity14, seed++);
    for (const auto alg :
         {Algorithm::kRowwiseSpmm, Algorithm::kIndexmac, Algorithm::kIndexmac4}) {
      SCOPED_TRACE(std::string(shape.label) + " " + core::algorithm_name(alg));
      const RunConfig config{.algorithm = alg, .kernel = {.unroll = 4}};
      const auto exact = core::run_exact(problem, config, proc);
      const auto sampled = core::run_sampled(shape.dims, sparse::kSparsity14, config, proc);
      const double err = std::abs(sampled.cycles - static_cast<double>(exact.stats.cycles)) /
                         static_cast<double>(exact.stats.cycles);
      EXPECT_LT(err, kSampledErrorBound)
          << "sampled=" << sampled.cycles << " exact=" << exact.stats.cycles;
      EXPECT_EQ(sampled.data_accesses, exact.data_accesses());
    }
  }
}

/// Functional run of one prepared configuration; returns the C matrix.
sparse::DenseMatrix<float> run_functional(const core::SpmmProblem& problem,
                                          const core::RunConfig& config) {
  MainMemory mem;
  const core::PreparedRun run = core::prepare(problem, config, mem);
  Machine machine(run.program, mem);
  const StopReason stop = machine.run(200'000'000);
  EXPECT_EQ(stop, StopReason::kEbreak) << "kernel did not halt";
  return core::read_c(run, mem);
}

TEST(NonPaperSparsities, AllFiveAlgorithmsBitExactAcrossDataflows) {
  // Beyond the paper's 1:4 / 2:4: wider blocks (1:8, 3:8 — odd slot
  // counts) and M equal to the full tile (2:16). Every algorithm that
  // structurally supports the cell must reproduce spmm_reference
  // BIT-EXACTLY: the kernels accumulate non-zeros in the same k-ascending
  // order the reference uses, and padding slots contribute exact +0.0f.
  using core::Algorithm;
  using core::RunConfig;
  const kernels::GemmDims dims{9, 50, 33};  // ragged rows, k and columns
  std::uint32_t seed = 400;
  for (const sparse::Sparsity sp :
       {sparse::Sparsity{1, 8}, sparse::Sparsity{3, 8}, sparse::Sparsity{2, 16}}) {
    const core::SpmmProblem problem = core::SpmmProblem::random(dims, sp, seed++);
    const sparse::DenseMatrix<float> ref = problem.reference();
    for (const auto alg : {Algorithm::kDenseRowwise, Algorithm::kRowwiseSpmm,
                           Algorithm::kIndexmac, Algorithm::kIndexmac4, Algorithm::kSsr})
      for (const auto df : {kernels::Dataflow::kAStationary, kernels::Dataflow::kBStationary,
                            kernels::Dataflow::kCStationary}) {
        const bool supported =
            df == kernels::Dataflow::kBStationary || alg == Algorithm::kRowwiseSpmm;
        if (!supported) continue;  // Algs 1/3/4/5 are B-stationary by construction
        const unsigned unroll =
            alg == Algorithm::kDenseRowwise || alg == Algorithm::kSsr ? 1u : 4u;
        SCOPED_TRACE(std::string(core::algorithm_name(alg)) + " df=" +
                     std::to_string(static_cast<int>(df)) + " " + std::to_string(sp.n) + ":" +
                     std::to_string(sp.m));
        const RunConfig config{.algorithm = alg, .kernel = {.unroll = unroll, .dataflow = df}};
        const sparse::DenseMatrix<float> c = run_functional(problem, config);
        ASSERT_EQ(c.rows(), ref.rows());
        ASSERT_EQ(c.cols(), ref.cols());
        for (std::size_t i = 0; i < ref.rows(); ++i)
          for (std::size_t j = 0; j < ref.cols(); ++j)
            ASSERT_EQ(c.at(i, j), ref.at(i, j)) << "(" << i << "," << j << ")";
      }
  }
}

TEST(NonPaperSparsities, Algorithm4MatchesAlgorithm3BitExactly) {
  // The packed-index/dual-row kernel must produce the exact bits of the
  // Algorithm 3 kernel (same MAC order, different instruction forms).
  using core::Algorithm;
  const kernels::GemmDims dims{11, 48, 31};
  std::uint32_t seed = 500;
  for (const sparse::Sparsity sp :
       {sparse::kSparsity14, sparse::kSparsity24, sparse::Sparsity{1, 8},
        sparse::Sparsity{3, 8}, sparse::Sparsity{2, 16}}) {
    const core::SpmmProblem problem = core::SpmmProblem::random(dims, sp, seed++);
    for (const unsigned unroll : {1u, 2u, 4u}) {
      SCOPED_TRACE(std::to_string(sp.n) + ":" + std::to_string(sp.m) + " u" +
                   std::to_string(unroll));
      const auto c3 = run_functional(
          problem, core::RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = unroll}});
      const auto c4 = run_functional(
          problem,
          core::RunConfig{.algorithm = Algorithm::kIndexmac4, .kernel = {.unroll = unroll}});
      for (std::size_t i = 0; i < c3.rows(); ++i)
        for (std::size_t j = 0; j < c3.cols(); ++j)
          ASSERT_EQ(c3.at(i, j), c4.at(i, j)) << "(" << i << "," << j << ")";
    }
  }
}

TEST(NonPaperSparsities, SsrMatchesAlgorithm3BitExactly) {
  // The streaming kernel packs A exactly like Algorithm 3 (IndexMode
  // kVrfIndex) and replays the same [ktile][row][slot] MAC order through
  // the streams, so its C bits must equal the vindexmac kernel's.
  using core::Algorithm;
  const kernels::GemmDims dims{11, 48, 31};
  std::uint32_t seed = 600;
  for (const sparse::Sparsity sp :
       {sparse::kSparsity14, sparse::kSparsity24, sparse::Sparsity{1, 8},
        sparse::Sparsity{3, 8}, sparse::Sparsity{2, 16}}) {
    SCOPED_TRACE(std::to_string(sp.n) + ":" + std::to_string(sp.m));
    const core::SpmmProblem problem = core::SpmmProblem::random(dims, sp, seed++);
    const auto c3 = run_functional(
        problem, core::RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 1}});
    const auto c5 = run_functional(
        problem, core::RunConfig{.algorithm = Algorithm::kSsr, .kernel = {.unroll = 1}});
    for (std::size_t i = 0; i < c3.rows(); ++i)
      for (std::size_t j = 0; j < c3.cols(); ++j)
        ASSERT_EQ(c3.at(i, j), c5.at(i, j)) << "(" << i << "," << j << ")";
  }
}

TEST(SampledVsExactMatrix, SsrSampledTracksExactAndPredictsAccesses) {
  // The SSR family is sampled-capable: the extrapolated cycles stay within
  // the documented bound and the analytic footprint (predict_ssr_footprint)
  // reproduces the exact run's access count including the per-strip
  // stream-line fetches.
  using core::Algorithm;
  const timing::ProcessorConfig proc{};
  std::uint32_t seed = 700;
  for (const MatrixShape& shape : transformer_matrix_shapes())
    for (const sparse::Sparsity sp : {sparse::kSparsity14, sparse::kSparsity24}) {
      SCOPED_TRACE(std::string(shape.label) + " " + std::to_string(sp.n) + ":" +
                   std::to_string(sp.m));
      const core::SpmmProblem problem = core::SpmmProblem::random(shape.dims, sp, seed++);
      const core::RunConfig config{.algorithm = Algorithm::kSsr, .kernel = {.unroll = 1}};
      const auto exact = core::run_exact(problem, config, proc);
      const auto sampled = core::run_sampled(shape.dims, sp, config, proc);
      const double err = std::abs(sampled.cycles - static_cast<double>(exact.stats.cycles)) /
                         static_cast<double>(exact.stats.cycles);
      EXPECT_LT(err, kSampledErrorBound)
          << "sampled=" << sampled.cycles << " exact=" << exact.stats.cycles;
      EXPECT_EQ(sampled.data_accesses, exact.data_accesses());
    }
}

TEST(Tracer, RecordsEveryRetiredInstruction) {
  Assembler a;
  a.li(x(1), 3);
  auto loop = a.new_label();
  a.bind(loop);
  a.addi(x(1), x(1), -1);
  a.bne(x(1), x(0), loop);
  a.ebreak();
  Program p = a.finish();
  MainMemory mem;
  Machine machine(p, mem);
  Tracer tracer(machine);
  std::ostringstream out;
  const StopReason stop = tracer.run(out);
  EXPECT_EQ(stop, StopReason::kEbreak);
  // One line per retired instruction.
  std::size_t lines = 0;
  for (char c : out.str())
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, machine.instructions_retired());
  EXPECT_NE(out.str().find("bne"), std::string::npos);
  EXPECT_NE(out.str().find("# x1=0x2"), std::string::npos);  // first decrement
}

TEST(Tracer, ReportsVectorWritesAndScalarValues) {
  Assembler a;
  a.li(x(2), 16);
  a.vsetvli_e32m1(x(0), x(2));
  a.vmv_v_i(v(3), 7);
  a.vmv_x_s(x(5), v(3));
  a.ebreak();
  Program p = a.finish();
  MainMemory mem;
  Machine machine(p, mem);
  Tracer tracer(machine);
  std::ostringstream out;
  (void)tracer.run(out);
  EXPECT_NE(out.str().find("# v3 updated (vl=16)"), std::string::npos);
  EXPECT_NE(out.str().find("# x5=0x7"), std::string::npos);
}

TEST(DispatchStalls, RoundTripsShowUpAsScalarOperandStalls) {
  // A vmv.x.s -> vindexmac chain stalls vector dispatch on the scalar
  // operand; the breakdown must attribute cycles there.
  Assembler a;
  a.li(x(2), 16);
  a.vsetvli_e32m1(x(0), x(2));
  for (int i = 0; i < 32; ++i) {
    a.vmv_x_s(x(5), v(8));
    a.vindexmac_vx(v(1), v(2), x(5));
  }
  a.ebreak();
  Program p = a.finish();
  MainMemory mem;
  timing::TimingSim sim(p, mem, timing::ProcessorConfig{});
  const auto& stats = sim.run();
  EXPECT_GT(stats.dispatch_stalls.scalar_operand, 100u);
  EXPECT_GT(stats.dispatch_stalls.total(), stats.dispatch_stalls.queue_full);
}

TEST(DispatchStalls, IndependentVectorOpsMostlyBandwidthBound) {
  Assembler a;
  a.li(x(2), 16);
  a.vsetvli_e32m1(x(0), x(2));
  for (int i = 0; i < 64; ++i) a.vadd_vi(v(1 + (i % 8)), v(9), 1);
  a.ebreak();
  Program p = a.finish();
  MainMemory mem;
  timing::TimingSim sim(p, mem, timing::ProcessorConfig{});
  const auto& stats = sim.run();
  // Only the initial vsetvli shadow may register as a scalar-operand wait.
  EXPECT_LE(stats.dispatch_stalls.scalar_operand, 4u);
}

// ---------------------------------------------------------------------------
// Engine-vs-interpreter lockstep: the threaded-code engine's step() contract
// promises the observable per-instruction stream — every DynInst field the
// tracer derives — is identical to Machine::step's, not just the final state.
// These tests hold it to that across all five registry algorithms and across
// the random-program generator's seeds.

::testing::AssertionResult dyninsts_equal(const timing::DynInst& a, const timing::DynInst& b) {
  if (!(a.inst == b.inst)) return ::testing::AssertionFailure() << "inst encoding differs";
  if (a.pc != b.pc)
    return ::testing::AssertionFailure() << "pc 0x" << std::hex << a.pc << " vs 0x" << b.pc;
  if (a.branch_taken != b.branch_taken) return ::testing::AssertionFailure() << "branch_taken";
  if (a.is_halt != b.is_halt) return ::testing::AssertionFailure() << "is_halt";
  if (a.mem_addr != b.mem_addr)
    return ::testing::AssertionFailure()
           << "mem_addr 0x" << std::hex << a.mem_addr << " vs 0x" << b.mem_addr;
  if (a.mem_bytes != b.mem_bytes) return ::testing::AssertionFailure() << "mem_bytes";
  if (a.vl != b.vl) return ::testing::AssertionFailure() << "vl " << a.vl << " vs " << b.vl;
  if (a.indirect_vreg != b.indirect_vreg) return ::testing::AssertionFailure() << "indirect_vreg";
  if (a.indirect_vreg2 != b.indirect_vreg2)
    return ::testing::AssertionFailure() << "indirect_vreg2";
  if (a.ssr_value_addr != b.ssr_value_addr) return ::testing::AssertionFailure() << "ssr_value_addr";
  if (a.ssr_index_addr != b.ssr_index_addr) return ::testing::AssertionFailure() << "ssr_index_addr";
  if (a.gather_count != b.gather_count) return ::testing::AssertionFailure() << "gather_count";
  for (std::uint32_t i = 0; i < a.gather_count; ++i)
    if (a.gather_addrs[i] != b.gather_addrs[i])
      return ::testing::AssertionFailure() << "gather_addrs[" << i << "]";
  if (a.marker_id != b.marker_id) return ::testing::AssertionFailure() << "marker_id";
  if (a.ssr_ctl_mask != b.ssr_ctl_mask)
    return ::testing::AssertionFailure()
           << "ssr_ctl_mask " << int(a.ssr_ctl_mask) << " vs " << int(b.ssr_ctl_mask);
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult arch_states_equal(const ArchState& a, const ArchState& b) {
  if (a.pc != b.pc)
    return ::testing::AssertionFailure() << "pc 0x" << std::hex << a.pc << " vs 0x" << b.pc;
  if (a.vl != b.vl) return ::testing::AssertionFailure() << "vl";
  for (unsigned r = 0; r < isa::kNumXRegs; ++r)
    if (a.x[r] != b.x[r]) return ::testing::AssertionFailure() << "x" << r;
  for (unsigned r = 0; r < isa::kNumFRegs; ++r)
    if (a.f[r] != b.f[r]) return ::testing::AssertionFailure() << "f" << r;
  for (unsigned r = 0; r < isa::kNumVRegs; ++r)
    for (unsigned e = 0; e < isa::kVlMax; ++e)
      if (a.v[r][e] != b.v[r][e])
        return ::testing::AssertionFailure() << "v" << r << "[" << e << "]";
  return ::testing::AssertionSuccess();
}

/// Drains both sources in lockstep, asserting the DynInst streams are
/// field-for-field identical. Returns the number of instructions compared
/// (the halting ebreak included).
std::uint64_t drain_lockstep(timing::TraceSource& interp, timing::TraceSource& threaded) {
  std::uint64_t n = 0;
  timing::DynInst a, b;
  for (;;) {
    const bool more_interp = interp.next(a);
    const bool more_threaded = threaded.next(b);
    EXPECT_EQ(more_interp, more_threaded) << "stream length diverges after " << n;
    if (!more_interp || !more_threaded) break;
    const ::testing::AssertionResult eq = dyninsts_equal(a, b);
    EXPECT_TRUE(eq) << "at instruction " << n << ", pc=0x" << std::hex << a.pc;
    if (!eq) break;
    if (++n > 50'000'000) {
      ADD_FAILURE() << "trace did not terminate";
      break;
    }
  }
  return n;
}

TEST(EngineLockstep, AllFiveAlgorithmsIdenticalTraceStreams) {
  // Every registry algorithm, every supported dataflow and unroll: the
  // threaded engine must retire the exact same DynInst stream (including
  // SSR stream addresses, gather addresses and ssr_ctl_mask) and land on
  // the same architectural state and C matrix.
  using core::Algorithm;
  using core::RunConfig;
  const kernels::GemmDims dims{9, 50, 33};
  std::uint32_t seed = 700;
  const core::SpmmProblem problem =
      core::SpmmProblem::random(dims, sparse::kSparsity24, seed);
  for (const auto alg : {Algorithm::kDenseRowwise, Algorithm::kRowwiseSpmm,
                         Algorithm::kIndexmac, Algorithm::kIndexmac4, Algorithm::kSsr})
    for (const auto df : {kernels::Dataflow::kAStationary, kernels::Dataflow::kBStationary,
                          kernels::Dataflow::kCStationary}) {
      const bool supported =
          df == kernels::Dataflow::kBStationary || alg == Algorithm::kRowwiseSpmm;
      if (!supported) continue;
      const bool fixed_unroll = alg == Algorithm::kDenseRowwise || alg == Algorithm::kSsr;
      for (const unsigned unroll : {1u, 2u, 4u}) {
        if (fixed_unroll && unroll != 1u) continue;
        SCOPED_TRACE(std::string(core::algorithm_name(alg)) + " df=" +
                     std::to_string(static_cast<int>(df)) + " u" + std::to_string(unroll));
        const RunConfig config{.algorithm = alg, .kernel = {.unroll = unroll, .dataflow = df}};

        MainMemory imem;
        const core::PreparedRun irun = core::prepare(problem, config, imem);
        Machine interp(irun.program, imem);
        timing::TraceSource isrc(interp);

        MainMemory tmem;
        const core::PreparedRun trun = core::prepare(problem, config, tmem);
        Machine threaded_machine(trun.program, tmem);
        ThreadedEngine engine(threaded_machine);
        timing::TraceSource tsrc(threaded_machine, &engine);

        const std::uint64_t n = drain_lockstep(isrc, tsrc);
        ASSERT_GT(n, 0u);
        EXPECT_EQ(threaded_machine.instructions_retired(), interp.instructions_retired());
        EXPECT_TRUE(arch_states_equal(threaded_machine.state(), interp.state()));

        const sparse::DenseMatrix<float> ci = core::read_c(irun, imem);
        const sparse::DenseMatrix<float> ct = core::read_c(trun, tmem);
        for (std::size_t i = 0; i < ci.rows(); ++i)
          for (std::size_t j = 0; j < ci.cols(); ++j)
            ASSERT_EQ(ci.at(i, j), ct.at(i, j)) << "(" << i << "," << j << ")";
      }
    }
}

TEST(EngineLockstep, RandomProgramsIdenticalTraceStreamsAndMemory) {
  // The random-program generator's seeds (loops, branches, scalar/vector
  // mixes, scratch-memory stores) re-run under the threaded engine: the
  // per-instruction stream, final state and scratch memory must all match
  // the interpreter's bit for bit.
  for (const std::uint32_t seed : {1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u, 55u, 89u, 144u, 233u,
                                   377u, 610u, 987u, 1597u}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const Program program = random_program(seed);

    MainMemory fmem;
    Machine interp(program, fmem);
    timing::TraceSource isrc(interp);

    MainMemory tmem;
    Machine threaded_machine(program, tmem);
    ThreadedEngine engine(threaded_machine);
    timing::TraceSource tsrc(threaded_machine, &engine);

    const std::uint64_t n = drain_lockstep(isrc, tsrc);
    EXPECT_EQ(n, interp.instructions_retired());
    EXPECT_TRUE(arch_states_equal(threaded_machine.state(), interp.state()));
    for (int i = 0; i < 64; ++i)
      EXPECT_EQ(tmem.read_u64(0x40000 + 8 * i), fmem.read_u64(0x40000 + 8 * i)) << i;
  }
}

}  // namespace
}  // namespace indexmac
