// Unstructured-sparsity baseline: ELLPACK format properties and the
// ELLPACK kernel's functional correctness against the dense reference.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/spmm_problem.h"
#include "core/unstructured.h"
#include "fsim/machine.h"
#include "timing/timing_sim.h"

namespace indexmac::core {
namespace {

using sparse::DenseMatrix;
using sparse::EllpackMatrix;
using sparse::prune_unstructured;
using sparse::random_matrix;

TEST(Ellpack, FromDenseToDisenseRoundTrip) {
  DenseMatrix<float> m(3, 8);
  m.at(0, 1) = 1.0f;
  m.at(0, 7) = 2.0f;
  m.at(2, 4) = -3.0f;
  const auto ell = EllpackMatrix<float>::from_dense(m);
  EXPECT_EQ(ell.slots_per_row(), 2u);
  EXPECT_EQ(ell.to_dense(), m);
}

TEST(Ellpack, SlotsFollowDensestRow) {
  DenseMatrix<float> m(2, 6);
  for (std::size_t c = 0; c < 6; ++c) m.at(1, c) = 1.0f;  // dense row
  m.at(0, 0) = 5.0f;
  const auto ell = EllpackMatrix<float>::from_dense(m);
  EXPECT_EQ(ell.slots_per_row(), 6u);
  // Row 0 has 5 padding slots out of 6; overall 5/12.
  EXPECT_NEAR(ell.padding_fraction(), 5.0 / 12.0, 1e-9);
}

TEST(Ellpack, EmptyMatrixStoresNoSlots) {
  // An all-zero matrix must not be padded up to one slot per row: phantom
  // slots would issue counted gather loads and inflate the unstructured
  // baseline's memory-access numbers (see from_dense's semantics note).
  DenseMatrix<float> m(2, 4);
  const auto ell = EllpackMatrix<float>::from_dense(m);
  EXPECT_EQ(ell.slots_per_row(), 0u);
  EXPECT_EQ(ell.to_dense(), m);
  EXPECT_EQ(ell.padding_fraction(), 0.0);
}

TEST(Ellpack, AllZeroMatrixKernelIssuesNoLoads) {
  // The generated kernel degenerates to zero-stores of C: it still runs to
  // completion and produces the correct (all-zero) product, with zero
  // predicted operand loads and zero MACs.
  const DenseMatrix<float> a(4, 32);  // all zero
  const auto b = random_matrix<float>(32, 16, 5, -1.0f, 1.0f);
  MainMemory mem;
  const EllpackRun run = prepare_ellpack(a, b, mem);
  EXPECT_EQ(kernels::predict_ellpack_footprint(run.layout).vector_loads, 0u);
  EXPECT_EQ(kernels::predict_ellpack_footprint(run.layout).macs, 0u);
  Machine machine(run.program, mem);
  ASSERT_EQ(machine.run(1'000'000), StopReason::kEbreak);
  const auto c = read_c_ellpack(run, mem);
  for (std::size_t i = 0; i < c.rows(); ++i)
    for (std::size_t j = 0; j < c.cols(); ++j) ASSERT_EQ(c.at(i, j), 0.0f) << i << "," << j;
}

TEST(Ellpack, ZeroRowInNonEmptyMatrixStillPaysDensestRowSlots) {
  // Documented row-imbalance semantics: per-row padding up to the densest
  // row is faithful ELLPACK cost and *does* keep its slots.
  DenseMatrix<float> m(3, 8);
  m.at(0, 1) = 1.0f;
  m.at(0, 3) = 2.0f;  // densest row: 2 nnz; rows 1 and 2 all-zero
  const auto ell = EllpackMatrix<float>::from_dense(m);
  EXPECT_EQ(ell.slots_per_row(), 2u);
  EXPECT_NEAR(ell.padding_fraction(), 4.0 / 6.0, 1e-9);
}

TEST(Ellpack, UnstructuredPruneKeepsTopPerRow) {
  DenseMatrix<float> m(1, 5);
  m.at(0, 0) = 0.1f;
  m.at(0, 1) = -9.0f;
  m.at(0, 2) = 4.0f;
  m.at(0, 3) = 0.2f;
  m.at(0, 4) = -5.0f;
  const auto pruned = prune_unstructured(m, 2);
  EXPECT_FLOAT_EQ(pruned.at(0, 1), -9.0f);
  EXPECT_FLOAT_EQ(pruned.at(0, 4), -5.0f);
  EXPECT_FLOAT_EQ(pruned.at(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(pruned.at(0, 2), 0.0f);
}

TEST(Ellpack, PackingEmitsByteOffsets) {
  DenseMatrix<float> m(1, 8);
  m.at(0, 5) = 2.5f;
  const auto ell = EllpackMatrix<float>::from_dense(m);
  const auto packed = sparse::pack_ellpack(ell, /*b_pitch_bytes=*/256, /*pad_to=*/16);
  EXPECT_EQ(packed.slots_padded, 16u);
  EXPECT_EQ(packed.offsets[0], 5 * 256);
  EXPECT_FLOAT_EQ(packed.values[0], 2.5f);
  EXPECT_FLOAT_EQ(packed.values[1], 0.0f);  // padding
}

/// Kernel correctness across shapes and densities.
class EllpackKernel
    : public ::testing::TestWithParam<std::tuple<int /*rows*/, int /*k*/, int /*cols*/, int /*keep*/>> {};

TEST_P(EllpackKernel, MatchesReference) {
  const auto [rows, k, cols, keep] = GetParam();
  const auto dense = random_matrix<float>(static_cast<std::size_t>(rows),
                                          static_cast<std::size_t>(k), 99, -1.0f, 1.0f);
  const auto a = prune_unstructured(dense, static_cast<std::size_t>(keep));
  const auto b = random_matrix<float>(static_cast<std::size_t>(k),
                                      static_cast<std::size_t>(cols), 100, -1.0f, 1.0f);
  MainMemory mem;
  const EllpackRun run = prepare_ellpack(a, b, mem);
  Machine machine(run.program, mem);
  ASSERT_EQ(machine.run(100'000'000), StopReason::kEbreak);
  const auto c = read_c_ellpack(run, mem);
  const auto ref = sparse::matmul_reference(a, b);
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j)
      ASSERT_NEAR(c.at(i, j), ref.at(i, j), 2e-3) << i << "," << j;
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndDensities, EllpackKernel,
    ::testing::Values(std::make_tuple(4, 32, 16, 8),    // quarter density
                      std::make_tuple(4, 32, 16, 16),   // half density
                      std::make_tuple(7, 40, 33, 10),   // ragged everything
                      std::make_tuple(1, 64, 5, 4),     // tail-only columns
                      std::make_tuple(8, 16, 16, 16),   // fully dense rows
                      std::make_tuple(3, 48, 17, 1)),   // one nnz per row
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param)) + "_keep" +
             std::to_string(std::get<3>(info.param));
    });

TEST(Ellpack, StructuredKernelBeatsUnstructuredAtSameDensity) {
  // The motivating comparison: same per-row non-zero budget, structured
  // 1:4 via vindexmac vs unstructured via ELLPACK gather-style loads.
  const kernels::GemmDims dims{32, 128, 64};
  const timing::ProcessorConfig proc{};

  const auto problem = SpmmProblem::random(dims, sparse::kSparsity14, 17);
  const auto structured = run_exact(
      problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}}, proc);

  const auto dense = random_matrix<float>(dims.rows_a, dims.k, 18, -1.0f, 1.0f);
  const auto a_unstructured = prune_unstructured(dense, dims.k / 4);  // same density as 1:4
  const auto b = random_matrix<float>(dims.k, dims.cols_b, 19, -1.0f, 1.0f);
  MainMemory mem;
  const EllpackRun run = prepare_ellpack(a_unstructured, b, mem);
  timing::TimingSim sim(run.program, mem, proc);
  const auto& unstructured = sim.run();

  EXPECT_LT(structured.stats.cycles, unstructured.cycles);
}

}  // namespace
}  // namespace indexmac::core
