// JSON-subset parser: values, structure, stable dumping, and line-numbered
// error reporting.
#include "common/json.h"

#include <gtest/gtest.h>

#include "locale_test_util.h"

namespace indexmac {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-1.5e2").as_number(), -150.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const JsonValue doc = parse_json(R"({
    "name": "tiny",
    "unroll": [1, 2, 4],
    "nested": {"deep": [true, null]}
  })");
  EXPECT_EQ(doc.at("name").as_string(), "tiny");
  const auto& unroll = doc.at("unroll").as_array();
  ASSERT_EQ(unroll.size(), 3u);
  EXPECT_EQ(unroll[2].as_uint(), 4u);
  EXPECT_TRUE(doc.at("nested").at("deep").as_array()[1].is_null());
  EXPECT_EQ(doc.get("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), SimError);
}

TEST(Json, PreservesMemberOrder) {
  const JsonValue doc = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  const auto& members = doc.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0].first, "z");
  EXPECT_EQ(members[1].first, "a");
  EXPECT_EQ(members[2].first, "m");
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_THROW((void)parse_json("\"\\u0041\""), SimError);  // \u is unsupported
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW((void)parse_json(""), SimError);
  EXPECT_THROW((void)parse_json("{"), SimError);
  EXPECT_THROW((void)parse_json("[1,]"), SimError);
  EXPECT_THROW((void)parse_json("{\"a\": 1,}"), SimError);
  EXPECT_THROW((void)parse_json("{\"a\": 1} trailing"), SimError);
  EXPECT_THROW((void)parse_json("{'a': 1}"), SimError);
  EXPECT_THROW((void)parse_json("1.2.3"), SimError);
  EXPECT_THROW((void)parse_json("{\"a\": 1, \"a\": 2}"), SimError);  // duplicate key
  EXPECT_THROW((void)parse_json("\"unterminated"), SimError);
}

TEST(Json, ErrorsCarryLineNumbers) {
  try {
    (void)parse_json("{\n  \"a\": 1,\n  bogus\n}");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(Json, AsUintRejectsNonIntegers) {
  EXPECT_THROW((void)parse_json("1.5").as_uint(), SimError);
  EXPECT_THROW((void)parse_json("-1").as_uint(), SimError);
  EXPECT_EQ(parse_json("0").as_uint(), 0u);
}

TEST(Json, TypeMismatchesThrow) {
  EXPECT_THROW((void)parse_json("42").as_string(), SimError);
  EXPECT_THROW((void)parse_json("\"x\"").as_number(), SimError);
  EXPECT_THROW((void)parse_json("[1]").members(), SimError);
}

TEST(Json, DumpRoundTrips) {
  const std::string text = R"({
  "name": "t",
  "grid": [1, 2],
  "on": true,
  "ratio": 0.5,
  "none": null
})";
  const JsonValue doc = parse_json(text);
  const std::string dumped = doc.dump();
  // Dump parses back to an equivalent document, and dumping is a fixpoint.
  const JsonValue again = parse_json(dumped);
  EXPECT_EQ(again.dump(), dumped);
  EXPECT_EQ(again.at("grid").as_array()[1].as_uint(), 2u);
  EXPECT_DOUBLE_EQ(again.at("ratio").as_number(), 0.5);
}

TEST(Json, NumbersAreLocaleIndependent) {
  // std::stod/printf would honour a comma-decimal LC_NUMERIC: stod("0.5")
  // stops at the '.' and yields 0, silently truncating every fractional
  // spec constant. The charconv-based parser and dumper must not.
  testutil::ScopedCommaLocale locale;
  if (!locale.active()) GTEST_SKIP() << "no comma-decimal locale installed";
  const JsonValue doc = parse_json(R"({"ratio": 0.5, "tiny": 1.25e-3})");
  EXPECT_DOUBLE_EQ(doc.at("ratio").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(doc.at("tiny").as_number(), 1.25e-3);
  JsonValue out = JsonValue::make_object();
  out.set("ratio", JsonValue(0.5));
  EXPECT_EQ(out.dump(), "{\n  \"ratio\": 0.5\n}");
  // A comma can never sneak in as a decimal separator on input either.
  EXPECT_THROW((void)parse_json(R"({"x": 0,5})"), SimError);
}

TEST(Json, BuilderProducesStableText) {
  JsonValue obj = JsonValue::make_object();
  obj.set("b", JsonValue(1.0));
  obj.set("a", JsonValue(std::string("x")));
  JsonValue arr = JsonValue::make_array();
  arr.push_back(JsonValue(true));
  obj.set("list", std::move(arr));
  EXPECT_EQ(obj.dump(), "{\n  \"b\": 1,\n  \"a\": \"x\",\n  \"list\": [\n    true\n  ]\n}");
}

}  // namespace
}  // namespace indexmac
