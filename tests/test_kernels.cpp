// Functional correctness of the generated kernels: every algorithm,
// dataflow, unroll factor, sparsity and shape (including ragged tails) must
// reproduce the scalar reference SpMM bit-for-bit-close on the functional
// simulator.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/spmm_problem.h"
#include "fsim/machine.h"

namespace indexmac::core {
namespace {

using kernels::Dataflow;
using kernels::GemmDims;
using sparse::kSparsity14;
using sparse::kSparsity24;
using sparse::Sparsity;

/// Runs `config` on the functional simulator and compares against the
/// reference result.
void expect_correct(const SpmmProblem& problem, const RunConfig& config,
                    double tolerance = 2e-3) {
  MainMemory mem;
  const PreparedRun run = prepare(problem, config, mem);
  Machine machine(run.program, mem);
  const StopReason stop = machine.run(200'000'000);
  ASSERT_EQ(stop, StopReason::kEbreak) << "kernel did not halt";
  const auto c = read_c(run, mem);
  const auto ref = problem.reference();
  ASSERT_EQ(c.rows(), ref.rows());
  ASSERT_EQ(c.cols(), ref.cols());
  for (std::size_t i = 0; i < ref.rows(); ++i)
    for (std::size_t j = 0; j < ref.cols(); ++j)
      ASSERT_NEAR(c.at(i, j), ref.at(i, j), tolerance)
          << algorithm_name(config.algorithm) << " mismatch at (" << i << "," << j << ")";
}

TEST(Kernels, IndexmacSmallest) {
  const auto problem = SpmmProblem::random({1, 16, 16}, kSparsity14, 3);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                    .kernel = {.unroll = 1}});
}

TEST(Kernels, IndexmacSingleColumnOfB) {
  const auto problem = SpmmProblem::random({5, 32, 1}, kSparsity24, 4);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                    .kernel = {.unroll = 2}});
}

TEST(Kernels, IndexmacRowsNotMultipleOfUnroll) {
  const auto problem = SpmmProblem::random({7, 32, 20}, kSparsity24, 5);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                    .kernel = {.unroll = 4}});
}

TEST(Kernels, IndexmacKNotMultipleOfTile) {
  const auto problem = SpmmProblem::random({4, 23, 16}, kSparsity14, 6);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                    .kernel = {.unroll = 2}});
}

TEST(Kernels, Algorithm4Smallest) {
  const auto problem = SpmmProblem::random({1, 16, 16}, kSparsity14, 3);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac4,
                                    .kernel = {.unroll = 1}});
}

TEST(Kernels, Algorithm4RowsNotMultipleOfUnroll) {
  const auto problem = SpmmProblem::random({7, 32, 20}, kSparsity24, 5);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac4,
                                    .kernel = {.unroll = 4}});
}

TEST(Kernels, Algorithm4OddSlotCountUsesPackedTail) {
  // 3:8 with L=8 gives 3 slots per (row, k-tile): one dual-row MAC plus a
  // trailing single packed MAC.
  const auto problem = SpmmProblem::random({5, 48, 17}, Sparsity{3, 8}, 12);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac4,
                                    .kernel = {.unroll = 2},
                                    .tile_rows = 8});
}

TEST(Kernels, Algorithm4SingleSlotPerTile) {
  // L=4 at 1:4 leaves one slot per (row, k-tile): no dual-row MAC at all.
  const auto problem = SpmmProblem::random({3, 16, 16}, kSparsity14, 10);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac4,
                                    .kernel = {.unroll = 1},
                                    .tile_rows = 4});
}

TEST(Kernels, Algorithm4SmallerTile) {
  // L=8: the tile sits in v24..v31; packed nibbles must land there.
  const auto problem = SpmmProblem::random({6, 40, 24}, kSparsity24, 9);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac4,
                                    .kernel = {.unroll = 4},
                                    .tile_rows = 8});
}

TEST(Kernels, Algorithm4MarkersDoNotPerturbResults) {
  const auto problem = SpmmProblem::random({5, 32, 18}, kSparsity24, 11);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac4,
                                    .kernel = {.unroll = 4, .emit_markers = true}});
}

TEST(Kernels, Algorithm4IsBStationaryOnly) {
  kernels::SpmmLayout layout;  // never used: the check fires first
  EXPECT_THROW((void)kernels::emit_algorithm4(
                   layout, kernels::KernelOptions{.dataflow = Dataflow::kCStationary}),
               SimError);
}

TEST(Kernels, Algorithm4FootprintDropsIndexStripLoads) {
  AddressAllocator alloc;
  const auto layout = kernels::make_layout({8, 64, 32}, kSparsity14, 16, alloc);
  const auto fp3 = kernels::predict_indexmac_footprint(layout);
  const auto fp4 = kernels::predict_algorithm4_footprint(layout);
  EXPECT_EQ(fp4.macs, fp3.macs);
  EXPECT_EQ(fp4.vector_stores, fp3.vector_stores);
  // Alg4 replaces the per-row index strip vle32 with one scalar ld.
  const std::uint64_t strips = 2, ktiles = 4, rows = 8;
  EXPECT_EQ(fp3.vector_loads - fp4.vector_loads, strips * ktiles * rows);
  EXPECT_EQ(fp4.scalar_loads, strips * ktiles * rows);
  EXPECT_EQ(fp3.scalar_loads, 0u);
}

TEST(Kernels, SsrSmallest) {
  const auto problem = SpmmProblem::random({1, 16, 16}, kSparsity14, 3);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kSsr, .kernel = {.unroll = 1}});
}

TEST(Kernels, SsrRaggedShape) {
  const auto problem = SpmmProblem::random({9, 50, 33}, kSparsity24, 21);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kSsr, .kernel = {.unroll = 1}});
}

TEST(Kernels, SsrSmallerTile) {
  const auto problem = SpmmProblem::random({6, 40, 24}, kSparsity24, 9);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kSsr,
                                    .kernel = {.unroll = 1},
                                    .tile_rows = 8});
}

TEST(Kernels, SsrMarkersDoNotPerturbResults) {
  const auto problem = SpmmProblem::random({5, 32, 18}, kSparsity24, 11);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kSsr,
                                    .kernel = {.unroll = 1, .emit_markers = true}});
}

TEST(Kernels, SsrRejectsUnrollAboveOne) {
  // Streams deliver A strictly sequentially; row-group unrolling would
  // need the [ktile][row][slot] order interleaved, so the generator
  // documents unroll=1 only.
  const auto problem = SpmmProblem::random({2, 16, 16}, kSparsity14, 13);
  MainMemory mem;
  EXPECT_THROW(
      (void)prepare(problem,
                    RunConfig{.algorithm = Algorithm::kSsr, .kernel = {.unroll = 2}}, mem),
      SimError);
}

TEST(Kernels, SsrKernelIsBStationaryOnly) {
  kernels::SpmmLayout layout;  // never used: the check fires first
  EXPECT_THROW((void)kernels::emit_algorithm_ssr(
                   layout, kernels::KernelOptions{.dataflow = Dataflow::kCStationary}),
               SimError);
}

TEST(Kernels, SsrFootprintReplacesAStripLoadsWithStreamLines) {
  AddressAllocator alloc;
  const auto layout = kernels::make_layout({8, 64, 32}, kSparsity14, 16, alloc);
  const auto fp3 = kernels::predict_indexmac_footprint(layout);
  const auto fps = kernels::predict_ssr_footprint(layout);
  EXPECT_EQ(fps.macs, fp3.macs);
  EXPECT_EQ(fps.vector_stores, fp3.vector_stores);
  EXPECT_EQ(fps.scalar_loads, 0u);
  // Alg3 loads a value strip and an index strip per (strip, ktile, row);
  // the SSR kernel fetches each stream's 64-byte lines instead, re-walking
  // the window once per strip.
  const std::uint64_t strips = 2, ktiles = 4, rows = 8;
  const std::uint64_t words = layout.a_stream_words();
  const std::uint64_t lines_per_stream = (4 * words + 63) / 64;  // 64B-aligned base
  EXPECT_EQ(fp3.vector_loads - fps.vector_loads,
            2 * strips * ktiles * rows - 2 * strips * lines_per_stream);
}

TEST(Kernels, RowwiseSmallest) {
  const auto problem = SpmmProblem::random({1, 16, 16}, kSparsity14, 7);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm,
                                    .kernel = {.unroll = 1}});
}

TEST(Kernels, DenseRowwiseMatchesReference) {
  const auto problem = SpmmProblem::random({6, 40, 33}, kSparsity24, 8);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kDenseRowwise,
                                    .kernel = {.unroll = 1}});
}

TEST(Kernels, IndexmacSmallerTile) {
  // L=8: B tile occupies v24..v31; packing must target the same registers.
  const auto problem = SpmmProblem::random({6, 40, 24}, kSparsity24, 9);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                    .kernel = {.unroll = 4},
                                    .tile_rows = 8});
}

TEST(Kernels, IndexmacTileRowsFour) {
  const auto problem = SpmmProblem::random({3, 16, 16}, kSparsity14, 10);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                    .kernel = {.unroll = 1},
                                    .tile_rows = 4});
}

TEST(Kernels, MarkersDoNotPerturbResults) {
  const auto problem = SpmmProblem::random({5, 32, 18}, kSparsity24, 11);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                    .kernel = {.unroll = 4, .emit_markers = true}});
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm,
                                    .kernel = {.unroll = 4, .emit_markers = true}});
}

TEST(Kernels, Sparsity12And28) {
  for (const Sparsity sp : {Sparsity{1, 2}, Sparsity{2, 8}}) {
    const auto problem = SpmmProblem::random({5, 48, 17}, sp, 12);
    expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac,
                                      .kernel = {.unroll = 2}});
    expect_correct(problem, RunConfig{.algorithm = Algorithm::kRowwiseSpmm,
                                      .kernel = {.unroll = 2}});
  }
}

TEST(Kernels, DenseAlgorithmRejectsUnrollAboveOne) {
  const auto problem = SpmmProblem::random({2, 16, 16}, kSparsity14, 13);
  MainMemory mem;
  EXPECT_THROW((void)prepare(problem,
                             RunConfig{.algorithm = Algorithm::kDenseRowwise,
                                       .kernel = {.unroll = 2}},
                             mem),
               SimError);
}

TEST(Kernels, IndexmacKernelIsBStationaryOnly) {
  kernels::SpmmLayout layout;  // never used: the check fires first
  EXPECT_THROW((void)kernels::emit_indexmac_kernel(
                   layout, kernels::KernelOptions{.dataflow = Dataflow::kCStationary}),
               SimError);
}

TEST(Kernels, FootprintPredictionsDifferByBLoads) {
  AddressAllocator alloc;
  const auto layout = kernels::make_layout({8, 64, 32}, kSparsity14, 16, alloc);
  const auto fp3 = kernels::predict_indexmac_footprint(layout);
  const auto fp2 = kernels::predict_rowwise_footprint(layout);
  EXPECT_EQ(fp3.macs, fp2.macs);
  EXPECT_EQ(fp3.vector_stores, fp2.vector_stores);
  // Alg2 loads one B row per non-zero slot; Alg3 preloads L rows per tile.
  const std::uint64_t strips = 2, ktiles = 4, rows = 8, slots = 4;
  EXPECT_EQ(fp2.vector_loads - strips * ktiles * rows * slots + strips * ktiles * 16,
            fp3.vector_loads);
}

/// The main correctness sweep: algorithm x dataflow x unroll x sparsity
/// on a shape with ragged rows, k and columns (tail strip width 1).
struct SweepCase {
  Algorithm algorithm;
  Dataflow dataflow;
  unsigned unroll;
  Sparsity sp;
};

class KernelSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(KernelSweep, MatchesReferenceOnRaggedShape) {
  const SweepCase& c = GetParam();
  const auto problem = SpmmProblem::random({9, 50, 33}, c.sp, 21);
  expect_correct(problem, RunConfig{.algorithm = c.algorithm,
                                    .kernel = {.unroll = c.unroll, .dataflow = c.dataflow}});
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const Sparsity sp : {kSparsity14, kSparsity24})
    for (const unsigned unroll : {1u, 2u, 4u}) {
      cases.push_back({Algorithm::kIndexmac, Dataflow::kBStationary, unroll, sp});
      cases.push_back({Algorithm::kIndexmac4, Dataflow::kBStationary, unroll, sp});
      for (const Dataflow df :
           {Dataflow::kAStationary, Dataflow::kBStationary, Dataflow::kCStationary})
        cases.push_back({Algorithm::kRowwiseSpmm, df, unroll, sp});
    }
  return cases;
}

std::string sweep_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const SweepCase& c = info.param;
  std::string name = c.algorithm == Algorithm::kIndexmac    ? "indexmac"
                     : c.algorithm == Algorithm::kIndexmac4 ? "indexmac4"
                                                            : "rowwise";
  name += c.dataflow == Dataflow::kAStationary   ? "_Astat"
          : c.dataflow == Dataflow::kBStationary ? "_Bstat"
                                                 : "_Cstat";
  name += "_u" + std::to_string(c.unroll);
  name += "_" + std::to_string(c.sp.n) + "of" + std::to_string(c.sp.m);
  return name;
}

INSTANTIATE_TEST_SUITE_P(AlgorithmsDataflowsUnrolls, KernelSweep,
                         ::testing::ValuesIn(sweep_cases()), sweep_name);

/// Shape sweep for the proposed kernel: exercises every tail combination.
class IndexmacShapes
    : public ::testing::TestWithParam<std::tuple<int /*rows*/, int /*k*/, int /*cols*/>> {};

TEST_P(IndexmacShapes, MatchesReference) {
  const auto [rows, k, cols] = GetParam();
  const auto problem = SpmmProblem::random(
      {static_cast<std::size_t>(rows), static_cast<std::size_t>(k),
       static_cast<std::size_t>(cols)},
      kSparsity24, 31);
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac, .kernel = {.unroll = 4}});
  expect_correct(problem,
                 RunConfig{.algorithm = Algorithm::kRowwiseSpmm, .kernel = {.unroll = 4}});
  expect_correct(problem, RunConfig{.algorithm = Algorithm::kIndexmac4, .kernel = {.unroll = 4}});
}

INSTANTIATE_TEST_SUITE_P(
    TailCombinations, IndexmacShapes,
    ::testing::Values(std::make_tuple(8, 32, 32),    // everything aligned
                      std::make_tuple(8, 32, 31),    // column tail 15
                      std::make_tuple(8, 32, 17),    // column tail 1
                      std::make_tuple(8, 30, 32),    // k tail
                      std::make_tuple(9, 32, 32),    // row remainder 1
                      std::make_tuple(11, 32, 32),   // row remainder 3
                      std::make_tuple(3, 18, 19),    // everything ragged
                      std::make_tuple(1, 160, 16),   // many k-tiles
                      std::make_tuple(32, 16, 100)), // many strips
    [](const auto& info) {
      return "r" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param)) + "_c" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace indexmac::core
