// Experiment-runner tests: exact measurements behave sensibly (the
// headline speedup exists), the sampled estimator tracks exact runs, and
// memory-access accounting matches the analytic footprints.
#include <gtest/gtest.h>

#include "core/runner.h"
#include "core/spmm_problem.h"
#include "kernels/kernels.h"

namespace indexmac::core {
namespace {

using kernels::GemmDims;
using sparse::kSparsity14;
using sparse::kSparsity24;

const timing::ProcessorConfig kProc{};

RunConfig cfg(Algorithm alg, unsigned unroll = 4) {
  return RunConfig{.algorithm = alg, .kernel = {.unroll = unroll}};
}

TEST(Runner, ProposedBeatsRowwiseOnRepresentativeLayer) {
  // A mid-size layer-like GEMM; the paper reports 1.6x-2.15x.
  const GemmDims dims{32, 128, 64};
  for (const auto sp : {kSparsity14, kSparsity24}) {
    const auto problem = SpmmProblem::random(dims, sp, 5);
    const auto rowwise = run_exact(problem, cfg(Algorithm::kRowwiseSpmm), kProc);
    const auto proposed = run_exact(problem, cfg(Algorithm::kIndexmac), kProc);
    const double speedup = static_cast<double>(rowwise.stats.cycles) /
                           static_cast<double>(proposed.stats.cycles);
    EXPECT_GT(speedup, 1.2) << sp.n << ":" << sp.m;
    EXPECT_LT(speedup, 3.0) << sp.n << ":" << sp.m;
  }
}

TEST(Runner, ProposedEliminatesPerNonzeroLoads) {
  const GemmDims dims{16, 64, 32};
  const auto problem = SpmmProblem::random(dims, kSparsity14, 6);
  const auto rowwise = run_exact(problem, cfg(Algorithm::kRowwiseSpmm), kProc);
  const auto proposed = run_exact(problem, cfg(Algorithm::kIndexmac), kProc);
  EXPECT_LT(proposed.data_accesses(), rowwise.data_accesses());
  // Same multiply-accumulate work in both.
  EXPECT_EQ(proposed.stats.vector_macs, rowwise.stats.vector_macs);
}

TEST(Runner, DynamicCountsMatchAnalyticFootprints) {
  const GemmDims dims{12, 80, 40};
  for (const auto sp : {kSparsity14, kSparsity24}) {
    const auto problem = SpmmProblem::random(dims, sp, 7);
    AddressAllocator alloc;
    const auto layout = kernels::make_layout(dims, sp, 16, alloc);

    const auto proposed = run_exact(problem, cfg(Algorithm::kIndexmac), kProc);
    const auto fp3 = kernels::predict_indexmac_footprint(layout);
    EXPECT_EQ(proposed.stats.vector_loads, fp3.vector_loads);
    EXPECT_EQ(proposed.stats.vector_stores, fp3.vector_stores);
    EXPECT_EQ(proposed.stats.vector_macs, fp3.macs);

    const auto rowwise = run_exact(problem, cfg(Algorithm::kRowwiseSpmm), kProc);
    const auto fp2 = kernels::predict_rowwise_footprint(layout);
    EXPECT_EQ(rowwise.stats.vector_loads, fp2.vector_loads);
    EXPECT_EQ(rowwise.stats.vector_stores, fp2.vector_stores);
    EXPECT_EQ(rowwise.stats.vector_macs, fp2.macs);
  }
}

TEST(Runner, MemoryAccessReductionMatchesPaperArithmetic) {
  // Per row-strip visit: Row-Wise-SpMM makes 4+nnz accesses vs 4 for the
  // proposed kernel (plus amortized preload). For L=16: 1:4 -> ~50% fewer,
  // 2:4 -> ~65% fewer (paper Fig. 6 reports 48% and 65%).
  const GemmDims dims{64, 256, 64};
  for (const auto sp : {kSparsity14, kSparsity24}) {
    const auto problem = SpmmProblem::random(dims, sp, 8);
    const auto rowwise = run_exact(problem, cfg(Algorithm::kRowwiseSpmm), kProc);
    const auto proposed = run_exact(problem, cfg(Algorithm::kIndexmac), kProc);
    const double ratio = static_cast<double>(proposed.data_accesses()) /
                         static_cast<double>(rowwise.data_accesses());
    if (sp.n == 1)
      EXPECT_NEAR(ratio, 0.53, 0.06);  // ~50% reduction + preload overhead
    else
      EXPECT_NEAR(ratio, 0.37, 0.06);  // ~65% reduction
  }
}

TEST(Runner, SampledTracksExactOnModerateProblem) {
  // Cross-validation: the sampled estimator must stay within ~12% of the
  // exact simulation for both algorithms.
  const GemmDims dims{48, 96, 80};
  for (const auto sp : {kSparsity14, kSparsity24}) {
    for (const auto alg : {Algorithm::kIndexmac, Algorithm::kRowwiseSpmm}) {
      const auto problem = SpmmProblem::random(dims, sp, 9);
      const auto exact = run_exact(problem, cfg(alg), kProc);
      const auto sampled = run_sampled(dims, sp, cfg(alg), kProc);
      const double err = std::abs(sampled.cycles - static_cast<double>(exact.stats.cycles)) /
                         static_cast<double>(exact.stats.cycles);
      EXPECT_LT(err, 0.12) << algorithm_name(alg) << " " << sp.n << ":" << sp.m
                           << " sampled=" << sampled.cycles
                           << " exact=" << exact.stats.cycles;
      EXPECT_EQ(sampled.data_accesses, exact.data_accesses());
    }
  }
}

TEST(Runner, SampledSpeedupTracksExactSpeedup) {
  const GemmDims dims{40, 160, 49};  // ragged columns like late CNN layers
  const auto problem = SpmmProblem::random(dims, kSparsity14, 10);
  const auto exact2 = run_exact(problem, cfg(Algorithm::kRowwiseSpmm), kProc);
  const auto exact3 = run_exact(problem, cfg(Algorithm::kIndexmac), kProc);
  const auto samp2 = run_sampled(dims, kSparsity14, cfg(Algorithm::kRowwiseSpmm), kProc);
  const auto samp3 = run_sampled(dims, kSparsity14, cfg(Algorithm::kIndexmac), kProc);
  const double exact_speedup =
      static_cast<double>(exact2.stats.cycles) / static_cast<double>(exact3.stats.cycles);
  const double sampled_speedup = samp2.cycles / samp3.cycles;
  EXPECT_NEAR(sampled_speedup, exact_speedup, 0.18 * exact_speedup);
}

TEST(Runner, SampledRejectsUnsupportedConfigs) {
  RunConfig bad = cfg(Algorithm::kRowwiseSpmm);
  bad.kernel.dataflow = kernels::Dataflow::kCStationary;
  EXPECT_THROW((void)run_sampled({16, 32, 16}, kSparsity14, bad, kProc), SimError);
  EXPECT_THROW((void)run_sampled({16, 32, 16}, kSparsity14, cfg(Algorithm::kDenseRowwise), kProc),
               SimError);
}

TEST(Runner, SampledHandlesTailOnlyProblem) {
  // cols_b < 16: no full strips at all.
  const auto r = run_sampled({24, 64, 7}, kSparsity24, cfg(Algorithm::kIndexmac), kProc);
  EXPECT_GT(r.cycles, 0);
  EXPECT_GT(r.rowgroup_cycles_per_row, 0);
}

TEST(Runner, UnrollFourBeatsUnrollOne) {
  // The paper applies 4-way unrolling [17] to both kernels; it must help.
  const GemmDims dims{32, 96, 48};
  const auto problem = SpmmProblem::random(dims, kSparsity14, 11);
  for (const auto alg : {Algorithm::kIndexmac, Algorithm::kRowwiseSpmm}) {
    const auto u1 = run_exact(problem, cfg(alg, 1), kProc);
    const auto u4 = run_exact(problem, cfg(alg, 4), kProc);
    EXPECT_LT(u4.stats.cycles, u1.stats.cycles) << algorithm_name(alg);
  }
}

}  // namespace
}  // namespace indexmac::core
