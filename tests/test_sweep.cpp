// Sweep engine: spec parsing/validation, deterministic grid expansion,
// result-cache deduplication, and stable CSV/JSON report emission.
#include "core/sweep.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.h"
#include "core/rollup.h"
#include "core/runner.h"

namespace indexmac::core {
namespace {

constexpr const char* kTinySpec = R"({
  "name": "unit",
  "workloads": ["tiny"],
  "sparsities": ["1:4"],
  "algorithms": ["rowwise", "indexmac"],
  "unroll": [4],
  "mode": "exact",
  "seed": 7
})";

TEST(SweepSpec, ParsesFieldsAndDefaults) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  EXPECT_EQ(spec.name, "unit");
  ASSERT_EQ(spec.suites.size(), 1u);
  EXPECT_EQ(spec.suites[0], "tiny");
  ASSERT_EQ(spec.sparsities.size(), 1u);
  EXPECT_EQ(spec.sparsities[0], sparse::kSparsity14);
  EXPECT_EQ(spec.mode, SweepMode::kExact);
  EXPECT_EQ(spec.seed, 7u);
  // Defaults left untouched.
  EXPECT_EQ(spec.dataflows, std::vector<kernels::Dataflow>{kernels::Dataflow::kBStationary});
  EXPECT_EQ(spec.tile_rows, std::vector<unsigned>{16});

  const SweepSpec minimal = parse_sweep_spec(R"({"name": "m", "workloads": ["tiny"]})");
  EXPECT_EQ(minimal.mode, SweepMode::kSampled);
  EXPECT_TRUE(minimal.sparsities.empty());  // suite defaults apply at expansion
  ASSERT_EQ(minimal.algorithms.size(), 2u);
}

TEST(SweepSpec, RejectsBadDocuments) {
  // Unknown keys (typo protection), suites, algorithms, empty grids.
  EXPECT_THROW((void)parse_sweep_spec(R"({"name": "x", "workload": ["tiny"]})"), SimError);
  EXPECT_THROW((void)parse_sweep_spec(R"({"name": "x", "workloads": ["nope"]})"), SimError);
  EXPECT_THROW((void)parse_sweep_spec(R"({"name": "x", "workloads": []})"), SimError);
  EXPECT_THROW(
      (void)parse_sweep_spec(R"({"name": "x", "workloads": ["tiny"], "algorithms": ["fast"]})"),
      SimError);
  EXPECT_THROW(
      (void)parse_sweep_spec(R"({"name": "x", "workloads": ["tiny"], "mode": "bogus"})"),
      SimError);
  EXPECT_THROW(
      (void)parse_sweep_spec(R"({"name": "x", "workloads": ["tiny"], "dataflows": ["d"]})"),
      SimError);
  EXPECT_THROW((void)parse_sweep_spec(R"({"workloads": ["tiny"]})"), SimError);  // no name
  EXPECT_THROW((void)parse_sweep_spec_file("/nonexistent/spec.json"), SimError);
}

TEST(SweepSpec, ProcessorOverridesApply) {
  const SweepSpec spec = parse_sweep_spec(R"({
    "name": "p",
    "workloads": ["tiny"],
    "processor": {"vector.mac_latency": 9, "memory.dram_latency": 250}
  })");
  EXPECT_EQ(spec.processor.vector.mac_latency, 9u);
  EXPECT_EQ(spec.processor.memory.dram_latency, 250u);
  EXPECT_THROW((void)parse_sweep_spec(R"({
    "name": "p", "workloads": ["tiny"], "processor": {"warp.size": 32}
  })"),
               SimError);
}

TEST(SweepSpec, RejectsOutOfRangeGridValues) {
  // Values every kernel generator documents as unsupported fail at parse
  // time, before any simulation is spent.
  EXPECT_THROW(
      (void)parse_sweep_spec(R"({"name": "x", "workloads": ["tiny"], "unroll": [1, 8]})"),
      SimError);
  EXPECT_THROW(
      (void)parse_sweep_spec(R"({"name": "x", "workloads": ["tiny"], "unroll": [0]})"),
      SimError);
  EXPECT_THROW(
      (void)parse_sweep_spec(R"({"name": "x", "workloads": ["tiny"], "tile_rows": [32]})"),
      SimError);
  // The sampled runner documents sparse-kernels-only.
  EXPECT_THROW((void)parse_sweep_spec(
                   R"({"name": "x", "workloads": ["tiny"], "algorithms": ["dense"]})"),
               SimError);
  const SweepSpec dense_exact = parse_sweep_spec(
      R"({"name": "x", "workloads": ["tiny"], "algorithms": ["dense"], "mode": "exact"})");
  EXPECT_EQ(dense_exact.algorithms[0], Algorithm::kDenseRowwise);
}

TEST(SweepExpansion, SkipsStructurallyUnsupportedCells) {
  // A mixed ablation grid stays expressible: indexmac exists only
  // B-stationary and the dense baseline only at unroll 1 / one dataflow,
  // so those cells are dropped instead of aborting the sweep mid-run.
  const SweepSpec spec = parse_sweep_spec(R"({
    "name": "mixed",
    "workloads": ["tiny"],
    "sparsities": ["1:4"],
    "algorithms": ["rowwise", "indexmac", "dense"],
    "dataflows": ["a", "b", "c"],
    "unroll": [1, 4],
    "mode": "exact"
  })");
  const auto points = expand_sweep(spec);
  // Per workload: rowwise 3 dataflows x 2 unrolls + indexmac {b} x 2 +
  // dense {b} x {1} = 6 + 2 + 1 = 9; times 3 tiny workloads.
  ASSERT_EQ(points.size(), 27u);
  for (const SweepPoint& p : points) {
    if (p.config.algorithm == Algorithm::kIndexmac) {
      EXPECT_EQ(p.config.kernel.dataflow, kernels::Dataflow::kBStationary);
    }
    if (p.config.algorithm == Algorithm::kDenseRowwise) {
      EXPECT_EQ(p.config.kernel.unroll, 1u);
      EXPECT_EQ(p.config.kernel.dataflow, kernels::Dataflow::kBStationary);
    }
  }
  // The filtered grid runs to completion (this aborted mid-sweep before
  // cells were filtered).
  const SweepReport report = run_sweep(spec, 2);
  EXPECT_EQ(report.rows.size(), 27u);
}

TEST(SweepExpansion, Algorithm4ExpandsBStationaryOnly) {
  const SweepSpec spec = parse_sweep_spec(R"({
    "name": "alg4-mixed",
    "workloads": ["tiny"],
    "sparsities": ["1:4"],
    "algorithms": ["rowwise", "indexmac4"],
    "dataflows": ["a", "b", "c"],
    "unroll": [1, 4],
    "mode": "exact"
  })");
  const auto points = expand_sweep(spec);
  // Per workload: rowwise 3 dataflows x 2 unrolls + indexmac4 {b} x 2 = 8;
  // times 3 tiny workloads.
  ASSERT_EQ(points.size(), 24u);
  std::size_t alg4 = 0;
  for (const SweepPoint& p : points)
    if (p.config.algorithm == Algorithm::kIndexmac4) {
      ++alg4;
      EXPECT_EQ(p.config.kernel.dataflow, kernels::Dataflow::kBStationary);
    }
  EXPECT_EQ(alg4, 6u);
  const SweepReport report = run_sweep(spec, 2);
  EXPECT_EQ(report.rows.size(), 24u);
}

TEST(SweepExpansion, SsrExpandsBStationaryUnrollOneOnly) {
  // The streaming family's descriptor pins B-stationary / unroll 1; every
  // other cell of a mixed grid is skipped, not an error.
  const SweepSpec spec = parse_sweep_spec(R"({
    "name": "ssr-mixed",
    "workloads": ["tiny"],
    "sparsities": ["1:4"],
    "algorithms": ["rowwise", "ssr"],
    "dataflows": ["a", "b", "c"],
    "unroll": [1, 4],
    "mode": "exact"
  })");
  const auto points = expand_sweep(spec);
  // Per workload: rowwise 3 dataflows x 2 unrolls + ssr {b} x {1} = 7;
  // times 3 tiny workloads.
  ASSERT_EQ(points.size(), 21u);
  std::size_t ssr = 0;
  for (const SweepPoint& p : points)
    if (p.config.algorithm == Algorithm::kSsr) {
      ++ssr;
      EXPECT_EQ(p.config.kernel.dataflow, kernels::Dataflow::kBStationary);
      EXPECT_EQ(p.config.kernel.unroll, 1u);
    }
  EXPECT_EQ(ssr, 3u);
  const SweepReport report = run_sweep(spec, 2);
  EXPECT_EQ(report.rows.size(), 21u);
}

TEST(SweepExpansion, PreExpandedOverloadMatchesImplicitExpansion) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const auto points = expand_sweep(spec);
  BatchRunner pool(2);
  const SweepReport a = run_sweep(spec, pool);
  const SweepReport b = run_sweep(spec, points, pool);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  EXPECT_EQ(a.spec_hash, b.spec_hash);
  for (std::size_t i = 0; i < a.rows.size(); ++i)
    EXPECT_EQ(a.rows[i].cycles, b.rows[i].cycles);
}

TEST(SweepExpansion, DeterministicOrderAndCount) {
  const SweepSpec spec = parse_sweep_spec(R"({
    "name": "grid",
    "workloads": ["tiny"],
    "sparsities": ["1:4", "2:4"],
    "algorithms": ["rowwise", "indexmac"],
    "unroll": [1, 4],
    "mode": "exact"
  })");
  const auto points = expand_sweep(spec);
  // 3 workloads x 2 sparsities x 2 algorithms x 2 unrolls.
  ASSERT_EQ(points.size(), 24u);
  // Order: sparsity-major, then workload, algorithm, unroll.
  EXPECT_EQ(points[0].workload, "tiny.square");
  EXPECT_EQ(points[0].sp, sparse::kSparsity14);
  EXPECT_EQ(points[0].config.algorithm, Algorithm::kRowwiseSpmm);
  EXPECT_EQ(points[0].config.kernel.unroll, 1u);
  EXPECT_EQ(points[1].config.kernel.unroll, 4u);
  EXPECT_EQ(points[2].config.algorithm, Algorithm::kIndexmac);
  EXPECT_EQ(points[12].sp, sparse::kSparsity24);
  // Expansion is a pure function of the spec.
  const auto again = expand_sweep(spec);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].cache_key(spec), again[i].cache_key(spec));
}

TEST(SweepCacheKey, DistinguishesEveryKnob) {
  SweepSpec spec = parse_sweep_spec(kTinySpec);
  const auto points = expand_sweep(spec);
  SweepPoint p = points[0];
  const std::string base = p.cache_key(spec);

  SweepPoint q = p;
  q.dims.cols_b += 16;
  EXPECT_NE(q.cache_key(spec), base);
  q = p;
  q.sp = sparse::kSparsity24;
  EXPECT_NE(q.cache_key(spec), base);
  q = p;
  q.config.kernel.unroll = 2;
  EXPECT_NE(q.cache_key(spec), base);
  q = p;
  q.config.tile_rows = 8;
  EXPECT_NE(q.cache_key(spec), base);

  // Spec-level inputs the measurement depends on: seed and processor.
  SweepSpec other = spec;
  other.seed = 99;
  EXPECT_NE(p.cache_key(other), base);
  other = spec;
  other.processor.vector.mac_latency += 1;
  EXPECT_NE(p.cache_key(other), base);

  // Workload naming must NOT affect the key (identical shapes share runs).
  q = p;
  q.suite = "renamed";
  q.workload = "alias";
  EXPECT_EQ(q.cache_key(spec), base);
}

TEST(SweepRun, MatchesDirectRunnerResults) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const SweepReport report = run_sweep(spec, /*threads=*/2);
  ASSERT_EQ(report.rows.size(), 6u);  // 3 workloads x 2 algorithms
  EXPECT_EQ(report.spec_name, "unit");
  EXPECT_NE(report.spec_hash, 0u);
  for (const SweepRow& row : report.rows) {
    const auto problem = SpmmProblem::random(row.point.dims, row.point.sp, spec.seed);
    const auto exact = run_exact(problem, row.point.config, spec.processor);
    EXPECT_EQ(row.cycles, static_cast<double>(exact.stats.cycles)) << row.point.workload;
    EXPECT_EQ(row.data_accesses, exact.data_accesses()) << row.point.workload;
  }
}

TEST(SweepRun, CacheDeduplicatesWithinAndAcrossSweeps) {
  // Duplicate suite entry: every point appears twice, but each unique
  // measurement must be simulated exactly once.
  SweepSpec spec = parse_sweep_spec(kTinySpec);
  spec.suites = {"tiny", "tiny"};

  SweepCache cache;
  BatchRunner pool(2);
  const SweepReport first = run_sweep(spec, pool, &cache);
  ASSERT_EQ(first.rows.size(), 12u);
  EXPECT_EQ(cache.size(), 6u);  // unique measurements only
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(first.rows[i].cycles, first.rows[i + 6].cycles);
    EXPECT_EQ(first.rows[i].data_accesses, first.rows[i + 6].data_accesses);
  }

  // Re-running hits the cache for every unique key (no new entries) and
  // reproduces identical rows.
  const SweepReport second = run_sweep(spec, pool, &cache);
  EXPECT_EQ(cache.size(), 6u);
  EXPECT_GT(cache.hits(), 0u);
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (std::size_t i = 0; i < first.rows.size(); ++i)
    EXPECT_EQ(second.rows[i].cycles, first.rows[i].cycles);
  EXPECT_EQ(second.spec_hash, first.spec_hash);
}

TEST(SweepRun, SampledModeUsesSampleControls) {
  const SweepSpec spec = parse_sweep_spec(R"({
    "name": "sampled",
    "workloads": ["tiny"],
    "sparsities": ["1:4"],
    "algorithms": ["indexmac"],
    "mode": "sampled",
    "sample_rows": 8,
    "sample_full_strips": 2
  })");
  EXPECT_EQ(spec.sample.sample_rows, 8u);
  EXPECT_EQ(spec.sample.sample_full_strips, 2u);
  const SweepReport report = run_sweep(spec, /*threads=*/2);
  ASSERT_EQ(report.rows.size(), 3u);
  for (const SweepRow& row : report.rows) {
    EXPECT_GT(row.cycles, 0.0);
    EXPECT_GT(row.data_accesses, 0u);
    EXPECT_EQ(row.point.mode, SweepMode::kSampled);
  }
}

TEST(SweepReportFormats, CsvIsStableAndRoundTrips) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const SweepReport report = run_sweep(spec, 2);
  const std::string csv = report_to_csv(report);
  // Emission is deterministic.
  EXPECT_EQ(csv, report_to_csv(report));
  // Exact-mode cycles print as integers (no decimal point in the cycles
  // column; workload names legitimately contain dots).
  std::istringstream lines(csv);
  std::string line;
  std::getline(lines, line);  // comment
  std::getline(lines, line);  // header
  while (std::getline(lines, line)) {
    const std::size_t accesses_comma = line.rfind(',');
    const std::size_t cycles_comma = line.rfind(',', accesses_comma - 1);
    const std::string cycles = line.substr(cycles_comma + 1, accesses_comma - cycles_comma - 1);
    EXPECT_EQ(cycles.find('.'), std::string::npos) << line;
  }

  const SweepReport parsed = parse_csv_report(csv);
  EXPECT_EQ(parsed.spec_name, report.spec_name);
  EXPECT_EQ(parsed.spec_hash, report.spec_hash);
  ASSERT_EQ(parsed.rows.size(), report.rows.size());
  for (std::size_t i = 0; i < parsed.rows.size(); ++i) {
    EXPECT_EQ(parsed.rows[i].point.workload, report.rows[i].point.workload);
    EXPECT_EQ(parsed.rows[i].point.config.algorithm, report.rows[i].point.config.algorithm);
    EXPECT_EQ(parsed.rows[i].cycles, report.rows[i].cycles);
    EXPECT_EQ(parsed.rows[i].data_accesses, report.rows[i].data_accesses);
  }
  // The re-rendered parse is byte-identical: full round trip.
  EXPECT_EQ(report_to_csv(parsed), csv);
}

TEST(SweepReportFormats, JsonCarriesEveryRow) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const SweepReport report = run_sweep(spec, 2);
  const std::string json = report_to_json(report);
  const JsonValue doc = parse_json(json);
  EXPECT_EQ(doc.at("spec").as_string(), "unit");
  ASSERT_EQ(doc.at("rows").as_array().size(), report.rows.size());
  const JsonValue& row0 = doc.at("rows").as_array()[0];
  EXPECT_EQ(row0.at("workload").as_string(), report.rows[0].point.workload);
  EXPECT_DOUBLE_EQ(row0.at("cycles").as_number(), report.rows[0].cycles);
}

TEST(SweepReportFormats, ParserRejectsCorruptCsv) {
  EXPECT_THROW((void)parse_csv_report(""), SimError);
  EXPECT_THROW((void)parse_csv_report("not,a,header\n"), SimError);
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const std::string csv = report_to_csv(run_sweep(spec, 2));
  EXPECT_THROW((void)parse_csv_report(csv + "short,row\n"), SimError);
  EXPECT_THROW((void)parse_csv_report(csv + "a,b,1,x,1,1,1:4,rowwise,b,4,16,exact,1,1\n"),
               SimError);
  // Bad cycles fields fail with SimError, including from_chars-rejected
  // partial numbers.
  EXPECT_THROW((void)parse_csv_report(csv + "a,b,1,1,1,1,1:4,rowwise,b,4,16,exact,1x,1\n"),
               SimError);
  EXPECT_THROW((void)parse_csv_report(csv + "a,b,1,1,1,1,1:4,rowwise,b,4,16,exact,,1\n"),
               SimError);
}

TEST(SweepReportFormats, ParserRejectsCorruptHeaderHash) {
  // Regression: a truncated/garbled header hash used to escape as an
  // uncaught std::invalid_argument / std::out_of_range from std::stoull.
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const std::string csv = report_to_csv(run_sweep(spec, 2));
  const std::size_t hash_at = csv.find("hash=");
  ASSERT_NE(hash_at, std::string::npos);
  const std::size_t eol = csv.find('\n', hash_at);
  const auto with_hash = [&](const std::string& hash) {
    return csv.substr(0, hash_at + 5) + hash + csv.substr(eol);
  };
  for (const char* bad : {"", "zzzz", "12g4", "0x12", " 12",
                          "ffffffffffffffff1" /* 17 digits: used to out_of_range */})
    EXPECT_THROW((void)parse_csv_report(with_hash(bad)), SimError) << "hash=" << bad;
  // Shorter-than-16 but valid hex still parses (forward compat with
  // hand-written files).
  EXPECT_EQ(parse_csv_report(with_hash("ff")).spec_hash, 0xffu);
}

/// Synthetic measured row for rollup unit tests; everything not passed in
/// stays at the grouping defaults (2:4, b-stationary, unroll 4, L=16).
SweepRow rollup_row(const char* suite, const char* workload, unsigned count,
                    Algorithm algorithm, double cycles, std::uint64_t accesses) {
  SweepRow row;
  row.point.suite = suite;
  row.point.workload = workload;
  row.point.count = count;
  row.point.dims = {8, 16, 8};
  row.point.sp = sparse::kSparsity24;
  row.point.config.algorithm = algorithm;
  row.point.mode = SweepMode::kExact;
  row.cycles = cycles;
  row.data_accesses = accesses;
  return row;
}

TEST(Rollup, FoldsCountWeightedNetworkTotals) {
  SweepReport report;
  report.spec_name = "unit";
  report.spec_hash = 0x1234;
  // Two shapes of one network, multiplicities 3 and 2: the rollup answers
  // for all 5 layer instances.
  report.rows.push_back(rollup_row("net", "a", 3, Algorithm::kIndexmac, 100, 40));
  report.rows.push_back(rollup_row("net", "b", 2, Algorithm::kIndexmac, 50, 10));
  const RollupReport rollup = compute_rollup(report);
  EXPECT_EQ(rollup.spec_name, "unit");
  EXPECT_EQ(rollup.spec_hash, 0x1234u);
  ASSERT_EQ(rollup.rows.size(), 1u);
  const RollupRow& r = rollup.rows[0];
  EXPECT_EQ(r.suite, "net");
  EXPECT_EQ(r.layers, 5u);
  EXPECT_EQ(r.workloads, 2u);
  EXPECT_DOUBLE_EQ(r.cycles, 100.0 * 3 + 50.0 * 2);
  EXPECT_EQ(r.data_accesses, 40u * 3 + 10u * 2);
  EXPECT_EQ(r.energy_proxy_bytes(), (40u * 3 + 10u * 2) * 64);
}

TEST(Rollup, SplitsGroupsByEveryKeyField) {
  SweepReport report;
  report.rows.push_back(rollup_row("net", "a", 1, Algorithm::kIndexmac, 10, 1));
  report.rows.push_back(rollup_row("net", "a", 1, Algorithm::kRowwiseSpmm, 20, 2));
  SweepRow other_sp = rollup_row("net", "a", 1, Algorithm::kIndexmac, 30, 3);
  other_sp.point.sp = sparse::kSparsity14;
  report.rows.push_back(other_sp);
  SweepRow other_suite = rollup_row("net2", "a", 1, Algorithm::kIndexmac, 40, 4);
  report.rows.push_back(other_suite);
  SweepRow other_unroll = rollup_row("net", "a", 1, Algorithm::kIndexmac, 50, 5);
  other_unroll.point.config.kernel.unroll = 1;
  report.rows.push_back(other_unroll);
  const RollupReport rollup = compute_rollup(report);
  // Five rows, five distinct groups, first-occurrence order.
  ASSERT_EQ(rollup.rows.size(), 5u);
  EXPECT_EQ(rollup.rows[0].algorithm, Algorithm::kIndexmac);
  EXPECT_EQ(rollup.rows[1].algorithm, Algorithm::kRowwiseSpmm);
  EXPECT_EQ(rollup.rows[2].sp, sparse::kSparsity14);
  EXPECT_EQ(rollup.rows[3].suite, "net2");
  EXPECT_EQ(rollup.rows[4].unroll, 1u);
  for (const RollupRow& r : rollup.rows) EXPECT_EQ(r.workloads, 1u);
}

TEST(Rollup, CsvSectionAppendsAfterPointRowsAndParserStopsAtMarker) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const SweepReport report = run_sweep(spec, 2);
  const std::string plain_csv = report_to_csv(report);
  const std::string rollup_csv = rollup_to_csv(compute_rollup(report));
  // The section starts with the marker and renders deterministically.
  EXPECT_EQ(rollup_csv.rfind(kRollupMarkerPrefix, 0), 0u);
  EXPECT_EQ(rollup_csv, rollup_to_csv(compute_rollup(report)));
  // A rollup-bearing CSV parses to exactly the point rows: the parser
  // treats the marker as end-of-data, so merge/report/round-trip all keep
  // working on files written by `sweep --rollup`.
  const SweepReport parsed = parse_csv_report(plain_csv + rollup_csv);
  ASSERT_EQ(parsed.rows.size(), report.rows.size());
  EXPECT_EQ(report_to_csv(parsed), plain_csv);
}

TEST(Rollup, JsonReportCarriesRollupSection) {
  const SweepSpec spec = parse_sweep_spec(kTinySpec);
  const SweepReport report = run_sweep(spec, 2);
  const RollupReport rollup = compute_rollup(report);
  const std::string json = report_to_json_with_rollup(report, rollup);
  const JsonValue doc = parse_json(json);
  // The base document is unchanged — the rollup is purely additive.
  EXPECT_EQ(doc.at("spec").as_string(), "unit");
  EXPECT_EQ(doc.at("rows").as_array().size(), report.rows.size());
  const auto& rows = doc.at("rollup").as_array();
  ASSERT_EQ(rows.size(), rollup.rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].at("suite").as_string(), rollup.rows[i].suite);
    EXPECT_DOUBLE_EQ(rows[i].at("cycles").as_number(), rollup.rows[i].cycles);
    EXPECT_EQ(static_cast<std::uint64_t>(rows[i].at("energy_proxy_bytes").as_number()),
              rollup.rows[i].energy_proxy_bytes());
    EXPECT_EQ(static_cast<std::size_t>(rows[i].at("layers").as_number()),
              rollup.rows[i].layers);
  }
}

}  // namespace
}  // namespace indexmac::core
