#include <gtest/gtest.h>

#include "asm/text_assembler.h"
#include "common/error.h"
#include "isa/encoding.h"

namespace indexmac {
namespace {

using isa::Op;

TEST(TextAssembler, AssemblesSimpleProgram) {
  const auto out = assemble_text(R"(
    # compute 3 + 4
    li t0, 3
    li t1, 4
    add t2, t0, t1
    ebreak
  )");
  ASSERT_EQ(out.program.size(), 4u);
  EXPECT_EQ(out.program.decoded()[2].op, Op::kAdd);
  EXPECT_EQ(out.program.decoded()[2].rd, 7);  // t2 == x7
}

TEST(TextAssembler, LabelsAndBranches) {
  const auto out = assemble_text(R"(
    li t0, 10
loop:
    addi t0, t0, -1
    bne t0, zero, loop
    ebreak
  )");
  ASSERT_EQ(out.program.size(), 4u);
  EXPECT_EQ(out.program.decoded()[2].op, Op::kBne);
  EXPECT_EQ(out.program.decoded()[2].imm, -4);
  EXPECT_EQ(out.symbols.at("loop"), out.program.base() + 4);
}

TEST(TextAssembler, LabelOnSameLineAsInstruction) {
  const auto out = assemble_text("start: nop\n j start\n");
  EXPECT_EQ(out.symbols.at("start"), out.program.base());
  EXPECT_EQ(out.program.decoded()[1].imm, -4);
}

TEST(TextAssembler, VectorAndCustomInstructions) {
  const auto out = assemble_text(R"(
    vsetvli t0, t1, e32m1
    vle32.v v4, (a0)
    vmv.x.s t2, v8
    vindexmac.vx v2, v4, t2
    vfindexmac.vx v3, v5, t2
    vslide1down.vx v4, v4, zero
    vse32.v v2, (a1)
  )");
  const auto& d = out.program.decoded();
  EXPECT_EQ(d[0].op, Op::kVsetvli);
  EXPECT_EQ(d[1].op, Op::kVle32);
  EXPECT_EQ(d[2].op, Op::kVmvXS);
  EXPECT_EQ(d[3].op, Op::kVindexmacVx);
  EXPECT_EQ(d[3].rd, 2);
  EXPECT_EQ(d[3].rs2, 4);
  EXPECT_EQ(d[3].rs1, 7);  // t2
  EXPECT_EQ(d[4].op, Op::kVfindexmacVx);
  EXPECT_EQ(d[5].op, Op::kVslide1downVx);
  EXPECT_EQ(d[6].op, Op::kVse32);
}

TEST(TextAssembler, MemoryOperandsWithOffsets) {
  const auto out = assemble_text(R"(
    lw t0, 16(sp)
    sd t1, -8(s0)
    flw f1, 0(a2)
    fsw f1, 4(a2)
  )");
  const auto& d = out.program.decoded();
  EXPECT_EQ(d[0].imm, 16);
  EXPECT_EQ(d[0].rs1, 2);  // sp
  EXPECT_EQ(d[1].imm, -8);
  EXPECT_EQ(d[2].op, Op::kFlw);
  EXPECT_EQ(d[3].op, Op::kFsw);
}

TEST(TextAssembler, HexImmediates) {
  const auto out = assemble_text("li t0, 0x100\n");
  EXPECT_EQ(out.program.decoded()[0].imm, 0x100);
}

TEST(TextAssembler, CommentsAndBlankLines) {
  const auto out = assemble_text(R"(
    // C++-style comment
    # hash comment

    nop  # trailing comment
  )");
  EXPECT_EQ(out.program.size(), 1u);
}

TEST(TextAssembler, RoundTripsDisassembly) {
  // Every disassembled instruction must re-assemble to the same word.
  const auto original = assemble_text(R"(
    addi t0, zero, 100
    vsetvli t1, t0, e32m1
    vle32.v v1, (t2)
    vmacc.vx v2, t0, v1
    vfmacc.vf v3, f1, v1
    vindexmac.vx v2, v1, t0
    marker 7
    ebreak
  )");
  std::string text;
  for (const auto& inst : original.program.decoded()) text += isa::disassemble(inst) + "\n";
  // Re-assembly: vsetvli prints its vtype numerically, which is accepted.
  const auto again = assemble_text(text);
  EXPECT_EQ(again.program.words(), original.program.words());
}

TEST(TextAssembler, ErrorsCarryLineNumbers) {
  try {
    (void)assemble_text("nop\nbogus t0, t1\n");
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TextAssembler, UnknownMnemonicThrows) {
  EXPECT_THROW((void)assemble_text("frobnicate x1, x2\n"), SimError);
}

TEST(TextAssembler, WrongOperandCountThrows) {
  EXPECT_THROW((void)assemble_text("add x1, x2\n"), SimError);
}

TEST(TextAssembler, WrongRegisterFileThrows) {
  EXPECT_THROW((void)assemble_text("add x1, v2, x3\n"), SimError);
  EXPECT_THROW((void)assemble_text("vindexmac.vx x1, v2, x3\n"), SimError);
}

TEST(TextAssembler, UndefinedLabelThrows) {
  EXPECT_THROW((void)assemble_text("j nowhere\n"), SimError);
}

TEST(TextAssembler, DuplicateLabelThrows) {
  EXPECT_THROW((void)assemble_text("a:\nnop\na:\n"), SimError);
}

TEST(TextAssembler, UnsupportedVtypeThrows) {
  EXPECT_THROW((void)assemble_text("vsetvli t0, t1, e64m1\n"), SimError);
}

TEST(TextAssembler, AbiNamesCoverAllRegisters) {
  const auto out = assemble_text(R"(
    add zero, ra, sp
    add gp, tp, t0
    add t1, t2, s0
    add fp, s1, a0
    add a1, a2, a3
    add a4, a5, a6
    add a7, s2, s3
    add s4, s5, s6
    add s7, s8, s9
    add s10, s11, t3
    add t4, t5, t6
  )");
  const auto& d = out.program.decoded();
  EXPECT_EQ(d[0].rd, 0);
  EXPECT_EQ(d[0].rs1, 1);
  EXPECT_EQ(d[0].rs2, 2);
  EXPECT_EQ(d[10].rd, 29);
  EXPECT_EQ(d[10].rs1, 30);
  EXPECT_EQ(d[10].rs2, 31);
}

}  // namespace
}  // namespace indexmac
