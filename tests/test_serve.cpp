// Distributed sweep orchestrator: scheduler lease/steal/duplicate state
// machine, wire-protocol framing and exact numeric round trips, and
// in-process daemon+worker end-to-end runs over loopback — including the
// chaos variants (mid-record connection drop, heartbeat stall past the
// lease deadline) and the byte-identity contract against a single-process
// `run_sweep` of the same spec.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/result_store.h"
#include "core/sweep.h"
#include "serve/daemon.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/worker.h"

namespace indexmac::serve {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// 3 tiny workloads x 2 algorithms = 6 exact points; small enough that a
/// full distributed run is cheap, structured enough that report
/// byte-identity is a real check.
constexpr const char* kUnitSpec = R"({
  "name": "serve-unit",
  "workloads": ["tiny"],
  "sparsities": ["1:4"],
  "algorithms": ["rowwise", "indexmac"],
  "unroll": [4],
  "mode": "exact",
  "seed": 7
})";

std::string write_spec(const std::string& dir) {
  const std::string path = dir + "/spec.json";
  std::ofstream out(path, std::ios::binary);
  out << kUnitSpec;
  out.close();
  return path;
}

std::string reference_csv() {
  const core::SweepSpec spec = core::parse_sweep_spec(kUnitSpec);
  return core::report_to_csv(core::run_sweep(spec, /*threads=*/1));
}

// --- scheduler ------------------------------------------------------------

TEST(Scheduler, GrantsBatchesAndDrainsWhenEverythingIsLeased) {
  Scheduler s(5, {.lease_ms = 100, .batch = 4});
  const Lease a = s.grant(/*worker=*/1, /*now_ms=*/0);
  EXPECT_EQ(a.points, (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(a.deadline_ms, 100u);
  const Lease b = s.grant(2, 0);
  EXPECT_EQ(b.points, (std::vector<std::uint32_t>{4}));
  EXPECT_NE(a.id, b.id);
  // Everything is leased out: a third worker drains.
  EXPECT_TRUE(s.grant(3, 0).points.empty());
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.leased(), 5u);
  EXPECT_FALSE(s.done());
}

TEST(Scheduler, CompletionShrinksLeasesAndFinishesTheGrid) {
  Scheduler s(2, {.lease_ms = 100, .batch = 4});
  (void)s.grant(1, 0);
  EXPECT_TRUE(s.complete(0));
  EXPECT_FALSE(s.complete(0));  // duplicate is a no-op
  EXPECT_EQ(s.duplicate_completions(), 1u);
  EXPECT_TRUE(s.complete(1));
  EXPECT_TRUE(s.done());
  EXPECT_EQ(s.leased(), 0u);  // fully-completed leases are erased
  EXPECT_THROW((void)s.complete(2), SimError);
}

TEST(Scheduler, ExpiredLeaseIsStolenByTheNextWorker) {
  Scheduler s(3, {.lease_ms = 100, .batch = 2});
  const Lease doomed = s.grant(1, 0);
  EXPECT_EQ(doomed.points, (std::vector<std::uint32_t>{0, 1}));
  EXPECT_TRUE(s.complete(0));  // one of the two lands before the crash
  EXPECT_EQ(s.expire(99), 0u);  // not yet
  EXPECT_EQ(s.expire(101), 1u);  // only the unfinished point re-queues
  EXPECT_EQ(s.expired_leases(), 1u);
  // Stolen work comes back FIRST: the oldest stranded point precedes the
  // never-leased tail of the queue.
  const Lease stolen = s.grant(2, 150);
  EXPECT_EQ(stolen.points, (std::vector<std::uint32_t>{1, 2}));
  // The dead worker's late heartbeat no longer refers to anything.
  EXPECT_FALSE(s.heartbeat(doomed.id, 160));
  EXPECT_TRUE(s.heartbeat(stolen.id, 160));
}

TEST(Scheduler, HeartbeatExtendsTheDeadline) {
  Scheduler s(1, {.lease_ms = 100, .batch = 1});
  const Lease lease = s.grant(1, 0);
  EXPECT_TRUE(s.heartbeat(lease.id, 90));
  EXPECT_EQ(s.expire(150), 0u);  // deadline moved to 190
  EXPECT_EQ(s.expire(191), 1u);
}

TEST(Scheduler, ReleaseWorkerRequeuesAllItsLeases) {
  Scheduler s(4, {.lease_ms = 100, .batch = 1});
  (void)s.grant(7, 0);
  (void)s.grant(7, 0);
  (void)s.grant(8, 0);
  EXPECT_EQ(s.release_worker(7), 2u);
  EXPECT_EQ(s.leased(), 1u);
  EXPECT_EQ(s.pending(), 3u);
  EXPECT_EQ(s.release_worker(7), 0u);  // idempotent
}

TEST(Scheduler, PreloadedPointsNeverLease) {
  Scheduler s(3, {.lease_ms = 100, .batch = 8});
  s.preload_complete(1);
  EXPECT_EQ(s.completed(), 1u);
  const Lease lease = s.grant(1, 0);
  EXPECT_EQ(lease.points, (std::vector<std::uint32_t>{0, 2}));
  EXPECT_FALSE(s.next_deadline_ms() == std::nullopt);
}

TEST(Scheduler, StolenPointCompletedByOriginalWorkerReconciles) {
  Scheduler s(1, {.lease_ms = 100, .batch = 1});
  const Lease original = s.grant(1, 0);
  EXPECT_EQ(s.expire(200), 1u);
  const Lease thief = s.grant(2, 200);
  EXPECT_EQ(thief.points, original.points);
  // The original (slow, not dead) worker reports first; the thief's later
  // completion is the duplicate.
  EXPECT_TRUE(s.complete(original.points[0]));
  EXPECT_FALSE(s.complete(thief.points[0]));
  EXPECT_TRUE(s.done());
}

// --- protocol -------------------------------------------------------------

TEST(Protocol, FrameBufferReassemblesByteAtATime) {
  const JsonValue msg = make_ack(41);
  const std::string frame = encode_frame(msg);
  FrameBuffer buffer;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    buffer.feed(frame.data() + i, 1);
    EXPECT_EQ(buffer.next(), std::nullopt);
  }
  buffer.feed(frame.data() + frame.size() - 1, 1);
  const std::optional<std::string> payload = buffer.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(message_type(parse_json(*payload)), "ack");
  EXPECT_EQ(buffer.pending_bytes(), 0u);
}

TEST(Protocol, FrameBufferYieldsCoalescedFramesInOrder) {
  const std::string two = encode_frame(make_drain()) + encode_frame(make_complete());
  FrameBuffer buffer;
  buffer.feed(two.data(), two.size());
  EXPECT_EQ(message_type(parse_json(*buffer.next())), "drain");
  EXPECT_EQ(message_type(parse_json(*buffer.next())), "complete");
  EXPECT_EQ(buffer.next(), std::nullopt);
}

TEST(Protocol, OversizedLengthPrefixIsRejectedNotBuffered) {
  FrameBuffer buffer;
  const char huge[4] = {'\xff', '\xff', '\xff', '\x7f'};
  buffer.feed(huge, 4);
  EXPECT_THROW((void)buffer.next(), SimError);
}

TEST(Protocol, CyclesCrossTheWireBitExact) {
  // A value a 10-significant-digit JSON double would mangle.
  const double cycles = 12345678.000000191;
  const JsonValue msg = make_result(/*lease=*/9, /*point=*/3, cycles, /*accesses=*/
                                    18446744073709551615ull);
  const ResultFields f = parse_result(parse_json(encode_frame(msg).substr(4)));
  EXPECT_EQ(f.lease, 9u);
  EXPECT_EQ(f.point, 3u);
  EXPECT_EQ(f.cycles, cycles);  // exact, not approximate
  EXPECT_EQ(f.accesses, 18446744073709551615ull);  // u64 max survives too
}

TEST(Protocol, HexAndDecHelpersRejectGarbage) {
  EXPECT_EQ(hex_to_u64(u64_to_hex(0xdeadbeefcafef00dull)), 0xdeadbeefcafef00dull);
  EXPECT_EQ(dec_to_u64(u64_to_dec(0)), 0u);
  EXPECT_THROW((void)hex_to_u64("deadbeef"), SimError);       // not 16 digits
  EXPECT_THROW((void)hex_to_u64("zzzzzzzzzzzzzzzz"), SimError);
  EXPECT_THROW((void)dec_to_u64(""), SimError);
  EXPECT_THROW((void)dec_to_u64("12x"), SimError);
  EXPECT_THROW((void)dec_to_u64("99999999999999999999999"), SimError);  // overflow
}

TEST(Protocol, WelcomeCarriesTheSpecVerbatim) {
  const JsonValue msg = make_welcome("s", 42, 0x069283d8a1f9a820ull, kUnitSpec);
  const WelcomeFields w = parse_welcome(parse_json(encode_frame(msg).substr(4)));
  EXPECT_EQ(w.spec_name, "s");
  EXPECT_EQ(w.points, 42u);
  EXPECT_EQ(w.grid_hash, 0x069283d8a1f9a820ull);
  EXPECT_EQ(w.spec_text, kUnitSpec);  // byte-for-byte, whitespace included
}

TEST(Protocol, RecvMessageTimesOutAndDetectsEof) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  Socket a(fds[0]);
  Socket b(fds[1]);
  FrameBuffer buffer;
  EXPECT_EQ(recv_message(b, buffer, /*timeout_ms=*/10), std::nullopt);  // silence
  send_message(a, make_heartbeat(5));
  const std::optional<JsonValue> msg = recv_message(b, buffer, 1000);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(message_type(*msg), "heartbeat");
  a.close();
  EXPECT_THROW((void)recv_message(b, buffer, 1000), NetError);  // EOF
}

TEST(Net, ConnectToClosedPortIsRetryableNetError) {
  std::uint16_t dead_port = 0;
  {
    Listener probe(0);  // grab an ephemeral port, then free it
    dead_port = probe.port();
  }
  EXPECT_THROW((void)connect_ipv4("127.0.0.1", dead_port), NetError);
  EXPECT_THROW((void)connect_ipv4("not-an-address", 1), SimError);
}

// --- end to end -----------------------------------------------------------

/// Runs a daemon thread plus `workers` worker threads to completion and
/// returns the daemon's report (written to disk) as a string.
struct E2eResult {
  int daemon_exit = -1;
  std::vector<int> worker_exits;
  std::string csv;
};

E2eResult run_cluster(const std::string& dir, std::vector<WorkerOptions> workers,
                      ServeOptions opts) {
  opts.spec_path = write_spec(dir);
  if (opts.store_dir.empty()) opts.store_dir = dir + "/store";
  opts.out_path = dir + "/report.csv";
  opts.progress_ms = 50;
  opts.grace_ms = 200;
  std::atomic<int> bound_port{0};
  opts.bound_port = &bound_port;

  E2eResult out;
  out.worker_exits.assign(workers.size(), -1);
  std::thread daemon([&] { out.daemon_exit = run_daemon(opts); });
  while (bound_port.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(5));

  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].port = static_cast<std::uint16_t>(bound_port.load());
    workers[i].quiet = true;
    threads.emplace_back([&out, i, w = workers[i]] { out.worker_exits[i] = run_worker(w); });
  }
  for (std::thread& t : threads) t.join();
  daemon.join();
  out.csv = read_file(opts.out_path);
  return out;
}

TEST(ServeE2e, TwoWorkersProduceTheSingleProcessReportByteForByte) {
  const std::string dir = fresh_dir("e2e");
  WorkerOptions w0;
  w0.name = "w0";
  WorkerOptions w1;
  w1.name = "w1";
  const E2eResult r = run_cluster(dir, {w0, w1}, {});
  EXPECT_EQ(r.daemon_exit, 0);
  EXPECT_EQ(r.worker_exits, (std::vector<int>{0, 0}));
  EXPECT_EQ(r.csv, reference_csv());

  // Re-query: the journal now covers the spec, so a second daemon run
  // completes with zero simulations and no workers at all.
  ServeOptions again;
  again.spec_path = dir + "/spec.json";
  again.store_dir = dir + "/store";
  again.out_path = dir + "/requery.csv";
  {
    core::ResultStore probe(again.store_dir);
    EXPECT_EQ(probe.loaded(), 6u);
  }
  EXPECT_EQ(run_daemon(again), 0);
  EXPECT_EQ(read_file(again.out_path), reference_csv());
}

TEST(ServeE2e, MidRecordConnectionDropIsRetransparentlyRecovered) {
  const std::string dir = fresh_dir("drop");
  WorkerOptions w;
  w.name = "dropper";
  w.chaos.drop_after = 2;  // third result: half a frame, then a dead socket
  w.backoff_base_ms = 10;
  const E2eResult r = run_cluster(dir, {w}, {});
  EXPECT_EQ(r.daemon_exit, 0);
  EXPECT_EQ(r.worker_exits, (std::vector<int>{0}));
  EXPECT_EQ(r.csv, reference_csv());
}

TEST(ServeE2e, HeartbeatStallLosesTheLeaseButTheGridStillCompletes) {
  const std::string dir = fresh_dir("stall");
  WorkerOptions w;
  w.name = "staller";
  w.chaos.stall_after = 0;   // stall right after the first result...
  w.chaos.stall_ms = 700;    // ...long past the lease deadline below
  ServeOptions opts;
  opts.scheduler.lease_ms = 200;
  opts.scheduler.batch = 3;
  const E2eResult r = run_cluster(dir, {w}, opts);
  EXPECT_EQ(r.daemon_exit, 0);
  EXPECT_EQ(r.worker_exits, (std::vector<int>{0}));
  EXPECT_EQ(r.csv, reference_csv());
  // The stalled lease really expired: its surviving points were re-queued
  // and the worker's post-stall completions reconciled as duplicates or
  // re-leases — either way the journal holds exactly one record per point.
  core::ResultStore store(dir + "/store");
  EXPECT_EQ(store.size(), 6u);
}

TEST(ServeE2e, PartialStoreIsPreloadedAndOnlyMissingPointsSimulate) {
  const std::string dir = fresh_dir("preload");
  const core::SweepSpec spec = core::parse_sweep_spec(kUnitSpec);
  const std::vector<core::SweepPoint> points = core::expand_sweep(spec);
  const std::vector<std::string> keys = core::grid_keys(spec, points);
  const core::SweepReport full = core::run_sweep(spec, /*threads=*/1);
  {
    // Seed the store with half the grid, as an interrupted run would.
    core::ResultStore store(dir + "/store");
    for (std::size_t i = 0; i < keys.size(); i += 2)
      store.put(keys[i], {full.rows[i].cycles, full.rows[i].data_accesses});
  }
  WorkerOptions w;
  w.name = "w0";
  ServeOptions opts;
  opts.store_dir = dir + "/store";
  const E2eResult r = run_cluster(dir, {w}, opts);
  EXPECT_EQ(r.daemon_exit, 0);
  EXPECT_EQ(r.csv, reference_csv());
  core::ResultStore store(dir + "/store");
  EXPECT_EQ(store.loaded(), 6u);  // 3 preloaded + 3 simulated
}

TEST(ServeE2e, StopFlagDrainsAndExitsResumable) {
  const std::string dir = fresh_dir("stop");
  ServeOptions opts;
  opts.spec_path = write_spec(dir);
  opts.store_dir = dir + "/store";
  opts.out_path = dir + "/report.csv";
  std::atomic<bool> stop{true};  // requested before any worker exists
  opts.stop = &stop;
  std::atomic<int> bound_port{0};
  opts.bound_port = &bound_port;
  EXPECT_EQ(run_daemon(opts), 130);
  EXPECT_FALSE(fs::exists(opts.out_path));  // no report for a partial grid
}

TEST(ServeE2e, WallClockGuardAborts) {
  const std::string dir = fresh_dir("wall");
  ServeOptions opts;
  opts.spec_path = write_spec(dir);
  opts.store_dir = dir + "/store";
  opts.out_path = dir + "/report.csv";
  opts.wall_ms = 1;
  EXPECT_EQ(run_daemon(opts), 3);
  EXPECT_FALSE(fs::exists(opts.out_path));
}

TEST(ServeE2e, WorkerGivesUpWithoutADaemon) {
  std::uint16_t dead_port = 0;
  {
    Listener probe(0);
    dead_port = probe.port();
  }
  WorkerOptions w;
  w.name = "orphan";
  w.port = dead_port;
  w.quiet = true;
  w.backoff_base_ms = 5;
  w.backoff_cap_ms = 20;
  w.give_up_ms = 100;
  EXPECT_EQ(run_worker(w), 3);
}

TEST(ServeE2e, WorkerStopFlagInterrupts) {
  std::uint16_t dead_port = 0;
  {
    Listener probe(0);
    dead_port = probe.port();
  }
  WorkerOptions w;
  w.name = "stopped";
  w.port = dead_port;
  w.quiet = true;
  std::atomic<bool> stop{true};
  w.stop = &stop;
  EXPECT_EQ(run_worker(w), 130);
}

// --- graceful sweep cancellation (the non-distributed satellite) ----------

TEST(SweepCancel, PresetCancelSkipsEverythingButJournalsNothingWrong) {
  const std::string dir = fresh_dir("cancel");
  const core::SweepSpec spec = core::parse_sweep_spec(kUnitSpec);
  const std::vector<core::SweepPoint> points = core::expand_sweep(spec);
  core::ResultStore store(dir + "/store");
  core::SweepCache cache;
  cache.attach_store(store, /*preload=*/true);
  core::BatchRunner pool(1);
  std::atomic<bool> cancel{true};
  EXPECT_THROW((void)core::run_sweep(spec, points, pool, &cache, &cancel),
               core::BatchCancelled);
  // Nothing ran, nothing was journaled — and the store is still a valid
  // resume base: clearing the flag completes the remaining (all) points.
  EXPECT_EQ(store.appended(), 0u);
  cancel.store(false);
  const core::SweepReport resumed = core::run_sweep(spec, points, pool, &cache, &cancel);
  EXPECT_EQ(core::report_to_csv(resumed), reference_csv());
  EXPECT_EQ(store.appended(), 6u);
}

TEST(SweepCancel, NullCancelBehavesExactlyAsBefore) {
  const core::SweepSpec spec = core::parse_sweep_spec(kUnitSpec);
  const std::vector<core::SweepPoint> points = core::expand_sweep(spec);
  core::BatchRunner pool(2);
  const core::SweepReport report = core::run_sweep(spec, points, pool, nullptr, nullptr);
  EXPECT_EQ(core::report_to_csv(report), reference_csv());
}

}  // namespace
}  // namespace indexmac::serve
