// Persistent result store: journal round trips, crash recovery (truncated
// and corrupted tails), format guards, write-through sweep caching,
// resume-after-kill, and digest sharding + merge byte-identity.
#include "core/result_store.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/bitutil.h"
#include "core/sweep.h"

namespace indexmac::core {
namespace {

namespace fs = std::filesystem;

/// A per-test store directory, wiped before use so stale journals from a
/// previous run can never leak into counters.
std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("result_store_" + name);
  fs::remove_all(dir);
  return dir.string();
}

std::string journal_of(const std::string& dir) {
  return (fs::path(dir) / ResultStore::kJournalName).string();
}

std::vector<char> read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_bytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

constexpr const char* kUnitSpec = R"({
  "name": "unit",
  "workloads": ["tiny"],
  "sparsities": ["1:4"],
  "algorithms": ["rowwise", "indexmac"],
  "unroll": [4],
  "mode": "exact",
  "seed": 7
})";

TEST(ResultStore, RoundTripsAcrossReopen) {
  const std::string dir = fresh_dir("roundtrip");
  {
    ResultStore store(dir);
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.loaded(), 0u);
    store.put("alpha", {123.0, 456});
    store.put("beta", {0.125, 7});        // fractional cycles stay bit-exact
    store.put("gamma", {1e18, 99});       // beyond uint64-exact double range
    EXPECT_EQ(store.appended(), 3u);
  }
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.size(), 3u);
  EXPECT_EQ(reopened.loaded(), 3u);
  EXPECT_EQ(reopened.appended(), 0u);
  EXPECT_EQ(reopened.dropped_bytes(), 0u);
  ASSERT_NE(reopened.find("beta"), nullptr);
  EXPECT_EQ(reopened.find("beta")->cycles, 0.125);
  EXPECT_EQ(reopened.find("beta")->data_accesses, 7u);
  EXPECT_EQ(reopened.find("gamma")->cycles, 1e18);
  EXPECT_EQ(reopened.find("missing"), nullptr);
}

TEST(ResultStore, RePutSemantics) {
  ResultStore store(fresh_dir("reput"));
  store.put("key", {10.0, 20});
  store.put("key", {10.0, 20});  // identical: no-op, not a second record
  EXPECT_EQ(store.appended(), 1u);
  EXPECT_THROW(store.put("key", {11.0, 20}), SimError);  // drifted result
  EXPECT_THROW(store.put("", {1.0, 1}), SimError);       // empty key
}

TEST(ResultStore, TruncatedTailIsRecoveredAndAppendable) {
  const std::string dir = fresh_dir("truncated");
  {
    ResultStore store(dir);
    store.put("first", {1.0, 1});
    store.put("second", {2.0, 2});
    store.put("third", {3.0, 3});
  }
  // Simulate a kill mid-append: cut into the last record.
  std::vector<char> bytes = read_bytes(journal_of(dir));
  bytes.resize(bytes.size() - 5);
  write_bytes(journal_of(dir), bytes);

  {
    ResultStore store(dir);
    EXPECT_EQ(store.loaded(), 2u);
    EXPECT_GT(store.dropped_bytes(), 0u);
    EXPECT_EQ(store.find("third"), nullptr);
    ASSERT_NE(store.find("second"), nullptr);
    store.put("third", {3.0, 3});  // the journal stays appendable after recovery
  }
  ResultStore again(dir);
  EXPECT_EQ(again.loaded(), 3u);
  EXPECT_EQ(again.dropped_bytes(), 0u);
}

TEST(ResultStore, CorruptPayloadDropsTheTail) {
  const std::string dir = fresh_dir("corrupt");
  {
    ResultStore store(dir);
    store.put("first", {1.0, 1});
    store.put("second", {2.0, 2});
  }
  std::vector<char> bytes = read_bytes(journal_of(dir));
  bytes[bytes.size() - 3] ^= 0x40;  // flip a bit inside the last payload
  write_bytes(journal_of(dir), bytes);

  ResultStore store(dir);
  EXPECT_EQ(store.loaded(), 1u);
  EXPECT_GT(store.dropped_bytes(), 0u);
  ASSERT_NE(store.find("first"), nullptr);
  EXPECT_EQ(store.find("second"), nullptr);
}

TEST(ResultStore, ForeignOrDamagedHeaderRaisesSimError) {
  // A file that is not a journal at all.
  const std::string text_dir = fresh_dir("foreign");
  fs::create_directories(text_dir);
  {
    std::ofstream out(journal_of(text_dir));
    out << "suite,workload,cycles\n";
  }
  EXPECT_THROW(ResultStore{text_dir}, SimError);

  // A journal from a future format version.
  const std::string ver_dir = fresh_dir("version");
  { ResultStore store(ver_dir); }
  std::vector<char> bytes = read_bytes(journal_of(ver_dir));
  bytes[8] = 9;  // version field follows the 8-byte magic
  write_bytes(journal_of(ver_dir), bytes);
  EXPECT_THROW(ResultStore{ver_dir}, SimError);
}

TEST(ResultStore, HeaderTruncatedJournalRecoversLikeZeroBytes) {
  // A crash during the store's own initial header write leaves a strict
  // prefix of the header; that is recoverable. Any other short content is
  // a foreign file and must not be clobbered.
  const std::string dir = fresh_dir("headertrunc");
  { ResultStore store(dir); }
  std::vector<char> bytes = read_bytes(journal_of(dir));
  bytes.resize(5);  // "IMACR": mid-magic
  write_bytes(journal_of(dir), bytes);
  {
    ResultStore store(dir);
    EXPECT_EQ(store.loaded(), 0u);
    store.put("key", {1.0, 1});
  }
  EXPECT_EQ(ResultStore(dir).loaded(), 1u);

  const std::string foreign = fresh_dir("shortforeign");
  fs::create_directories(foreign);
  write_bytes(journal_of(foreign), {'I', 'M', 'A', 'X'});  // diverges mid-magic
  EXPECT_THROW(ResultStore{foreign}, SimError);
}

TEST(ResultStore, ZeroByteJournalIsTreatedAsNew) {
  const std::string dir = fresh_dir("zerobyte");
  fs::create_directories(dir);
  { std::ofstream out(journal_of(dir), std::ios::binary); }  // 0 bytes
  ResultStore store(dir);
  EXPECT_EQ(store.loaded(), 0u);
  store.put("key", {1.0, 1});
  ResultStore reopened(dir);
  EXPECT_EQ(reopened.loaded(), 1u);
}

TEST(ResultStore, SelfConflictingJournalRaisesSimError) {
  // Hand-craft a journal whose two records disagree about one key — the
  // put() API can never produce this, but disk corruption or tampering
  // can, and replay must refuse it rather than silently pick a winner.
  const std::string dir = fresh_dir("selfconflict");
  { ResultStore store(dir); }
  std::vector<char> bytes = read_bytes(journal_of(dir));
  const auto append_record = [&bytes](const std::string& key, double cycles) {
    std::string payload;
    const auto put_u32 = [&payload](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    const auto put_u64 = [&payload](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) payload.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    put_u32(static_cast<std::uint32_t>(key.size()));
    payload += key;
    std::uint64_t cycle_bits = 0;
    std::memcpy(&cycle_bits, &cycles, sizeof cycle_bits);
    put_u64(cycle_bits);
    put_u64(42);
    std::string header;
    for (const std::uint32_t v :
         {static_cast<std::uint32_t>(payload.size()), crc32(payload.data(), payload.size())})
      for (int i = 0; i < 4; ++i) header.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    for (const char c : header + payload) bytes.push_back(c);
  };
  append_record("key", 1.0);
  append_record("key", 2.0);
  write_bytes(journal_of(dir), bytes);
  EXPECT_THROW(ResultStore{dir}, SimError);
}

// --- sweep integration ----------------------------------------------------

TEST(ResultStoreSweep, ResumeServesWarmStoreWithZeroNewSimulations) {
  const std::string dir = fresh_dir("resume");
  const SweepSpec spec = parse_sweep_spec(kUnitSpec);

  SweepReport cold;
  {
    ResultStore store(dir);
    SweepCache cache;
    cache.attach_store(store, /*preload=*/true);
    cold = run_sweep(spec, /*threads=*/2, &cache);
    EXPECT_EQ(store.appended(), 6u);  // 3 workloads x 2 algorithms
    EXPECT_EQ(cache.store_loads(), 0u);
  }
  {
    ResultStore store(dir);
    EXPECT_EQ(store.loaded(), 6u);
    SweepCache cache;
    cache.attach_store(store, /*preload=*/true);
    EXPECT_EQ(cache.store_loads(), 6u);
    const SweepReport warm = run_sweep(spec, /*threads=*/2, &cache);
    EXPECT_EQ(store.appended(), 0u);  // zero new simulations
    EXPECT_EQ(report_to_csv(warm), report_to_csv(cold));
    EXPECT_EQ(report_to_json(warm), report_to_json(cold));
  }
}

TEST(ResultStoreSweep, ResumeAfterKillMidSweepRunsOnlyTheMissingPoints) {
  const std::string dir = fresh_dir("kill");
  const SweepSpec spec = parse_sweep_spec(kUnitSpec);
  SweepReport full;
  {
    ResultStore store(dir);
    SweepCache cache;
    cache.attach_store(store, /*preload=*/true);
    full = run_sweep(spec, 2, &cache);
  }
  // "Kill" the process mid-append: chop into the final record so replay
  // recovers 5 of the 6 journaled measurements.
  std::vector<char> bytes = read_bytes(journal_of(dir));
  bytes.resize(bytes.size() - 3);
  write_bytes(journal_of(dir), bytes);

  ResultStore store(dir);
  EXPECT_EQ(store.loaded(), 5u);
  EXPECT_GT(store.dropped_bytes(), 0u);
  SweepCache cache;
  cache.attach_store(store, /*preload=*/true);
  const SweepReport resumed = run_sweep(spec, 2, &cache);
  EXPECT_EQ(store.appended(), 1u);  // only the lost point is re-simulated
  EXPECT_EQ(report_to_csv(resumed), report_to_csv(full));
}

TEST(ResultStoreSweep, WarmStoreWithoutPreloadCrossChecksDeterministically) {
  // --store without --resume: everything re-simulates, and the journal
  // accepts the identical results silently (the drift cross-check).
  const std::string dir = fresh_dir("nopreload");
  const SweepSpec spec = parse_sweep_spec(kUnitSpec);
  {
    ResultStore store(dir);
    SweepCache cache;
    cache.attach_store(store, /*preload=*/false);
    (void)run_sweep(spec, 2, &cache);
    EXPECT_EQ(store.appended(), 6u);
  }
  ResultStore store(dir);
  SweepCache cache;
  cache.attach_store(store, /*preload=*/false);
  EXPECT_EQ(cache.store_loads(), 0u);
  (void)run_sweep(spec, 2, &cache);
  EXPECT_EQ(store.appended(), 0u);  // re-measured, matched, nothing re-journaled
}

// --- sharding and merge ---------------------------------------------------

TEST(Sharding, ParseShardValidatesItsInput) {
  EXPECT_EQ(parse_shard("1/1").index, 1u);
  EXPECT_EQ(parse_shard("3/8").index, 3u);
  EXPECT_EQ(parse_shard("3/8").count, 8u);
  EXPECT_EQ(parse_shard("4096/4096").count, 4096u);
  for (const char* bad : {"", "/", "1/", "/2", "0/2", "3/2", "2", "a/b", "1/4097", "-1/2",
                          "1/2/3", "1 /2", "999999999999/999999999999"})
    EXPECT_THROW((void)parse_shard(bad), SimError) << bad;
}

TEST(Sharding, ShardsPartitionTheGridExactly) {
  const SweepSpec spec = parse_sweep_spec(kUnitSpec);
  const std::vector<SweepPoint> points = expand_sweep(spec);
  for (const unsigned n : {1u, 2u, 3u, 5u}) {
    std::size_t covered = 0;
    for (unsigned i = 1; i <= n; ++i) {
      const auto shard_points = filter_shard(spec, points, ShardSpec{i, n});
      covered += shard_points.size();
      // Every point a shard owns really maps to that shard.
      for (const SweepPoint& p : shard_points)
        EXPECT_TRUE(shard_owns(ShardSpec{i, n}, p.cache_key(spec)));
    }
    EXPECT_EQ(covered, points.size()) << "N=" << n;
  }
}

TEST(Sharding, TwoShardStoresMergeByteIdenticalToSingleRun) {
  const SweepSpec spec = parse_sweep_spec(kUnitSpec);
  const SweepReport single = run_sweep(spec, 2);
  const std::vector<SweepPoint> points = expand_sweep(spec);

  std::map<std::string, StoredResult> merged;
  std::vector<std::string> dirs;
  for (unsigned i = 1; i <= 2; ++i) {
    const std::string dir = fresh_dir("shard" + std::to_string(i));
    dirs.push_back(dir);
    ResultStore store(dir);
    SweepCache cache;
    cache.attach_store(store, /*preload=*/true);
    BatchRunner pool(2);
    (void)run_sweep(spec, filter_shard(spec, points, ShardSpec{i, 2}), pool, &cache);
  }
  for (const std::string& dir : dirs) {
    const ResultStore store(dir);
    accumulate_results(store, merged);
  }
  const SweepReport fused = assemble_report(spec, merged);
  EXPECT_EQ(report_to_csv(fused), report_to_csv(single));
  EXPECT_EQ(report_to_json(fused), report_to_json(single));
  EXPECT_EQ(fused.spec_hash, single.spec_hash);
}

TEST(Sharding, ShardReportsMergeLikeStores) {
  const SweepSpec spec = parse_sweep_spec(kUnitSpec);
  const SweepReport single = run_sweep(spec, 2);
  const std::vector<SweepPoint> points = expand_sweep(spec);

  std::map<std::string, StoredResult> merged;
  BatchRunner pool(2);
  for (unsigned i = 1; i <= 2; ++i) {
    // Round-trip each shard through its rendered CSV, exactly like the CLI.
    const SweepReport shard =
        run_sweep(spec, filter_shard(spec, points, ShardSpec{i, 2}), pool);
    accumulate_results(spec, parse_csv_report(report_to_csv(shard)), merged);
  }
  const SweepReport fused = assemble_report(spec, merged);
  EXPECT_EQ(report_to_csv(fused), report_to_csv(single));
}

TEST(Sharding, SampledShardCsvsStillMergeToByteIdenticalCsv) {
  // Sampled-mode cycles are rounded to 2 decimals in CSV, but the
  // rounding is deterministic: merging shard CSVs must reproduce the
  // single-process CSV byte-for-byte even in sampled mode (the JSON
  // rendition is only guaranteed from stores; see README).
  const SweepSpec spec = parse_sweep_spec(R"({
    "name": "sampled-shards",
    "workloads": ["tiny"],
    "sparsities": ["1:4"],
    "algorithms": ["rowwise", "indexmac"],
    "mode": "sampled",
    "sample_rows": 8,
    "sample_full_strips": 2
  })");
  const SweepReport single = run_sweep(spec, 2);
  const std::vector<SweepPoint> points = expand_sweep(spec);
  BatchRunner pool(2);
  std::map<std::string, StoredResult> merged;
  for (unsigned i = 1; i <= 2; ++i) {
    const SweepReport shard = run_sweep(spec, filter_shard(spec, points, ShardSpec{i, 2}), pool);
    accumulate_results(spec, parse_csv_report(report_to_csv(shard)), merged);
  }
  EXPECT_EQ(report_to_csv(assemble_report(spec, merged)), report_to_csv(single));
}

TEST(Sharding, MergeRefusesGapsAndConflicts) {
  const SweepSpec spec = parse_sweep_spec(kUnitSpec);
  const SweepReport single = run_sweep(spec, 2);

  // A gap: one shard alone does not cover the grid.
  const std::vector<SweepPoint> points = expand_sweep(spec);
  const auto half = filter_shard(spec, points, ShardSpec{1, 2});
  ASSERT_LT(half.size(), points.size());
  BatchRunner pool(2);
  std::map<std::string, StoredResult> partial;
  accumulate_results(spec, run_sweep(spec, half, pool), partial);
  EXPECT_THROW((void)assemble_report(spec, partial), SimError);

  // A conflict: two inputs disagree about one measurement.
  std::map<std::string, StoredResult> merged;
  accumulate_results(spec, single, merged);
  SweepReport tampered = single;
  tampered.rows[0].cycles += 1.0;
  EXPECT_THROW(accumulate_results(spec, tampered, merged), SimError);
}

// --- durability levels ----------------------------------------------------

TEST(ResultStoreDurability, DefaultsToFlushAndFsyncEachIsOptIn) {
  const std::string dir = fresh_dir("durability_level");
  {
    ResultStore store(dir);
    EXPECT_EQ(store.durability(), Durability::kFlush);
  }
  {
    ResultStore store(dir, Durability::kFsyncEach);
    EXPECT_EQ(store.durability(), Durability::kFsyncEach);
    store.put("synced", {7.5, 77});
  }
  ResultStore reopened(dir);
  ASSERT_NE(reopened.find("synced"), nullptr);
  EXPECT_EQ(reopened.find("synced")->data_accesses, 77u);
}

TEST(ResultStoreDurability, SyncIsAManualBarrierOnAFlushStore) {
  const std::string dir = fresh_dir("durability_sync");
  ResultStore store(dir);  // kFlush
  store.put("a", {1.0, 1});
  store.put("b", {2.0, 2});
  store.sync();  // must not throw; both records now on stable storage
  // The journal is byte-complete after the barrier: a fresh reader (a
  // different FILE*, so no shared stdio buffering) sees both records.
  ResultStore probe(dir);
  EXPECT_EQ(probe.loaded(), 2u);
}

// --- fuzz: every-offset truncation and bit-flips --------------------------

/// The recovery contract, exhaustively: for EVERY byte offset of a
/// multi-record journal, truncating there must (a) never throw, (b) yield
/// a valid prefix of the original records, and (c) leave a journal that
/// accepts appends and replays them.
TEST(ResultStoreFuzz, TruncationAtEveryOffsetRecoversALongestValidPrefix) {
  const std::string dir = fresh_dir("fuzz_trunc");
  const std::vector<std::pair<std::string, StoredResult>> records = {
      {"k0", {1.5, 10}}, {"k1", {2.5, 20}}, {"key-the-third", {3.25, 30}}};
  {
    ResultStore store(dir);
    for (const auto& [key, result] : records) store.put(key, result);
  }
  const std::vector<char> pristine = read_bytes(journal_of(dir));
  std::size_t last_loaded = 0;
  for (std::size_t cut = 0; cut <= pristine.size(); ++cut) {
    write_bytes(journal_of(dir),
                std::vector<char>(pristine.begin(),
                                  pristine.begin() + static_cast<std::ptrdiff_t>(cut)));
    std::size_t loaded = 0;
    {
      ResultStore store(dir);  // must not throw at any cut
      loaded = store.loaded();
      ASSERT_LE(loaded, records.size()) << "cut=" << cut;
      // Whatever survived is a PREFIX with the original payloads — never a
      // reordered or half-parsed record.
      for (std::size_t i = 0; i < loaded; ++i) {
        const StoredResult* r = store.find(records[i].first);
        ASSERT_NE(r, nullptr) << "cut=" << cut << " record=" << i;
        EXPECT_EQ(*r, records[i].second) << "cut=" << cut << " record=" << i;
      }
      // Longest prefix: more bytes can only ever reveal more records.
      ASSERT_GE(loaded, last_loaded) << "cut=" << cut;
      last_loaded = loaded;
      // The recovered store accepts appends...
      store.put("appended", {9.0, 99});
    }
    // ...and the append replays next to the surviving prefix.
    ResultStore reopened(dir);
    EXPECT_EQ(reopened.loaded(), loaded + 1) << "cut=" << cut;
    ASSERT_NE(reopened.find("appended"), nullptr) << "cut=" << cut;
  }
  EXPECT_EQ(last_loaded, records.size());  // the full file replays fully
}

/// Single-bit corruption at every byte offset: a flipped header byte is a
/// loud SimError (magic/version are not recoverable by contract); a
/// flipped record byte is caught by the CRC (or the length/structure
/// checks) and recovery keeps a strict prefix, flagging the dropped tail
/// through dropped_bytes().
TEST(ResultStoreFuzz, BitFlipAtEveryOffsetIsCaughtAndFlagged) {
  const std::string dir = fresh_dir("fuzz_flip");
  const std::vector<std::pair<std::string, StoredResult>> records = {
      {"k0", {1.5, 10}}, {"k1", {2.5, 20}}, {"key-the-third", {3.25, 30}}};
  {
    ResultStore store(dir);
    for (const auto& [key, result] : records) store.put(key, result);
  }
  const std::vector<char> pristine = read_bytes(journal_of(dir));
  constexpr std::size_t kHeaderBytes = 12;  // 8-byte magic + u32 version
  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    for (const unsigned char mask : {0x01u, 0x80u}) {  // low and high bit
      std::vector<char> flipped = pristine;
      flipped[offset] = static_cast<char>(static_cast<unsigned char>(flipped[offset]) ^ mask);
      write_bytes(journal_of(dir), flipped);
      if (offset < kHeaderBytes) {
        EXPECT_THROW((void)ResultStore(dir), SimError) << "offset=" << offset;
        continue;
      }
      ResultStore store(dir);  // record corruption must never throw
      EXPECT_LT(store.loaded(), records.size()) << "offset=" << offset;
      EXPECT_GT(store.dropped_bytes(), 0u) << "offset=" << offset;
      for (std::size_t i = 0; i < store.loaded(); ++i) {
        const StoredResult* r = store.find(records[i].first);
        ASSERT_NE(r, nullptr) << "offset=" << offset << " record=" << i;
        EXPECT_EQ(*r, records[i].second) << "offset=" << offset << " record=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace indexmac::core
