// Tests for the common support module (table formatting, number
// formatting/parsing incl. locale independence, error plumbing).
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/format.h"
#include "locale_test_util.h"

namespace indexmac {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable t;
  t.set_header({"a", "long-header", "c"});
  t.add_row({"1", "x", "third"});
  t.add_row({"22", "yy", "z"});
  const std::string out = t.to_string();
  // Every line has the same prefix structure; the separator spans the
  // header width.
  EXPECT_NE(out.find("a   long-header  c"), std::string::npos);
  EXPECT_NE(out.find("1   x            third"), std::string::npos);
  EXPECT_NE(out.find("22  yy           z"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedRowWidth) {
  TextTable t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), SimError);
}

TEST(TextTable, WorksWithoutHeader) {
  TextTable t;
  t.add_row({"x", "y"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NE(t.to_string().find("x  y"), std::string::npos);
}

TEST(Format, FixedDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

TEST(Format, Speedup) { EXPECT_EQ(fmt_speedup(1.946), "1.95x"); }

TEST(Format, GeneralMatchesPrintfGInTheCLocale) {
  EXPECT_EQ(fmt_general(0.5, 10), "0.5");
  EXPECT_EQ(fmt_general(1234567.0, 10), "1234567");
  EXPECT_EQ(fmt_general(1.0 / 3.0, 10), "0.3333333333");
  EXPECT_EQ(fmt_general(1e-7, 10), "1e-07");
}

TEST(Format, ParseDoubleIsStrict) {
  EXPECT_EQ(parse_double("123.45", "x"), 123.45);
  EXPECT_EQ(parse_double("-2e3", "x"), -2000.0);
  EXPECT_EQ(parse_double("17", "x"), 17.0);
  for (const char* bad : {"", " 1", "1 ", "1x", "1,5", "--1", "1e", "1e999"})
    EXPECT_THROW((void)parse_double(bad, "x"), SimError) << bad;
}

TEST(Format, NumberFormattingIgnoresCommaDecimalLocales) {
  // The golden-file byte-for-byte guarantee: under de_DE-style LC_NUMERIC
  // (',' decimal separator) the printf family drifts, fmt_* must not.
  testutil::ScopedCommaLocale locale;
  if (!locale.active()) GTEST_SKIP() << "no comma-decimal locale installed";
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_general(0.5, 10), "0.5");
  EXPECT_EQ(fmt_speedup(1.946), "1.95x");
  EXPECT_EQ(parse_double("123.45", "x"), 123.45);   // '.' always accepted
  EXPECT_THROW((void)parse_double("123,45", "x"), SimError);  // ',' never
}

TEST(Format, CountsWithSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(1234567890), "1,234,567,890");
}

TEST(Error, RaiseThrowsSimError) {
  EXPECT_THROW(raise("boom"), SimError);
  try {
    raise("specific message");
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("specific message"), std::string::npos);
  }
}

TEST(Error, CheckMacroIncludesMessage) {
  try {
    IMAC_CHECK(false, "the condition text");
    FAIL();
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("the condition text"), std::string::npos);
  }
}

}  // namespace
}  // namespace indexmac
