// Checkpoint importer: IMACTNSR tensor decoding (f32/f16, bit-exact),
// sparsity measurement against the declared N:M pattern, manifest
// validation, and the import -> register -> sweep pipeline that makes a
// checkpoint-derived model a first-class workload suite.
#include "workloads/model_import.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/sweep.h"
#include "workloads/workloads.h"

namespace indexmac::workloads {
namespace {

namespace fs = std::filesystem;

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void put_u64(std::string& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

std::string tensor_header(std::uint32_t version, std::uint32_t dtype, std::uint64_t rows,
                          std::uint64_t cols) {
  std::string out = "IMACTNSR";
  put_u32(out, version);
  put_u32(out, dtype);
  put_u64(out, rows);
  put_u64(out, cols);
  return out;
}

std::string f32_blob(std::uint64_t rows, std::uint64_t cols, const std::vector<float>& values) {
  std::string out = tensor_header(1, 0, rows, cols);
  for (const float v : values) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u32(out, bits);
  }
  return out;
}

std::string f16_blob(std::uint64_t rows, std::uint64_t cols,
                     const std::vector<std::uint16_t>& halves) {
  std::string out = tensor_header(1, 1, rows, cols);
  for (const std::uint16_t h : halves) {
    out.push_back(static_cast<char>(h & 0xff));
    out.push_back(static_cast<char>(h >> 8));
  }
  return out;
}

void write_file(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Fresh scratch directory per test (TempDir is shared by the binary).
fs::path scratch(const char* name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

TEST(LoadTensor, ReadsF32RowMajor) {
  const fs::path dir = scratch("load_f32");
  write_file(dir / "t.tensor", f32_blob(2, 3, {1, 2, 3, 4, 5, 6}));
  const auto m = load_tensor((dir / "t.tensor").string());
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 2), 3.0f);
  EXPECT_EQ(m.at(1, 0), 4.0f);
  EXPECT_EQ(m.at(1, 2), 6.0f);
}

TEST(LoadTensor, DecodesF16BitExactly) {
  // 1.0, 0.25, -1.0, smallest subnormal 2^-24, max finite 65504, -0.0.
  const fs::path dir = scratch("load_f16");
  write_file(dir / "t.tensor",
             f16_blob(1, 6, {0x3c00, 0x3400, 0xbc00, 0x0001, 0x7bff, 0x8000}));
  const auto m = load_tensor((dir / "t.tensor").string());
  EXPECT_EQ(m.at(0, 0), 1.0f);
  EXPECT_EQ(m.at(0, 1), 0.25f);
  EXPECT_EQ(m.at(0, 2), -1.0f);
  EXPECT_EQ(m.at(0, 3), std::ldexp(1.0f, -24));
  EXPECT_EQ(m.at(0, 4), 65504.0f);
  EXPECT_EQ(m.at(0, 5), 0.0f);
  EXPECT_TRUE(std::signbit(m.at(0, 5)));
}

TEST(LoadTensor, RejectsMalformedBlobs) {
  const fs::path dir = scratch("load_bad");
  EXPECT_THROW((void)load_tensor((dir / "missing.tensor").string()), SimError);

  std::string bad_magic = f32_blob(1, 1, {1});
  bad_magic[0] = 'X';
  write_file(dir / "magic.tensor", bad_magic);
  EXPECT_THROW((void)load_tensor((dir / "magic.tensor").string()), SimError);

  write_file(dir / "version.tensor", tensor_header(2, 0, 1, 1) + std::string(4, '\0'));
  EXPECT_THROW((void)load_tensor((dir / "version.tensor").string()), SimError);

  write_file(dir / "dtype.tensor", tensor_header(1, 7, 1, 1) + std::string(4, '\0'));
  EXPECT_THROW((void)load_tensor((dir / "dtype.tensor").string()), SimError);

  write_file(dir / "short.tensor", std::string("IMACTNSR\x01"));
  EXPECT_THROW((void)load_tensor((dir / "short.tensor").string()), SimError);

  // Header promises 2x2 f32 but only 3 elements follow.
  write_file(dir / "trunc.tensor", tensor_header(1, 0, 2, 2) + std::string(12, '\0'));
  EXPECT_THROW((void)load_tensor((dir / "trunc.tensor").string()), SimError);

  write_file(dir / "zero.tensor", tensor_header(1, 0, 0, 4));
  EXPECT_THROW((void)load_tensor((dir / "zero.tensor").string()), SimError);
}

TEST(MeasureProfile, ComputesDensityConformityAndImbalance) {
  // 2x8 against 2:4 — row 0: block 0 holds 2 nnz (conforming), block 1
  // holds 3 (violating); row 1: 1 nnz then an empty block.
  sparse::DenseMatrix<float> w(2, 8);
  w.at(0, 0) = 1;
  w.at(0, 2) = 1;
  w.at(0, 4) = 1;
  w.at(0, 5) = 1;
  w.at(0, 7) = 1;
  w.at(1, 3) = 1;
  const SparsityProfile p = measure_profile(w, sparse::kSparsity24);
  EXPECT_TRUE(p.measured);
  EXPECT_EQ(p.pattern, sparse::kSparsity24);
  EXPECT_DOUBLE_EQ(p.density, 6.0 / 16.0);
  EXPECT_DOUBLE_EQ(p.nm_conformity, 3.0 / 4.0);
  // ELLPACK pads both rows to the densest row's 5 slots: 4 of 10 wasted.
  EXPECT_DOUBLE_EQ(p.row_imbalance, 4.0 / 10.0);
}

TEST(MeasureProfile, ConformingMatrixScoresPerfectly) {
  // Exactly 1:4 — every block one nnz, every row equally long.
  sparse::DenseMatrix<float> w(3, 8);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t b = 0; b < 2; ++b) w.at(r, b * 4 + r) = 1;
  const SparsityProfile p = measure_profile(w, sparse::kSparsity14);
  EXPECT_DOUBLE_EQ(p.density, 0.25);
  EXPECT_DOUBLE_EQ(p.nm_conformity, 1.0);
  EXPECT_DOUBLE_EQ(p.row_imbalance, 0.0);
}

/// A minimal valid checkpoint: one linear layer, 2:4-conforming weights.
fs::path write_linear_checkpoint(const char* dirname, const std::string& model_name) {
  const fs::path dir = scratch(dirname);
  // 4x8, one nnz per 2:4 block: density 0.25.
  std::vector<float> w(4 * 8, 0.0f);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t b = 0; b < 2; ++b) w[r * 8 + b * 4 + r % 4] = 1.0f;
  write_file(dir / "fc.tensor", f32_blob(4, 8, w));
  write_file(dir / "model.json", R"({
    "format": "imac-model/v1",
    "name": ")" + model_name + R"(",
    "sparsities": ["2:4"],
    "layers": [
      {"name": "fc", "kind": "linear", "repeat": 3,
       "out_features": 4, "in_features": 8, "tokens": 16,
       "weights": "fc.tensor"}
    ]
  })");
  return dir;
}

TEST(ImportModel, BuildsMeasuredGraph) {
  const fs::path dir = write_linear_checkpoint("import_ok", "imptest");
  const ModelGraph graph = import_model(dir.string());
  EXPECT_EQ(graph.name, "imptest");
  EXPECT_TRUE(graph.measured);
  ASSERT_EQ(graph.layers.size(), 1u);
  const LayerRecord& fc = graph.layers[0];
  EXPECT_EQ(fc.kind, LayerKind::kLinear);
  EXPECT_EQ(fc.repeat, 3u);
  EXPECT_EQ(fc.gemm.rows_a, 4u);
  EXPECT_EQ(fc.gemm.k, 8u);
  EXPECT_EQ(fc.gemm.cols_b, 16u);
  EXPECT_TRUE(fc.sparsity.measured);
  EXPECT_DOUBLE_EQ(fc.sparsity.density, 0.25);
  EXPECT_DOUBLE_EQ(fc.sparsity.nm_conformity, 1.0);
  EXPECT_EQ(graph.layer_count(), 3u);
  EXPECT_EQ(graph.total_macs(), 3ull * 4 * 8 * 16);
}

TEST(ImportModel, ConvGeometryMapsThroughIm2col) {
  const fs::path dir = scratch("import_conv");
  // 8 out-channels, 2 in-channels, 3x3 @ 6x6 pad 1: GEMM 8 x 18 x 36.
  write_file(dir / "c.tensor", f32_blob(8, 18, std::vector<float>(8 * 18, 1.0f)));
  write_file(dir / "model.json", R"({
    "format": "imac-model/v1",
    "name": "impconv",
    "sparsities": ["2:4"],
    "layers": [
      {"name": "c", "kind": "conv", "out_channels": 8, "in_channels": 2,
       "kernel_h": 3, "kernel_w": 3, "stride": 1, "pad_h": 1, "pad_w": 1,
       "in_h": 6, "in_w": 6, "weights": "c.tensor"}
    ]
  })");
  const ModelGraph graph = import_model(dir.string());
  ASSERT_EQ(graph.layers.size(), 1u);
  EXPECT_EQ(graph.layers[0].kind, LayerKind::kConv);
  EXPECT_EQ(graph.layers[0].gemm.rows_a, 8u);
  EXPECT_EQ(graph.layers[0].gemm.k, 18u);
  EXPECT_EQ(graph.layers[0].gemm.cols_b, 36u);
  // All-ones weights: dense; the four full 2:4 blocks per row are
  // over-full, only the 2-wide tail block (18 % 4) conforms trivially.
  EXPECT_DOUBLE_EQ(graph.layers[0].sparsity.density, 1.0);
  EXPECT_DOUBLE_EQ(graph.layers[0].sparsity.nm_conformity, 1.0 / 5.0);
}

TEST(ImportModel, RejectsMalformedManifests) {
  const auto import_with = [](const char* dirname, const std::string& manifest,
                              std::uint64_t rows = 4, std::uint64_t cols = 8) {
    const fs::path dir = scratch(dirname);
    write_file(dir / "fc.tensor",
               f32_blob(rows, cols, std::vector<float>(rows * cols, 1.0f)));
    write_file(dir / "model.json", manifest);
    return import_model(dir.string());
  };
  const char* ok_layer = R"({"name": "fc", "kind": "linear",
    "out_features": 4, "in_features": 8, "tokens": 16, "weights": "fc.tensor"})";

  EXPECT_THROW((void)import_model(scratch("imp_nodir").string() + "/nope"), SimError);
  // Wrong format tag.
  EXPECT_THROW((void)import_with("imp_fmt", std::string(R"({"format": "imac-model/v9",
    "name": "x", "sparsities": ["2:4"], "layers": [)") + ok_layer + "]}"),
               SimError);
  // Unknown top-level and layer-level keys are typo errors, not ignored.
  EXPECT_THROW((void)import_with("imp_topkey", std::string(R"({"format": "imac-model/v1",
    "name": "x", "sparsitees": ["2:4"], "layers": [)") + ok_layer + "]}"),
               SimError);
  EXPECT_THROW((void)import_with("imp_laykey", R"({"format": "imac-model/v1",
    "name": "x", "sparsities": ["2:4"], "layers": [
      {"name": "fc", "kind": "linear", "out_features": 4, "in_features": 8,
       "tokens": 16, "wieghts": "fc.tensor"}]})"),
               SimError);
  EXPECT_THROW((void)import_with("imp_kind", R"({"format": "imac-model/v1",
    "name": "x", "sparsities": ["2:4"], "layers": [
      {"name": "fc", "kind": "dropout", "out_features": 4, "in_features": 8,
       "tokens": 16, "weights": "fc.tensor"}]})"),
               SimError);
  // Tensor shape contradicting the declared geometry.
  EXPECT_THROW((void)import_with("imp_shape", std::string(R"({"format": "imac-model/v1",
    "name": "x", "sparsities": ["2:4"], "layers": [)") + ok_layer + "]}",
                                 /*rows=*/4, /*cols=*/9),
               SimError);
  // Depthwise takes "channels", not "in_channels"/"out_channels".
  EXPECT_THROW((void)import_with("imp_dw", R"({"format": "imac-model/v1",
    "name": "x", "sparsities": ["2:4"], "layers": [
      {"name": "fc", "kind": "depthwise", "out_channels": 4, "in_channels": 1,
       "kernel_h": 3, "kernel_w": 3, "stride": 1, "pad_h": 1, "pad_w": 1,
       "in_h": 6, "in_w": 6, "weights": "fc.tensor"}]})"),
               SimError);
  // No sparsities at all.
  EXPECT_THROW((void)import_with("imp_nosp", std::string(R"({"format": "imac-model/v1",
    "name": "x", "sparsities": [], "layers": [)") + ok_layer + "]}"),
               SimError);
}

TEST(ImportModel, RegisteredModelIsSweepable) {
  // The tentpole acceptance path in-process: import -> register -> the
  // model behaves exactly like a built-in suite, including sweeping.
  const fs::path dir = write_linear_checkpoint("import_sweep", "impsweep");
  register_model(import_model(dir.string()));
  ASSERT_TRUE(has_suite("impsweep"));
  const Suite& view = suite("impsweep");
  EXPECT_EQ(view.source_layers, model_graph("impsweep").layer_count());
  ASSERT_EQ(view.workloads.size(), 1u);
  EXPECT_EQ(view.workloads[0].count, 3u);

  // Duplicate registration must be rejected (first registration wins).
  EXPECT_THROW(register_model(import_model(dir.string())), SimError);

  const core::SweepSpec spec = core::parse_sweep_spec(R"({
    "name": "imp", "workloads": ["impsweep"],
    "algorithms": ["rowwise", "indexmac"], "mode": "exact"})");
  const core::SweepReport report = core::run_sweep(spec, /*threads=*/2);
  ASSERT_EQ(report.rows.size(), 2u);  // 1 shape x 1 sparsity x 2 algorithms
  for (const core::SweepRow& row : report.rows) {
    EXPECT_EQ(row.point.suite, "impsweep");
    EXPECT_EQ(row.point.count, 3u);
    EXPECT_GT(row.cycles, 0.0);
  }
}

}  // namespace
}  // namespace indexmac::workloads
