#include <gtest/gtest.h>

#include "mem/cache.h"
#include "mem/main_memory.h"
#include "mem/memory_system.h"

namespace indexmac {
namespace {

// ---------- MainMemory ----------

TEST(MainMemory, ZeroFilledByDefault) {
  MainMemory mem;
  EXPECT_EQ(mem.read_u32(0x1234), 0u);
  EXPECT_EQ(mem.read_u64(0xdeadbeef), 0u);
  EXPECT_EQ(mem.page_count(), 0u);
}

TEST(MainMemory, ReadBackWrittenValues) {
  MainMemory mem;
  mem.write_u32(0x100, 0xcafebabe);
  mem.write_u64(0x108, 0x1122334455667788ull);
  EXPECT_EQ(mem.read_u32(0x100), 0xcafebabeu);
  EXPECT_EQ(mem.read_u64(0x108), 0x1122334455667788ull);
}

TEST(MainMemory, LittleEndianLayout) {
  MainMemory mem;
  mem.write_u32(0x200, 0x04030201);
  EXPECT_EQ(mem.read_u8(0x200), 1);
  EXPECT_EQ(mem.read_u8(0x203), 4);
}

TEST(MainMemory, CrossPageAccess) {
  MainMemory mem;
  const std::uint64_t addr = MainMemory::kPageBytes - 2;
  mem.write_u32(addr, 0xa1b2c3d4);
  EXPECT_EQ(mem.read_u32(addr), 0xa1b2c3d4u);
  EXPECT_EQ(mem.page_count(), 2u);
}

TEST(MainMemory, FloatRoundTrip) {
  MainMemory mem;
  mem.write_f32(0x40, 3.14159f);
  EXPECT_FLOAT_EQ(mem.read_f32(0x40), 3.14159f);
}

TEST(MainMemory, BulkF32AndI32Helpers) {
  MainMemory mem;
  const std::vector<float> fs = {1.0f, -2.5f, 0.0f, 7.25f};
  const std::vector<std::int32_t> is = {-1, 2, 300000, -400000};
  mem.write_f32s(0x1000, fs);
  mem.write_i32s(0x2000, is);
  EXPECT_EQ(mem.read_f32s(0x1000, 4), fs);
  EXPECT_EQ(mem.read_i32s(0x2000, 4), is);
}

TEST(AddressAllocator, AlignsAndAdvances) {
  AddressAllocator alloc(0x1000, 64);
  const auto a = alloc.alloc(10);
  const auto b = alloc.alloc(100);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 10);
  EXPECT_THROW((void)alloc.alloc(0), SimError);
}

// ---------- Cache ----------

CacheConfig small_cache() {
  return CacheConfig{.size_bytes = 1024, .ways = 2, .line_bytes = 64, .hit_latency = 2};
}

TEST(Cache, MissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x0, false).hit);
  EXPECT_TRUE(c.access(0x3c, false).hit);  // same line
  EXPECT_EQ(c.stats().hits, 2u);
  EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, LruEviction) {
  Cache c(small_cache());  // 8 sets, 2 ways
  // Three lines mapping to set 0: stride = sets * line = 512 bytes.
  (void)c.access(0x000, false);
  (void)c.access(0x200, false);
  (void)c.access(0x000, false);  // refresh line 0
  (void)c.access(0x400, false);  // evicts 0x200 (LRU)
  EXPECT_TRUE(c.probe(0x000));
  EXPECT_FALSE(c.probe(0x200));
  EXPECT_TRUE(c.probe(0x400));
}

TEST(Cache, DirtyEvictionReportsWriteback) {
  Cache c(small_cache());
  (void)c.access(0x000, true);  // dirty
  (void)c.access(0x200, false);
  const CacheLineResult r = c.access(0x400, false);  // evicts dirty 0x000
  EXPECT_TRUE(r.writeback);
  EXPECT_EQ(r.victim_addr, 0x000u);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionHasNoWriteback) {
  Cache c(small_cache());
  (void)c.access(0x000, false);
  (void)c.access(0x200, false);
  const CacheLineResult r = c.access(0x400, false);
  EXPECT_FALSE(r.writeback);
}

TEST(Cache, WriteHitMarksDirty) {
  Cache c(small_cache());
  (void)c.access(0x000, false);
  (void)c.access(0x000, true);  // now dirty
  (void)c.access(0x200, false);
  const CacheLineResult r = c.access(0x400, false);
  EXPECT_TRUE(r.writeback);
}

TEST(Cache, InvalidateAllClearsResidency) {
  Cache c(small_cache());
  (void)c.access(0x000, false);
  c.invalidate_all();
  EXPECT_FALSE(c.probe(0x000));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{.size_bytes = 1000, .ways = 3, .line_bytes = 60}), SimError);
}

// ---------- MemorySystem ----------

MemHierConfig test_hier() { return MemHierConfig{}; }

TEST(MemorySystem, L1HitLatency) {
  MemorySystem ms(test_hier());
  (void)ms.scalar_data(0x100, 4, false, 0);           // cold miss warms the line
  const std::uint64_t done = ms.scalar_data(0x100, 4, false, 1000);
  EXPECT_EQ(done, 1000 + 2);  // L1D hit latency from Table I
}

TEST(MemorySystem, HitUnderFillWaitsForDram) {
  MemorySystem ms(test_hier());
  const std::uint64_t fill_done = ms.scalar_data(0x100, 4, false, 0);
  // A second access during the fill cannot complete before the data arrives.
  const std::uint64_t done = ms.scalar_data(0x100, 4, false, 10);
  EXPECT_EQ(done, fill_done);
}

TEST(MemorySystem, ColdMissGoesToDram) {
  MemorySystem ms(test_hier());
  const std::uint64_t done = ms.scalar_data(0x100, 4, false, 0);
  // L1 tag (2) + L2 tag (8) + DRAM latency (100).
  EXPECT_GE(done, 100u);
}

TEST(MemorySystem, L2HitAfterL1Eviction) {
  MemorySystem ms(test_hier());
  (void)ms.scalar_data(0x100, 4, false, 0);
  // Evict from 64KB 4-way L1 by touching 5 conflicting lines (stride = 16KB).
  for (int i = 1; i <= 4; ++i) (void)ms.scalar_data(0x100 + i * 16384, 4, false, 1000 * i);
  const std::uint64_t done = ms.scalar_data(0x100, 4, false, 100000);
  EXPECT_EQ(done, 100000 + 2 + 8);  // L1 miss -> L2 hit
}

TEST(MemorySystem, VectorAccessBypassesL1) {
  MemorySystem ms(test_hier());
  (void)ms.vector_data(0x100, 64, false, 0);  // warm L2
  const std::uint64_t done = ms.vector_data(0x100, 64, false, 1000);
  EXPECT_EQ(done, 1000 + 8);  // direct L2 hit, no L1 latency added
  EXPECT_EQ(ms.stats().vector_reads, 2u);
  EXPECT_EQ(ms.stats().scalar_reads, 0u);
  EXPECT_FALSE(ms.l1d().probe(0x100));  // vector path must not touch L1D
}

TEST(MemorySystem, InFlightMissesMerge) {
  MemorySystem ms(test_hier());
  const std::uint64_t first = ms.vector_data(0x100, 64, false, 0);
  const std::uint64_t second = ms.vector_data(0x100, 64, false, 1);
  EXPECT_EQ(second, first);  // merged with the in-flight fill
  EXPECT_EQ(ms.stats().dram_lines, 1u);
}

TEST(MemorySystem, BankConflictSerializes) {
  MemorySystem ms(test_hier());
  // Warm both lines (same bank: stride of banks * line = 512).
  (void)ms.vector_data(0x000, 64, false, 0);
  (void)ms.vector_data(0x200, 64, false, 0);
  const std::uint64_t t1 = ms.vector_data(0x000, 64, false, 10000);
  const std::uint64_t t2 = ms.vector_data(0x200, 64, false, 10000);
  EXPECT_EQ(t1, 10000 + 8);
  EXPECT_EQ(t2, 10000 + 2 + 8);  // waited for the bank occupancy
}

TEST(MemorySystem, DifferentBanksProceedInParallel) {
  MemorySystem ms(test_hier());
  (void)ms.vector_data(0x000, 64, false, 0);
  (void)ms.vector_data(0x040, 64, false, 0);  // adjacent line -> next bank
  const std::uint64_t t1 = ms.vector_data(0x000, 64, false, 10000);
  const std::uint64_t t2 = ms.vector_data(0x040, 64, false, 10000);
  EXPECT_EQ(t1, t2);
}

TEST(MemorySystem, UnalignedVectorAccessTouchesTwoLines) {
  MemorySystem ms(test_hier());
  (void)ms.vector_data(0x20, 64, false, 0);  // spans lines 0x00 and 0x40
  EXPECT_EQ(ms.stats().dram_lines, 2u);
}

TEST(MemorySystem, StatsAccumulateAndSubtract) {
  MemorySystem ms(test_hier());
  (void)ms.scalar_data(0x100, 8, true, 0);
  (void)ms.vector_data(0x200, 64, true, 0);
  const MemStats snap = ms.stats();
  (void)ms.scalar_data(0x300, 8, false, 0);
  const MemStats delta = ms.stats() - snap;
  EXPECT_EQ(delta.scalar_reads, 1u);
  EXPECT_EQ(delta.scalar_writes, 0u);
  EXPECT_EQ(snap.scalar_writes, 1u);
  EXPECT_EQ(snap.vector_writes, 1u);
  EXPECT_EQ(snap.data_accesses(), 2u);
}

TEST(MemorySystem, ResetClearsEverything) {
  MemorySystem ms(test_hier());
  (void)ms.scalar_data(0x100, 4, false, 0);
  ms.reset();
  EXPECT_EQ(ms.stats().data_accesses(), 0u);
  const std::uint64_t done = ms.scalar_data(0x100, 4, false, 0);
  EXPECT_GE(done, 100u);  // cold again
}

TEST(MemorySystem, IfetchUsesL1I) {
  MemorySystem ms(test_hier());
  (void)ms.ifetch(0x1000, 0);
  const std::uint64_t done = ms.ifetch(0x1000, 50);
  EXPECT_EQ(done, 50 + 1);  // 1-cycle L1I hit (Table I)
  EXPECT_EQ(ms.stats().ifetch_lines, 2u);
}

TEST(MemorySystem, DramChannelOccupancySerializesStreams) {
  MemorySystem ms(test_hier());
  // Two cold misses to different banks still share the DRAM channel.
  const std::uint64_t t1 = ms.vector_data(0x000, 64, false, 0);
  const std::uint64_t t2 = ms.vector_data(0x040, 64, false, 0);
  EXPECT_EQ(t2 - t1, MemHierConfig{}.dram_line_occupancy);
}

}  // namespace
}  // namespace indexmac
