// Registration rules and lookup behavior of the AlgorithmRegistry: the
// process-wide instance carries every built-in family in a deterministic
// order, lookups round-trip between enum values and CLI ids, and a
// standalone registry enforces the descriptor invariants (unique ids,
// unique enum values, mandatory hooks) that keep the plugin surface safe.
#include <gtest/gtest.h>

#include "common/error.h"
#include "core/algorithm_registry.h"

namespace indexmac::core {
namespace {

/// A descriptor that satisfies every add() invariant; tests break one
/// field at a time.
AlgorithmDescriptor minimal_descriptor(Algorithm alg, const std::string& id) {
  AlgorithmDescriptor d;
  d.algorithm = alg;
  d.id = id;
  d.display_name = id;
  d.supports = [](kernels::Dataflow, unsigned) { return true; };
  d.emit = [](const AlgorithmDescriptor::EmitContext&) { return Program{}; };
  return d;
}

TEST(AlgorithmRegistry, DuplicateIdRaises) {
  AlgorithmRegistry reg;
  reg.add(minimal_descriptor(Algorithm::kIndexmac, "fam"));
  try {
    reg.add(minimal_descriptor(Algorithm::kIndexmac4, "fam"));
    FAIL() << "duplicate id must raise";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate algorithm id"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("fam"), std::string::npos) << e.what();
  }
}

TEST(AlgorithmRegistry, DuplicateEnumRaises) {
  AlgorithmRegistry reg;
  reg.add(minimal_descriptor(Algorithm::kIndexmac, "fam-a"));
  EXPECT_THROW(reg.add(minimal_descriptor(Algorithm::kIndexmac, "fam-b")), SimError);
}

TEST(AlgorithmRegistry, AddEnforcesMandatoryFields) {
  AlgorithmRegistry reg;
  AlgorithmDescriptor no_id = minimal_descriptor(Algorithm::kIndexmac, "");
  EXPECT_THROW(reg.add(no_id), SimError);
  AlgorithmDescriptor no_supports = minimal_descriptor(Algorithm::kIndexmac, "fam");
  no_supports.supports = nullptr;
  EXPECT_THROW(reg.add(no_supports), SimError);
  AlgorithmDescriptor no_emit = minimal_descriptor(Algorithm::kIndexmac, "fam");
  no_emit.emit = nullptr;
  EXPECT_THROW(reg.add(no_emit), SimError);
  // The footprint hook stays optional: dense has no analytic model.
  reg.add(minimal_descriptor(Algorithm::kIndexmac, "fam"));
  EXPECT_EQ(reg.all().size(), 1u);
}

TEST(AlgorithmRegistry, InstanceIteratesInRegistrationOrder) {
  const auto& all = AlgorithmRegistry::instance().all();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].id, "rowwise");
  EXPECT_EQ(all[1].id, "indexmac");
  EXPECT_EQ(all[2].id, "indexmac4");
  EXPECT_EQ(all[3].id, "dense");
  EXPECT_EQ(all[4].id, "ssr");
  EXPECT_EQ(AlgorithmRegistry::instance().known_ids(),
            "rowwise, indexmac, indexmac4, dense, ssr");
}

TEST(AlgorithmRegistry, UnknownIdErrorListsEveryFamily) {
  try {
    (void)AlgorithmRegistry::instance().by_id("no-such-algorithm");
    FAIL() << "unknown id must raise";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no-such-algorithm"), std::string::npos) << msg;
    for (const char* id : {"rowwise", "indexmac", "indexmac4", "dense", "ssr"})
      EXPECT_NE(msg.find(id), std::string::npos) << msg << " missing " << id;
  }
  EXPECT_EQ(AlgorithmRegistry::instance().find("no-such-algorithm"), nullptr);
}

TEST(AlgorithmRegistry, IdAndEnumLookupsRoundTrip) {
  const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  for (const AlgorithmDescriptor& d : reg.all()) {
    EXPECT_EQ(reg.by_id(d.id).algorithm, d.algorithm) << d.id;
    EXPECT_EQ(reg.by_algorithm(d.algorithm).id, d.id) << d.id;
    EXPECT_EQ(algorithm_name(d.algorithm), d.display_name) << d.id;
  }
}

TEST(AlgorithmRegistry, BuiltInDescriptorsCarryTheExpectedPolicies) {
  const AlgorithmRegistry& reg = AlgorithmRegistry::instance();
  EXPECT_EQ(reg.by_id("rowwise").pairing, PairingRole::kBaseline);
  EXPECT_EQ(reg.by_id("indexmac").pairing, PairingRole::kProposed);
  EXPECT_EQ(reg.by_id("indexmac4").pairing, PairingRole::kProposedV2);
  EXPECT_EQ(reg.by_id("dense").pairing, PairingRole::kStandalone);
  EXPECT_EQ(reg.by_id("ssr").pairing, PairingRole::kStandalone);

  EXPECT_FALSE(reg.by_id("dense").supports_sampled);
  EXPECT_TRUE(reg.by_id("ssr").supports_sampled);
  EXPECT_TRUE(reg.by_id("dense").dense_operands);
  EXPECT_EQ(reg.by_id("dense").footprint, nullptr);  // no analytic model
  for (const char* id : {"rowwise", "indexmac", "indexmac4", "ssr"})
    EXPECT_NE(reg.by_id(id).footprint, nullptr) << id;

  // Grid support: rowwise spans every cell; the custom-instruction
  // families are B-stationary; dense and ssr additionally pin unroll 1.
  using kernels::Dataflow;
  EXPECT_TRUE(reg.by_id("rowwise").supports(Dataflow::kAStationary, 4));
  EXPECT_FALSE(reg.by_id("indexmac").supports(Dataflow::kAStationary, 1));
  EXPECT_TRUE(reg.by_id("indexmac").supports(Dataflow::kBStationary, 4));
  EXPECT_TRUE(reg.by_id("ssr").supports(Dataflow::kBStationary, 1));
  EXPECT_FALSE(reg.by_id("ssr").supports(Dataflow::kBStationary, 2));
  EXPECT_FALSE(reg.by_id("ssr").supports(Dataflow::kCStationary, 1));
  EXPECT_FALSE(reg.by_id("dense").supports(Dataflow::kBStationary, 2));
}

TEST(AlgorithmRegistry, PairingRoleNames) {
  EXPECT_STREQ(pairing_role_name(PairingRole::kBaseline), "baseline");
  EXPECT_STREQ(pairing_role_name(PairingRole::kProposed), "proposed");
  EXPECT_STREQ(pairing_role_name(PairingRole::kProposedV2), "proposed-v2");
  EXPECT_STREQ(pairing_role_name(PairingRole::kStandalone), "standalone");
}

}  // namespace
}  // namespace indexmac::core
