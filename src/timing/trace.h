// Dynamic instruction trace: the timing model is trace-driven off the
// functional simulator, which supplies the correct execution path, memory
// addresses, vector lengths and resolved vindexmac register indices.
// Wrong-path (mis-speculated) instructions are not simulated; the branch
// mispredict penalty models the front-end refill (see DESIGN.md).
//
// The trace is zero-allocation: next() fills a caller-owned DynInst slot in
// place, and gather addresses live in a fixed scratch buffer owned by the
// TraceSource (vl never exceeds isa::kVlMax), so retiring an instruction —
// gathers included — performs no heap allocation.
#pragma once

#include <array>
#include <cstdint>

#include "common/error.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"
#include "isa/isa.h"
#include "isa/static_info.h"

namespace indexmac::timing {

/// One dynamic (executed) instruction with everything timing needs.
/// `info` and `gather_addrs` point into Program / TraceSource storage; a
/// DynInst is only valid until the next TraceSource::next() call.
struct DynInst {
  isa::Instruction inst;
  const isa::StaticInstInfo* info = nullptr;  ///< predecoded metadata for inst
  std::uint64_t pc = 0;
  bool branch_taken = false;        ///< branches/jumps: control transferred
  bool is_halt = false;             ///< ebreak/ecall
  std::uint64_t mem_addr = 0;       ///< loads/stores: effective address
  std::uint32_t mem_bytes = 0;      ///< loads/stores: access size
  std::uint32_t vl = 0;             ///< vector length governing this op
  std::uint8_t indirect_vreg = 0;   ///< v(f)indexmac*: resolved VRF source
  std::uint8_t indirect_vreg2 = 0;  ///< dual-row forms: second VRF source
  std::uint64_t ssr_value_addr = 0;  ///< v(f)indexmacs: stream-0 word address
  std::uint64_t ssr_index_addr = 0;  ///< v(f)indexmacs: stream-1 word address
  std::uint32_t gather_count = 0;   ///< vluxei32: number of element addresses
  const std::uint64_t* gather_addrs = nullptr;  ///< vluxei32: per-element addresses
  std::int32_t marker_id = -1;      ///< markers: id, else -1
  /// ssrcfg/ssren: bit s set iff this op reprograms stream s's address
  /// generator (ssrcfg: the stream named by rd; ssren: the streams being
  /// enabled, which rewind to their base). Timing uses this to invalidate
  /// only the affected streams' line buffers.
  std::uint8_t ssr_ctl_mask = 0;
};

/// Pulls dynamic instructions from a functional Machine, one per step.
class TraceSource {
 public:
  /// `stepper`, when non-null, replaces Machine::step as the advance
  /// mechanism (--engine=threaded): it must be bound to `machine`, and its
  /// step() contract guarantees the observable per-instruction stream —
  /// and therefore every DynInst this source produces — is identical to
  /// the interpreter's.
  explicit TraceSource(Machine& machine, ThreadedEngine* stepper = nullptr)
      : machine_(machine),
        stepper_(stepper),
        code_(machine.program().decoded().data()),
        info_(machine.program().static_info().data()),
        base_(machine.program().base()),
        code_bytes_(machine.program().end() - machine.program().base()) {}

  /// Fills `out` with the next executed instruction and returns true, or
  /// returns false after the halt instruction has been delivered (the halt
  /// itself is delivered with is_halt=true). `out.gather_addrs` aliases
  /// scratch storage owned by this TraceSource: it is overwritten by the
  /// following next() call and must not outlive it.
  bool next(DynInst& out) {
    if (done_) return false;
    const ArchState& pre = machine_.state();
    const std::uint64_t pc = pre.pc;
    const std::uint64_t offset = pc - base_;
    if (pc < base_ || offset >= code_bytes_ || (offset & 3) != 0)
      raise("trace: " + describe_pc(machine_.program(), pc));
    const std::size_t slot = offset >> 2;
    const isa::Instruction& in = code_[slot];
    const isa::StaticInstInfo& si = info_[slot];
    out.inst = in;
    out.info = &si;
    out.pc = pc;
    out.vl = pre.vl;
    out.mem_addr = 0;
    out.mem_bytes = 0;
    out.indirect_vreg = 0;
    out.indirect_vreg2 = 0;
    out.ssr_value_addr = 0;
    out.ssr_index_addr = 0;
    out.gather_count = 0;
    out.gather_addrs = gather_scratch_.data();
    out.marker_id = -1;
    out.ssr_ctl_mask = 0;
    if (si.has(isa::kSiGather)) {
      const std::uint64_t base = pre.x[in.rs1];
      for (unsigned i = 0; i < pre.vl; ++i) gather_scratch_[i] = base + pre.v[in.rs2][i];
      out.gather_count = pre.vl;
      out.mem_bytes = pre.vl * 4;
    } else if (si.has(isa::kSiScalarLoad | isa::kSiScalarStore)) {
      out.mem_addr = pre.x[in.rs1] + static_cast<std::int64_t>(in.imm);
      out.mem_bytes = si.scalar_mem_bytes;
    } else if (si.has(isa::kSiVectorLoad | isa::kSiVectorStore)) {
      out.mem_addr = pre.x[in.rs1];
      out.mem_bytes = pre.vl * 4;
    } else if (si.has(isa::kSiIndirectVreg)) {
      const std::uint64_t packed = pre.x[in.rs1];
      if (si.has(isa::kSiPackedIndex)) {
        out.indirect_vreg = static_cast<std::uint8_t>(16u | (packed & 0xf));
        if (si.has(isa::kSiDualMac))
          out.indirect_vreg2 = static_cast<std::uint8_t>(16u | ((packed >> 4) & 0xf));
      } else {
        out.indirect_vreg = static_cast<std::uint8_t>(packed & 0x1f);
      }
    } else if (si.has(isa::kSiSsrMac)) {
      // Streaming MAC: resolve the stream word addresses and the indirect
      // VRF source before the machine advances the stream positions. The
      // machine itself raises on a disabled/empty stream during step().
      const auto& streams = machine_.ssr();
      out.ssr_value_addr = streams[0].base + 4ull * streams[0].pos;
      out.ssr_index_addr = streams[1].base + 4ull * streams[1].pos;
      if (streams[1].enabled && streams[1].count != 0)
        out.indirect_vreg = static_cast<std::uint8_t>(
            machine_.memory().read_u32(out.ssr_index_addr) & 0x1f);
    } else if (si.has(isa::kSiSsrCtl)) {
      out.ssr_ctl_mask = in.op == isa::Op::kSsrCfg
                             ? static_cast<std::uint8_t>(1u << in.rd)
                             : static_cast<std::uint8_t>(pre.x[in.rs1] & 0xf);
    } else if (si.has(isa::kSiMarker)) {
      out.marker_id = in.imm;
    }
    const StopReason stop = stepper_ ? stepper_->step() : machine_.step();
    out.branch_taken =
        si.has(isa::kSiBranch | isa::kSiJump) && machine_.state().pc != pc + 4;
    out.is_halt = stop == StopReason::kEbreak || stop == StopReason::kEcall;
    done_ = out.is_halt;
    return true;
  }

 private:
  Machine& machine_;
  ThreadedEngine* stepper_;
  const isa::Instruction* code_;
  const isa::StaticInstInfo* info_;
  std::uint64_t base_;
  std::uint64_t code_bytes_;
  std::array<std::uint64_t, isa::kVlMax> gather_scratch_{};
  bool done_ = false;
};

}  // namespace indexmac::timing
