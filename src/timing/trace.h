// Dynamic instruction trace: the timing model is trace-driven off the
// functional simulator, which supplies the correct execution path, memory
// addresses, vector lengths and resolved vindexmac register indices.
// Wrong-path (mis-speculated) instructions are not simulated; the branch
// mispredict penalty models the front-end refill (see DESIGN.md).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fsim/machine.h"
#include "isa/isa.h"

namespace indexmac::timing {

/// One dynamic (executed) instruction with everything timing needs.
struct DynInst {
  isa::Instruction inst;
  std::uint64_t pc = 0;
  bool branch_taken = false;        ///< branches/jumps: control transferred
  std::uint64_t mem_addr = 0;       ///< loads/stores: effective address
  std::uint32_t mem_bytes = 0;      ///< loads/stores: access size
  std::uint32_t vl = 0;             ///< vector length governing this op
  std::uint8_t indirect_vreg = 0;   ///< vindexmac: resolved VRF source
  std::vector<std::uint64_t> gather_addrs;  ///< vluxei32: per-element addresses
  std::int32_t marker_id = -1;      ///< markers: id, else -1
  bool is_halt = false;             ///< ebreak/ecall
};

/// Pulls dynamic instructions from a functional Machine, one per step.
class TraceSource {
 public:
  explicit TraceSource(Machine& machine) : machine_(machine) {}

  /// Returns the next executed instruction, or nullopt after the halt
  /// instruction has been delivered (the halt itself is delivered with
  /// is_halt=true).
  std::optional<DynInst> next() {
    if (done_) return std::nullopt;
    const ArchState& pre = machine_.state();
    const std::uint64_t pc = pre.pc;
    DynInst out;
    out.inst = machine_.program().at(pc);
    out.pc = pc;
    out.vl = pre.vl;
    const isa::Instruction& in = out.inst;
    using isa::Op;
    if (in.op == Op::kVluxei32) {
      const std::uint64_t base = pre.x[in.rs1];
      out.gather_addrs.reserve(pre.vl);
      for (unsigned i = 0; i < pre.vl; ++i)
        out.gather_addrs.push_back(base + pre.v[in.rs2][i]);
      out.mem_bytes = pre.vl * 4;
    } else if (isa::is_scalar_load(in.op) || isa::is_scalar_store(in.op)) {
      out.mem_addr = pre.x[in.rs1] + static_cast<std::int64_t>(in.imm);
      out.mem_bytes = (in.op == Op::kLd || in.op == Op::kSd) ? 8 : 4;
    } else if (isa::is_vector_load(in.op) || isa::is_vector_store(in.op)) {
      out.mem_addr = pre.x[in.rs1];
      out.mem_bytes = pre.vl * 4;
    } else if (in.op == Op::kVindexmacVx || in.op == Op::kVfindexmacVx) {
      out.indirect_vreg = static_cast<std::uint8_t>(pre.x[in.rs1] & 0x1f);
    } else if (in.op == Op::kMarker) {
      out.marker_id = in.imm;
    }
    const StopReason stop = machine_.step();
    out.branch_taken = (isa::is_branch(in.op) || isa::is_jump(in.op)) &&
                       machine_.state().pc != pc + 4;
    out.is_halt = stop == StopReason::kEbreak || stop == StopReason::kEcall;
    done_ = out.is_halt;
    return out;
  }

 private:
  Machine& machine_;
  bool done_ = false;
};

}  // namespace indexmac::timing
