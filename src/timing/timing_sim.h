// Cycle-level timing model of the decoupled vector processor (Table I).
//
// Model style: trace-driven timestamp dataflow. The functional simulator
// supplies the committed instruction stream; for each dynamic instruction
// the model computes fetch/dispatch/issue/complete/commit cycles subject to
//   * front-end width and branch-mispredict refill (static BTFNT predictor),
//   * ROB / LSQ / physical-register-file style occupancy (ROB bound),
//   * 8-wide issue and per-op execution latencies on the scalar side,
//   * the decoupled vector path: vector instructions are shipped, in
//     program order and only past resolved branches (squash-free dispatch,
//     as decoupled designs require for vector architectural state), into a
//     16-entry vector instruction queue together with their scalar operand
//     values; the engine executes in order, one operation per cycle of
//     lane occupancy, with register-granular scoreboarding;
//   * vector loads/stores access the banked L2 through 16 load / 16 store
//     queues (no L1 on the vector path), with cache/DRAM contention from
//     mem::MemorySystem;
//   * vector->scalar moves (vmv.x.s / vfmv.f.s) return through the engine,
//     stalling dependent scalar work - the round trip both algorithms pay
//     per non-zero (twice for Row-Wise-SpMM, once for vindexmac).
//
// See DESIGN.md section 4 for the list of deliberate simplifications.
#pragma once

#include <cstdint>
#include <vector>

#include "asm/program.h"
#include "fsim/engine.h"
#include "mem/main_memory.h"
#include "mem/memory_system.h"
#include "timing/config.h"

namespace indexmac::timing {

/// Commit-time marker event (see kernels::MarkerId).
struct MarkerEvent {
  std::int32_t id = 0;
  std::uint64_t cycle = 0;        ///< commit cycle of the marker
  std::uint64_t instructions = 0; ///< instructions committed so far
  MemStats mem;                   ///< memory counters at this point
};

/// Where vector dispatch time goes: for each vector instruction the model
/// attributes the wait between earliest-possible and actual send to its
/// binding constraint. Useful for understanding *why* a kernel is slow.
struct VectorDispatchStalls {
  std::uint64_t scalar_operand = 0;  ///< waiting on a scalar source (round trips!)
  std::uint64_t branch_shadow = 0;   ///< waiting for older branches to resolve
  std::uint64_t queue_full = 0;      ///< vector instruction queue had no slot
  std::uint64_t bandwidth = 0;       ///< one-per-cycle send port busy

  [[nodiscard]] std::uint64_t total() const {
    return scalar_operand + branch_shadow + queue_full + bandwidth;
  }
};

/// Aggregate results of one timed execution.
struct TimingStats {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t scalar_instructions = 0;
  std::uint64_t vector_instructions = 0;
  std::uint64_t vector_loads = 0;
  std::uint64_t vector_stores = 0;
  std::uint64_t vector_macs = 0;          ///< vfmacc/vmacc/v(f)indexmac
  std::uint64_t vector_to_scalar_moves = 0;
  std::uint64_t branch_mispredicts = 0;
  VectorDispatchStalls dispatch_stalls;
  MemStats mem;

  [[nodiscard]] double ipc() const {
    return cycles == 0 ? 0.0 : static_cast<double>(instructions) / static_cast<double>(cycles);
  }
};

/// Timing simulator for one program execution.
class TimingSim {
 public:
  /// `engine` selects how the trace-driving functional simulation advances
  /// (interpreter or threaded-code stepper). Cycle counts and every other
  /// statistic are identical either way — the trace stream is bit-equal by
  /// the engines' correctness contract — so the choice is pure speed.
  TimingSim(const Program& program, MainMemory& memory, const ProcessorConfig& config,
            ExecEngine engine = ExecEngine::kInterp);

  /// Runs to completion (ebreak/ecall). Throws SimError if the instruction
  /// budget is exhausted first (runaway program).
  const TimingStats& run(std::uint64_t max_instructions = 2'000'000'000);

  [[nodiscard]] const TimingStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<MarkerEvent>& markers() const { return markers_; }
  [[nodiscard]] const ProcessorConfig& config() const { return config_; }

 private:
  const Program& program_;
  MainMemory& memory_;
  ProcessorConfig config_;
  ExecEngine engine_;
  TimingStats stats_;
  std::vector<MarkerEvent> markers_;
  bool ran_ = false;
};

}  // namespace indexmac::timing
