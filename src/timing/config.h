// Configuration of the simulated processor (Table I of the paper).
//
// The timing model replaces the authors' gem5 "1bDV" decoupled-vector
// setup [24]: an 8-way out-of-order scalar core plus a 512-bit, 16-lane
// decoupled vector engine whose load/store queues talk directly to the
// shared L2.
#pragma once

#include <string>

#include "mem/memory_system.h"

namespace indexmac::timing {

/// Scalar out-of-order core parameters (Table I, "Scalar core").
struct ScalarCoreConfig {
  unsigned fetch_width = 8;        ///< instructions fetched per cycle
  unsigned issue_width = 8;        ///< 8-way issue out-of-order
  unsigned commit_width = 8;
  unsigned rob_entries = 60;       ///< 60-entry ROB
  unsigned lsq_entries = 16;       ///< 16-entry LSQ
  unsigned phys_int_regs = 90;     ///< 90 physical integer registers
  unsigned phys_fp_regs = 90;      ///< 90 physical floating-point registers
  unsigned mispredict_penalty = 8; ///< front-end refill after a flush
  unsigned alu_latency = 1;
  unsigned mul_latency = 3;
};

/// Decoupled vector engine parameters (Table I, "Vector engine").
struct VectorEngineConfig {
  unsigned lanes = 16;             ///< 32-bit elements x 16 execution lanes
  unsigned queue_entries = 16;     ///< vector instruction queue depth
  unsigned load_queues = 16;       ///< outstanding vector loads to L2
  unsigned store_queues = 16;      ///< outstanding vector stores to L2
  unsigned mac_latency = 5;        ///< vfmacc / vmacc / vindexmac pipeline
  unsigned alu_latency = 3;        ///< vadd and friends
  unsigned slide_latency = 2;      ///< vslide1down / vslidedown
  unsigned move_latency = 2;       ///< vmv family (engine-side)
  unsigned reduction_latency = 6;  ///< vredsum/vfredusum tree
  unsigned gather_lanes = 4;       ///< vluxei32 address-generation rate/cycle
  unsigned to_scalar_latency = 3;  ///< result transfer back to the scalar core
  unsigned dispatch_latency = 2;   ///< scalar core -> engine queue transfer
};

/// Whole-processor configuration.
struct ProcessorConfig {
  ScalarCoreConfig scalar;
  VectorEngineConfig vector;
  MemHierConfig memory;

  /// Human-readable rendition of the configuration (bench/table1_config).
  [[nodiscard]] std::string describe() const;
};

}  // namespace indexmac::timing
