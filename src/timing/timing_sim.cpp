#include "timing/timing_sim.h"

#include <array>
#include <memory>

#include "common/bitutil.h"
#include "common/error.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"
#include "timing/port_scheduler.h"
#include "timing/trace.h"

namespace indexmac::timing {
namespace {

using isa::Op;

/// Fixed front-end depth between a fetch slot and rename/dispatch.
constexpr std::uint64_t kFrontendDepth = 4;

/// Recent scalar stores for store-to-load forwarding / disambiguation.
struct PendingStore {
  std::uint64_t addr = 0;
  std::uint32_t bytes = 0;
  std::uint64_t data_ready = 0;
};

class Model {
 public:
  Model(const Program& program, MainMemory& memory, const ProcessorConfig& config,
        ExecEngine engine, TimingStats& stats, std::vector<MarkerEvent>& markers)
      : config_(config),
        machine_(program, memory),
        engine_(engine == ExecEngine::kThreaded ? std::make_unique<ThreadedEngine>(machine_)
                                                : nullptr),
        trace_(machine_, engine_.get()),
        mem_(config.memory),
        fetch_ports_(config.scalar.fetch_width),
        issue_ports_(config.scalar.issue_width),
        commit_ports_(config.scalar.commit_width),
        rob_(config.scalar.rob_entries),
        lsq_(config.scalar.lsq_entries),
        viq_(config.vector.queue_entries),
        vlq_(config.vector.load_queues),
        vsq_(config.vector.store_queues),
        stats_(stats),
        markers_(markers) {
    x_ready_.fill(0);
    f_ready_.fill(0);
    v_ready_.fill(0);
    // Resolve the per-class vector-engine latencies once; the per-op
    // switch in process_vector becomes a table lookup.
    vlat_cycles_[static_cast<int>(isa::VLatClass::kNone)] = config_.vector.alu_latency;
    vlat_cycles_[static_cast<int>(isa::VLatClass::kAlu)] = config_.vector.alu_latency;
    vlat_cycles_[static_cast<int>(isa::VLatClass::kMac)] = config_.vector.mac_latency;
    vlat_cycles_[static_cast<int>(isa::VLatClass::kSlide)] = config_.vector.slide_latency;
    vlat_cycles_[static_cast<int>(isa::VLatClass::kMove)] = config_.vector.move_latency;
    vlat_cycles_[static_cast<int>(isa::VLatClass::kReduction)] =
        config_.vector.reduction_latency;
  }

  void run(std::uint64_t max_instructions) {
    DynInst d;
    for (std::uint64_t n = 0; n < max_instructions; ++n) {
      if (!trace_.next(d)) {
        raise("timing: trace ended without a halt instruction at " +
              describe_pc(machine_.program(), machine_.state().pc));
      }
      process(d);
      if (d.is_halt) {
        stats_.instructions = n + 1;
        stats_.mem = mem_.stats();
        return;
      }
    }
    raise("timing: instruction budget of " + std::to_string(max_instructions) +
          " exhausted (runaway program?) at " +
          describe_pc(machine_.program(), machine_.state().pc));
  }

 private:
  // ---- helpers ----

  std::uint64_t xr(unsigned r) const { return r == 0 ? 0 : x_ready_[r]; }

  void set_x(unsigned r, std::uint64_t cycle) {
    if (r != 0) x_ready_[r] = cycle;
  }

  std::uint64_t scalar_srcs(const DynInst& d) const {
    const std::uint32_t flags = d.info->flags;
    std::uint64_t ready = 0;
    if (flags & isa::kSiReadsXRs1) ready = std::max(ready, xr(d.inst.rs1));
    if (flags & isa::kSiReadsXRs2) ready = std::max(ready, xr(d.inst.rs2));
    if (flags & isa::kSiReadsFRs1) ready = std::max(ready, f_ready_[d.inst.rs1]);
    if (flags & isa::kSiReadsFRs2) ready = std::max(ready, f_ready_[d.inst.rs2]);
    return ready;
  }

  /// Store-to-load forwarding: completion if an older in-flight store
  /// overlaps this load.
  std::uint64_t forward_from_stores(std::uint64_t addr, std::uint32_t bytes,
                                    std::uint64_t issue) const {
    std::uint64_t ready = 0;
    for (const PendingStore& s : store_ring_) {
      if (s.bytes == 0) continue;
      const bool overlap = addr < s.addr + s.bytes && s.addr < addr + bytes;
      if (overlap) ready = std::max(ready, std::max(issue, s.data_ready) + 1);
    }
    return ready;
  }

  // ---- per-instruction model ----

  void process(const DynInst& d) {
    // Front end: fetch slot (stalled after a mispredict), fixed depth to
    // dispatch, ROB entry must be free.
    const std::uint64_t fetch = fetch_ports_.claim(fetch_blocked_until_);
    std::uint64_t disp = rob_.available(fetch + kFrontendDepth);

    std::uint64_t ready = 0;          // ROB-completion cycle
    bool is_store_commit = false;     // scalar stores write at commit

    if (d.info->has(isa::kSiVector)) {
      ready = process_vector(d, disp);
      ++stats_.vector_instructions;
    } else {
      ready = process_scalar(d, disp, is_store_commit);
      ++stats_.scalar_instructions;
    }

    // In-order commit.
    const std::uint64_t commit = commit_ports_.claim(std::max(ready, last_commit_));
    last_commit_ = commit;
    rob_.claim(commit + 1);

    if (is_store_commit) {
      (void)mem_.scalar_data(d.mem_addr, d.mem_bytes, /*is_store=*/true, commit + 1);
      lsq_.claim(commit + 1);
      store_ring_[store_ring_next_] = PendingStore{d.mem_addr, d.mem_bytes, ready};
      store_ring_next_ = (store_ring_next_ + 1) % store_ring_.size();
    }

    if (d.marker_id >= 0)
      markers_.push_back(MarkerEvent{d.marker_id, commit, committed_ + 1, mem_.stats()});
    ++committed_;
    stats_.cycles = commit;
  }

  std::uint64_t process_scalar(const DynInst& d, std::uint64_t disp, bool& is_store_commit) {
    const Op op = d.inst.op;
    const std::uint32_t flags = d.info->flags;
    const std::uint64_t srcs = scalar_srcs(d);

    if (flags & isa::kSiScalarLoad) {
      const std::uint64_t avail = lsq_.available(disp);
      const std::uint64_t issue = issue_ports_.claim(std::max(avail, srcs));
      std::uint64_t done = forward_from_stores(d.mem_addr, d.mem_bytes, issue);
      if (done == 0) done = mem_.scalar_data(d.mem_addr, d.mem_bytes, false, issue + 1);
      lsq_.claim(done);
      if (op == Op::kFlw)
        f_ready_[d.inst.rd] = done;
      else
        set_x(d.inst.rd, done);
      return done;
    }

    if (flags & isa::kSiScalarStore) {
      const std::uint64_t avail = lsq_.available(disp);
      const std::uint64_t issue = issue_ports_.claim(std::max(avail, srcs));
      is_store_commit = true;  // LSQ entry + write handled at commit
      return issue + 1;
    }

    if (flags & (isa::kSiBranch | isa::kSiJump)) {
      const std::uint64_t issue = issue_ports_.claim(std::max(disp, srcs));
      const std::uint64_t resolve = issue + config_.scalar.alu_latency;
      // Static BTFNT predictor for conditional branches; direct jumps and
      // returns are assumed predicted (decode target / return stack).
      if (flags & isa::kSiBranch) {
        const bool predicted_taken = d.inst.imm < 0;
        if (predicted_taken != d.branch_taken) {
          ++stats_.branch_mispredicts;
          fetch_blocked_until_ =
              std::max(fetch_blocked_until_, resolve + config_.scalar.mispredict_penalty);
        }
      }
      last_branch_resolve_ = std::max(last_branch_resolve_, resolve);
      if (flags & isa::kSiJump) set_x(d.inst.rd, resolve);
      return resolve;
    }

    if (flags & (isa::kSiHalt | isa::kSiMarker)) {
      // Architectural no-ops: occupy a dispatch slot, complete immediately.
      return disp;
    }

    if (flags & isa::kSiSsrCtl) {
      // Stream control (ssrcfg/ssren): reprograms the address-generation
      // state machines. No x-register destination — the rd field names a
      // stream, not a register — and later streaming MACs must not issue
      // before the new stream state is visible engine-side.
      const std::uint64_t issue = issue_ports_.claim(std::max(disp, srcs));
      const std::uint64_t done = issue + config_.scalar.alu_latency;
      last_ssr_ctl_done_ = std::max(last_ssr_ctl_done_, done);
      // Drop buffered lines only for the streams this op reprograms
      // (DynInst::ssr_ctl_mask): configuring or re-enabling a stream moves
      // its address generator, so the held line must be refetched, but
      // setup traffic on the *other* streams must not flush lines an
      // active stream is still amortizing pops against.
      for (unsigned s = 0; s < ssr_line_valid_.size(); ++s)
        if ((d.ssr_ctl_mask >> s) & 1) ssr_line_valid_[s] = false;
      return done;
    }

    // Plain ALU work (incl. vsetvli, which computes vl on the scalar side).
    const std::uint64_t issue = issue_ports_.claim(std::max(disp, srcs));
    const unsigned latency =
        op == Op::kMul ? config_.scalar.mul_latency : config_.scalar.alu_latency;
    const std::uint64_t done = issue + latency;
    set_x(d.inst.rd, done);
    if (op == Op::kVsetvli) last_vsetvli_done_ = done;
    return done;
  }

  std::uint64_t process_vector(const DynInst& d, std::uint64_t disp) {
    const Op op = d.inst.op;
    const VectorEngineConfig& vc = config_.vector;

    // Dispatch to the engine: in program order, squash-free (all older
    // branches resolved), scalar operands and the governing vl available,
    // and a vector-queue slot free. One vector instruction per cycle.
    // Attribute the wait to its binding constraint for the stall breakdown.
    std::uint64_t operand_ready = std::max(scalar_srcs(d), last_vsetvli_done_);
    if (d.info->has(isa::kSiSsrMac))
      operand_ready = std::max(operand_ready, last_ssr_ctl_done_);
    std::uint64_t send =
        std::max({disp, operand_ready, last_branch_resolve_, last_vector_send_ + 1});
    const std::uint64_t queue_ready = viq_.available(send);
    if (send > disp) {
      VectorDispatchStalls& st = stats_.dispatch_stalls;
      if (send == operand_ready && operand_ready > disp)
        st.scalar_operand += send - disp;
      else if (send == last_branch_resolve_ && last_branch_resolve_ > disp)
        st.branch_shadow += send - disp;
      else
        st.bandwidth += send - disp;
    }
    stats_.dispatch_stalls.queue_full += queue_ready - send;
    send = queue_ready;
    last_vector_send_ = send;

    // Engine-side in-order issue with register-granular scoreboarding; the
    // per-op source sets are predecoded into StaticInstInfo::vreg_reads.
    const std::uint8_t vreads = d.info->vreg_reads;
    std::uint64_t deps = 0;
    if (vreads & isa::kVReadRd) deps = std::max(deps, v_ready_[d.inst.rd]);
    if (vreads & isa::kVReadRs1) deps = std::max(deps, v_ready_[d.inst.rs1]);
    if (vreads & isa::kVReadRs2) deps = std::max(deps, v_ready_[d.inst.rs2]);
    if (d.info->has(isa::kSiIndirectVreg)) {
      deps = std::max(deps, v_ready_[d.indirect_vreg]);  // the indirect VRF read
      if (d.info->has(isa::kSiDualMac)) deps = std::max(deps, v_ready_[d.indirect_vreg2]);
    }
    if (d.info->has(isa::kSiSsrMac)) {
      deps = std::max(deps, v_ready_[d.indirect_vreg]);  // stream-resolved VRF read
      // Each stream fronts memory with a one-line (64 B) buffer: only a
      // line crossing costs a vector-load access, so sequential streaming
      // amortizes one fetch over 16 pops per stream.
      const std::uint64_t addrs[2] = {d.ssr_value_addr, d.ssr_index_addr};
      for (unsigned s = 0; s < 2; ++s) {
        const std::uint64_t line = addrs[s] & ~std::uint64_t{63};
        if (ssr_line_valid_[s] && ssr_line_[s] == line) {
          deps = std::max(deps, ssr_line_ready_[s]);
          continue;
        }
        const std::uint64_t start = vlq_.available(send + vc.dispatch_latency);
        const std::uint64_t done = mem_.vector_data(line, 64, false, start + 1);
        vlq_.claim(done);
        ++stats_.vector_loads;
        ssr_line_[s] = line;
        ssr_line_valid_[s] = true;
        ssr_line_ready_[s] = done;
        deps = std::max(deps, done);
      }
    }

    const std::uint64_t occupancy =
        std::max<std::uint64_t>(1, ceil_div(std::max<std::uint32_t>(d.vl, 1), vc.lanes));
    std::uint64_t e_issue = std::max({send + vc.dispatch_latency, engine_next_issue_, deps});

    std::uint64_t ready_for_rob = send;  // most vector ops complete at send
    std::uint64_t engine_ops = occupancy;  // lane time the engine is busy for

    if (d.info->has(isa::kSiGather)) {
      // Gather: one element access per address, a few addresses per cycle.
      e_issue = std::max(e_issue, vlq_.available(e_issue));
      std::uint64_t done = e_issue + 1;
      for (std::uint32_t i = 0; i < d.gather_count; ++i) {
        const std::uint64_t start = e_issue + 1 + i / vc.gather_lanes;
        done = std::max(done, mem_.vector_data(d.gather_addrs[i], 4, false, start));
      }
      vlq_.claim(done);
      v_ready_[d.inst.rd] = done;
      ++stats_.vector_loads;
      engine_next_issue_ =
          e_issue + std::max<std::uint64_t>(1, ceil_div(std::max<std::uint32_t>(d.vl, 1),
                                                        vc.gather_lanes));
      viq_.claim(e_issue);
      return ready_for_rob;
    }
    if (d.info->has(isa::kSiVectorLoad)) {  // vle32 (the gather returned above)
      e_issue = std::max(e_issue, vlq_.available(e_issue));
      const std::uint64_t done =
          d.mem_bytes == 0 ? e_issue + 1
                           : mem_.vector_data(d.mem_addr, d.mem_bytes, false, e_issue + 1);
      vlq_.claim(done);
      v_ready_[d.inst.rd] = done;
      ++stats_.vector_loads;
    } else if (d.info->has(isa::kSiVectorStore)) {
      e_issue = std::max(e_issue, vsq_.available(e_issue));
      const std::uint64_t done =
          d.mem_bytes == 0 ? e_issue + 1
                           : mem_.vector_data(d.mem_addr, d.mem_bytes, true, e_issue + 1);
      vsq_.claim(done);
      ++stats_.vector_stores;
    } else if (d.info->has(isa::kSiVectorToScalar)) {
      const std::uint64_t returned = e_issue + vc.move_latency + vc.to_scalar_latency;
      if (op == Op::kVmvXS)
        set_x(d.inst.rd, returned);
      else
        f_ready_[d.inst.rd] = returned;
      ready_for_rob = returned;  // commits only once the value is back
      ++stats_.vector_to_scalar_moves;
    } else {
      const unsigned latency = vlat_cycles_[static_cast<int>(d.info->vlat)];
      const bool dual = d.info->has(isa::kSiDualMac);
      if (d.info->has(isa::kSiVectorMac)) stats_.vector_macs += dual ? 2 : 1;
      // Dual-row MACs run two back-to-back operations through the MAC
      // pipeline: the second starts one occupancy slice after the first,
      // so the accumulator is ready one slice later and the engine stays
      // busy for two operations' worth of lane time — while costing a
      // single dispatch and a single queue slot.
      v_ready_[d.inst.rd] = e_issue + latency + (dual ? occupancy : 0);
      if (dual) engine_ops = 2 * occupancy;
    }

    engine_next_issue_ = e_issue + engine_ops;
    viq_.claim(e_issue);  // the queue slot frees when the engine issues
    return ready_for_rob;
  }

  ProcessorConfig config_;
  Machine machine_;
  std::unique_ptr<ThreadedEngine> engine_;  ///< present under ExecEngine::kThreaded
  TraceSource trace_;
  MemorySystem mem_;
  PortScheduler fetch_ports_;
  PortScheduler issue_ports_;
  PortScheduler commit_ports_;
  SlotPool rob_;
  SlotPool lsq_;
  SlotPool viq_;
  SlotPool vlq_;
  SlotPool vsq_;

  std::array<std::uint64_t, isa::kNumXRegs> x_ready_{};
  std::array<std::uint64_t, isa::kNumFRegs> f_ready_{};
  std::array<std::uint64_t, isa::kNumVRegs> v_ready_{};
  std::array<PendingStore, 16> store_ring_{};
  std::size_t store_ring_next_ = 0;

  /// Engine latency per isa::VLatClass, resolved from the config once.
  std::array<unsigned, static_cast<int>(isa::VLatClass::kCount)> vlat_cycles_{};

  /// SSR stream-side line buffers (value stream 0, index stream 1): the
  /// last fetched 64-byte line and the cycle it becomes usable. Invalidated
  /// by stream-control ops, which reprogram the address generators.
  std::array<std::uint64_t, 2> ssr_line_{};
  std::array<bool, 2> ssr_line_valid_{};
  std::array<std::uint64_t, 2> ssr_line_ready_{};

  std::uint64_t fetch_blocked_until_ = 0;
  std::uint64_t last_commit_ = 0;
  std::uint64_t last_branch_resolve_ = 0;
  std::uint64_t last_vector_send_ = 0;
  std::uint64_t last_vsetvli_done_ = 0;
  std::uint64_t last_ssr_ctl_done_ = 0;
  std::uint64_t engine_next_issue_ = 0;
  std::uint64_t committed_ = 0;

  TimingStats& stats_;
  std::vector<MarkerEvent>& markers_;
};

}  // namespace

TimingSim::TimingSim(const Program& program, MainMemory& memory, const ProcessorConfig& config,
                     ExecEngine engine)
    : program_(program), memory_(memory), config_(config), engine_(engine) {}

const TimingStats& TimingSim::run(std::uint64_t max_instructions) {
  IMAC_CHECK(!ran_, "TimingSim::run may only be called once per instance");
  ran_ = true;
  Model model(program_, memory_, config_, engine_, stats_, markers_);
  model.run(max_instructions);
  return stats_;
}

}  // namespace indexmac::timing
