#include "timing/config.h"

#include <sstream>

namespace indexmac::timing {

std::string ProcessorConfig::describe() const {
  std::ostringstream s;
  s << "Scalar core\n"
    << "  RISC-V subset (RV64 I/M + F loads/stores + RVV slice), "
    << scalar.issue_width << "-way-issue out-of-order, " << scalar.lsq_entries
    << "-entry LSQ,\n  " << scalar.phys_int_regs << " physical integer and "
    << scalar.phys_fp_regs << " physical floating-point registers, " << scalar.rob_entries
    << "-entry ROB\n"
    << "  L1I cache: " << memory.l1i.hit_latency << "-cycle hit latency, " << memory.l1i.ways
    << "-way, " << memory.l1i.size_bytes / 1024 << "KB\n"
    << "  L1D cache: " << memory.l1d.hit_latency << "-cycle hit latency, " << memory.l1d.ways
    << "-way, " << memory.l1d.size_bytes / 1024 << "KB\n"
    << "Vector engine\n"
    << "  " << vector.lanes * 32 << "-bit vector engine with " << vector.lanes
    << "-lane configuration (32-bit elements x " << vector.lanes << " execution lanes)\n"
    << "  Connected directly to the L2 cache through " << vector.store_queues
    << " store queues and " << vector.load_queues << " load queues\n"
    << "L2 cache\n"
    << "  " << memory.l2.ways << "-way, " << memory.l2_banks << "-bank\n"
    << "  " << memory.l2.hit_latency << "-cycle hit latency, " << memory.l2.size_bytes / 1024
    << "KB shared by both the big core and the vector engine\n"
    << "Main memory\n"
    << "  DDR4-2400-like: " << memory.dram_latency << "-cycle access latency, "
    << memory.dram_line_occupancy << " cycles/line channel occupancy\n";
  return s.str();
}

}  // namespace indexmac::timing
