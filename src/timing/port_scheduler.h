// Small helper resources for the timestamp-dataflow timing model.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"

namespace indexmac::timing {

/// Schedules use of a W-ports-per-cycle resource (fetch, issue, commit).
/// Requests may arrive in any cycle order; bookkeeping uses a bounded
/// sliding window of recent cycles (requests older than the window are
/// clamped forward, a negligible approximation for well-formed pipelines).
class PortScheduler {
 public:
  explicit PortScheduler(unsigned width, std::size_t window = 4096)
      : width_(width), used_(window, 0) {
    IMAC_CHECK(width >= 1, "port width must be positive");
  }

  /// Returns the first cycle >= earliest with a free port and claims it.
  std::uint64_t claim(std::uint64_t earliest) {
    if (earliest < base_) earliest = base_;
    advance_window(earliest);
    std::uint64_t cycle = earliest;
    while (true) {
      advance_window(cycle);
      std::uint8_t& used = used_[cycle % used_.size()];
      if (used < width_) {
        ++used;
        return cycle;
      }
      ++cycle;
    }
  }

 private:
  void advance_window(std::uint64_t cycle) {
    // Slide the window forward so `cycle` is representable.
    const std::uint64_t window = used_.size();
    if (cycle < base_ + window) return;
    const std::uint64_t new_base = cycle - window / 2;
    for (std::uint64_t c = base_; c < new_base && c < base_ + window; ++c)
      used_[c % window] = 0;
    base_ = new_base;
  }

  unsigned width_;
  std::vector<std::uint8_t> used_;
  std::uint64_t base_ = 0;
};

/// A pool of N slots each held until a completion time (ROB, LSQ, queues).
/// Allocation is in program order (ring), which matches how these
/// structures fill and drain.
class SlotPool {
 public:
  explicit SlotPool(unsigned entries) : free_at_(entries, 0) {
    IMAC_CHECK(entries >= 1, "slot pool must have at least one entry");
  }

  /// Earliest cycle (>= earliest) at which the next slot is available.
  [[nodiscard]] std::uint64_t available(std::uint64_t earliest) const {
    return std::max(earliest, free_at_[next_]);
  }

  /// Claims the next slot, holding it until `release_cycle`.
  void claim(std::uint64_t release_cycle) {
    free_at_[next_] = release_cycle;
    next_ = (next_ + 1) % free_at_.size();
  }

  void reset() {
    std::fill(free_at_.begin(), free_at_.end(), 0);
    next_ = 0;
  }

 private:
  std::vector<std::uint64_t> free_at_;
  std::size_t next_ = 0;
};

}  // namespace indexmac::timing
