// Small helper resources for the timestamp-dataflow timing model.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.h"

namespace indexmac::timing {

/// Schedules use of a W-ports-per-cycle resource (fetch, issue, commit).
/// Requests may arrive in any cycle order; bookkeeping uses a bounded
/// sliding window of recent cycles (requests older than the window are
/// clamped forward, a negligible approximation for well-formed pipelines).
class PortScheduler {
 public:
  explicit PortScheduler(unsigned width, std::size_t window = 4096)
      : width_(width), used_(window, 0) {
    IMAC_CHECK(width >= 1, "port width must be positive");
  }

  /// Returns the first cycle >= earliest with a free port and claims it.
  ///
  /// Requests whose `earliest` lags behind the claim frontier (the common
  /// case: fetch restarts only on mispredicts, so `earliest` stays put
  /// while the frontier advances) would otherwise rescan every
  /// already-full cycle per claim — O(window) per instruction, quadratic
  /// per run. The scheduler caches one known-full interval
  /// [full_from_, full_until_) that tracks the active claim frontier:
  /// claims landing inside it jump straight past its end. This is a pure
  /// scan shortcut — the returned cycle is identical to the plain scan's.
  std::uint64_t claim(std::uint64_t earliest) {
    if (earliest < base_) earliest = base_;
    if (earliest >= full_from_ && earliest < full_until_) earliest = full_until_;
    advance_window(earliest);
    const std::uint64_t scan_start = earliest;
    std::uint64_t cycle = earliest;
    while (true) {
      advance_window(cycle);
      std::uint8_t& used = used_[cycle % used_.size()];
      if (used < width_) {
        ++used;
        // The scan proved [scan_start, cycle) full — plus `cycle` itself
        // if this claim just filled it. Fold that into the cached
        // interval: merge when they touch, else move the cache to the
        // newer (righter) region, which is where future claims land.
        const std::uint64_t known_end = cycle + (used == width_ ? 1 : 0);
        if (scan_start <= full_until_ && full_from_ <= known_end) {
          full_from_ = std::min(full_from_, scan_start);
          full_until_ = std::max(full_until_, known_end);
        } else if (scan_start > full_until_) {
          full_from_ = scan_start;
          full_until_ = known_end;
        }
        return cycle;
      }
      ++cycle;
    }
  }

 private:
  void advance_window(std::uint64_t cycle) {
    // Slide the window forward so `cycle` is representable. The recycled
    // slots are zeroed range-wise (the ring maps them to at most two
    // contiguous spans) rather than one modulo at a time.
    const std::uint64_t window = used_.size();
    if (cycle < base_ + window) return;
    const std::uint64_t new_base = cycle - window / 2;
    const std::uint64_t count = std::min(new_base - base_, window);
    const std::uint64_t first = base_ % window;
    const std::uint64_t head = std::min(count, window - first);
    std::fill_n(used_.begin() + static_cast<std::ptrdiff_t>(first), head, std::uint8_t{0});
    std::fill_n(used_.begin(), count - head, std::uint8_t{0});
    base_ = new_base;
    if (full_until_ < base_) full_from_ = full_until_ = base_;
    else if (full_from_ < base_) full_from_ = base_;
  }

  unsigned width_;
  std::vector<std::uint8_t> used_;
  std::uint64_t base_ = 0;
  // Every cycle in [full_from_, full_until_) is known to be fully claimed.
  std::uint64_t full_from_ = 0;
  std::uint64_t full_until_ = 0;
};

/// A pool of N slots each held until a completion time (ROB, LSQ, queues).
/// Allocation is in program order (ring), which matches how these
/// structures fill and drain.
class SlotPool {
 public:
  explicit SlotPool(unsigned entries) : free_at_(entries, 0) {
    IMAC_CHECK(entries >= 1, "slot pool must have at least one entry");
  }

  /// Earliest cycle (>= earliest) at which the next slot is available.
  [[nodiscard]] std::uint64_t available(std::uint64_t earliest) const {
    return std::max(earliest, free_at_[next_]);
  }

  /// Claims the next slot, holding it until `release_cycle`.
  void claim(std::uint64_t release_cycle) {
    free_at_[next_] = release_cycle;
    if (++next_ == free_at_.size()) next_ = 0;
  }

  void reset() {
    std::fill(free_at_.begin(), free_at_.end(), 0);
    next_ = 0;
  }

 private:
  std::vector<std::uint64_t> free_at_;
  std::size_t next_ = 0;
};

}  // namespace indexmac::timing
