#include "asm/text_assembler.h"

#include <cctype>
#include <optional>
#include <sstream>
#include <vector>

#include "asm/assembler.h"
#include "common/error.h"

namespace indexmac {
namespace {

using isa::Op;

struct Operand {
  enum class Kind { kXReg, kFReg, kVReg, kImm, kMem, kSymbol } kind;
  unsigned reg = 0;       // kXReg/kFReg/kVReg; base register for kMem
  std::int64_t imm = 0;   // kImm; offset for kMem
  std::string symbol;     // kSymbol
};

std::optional<unsigned> parse_xreg_name(const std::string& t) {
  static const std::map<std::string, unsigned> kAbi = {
      {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},   {"tp", 4},  {"t0", 5},  {"t1", 6},
      {"t2", 7},   {"s0", 8},  {"fp", 8},   {"s1", 9},   {"a0", 10}, {"a1", 11}, {"a2", 12},
      {"a3", 13},  {"a4", 14}, {"a5", 15},  {"a6", 16},  {"a7", 17}, {"s2", 18}, {"s3", 19},
      {"s4", 20},  {"s5", 21}, {"s6", 22},  {"s7", 23},  {"s8", 24}, {"s9", 25}, {"s10", 26},
      {"s11", 27}, {"t3", 28}, {"t4", 29},  {"t5", 30},  {"t6", 31}};
  if (auto it = kAbi.find(t); it != kAbi.end()) return it->second;
  if (t.size() >= 2 && t[0] == 'x') {
    unsigned n = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) return std::nullopt;
      n = n * 10 + static_cast<unsigned>(t[i] - '0');
    }
    if (n < 32) return n;
  }
  return std::nullopt;
}

std::optional<unsigned> parse_prefixed_reg(const std::string& t, char prefix) {
  if (t.size() < 2 || t[0] != prefix) return std::nullopt;
  unsigned n = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(t[i]))) return std::nullopt;
    n = n * 10 + static_cast<unsigned>(t[i] - '0');
  }
  if (n < 32) return n;
  return std::nullopt;
}

std::optional<std::int64_t> parse_int(const std::string& t) {
  if (t.empty()) return std::nullopt;
  std::size_t i = 0;
  bool neg = false;
  if (t[0] == '-' || t[0] == '+') {
    neg = t[0] == '-';
    i = 1;
  }
  if (i >= t.size()) return std::nullopt;
  int base = 10;
  if (t.size() - i > 2 && t[i] == '0' && (t[i + 1] == 'x' || t[i + 1] == 'X')) {
    base = 16;
    i += 2;
  }
  std::int64_t value = 0;
  for (; i < t.size(); ++i) {
    const char c = static_cast<char>(std::tolower(static_cast<unsigned char>(t[i])));
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (base == 16 && c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else return std::nullopt;
    value = value * base + digit;
  }
  return neg ? -value : value;
}

/// Splits "off(reg)" into offset text and register text.
std::optional<std::pair<std::string, std::string>> split_mem(const std::string& t) {
  const std::size_t open = t.find('(');
  if (open == std::string::npos || t.back() != ')') return std::nullopt;
  return std::make_pair(t.substr(0, open), t.substr(open + 1, t.size() - open - 2));
}

class Parser {
 public:
  explicit Parser(std::uint64_t base) : base_(base) {}

  void parse_line(const std::string& raw, int line_no) {
    line_no_ = line_no;
    std::string line = strip_comment(raw);
    // Handle one optional "label:" prefix, then an optional instruction.
    std::size_t colon = line.find(':');
    if (colon != std::string::npos && line.find('"') == std::string::npos) {
      const std::string name = trim(line.substr(0, colon));
      fail_if(name.empty(), "empty label name");
      bind_label(name);
      line = line.substr(colon + 1);
    }
    line = trim(line);
    if (line.empty()) return;
    parse_instruction(line);
  }

  AssembledText finish() {
    Program p = asm_.finish(base_);
    std::map<std::string, std::uint64_t> symbols;
    for (const auto& [name, info] : labels_) {
      fail_if(!info.bound, "label '" + name + "' used but never defined");
      symbols[name] = p.base() + 4 * info.position;
    }
    return AssembledText{std::move(p), std::move(symbols)};
  }

 private:
  struct LabelInfo {
    Assembler::Label label;
    bool bound = false;
    std::size_t position = 0;
  };

  [[noreturn]] void fail(const std::string& msg) const {
    raise("asm line " + std::to_string(line_no_) + ": " + msg);
  }
  void fail_if(bool cond, const std::string& msg) const {
    if (cond) fail(msg);
  }

  static std::string strip_comment(std::string line) {
    for (const std::string sep : {"#", "//"}) {
      if (const std::size_t p = line.find(sep); p != std::string::npos) line = line.substr(0, p);
    }
    return line;
  }

  static std::string trim(const std::string& s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return s.substr(b, e - b);
  }

  LabelInfo& label(const std::string& name) {
    auto it = labels_.find(name);
    if (it == labels_.end())
      it = labels_.emplace(name, LabelInfo{asm_.new_label(), false, 0}).first;
    return it->second;
  }

  void bind_label(const std::string& name) {
    LabelInfo& info = label(name);
    fail_if(info.bound, "label '" + name + "' defined twice");
    info.bound = true;
    info.position = asm_.size();
    asm_.bind(info.label);
  }

  Operand parse_operand(const std::string& t) {
    if (auto mem = split_mem(t)) {
      auto reg = parse_xreg_name(trim(mem->second));
      fail_if(!reg, "bad base register in '" + t + "'");
      std::int64_t off = 0;
      const std::string off_text = trim(mem->first);
      if (!off_text.empty()) {
        auto o = parse_int(off_text);
        fail_if(!o, "bad memory offset in '" + t + "'");
        off = *o;
      }
      return Operand{Operand::Kind::kMem, *reg, off, {}};
    }
    if (auto r = parse_xreg_name(t)) return Operand{Operand::Kind::kXReg, *r, 0, {}};
    if (auto r = parse_prefixed_reg(t, 'f')) return Operand{Operand::Kind::kFReg, *r, 0, {}};
    if (auto r = parse_prefixed_reg(t, 'v')) return Operand{Operand::Kind::kVReg, *r, 0, {}};
    if (auto i = parse_int(t)) return Operand{Operand::Kind::kImm, 0, *i, {}};
    fail_if(t.empty(), "empty operand");
    return Operand{Operand::Kind::kSymbol, 0, 0, t};
  }

  XReg xop(const Operand& o) const {
    fail_if(o.kind != Operand::Kind::kXReg, "expected x register");
    return x(o.reg);
  }
  FReg fop(const Operand& o) const {
    fail_if(o.kind != Operand::Kind::kFReg, "expected f register");
    return f(o.reg);
  }
  VReg vop(const Operand& o) const {
    fail_if(o.kind != Operand::Kind::kVReg, "expected v register");
    return v(o.reg);
  }
  std::int32_t iop(const Operand& o) const {
    fail_if(o.kind != Operand::Kind::kImm, "expected immediate");
    fail_if(o.imm < INT32_MIN || o.imm > INT32_MAX, "immediate out of 32-bit range");
    return static_cast<std::int32_t>(o.imm);
  }
  Assembler::Label target(const Operand& o) {
    fail_if(o.kind != Operand::Kind::kSymbol, "expected label operand");
    return label(o.symbol).label;
  }

  void parse_instruction(const std::string& text) {
    std::size_t sp = text.find_first_of(" \t");
    const std::string mnem = text.substr(0, sp);
    std::vector<Operand> ops;
    if (sp != std::string::npos) {
      std::string rest = text.substr(sp);
      std::string cur;
      std::istringstream ss(rest);
      while (std::getline(ss, cur, ',')) {
        cur = trim(cur);
        if (!cur.empty()) ops.push_back(parse_operand(cur));
      }
    }
    dispatch(mnem, ops);
  }

  void expect(std::size_t want, std::size_t got) const {
    fail_if(want != got, "expected " + std::to_string(want) + " operands, got " +
                             std::to_string(got));
  }

  void dispatch(const std::string& m, std::vector<Operand>& o) {
    auto mem = [&](std::size_t i) {
      fail_if(o[i].kind != Operand::Kind::kMem, "expected mem operand 'off(reg)'");
      return std::make_pair(x(o[i].reg), static_cast<std::int32_t>(o[i].imm));
    };
    // Pseudo-instructions first.
    if (m == "li") { expect(2, o.size()); asm_.li(xop(o[0]), o[1].imm); return; }
    if (m == "mv") { expect(2, o.size()); asm_.mv(xop(o[0]), xop(o[1])); return; }
    if (m == "nop") { expect(0, o.size()); asm_.nop(); return; }
    if (m == "j") { expect(1, o.size()); asm_.j(target(o[0])); return; }

    if (m == "lui") { expect(2, o.size()); asm_.lui(xop(o[0]), iop(o[1])); return; }
    if (m == "auipc") { expect(2, o.size()); asm_.auipc(xop(o[0]), iop(o[1])); return; }
    if (m == "jal") { expect(2, o.size()); asm_.jal(xop(o[0]), target(o[1])); return; }
    if (m == "jalr") {
      expect(2, o.size());
      auto [base, off] = mem(1);
      asm_.jalr(xop(o[0]), base, off);
      return;
    }
    if (m == "beq") { expect(3, o.size()); asm_.beq(xop(o[0]), xop(o[1]), target(o[2])); return; }
    if (m == "bne") { expect(3, o.size()); asm_.bne(xop(o[0]), xop(o[1]), target(o[2])); return; }
    if (m == "blt") { expect(3, o.size()); asm_.blt(xop(o[0]), xop(o[1]), target(o[2])); return; }
    if (m == "bge") { expect(3, o.size()); asm_.bge(xop(o[0]), xop(o[1]), target(o[2])); return; }
    if (m == "bltu") { expect(3, o.size()); asm_.bltu(xop(o[0]), xop(o[1]), target(o[2])); return; }
    if (m == "bgeu") { expect(3, o.size()); asm_.bgeu(xop(o[0]), xop(o[1]), target(o[2])); return; }
    if (m == "lw" || m == "lwu" || m == "ld") {
      expect(2, o.size());
      auto [base, off] = mem(1);
      if (m == "lw") asm_.lw(xop(o[0]), base, off);
      else if (m == "lwu") asm_.lwu(xop(o[0]), base, off);
      else asm_.ld(xop(o[0]), base, off);
      return;
    }
    if (m == "sw" || m == "sd") {
      expect(2, o.size());
      auto [base, off] = mem(1);
      if (m == "sw") asm_.sw(xop(o[0]), base, off);
      else asm_.sd(xop(o[0]), base, off);
      return;
    }
    if (m == "flw") { expect(2, o.size()); auto [b, off] = mem(1); asm_.flw(fop(o[0]), b, off); return; }
    if (m == "fsw") { expect(2, o.size()); auto [b, off] = mem(1); asm_.fsw(fop(o[0]), b, off); return; }
    if (m == "addi") { expect(3, o.size()); asm_.addi(xop(o[0]), xop(o[1]), iop(o[2])); return; }
    if (m == "slti") { expect(3, o.size()); asm_.slti(xop(o[0]), xop(o[1]), iop(o[2])); return; }
    if (m == "sltiu") { expect(3, o.size()); asm_.sltiu(xop(o[0]), xop(o[1]), iop(o[2])); return; }
    if (m == "xori") { expect(3, o.size()); asm_.xori(xop(o[0]), xop(o[1]), iop(o[2])); return; }
    if (m == "ori") { expect(3, o.size()); asm_.ori(xop(o[0]), xop(o[1]), iop(o[2])); return; }
    if (m == "andi") { expect(3, o.size()); asm_.andi(xop(o[0]), xop(o[1]), iop(o[2])); return; }
    if (m == "slli") { expect(3, o.size()); asm_.slli(xop(o[0]), xop(o[1]), static_cast<unsigned>(iop(o[2]))); return; }
    if (m == "srli") { expect(3, o.size()); asm_.srli(xop(o[0]), xop(o[1]), static_cast<unsigned>(iop(o[2]))); return; }
    if (m == "srai") { expect(3, o.size()); asm_.srai(xop(o[0]), xop(o[1]), static_cast<unsigned>(iop(o[2]))); return; }
    if (m == "add") { expect(3, o.size()); asm_.add(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "sub") { expect(3, o.size()); asm_.sub(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "sll") { expect(3, o.size()); asm_.sll(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "slt") { expect(3, o.size()); asm_.slt(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "sltu") { expect(3, o.size()); asm_.sltu(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "xor") { expect(3, o.size()); asm_.xor_(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "srl") { expect(3, o.size()); asm_.srl(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "sra") { expect(3, o.size()); asm_.sra(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "or") { expect(3, o.size()); asm_.or_(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "and") { expect(3, o.size()); asm_.and_(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "mul") { expect(3, o.size()); asm_.mul(xop(o[0]), xop(o[1]), xop(o[2])); return; }
    if (m == "ecall") { expect(0, o.size()); asm_.ecall(); return; }
    if (m == "ebreak") { expect(0, o.size()); asm_.ebreak(); return; }
    if (m == "marker") { expect(1, o.size()); asm_.marker(iop(o[0])); return; }
    if (m == "vsetvli") {
      // Accept "vsetvli rd, rs1, e32m1" (symbol) or explicit vtype immediate.
      expect(3, o.size());
      if (o[2].kind == Operand::Kind::kSymbol) {
        fail_if(o[2].symbol != "e32m1", "only e32m1 vtype is supported");
      } else {
        fail_if(iop(o[2]) != isa::kVtypeE32M1, "only e32m1 vtype is supported");
      }
      asm_.vsetvli_e32m1(xop(o[0]), xop(o[1]));
      return;
    }
    if (m == "vle32.v") { expect(2, o.size()); asm_.vle32(vop(o[0]), mem(1).first); return; }
    if (m == "vse32.v") { expect(2, o.size()); asm_.vse32(vop(o[0]), mem(1).first); return; }
    if (m == "vadd.vx") { expect(3, o.size()); asm_.vadd_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vadd.vi") { expect(3, o.size()); asm_.vadd_vi(vop(o[0]), vop(o[1]), iop(o[2])); return; }
    if (m == "vadd.vv") { expect(3, o.size()); asm_.vadd_vv(vop(o[0]), vop(o[1]), vop(o[2])); return; }
    if (m == "vfadd.vv") { expect(3, o.size()); asm_.vfadd_vv(vop(o[0]), vop(o[1]), vop(o[2])); return; }
    if (m == "vmul.vv") { expect(3, o.size()); asm_.vmul_vv(vop(o[0]), vop(o[1]), vop(o[2])); return; }
    if (m == "vfmul.vv") { expect(3, o.size()); asm_.vfmul_vv(vop(o[0]), vop(o[1]), vop(o[2])); return; }
    if (m == "vredsum.vs") { expect(3, o.size()); asm_.vredsum_vs(vop(o[0]), vop(o[1]), vop(o[2])); return; }
    if (m == "vfredusum.vs") { expect(3, o.size()); asm_.vfredusum_vs(vop(o[0]), vop(o[1]), vop(o[2])); return; }
    if (m == "vluxei32.v") { expect(3, o.size()); asm_.vluxei32(vop(o[0]), mem(1).first, vop(o[2])); return; }
    if (m == "vmacc.vx") { expect(3, o.size()); asm_.vmacc_vx(vop(o[0]), xop(o[1]), vop(o[2])); return; }
    if (m == "vfmacc.vf") { expect(3, o.size()); asm_.vfmacc_vf(vop(o[0]), fop(o[1]), vop(o[2])); return; }
    if (m == "vmv.v.x") { expect(2, o.size()); asm_.vmv_v_x(vop(o[0]), xop(o[1])); return; }
    if (m == "vmv.v.i") { expect(2, o.size()); asm_.vmv_v_i(vop(o[0]), iop(o[1])); return; }
    if (m == "vmv.x.s") { expect(2, o.size()); asm_.vmv_x_s(xop(o[0]), vop(o[1])); return; }
    if (m == "vfmv.f.s") { expect(2, o.size()); asm_.vfmv_f_s(fop(o[0]), vop(o[1])); return; }
    if (m == "vmv.s.x") { expect(2, o.size()); asm_.vmv_s_x(vop(o[0]), xop(o[1])); return; }
    if (m == "vslidedown.vx") { expect(3, o.size()); asm_.vslidedown_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vslidedown.vi") { expect(3, o.size()); asm_.vslidedown_vi(vop(o[0]), vop(o[1]), iop(o[2])); return; }
    if (m == "vslide1down.vx") { expect(3, o.size()); asm_.vslide1down_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vindexmac.vx") { expect(3, o.size()); asm_.vindexmac_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vfindexmac.vx") { expect(3, o.size()); asm_.vfindexmac_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vindexmacp.vx") { expect(3, o.size()); asm_.vindexmacp_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vfindexmacp.vx") { expect(3, o.size()); asm_.vfindexmacp_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vindexmac2.vx") { expect(3, o.size()); asm_.vindexmac2_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "vfindexmac2.vx") { expect(3, o.size()); asm_.vfindexmac2_vx(vop(o[0]), vop(o[1]), xop(o[2])); return; }
    if (m == "ssrcfg") { expect(3, o.size()); asm_.ssrcfg(static_cast<unsigned>(iop(o[0])), xop(o[1]), xop(o[2])); return; }
    if (m == "ssren") { expect(1, o.size()); asm_.ssren(xop(o[0])); return; }
    if (m == "vindexmacs.v") { expect(1, o.size()); asm_.vindexmacs_v(vop(o[0])); return; }
    if (m == "vfindexmacs.v") { expect(1, o.size()); asm_.vfindexmacs_v(vop(o[0])); return; }
    fail("unknown mnemonic '" + m + "'");
  }

  std::uint64_t base_;
  int line_no_ = 0;
  Assembler asm_;
  std::map<std::string, LabelInfo> labels_;
};

}  // namespace

AssembledText assemble_text(const std::string& source, std::uint64_t base) {
  Parser parser(base);
  std::istringstream ss(source);
  std::string line;
  int line_no = 0;
  while (std::getline(ss, line)) parser.parse_line(line, ++line_no);
  return parser.finish();
}

std::string program_to_source(const Program& program) {
  // PC-relative instructions carry their target as a byte offset; collect
  // the absolute targets and name them in address order.
  const auto is_pc_relative = [](isa::Op op) { return isa::is_branch(op) || op == isa::Op::kJal; };
  const std::vector<isa::Instruction>& decoded = program.decoded();
  std::map<std::uint64_t, unsigned> labels;  // target address -> label number
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    if (!is_pc_relative(decoded[i].op)) continue;
    const std::uint64_t target =
        program.base() + 4 * i + static_cast<std::uint64_t>(static_cast<std::int64_t>(decoded[i].imm));
    IMAC_CHECK(target >= program.base() && target <= program.end() && (target & 3) == 0,
               "program_to_source: branch target outside the program");
    labels.emplace(target, 0);
  }
  unsigned n = 0;
  for (auto& [addr, number] : labels) number = n++;
  const auto label_name = [](unsigned number) {
    std::string name = "L";
    name += std::to_string(number);
    return name;
  };

  std::string out;
  for (std::size_t i = 0; i < decoded.size(); ++i) {
    const std::uint64_t pc = program.base() + 4 * i;
    if (const auto it = labels.find(pc); it != labels.end())
      out += label_name(it->second) + ":\n";
    std::string line = isa::disassemble(decoded[i]);
    if (is_pc_relative(decoded[i].op)) {
      // The offset is always the trailing operand; swap it for the label.
      const std::uint64_t target =
          pc + static_cast<std::uint64_t>(static_cast<std::int64_t>(decoded[i].imm));
      line = line.substr(0, line.rfind(' ') + 1) + label_name(labels.at(target));
    }
    out += "  " + line + "\n";
  }
  // A branch may target the address just past the last instruction.
  if (const auto it = labels.find(program.end()); it != labels.end())
    out += label_name(it->second) + ":\n";
  return out;
}

}  // namespace indexmac
