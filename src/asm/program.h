// An executable program image: a base address plus 32-bit instruction
// words, with a pre-decoded view both simulators execute from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/isa.h"
#include "isa/static_info.h"

namespace indexmac {

/// Immutable instruction stream loaded at a fixed base address.
class Program {
 public:
  Program() = default;

  /// Builds a program from raw words; decodes every word eagerly and throws
  /// SimError if any word is outside the supported subset.
  Program(std::uint64_t base, std::vector<std::uint32_t> words);

  [[nodiscard]] std::uint64_t base() const { return base_; }
  [[nodiscard]] std::uint64_t end() const { return base_ + 4 * words_.size(); }
  [[nodiscard]] std::size_t size() const { return words_.size(); }
  [[nodiscard]] bool contains(std::uint64_t pc) const {
    return pc >= base_ && pc < end() && (pc & 3) == 0;
  }

  /// Decoded instruction at `pc`; throws if pc is outside the program.
  [[nodiscard]] const isa::Instruction& at(std::uint64_t pc) const;

  [[nodiscard]] const std::vector<std::uint32_t>& words() const { return words_; }
  [[nodiscard]] const std::vector<isa::Instruction>& decoded() const { return decoded_; }

  /// Predecoded static metadata, one entry per PC slot (parallel to
  /// decoded()). Built once at load; the simulators' hot loops index this
  /// instead of re-deriving op classes per dynamic instruction.
  [[nodiscard]] const std::vector<isa::StaticInstInfo>& static_info() const { return info_; }

  /// Static metadata at `pc`; throws if pc is outside the program.
  [[nodiscard]] const isa::StaticInstInfo& info_at(std::uint64_t pc) const;

  /// Full listing ("<addr>: <word>  <disassembly>"), for debugging/examples.
  [[nodiscard]] std::string listing() const;

 private:
  std::uint64_t base_ = 0;
  std::vector<std::uint32_t> words_;
  std::vector<isa::Instruction> decoded_;
  std::vector<isa::StaticInstInfo> info_;
};

}  // namespace indexmac
