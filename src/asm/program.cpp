#include "asm/program.h"

#include <cstdio>
#include <sstream>

#include "common/error.h"

namespace indexmac {

Program::Program(std::uint64_t base, std::vector<std::uint32_t> words)
    : base_(base), words_(std::move(words)) {
  IMAC_CHECK((base & 3) == 0, "program base must be 4-byte aligned");
  decoded_.reserve(words_.size());
  info_.reserve(words_.size());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::string err;
    isa::Instruction inst = isa::decode(words_[i], &err);
    IMAC_CHECK(inst.op != isa::Op::kIllegal,
               "word " + std::to_string(i) + " does not decode: " + err);
    decoded_.push_back(inst);
    info_.push_back(isa::predecode(inst));
  }
}

const isa::Instruction& Program::at(std::uint64_t pc) const {
  IMAC_CHECK(contains(pc), "pc outside program: " + std::to_string(pc));
  return decoded_[(pc - base_) / 4];
}

const isa::StaticInstInfo& Program::info_at(std::uint64_t pc) const {
  IMAC_CHECK(contains(pc), "pc outside program: " + std::to_string(pc));
  return info_[(pc - base_) / 4];
}

std::string Program::listing() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    char head[32];
    std::snprintf(head, sizeof head, "%08llx: %08x  ",
                  static_cast<unsigned long long>(base_ + 4 * i), words_[i]);
    out << head << isa::disassemble(decoded_[i]) << '\n';
  }
  return out.str();
}

}  // namespace indexmac
