// A small text-form assembler for the supported subset, accepting the same
// syntax that isa::disassemble() emits plus labels, comments, and ABI
// register names. Useful for examples and for writing kernels by hand.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "asm/program.h"

namespace indexmac {

/// Result of assembling a text listing.
struct AssembledText {
  Program program;
  /// Label name -> absolute address.
  std::map<std::string, std::uint64_t> symbols;
};

/// Assembles `source` (one instruction or "label:" per line; '#' and "//"
/// comments). Throws SimError with a line-numbered message on any error.
[[nodiscard]] AssembledText assemble_text(const std::string& source,
                                          std::uint64_t base = 0x1000);

/// Renders `program` as re-assemblable source: branch/jal targets become
/// synthesized "L<n>" labels (the text assembler accepts only symbolic
/// targets), everything else is plain disassembly. For any program,
/// assemble_text(program_to_source(p), p.base()) reproduces the original
/// instruction words bit-exactly (tests/test_kernel_roundtrip.cpp).
[[nodiscard]] std::string program_to_source(const Program& program);

}  // namespace indexmac
