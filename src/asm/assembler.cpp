#include "asm/assembler.h"

#include "common/bitutil.h"
#include "common/error.h"

namespace indexmac {

using isa::Instruction;
using isa::Op;

XReg x(unsigned n) {
  IMAC_CHECK(n < isa::kNumXRegs, "x register out of range");
  return XReg{static_cast<std::uint8_t>(n)};
}
FReg f(unsigned n) {
  IMAC_CHECK(n < isa::kNumFRegs, "f register out of range");
  return FReg{static_cast<std::uint8_t>(n)};
}
VReg v(unsigned n) {
  IMAC_CHECK(n < isa::kNumVRegs, "v register out of range");
  return VReg{static_cast<std::uint8_t>(n)};
}

Assembler::Label Assembler::new_label() {
  label_pos_.push_back(-1);
  return Label{static_cast<int>(label_pos_.size()) - 1};
}

void Assembler::bind(Label label) {
  IMAC_CHECK(label.id >= 0 && label.id < static_cast<int>(label_pos_.size()), "unknown label");
  IMAC_CHECK(label_pos_[label.id] < 0, "label bound twice");
  label_pos_[label.id] = static_cast<std::int64_t>(insts_.size());
}

void Assembler::emit(const Instruction& inst) {
  IMAC_CHECK(!finished_, "assembler already finished");
  insts_.push_back(inst);
}

void Assembler::emit_branch(Op op, XReg rs1, XReg rs2, Label target) {
  fixups_.push_back(Fixup{insts_.size(), target.id});
  emit(Instruction{op, 0, rs1.num, rs2.num, 0});
}

void Assembler::lui(XReg rd, std::int32_t imm20) { emit({Op::kLui, rd.num, 0, 0, imm20}); }
void Assembler::auipc(XReg rd, std::int32_t imm20) { emit({Op::kAuipc, rd.num, 0, 0, imm20}); }

void Assembler::jal(XReg rd, Label target) {
  fixups_.push_back(Fixup{insts_.size(), target.id});
  emit({Op::kJal, rd.num, 0, 0, 0});
}

void Assembler::jalr(XReg rd, XReg rs1, std::int32_t imm) {
  emit({Op::kJalr, rd.num, rs1.num, 0, imm});
}

void Assembler::beq(XReg a, XReg b, Label t) { emit_branch(Op::kBeq, a, b, t); }
void Assembler::bne(XReg a, XReg b, Label t) { emit_branch(Op::kBne, a, b, t); }
void Assembler::blt(XReg a, XReg b, Label t) { emit_branch(Op::kBlt, a, b, t); }
void Assembler::bge(XReg a, XReg b, Label t) { emit_branch(Op::kBge, a, b, t); }
void Assembler::bltu(XReg a, XReg b, Label t) { emit_branch(Op::kBltu, a, b, t); }
void Assembler::bgeu(XReg a, XReg b, Label t) { emit_branch(Op::kBgeu, a, b, t); }

void Assembler::lw(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kLw, rd.num, rs1.num, 0, imm}); }
void Assembler::lwu(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kLwu, rd.num, rs1.num, 0, imm}); }
void Assembler::ld(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kLd, rd.num, rs1.num, 0, imm}); }
void Assembler::sw(XReg rs2, XReg rs1, std::int32_t imm) { emit({Op::kSw, 0, rs1.num, rs2.num, imm}); }
void Assembler::sd(XReg rs2, XReg rs1, std::int32_t imm) { emit({Op::kSd, 0, rs1.num, rs2.num, imm}); }
void Assembler::flw(FReg rd, XReg rs1, std::int32_t imm) { emit({Op::kFlw, rd.num, rs1.num, 0, imm}); }
void Assembler::fsw(FReg rs2, XReg rs1, std::int32_t imm) { emit({Op::kFsw, 0, rs1.num, rs2.num, imm}); }

void Assembler::addi(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kAddi, rd.num, rs1.num, 0, imm}); }
void Assembler::slti(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kSlti, rd.num, rs1.num, 0, imm}); }
void Assembler::sltiu(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kSltiu, rd.num, rs1.num, 0, imm}); }
void Assembler::xori(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kXori, rd.num, rs1.num, 0, imm}); }
void Assembler::ori(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kOri, rd.num, rs1.num, 0, imm}); }
void Assembler::andi(XReg rd, XReg rs1, std::int32_t imm) { emit({Op::kAndi, rd.num, rs1.num, 0, imm}); }

void Assembler::slli(XReg rd, XReg rs1, unsigned shamt) {
  IMAC_CHECK(shamt < 64, "shift amount out of range");
  emit({Op::kSlli, rd.num, rs1.num, 0, static_cast<std::int32_t>(shamt)});
}
void Assembler::srli(XReg rd, XReg rs1, unsigned shamt) {
  IMAC_CHECK(shamt < 64, "shift amount out of range");
  emit({Op::kSrli, rd.num, rs1.num, 0, static_cast<std::int32_t>(shamt)});
}
void Assembler::srai(XReg rd, XReg rs1, unsigned shamt) {
  IMAC_CHECK(shamt < 64, "shift amount out of range");
  emit({Op::kSrai, rd.num, rs1.num, 0, static_cast<std::int32_t>(shamt)});
}

void Assembler::add(XReg rd, XReg rs1, XReg rs2) { emit({Op::kAdd, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::sub(XReg rd, XReg rs1, XReg rs2) { emit({Op::kSub, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::sll(XReg rd, XReg rs1, XReg rs2) { emit({Op::kSll, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::slt(XReg rd, XReg rs1, XReg rs2) { emit({Op::kSlt, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::sltu(XReg rd, XReg rs1, XReg rs2) { emit({Op::kSltu, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::xor_(XReg rd, XReg rs1, XReg rs2) { emit({Op::kXor, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::srl(XReg rd, XReg rs1, XReg rs2) { emit({Op::kSrl, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::sra(XReg rd, XReg rs1, XReg rs2) { emit({Op::kSra, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::or_(XReg rd, XReg rs1, XReg rs2) { emit({Op::kOr, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::and_(XReg rd, XReg rs1, XReg rs2) { emit({Op::kAnd, rd.num, rs1.num, rs2.num, 0}); }
void Assembler::mul(XReg rd, XReg rs1, XReg rs2) { emit({Op::kMul, rd.num, rs1.num, rs2.num, 0}); }

void Assembler::ecall() { emit({Op::kEcall, 0, 0, 0, 0}); }
void Assembler::ebreak() { emit({Op::kEbreak, 0, 0, 0, 0}); }
void Assembler::marker(std::int32_t id) {
  IMAC_CHECK(id >= 0 && id < 4096, "marker id must fit 12 bits");
  emit({Op::kMarker, 0, 0, 0, id});
}

void Assembler::vsetvli_e32m1(XReg rd, XReg rs1) {
  emit({Op::kVsetvli, rd.num, rs1.num, 0, isa::kVtypeE32M1});
}
void Assembler::vle32(VReg vd, XReg rs1) { emit({Op::kVle32, vd.num, rs1.num, 0, 0}); }
void Assembler::vse32(VReg vs3, XReg rs1) { emit({Op::kVse32, vs3.num, rs1.num, 0, 0}); }
void Assembler::vadd_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVaddVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vadd_vi(VReg vd, VReg vs2, std::int32_t simm5) {
  emit({Op::kVaddVi, vd.num, 0, vs2.num, simm5});
}
void Assembler::vadd_vv(VReg vd, VReg vs2, VReg vs1) {
  emit({Op::kVaddVV, vd.num, vs1.num, vs2.num, 0});
}
void Assembler::vfadd_vv(VReg vd, VReg vs2, VReg vs1) {
  emit({Op::kVfaddVV, vd.num, vs1.num, vs2.num, 0});
}
void Assembler::vmul_vv(VReg vd, VReg vs2, VReg vs1) {
  emit({Op::kVmulVV, vd.num, vs1.num, vs2.num, 0});
}
void Assembler::vfmul_vv(VReg vd, VReg vs2, VReg vs1) {
  emit({Op::kVfmulVV, vd.num, vs1.num, vs2.num, 0});
}
void Assembler::vredsum_vs(VReg vd, VReg vs2, VReg vs1) {
  emit({Op::kVredsumVS, vd.num, vs1.num, vs2.num, 0});
}
void Assembler::vfredusum_vs(VReg vd, VReg vs2, VReg vs1) {
  emit({Op::kVfredusumVS, vd.num, vs1.num, vs2.num, 0});
}
void Assembler::vluxei32(VReg vd, XReg rs1, VReg vs2) {
  emit({Op::kVluxei32, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vmacc_vx(VReg vd, XReg rs1, VReg vs2) {
  emit({Op::kVmaccVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vfmacc_vf(VReg vd, FReg rs1, VReg vs2) {
  emit({Op::kVfmaccVf, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vmv_v_x(VReg vd, XReg rs1) { emit({Op::kVmvVX, vd.num, rs1.num, 0, 0}); }
void Assembler::vmv_v_i(VReg vd, std::int32_t simm5) { emit({Op::kVmvVI, vd.num, 0, 0, simm5}); }
void Assembler::vmv_x_s(XReg rd, VReg vs2) { emit({Op::kVmvXS, rd.num, 0, vs2.num, 0}); }
void Assembler::vfmv_f_s(FReg rd, VReg vs2) { emit({Op::kVfmvFS, rd.num, 0, vs2.num, 0}); }
void Assembler::vmv_s_x(VReg vd, XReg rs1) { emit({Op::kVmvSX, vd.num, rs1.num, 0, 0}); }
void Assembler::vslidedown_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVslidedownVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vslidedown_vi(VReg vd, VReg vs2, std::int32_t uimm5) {
  IMAC_CHECK(uimm5 >= 0 && uimm5 < 32, "vslidedown.vi offset must fit uimm5");
  emit({Op::kVslidedownVi, vd.num, 0, vs2.num, uimm5});
}
void Assembler::vslide1down_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVslide1downVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vindexmac_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVindexmacVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vfindexmac_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVfindexmacVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vindexmacp_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVindexmacpVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vfindexmacp_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVfindexmacpVx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vindexmac2_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVindexmac2Vx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::vfindexmac2_vx(VReg vd, VReg vs2, XReg rs1) {
  emit({Op::kVfindexmac2Vx, vd.num, rs1.num, vs2.num, 0});
}
void Assembler::ssrcfg(unsigned sid, XReg rs1, XReg rs2) {
  IMAC_CHECK(sid < 4, "ssrcfg stream id must be in 0..3");
  emit({Op::kSsrCfg, static_cast<std::uint8_t>(sid), rs1.num, rs2.num, 0});
}
void Assembler::ssren(XReg rs1) { emit({Op::kSsrEn, 0, rs1.num, 0, 0}); }
void Assembler::vindexmacs_v(VReg vd) { emit({Op::kVindexmacsV, vd.num, 0, 0, 0}); }
void Assembler::vfindexmacs_v(VReg vd) { emit({Op::kVfindexmacsV, vd.num, 0, 0, 0}); }

void Assembler::li(XReg rd, std::int64_t value) {
  IMAC_CHECK(fits_signed(value, 32), "li supports 32-bit signed constants only");
  if (fits_signed(value, 12)) {
    addi(rd, x(0), static_cast<std::int32_t>(value));
    return;
  }
  // Standard lui+addi materialization: hi compensates for addi sign extension.
  const auto v32 = static_cast<std::int32_t>(value);
  const std::int32_t lo = static_cast<std::int32_t>(sign_extend(v32 & 0xfff, 12));
  const auto hi =
      static_cast<std::int32_t>(sign_extend((static_cast<std::uint32_t>(v32 - lo) >> 12), 20));
  lui(rd, hi);
  if (lo != 0) addi(rd, rd, lo);
}

void Assembler::mv(XReg rd, XReg rs1) { addi(rd, rs1, 0); }
void Assembler::nop() { addi(x(0), x(0), 0); }
void Assembler::j(Label target) { jal(x(0), target); }

Program Assembler::finish(std::uint64_t base) {
  IMAC_CHECK(!finished_, "assembler already finished");
  finished_ = true;
  for (const Fixup& fx : fixups_) {
    IMAC_CHECK(fx.label_id >= 0 && fx.label_id < static_cast<int>(label_pos_.size()),
               "fixup references unknown label");
    const std::int64_t target = label_pos_[fx.label_id];
    IMAC_CHECK(target >= 0, "label used but never bound");
    const std::int64_t offset = (target - static_cast<std::int64_t>(fx.index)) * 4;
    insts_[fx.index].imm = static_cast<std::int32_t>(offset);
  }
  std::vector<std::uint32_t> words;
  words.reserve(insts_.size());
  for (const isa::Instruction& inst : insts_) words.push_back(isa::encode(inst));
  return Program(base, std::move(words));
}

}  // namespace indexmac
