// Programmatic assembler: a type-safe builder that kernel code generators
// use to emit instruction streams, with label-based branch fixup.
//
// This replaces the paper's GNU-toolchain modification: vindexmac is a
// first-class instruction here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asm/program.h"
#include "isa/isa.h"

namespace indexmac {

/// Strongly-typed register handles so x/f/v files cannot be confused.
struct XReg {
  std::uint8_t num = 0;
};
struct FReg {
  std::uint8_t num = 0;
};
struct VReg {
  std::uint8_t num = 0;
};

[[nodiscard]] XReg x(unsigned n);  ///< x0..x31; throws if out of range
[[nodiscard]] FReg f(unsigned n);  ///< f0..f31
[[nodiscard]] VReg v(unsigned n);  ///< v0..v31

/// Builder for Program objects. Typical use:
///
///   Assembler a;
///   auto loop = a.new_label();
///   a.bind(loop);
///   a.vle32(v(1), x(5));
///   a.addi(x(5), x(5), 64);
///   a.bne(x(5), x(6), loop);
///   a.ebreak();
///   Program p = a.finish(0x1000);
class Assembler {
 public:
  /// Opaque label handle; forward references are allowed.
  struct Label {
    int id = -1;
  };

  [[nodiscard]] Label new_label();
  /// Binds `label` to the current position. Each label binds exactly once.
  void bind(Label label);

  /// Number of instructions emitted so far.
  [[nodiscard]] std::size_t size() const { return insts_.size(); }

  // --- RV64I / M / F subset ---
  void lui(XReg rd, std::int32_t imm20);
  void auipc(XReg rd, std::int32_t imm20);
  void jal(XReg rd, Label target);
  void jalr(XReg rd, XReg rs1, std::int32_t imm);
  void beq(XReg rs1, XReg rs2, Label target);
  void bne(XReg rs1, XReg rs2, Label target);
  void blt(XReg rs1, XReg rs2, Label target);
  void bge(XReg rs1, XReg rs2, Label target);
  void bltu(XReg rs1, XReg rs2, Label target);
  void bgeu(XReg rs1, XReg rs2, Label target);
  void lw(XReg rd, XReg rs1, std::int32_t imm);
  void lwu(XReg rd, XReg rs1, std::int32_t imm);
  void ld(XReg rd, XReg rs1, std::int32_t imm);
  void sw(XReg rs2, XReg rs1, std::int32_t imm);
  void sd(XReg rs2, XReg rs1, std::int32_t imm);
  void flw(FReg rd, XReg rs1, std::int32_t imm);
  void fsw(FReg rs2, XReg rs1, std::int32_t imm);
  void addi(XReg rd, XReg rs1, std::int32_t imm);
  void slti(XReg rd, XReg rs1, std::int32_t imm);
  void sltiu(XReg rd, XReg rs1, std::int32_t imm);
  void xori(XReg rd, XReg rs1, std::int32_t imm);
  void ori(XReg rd, XReg rs1, std::int32_t imm);
  void andi(XReg rd, XReg rs1, std::int32_t imm);
  void slli(XReg rd, XReg rs1, unsigned shamt);
  void srli(XReg rd, XReg rs1, unsigned shamt);
  void srai(XReg rd, XReg rs1, unsigned shamt);
  void add(XReg rd, XReg rs1, XReg rs2);
  void sub(XReg rd, XReg rs1, XReg rs2);
  void sll(XReg rd, XReg rs1, XReg rs2);
  void slt(XReg rd, XReg rs1, XReg rs2);
  void sltu(XReg rd, XReg rs1, XReg rs2);
  void xor_(XReg rd, XReg rs1, XReg rs2);
  void srl(XReg rd, XReg rs1, XReg rs2);
  void sra(XReg rd, XReg rs1, XReg rs2);
  void or_(XReg rd, XReg rs1, XReg rs2);
  void and_(XReg rd, XReg rs1, XReg rs2);
  void mul(XReg rd, XReg rs1, XReg rs2);
  void ecall();
  void ebreak();
  /// Simulation marker; the timing model records its commit cycle and a
  /// statistics snapshot under `id`.
  void marker(std::int32_t id);

  // --- RVV subset (SEW=32, LMUL=1, unmasked) ---
  /// vsetvli rd, rs1, e32m1: vl = min(VLMAX, x[rs1]); x[rd] = vl.
  void vsetvli_e32m1(XReg rd, XReg rs1);
  void vle32(VReg vd, XReg rs1);
  void vse32(VReg vs3, XReg rs1);
  void vadd_vx(VReg vd, VReg vs2, XReg rs1);
  void vadd_vi(VReg vd, VReg vs2, std::int32_t simm5);
  void vadd_vv(VReg vd, VReg vs2, VReg vs1);
  void vfadd_vv(VReg vd, VReg vs2, VReg vs1);
  void vmul_vv(VReg vd, VReg vs2, VReg vs1);
  void vfmul_vv(VReg vd, VReg vs2, VReg vs1);
  /// vd[0] = vs1[0] + sum(vs2[0..vl)).
  void vredsum_vs(VReg vd, VReg vs2, VReg vs1);
  void vfredusum_vs(VReg vd, VReg vs2, VReg vs1);
  /// Indexed-unordered gather: vd[i] = mem32[x[rs1] + vs2[i]].
  void vluxei32(VReg vd, XReg rs1, VReg vs2);
  void vmacc_vx(VReg vd, XReg rs1, VReg vs2);
  void vfmacc_vf(VReg vd, FReg rs1, VReg vs2);
  void vmv_v_x(VReg vd, XReg rs1);
  void vmv_v_i(VReg vd, std::int32_t simm5);
  void vmv_x_s(XReg rd, VReg vs2);
  void vfmv_f_s(FReg rd, VReg vs2);
  void vmv_s_x(VReg vd, XReg rs1);
  void vslidedown_vx(VReg vd, VReg vs2, XReg rs1);
  void vslidedown_vi(VReg vd, VReg vs2, std::int32_t uimm5);
  void vslide1down_vx(VReg vd, VReg vs2, XReg rs1);
  /// Custom: vd[i] += (int32) vs2[0] * (int32) VRF[x[rs1] & 31][i].
  void vindexmac_vx(VReg vd, VReg vs2, XReg rs1);
  /// Custom: vd[i] += (fp32) vs2[0] * (fp32) VRF[x[rs1] & 31][i].
  void vfindexmac_vx(VReg vd, VReg vs2, XReg rs1);
  /// Packed-index variants: vd[i] += vs2[0] * VRF[16 | (x[rs1] & 0xf)][i].
  void vindexmacp_vx(VReg vd, VReg vs2, XReg rs1);
  void vfindexmacp_vx(VReg vd, VReg vs2, XReg rs1);
  /// Dual-row variants: two back-to-back packed MACs per issue —
  /// vd[i] += vs2[0] * VRF[16 | (x[rs1] & 0xf)][i], then
  /// vd[i] += vs2[1] * VRF[16 | ((x[rs1] >> 4) & 0xf)][i].
  void vindexmac2_vx(VReg vd, VReg vs2, XReg rs1);
  void vfindexmac2_vx(VReg vd, VReg vs2, XReg rs1);
  /// SSR stream config: stream `sid` (0..3) reads from base x[rs1] and
  /// wraps after x[rs2] 32-bit words; resets the stream position.
  void ssrcfg(unsigned sid, XReg rs1, XReg rs2);
  /// Enables the streams in the low 4 bits of x[rs1] (rewinding each to its
  /// base) and disables the rest; `ssren(x(0))` disables all streams.
  void ssren(XReg rs1);
  /// Streaming MAC: vd[i] += stream0.pop() * VRF[stream1.pop() & 0x1f][i].
  void vindexmacs_v(VReg vd);
  void vfindexmacs_v(VReg vd);

  // --- pseudo-instructions ---
  /// Loads any 32-bit signed constant (addi, or lui+addi pair).
  void li(XReg rd, std::int64_t value);
  void mv(XReg rd, XReg rs1);
  void nop();
  void j(Label target);

  /// Resolves all labels and produces the program at `base`.
  /// The assembler must not be reused afterwards.
  [[nodiscard]] Program finish(std::uint64_t base = 0x1000);

 private:
  void emit(const isa::Instruction& inst);
  void emit_branch(isa::Op op, XReg rs1, XReg rs2, Label target);

  struct Fixup {
    std::size_t index;  ///< instruction slot to patch
    int label_id;
  };

  std::vector<isa::Instruction> insts_;
  std::vector<std::int64_t> label_pos_;  ///< instruction index or -1
  std::vector<Fixup> fixups_;
  bool finished_ = false;
};

}  // namespace indexmac
