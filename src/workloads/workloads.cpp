#include "workloads/workloads.h"

#include <algorithm>

#include "cnn/conv_layer.h"
#include "common/error.h"

namespace indexmac::workloads {
namespace {

using kernels::GemmDims;

const std::vector<sparse::Sparsity> kPaperSparsities = {sparse::kSparsity14,
                                                        sparse::kSparsity24};

/// Converts one CNN model into a suite via the im2col GEMM mapping,
/// deduplicating identical shapes exactly like cnn::unique_gemms so the
/// figure benches reproduce their pre-registry numbers.
Suite from_cnn(const cnn::CnnModel& model, std::string name, std::string description) {
  Suite out;
  out.name = std::move(name);
  out.display_name = model.name;
  out.description = std::move(description);
  out.source_layers = model.layers.size();
  out.sparsities = kPaperSparsities;
  for (const cnn::LayerGemm& layer : cnn::unique_gemms(model))
    out.workloads.push_back({layer.representative.name, layer.dims, layer.count});
  return out;
}

/// Encoder-transformer GEMMs under weight sparsity: A is the [out x in]
/// projection weight, B the [in x seq] activation block, so only the four
/// per-layer weight GEMMs appear (QK^T / PV score GEMMs multiply two dense
/// activations and are outside the N:M weight-pruning scheme).
Suite transformer_suite(std::string name, std::string display, std::string description,
                        unsigned layers, unsigned hidden, unsigned ffn, unsigned seq) {
  Suite out;
  out.name = std::move(name);
  out.display_name = std::move(display);
  out.description = std::move(description);
  out.source_layers = layers;
  out.sparsities = kPaperSparsities;
  out.workloads = {
      {"attention.qkv_proj", {hidden, hidden, seq}, 3 * layers},
      {"attention.out_proj", {hidden, hidden, seq}, layers},
      {"mlp.up_proj", {ffn, hidden, seq}, layers},
      {"mlp.down_proj", {hidden, ffn, seq}, layers},
  };
  return out;
}

Suite bert_base() {
  return transformer_suite(
      "bert-base", "BERT-base",
      "BERT-base encoder projection GEMMs (12 layers, hidden 768, seq 128)",
      /*layers=*/12, /*hidden=*/768, /*ffn=*/3072, /*seq=*/128);
}

Suite vit_base() {
  Suite out = transformer_suite(
      "vit-base", "ViT-B/16",
      "ViT-B/16 encoder GEMMs (12 layers, hidden 768, 197 tokens @224x224)",
      /*layers=*/12, /*hidden=*/768, /*ffn=*/3072, /*seq=*/197);
  // Patch embedding: a 16x16/s16 conv == [768 x 3*16*16] x [768 x 196] GEMM.
  out.workloads.insert(out.workloads.begin(), {"patch_embed", {768, 768, 196}, 1});
  out.workloads.push_back({"head", {1000, 768, 1}, 1});
  return out;
}

Suite tiny() {
  Suite out;
  out.name = "tiny";
  out.display_name = "tiny";
  out.description = "CI-sized shapes for golden-file regression tests (exact-mode friendly)";
  out.sparsities = kPaperSparsities;
  out.workloads = {
      {"tiny.square", {16, 64, 32}, 1},
      {"tiny.wide", {8, 32, 48}, 2},
      {"tiny.ragged", {12, 48, 20}, 1},  // cols_b % 16 != 0: exercises the tail path
  };
  return out;
}

const std::vector<Suite>& registry() {
  static const std::vector<Suite> suites = [] {
    std::vector<Suite> out;
    out.push_back(from_cnn(cnn::resnet50(), "resnet50",
                           "ResNet50 conv GEMMs, ImageNet geometry (paper Figs. 4-6)"));
    out.push_back(from_cnn(cnn::densenet121(), "densenet121",
                           "DenseNet121 conv GEMMs, ImageNet geometry (paper Figs. 5-6)"));
    out.push_back(from_cnn(cnn::inceptionv3(), "inceptionv3",
                           "InceptionV3 conv GEMMs, 299x299 geometry (paper Figs. 5-6)"));
    out.push_back(from_cnn(cnn::mobilenetv1(), "mobilenetv1",
                           "MobileNetV1 depthwise/pointwise GEMMs (width 1.0, 224x224)"));
    out.push_back(bert_base());
    out.push_back(vit_base());
    out.push_back(tiny());
    return out;
  }();
  return suites;
}

}  // namespace

std::uint64_t Suite::total_macs() const {
  std::uint64_t total = 0;
  for (const Workload& w : workloads)
    total += static_cast<std::uint64_t>(w.dims.rows_a) * w.dims.k * w.dims.cols_b * w.count;
  return total;
}

const std::vector<std::string>& suite_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const Suite& s : registry()) out.push_back(s.name);
    return out;
  }();
  return names;
}

bool has_suite(const std::string& name) {
  for (const Suite& s : registry())
    if (s.name == name) return true;
  return false;
}

const Suite& suite(const std::string& name) {
  for (const Suite& s : registry())
    if (s.name == name) return s;
  std::string known;
  for (const std::string& n : suite_names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  raise("unknown workload suite \"" + name + "\" (known: " + known + ")");
}

std::vector<WorkloadInstance> expand(const Suite& s) {
  std::vector<WorkloadInstance> out;
  out.reserve(s.workloads.size() * s.sparsities.size());
  for (const sparse::Sparsity sp : s.sparsities)
    for (const Workload& w : s.workloads) out.push_back({w, sp});
  return out;
}

kernels::GemmDims shrink(const kernels::GemmDims& dims, const kernels::GemmDims& cap) {
  return {std::min(dims.rows_a, cap.rows_a), std::min(dims.k, cap.k),
          std::min(dims.cols_b, cap.cols_b)};
}

sparse::Sparsity parse_sparsity(const std::string& label) {
  const std::size_t colon = label.find(':');
  IMAC_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < label.size(),
             "sparsity must be \"N:M\", got \"" + label + "\"");
  unsigned n = 0, m = 0;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (i == colon) continue;
    const char c = label[i];
    IMAC_CHECK(c >= '0' && c <= '9', "sparsity must be \"N:M\", got \"" + label + "\"");
    unsigned& field = i < colon ? n : m;
    field = field * 10 + static_cast<unsigned>(c - '0');
  }
  IMAC_CHECK(n >= 1 && m >= n, "sparsity must satisfy 1 <= N <= M, got \"" + label + "\"");
  return sparse::Sparsity{n, m};
}

std::string sparsity_label(sparse::Sparsity sp) {
  return std::to_string(sp.n) + ":" + std::to_string(sp.m);
}

}  // namespace indexmac::workloads
