#include "workloads/workloads.h"

#include <algorithm>
#include <deque>

#include "cnn/conv_layer.h"
#include "common/error.h"

namespace indexmac::workloads {
namespace {

using kernels::GemmDims;

const std::vector<sparse::Sparsity> kPaperSparsities = {sparse::kSparsity14,
                                                        sparse::kSparsity24};

/// Encoder-transformer GEMMs under weight sparsity: A is the [out x in]
/// projection weight, B the [in x seq] activation block, so only the four
/// per-layer weight GEMMs appear (QK^T / PV score GEMMs multiply two dense
/// activations and are outside the N:M weight-pruning scheme).
ModelGraph transformer_graph(std::string name, std::string display, std::string description,
                             unsigned layers, unsigned hidden, unsigned ffn, unsigned seq) {
  ModelGraph out;
  out.name = std::move(name);
  out.display_name = std::move(display);
  out.description = std::move(description);
  out.default_sparsities = kPaperSparsities;
  const SparsityProfile sp = SparsityProfile::declared(kPaperSparsities.front());
  out.layers = {
      {"attention.qkv_proj", LayerKind::kAttentionProj, {hidden, hidden, seq}, 3 * layers, sp},
      {"attention.out_proj", LayerKind::kAttentionProj, {hidden, hidden, seq}, layers, sp},
      {"mlp.up_proj", LayerKind::kLinear, {ffn, hidden, seq}, layers, sp},
      {"mlp.down_proj", LayerKind::kLinear, {hidden, ffn, seq}, layers, sp},
  };
  return out;
}

ModelGraph bert_base() {
  return transformer_graph(
      "bert-base", "BERT-base",
      "BERT-base encoder projection GEMMs (12 layers, hidden 768, seq 128)",
      /*layers=*/12, /*hidden=*/768, /*ffn=*/3072, /*seq=*/128);
}

ModelGraph vit_base() {
  ModelGraph out = transformer_graph(
      "vit-base", "ViT-B/16",
      "ViT-B/16 encoder GEMMs (12 layers, hidden 768, 197 tokens @224x224)",
      /*layers=*/12, /*hidden=*/768, /*ffn=*/3072, /*seq=*/197);
  const SparsityProfile sp = SparsityProfile::declared(kPaperSparsities.front());
  // Patch embedding: a 16x16/s16 conv == [768 x 3*16*16] x [768 x 196] GEMM.
  out.layers.insert(out.layers.begin(),
                    {"patch_embed", LayerKind::kConv, {768, 768, 196}, 1, sp});
  out.layers.push_back({"head", LayerKind::kLinear, {1000, 768, 1}, 1, sp});
  return out;
}

/// LLM decode step (Llama-3-8B-class geometry, GQA 32q/8kv heads, batch 8):
/// the skinny-activation GEMMs that dominate modern inference traffic.
/// cols_b is the decode batch — far below one vector strip — so these
/// shapes exercise the kernels' tail-only path at production row counts.
/// Evaluated at 2:4 and the coarser 2:8 the decode-bound regime favors.
ModelGraph llm_decode() {
  ModelGraph out;
  out.name = "llm-decode";
  out.display_name = "LLM-decode";
  out.description =
      "LLM decode-step GEMMs (8B-class GQA geometry, batch 8, skinny activations)";
  out.default_sparsities = {sparse::kSparsity24, sparse::Sparsity{2, 8}};
  const SparsityProfile sp = SparsityProfile::declared(out.default_sparsities.front());
  const unsigned layers = 32, hidden = 4096, kv = 1024, ffn = 14336, batch = 8;
  out.layers = {
      {"attn.q_proj", LayerKind::kAttentionProj, {hidden, hidden, batch}, layers, sp},
      {"attn.kv_proj", LayerKind::kAttentionProj, {kv, hidden, batch}, 2 * layers, sp},
      {"attn.o_proj", LayerKind::kAttentionProj, {hidden, hidden, batch}, layers, sp},
      {"mlp.gate_up_proj", LayerKind::kLinear, {ffn, hidden, batch}, 2 * layers, sp},
      {"mlp.down_proj", LayerKind::kLinear, {hidden, ffn, batch}, layers, sp},
      {"lm_head", LayerKind::kLinear, {128256, hidden, batch}, 1, sp},
  };
  return out;
}

ModelGraph tiny() {
  ModelGraph out;
  out.name = "tiny";
  out.display_name = "tiny";
  out.description = "CI-sized shapes for golden-file regression tests (exact-mode friendly)";
  out.default_sparsities = kPaperSparsities;
  const SparsityProfile sp = SparsityProfile::declared(kPaperSparsities.front());
  out.layers = {
      {"tiny.square", LayerKind::kLinear, {16, 64, 32}, 1, sp},
      {"tiny.wide", LayerKind::kLinear, {8, 32, 48}, 2, sp},
      // cols_b % 16 != 0: exercises the tail path.
      {"tiny.ragged", LayerKind::kLinear, {12, 48, 20}, 1, sp},
  };
  return out;
}

/// A registered model: the IR plus the Suite view derived from it.
struct Entry {
  ModelGraph graph;
  Suite view;
};

/// Derives the flat Suite view of a graph and checks the registry-wide
/// invariant that source_layers equals the count-weighted layer total.
Suite view_of(const ModelGraph& graph) {
  Suite out;
  out.name = graph.name;
  out.display_name = graph.display_name;
  out.description = graph.description;
  out.source_layers = graph.layer_count();
  out.sparsities = graph.default_sparsities;
  std::size_t weighted = 0;
  for (const LayerRecord& layer : graph.layers) {
    out.workloads.push_back({layer.name, layer.gemm, layer.repeat});
    weighted += layer.repeat;
  }
  IMAC_CHECK(out.source_layers == weighted,
             "suite \"" + out.name + "\" source_layers diverged from its layer records");
  return out;
}

/// Registration store. A deque so `suite()` / `model_graph()` references
/// survive later register_model() calls (no reallocation of entries).
std::deque<Entry>& registry() {
  static std::deque<Entry> entries = [] {
    std::deque<Entry> out;
    auto add = [&out](ModelGraph graph) {
      graph.validate();
      Entry e{std::move(graph), {}};
      e.view = view_of(e.graph);
      out.push_back(std::move(e));
    };
    add(graph_from_cnn(cnn::resnet50(), "resnet50",
                       "ResNet50 conv GEMMs, ImageNet geometry (paper Figs. 4-6)",
                       kPaperSparsities));
    add(graph_from_cnn(cnn::densenet121(), "densenet121",
                       "DenseNet121 conv GEMMs, ImageNet geometry (paper Figs. 5-6)",
                       kPaperSparsities));
    add(graph_from_cnn(cnn::inceptionv3(), "inceptionv3",
                       "InceptionV3 conv GEMMs, 299x299 geometry (paper Figs. 5-6)",
                       kPaperSparsities));
    add(graph_from_cnn(cnn::mobilenetv1(), "mobilenetv1",
                       "MobileNetV1 depthwise/pointwise GEMMs (width 1.0, 224x224)",
                       kPaperSparsities));
    add(bert_base());
    add(vit_base());
    add(llm_decode());
    add(tiny());
    return out;
  }();
  return entries;
}

std::string known_names() {
  std::string known;
  for (const Entry& e : registry()) {
    if (!known.empty()) known += ", ";
    known += e.graph.name;
  }
  return known;
}

}  // namespace

std::uint64_t Suite::total_macs() const {
  std::uint64_t total = 0;
  for (const Workload& w : workloads)
    total += static_cast<std::uint64_t>(w.dims.rows_a) * w.dims.k * w.dims.cols_b * w.count;
  return total;
}

std::vector<std::string> suite_names() {
  std::vector<std::string> out;
  for (const Entry& e : registry()) out.push_back(e.graph.name);
  return out;
}

bool has_suite(const std::string& name) {
  for (const Entry& e : registry())
    if (e.graph.name == name) return true;
  return false;
}

const Suite& suite(const std::string& name) {
  for (const Entry& e : registry())
    if (e.view.name == name) return e.view;
  raise("unknown workload suite \"" + name + "\" (known: " + known_names() + ")");
}

const ModelGraph& model_graph(const std::string& name) {
  for (const Entry& e : registry())
    if (e.graph.name == name) return e.graph;
  raise("unknown workload suite \"" + name + "\" (known: " + known_names() + ")");
}

void register_model(ModelGraph graph) {
  graph.validate();
  IMAC_CHECK(!has_suite(graph.name),
             "model \"" + graph.name + "\" is already registered");
  Entry e{std::move(graph), {}};
  e.view = view_of(e.graph);
  registry().push_back(std::move(e));
}

std::vector<WorkloadInstance> expand(const Suite& s) {
  std::vector<WorkloadInstance> out;
  out.reserve(s.workloads.size() * s.sparsities.size());
  for (const sparse::Sparsity sp : s.sparsities)
    for (const Workload& w : s.workloads) out.push_back({w, sp});
  return out;
}

kernels::GemmDims shrink(const kernels::GemmDims& dims, const kernels::GemmDims& cap) {
  return {std::min(dims.rows_a, cap.rows_a), std::min(dims.k, cap.k),
          std::min(dims.cols_b, cap.cols_b)};
}

sparse::Sparsity parse_sparsity(const std::string& label) {
  const std::size_t colon = label.find(':');
  IMAC_CHECK(colon != std::string::npos && colon > 0 && colon + 1 < label.size(),
             "sparsity must be \"N:M\", got \"" + label + "\"");
  unsigned n = 0, m = 0;
  for (std::size_t i = 0; i < label.size(); ++i) {
    if (i == colon) continue;
    const char c = label[i];
    IMAC_CHECK(c >= '0' && c <= '9', "sparsity must be \"N:M\", got \"" + label + "\"");
    unsigned& field = i < colon ? n : m;
    field = field * 10 + static_cast<unsigned>(c - '0');
    IMAC_CHECK(field <= 4096, "sparsity label \"" + label + "\" is out of range (fields must be <= 4096)");
  }
  IMAC_CHECK(n >= 1, "sparsity \"" + label + "\" is degenerate: N must be >= 1");
  IMAC_CHECK(n < m, "sparsity \"" + label + "\" is degenerate: N must be < M (N == M is dense)");
  return sparse::Sparsity{n, m};
}

std::string sparsity_label(sparse::Sparsity sp) {
  return std::to_string(sp.n) + ":" + std::to_string(sp.m);
}

}  // namespace indexmac::workloads
