// Checkpoint importer: builds a measured ModelGraph from a pruned weight
// checkpoint on disk, stdlib-only (no numpy/protobuf dependency).
//
// The normative spec of the manifest and tensor-blob formats also lives
// in docs/formats.md ("Model checkpoint"); keep the two in sync.
//
// Checkpoint layout — an npz-style directory:
//
//   model.json        manifest: model metadata + one entry per layer
//   <name>.tensor     one binary blob per layer's weight matrix
//
// Manifest (JSON subset, see common/json.h; unknown keys are errors):
//
//   {
//     "format": "imac-model/v1",
//     "name": "synth24",                 // registry key
//     "display_name": "Synth-2:4",       // optional (default: name)
//     "description": "...",              // optional
//     "sparsities": ["2:4"],             // default evaluation patterns
//     "layers": [
//       {"name": "fc1", "kind": "linear", "repeat": 2, "sparsity": "2:4",
//        "out_features": 16, "in_features": 64, "tokens": 24,
//        "weights": "fc1.tensor"},
//       {"name": "conv1", "kind": "conv",
//        "out_channels": 8, "in_channels": 4, "kernel_h": 3, "kernel_w": 3,
//        "stride": 1, "pad_h": 1, "pad_w": 1, "in_h": 6, "in_w": 6,
//        "weights": "conv1.tensor"},
//       {"name": "dw1", "kind": "depthwise",
//        "channels": 8, "kernel_h": 3, "kernel_w": 3, "stride": 1,
//        "pad_h": 1, "pad_w": 1, "in_h": 6, "in_w": 6,
//        "weights": "dw1.tensor"}
//     ]
//   }
//
// kind selects the weight-to-GEMM mapping: linear / attention-proj layers
// are [out_features x in_features] against a [in_features x tokens]
// activation block; conv layers im2col to [out_channels x in_ch*kh*kw]
// (cnn::ConvLayer geometry); depthwise layers use the stacked-filter proxy
// [channels x kh*kw]. "repeat" defaults to 1 and "sparsity" to the first
// manifest sparsity.
//
// Tensor blob: a 32-byte header followed by row-major little-endian data.
//
//   offset  size  field
//   0       8     magic "IMACTNSR"
//   8       4     u32 version (1)
//   12      4     u32 dtype: 0 = f32, 1 = f16 (IEEE binary16)
//   16      8     u64 rows
//   24      8     u64 cols
//   32      ...   rows*cols elements, row-major
//
// The importer measures each layer's true sparsity against its declared
// N:M pattern — unstructured density, N:M block conformity, and ELLPACK
// row-imbalance via the existing ext_unstructured machinery — and returns
// a ModelGraph ready for workloads::register_model.
#pragma once

#include <string>

#include "sparse/dense_matrix.h"
#include "workloads/model_ir.h"

namespace indexmac::workloads {

/// Loads one tensor blob; throws SimError naming the path on a missing
/// file, bad magic/version/dtype, or a size that contradicts the header.
[[nodiscard]] sparse::DenseMatrix<float> load_tensor(const std::string& path);

/// Measures a weight matrix against its declared N:M pattern: nonzero
/// density, fraction of M-aligned column blocks with at most N nonzeros,
/// and the ELLPACK padding fraction of the unstructured encoding.
[[nodiscard]] SparsityProfile measure_profile(const sparse::DenseMatrix<float>& weights,
                                              sparse::Sparsity pattern);

/// Imports a checkpoint directory into a validated, measured ModelGraph.
/// Throws SimError on a malformed manifest, missing or inconsistent
/// tensors, or weight shapes that contradict the declared geometry.
[[nodiscard]] ModelGraph import_model(const std::string& dir);

}  // namespace indexmac::workloads
