#include "workloads/model_ir.h"

#include <unordered_set>

#include "cnn/conv_layer.h"
#include "common/error.h"

namespace indexmac::workloads {

const char* layer_kind_id(LayerKind kind) {
  switch (kind) {
    case LayerKind::kConv: return "conv";
    case LayerKind::kDepthwise: return "depthwise";
    case LayerKind::kLinear: return "linear";
    case LayerKind::kAttentionProj: return "attention-proj";
  }
  raise("invalid LayerKind");
}

LayerKind parse_layer_kind(const std::string& id) {
  for (const LayerKind kind : {LayerKind::kConv, LayerKind::kDepthwise, LayerKind::kLinear,
                               LayerKind::kAttentionProj})
    if (id == layer_kind_id(kind)) return kind;
  raise("unknown layer kind \"" + id +
        "\" (known: conv, depthwise, linear, attention-proj)");
}

SparsityProfile SparsityProfile::declared(sparse::Sparsity sp) {
  SparsityProfile out;
  out.pattern = sp;
  out.measured = false;
  out.density = static_cast<double>(sp.n) / static_cast<double>(sp.m);
  out.nm_conformity = 1.0;
  out.row_imbalance = 0.0;
  return out;
}

std::uint64_t LayerRecord::macs() const {
  return static_cast<std::uint64_t>(gemm.rows_a) * gemm.k * gemm.cols_b * repeat;
}

std::size_t ModelGraph::layer_count() const {
  std::size_t total = 0;
  for (const LayerRecord& layer : layers) total += layer.repeat;
  return total;
}

std::uint64_t ModelGraph::total_macs() const {
  std::uint64_t total = 0;
  for (const LayerRecord& layer : layers) total += layer.macs();
  return total;
}

void ModelGraph::validate() const {
  IMAC_CHECK(!name.empty(), "model graph has no name");
  IMAC_CHECK(!layers.empty(), "model \"" + name + "\" has no layers");
  IMAC_CHECK(!default_sparsities.empty(),
             "model \"" + name + "\" declares no default sparsities");
  for (const sparse::Sparsity sp : default_sparsities)
    IMAC_CHECK(sp.n >= 1 && sp.n < sp.m,
               "model \"" + name + "\" has an invalid default sparsity " +
                   std::to_string(sp.n) + ":" + std::to_string(sp.m));
  std::unordered_set<std::string> seen;
  for (const LayerRecord& layer : layers) {
    const std::string where = "model \"" + name + "\" layer \"" + layer.name + "\"";
    IMAC_CHECK(!layer.name.empty(), "model \"" + name + "\" has an unnamed layer");
    IMAC_CHECK(seen.insert(layer.name).second, where + " is duplicated");
    IMAC_CHECK(layer.gemm.rows_a > 0 && layer.gemm.k > 0 && layer.gemm.cols_b > 0,
               where + " has a zero GEMM dimension");
    IMAC_CHECK(layer.repeat >= 1, where + " has repeat 0");
    IMAC_CHECK(layer.sparsity.density >= 0.0 && layer.sparsity.density <= 1.0,
               where + " has density outside [0, 1]");
    IMAC_CHECK(layer.sparsity.nm_conformity >= 0.0 && layer.sparsity.nm_conformity <= 1.0,
               where + " has N:M conformity outside [0, 1]");
  }
}

ModelGraph graph_from_cnn(const cnn::CnnModel& model, std::string name,
                          std::string description,
                          std::vector<sparse::Sparsity> sparsities) {
  ModelGraph out;
  out.name = std::move(name);
  out.display_name = model.name;
  out.description = std::move(description);
  out.default_sparsities = std::move(sparsities);
  for (const cnn::LayerGemm& layer : cnn::unique_gemms(model)) {
    const cnn::ConvLayer& conv = layer.representative;
    const bool depthwise = conv.in_channels == 1 && conv.kernel_h * conv.kernel_w > 1;
    LayerRecord record;
    record.name = conv.name;
    record.kind = depthwise ? LayerKind::kDepthwise : LayerKind::kConv;
    record.gemm = layer.dims;
    record.repeat = layer.count;
    record.sparsity = SparsityProfile::declared(out.default_sparsities.front());
    out.layers.push_back(std::move(record));
  }
  out.validate();
  return out;
}

}  // namespace indexmac::workloads
