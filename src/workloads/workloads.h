// Workload registry: named suites of GEMM shapes the simulator evaluates.
//
// Every suite is a thin view over a registered ModelGraph (model_ir.h):
// the paper's CNN tables (ResNet50/DenseNet121/InceptionV3 im2col GEMMs),
// MobileNetV1-style depthwise/pointwise GEMMs, transformer (BERT-base /
// ViT-base) attention/MLP projection GEMMs, LLM-decode skinny-activation
// GEMMs, and any model imported from a pruned checkpoint at runtime
// (model_import.h). Benches, the sweep engine and the CLI all re-derive
// their layer lists from the registered graphs, so registering a model
// makes it sweepable everywhere at once.
#pragma once

#include <string>
#include <vector>

#include "kernels/layout.h"
#include "sparse/nm_matrix.h"
#include "workloads/model_ir.h"

namespace indexmac::workloads {

/// One named GEMM workload: a shape plus its multiplicity within the suite
/// (identical shapes cost identical simulated time, so each is measured
/// once and weighted by `count`). Derived 1:1 from a LayerRecord.
struct Workload {
  std::string name;
  kernels::GemmDims dims;
  unsigned count = 1;
};

/// A named collection of workloads (one network / benchmark family): the
/// flattened view of a ModelGraph that shape-oriented consumers iterate.
struct Suite {
  std::string name;          ///< registry key (lowercase, CLI-friendly)
  std::string display_name;  ///< paper-style name for tables ("ResNet50")
  std::string description;
  /// Count-weighted layer total of the source network
  /// (== ModelGraph::layer_count(); asserted at registration).
  std::size_t source_layers = 0;
  /// Sparsity patterns the suite is evaluated under by default.
  std::vector<sparse::Sparsity> sparsities;
  std::vector<Workload> workloads;

  /// Total dense multiply-accumulates of one full pass, count-weighted.
  [[nodiscard]] std::uint64_t total_macs() const;
};

/// Registered suite names, in registration order (built-ins first, then
/// runtime-registered models). By value: register_model may extend the set.
[[nodiscard]] std::vector<std::string> suite_names();

[[nodiscard]] bool has_suite(const std::string& name);

/// Looks a suite up by name; throws SimError listing the known names.
/// References stay valid across register_model calls.
[[nodiscard]] const Suite& suite(const std::string& name);

/// The IR behind a suite; throws SimError listing the known names.
[[nodiscard]] const ModelGraph& model_graph(const std::string& name);

/// Registers a model (validated) and derives its Suite view. Throws
/// SimError on a duplicate name. Used by `imac_run sweep --import` to make
/// checkpoint-derived models sweepable next to the built-ins.
void register_model(ModelGraph graph);

/// One (shape, sparsity) evaluation point of a suite's default grid.
struct WorkloadInstance {
  Workload workload;
  sparse::Sparsity sp;
};

/// Expands a suite into its default (GemmDims, Sparsity) evaluation list:
/// all workloads at the first sparsity, then all at the second, and so on
/// (the order the figure benches consume).
[[nodiscard]] std::vector<WorkloadInstance> expand(const Suite& s);

/// Clamps each GEMM dimension to the matching dimension of `cap`: the
/// test-sized replica of a production shape (aspect ratios flatten, but
/// kernel structure — strip counts, tails, k-tiling — is preserved).
[[nodiscard]] kernels::GemmDims shrink(const kernels::GemmDims& dims,
                                       const kernels::GemmDims& cap);

/// Parses "1:4"-style sparsity labels. Throws SimError naming the label on
/// anything degenerate: non-digit characters, N == 0, N >= M (a dense or
/// over-full pattern), or fields beyond 4096.
[[nodiscard]] sparse::Sparsity parse_sparsity(const std::string& label);

/// Renders a Sparsity back to its "N:M" label.
[[nodiscard]] std::string sparsity_label(sparse::Sparsity sp);

}  // namespace indexmac::workloads
