// Workload registry: named suites of GEMM shapes the simulator evaluates.
//
// The paper's evaluation is CNN-only (ResNet50/DenseNet121/InceptionV3
// im2col GEMMs); the registry generalizes those hard-coded tables into a
// single catalog that also covers MobileNetV1-style depthwise/pointwise
// GEMMs and transformer (BERT-base / ViT-base) attention/MLP projection
// GEMMs under 1:4 and 2:4 structured sparsity, the shapes evaluated by the
// related structured-sparse RVV work (see PAPERS.md). Benches, the sweep
// engine and the CLI all pull their layer lists from here, so adding a
// suite makes it sweepable everywhere at once.
#pragma once

#include <string>
#include <vector>

#include "kernels/layout.h"
#include "sparse/nm_matrix.h"

namespace indexmac::workloads {

/// One named GEMM workload: a shape plus its multiplicity within the suite
/// (identical shapes cost identical simulated time, so each is measured
/// once and weighted by `count`).
struct Workload {
  std::string name;
  kernels::GemmDims dims;
  unsigned count = 1;
};

/// A named collection of workloads (one network / benchmark family).
struct Suite {
  std::string name;          ///< registry key (lowercase, CLI-friendly)
  std::string display_name;  ///< paper-style name for tables ("ResNet50")
  std::string description;
  /// Layer count of the source network (0 when not derived from one).
  std::size_t source_layers = 0;
  /// Sparsity patterns the suite is evaluated under by default.
  std::vector<sparse::Sparsity> sparsities;
  std::vector<Workload> workloads;

  /// Total dense multiply-accumulates of one full pass, count-weighted.
  [[nodiscard]] std::uint64_t total_macs() const;
};

/// Registered suite names, in registration order.
[[nodiscard]] const std::vector<std::string>& suite_names();

[[nodiscard]] bool has_suite(const std::string& name);

/// Looks a suite up by name; throws SimError listing the known names.
[[nodiscard]] const Suite& suite(const std::string& name);

/// One (shape, sparsity) evaluation point of a suite's default grid.
struct WorkloadInstance {
  Workload workload;
  sparse::Sparsity sp;
};

/// Expands a suite into its default (GemmDims, Sparsity) evaluation list:
/// all workloads at the first sparsity, then all at the second, and so on
/// (the order the figure benches consume).
[[nodiscard]] std::vector<WorkloadInstance> expand(const Suite& s);

/// Clamps each GEMM dimension to the matching dimension of `cap`: the
/// test-sized replica of a production shape (aspect ratios flatten, but
/// kernel structure — strip counts, tails, k-tiling — is preserved).
[[nodiscard]] kernels::GemmDims shrink(const kernels::GemmDims& dims,
                                       const kernels::GemmDims& cap);

/// Parses "1:4"-style sparsity labels; throws SimError on anything else.
[[nodiscard]] sparse::Sparsity parse_sparsity(const std::string& label);

/// Renders a Sparsity back to its "N:M" label.
[[nodiscard]] std::string sparsity_label(sparse::Sparsity sp);

}  // namespace indexmac::workloads
