#include "workloads/model_import.h"

#include <cstring>
#include <fstream>

#include "cnn/conv_layer.h"
#include "common/error.h"
#include "common/json.h"
#include "sparse/ellpack.h"
#include "workloads/workloads.h"

namespace indexmac::workloads {
namespace {

constexpr char kMagic[8] = {'I', 'M', 'A', 'C', 'T', 'N', 'S', 'R'};
constexpr std::size_t kHeaderBytes = 32;
constexpr std::uint32_t kVersion = 1;

std::uint32_t read_u32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) | static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 | static_cast<std::uint32_t>(p[3]) << 24;
}

std::uint64_t read_u64(const unsigned char* p) {
  return static_cast<std::uint64_t>(read_u32(p)) |
         static_cast<std::uint64_t>(read_u32(p + 4)) << 32;
}

/// IEEE binary16 -> binary32, bit-exact including subnormals/inf/NaN.
float f16_to_f32(std::uint16_t h) {
  const std::uint32_t sign = static_cast<std::uint32_t>(h & 0x8000u) << 16;
  std::uint32_t exp = (h >> 10) & 0x1fu;
  std::uint32_t man = h & 0x3ffu;
  std::uint32_t bits;
  if (exp == 0) {
    if (man == 0) {
      bits = sign;  // +-0
    } else {
      // Subnormal: renormalize into the f32 exponent range.
      exp = 113;  // 127 - 15 + 1
      while ((man & 0x400u) == 0) {
        man <<= 1;
        --exp;
      }
      bits = sign | (exp << 23) | ((man & 0x3ffu) << 13);
    }
  } else if (exp == 31) {
    bits = sign | 0x7f800000u | (man << 13);  // inf / NaN
  } else {
    bits = sign | ((exp + 112) << 23) | (man << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof out);
  return out;
}

/// Rejects manifest objects carrying keys outside `allowed`, mirroring the
/// sweep-spec parser: silent typos must not silently change a model.
void check_keys(const JsonValue& obj, std::initializer_list<const char*> allowed,
                const std::string& what) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* a : allowed)
      if (key == a) {
        known = true;
        break;
      }
    IMAC_CHECK(known, what + ": unknown key \"" + key + "\"");
  }
}

unsigned layer_uint(const JsonValue& layer, const char* key, const std::string& where) {
  const std::uint64_t v = layer.at(key).as_uint();
  IMAC_CHECK(v >= 1 && v <= 1u << 24, where + ": \"" + std::string(key) +
                                          "\" must be in [1, 2^24], got " + std::to_string(v));
  return static_cast<unsigned>(v);
}

/// Conv geometry shared by the conv and depthwise kinds. Depthwise layers
/// use the stacked-filter proxy (in_channels == 1), matching the
/// MobileNetV1 tables in cnn/models.cpp.
cnn::ConvLayer conv_geometry(const JsonValue& layer, LayerKind kind, const std::string& name,
                             const std::string& where) {
  cnn::ConvLayer conv;
  conv.name = name;
  conv.in_channels =
      kind == LayerKind::kDepthwise ? 1 : layer_uint(layer, "in_channels", where);
  conv.out_channels = kind == LayerKind::kDepthwise ? layer_uint(layer, "channels", where)
                                                    : layer_uint(layer, "out_channels", where);
  conv.kernel_h = layer_uint(layer, "kernel_h", where);
  conv.kernel_w = layer_uint(layer, "kernel_w", where);
  conv.stride = layer_uint(layer, "stride", where);
  conv.pad_h = static_cast<unsigned>(layer.at("pad_h").as_uint());
  conv.pad_w = static_cast<unsigned>(layer.at("pad_w").as_uint());
  conv.in_h = layer_uint(layer, "in_h", where);
  conv.in_w = layer_uint(layer, "in_w", where);
  return conv;
}

}  // namespace

sparse::DenseMatrix<float> load_tensor(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  IMAC_CHECK(in.good(), "tensor " + path + ": cannot open");
  std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  IMAC_CHECK(bytes.size() >= kHeaderBytes,
             "tensor " + path + ": truncated header (" + std::to_string(bytes.size()) +
                 " bytes)");
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  IMAC_CHECK(std::memcmp(p, kMagic, sizeof kMagic) == 0,
             "tensor " + path + ": bad magic (expected \"IMACTNSR\")");
  const std::uint32_t version = read_u32(p + 8);
  IMAC_CHECK(version == kVersion,
             "tensor " + path + ": unsupported version " + std::to_string(version));
  const std::uint32_t dtype = read_u32(p + 12);
  IMAC_CHECK(dtype <= 1, "tensor " + path + ": unknown dtype " + std::to_string(dtype) +
                             " (0 = f32, 1 = f16)");
  const std::uint64_t rows = read_u64(p + 16);
  const std::uint64_t cols = read_u64(p + 24);
  IMAC_CHECK(rows >= 1 && cols >= 1 && rows <= 1u << 24 && cols <= 1u << 24,
             "tensor " + path + ": bad shape " + std::to_string(rows) + "x" +
                 std::to_string(cols));
  const std::size_t elem_bytes = dtype == 0 ? 4 : 2;
  const std::size_t expected = kHeaderBytes + rows * cols * elem_bytes;
  IMAC_CHECK(bytes.size() == expected,
             "tensor " + path + ": size " + std::to_string(bytes.size()) +
                 " does not match header (expected " + std::to_string(expected) + " bytes)");
  sparse::DenseMatrix<float> out(rows, cols);
  const unsigned char* data = p + kHeaderBytes;
  for (std::size_t i = 0; i < rows * cols; ++i) {
    if (dtype == 0) {
      const std::uint32_t bits = read_u32(data + i * 4);
      float v;
      std::memcpy(&v, &bits, sizeof v);
      out.data()[i] = v;
    } else {
      const auto half = static_cast<std::uint16_t>(
          static_cast<std::uint16_t>(data[i * 2]) |
          static_cast<std::uint16_t>(data[i * 2 + 1]) << 8);
      out.data()[i] = f16_to_f32(half);
    }
  }
  return out;
}

SparsityProfile measure_profile(const sparse::DenseMatrix<float>& weights,
                                sparse::Sparsity pattern) {
  SparsityProfile out;
  out.pattern = pattern;
  out.measured = true;
  std::size_t nnz = 0;
  std::size_t blocks = 0, conforming = 0;
  for (std::size_t r = 0; r < weights.rows(); ++r) {
    for (std::size_t c0 = 0; c0 < weights.cols(); c0 += pattern.m) {
      const std::size_t c1 = std::min<std::size_t>(c0 + pattern.m, weights.cols());
      std::size_t block_nnz = 0;
      for (std::size_t c = c0; c < c1; ++c)
        if (weights.at(r, c) != 0.0f) ++block_nnz;
      nnz += block_nnz;
      ++blocks;
      if (block_nnz <= pattern.n) ++conforming;
    }
  }
  out.density = static_cast<double>(nnz) /
                (static_cast<double>(weights.rows()) * static_cast<double>(weights.cols()));
  out.nm_conformity = blocks == 0 ? 1.0 : static_cast<double>(conforming) / blocks;
  out.row_imbalance = sparse::EllpackMatrix<float>::from_dense(weights).padding_fraction();
  return out;
}

ModelGraph import_model(const std::string& dir) {
  const std::string manifest_path = dir + "/model.json";
  std::ifstream in(manifest_path);
  IMAC_CHECK(in.good(), "model import: cannot open " + manifest_path);
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  JsonValue doc;
  try {
    doc = parse_json(text);
  } catch (const SimError& e) {
    raise(manifest_path + ": " + e.what());
  }
  IMAC_CHECK(doc.is_object(), manifest_path + ": manifest must be a JSON object");
  check_keys(doc, {"format", "name", "display_name", "description", "sparsities", "layers"},
             manifest_path);
  const std::string format = doc.at("format").as_string();
  IMAC_CHECK(format == "imac-model/v1",
             manifest_path + ": unsupported format \"" + format + "\"");

  ModelGraph graph;
  graph.name = doc.at("name").as_string();
  graph.display_name = doc.get("display_name") != nullptr
                           ? doc.at("display_name").as_string()
                           : graph.name;
  graph.description = doc.get("description") != nullptr
                          ? doc.at("description").as_string()
                          : "imported checkpoint (" + dir + ")";
  graph.measured = true;
  for (const JsonValue& label : doc.at("sparsities").as_array())
    graph.default_sparsities.push_back(parse_sparsity(label.as_string()));
  IMAC_CHECK(!graph.default_sparsities.empty(),
             manifest_path + ": \"sparsities\" must name at least one pattern");

  for (const JsonValue& layer : doc.at("layers").as_array()) {
    IMAC_CHECK(layer.is_object(), manifest_path + ": every layer must be an object");
    const std::string name = layer.at("name").as_string();
    const std::string where = manifest_path + " layer \"" + name + "\"";
    const LayerKind kind = parse_layer_kind(layer.at("kind").as_string());

    LayerRecord record;
    record.name = name;
    record.kind = kind;
    record.repeat =
        layer.get("repeat") != nullptr ? layer_uint(layer, "repeat", where) : 1;
    const sparse::Sparsity pattern =
        layer.get("sparsity") != nullptr ? parse_sparsity(layer.at("sparsity").as_string())
                                         : graph.default_sparsities.front();

    std::size_t weight_rows = 0, weight_cols = 0;
    if (kind == LayerKind::kLinear || kind == LayerKind::kAttentionProj) {
      check_keys(layer,
                 {"name", "kind", "repeat", "sparsity", "weights", "out_features",
                  "in_features", "tokens"},
                 where);
      weight_rows = layer_uint(layer, "out_features", where);
      weight_cols = layer_uint(layer, "in_features", where);
      record.gemm = {weight_rows, weight_cols, layer_uint(layer, "tokens", where)};
    } else {
      check_keys(layer,
                 {"name", "kind", "repeat", "sparsity", "weights", "out_channels",
                  "in_channels", "channels", "kernel_h", "kernel_w", "stride", "pad_h",
                  "pad_w", "in_h", "in_w"},
                 where);
      IMAC_CHECK((layer.get("channels") != nullptr) == (kind == LayerKind::kDepthwise),
                 where + ": \"channels\" is the depthwise form; conv layers take "
                         "\"in_channels\"/\"out_channels\"");
      const cnn::ConvLayer conv = conv_geometry(layer, kind, name, where);
      try {
        record.gemm = conv.gemm();
      } catch (const SimError& e) {
        raise(where + ": " + e.what());
      }
      weight_rows = conv.out_channels;
      weight_cols = record.gemm.k;
    }

    const std::string weights_path = dir + "/" + layer.at("weights").as_string();
    const sparse::DenseMatrix<float> weights = load_tensor(weights_path);
    IMAC_CHECK(weights.rows() == weight_rows && weights.cols() == weight_cols,
               where + ": weights are " + std::to_string(weights.rows()) + "x" +
                   std::to_string(weights.cols()) + " but the declared geometry needs " +
                   std::to_string(weight_rows) + "x" + std::to_string(weight_cols));
    record.sparsity = measure_profile(weights, pattern);
    graph.layers.push_back(std::move(record));
  }

  try {
    graph.validate();
  } catch (const SimError& e) {
    raise(manifest_path + ": " + e.what());
  }
  return graph;
}

}  // namespace indexmac::workloads
