// Model IR: the typed layer graph every workload suite is derived from.
//
// A ModelGraph is a list of LayerRecords — conv / depthwise / linear /
// attention-projection layers, each carrying its im2col GEMM geometry, a
// repeat count (identical shapes cost identical simulated time, so each is
// measured once and weighted), and a per-layer SparsityProfile that is
// either declared (an assumed N:M pattern) or measured from the real
// weights of an imported checkpoint. `Suite` (workloads.h) is a thin view
// over a registered graph: sweep expansion, the benches and the CLI all
// re-derive their GEMM lists from these records, so a model imported at
// runtime is immediately sweepable everywhere.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernels/layout.h"
#include "sparse/nm_matrix.h"

namespace indexmac::cnn {
struct CnnModel;
}

namespace indexmac::workloads {

/// Structural role of a layer. Determines how checkpoint weights map onto
/// the GEMM operand A and which manifest keys the importer expects.
enum class LayerKind {
  kConv,           ///< dense conv: A = [out_ch x in_ch*kh*kw] im2col weights
  kDepthwise,      ///< grouped 3x3 proxy: A = [channels x kh*kw] stacked filters
  kLinear,         ///< fully connected / MLP: A = [out_features x in_features]
  kAttentionProj,  ///< attention Q/K/V/O projection (a linear with GQA-aware repeats)
};

/// Stable lowercase identifier ("conv", "depthwise", "linear",
/// "attention-proj") used by manifests and machine-readable listings.
[[nodiscard]] const char* layer_kind_id(LayerKind kind);

/// Inverse of layer_kind_id; throws SimError naming the unknown id.
[[nodiscard]] LayerKind parse_layer_kind(const std::string& id);

/// How sparse a layer's weights are. Declared profiles assume an ideal N:M
/// pattern; measured profiles record what an imported checkpoint actually
/// contains, against the N:M pattern the layer is intended to run under.
struct SparsityProfile {
  sparse::Sparsity pattern{2, 4};  ///< target N:M pattern of the layer
  bool measured = false;           ///< true when derived from real weights
  double density = 0.5;            ///< nonzero fraction (declared: n/m)
  /// Fraction of M-aligned blocks with at most N nonzeros (1.0 when the
  /// checkpoint conforms exactly to the declared pattern).
  double nm_conformity = 1.0;
  /// ELLPACK padding fraction of the real weights (row-length imbalance
  /// cost of the unstructured path); 0 for declared profiles.
  double row_imbalance = 0.0;

  [[nodiscard]] static SparsityProfile declared(sparse::Sparsity sp);
};

/// One layer of a model: geometry plus sparsity, count-weighted.
struct LayerRecord {
  std::string name;
  LayerKind kind = LayerKind::kLinear;
  kernels::GemmDims gemm{};
  unsigned repeat = 1;
  SparsityProfile sparsity = SparsityProfile::declared(sparse::kSparsity24);

  /// Dense multiply-accumulates of all `repeat` instances.
  [[nodiscard]] std::uint64_t macs() const;
};

/// A whole network in execution order: the unit of registration. Every
/// Suite is derived from one of these (see workloads::register_model).
struct ModelGraph {
  std::string name;          ///< registry key (lowercase, CLI-friendly)
  std::string display_name;  ///< paper-style name for tables ("ResNet50")
  std::string description;
  /// Sparsity patterns the model is evaluated under by default.
  std::vector<sparse::Sparsity> default_sparsities;
  std::vector<LayerRecord> layers;
  bool measured = false;  ///< true when built by the checkpoint importer

  /// Count-weighted layer total (what Suite::source_layers reports).
  [[nodiscard]] std::size_t layer_count() const;

  /// Total dense multiply-accumulates of one full pass, count-weighted.
  [[nodiscard]] std::uint64_t total_macs() const;

  /// Structural invariants: non-empty name and layers, unique layer names,
  /// nonzero GEMM dims and repeats, at least one valid default sparsity.
  /// Throws SimError naming the graph and offending layer.
  void validate() const;
};

/// Builds a graph from a CNN layer table via the im2col GEMM mapping,
/// deduplicating identical shapes exactly like cnn::unique_gemms so the
/// figure benches reproduce their pre-IR numbers. Depthwise proxy layers
/// (in_channels == 1 with a spatial kernel) are tagged kDepthwise.
[[nodiscard]] ModelGraph graph_from_cnn(const cnn::CnnModel& model, std::string name,
                                        std::string description,
                                        std::vector<sparse::Sparsity> sparsities);

}  // namespace indexmac::workloads
