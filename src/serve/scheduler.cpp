#include "serve/scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace indexmac::serve {

Scheduler::Scheduler(std::size_t total_points, const SchedulerConfig& config)
    : config_(config), total_(total_points) {
  IMAC_CHECK(total_points > 0, "scheduler: empty grid");
  IMAC_CHECK(config.batch > 0, "scheduler: lease batch must be positive");
  IMAC_CHECK(config.lease_ms > 0, "scheduler: lease_ms must be positive");
  state_.assign(total_, State::kPending);
  for (std::uint32_t i = 0; i < total_; ++i) queue_.push_back(i);
}

void Scheduler::preload_complete(std::uint32_t point) {
  IMAC_CHECK(point < total_, "scheduler: preload of out-of-range point");
  IMAC_CHECK(leases_.empty(), "scheduler: preload after leasing started");
  if (state_[point] == State::kDone) return;
  state_[point] = State::kDone;
  ++completed_;
}

Lease Scheduler::grant(std::uint64_t worker, std::uint64_t now_ms) {
  Lease lease;
  while (lease.points.size() < config_.batch && !queue_.empty()) {
    const std::uint32_t point = queue_.front();
    queue_.pop_front();
    // Stale queue entries: completed while waiting (a stalled worker's
    // late result) or re-queued and already re-leased. Skip silently.
    if (state_[point] != State::kPending) continue;
    state_[point] = State::kLeased;
    lease.points.push_back(point);
  }
  if (lease.points.empty()) return lease;  // id 0: drain
  lease.id = next_lease_id_++;
  lease.worker = worker;
  lease.deadline_ms = now_ms + config_.lease_ms;
  leases_.emplace(lease.id, lease);
  return lease;
}

bool Scheduler::heartbeat(std::uint64_t lease_id, std::uint64_t now_ms) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;
  it->second.deadline_ms = now_ms + config_.lease_ms;
  return true;
}

bool Scheduler::complete(std::uint32_t point) {
  IMAC_CHECK(point < total_, "scheduler: completion of out-of-range point " +
                                 std::to_string(point) + " (grid has " + std::to_string(total_) +
                                 " points)");
  if (state_[point] == State::kDone) {
    ++duplicate_completions_;
    return false;
  }
  state_[point] = State::kDone;
  ++completed_;
  // Leases shrink as their points complete so a fully-done lease stops
  // occupying deadline tracking (and a partially-done expired lease only
  // re-queues what is actually unfinished).
  for (auto it = leases_.begin(); it != leases_.end();) {
    auto& points = it->second.points;
    points.erase(std::remove(points.begin(), points.end(), point), points.end());
    it = points.empty() ? leases_.erase(it) : std::next(it);
  }
  return true;
}

std::size_t Scheduler::expire(std::uint64_t now_ms) {
  std::size_t requeued = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.deadline_ms > now_ms) {
      ++it;
      continue;
    }
    ++expired_leases_;
    // Front of the queue: stranded points are the oldest work in flight
    // and should be stolen before fresh points are handed out.
    for (auto p = it->second.points.rbegin(); p != it->second.points.rend(); ++p) {
      if (state_[*p] != State::kLeased) continue;
      state_[*p] = State::kPending;
      queue_.push_front(*p);
      ++requeued;
    }
    it = leases_.erase(it);
  }
  return requeued;
}

std::size_t Scheduler::release_worker(std::uint64_t worker) {
  std::size_t requeued = 0;
  for (auto it = leases_.begin(); it != leases_.end();) {
    if (it->second.worker != worker) {
      ++it;
      continue;
    }
    for (auto p = it->second.points.rbegin(); p != it->second.points.rend(); ++p) {
      if (state_[*p] != State::kLeased) continue;
      state_[*p] = State::kPending;
      queue_.push_front(*p);
      ++requeued;
    }
    it = leases_.erase(it);
  }
  return requeued;
}

std::optional<std::uint64_t> Scheduler::next_deadline_ms() const {
  std::optional<std::uint64_t> earliest;
  for (const auto& [id, lease] : leases_)
    if (!earliest || lease.deadline_ms < *earliest) earliest = lease.deadline_ms;
  return earliest;
}

std::size_t Scheduler::pending() const {
  std::size_t n = 0;
  for (const State s : state_)
    if (s == State::kPending) ++n;
  return n;
}

std::size_t Scheduler::leased() const {
  std::size_t n = 0;
  for (const State s : state_)
    if (s == State::kLeased) ++n;
  return n;
}

}  // namespace indexmac::serve
