#include "serve/worker.h"

#include <csignal>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <random>
#include <thread>
#include <vector>

#include "common/error.h"
#include "core/sweep.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace indexmac::serve {
namespace {

using core::SweepPoint;
using core::SweepSpec;

constexpr int kExchangeTimeoutMs = 10000;  ///< daemon replies immediately

std::uint64_t fnv1a(const std::string& text) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

bool stop_requested(const WorkerOptions& opts) {
  return opts.stop != nullptr && opts.stop->load(std::memory_order_relaxed);
}

/// Interruptible sleep; false when the stop flag fired mid-sleep.
bool sleep_unless_stopped(const WorkerOptions& opts, std::uint64_t ms) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
    if (stop_requested(opts)) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return !stop_requested(opts);
}

/// One round-trip receive; a silent daemon is a transport fault (retryable),
/// not a hang.
JsonValue expect_message(Socket& socket, FrameBuffer& frames, int timeout_ms) {
  std::optional<JsonValue> msg = recv_message(socket, frames, timeout_ms);
  if (!msg) throw NetError("worker: daemon did not answer within the exchange timeout");
  return std::move(*msg);
}

/// The grid as this worker reproduced it from the welcome's spec text.
struct Grid {
  SweepSpec spec;
  std::vector<SweepPoint> points;
};

Grid accept_welcome(const WorkerOptions& opts, const JsonValue& msg) {
  IMAC_CHECK(message_type(msg) == "welcome",
             "worker: expected welcome, got \"" + message_type(msg) + "\"");
  const WelcomeFields w = parse_welcome(msg);
  Grid grid;
  grid.spec = core::parse_sweep_spec(w.spec_text);
  grid.points = core::expand_sweep(grid.spec);
  const std::uint64_t hash = core::grid_hash(core::grid_keys(grid.spec, grid.points));
  // Leases name points by bare expansion index; a count or hash mismatch
  // means this binary would measure different points than the daemon
  // journals. No retry can fix a version skew — fail loudly.
  IMAC_CHECK(grid.points.size() == w.points && hash == w.grid_hash,
             "worker: grid mismatch for spec " + w.spec_name + ": daemon has " +
                 std::to_string(w.points) + " points / hash " + u64_to_hex(w.grid_hash) +
                 ", this binary expands " + std::to_string(grid.points.size()) + " / " +
                 u64_to_hex(hash) + " (version skew between worker and daemon?)");
  if (!opts.quiet)
    std::fprintf(stderr, "worker %s: joined spec %s (%zu points)\n", opts.name.c_str(),
                 w.spec_name.c_str(), grid.points.size());
  return grid;
}

/// Measures one leased point, heartbeating while the simulation runs so a
/// slow point does not read as a dead worker.
core::BatchResult measure(const WorkerOptions& opts, const Grid& grid, Socket& socket,
                          std::uint64_t lease_id, std::uint32_t index) {
  const core::BatchJob job = core::point_job(grid.spec, grid.points[index]);
  std::future<core::BatchResult> future =
      std::async(std::launch::async, [&job] { return core::run_job(job); });
  while (future.wait_for(std::chrono::milliseconds(opts.heartbeat_ms)) !=
         std::future_status::ready)
    send_message(socket, make_heartbeat(lease_id));
  return future.get();
}

/// Sends one result, running any scripted chaos hook that targets it.
/// Throws NetError for the drop hook so the caller's reconnect path runs.
void send_result(const WorkerOptions& opts, ChaosOptions& chaos, Socket& socket,
                 std::uint64_t lease_id, std::uint32_t index, const core::BatchResult& r,
                 long result_index) {
  const JsonValue msg = make_result(lease_id, index, r.cycles, r.data_accesses);
  if (chaos.kill_after >= 0 && result_index >= chaos.kill_after) {
    // The scripted SIGKILL: no flush, no goodbye — exactly what a crashed
    // or OOM-killed worker looks like to the daemon.
    std::fprintf(stderr, "worker %s: chaos: SIGKILL self before result %ld\n",
                 opts.name.c_str(), result_index);
    ::kill(::getpid(), SIGKILL);
  }
  if (chaos.drop_after >= 0 && result_index >= chaos.drop_after) {
    chaos.drop_after = -1;  // fire once; the retry must make progress
    std::fprintf(stderr, "worker %s: chaos: dropping connection mid-record\n",
                 opts.name.c_str());
    const std::string frame = encode_frame(msg);
    socket.send_partial_and_close(frame.data(), frame.size() / 2);
    throw NetError("worker: chaos connection drop");
  }
  send_message(socket, msg);
  if (chaos.stall_after >= 0 && result_index >= chaos.stall_after) {
    chaos.stall_after = -1;
    std::fprintf(stderr, "worker %s: chaos: stalling %llums without heartbeats\n",
                 opts.name.c_str(), static_cast<unsigned long long>(chaos.stall_ms));
    (void)sleep_unless_stopped(opts, chaos.stall_ms);
  }
}

}  // namespace

int run_worker(const WorkerOptions& options) {
  IMAC_CHECK(options.port != 0, "worker: a daemon port is required");
  ChaosOptions chaos = options.chaos;
  long results_sent = 0;
  // Deterministic per-worker jitter: de-synchronizes a fleet's reconnect
  // storm without nondeterminism in tests.
  std::minstd_rand jitter_rng(static_cast<unsigned>(fnv1a(options.name) | 1u));
  unsigned attempt = 0;
  auto last_success = std::chrono::steady_clock::now();

  for (;;) {
    if (stop_requested(options)) return 130;
    Socket socket;
    FrameBuffer frames;
    try {
      socket = connect_ipv4(options.host, options.port);
      send_message(socket, make_hello(options.name));
      const Grid grid = accept_welcome(options, expect_message(socket, frames,
                                                              kExchangeTimeoutMs));
      attempt = 0;
      last_success = std::chrono::steady_clock::now();

      for (;;) {
        if (stop_requested(options)) return 130;
        send_message(socket, make_lease_request());
        const JsonValue reply = expect_message(socket, frames, kExchangeTimeoutMs);
        const std::string type = message_type(reply);
        if (type == "complete") {
          if (!options.quiet)
            std::fprintf(stderr, "worker %s: grid complete, %ld results sent\n",
                         options.name.c_str(), results_sent);
          return 0;
        }
        if (type == "drain") {
          if (!sleep_unless_stopped(options, options.poll_ms)) return 130;
          continue;
        }
        if (type == "error") raise("worker: daemon rejected us: " +
                                   reply.at("message").as_string());
        IMAC_CHECK(type == "lease", "worker: expected lease/drain/complete, got \"" + type +
                                        "\"");
        const LeaseFields lease = parse_lease(reply);
        for (const std::uint32_t index : lease.points) {
          IMAC_CHECK(index < grid.points.size(),
                     "worker: leased point " + std::to_string(index) + " is out of range");
          const core::BatchResult r = measure(options, grid, socket, lease.lease, index);
          send_result(options, chaos, socket, lease.lease, index, r, results_sent);
          ++results_sent;
          // The ack closes the journal-before-ack handshake: once it
          // arrives this point is durable daemon-side and never re-runs.
          const JsonValue ack = expect_message(socket, frames, kExchangeTimeoutMs);
          const std::string ack_type = message_type(ack);
          if (ack_type == "complete") {
            if (!options.quiet)
              std::fprintf(stderr, "worker %s: grid complete, %ld results sent\n",
                           options.name.c_str(), results_sent);
            return 0;
          }
          IMAC_CHECK(ack_type == "ack", "worker: expected ack, got \"" + ack_type + "\"");
        }
      }
    } catch (const NetError& e) {
      const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - last_success)
                              .count();
      if (static_cast<std::uint64_t>(waited) > options.give_up_ms) {
        std::fprintf(stderr, "worker %s: giving up after %llums without a daemon: %s\n",
                     options.name.c_str(), static_cast<unsigned long long>(waited), e.what());
        return 3;
      }
      const std::uint64_t backoff = std::min<std::uint64_t>(
          options.backoff_cap_ms,
          options.backoff_base_ms << std::min(attempt, 16u));
      const std::uint64_t delay = backoff + jitter_rng() % (backoff / 2 + 1);
      ++attempt;
      if (!options.quiet)
        std::fprintf(stderr, "worker %s: connection lost (%s); retrying in %llums\n",
                     options.name.c_str(), e.what(), static_cast<unsigned long long>(delay));
      if (!sleep_unless_stopped(options, delay)) return 130;
    }
  }
}

}  // namespace indexmac::serve
