// imac_serve worker: connects to a daemon, leases grid points, measures
// them, and streams results back (see serve/protocol.h for the wire
// conversation and serve/daemon.h for the orchestration model).
//
// Fault model: every transport failure — connection refused, daemon
// restart, dropped socket, receive timeout — is retryable. The worker
// reconnects with capped exponential backoff plus deterministic jitter
// (seeded from the worker name, so fleets do not thundering-herd a
// restarted daemon in lockstep) and gives up only after give_up_ms
// without a successful exchange. Protocol errors (grid-hash mismatch,
// an explicit "error" message) are fatal: retrying cannot fix a worker
// and daemon that disagree about what the work is.
//
// Chaos hooks (ChaosOptions) let tests script worker misbehaviour
// deterministically: self-SIGKILL after N results, a heartbeat stall
// long enough to lose a lease, a connection dropped halfway through a
// result frame. They exist to prove the daemon's recovery machinery in
// CI and are plumbed to `imac_run worker --chaos-*` flags.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace indexmac::serve {

/// Scripted fault injection; -1 disables a hook. Counts are of results
/// successfully sent so far, so "kill_after 2" dies with exactly two
/// results delivered.
struct ChaosOptions {
  long kill_after = -1;   ///< raise(SIGKILL) before sending result N
  long drop_after = -1;   ///< send half a frame of result N, then close
  long stall_after = -1;  ///< after sending result N, stall (no heartbeats)
  std::uint64_t stall_ms = 0;  ///< stall length; make it > the lease deadline
};

struct WorkerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;       ///< required
  std::string name = "worker";  ///< identifies this worker in daemon logs
  std::uint64_t heartbeat_ms = 1000;  ///< heartbeat cadence while simulating
  std::uint64_t poll_ms = 200;        ///< re-request delay after "drain"
  std::uint64_t backoff_base_ms = 50;
  std::uint64_t backoff_cap_ms = 2000;
  /// Give up after this long without a successful exchange (a worker that
  /// outlives its daemon forever would leak from every harness).
  std::uint64_t give_up_ms = 120000;
  ChaosOptions chaos;
  const std::atomic<bool>* stop = nullptr;  ///< SIGINT/SIGTERM flag
  bool quiet = false;                       ///< suppress per-lease stderr chatter
};

/// Runs the worker until the daemon reports the grid complete. Returns the
/// process exit code: 0 on "complete", 3 after give_up_ms of failed
/// reconnects, 130 on stop-flag interrupt. Fatal protocol disagreements
/// throw SimError.
[[nodiscard]] int run_worker(const WorkerOptions& options);

}  // namespace indexmac::serve
