// Wire protocol of the sweep orchestrator: length-prefixed JSON frames
// over TCP (reusing common/json for the payloads).
//
// The normative spec of the framing and conversation also lives in
// docs/formats.md ("Serve protocol v1"); keep the two in sync.
//
// Framing: u32 little-endian payload length | payload (UTF-8 JSON object).
// Frames above kMaxFrameBytes are a protocol violation (a corrupt length
// prefix would otherwise ask the peer to buffer gigabytes).
//
// Conversation (worker w, daemon d):
//
//   w->d  {"type":"hello","worker":"w0","protocol":1}
//   d->w  {"type":"welcome","name":SPEC,"points":N,"hash":"<16 hex>",
//          "spec":"<verbatim sweep-spec JSON text>"}
//            The worker re-parses and re-expands the spec locally and must
//            reproduce the daemon's point count and grid hash exactly —
//            leases then name points by expansion index alone, so job
//            descriptions (shapes, processor config, seeds) never cross
//            the wire.
//   w->d  {"type":"lease-request"}
//   d->w  {"type":"lease","lease":L,"lease_ms":M,"points":[i,...]}
//       | {"type":"drain"}      nothing leasable now; poll again later
//       | {"type":"complete"}   grid fully journaled; worker exits 0
//   w->d  {"type":"heartbeat","lease":L}         extends the lease deadline
//   w->d  {"type":"result","lease":L,"point":i,
//          "cycles":"<16 hex digits: IEEE-754 bits>","accesses":"<u64>"}
//            cycles crosses the wire as exact bits (JSON numbers are
//            doubles formatted at 10 significant digits — not enough for a
//            byte-identical merged report); accesses as a decimal string
//            (u64 can exceed the 2^53 exact-integer range of a double).
//   d->w  {"type":"ack","point":i}     sent only after the result is
//                                      journaled in the daemon's store
//       | {"type":"complete"}          that result finished the grid
//   d->w  {"type":"error","message":"..."}   protocol violation; fatal
//
// Results are accepted even when their lease has expired or was re-leased
// to another worker: completions reconcile through the result store's
// same-key-same-result invariant, so duplicates are no-ops and divergent
// duplicates abort the daemon loudly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/json.h"
#include "serve/net.h"

namespace indexmac::serve {

constexpr std::uint32_t kProtocolVersion = 1;
/// Generous bound: the largest legitimate frame is the welcome message
/// carrying a sweep-spec text (hundreds of bytes, spec'd at well under
/// a mebibyte).
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

// --- framing --------------------------------------------------------------

/// Renders one frame: u32 LE length prefix + serialized JSON.
[[nodiscard]] std::string encode_frame(const JsonValue& message);

/// Sends one message as a frame.
void send_message(Socket& socket, const JsonValue& message);

/// Incremental frame decoder: feed() received bytes, next() yields each
/// complete payload. Throws SimError on an oversized length prefix.
class FrameBuffer {
 public:
  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }

  /// Returns the next complete frame payload, or nullopt when more bytes
  /// are needed.
  [[nodiscard]] std::optional<std::string> next();

  /// Bytes of an incomplete trailing frame (diagnostics: a peer that died
  /// mid-record leaves a nonzero residue).
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

/// Blocking receive of one complete message with a deadline. Returns
/// nullopt on timeout; throws NetError on EOF or transport failure and
/// SimError on malformed JSON. `buffer` carries partial frames between
/// calls and must be per-connection.
[[nodiscard]] std::optional<JsonValue> recv_message(Socket& socket, FrameBuffer& buffer,
                                                    int timeout_ms);

// --- message builders -----------------------------------------------------

[[nodiscard]] JsonValue make_hello(const std::string& worker);
[[nodiscard]] JsonValue make_welcome(const std::string& spec_name, std::size_t points,
                                     std::uint64_t grid_hash, const std::string& spec_text);
[[nodiscard]] JsonValue make_lease_request();
[[nodiscard]] JsonValue make_lease(std::uint64_t lease_id, std::uint64_t lease_ms,
                                   const std::vector<std::uint32_t>& points);
[[nodiscard]] JsonValue make_drain();
[[nodiscard]] JsonValue make_complete();
[[nodiscard]] JsonValue make_heartbeat(std::uint64_t lease_id);
[[nodiscard]] JsonValue make_result(std::uint64_t lease_id, std::uint32_t point, double cycles,
                                    std::uint64_t accesses);
[[nodiscard]] JsonValue make_ack(std::uint32_t point);
[[nodiscard]] JsonValue make_error(const std::string& message);

// --- field accessors ------------------------------------------------------

/// "type" of a message; SimError when absent (malformed peer).
[[nodiscard]] std::string message_type(const JsonValue& message);

/// Exact round-trip of the result payload (see header comment).
struct ResultFields {
  std::uint64_t lease = 0;
  std::uint32_t point = 0;
  double cycles = 0;
  std::uint64_t accesses = 0;
};
[[nodiscard]] ResultFields parse_result(const JsonValue& message);

struct LeaseFields {
  std::uint64_t lease = 0;
  std::uint64_t lease_ms = 0;
  std::vector<std::uint32_t> points;
};
[[nodiscard]] LeaseFields parse_lease(const JsonValue& message);

struct WelcomeFields {
  std::string spec_name;
  std::size_t points = 0;
  std::uint64_t grid_hash = 0;
  std::string spec_text;
};
[[nodiscard]] WelcomeFields parse_welcome(const JsonValue& message);

/// u64 <-> fixed-width hex / decimal strings (exact, locale-independent).
[[nodiscard]] std::string u64_to_hex(std::uint64_t v);
[[nodiscard]] std::uint64_t hex_to_u64(const std::string& s);
[[nodiscard]] std::string u64_to_dec(std::uint64_t v);
[[nodiscard]] std::uint64_t dec_to_u64(const std::string& s);

}  // namespace indexmac::serve
