// Deterministic lease table of the sweep orchestrator.
//
// The scheduler tracks every expanded grid point through three states —
// pending, leased, done — and never touches a clock or a socket: "now" is
// a caller-supplied millisecond count, so chaos scenarios (expired leases,
// duplicate completions, vanished workers) are plain unit tests.
//
// Work stealing replaces static partitioning: a lease that misses its
// deadline (no heartbeat, no results) is expired and its unfinished points
// return to the FRONT of the pending queue, so the oldest stranded work is
// re-leased to the next live worker that asks. Completions are accepted
// from anyone, including a worker whose lease was already re-assigned:
// the first completion wins, later duplicates are no-ops (the result
// store's same-key-same-result invariant guards their payloads).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace indexmac::serve {

struct SchedulerConfig {
  /// A lease not heartbeat within this window is expired and re-queued.
  std::uint64_t lease_ms = 5000;
  /// Points granted per lease. Small batches amortize protocol round
  /// trips without stranding much work behind a dead worker.
  std::uint32_t batch = 4;
};

struct Lease {
  std::uint64_t id = 0;
  std::uint64_t worker = 0;
  std::uint64_t deadline_ms = 0;
  std::vector<std::uint32_t> points;
};

class Scheduler {
 public:
  Scheduler(std::size_t total_points, const SchedulerConfig& config);

  /// Marks a point done before any leasing (journal preload on startup).
  void preload_complete(std::uint32_t point);

  /// Grants up to config.batch pending points to `worker`. An empty
  /// points list means nothing is leasable right now (drain — either the
  /// grid is done or every remaining point is leased out).
  [[nodiscard]] Lease grant(std::uint64_t worker, std::uint64_t now_ms);

  /// Extends a live lease's deadline. False for unknown/expired ids (the
  /// worker's lease was stolen; it learns on its next lease request).
  bool heartbeat(std::uint64_t lease_id, std::uint64_t now_ms);

  /// Records a completion from anywhere — live lease, expired lease, or a
  /// worker the point was stolen from. Returns true when the point was
  /// newly completed, false for duplicates. Throws on an out-of-range
  /// point index (protocol violation).
  bool complete(std::uint32_t point);

  /// Expires every lease past its deadline, re-queueing unfinished points
  /// at the front of the pending queue. Returns the re-queued count.
  std::size_t expire(std::uint64_t now_ms);

  /// Releases all of `worker`'s leases immediately (its connection died).
  /// Returns the re-queued point count.
  std::size_t release_worker(std::uint64_t worker);

  /// Earliest live-lease deadline, for the daemon's poll timeout.
  [[nodiscard]] std::optional<std::uint64_t> next_deadline_ms() const;

  [[nodiscard]] bool done() const { return completed_ == total_; }
  [[nodiscard]] std::size_t total() const { return total_; }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::size_t leased() const;
  /// Leases expired over the scheduler's lifetime (chaos observability).
  [[nodiscard]] std::uint64_t expired_leases() const { return expired_leases_; }
  /// Duplicate completions observed (work stealing reconciliation).
  [[nodiscard]] std::uint64_t duplicate_completions() const { return duplicate_completions_; }

 private:
  enum class State : std::uint8_t { kPending, kLeased, kDone };

  SchedulerConfig config_;
  std::size_t total_ = 0;
  std::size_t completed_ = 0;
  std::vector<State> state_;
  /// May transiently contain non-pending points (completed while queued,
  /// or re-queued twice); grant() skips them lazily.
  std::deque<std::uint32_t> queue_;
  std::map<std::uint64_t, Lease> leases_;
  std::uint64_t next_lease_id_ = 1;
  std::uint64_t expired_leases_ = 0;
  std::uint64_t duplicate_completions_ = 0;
};

}  // namespace indexmac::serve
