// imac_serve daemon: a fault-tolerant distributed sweep orchestrator.
//
// One daemon owns one sweep spec and one persistent ResultStore. Workers
// (imac_run worker) connect over the serve/protocol.h wire format, lease
// grid points, and stream results back; the daemon journals every result
// through the store BEFORE acknowledging it, so an acked point can never
// be lost to a worker or daemon death. Leases that miss their heartbeat
// deadline are re-queued and stolen by live workers; duplicate completions
// reconcile through the store's same-key-same-result invariant. When the
// grid is fully journaled, the daemon assembles the canonical report —
// byte-identical to a single-process `imac_run sweep` of the same spec —
// writes it, and exits. A spec already covered by the store is served
// straight from the journal ("0 new simulations").
//
// The run loop is single-threaded (poll over listener + worker sockets):
// every state transition is serialized, so the scheduler needs no locks
// and chaos interleavings replay deterministically in tests.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "core/result_store.h"
#include "serve/scheduler.h"

namespace indexmac::serve {

struct ServeOptions {
  std::string spec_path;           ///< sweep spec JSON file (required)
  std::string store_dir;           ///< ResultStore directory (required)
  core::Durability durability = core::Durability::kFlush;  ///< --fsync
  std::string out_path;            ///< report destination ("" = stdout)
  bool json = false;               ///< report format (CSV default)
  std::uint16_t port = 0;          ///< 0 = kernel-assigned ephemeral port
  std::string port_file;           ///< written with the bound port, for harnesses
  SchedulerConfig scheduler;       ///< lease deadline + batch size
  std::uint64_t progress_ms = 1000;   ///< progress/ETA stream interval
  std::uint64_t grace_ms = 500;       ///< post-completion window serving "complete"
  std::uint64_t wall_ms = 0;          ///< abort guard for CI (0 = unlimited)
  /// Graceful-shutdown flag (SIGINT/SIGTERM in the CLI): when it reads
  /// true the daemon stops granting leases, keeps journaling in-flight
  /// results until outstanding leases drain (or a deadline), prints the
  /// resumable-run hint, and exits nonzero.
  const std::atomic<bool>* stop = nullptr;
  /// Test hook: set to the bound port before the first accept, so
  /// in-process harnesses can connect without racing the port file.
  std::atomic<int>* bound_port = nullptr;
};

/// Runs the daemon to completion. Returns the process exit code: 0 when
/// the grid completed and the report was written, 130 on graceful stop,
/// 3 on wall-clock abort. Configuration and store errors throw SimError.
[[nodiscard]] int run_daemon(const ServeOptions& options);

}  // namespace indexmac::serve
