// Thin RAII wrappers over POSIX loopback/IPv4 TCP sockets for the sweep
// orchestrator (serve/daemon.h) and its workers (serve/worker.h).
//
// Design points:
//   - Socket failures raise NetError (a SimError subclass) so callers can
//     tell a retryable transport fault (worker: reconnect with backoff)
//     from a logic error (bad spec, protocol violation) which stays a
//     plain SimError and is fatal.
//   - All sends use MSG_NOSIGNAL: a peer that vanished mid-write must
//     surface as a catchable NetError, never as a process-killing SIGPIPE.
//   - Only numeric IPv4 addresses are accepted ("127.0.0.1" by default).
//     The orchestrator is a cluster-internal tool; pushing name resolution
//     onto the caller keeps this layer dependency-free and deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace indexmac::serve {

/// A transport-level failure (connection refused/reset, short write on a
/// closed peer, poll error). Retryable by reconnecting; distinct from
/// protocol/logic errors which remain plain SimError.
class NetError : public SimError {
 public:
  explicit NetError(const std::string& what) : SimError(what) {}
};

/// Move-only owner of one connected TCP file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Sends all `n` bytes; throws NetError on any failure.
  void send_all(const void* data, std::size_t n);

  /// Fault-injection hook: sends exactly the first `n` bytes of a larger
  /// message, then hard-closes the socket — the "connection dropped
  /// mid-record" failure a real network produces. Best-effort: transport
  /// errors during the partial write are swallowed (the connection is
  /// being destroyed either way).
  void send_partial_and_close(const void* data, std::size_t n);

  /// Receives up to `n` bytes. Returns 0 on orderly EOF; throws NetError
  /// on a transport error.
  [[nodiscard]] std::size_t recv_some(void* data, std::size_t n);

  void close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1. Port 0 asks the kernel for
/// an ephemeral port; port() reports the bound one either way.
class Listener {
 public:
  explicit Listener(std::uint16_t port);

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return socket_.fd(); }

  /// Accepts one pending connection (call after poll reports readability).
  [[nodiscard]] Socket accept();

 private:
  Socket socket_;
  std::uint16_t port_ = 0;
};

/// Connects to a numeric IPv4 address. Throws NetError when the peer is
/// unreachable (the worker's reconnect-with-backoff path) and SimError on
/// a malformed address (fatal; retrying cannot help).
[[nodiscard]] Socket connect_ipv4(const std::string& host, std::uint16_t port);

/// Waits up to `timeout_ms` for `fd` to become readable. Returns true when
/// readable, false on timeout; throws NetError on poll failure.
[[nodiscard]] bool wait_readable(int fd, int timeout_ms);

}  // namespace indexmac::serve
