#include "serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace indexmac::serve {
namespace {

[[noreturn]] void raise_net(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

/// Frames are latency-sensitive and tiny; Nagle coalescing only adds
/// round-trip delay to the lease/heartbeat chatter.
void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::send_all(const void* data, std::size_t n) {
  IMAC_CHECK(valid(), "net: send on a closed socket");
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      raise_net("net: send failed");
    }
    p += sent;
    n -= static_cast<std::size_t>(sent);
  }
}

void Socket::send_partial_and_close(const void* data, std::size_t n) {
  if (valid()) {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      const ssize_t sent = ::send(fd_, p, n, MSG_NOSIGNAL);
      if (sent < 0) {
        if (errno == EINTR) continue;
        break;  // connection already gone: the goal was its destruction
      }
      p += sent;
      n -= static_cast<std::size_t>(sent);
    }
  }
  close();
}

std::size_t Socket::recv_some(void* data, std::size_t n) {
  IMAC_CHECK(valid(), "net: recv on a closed socket");
  for (;;) {
    const ssize_t got = ::recv(fd_, data, n, 0);
    if (got < 0) {
      if (errno == EINTR) continue;
      raise_net("net: recv failed");
    }
    return static_cast<std::size_t>(got);
  }
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Listener::Listener(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_net("net: cannot create listening socket");
  socket_ = Socket(fd);
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    raise_net("net: cannot bind 127.0.0.1:" + std::to_string(port));
  if (::listen(fd, 64) != 0) raise_net("net: listen failed");

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    raise_net("net: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(socket_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      raise_net("net: accept failed");
    }
    set_nodelay(fd);
    return Socket(fd);
  }
}

Socket connect_ipv4(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  // A bad address is a configuration error, not a transport fault: plain
  // SimError so the worker does not retry a hopeless target forever.
  IMAC_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
             "net: \"" + host + "\" is not a numeric IPv4 address");

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) raise_net("net: cannot create socket");
  Socket sock(fd);
  for (;;) {
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) break;
    if (errno == EINTR) continue;
    raise_net("net: connect to " + host + ":" + std::to_string(port) + " failed");
  }
  set_nodelay(fd);
  return sock;
}

bool wait_readable(int fd, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = POLLIN;
  for (;;) {
    const int n = ::poll(&pfd, 1, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      raise_net("net: poll failed");
    }
    return n > 0;
  }
}

}  // namespace indexmac::serve
