#include "serve/protocol.h"

#include <cstring>

namespace indexmac::serve {
namespace {

std::uint64_t double_bits(double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  return bits;
}

double bits_double(std::uint64_t bits) {
  double d = 0;
  std::memcpy(&d, &bits, sizeof d);
  return d;
}

/// Message numbers ride as JSON doubles; every id/index/interval in the
/// protocol fits the 2^53 exact range (grid indices, lease counters,
/// millisecond intervals). Anything that can exceed it (cycle bits,
/// access counts) crosses as a string instead.
std::uint64_t field_u64(const JsonValue& msg, const char* key) {
  return msg.at(key).as_uint();
}

}  // namespace

// --- framing --------------------------------------------------------------

std::string encode_frame(const JsonValue& message) {
  const std::string payload = message.dump();
  IMAC_CHECK(payload.size() <= kMaxFrameBytes, "protocol: frame exceeds kMaxFrameBytes");
  std::string frame;
  frame.reserve(4 + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) frame.push_back(static_cast<char>((len >> (8 * i)) & 0xff));
  frame += payload;
  return frame;
}

void send_message(Socket& socket, const JsonValue& message) {
  const std::string frame = encode_frame(message);
  socket.send_all(frame.data(), frame.size());
}

std::optional<std::string> FrameBuffer::next() {
  if (buffer_.size() < 4) return std::nullopt;
  std::uint32_t len = 0;
  for (int i = 3; i >= 0; --i)
    len = (len << 8) | static_cast<unsigned char>(buffer_[static_cast<std::size_t>(i)]);
  IMAC_CHECK(len <= kMaxFrameBytes,
             "protocol: oversized frame (" + std::to_string(len) + " bytes) — corrupt stream");
  if (buffer_.size() - 4 < len) return std::nullopt;
  std::string payload = buffer_.substr(4, len);
  buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  return payload;
}

std::optional<JsonValue> recv_message(Socket& socket, FrameBuffer& buffer, int timeout_ms) {
  for (;;) {
    if (std::optional<std::string> payload = buffer.next()) return parse_json(*payload);
    if (!wait_readable(socket.fd(), timeout_ms)) return std::nullopt;
    char chunk[4096];
    const std::size_t got = socket.recv_some(chunk, sizeof chunk);
    if (got == 0) throw NetError("protocol: peer closed the connection");
    buffer.feed(chunk, got);
  }
}

// --- message builders -----------------------------------------------------

namespace {

JsonValue typed(const char* type) {
  JsonValue m = JsonValue::make_object();
  m.set("type", JsonValue(std::string(type)));
  return m;
}

}  // namespace

JsonValue make_hello(const std::string& worker) {
  JsonValue m = typed("hello");
  m.set("worker", JsonValue(worker));
  m.set("protocol", JsonValue(static_cast<double>(kProtocolVersion)));
  return m;
}

JsonValue make_welcome(const std::string& spec_name, std::size_t points, std::uint64_t grid_hash,
                       const std::string& spec_text) {
  JsonValue m = typed("welcome");
  m.set("name", JsonValue(spec_name));
  m.set("points", JsonValue(static_cast<double>(points)));
  m.set("hash", JsonValue(u64_to_hex(grid_hash)));
  m.set("spec", JsonValue(spec_text));
  return m;
}

JsonValue make_lease_request() { return typed("lease-request"); }

JsonValue make_lease(std::uint64_t lease_id, std::uint64_t lease_ms,
                     const std::vector<std::uint32_t>& points) {
  JsonValue m = typed("lease");
  m.set("lease", JsonValue(static_cast<double>(lease_id)));
  m.set("lease_ms", JsonValue(static_cast<double>(lease_ms)));
  JsonValue arr = JsonValue::make_array();
  for (const std::uint32_t p : points) arr.push_back(JsonValue(static_cast<double>(p)));
  m.set("points", std::move(arr));
  return m;
}

JsonValue make_drain() { return typed("drain"); }

JsonValue make_complete() { return typed("complete"); }

JsonValue make_heartbeat(std::uint64_t lease_id) {
  JsonValue m = typed("heartbeat");
  m.set("lease", JsonValue(static_cast<double>(lease_id)));
  return m;
}

JsonValue make_result(std::uint64_t lease_id, std::uint32_t point, double cycles,
                      std::uint64_t accesses) {
  JsonValue m = typed("result");
  m.set("lease", JsonValue(static_cast<double>(lease_id)));
  m.set("point", JsonValue(static_cast<double>(point)));
  m.set("cycles", JsonValue(u64_to_hex(double_bits(cycles))));
  m.set("accesses", JsonValue(u64_to_dec(accesses)));
  return m;
}

JsonValue make_ack(std::uint32_t point) {
  JsonValue m = typed("ack");
  m.set("point", JsonValue(static_cast<double>(point)));
  return m;
}

JsonValue make_error(const std::string& message) {
  JsonValue m = typed("error");
  m.set("message", JsonValue(message));
  return m;
}

// --- field accessors ------------------------------------------------------

std::string message_type(const JsonValue& message) {
  IMAC_CHECK(message.is_object(), "protocol: message is not a JSON object");
  return message.at("type").as_string();
}

ResultFields parse_result(const JsonValue& message) {
  ResultFields f;
  f.lease = field_u64(message, "lease");
  f.point = static_cast<std::uint32_t>(field_u64(message, "point"));
  f.cycles = bits_double(hex_to_u64(message.at("cycles").as_string()));
  f.accesses = dec_to_u64(message.at("accesses").as_string());
  return f;
}

LeaseFields parse_lease(const JsonValue& message) {
  LeaseFields f;
  f.lease = field_u64(message, "lease");
  f.lease_ms = field_u64(message, "lease_ms");
  for (const JsonValue& p : message.at("points").as_array())
    f.points.push_back(static_cast<std::uint32_t>(p.as_uint()));
  return f;
}

WelcomeFields parse_welcome(const JsonValue& message) {
  WelcomeFields f;
  f.spec_name = message.at("name").as_string();
  f.points = static_cast<std::size_t>(field_u64(message, "points"));
  f.grid_hash = hex_to_u64(message.at("hash").as_string());
  f.spec_text = message.at("spec").as_string();
  return f;
}

std::string u64_to_hex(std::uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string s(16, '0');
  for (int i = 15; i >= 0; --i) {
    s[static_cast<std::size_t>(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return s;
}

std::uint64_t hex_to_u64(const std::string& s) {
  IMAC_CHECK(s.size() == 16, "protocol: expected 16 hex digits, got \"" + s + "\"");
  std::uint64_t v = 0;
  for (const char c : s) {
    unsigned digit = 0;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
    else raise("protocol: bad hex digit in \"" + s + "\"");
    v = (v << 4) | digit;
  }
  return v;
}

std::string u64_to_dec(std::uint64_t v) { return std::to_string(v); }

std::uint64_t dec_to_u64(const std::string& s) {
  IMAC_CHECK(!s.empty() && s.size() <= 20, "protocol: bad u64 \"" + s + "\"");
  std::uint64_t v = 0;
  for (const char c : s) {
    IMAC_CHECK(c >= '0' && c <= '9', "protocol: bad u64 \"" + s + "\"");
    const std::uint64_t next = v * 10 + static_cast<std::uint64_t>(c - '0');
    IMAC_CHECK(next >= v, "protocol: u64 overflow in \"" + s + "\"");
    v = next;
  }
  return v;
}

}  // namespace indexmac::serve
