#include "serve/daemon.h"

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "common/error.h"
#include "core/sweep.h"
#include "serve/net.h"
#include "serve/protocol.h"

namespace indexmac::serve {
namespace {

using core::ResultStore;
using core::StoredResult;
using core::SweepPoint;
using core::SweepSpec;

std::uint64_t now_ms_since(const std::chrono::steady_clock::time_point& start) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                        std::chrono::steady_clock::now() - start)
                                        .count());
}

/// One connected worker socket plus its per-connection decode state.
struct Client {
  Socket socket;
  FrameBuffer frames;
  std::uint64_t id = 0;     ///< scheduler worker id (stable per connection)
  std::string name;         ///< from hello, for log lines
  bool greeted = false;
};

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  IMAC_CHECK(file.good(), "imac_serve: cannot open sweep spec " + path);
  std::stringstream buf;
  buf << file.rdbuf();
  return buf.str();
}

/// Writes the rendered report (binary-exact) to `path` or stdout; throws
/// SimError on short writes so a full disk never yields a silently
/// truncated "successful" report.
void write_report(const std::string& rendered, const std::string& path) {
  if (!path.empty()) {
    std::ofstream out(path, std::ios::binary);
    IMAC_CHECK(out.good(), "imac_serve: cannot write " + path);
    out << rendered;
    out.close();
    IMAC_CHECK(out.good(), "imac_serve: write to " + path + " failed");
    return;
  }
  IMAC_CHECK(std::fwrite(rendered.data(), 1, rendered.size(), stdout) == rendered.size() &&
                 std::fflush(stdout) == 0,
             "imac_serve: write to stdout failed");
}

std::string fmt_eta(std::uint64_t ms) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%llus", static_cast<unsigned long long>(ms / 1000),
                static_cast<unsigned long long>((ms % 1000) / 100));
  return buf;
}

/// The whole orchestration state, so helpers share it without globals.
struct Daemon {
  const ServeOptions& opts;
  SweepSpec spec;
  std::string spec_text;
  std::vector<SweepPoint> points;
  std::vector<std::string> keys;
  std::uint64_t hash = 0;
  ResultStore store;
  Scheduler sched;
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();
  std::vector<Client> clients;
  std::uint64_t next_client_id = 1;
  std::size_t session_completed = 0;  ///< completions this run (for ETA)
  std::uint64_t first_result_ms = 0;
  std::size_t last_progress_completed = static_cast<std::size_t>(-1);
  std::uint64_t last_progress_ms = 0;
  bool stopping = false;
  std::uint64_t stop_seen_ms = 0;

  Daemon(const ServeOptions& o, SweepSpec s, std::string text, std::vector<SweepPoint> pts)
      : opts(o),
        spec(std::move(s)),
        spec_text(std::move(text)),
        points(std::move(pts)),
        keys(core::grid_keys(spec, points)),
        hash(core::grid_hash(keys)),
        store(o.store_dir, o.durability),
        sched(points.size(), o.scheduler) {}

  [[nodiscard]] std::uint64_t now_ms() const { return now_ms_since(start); }

  void drop_client(std::size_t index) {
    Client& c = clients[index];
    const std::size_t stolen = sched.release_worker(c.id);
    if (stolen > 0)
      std::fprintf(stderr, "serve: worker %s disconnected, re-queued %zu leased points\n",
                   c.name.c_str(), stolen);
    clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(index));
  }

  /// Journal-then-ack: the result is in the store (at the configured
  /// durability) before the worker hears "ack". A result whose metrics
  /// disagree with an earlier journaled record throws out of here and
  /// aborts the daemon — the no-silent-wrong-merges invariant.
  void handle_result(Client& client, const JsonValue& msg) {
    const ResultFields r = parse_result(msg);
    IMAC_CHECK(r.point < points.size(),
               "serve: worker " + client.name + " sent an out-of-range point index " +
                   std::to_string(r.point));
    store.put(keys[r.point], StoredResult{r.cycles, r.accesses});
    if (sched.complete(r.point)) {
      ++session_completed;
      if (first_result_ms == 0) first_result_ms = now_ms();
    }
    send_message(client.socket, sched.done() ? make_complete() : make_ack(r.point));
  }

  void handle_message(Client& client, const JsonValue& msg) {
    const std::string type = message_type(msg);
    if (!client.greeted) {
      IMAC_CHECK(type == "hello", "serve: first message must be hello, got \"" + type + "\"");
      const std::uint64_t version = msg.at("protocol").as_uint();
      IMAC_CHECK(version == kProtocolVersion,
                 "serve: worker speaks protocol " + std::to_string(version) + ", daemon speaks " +
                     std::to_string(kProtocolVersion));
      client.name = msg.at("worker").as_string();
      client.greeted = true;
      send_message(client.socket, make_welcome(spec.name, points.size(), hash, spec_text));
      return;
    }
    if (type == "lease-request") {
      if (sched.done()) {
        send_message(client.socket, make_complete());
        return;
      }
      if (stopping) {
        // Graceful shutdown: no new leases, but in-flight work still
        // journals, so what is done stays done.
        send_message(client.socket, make_drain());
        return;
      }
      sched.expire(now_ms());
      const Lease lease = sched.grant(client.id, now_ms());
      if (lease.points.empty()) {
        send_message(client.socket, make_drain());
      } else {
        send_message(client.socket,
                     make_lease(lease.id, opts.scheduler.lease_ms, lease.points));
      }
      return;
    }
    if (type == "heartbeat") {
      // An unknown/expired lease id is not an error: the worker simply
      // lost that lease to stealing and learns on its next request.
      (void)sched.heartbeat(msg.at("lease").as_uint(), now_ms());
      return;
    }
    if (type == "result") {
      handle_result(client, msg);
      return;
    }
    raise("serve: unexpected message type \"" + type + "\" from worker " + client.name);
  }

  void print_progress(bool force) {
    const std::uint64_t now = now_ms();
    if (!force && now - last_progress_ms < opts.progress_ms) return;
    if (!force && sched.completed() == last_progress_completed) return;
    last_progress_ms = now;
    last_progress_completed = sched.completed();
    std::string eta = "-";
    if (session_completed > 0 && sched.completed() < sched.total()) {
      const std::uint64_t spent = now - first_result_ms;
      eta = fmt_eta(spent * (sched.total() - sched.completed()) /
                    std::max<std::size_t>(session_completed, 1));
    }
    std::fprintf(stderr, "serve: %zu/%zu points (%.0f%%), %zu leased, %zu workers, ETA %s\n",
                 sched.completed(), sched.total(),
                 100.0 * static_cast<double>(sched.completed()) /
                     static_cast<double>(sched.total()),
                 sched.leased(), clients.size(), eta.c_str());
  }

  /// Final summary + canonical report. The "0 new simulations" line is the
  /// cached-re-query contract CI greps for.
  void finish() {
    store.sync();  // report claims completion; the journal must not lag it
    std::fprintf(stderr, "store: %llu new simulations journaled (%llu already on disk)\n",
                 static_cast<unsigned long long>(store.appended()),
                 static_cast<unsigned long long>(store.loaded()));
    if (sched.expired_leases() > 0 || sched.duplicate_completions() > 0)
      std::fprintf(stderr, "serve: %llu leases expired and re-leased, %llu duplicate completions"
                           " reconciled\n",
                   static_cast<unsigned long long>(sched.expired_leases()),
                   static_cast<unsigned long long>(sched.duplicate_completions()));
    std::map<std::string, StoredResult> merged;
    core::accumulate_results(store, merged);
    const core::SweepReport report = core::assemble_report(spec, merged);
    write_report(opts.json ? core::report_to_json(report) : core::report_to_csv(report),
                 opts.out_path);
    if (!opts.out_path.empty())
      std::fprintf(stderr, "wrote %zu rows to %s\n", report.rows.size(), opts.out_path.c_str());
  }
};

/// Post-completion grace window: late workers (mid-simulation when the
/// last point landed, or reconnecting after a drop) still get a clean
/// "complete" instead of a connection refused, so they exit 0.
void grace_period(Daemon& d, Listener& listener) {
  const std::uint64_t until = d.now_ms() + d.opts.grace_ms;
  while (d.now_ms() < until) {
    std::vector<pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    for (const Client& c : d.clients) fds.push_back({c.socket.fd(), POLLIN, 0});
    const std::uint64_t left = until - d.now_ms();
    if (::poll(fds.data(), fds.size(), static_cast<int>(std::min<std::uint64_t>(left, 100))) < 0)
      break;
    if ((fds[0].revents & POLLIN) != 0) {
      Client c;
      c.socket = listener.accept();
      c.id = d.next_client_id++;
      d.clients.push_back(std::move(c));
    }
    for (std::size_t i = d.clients.size(); i-- > 0;) {
      Client& c = d.clients[i];
      try {
        char chunk[4096];
        const std::size_t got = c.socket.valid() ? c.socket.recv_some(chunk, sizeof chunk) : 0;
        if (got == 0) {
          d.drop_client(i);
          continue;
        }
        c.frames.feed(chunk, got);
        while (std::optional<std::string> payload = c.frames.next()) {
          const JsonValue msg = parse_json(*payload);
          const std::string type = message_type(msg);
          if (!c.greeted && type == "hello") {
            c.name = msg.at("worker").as_string();
            c.greeted = true;
            send_message(c.socket, make_welcome(d.spec.name, d.points.size(), d.hash,
                                                d.spec_text));
          } else if (type == "result") {
            d.handle_result(c, msg);  // journals, then answers "complete"
          } else {
            send_message(c.socket, make_complete());
          }
        }
      } catch (const NetError&) {
        d.drop_client(i);
      }
    }
  }
}

}  // namespace

int run_daemon(const ServeOptions& options) {
  IMAC_CHECK(!options.spec_path.empty(), "imac_serve: --spec is required");
  IMAC_CHECK(!options.store_dir.empty(), "imac_serve: --store is required");

  std::string spec_text = read_file(options.spec_path);
  SweepSpec spec = core::parse_sweep_spec(spec_text);
  std::vector<SweepPoint> points = core::expand_sweep(spec);
  Daemon d(options, std::move(spec), std::move(spec_text), std::move(points));

  if (d.store.dropped_bytes() > 0)
    std::fprintf(stderr, "store %s: recovered (dropped %llu corrupt tail bytes)\n",
                 d.store.journal_path().c_str(),
                 static_cast<unsigned long long>(d.store.dropped_bytes()));

  // Journal preload: already-covered points never re-simulate. A fully
  // covered spec is served without opening a port at all.
  for (std::uint32_t i = 0; i < d.keys.size(); ++i)
    if (d.store.find(d.keys[i]) != nullptr) d.sched.preload_complete(i);
  std::fprintf(stderr, "serve: spec %s: %zu points, %zu already journaled in %s\n",
               d.spec.name.c_str(), d.sched.total(), d.sched.completed(),
               d.store.journal_path().c_str());
  if (d.sched.done()) {
    d.finish();
    return 0;
  }

  Listener listener(options.port);
  std::fprintf(stderr, "serve: listening on 127.0.0.1:%u (lease %llums, batch %u)\n",
               listener.port(), static_cast<unsigned long long>(options.scheduler.lease_ms),
               options.scheduler.batch);
  if (!options.port_file.empty()) {
    std::ofstream pf(options.port_file, std::ios::binary | std::ios::trunc);
    IMAC_CHECK(pf.good(), "imac_serve: cannot write port file " + options.port_file);
    pf << listener.port() << "\n";
    pf.close();
    IMAC_CHECK(pf.good(), "imac_serve: cannot write port file " + options.port_file);
  }
  if (options.bound_port != nullptr) options.bound_port->store(listener.port());

  while (!d.sched.done()) {
    const std::uint64_t now = d.now_ms();
    if (options.wall_ms != 0 && now > options.wall_ms) {
      std::fprintf(stderr, "serve: wall-clock limit (%llums) exceeded with %zu/%zu points; "
                           "resumable: rerun imac_serve with the same --store\n",
                   static_cast<unsigned long long>(options.wall_ms), d.sched.completed(),
                   d.sched.total());
      return 3;
    }
    if (options.stop != nullptr && options.stop->load(std::memory_order_relaxed) &&
        !d.stopping) {
      d.stopping = true;
      d.stop_seen_ms = now;
      std::fprintf(stderr, "serve: stop requested — no new leases, draining %zu in-flight "
                           "points\n",
                   d.sched.leased());
    }
    if (d.stopping &&
        (d.sched.leased() == 0 || now > d.stop_seen_ms + options.scheduler.lease_ms)) {
      d.store.sync();
      std::fprintf(stderr, "serve: interrupted with %zu/%zu points journaled\n"
                           "resumable: rerun imac_serve with the same --store\n",
                   d.sched.completed(), d.sched.total());
      return 130;
    }

    // Poll timeout: the nearest of lease deadline, progress tick, stop
    // drain, and wall guard — bounded so signal flags stay responsive.
    std::uint64_t timeout = options.progress_ms;
    if (const auto deadline = d.sched.next_deadline_ms(); deadline && *deadline > now)
      timeout = std::min(timeout, *deadline - now);
    timeout = std::min<std::uint64_t>(timeout, 200);

    std::vector<pollfd> fds;
    fds.push_back({listener.fd(), POLLIN, 0});
    for (const Client& c : d.clients) fds.push_back({c.socket.fd(), POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), static_cast<int>(timeout));
    if (ready < 0 && errno != EINTR) throw NetError("serve: poll failed");

    if (ready > 0 && (fds[0].revents & POLLIN) != 0) {
      Client c;
      c.socket = listener.accept();
      c.id = d.next_client_id++;
      d.clients.push_back(std::move(c));
    }

    // Iterate clients newest-first so erase() never shifts an index we
    // have yet to visit. (fds[i+1] belongs to clients[i]; a client
    // accepted this round has no fds entry yet and is skipped.)
    for (std::size_t i = std::min(d.clients.size(), fds.size() - 1); i-- > 0;) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Client& c = d.clients[i];
      try {
        char chunk[4096];
        const std::size_t got = c.socket.recv_some(chunk, sizeof chunk);
        if (got == 0) {  // orderly EOF; a mid-frame residue means the
                         // worker died mid-record — its lease re-queues
          d.drop_client(i);
          continue;
        }
        c.frames.feed(chunk, got);
        while (std::optional<std::string> payload = c.frames.next())
          d.handle_message(c, parse_json(*payload));
      } catch (const NetError&) {
        d.drop_client(i);
      } catch (const SimError& e) {
        // Protocol violation from this worker: tell it why (best effort),
        // drop it, keep serving everyone else. Store-level failures
        // (result drift, journal I/O) are daemon-fatal and rethrow.
        const std::string what = e.what();
        if (what.find("result store:") != std::string::npos) throw;
        std::fprintf(stderr, "serve: dropping worker %s: %s\n", c.name.c_str(), what.c_str());
        try {
          send_message(c.socket, make_error(what));
        } catch (const NetError&) {
        }
        d.drop_client(i);
      }
    }

    if (const std::size_t stolen = d.sched.expire(d.now_ms()); stolen > 0)
      std::fprintf(stderr, "serve: expired lease(s): re-queued %zu points for stealing\n",
                   stolen);
    d.print_progress(false);
  }

  d.print_progress(true);
  d.finish();

  // Late/reconnecting workers get "complete" instead of ECONNREFUSED.
  for (Client& c : d.clients) {
    try {
      send_message(c.socket, make_complete());
    } catch (const NetError&) {
    }
  }
  grace_period(d, listener);
  return 0;
}

}  // namespace indexmac::serve
