#include "isa/isa.h"

#include "common/error.h"

namespace indexmac::isa {

bool is_vector(Op op) {
  switch (op) {
    case Op::kVle32:
    case Op::kVse32:
    case Op::kVluxei32:
    case Op::kVaddVx:
    case Op::kVaddVi:
    case Op::kVaddVV:
    case Op::kVfaddVV:
    case Op::kVmulVV:
    case Op::kVfmulVV:
    case Op::kVredsumVS:
    case Op::kVfredusumVS:
    case Op::kVmaccVx:
    case Op::kVfmaccVf:
    case Op::kVmvVX:
    case Op::kVmvVI:
    case Op::kVmvXS:
    case Op::kVfmvFS:
    case Op::kVmvSX:
    case Op::kVslidedownVx:
    case Op::kVslidedownVi:
    case Op::kVslide1downVx:
    case Op::kVindexmacVx:
    case Op::kVfindexmacVx:
    case Op::kVindexmacpVx:
    case Op::kVfindexmacpVx:
    case Op::kVindexmac2Vx:
    case Op::kVfindexmac2Vx:
    case Op::kVindexmacsV:
    case Op::kVfindexmacsV:
      return true;
    default:
      return false;
  }
}

bool is_branch(Op op) {
  switch (op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      return true;
    default:
      return false;
  }
}

bool is_jump(Op op) { return op == Op::kJal || op == Op::kJalr; }

bool is_scalar_load(Op op) {
  return op == Op::kLw || op == Op::kLwu || op == Op::kLd || op == Op::kFlw;
}

bool is_scalar_store(Op op) { return op == Op::kSw || op == Op::kSd || op == Op::kFsw; }

bool is_vector_load(Op op) { return op == Op::kVle32 || op == Op::kVluxei32; }

bool is_vector_store(Op op) { return op == Op::kVse32; }

bool is_vector_to_scalar(Op op) { return op == Op::kVmvXS || op == Op::kVfmvFS; }

bool writes_x(const Instruction& inst) {
  switch (inst.op) {
    case Op::kLui:
    case Op::kAuipc:
    case Op::kJal:
    case Op::kJalr:
    case Op::kLw:
    case Op::kLwu:
    case Op::kLd:
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
    case Op::kMul:
    case Op::kVsetvli:
    case Op::kVmvXS:
      return inst.rd != 0;
    default:
      return false;
  }
}

bool writes_f(const Instruction& inst) {
  return inst.op == Op::kFlw || inst.op == Op::kVfmvFS;
}

bool writes_v(const Instruction& inst) {
  switch (inst.op) {
    case Op::kVle32:
    case Op::kVluxei32:
    case Op::kVaddVx:
    case Op::kVaddVi:
    case Op::kVaddVV:
    case Op::kVfaddVV:
    case Op::kVmulVV:
    case Op::kVfmulVV:
    case Op::kVredsumVS:
    case Op::kVfredusumVS:
    case Op::kVmaccVx:
    case Op::kVfmaccVf:
    case Op::kVmvVX:
    case Op::kVmvVI:
    case Op::kVmvSX:
    case Op::kVslidedownVx:
    case Op::kVslidedownVi:
    case Op::kVslide1downVx:
    case Op::kVindexmacVx:
    case Op::kVfindexmacVx:
    case Op::kVindexmacpVx:
    case Op::kVfindexmacpVx:
    case Op::kVindexmac2Vx:
    case Op::kVfindexmac2Vx:
    case Op::kVindexmacsV:
    case Op::kVfindexmacsV:
      return true;
    default:
      return false;
  }
}

bool reads_x_rs1(const Instruction& inst) {
  switch (inst.op) {
    case Op::kJalr:
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kLw:
    case Op::kLwu:
    case Op::kLd:
    case Op::kSw:
    case Op::kSd:
    case Op::kFlw:
    case Op::kFsw:
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
    case Op::kMul:
    case Op::kVsetvli:
    case Op::kVle32:
    case Op::kVse32:
    case Op::kVluxei32:
    case Op::kVaddVx:
    case Op::kVmaccVx:
    case Op::kVmvVX:
    case Op::kVmvSX:
    case Op::kVslidedownVx:
    case Op::kVslide1downVx:
    case Op::kVindexmacVx:
    case Op::kVfindexmacVx:
    case Op::kVindexmacpVx:
    case Op::kVfindexmacpVx:
    case Op::kVindexmac2Vx:
    case Op::kVfindexmac2Vx:
    case Op::kSsrCfg:
    case Op::kSsrEn:
      return true;
    default:
      return false;
  }
}

bool reads_x_rs2(const Instruction& inst) {
  switch (inst.op) {
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
    case Op::kSw:
    case Op::kSd:
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
    case Op::kMul:
    case Op::kSsrCfg:
      return true;
    default:
      return false;
  }
}

bool reads_f_rs1(const Instruction& inst) {
  // vfmacc.vf ships f[rs1] to the vector engine; fsw stores f[rs2] but we
  // keep the value in the rs2 slot (see encoding.cpp), so only vfmacc here.
  return inst.op == Op::kVfmaccVf;
}

std::string mnemonic(Op op) {
  switch (op) {
    case Op::kIllegal: return "illegal";
    case Op::kLui: return "lui";
    case Op::kAuipc: return "auipc";
    case Op::kJal: return "jal";
    case Op::kJalr: return "jalr";
    case Op::kBeq: return "beq";
    case Op::kBne: return "bne";
    case Op::kBlt: return "blt";
    case Op::kBge: return "bge";
    case Op::kBltu: return "bltu";
    case Op::kBgeu: return "bgeu";
    case Op::kLw: return "lw";
    case Op::kLwu: return "lwu";
    case Op::kLd: return "ld";
    case Op::kSw: return "sw";
    case Op::kSd: return "sd";
    case Op::kFlw: return "flw";
    case Op::kFsw: return "fsw";
    case Op::kAddi: return "addi";
    case Op::kSlti: return "slti";
    case Op::kSltiu: return "sltiu";
    case Op::kXori: return "xori";
    case Op::kOri: return "ori";
    case Op::kAndi: return "andi";
    case Op::kSlli: return "slli";
    case Op::kSrli: return "srli";
    case Op::kSrai: return "srai";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kSll: return "sll";
    case Op::kSlt: return "slt";
    case Op::kSltu: return "sltu";
    case Op::kXor: return "xor";
    case Op::kSrl: return "srl";
    case Op::kSra: return "sra";
    case Op::kOr: return "or";
    case Op::kAnd: return "and";
    case Op::kMul: return "mul";
    case Op::kEcall: return "ecall";
    case Op::kEbreak: return "ebreak";
    case Op::kMarker: return "marker";
    case Op::kVsetvli: return "vsetvli";
    case Op::kVle32: return "vle32.v";
    case Op::kVse32: return "vse32.v";
    case Op::kVluxei32: return "vluxei32.v";
    case Op::kVaddVx: return "vadd.vx";
    case Op::kVaddVi: return "vadd.vi";
    case Op::kVaddVV: return "vadd.vv";
    case Op::kVfaddVV: return "vfadd.vv";
    case Op::kVmulVV: return "vmul.vv";
    case Op::kVfmulVV: return "vfmul.vv";
    case Op::kVredsumVS: return "vredsum.vs";
    case Op::kVfredusumVS: return "vfredusum.vs";
    case Op::kVmaccVx: return "vmacc.vx";
    case Op::kVfmaccVf: return "vfmacc.vf";
    case Op::kVmvVX: return "vmv.v.x";
    case Op::kVmvVI: return "vmv.v.i";
    case Op::kVmvXS: return "vmv.x.s";
    case Op::kVfmvFS: return "vfmv.f.s";
    case Op::kVmvSX: return "vmv.s.x";
    case Op::kVslidedownVx: return "vslidedown.vx";
    case Op::kVslidedownVi: return "vslidedown.vi";
    case Op::kVslide1downVx: return "vslide1down.vx";
    case Op::kVindexmacVx: return "vindexmac.vx";
    case Op::kVfindexmacVx: return "vfindexmac.vx";
    case Op::kVindexmacpVx: return "vindexmacp.vx";
    case Op::kVfindexmacpVx: return "vfindexmacp.vx";
    case Op::kVindexmac2Vx: return "vindexmac2.vx";
    case Op::kVfindexmac2Vx: return "vfindexmac2.vx";
    case Op::kSsrCfg: return "ssrcfg";
    case Op::kSsrEn: return "ssren";
    case Op::kVindexmacsV: return "vindexmacs.v";
    case Op::kVfindexmacsV: return "vfindexmacs.v";
  }
  raise("mnemonic: unknown op");
}

}  // namespace indexmac::isa
