// Predecoded static-instruction metadata.
//
// Everything the simulators' hot loops would otherwise recompute per
// dynamic instruction — operand read/write register-file usage, op class,
// vector-engine latency class, memory access size — is a pure function of
// the decoded Instruction, so Program computes it once per PC slot at load
// time and both fsim::Machine and timing::Model consume the cached table.
// The isa::reads_*/writes_*/is_* predicates stay the single source of
// truth: predecode() is defined in terms of them.
#pragma once

#include <cstdint>

#include "isa/isa.h"

namespace indexmac::isa {

/// Bit flags of StaticInstInfo::flags.
enum : std::uint32_t {
  kSiVector = 1u << 0,          ///< executes on the vector engine
  kSiBranch = 1u << 1,          ///< conditional branch
  kSiJump = 1u << 2,            ///< jal/jalr
  kSiScalarLoad = 1u << 3,      ///< lw/lwu/ld/flw
  kSiScalarStore = 1u << 4,     ///< sw/sd/fsw
  kSiVectorLoad = 1u << 5,      ///< vle32/vluxei32
  kSiVectorStore = 1u << 6,     ///< vse32
  kSiVectorToScalar = 1u << 7,  ///< vmv.x.s / vfmv.f.s
  kSiHalt = 1u << 8,            ///< ebreak/ecall
  kSiMarker = 1u << 9,          ///< simulation marker
  kSiReadsXRs1 = 1u << 10,
  kSiReadsXRs2 = 1u << 11,
  kSiReadsFRs1 = 1u << 12,
  kSiReadsFRs2 = 1u << 13,  ///< fsw keeps the stored f value in the rs2 slot
  kSiWritesX = 1u << 14,
  kSiWritesF = 1u << 15,
  kSiWritesV = 1u << 16,
  kSiGather = 1u << 17,        ///< vluxei32: per-element addresses
  kSiIndirectVreg = 1u << 18,  ///< v(f)indexmac*: extra VRF read(s) via x[rs1]
  kSiVectorMac = 1u << 19,     ///< counted in TimingStats::vector_macs
  kSiPackedIndex = 1u << 20,   ///< v(f)indexmacp/2: VRF source is 16 | nibble
  kSiDualMac = 1u << 21,       ///< v(f)indexmac2: two MAC ops per dispatch
  kSiSsrMac = 1u << 22,        ///< v(f)indexmacs: operands pop from SSR streams
  kSiSsrCtl = 1u << 23,        ///< ssrcfg/ssren: stream state-machine control
  // Closure-binding table for the threaded-code engine (fsim/threaded.h):
  // predecoded so the block builder classifies slots by flag test instead
  // of re-enumerating op lists.
  kSiThreadedFallback = 1u << 24,  ///< threaded engine delegates to Machine::step
  kSiChainFusable = 1u << 25,      ///< candidate for superblock chain fusion
};

/// Vector-engine latency class; the timing model resolves each class to a
/// cycle count from its VectorEngineConfig once, at model construction.
enum class VLatClass : std::uint8_t {
  kNone = 0,  ///< not an engine-latency op (loads/stores and scalar ops)
  kAlu,
  kMac,
  kSlide,
  kMove,
  kReduction,
  kCount,
};

/// Bits of StaticInstInfo::vreg_reads: which Instruction register fields
/// name vector registers the op reads (the engine scoreboard's sources).
enum : std::uint8_t {
  kVReadRd = 1u << 0,   ///< reads v[rd] (merging ops, stores via the rd slot)
  kVReadRs1 = 1u << 1,  ///< reads v[rs1]
  kVReadRs2 = 1u << 2,  ///< reads v[rs2]
};

/// Per-PC-slot metadata cached by Program (see Program::static_info()).
struct StaticInstInfo {
  std::uint32_t flags = 0;
  std::uint8_t scalar_mem_bytes = 0;  ///< scalar loads/stores: 4 or 8, else 0
  std::uint8_t vreg_reads = 0;        ///< kVRead* mask
  VLatClass vlat = VLatClass::kNone;

  [[nodiscard]] constexpr bool has(std::uint32_t mask) const { return (flags & mask) != 0; }
};

/// Computes the static metadata of one decoded instruction.
[[nodiscard]] StaticInstInfo predecode(const Instruction& inst);

}  // namespace indexmac::isa
