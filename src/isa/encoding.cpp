#include "isa/encoding.h"

#include <sstream>

#include "common/bitutil.h"
#include "common/error.h"

namespace indexmac::isa {
namespace {

// Major opcodes.
constexpr std::uint32_t kOpLoad = 0b0000011;
constexpr std::uint32_t kOpLoadFp = 0b0000111;
constexpr std::uint32_t kOpCustom0 = 0b0001011;  // marker
constexpr std::uint32_t kOpImm = 0b0010011;
constexpr std::uint32_t kOpAuipc = 0b0010111;
constexpr std::uint32_t kOpStore = 0b0100011;
constexpr std::uint32_t kOpStoreFp = 0b0100111;
constexpr std::uint32_t kOpOp = 0b0110011;
constexpr std::uint32_t kOpLui = 0b0110111;
constexpr std::uint32_t kOpVec = 0b1010111;
constexpr std::uint32_t kOpBranch = 0b1100011;
constexpr std::uint32_t kOpJalr = 0b1100111;
constexpr std::uint32_t kOpJal = 0b1101111;
constexpr std::uint32_t kOpSystem = 0b1110011;

// OP-V funct3 minor opcodes.
constexpr std::uint32_t kOpivv = 0b000;
constexpr std::uint32_t kOpfvv = 0b001;
constexpr std::uint32_t kOpmvv = 0b010;
constexpr std::uint32_t kOpivi = 0b011;
constexpr std::uint32_t kOpivx = 0b100;
constexpr std::uint32_t kOpfvf = 0b101;
constexpr std::uint32_t kOpmvx = 0b110;
constexpr std::uint32_t kOpcfg = 0b111;

// OP-V funct6 values used by this subset.
constexpr std::uint32_t kF6Vadd = 0b000000;
constexpr std::uint32_t kF6Slide = 0b001111;    // vslidedown / vslide1down
constexpr std::uint32_t kF6VmvXfS = 0b010000;   // vmv.x.s / vfmv.f.s / vmv.s.x
constexpr std::uint32_t kF6Vmv = 0b010111;      // vmv.v.*
constexpr std::uint32_t kF6Vfmacc = 0b101100;
constexpr std::uint32_t kF6Vmacc = 0b101101;
constexpr std::uint32_t kF6Vfredusum = 0b000001;
constexpr std::uint32_t kF6Vfmul = 0b100100;
constexpr std::uint32_t kF6Vmul = 0b100101;
constexpr std::uint32_t kF6Vindexmac = 0b110000;   // custom (RVV-reserved OPIVX space)
constexpr std::uint32_t kF6Vfindexmac = 0b110001;  // custom (RVV-reserved OPIVX space)
constexpr std::uint32_t kF6Vindexmacp = 0b110010;   // packed-index variant
constexpr std::uint32_t kF6Vfindexmacp = 0b110011;  // packed-index variant (fp32)
constexpr std::uint32_t kF6Vindexmac2 = 0b110100;   // dual-row variant
constexpr std::uint32_t kF6Vfindexmac2 = 0b110101;  // dual-row variant (fp32)
constexpr std::uint32_t kF6Vindexmacs = 0b110110;   // SSR streaming MAC
constexpr std::uint32_t kF6Vfindexmacs = 0b110111;  // SSR streaming MAC (fp32)

// custom-0 funct3 minor opcodes: f3=0 is the marker; the SSR control ops
// share the major opcode under their own funct3 values.
constexpr std::uint32_t kF3SsrCfg = 0b001;
constexpr std::uint32_t kF3SsrEn = 0b010;

std::uint32_t reg5(std::uint32_t r) {
  IMAC_ASSERT(r < 32, "register number out of range");
  return r;
}

std::uint32_t r_type(std::uint32_t f7, std::uint32_t rs2, std::uint32_t rs1, std::uint32_t f3,
                     std::uint32_t rd, std::uint32_t opc) {
  return (f7 << 25) | (reg5(rs2) << 20) | (reg5(rs1) << 15) | (f3 << 12) | (reg5(rd) << 7) | opc;
}

std::uint32_t i_type(std::int32_t imm, std::uint32_t rs1, std::uint32_t f3, std::uint32_t rd,
                     std::uint32_t opc) {
  IMAC_CHECK(fits_signed(imm, 12), "I-type immediate out of range: " + std::to_string(imm));
  return (static_cast<std::uint32_t>(imm & 0xfff) << 20) | (reg5(rs1) << 15) | (f3 << 12) |
         (reg5(rd) << 7) | opc;
}

std::uint32_t s_type(std::int32_t imm, std::uint32_t rs2, std::uint32_t rs1, std::uint32_t f3,
                     std::uint32_t opc) {
  IMAC_CHECK(fits_signed(imm, 12), "S-type immediate out of range: " + std::to_string(imm));
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0xfff;
  return (bits(u, 11, 5) << 25) | (reg5(rs2) << 20) | (reg5(rs1) << 15) | (f3 << 12) |
         (bits(u, 4, 0) << 7) | opc;
}

std::uint32_t b_type(std::int32_t imm, std::uint32_t rs2, std::uint32_t rs1, std::uint32_t f3,
                     std::uint32_t opc) {
  IMAC_CHECK(fits_signed(imm, 13) && (imm & 1) == 0,
             "branch offset out of range or odd: " + std::to_string(imm));
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0x1fff;
  return (bit(u, 12) << 31) | (bits(u, 10, 5) << 25) | (reg5(rs2) << 20) | (reg5(rs1) << 15) |
         (f3 << 12) | (bits(u, 4, 1) << 8) | (bit(u, 11) << 7) | opc;
}

std::uint32_t u_type(std::int32_t imm20, std::uint32_t rd, std::uint32_t opc) {
  IMAC_CHECK(fits_signed(imm20, 20), "U-type immediate out of range: " + std::to_string(imm20));
  return (static_cast<std::uint32_t>(imm20 & 0xfffff) << 12) | (reg5(rd) << 7) | opc;
}

std::uint32_t j_type(std::int32_t imm, std::uint32_t rd, std::uint32_t opc) {
  IMAC_CHECK(fits_signed(imm, 21) && (imm & 1) == 0,
             "jump offset out of range or odd: " + std::to_string(imm));
  const std::uint32_t u = static_cast<std::uint32_t>(imm) & 0x1fffff;
  return (bit(u, 20) << 31) | (bits(u, 10, 1) << 21) | (bit(u, 11) << 20) |
         (bits(u, 19, 12) << 12) | (reg5(rd) << 7) | opc;
}

std::uint32_t op_v(std::uint32_t f6, std::uint32_t vs2, std::uint32_t rs1_field, std::uint32_t f3,
                   std::uint32_t vd) {
  constexpr std::uint32_t kVmUnmasked = 1;  // this subset is always unmasked
  return (f6 << 26) | (kVmUnmasked << 25) | (reg5(vs2) << 20) | (reg5(rs1_field) << 15) |
         (f3 << 12) | (reg5(vd) << 7) | kOpVec;
}

std::uint32_t simm5_field(std::int32_t imm) {
  IMAC_CHECK(fits_signed(imm, 5), "vector simm5 out of range: " + std::to_string(imm));
  return static_cast<std::uint32_t>(imm) & 0x1f;
}

// Unit-stride vector load/store: nf=0, mew=0, mop=00, vm=1, lumop=00000,
// width=110 (32-bit element).
std::uint32_t vmem(std::uint32_t reg, std::uint32_t rs1, std::uint32_t opc) {
  constexpr std::uint32_t kWidth32 = 0b110;
  constexpr std::uint32_t kVm = 1;
  return (kVm << 25) | (reg5(rs1) << 15) | (kWidth32 << 12) | (reg5(reg) << 7) | opc;
}

Instruction illegal(std::string* error, const std::string& why) {
  if (error) *error = why;
  return Instruction{};
}

}  // namespace

std::uint32_t encode(const Instruction& in) {
  switch (in.op) {
    case Op::kLui: return u_type(in.imm, in.rd, kOpLui);
    case Op::kAuipc: return u_type(in.imm, in.rd, kOpAuipc);
    case Op::kJal: return j_type(in.imm, in.rd, kOpJal);
    case Op::kJalr: return i_type(in.imm, in.rs1, 0b000, in.rd, kOpJalr);
    case Op::kBeq: return b_type(in.imm, in.rs2, in.rs1, 0b000, kOpBranch);
    case Op::kBne: return b_type(in.imm, in.rs2, in.rs1, 0b001, kOpBranch);
    case Op::kBlt: return b_type(in.imm, in.rs2, in.rs1, 0b100, kOpBranch);
    case Op::kBge: return b_type(in.imm, in.rs2, in.rs1, 0b101, kOpBranch);
    case Op::kBltu: return b_type(in.imm, in.rs2, in.rs1, 0b110, kOpBranch);
    case Op::kBgeu: return b_type(in.imm, in.rs2, in.rs1, 0b111, kOpBranch);
    case Op::kLw: return i_type(in.imm, in.rs1, 0b010, in.rd, kOpLoad);
    case Op::kLwu: return i_type(in.imm, in.rs1, 0b110, in.rd, kOpLoad);
    case Op::kLd: return i_type(in.imm, in.rs1, 0b011, in.rd, kOpLoad);
    case Op::kFlw: return i_type(in.imm, in.rs1, 0b010, in.rd, kOpLoadFp);
    case Op::kSw: return s_type(in.imm, in.rs2, in.rs1, 0b010, kOpStore);
    case Op::kSd: return s_type(in.imm, in.rs2, in.rs1, 0b011, kOpStore);
    case Op::kFsw: return s_type(in.imm, in.rs2, in.rs1, 0b010, kOpStoreFp);
    case Op::kAddi: return i_type(in.imm, in.rs1, 0b000, in.rd, kOpImm);
    case Op::kSlti: return i_type(in.imm, in.rs1, 0b010, in.rd, kOpImm);
    case Op::kSltiu: return i_type(in.imm, in.rs1, 0b011, in.rd, kOpImm);
    case Op::kXori: return i_type(in.imm, in.rs1, 0b100, in.rd, kOpImm);
    case Op::kOri: return i_type(in.imm, in.rs1, 0b110, in.rd, kOpImm);
    case Op::kAndi: return i_type(in.imm, in.rs1, 0b111, in.rd, kOpImm);
    case Op::kSlli:
      IMAC_CHECK(in.imm >= 0 && in.imm < 64, "shift amount out of range");
      return i_type(in.imm, in.rs1, 0b001, in.rd, kOpImm);
    case Op::kSrli:
      IMAC_CHECK(in.imm >= 0 && in.imm < 64, "shift amount out of range");
      return i_type(in.imm, in.rs1, 0b101, in.rd, kOpImm);
    case Op::kSrai:
      IMAC_CHECK(in.imm >= 0 && in.imm < 64, "shift amount out of range");
      return i_type(in.imm | 0x400, in.rs1, 0b101, in.rd, kOpImm);
    case Op::kAdd: return r_type(0, in.rs2, in.rs1, 0b000, in.rd, kOpOp);
    case Op::kSub: return r_type(0b0100000, in.rs2, in.rs1, 0b000, in.rd, kOpOp);
    case Op::kSll: return r_type(0, in.rs2, in.rs1, 0b001, in.rd, kOpOp);
    case Op::kSlt: return r_type(0, in.rs2, in.rs1, 0b010, in.rd, kOpOp);
    case Op::kSltu: return r_type(0, in.rs2, in.rs1, 0b011, in.rd, kOpOp);
    case Op::kXor: return r_type(0, in.rs2, in.rs1, 0b100, in.rd, kOpOp);
    case Op::kSrl: return r_type(0, in.rs2, in.rs1, 0b101, in.rd, kOpOp);
    case Op::kSra: return r_type(0b0100000, in.rs2, in.rs1, 0b101, in.rd, kOpOp);
    case Op::kOr: return r_type(0, in.rs2, in.rs1, 0b110, in.rd, kOpOp);
    case Op::kAnd: return r_type(0, in.rs2, in.rs1, 0b111, in.rd, kOpOp);
    case Op::kMul: return r_type(0b0000001, in.rs2, in.rs1, 0b000, in.rd, kOpOp);
    case Op::kEcall: return i_type(0, 0, 0, 0, kOpSystem);
    case Op::kEbreak: return i_type(1, 0, 0, 0, kOpSystem);
    case Op::kMarker:
      // The marker id is an unsigned 12-bit field (no sign extension).
      IMAC_CHECK(in.imm >= 0 && in.imm < 4096, "marker id must fit 12 bits");
      return (static_cast<std::uint32_t>(in.imm) << 20) | kOpCustom0;
    case Op::kVsetvli:
      IMAC_CHECK(in.imm >= 0 && in.imm < 0x800, "vtype immediate must fit 11 bits");
      return i_type(in.imm, in.rs1, kOpcfg, in.rd, kOpVec);
    case Op::kVle32: return vmem(in.rd, in.rs1, kOpLoadFp);
    case Op::kVluxei32:
      // Indexed-unordered load: mop=01, index register in the lumop slot.
      return vmem(in.rd, in.rs1, kOpLoadFp) | (0b01u << 26) | (reg5(in.rs2) << 20);
    case Op::kVse32: return vmem(in.rd, in.rs1, kOpStoreFp);
    case Op::kVaddVx: return op_v(kF6Vadd, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kVaddVi: return op_v(kF6Vadd, in.rs2, simm5_field(in.imm), kOpivi, in.rd);
    case Op::kVaddVV: return op_v(kF6Vadd, in.rs2, in.rs1, kOpivv, in.rd);
    case Op::kVfaddVV: return op_v(kF6Vadd, in.rs2, in.rs1, kOpfvv, in.rd);
    case Op::kVmulVV: return op_v(kF6Vmul, in.rs2, in.rs1, kOpmvv, in.rd);
    case Op::kVfmulVV: return op_v(kF6Vfmul, in.rs2, in.rs1, kOpfvv, in.rd);
    case Op::kVredsumVS: return op_v(kF6Vadd, in.rs2, in.rs1, kOpmvv, in.rd);
    case Op::kVfredusumVS: return op_v(kF6Vfredusum, in.rs2, in.rs1, kOpfvv, in.rd);
    case Op::kVmaccVx: return op_v(kF6Vmacc, in.rs2, in.rs1, kOpmvx, in.rd);
    case Op::kVfmaccVf: return op_v(kF6Vfmacc, in.rs2, in.rs1, kOpfvf, in.rd);
    case Op::kVmvVX: return op_v(kF6Vmv, 0, in.rs1, kOpivx, in.rd);
    case Op::kVmvVI: return op_v(kF6Vmv, 0, simm5_field(in.imm), kOpivi, in.rd);
    case Op::kVmvXS: return op_v(kF6VmvXfS, in.rs2, 0, kOpmvv, in.rd);
    case Op::kVfmvFS: return op_v(kF6VmvXfS, in.rs2, 0, kOpfvv, in.rd);
    case Op::kVmvSX: return op_v(kF6VmvXfS, 0, in.rs1, kOpmvx, in.rd);
    case Op::kVslidedownVx: return op_v(kF6Slide, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kVslidedownVi: {
      IMAC_CHECK(in.imm >= 0 && in.imm < 32, "vslidedown.vi offset must fit uimm5");
      return op_v(kF6Slide, in.rs2, static_cast<std::uint32_t>(in.imm), kOpivi, in.rd);
    }
    case Op::kVslide1downVx: return op_v(kF6Slide, in.rs2, in.rs1, kOpmvx, in.rd);
    case Op::kVindexmacVx: return op_v(kF6Vindexmac, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kVfindexmacVx: return op_v(kF6Vfindexmac, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kVindexmacpVx: return op_v(kF6Vindexmacp, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kVfindexmacpVx: return op_v(kF6Vfindexmacp, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kVindexmac2Vx: return op_v(kF6Vindexmac2, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kVfindexmac2Vx: return op_v(kF6Vfindexmac2, in.rs2, in.rs1, kOpivx, in.rd);
    case Op::kSsrCfg:
      // R-type in the custom-0 space; the rd field names the stream.
      IMAC_CHECK(in.rd < 4, "ssrcfg stream id must be in 0..3");
      return r_type(0, in.rs2, in.rs1, kF3SsrCfg, in.rd, kOpCustom0);
    case Op::kSsrEn: return r_type(0, 0, in.rs1, kF3SsrEn, 0, kOpCustom0);
    case Op::kVindexmacsV: return op_v(kF6Vindexmacs, 0, 0, kOpivx, in.rd);
    case Op::kVfindexmacsV: return op_v(kF6Vfindexmacs, 0, 0, kOpivx, in.rd);
    case Op::kIllegal: break;
  }
  raise("encode: unsupported op");
}

namespace {

Instruction decode_op_v(std::uint32_t w, std::string* error) {
  const std::uint32_t f3 = bits(w, 14, 12);
  const auto rd = static_cast<std::uint8_t>(bits(w, 11, 7));
  const auto rs1f = static_cast<std::uint8_t>(bits(w, 19, 15));
  if (f3 == kOpcfg) {
    if (bit(w, 31) != 0) return illegal(error, "only vsetvli (bit31=0) is supported");
    const auto vtype = static_cast<std::int32_t>(bits(w, 30, 20));
    return Instruction{Op::kVsetvli, rd, rs1f, 0, vtype};
  }
  const std::uint32_t f6 = bits(w, 31, 26);
  const auto vs2 = static_cast<std::uint8_t>(bits(w, 24, 20));
  if (bit(w, 25) != 1) return illegal(error, "masked vector ops are not supported");
  const auto simm5 = static_cast<std::int32_t>(sign_extend(rs1f, 5));
  switch (f6) {
    case kF6Vadd:
      if (f3 == kOpivx) return Instruction{Op::kVaddVx, rd, rs1f, vs2, 0};
      if (f3 == kOpivi) return Instruction{Op::kVaddVi, rd, 0, vs2, simm5};
      if (f3 == kOpivv) return Instruction{Op::kVaddVV, rd, rs1f, vs2, 0};
      if (f3 == kOpfvv) return Instruction{Op::kVfaddVV, rd, rs1f, vs2, 0};
      if (f3 == kOpmvv) return Instruction{Op::kVredsumVS, rd, rs1f, vs2, 0};
      break;
    case kF6Vfredusum:
      if (f3 == kOpfvv) return Instruction{Op::kVfredusumVS, rd, rs1f, vs2, 0};
      break;
    case kF6Vfmul:
      if (f3 == kOpfvv) return Instruction{Op::kVfmulVV, rd, rs1f, vs2, 0};
      break;
    case kF6Vmul:
      if (f3 == kOpmvv) return Instruction{Op::kVmulVV, rd, rs1f, vs2, 0};
      break;
    case kF6Slide:
      if (f3 == kOpivx) return Instruction{Op::kVslidedownVx, rd, rs1f, vs2, 0};
      if (f3 == kOpivi)
        return Instruction{Op::kVslidedownVi, rd, 0, vs2, static_cast<std::int32_t>(rs1f)};
      if (f3 == kOpmvx) return Instruction{Op::kVslide1downVx, rd, rs1f, vs2, 0};
      break;
    case kF6VmvXfS:
      if (f3 == kOpmvv && rs1f == 0) return Instruction{Op::kVmvXS, rd, 0, vs2, 0};
      if (f3 == kOpfvv && rs1f == 0) return Instruction{Op::kVfmvFS, rd, 0, vs2, 0};
      if (f3 == kOpmvx && vs2 == 0) return Instruction{Op::kVmvSX, rd, rs1f, 0, 0};
      break;
    case kF6Vmv:
      if (vs2 != 0) break;  // vmerge (masked) is unsupported
      if (f3 == kOpivx) return Instruction{Op::kVmvVX, rd, rs1f, 0, 0};
      if (f3 == kOpivi) return Instruction{Op::kVmvVI, rd, 0, 0, simm5};
      break;
    case kF6Vfmacc:
      if (f3 == kOpfvf) return Instruction{Op::kVfmaccVf, rd, rs1f, vs2, 0};
      break;
    case kF6Vmacc:
      if (f3 == kOpmvx) return Instruction{Op::kVmaccVx, rd, rs1f, vs2, 0};
      break;
    case kF6Vindexmac:
      if (f3 == kOpivx) return Instruction{Op::kVindexmacVx, rd, rs1f, vs2, 0};
      break;
    case kF6Vfindexmac:
      if (f3 == kOpivx) return Instruction{Op::kVfindexmacVx, rd, rs1f, vs2, 0};
      break;
    case kF6Vindexmacp:
      if (f3 == kOpivx) return Instruction{Op::kVindexmacpVx, rd, rs1f, vs2, 0};
      break;
    case kF6Vfindexmacp:
      if (f3 == kOpivx) return Instruction{Op::kVfindexmacpVx, rd, rs1f, vs2, 0};
      break;
    case kF6Vindexmac2:
      if (f3 == kOpivx) return Instruction{Op::kVindexmac2Vx, rd, rs1f, vs2, 0};
      break;
    case kF6Vfindexmac2:
      if (f3 == kOpivx) return Instruction{Op::kVfindexmac2Vx, rd, rs1f, vs2, 0};
      break;
    case kF6Vindexmacs:
      if (f3 == kOpivx && rs1f == 0 && vs2 == 0) return Instruction{Op::kVindexmacsV, rd, 0, 0, 0};
      break;
    case kF6Vfindexmacs:
      if (f3 == kOpivx && rs1f == 0 && vs2 == 0)
        return Instruction{Op::kVfindexmacsV, rd, 0, 0, 0};
      break;
    default:
      break;
  }
  return illegal(error, "unsupported OP-V encoding");
}

Instruction decode_vmem(std::uint32_t w, bool is_store, std::string* error) {
  // nf=0, mew=0, vm=1, width=110; mop=00 (unit stride) or 01 (indexed load).
  if (bits(w, 31, 29) != 0 || bit(w, 28) != 0)
    return illegal(error, "segment/wide vector memory ops are not supported");
  if (bit(w, 25) != 1) return illegal(error, "masked vector memory ops are not supported");
  if (bits(w, 14, 12) != 0b110) return illegal(error, "only 32-bit vector elements are supported");
  const auto reg = static_cast<std::uint8_t>(bits(w, 11, 7));
  const auto rs1 = static_cast<std::uint8_t>(bits(w, 19, 15));
  const std::uint32_t mop = bits(w, 27, 26);
  if (mop == 0b01) {
    if (is_store) return illegal(error, "indexed vector stores are not supported");
    return Instruction{Op::kVluxei32, reg, rs1, static_cast<std::uint8_t>(bits(w, 24, 20)), 0};
  }
  if (mop != 0) return illegal(error, "only unit-stride/indexed vector memory ops are supported");
  if (bits(w, 24, 20) != 0) return illegal(error, "lumop/sumop must be zero");
  return Instruction{is_store ? Op::kVse32 : Op::kVle32, reg, rs1, 0, 0};
}

}  // namespace

Instruction decode(std::uint32_t w, std::string* error) {
  const std::uint32_t opc = bits(w, 6, 0);
  const auto rd = static_cast<std::uint8_t>(bits(w, 11, 7));
  const auto rs1 = static_cast<std::uint8_t>(bits(w, 19, 15));
  const auto rs2 = static_cast<std::uint8_t>(bits(w, 24, 20));
  const std::uint32_t f3 = bits(w, 14, 12);
  const std::uint32_t f7 = bits(w, 31, 25);
  const auto iimm = static_cast<std::int32_t>(sign_extend(bits(w, 31, 20), 12));
  const auto simm = static_cast<std::int32_t>(
      sign_extend((bits(w, 31, 25) << 5) | bits(w, 11, 7), 12));
  const auto bimm = static_cast<std::int32_t>(sign_extend(
      (bit(w, 31) << 12) | (bit(w, 7) << 11) | (bits(w, 30, 25) << 5) | (bits(w, 11, 8) << 1),
      13));
  const auto uimm = static_cast<std::int32_t>(sign_extend(bits(w, 31, 12), 20));
  const auto jimm = static_cast<std::int32_t>(sign_extend(
      (bit(w, 31) << 20) | (bits(w, 19, 12) << 12) | (bit(w, 20) << 11) | (bits(w, 30, 21) << 1),
      21));

  switch (opc) {
    case kOpLui: return Instruction{Op::kLui, rd, 0, 0, uimm};
    case kOpAuipc: return Instruction{Op::kAuipc, rd, 0, 0, uimm};
    case kOpJal: return Instruction{Op::kJal, rd, 0, 0, jimm};
    case kOpJalr:
      if (f3 != 0) return illegal(error, "jalr requires funct3=0");
      return Instruction{Op::kJalr, rd, rs1, 0, iimm};
    case kOpBranch:
      switch (f3) {
        case 0b000: return Instruction{Op::kBeq, 0, rs1, rs2, bimm};
        case 0b001: return Instruction{Op::kBne, 0, rs1, rs2, bimm};
        case 0b100: return Instruction{Op::kBlt, 0, rs1, rs2, bimm};
        case 0b101: return Instruction{Op::kBge, 0, rs1, rs2, bimm};
        case 0b110: return Instruction{Op::kBltu, 0, rs1, rs2, bimm};
        case 0b111: return Instruction{Op::kBgeu, 0, rs1, rs2, bimm};
        default: return illegal(error, "unsupported branch funct3");
      }
    case kOpLoad:
      switch (f3) {
        case 0b010: return Instruction{Op::kLw, rd, rs1, 0, iimm};
        case 0b011: return Instruction{Op::kLd, rd, rs1, 0, iimm};
        case 0b110: return Instruction{Op::kLwu, rd, rs1, 0, iimm};
        default: return illegal(error, "unsupported load width");
      }
    case kOpStore:
      switch (f3) {
        case 0b010: return Instruction{Op::kSw, 0, rs1, rs2, simm};
        case 0b011: return Instruction{Op::kSd, 0, rs1, rs2, simm};
        default: return illegal(error, "unsupported store width");
      }
    case kOpLoadFp:
      if (f3 == 0b010) return Instruction{Op::kFlw, rd, rs1, 0, iimm};
      if (f3 == 0b110) return decode_vmem(w, /*is_store=*/false, error);
      return illegal(error, "unsupported LOAD-FP width");
    case kOpStoreFp:
      if (f3 == 0b010) return Instruction{Op::kFsw, 0, rs1, rs2, simm};
      if (f3 == 0b110) return decode_vmem(w, /*is_store=*/true, error);
      return illegal(error, "unsupported STORE-FP width");
    case kOpImm:
      switch (f3) {
        case 0b000: return Instruction{Op::kAddi, rd, rs1, 0, iimm};
        case 0b010: return Instruction{Op::kSlti, rd, rs1, 0, iimm};
        case 0b011: return Instruction{Op::kSltiu, rd, rs1, 0, iimm};
        case 0b100: return Instruction{Op::kXori, rd, rs1, 0, iimm};
        case 0b110: return Instruction{Op::kOri, rd, rs1, 0, iimm};
        case 0b111: return Instruction{Op::kAndi, rd, rs1, 0, iimm};
        case 0b001:
          if (bits(w, 31, 26) != 0) return illegal(error, "unsupported slli funct6");
          return Instruction{Op::kSlli, rd, rs1, 0, static_cast<std::int32_t>(bits(w, 25, 20))};
        case 0b101: {
          const std::uint32_t f6 = bits(w, 31, 26);
          const auto sh = static_cast<std::int32_t>(bits(w, 25, 20));
          if (f6 == 0b000000) return Instruction{Op::kSrli, rd, rs1, 0, sh};
          if (f6 == 0b010000) return Instruction{Op::kSrai, rd, rs1, 0, sh};
          return illegal(error, "unsupported shift funct6");
        }
        default: return illegal(error, "unsupported OP-IMM funct3");
      }
    case kOpOp: {
      if (f7 == 0b0000001) {
        if (f3 == 0b000) return Instruction{Op::kMul, rd, rs1, rs2, 0};
        return illegal(error, "unsupported M-extension op");
      }
      const bool alt = f7 == 0b0100000;
      if (f7 != 0 && !alt) return illegal(error, "unsupported OP funct7");
      switch (f3) {
        case 0b000: return Instruction{alt ? Op::kSub : Op::kAdd, rd, rs1, rs2, 0};
        case 0b001: return Instruction{Op::kSll, rd, rs1, rs2, 0};
        case 0b010: return Instruction{Op::kSlt, rd, rs1, rs2, 0};
        case 0b011: return Instruction{Op::kSltu, rd, rs1, rs2, 0};
        case 0b100: return Instruction{Op::kXor, rd, rs1, rs2, 0};
        case 0b101: return Instruction{alt ? Op::kSra : Op::kSrl, rd, rs1, rs2, 0};
        case 0b110: return Instruction{Op::kOr, rd, rs1, rs2, 0};
        case 0b111: return Instruction{Op::kAnd, rd, rs1, rs2, 0};
        default: break;
      }
      return illegal(error, "unsupported OP encoding");
    }
    case kOpSystem:
      if (w == 0x00000073) return Instruction{Op::kEcall, 0, 0, 0, 0};
      if (w == 0x00100073) return Instruction{Op::kEbreak, 0, 0, 0, 0};
      return illegal(error, "unsupported SYSTEM encoding");
    case kOpCustom0:
      if (f3 == kF3SsrCfg) {
        if (f7 != 0 || rd >= 4) return illegal(error, "malformed ssrcfg");
        return Instruction{Op::kSsrCfg, rd, rs1, rs2, 0};
      }
      if (f3 == kF3SsrEn) {
        if (f7 != 0 || rd != 0 || rs2 != 0) return illegal(error, "malformed ssren");
        return Instruction{Op::kSsrEn, 0, rs1, 0, 0};
      }
      if (f3 != 0 || rd != 0 || rs1 != 0) return illegal(error, "malformed marker");
      return Instruction{Op::kMarker, 0, 0, 0, static_cast<std::int32_t>(bits(w, 31, 20))};
    case kOpVec:
      return decode_op_v(w, error);
    default:
      return illegal(error, "unknown major opcode");
  }
}

namespace {

std::string xr(unsigned r) { return "x" + std::to_string(r); }
std::string fr(unsigned r) { return "f" + std::to_string(r); }
std::string vr(unsigned r) { return "v" + std::to_string(r); }

}  // namespace

std::string disassemble(const Instruction& in) {
  std::ostringstream s;
  const std::string m = mnemonic(in.op);
  switch (in.op) {
    case Op::kLui:
    case Op::kAuipc:
      s << m << ' ' << xr(in.rd) << ", " << in.imm;
      break;
    case Op::kJal:
      s << m << ' ' << xr(in.rd) << ", " << in.imm;
      break;
    case Op::kJalr:
      s << m << ' ' << xr(in.rd) << ", " << in.imm << '(' << xr(in.rs1) << ')';
      break;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      s << m << ' ' << xr(in.rs1) << ", " << xr(in.rs2) << ", " << in.imm;
      break;
    case Op::kLw:
    case Op::kLwu:
    case Op::kLd:
      s << m << ' ' << xr(in.rd) << ", " << in.imm << '(' << xr(in.rs1) << ')';
      break;
    case Op::kFlw:
      s << m << ' ' << fr(in.rd) << ", " << in.imm << '(' << xr(in.rs1) << ')';
      break;
    case Op::kSw:
    case Op::kSd:
      s << m << ' ' << xr(in.rs2) << ", " << in.imm << '(' << xr(in.rs1) << ')';
      break;
    case Op::kFsw:
      s << m << ' ' << fr(in.rs2) << ", " << in.imm << '(' << xr(in.rs1) << ')';
      break;
    case Op::kAddi:
    case Op::kSlti:
    case Op::kSltiu:
    case Op::kXori:
    case Op::kOri:
    case Op::kAndi:
    case Op::kSlli:
    case Op::kSrli:
    case Op::kSrai:
      s << m << ' ' << xr(in.rd) << ", " << xr(in.rs1) << ", " << in.imm;
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kSll:
    case Op::kSlt:
    case Op::kSltu:
    case Op::kXor:
    case Op::kSrl:
    case Op::kSra:
    case Op::kOr:
    case Op::kAnd:
    case Op::kMul:
      s << m << ' ' << xr(in.rd) << ", " << xr(in.rs1) << ", " << xr(in.rs2);
      break;
    case Op::kEcall:
    case Op::kEbreak:
      s << m;
      break;
    case Op::kMarker:
      s << m << ' ' << in.imm;
      break;
    case Op::kVsetvli:
      s << m << ' ' << xr(in.rd) << ", " << xr(in.rs1) << ", " << in.imm;
      break;
    case Op::kVle32:
      s << m << ' ' << vr(in.rd) << ", (" << xr(in.rs1) << ')';
      break;
    case Op::kVluxei32:
      s << m << ' ' << vr(in.rd) << ", (" << xr(in.rs1) << "), " << vr(in.rs2);
      break;
    case Op::kVaddVV:
    case Op::kVfaddVV:
    case Op::kVmulVV:
    case Op::kVfmulVV:
    case Op::kVredsumVS:
    case Op::kVfredusumVS:
      s << m << ' ' << vr(in.rd) << ", " << vr(in.rs2) << ", " << vr(in.rs1);
      break;
    case Op::kVse32:
      s << m << ' ' << vr(in.rd) << ", (" << xr(in.rs1) << ')';
      break;
    case Op::kVaddVx:
    case Op::kVslidedownVx:
    case Op::kVslide1downVx:
    case Op::kVindexmacVx:
    case Op::kVfindexmacVx:
    case Op::kVindexmacpVx:
    case Op::kVfindexmacpVx:
    case Op::kVindexmac2Vx:
    case Op::kVfindexmac2Vx:
      s << m << ' ' << vr(in.rd) << ", " << vr(in.rs2) << ", " << xr(in.rs1);
      break;
    case Op::kVaddVi:
    case Op::kVslidedownVi:
      s << m << ' ' << vr(in.rd) << ", " << vr(in.rs2) << ", " << in.imm;
      break;
    case Op::kVmaccVx:
      s << m << ' ' << vr(in.rd) << ", " << xr(in.rs1) << ", " << vr(in.rs2);
      break;
    case Op::kVfmaccVf:
      s << m << ' ' << vr(in.rd) << ", " << fr(in.rs1) << ", " << vr(in.rs2);
      break;
    case Op::kVmvVX:
      s << m << ' ' << vr(in.rd) << ", " << xr(in.rs1);
      break;
    case Op::kVmvVI:
      s << m << ' ' << vr(in.rd) << ", " << in.imm;
      break;
    case Op::kVmvXS:
      s << m << ' ' << xr(in.rd) << ", " << vr(in.rs2);
      break;
    case Op::kVfmvFS:
      s << m << ' ' << fr(in.rd) << ", " << vr(in.rs2);
      break;
    case Op::kVmvSX:
      s << m << ' ' << vr(in.rd) << ", " << xr(in.rs1);
      break;
    case Op::kSsrCfg:
      s << m << ' ' << static_cast<unsigned>(in.rd) << ", " << xr(in.rs1) << ", " << xr(in.rs2);
      break;
    case Op::kSsrEn:
      s << m << ' ' << xr(in.rs1);
      break;
    case Op::kVindexmacsV:
    case Op::kVfindexmacsV:
      s << m << ' ' << vr(in.rd);
      break;
    case Op::kIllegal:
      s << "illegal";
      break;
  }
  return s.str();
}

}  // namespace indexmac::isa
