#include "isa/static_info.h"

#include "common/error.h"

namespace indexmac::isa {

namespace {

std::uint8_t vector_reads_of(Op op) {
  switch (op) {
    case Op::kVse32:
    case Op::kVmvSX:
      return kVReadRd;  // vs3 lives in the rd slot; vmv.s.x merges into vd[0]
    case Op::kVaddVx:
    case Op::kVaddVi:
    case Op::kVslidedownVx:
    case Op::kVslidedownVi:
    case Op::kVslide1downVx:
    case Op::kVluxei32:
    case Op::kVmvXS:
    case Op::kVfmvFS:
      return kVReadRs2;
    case Op::kVaddVV:
    case Op::kVfaddVV:
    case Op::kVmulVV:
    case Op::kVfmulVV:
    case Op::kVredsumVS:
    case Op::kVfredusumVS:
      return kVReadRs1 | kVReadRs2;
    case Op::kVmaccVx:
    case Op::kVfmaccVf:
    case Op::kVindexmacVx:
    case Op::kVfindexmacVx:
    case Op::kVindexmacpVx:
    case Op::kVfindexmacpVx:
    case Op::kVindexmac2Vx:
    case Op::kVfindexmac2Vx:
      return kVReadRd | kVReadRs2;
    case Op::kVindexmacsV:
    case Op::kVfindexmacsV:
      // Accumulator only; the A value arrives from stream 0 and the B row
      // is an indirect VRF read resolved per dynamic instruction (stream 1).
      return kVReadRd;
    case Op::kVle32:
    case Op::kVmvVX:
    case Op::kVmvVI:
      return 0;  // write vd only
    default:
      // A vector op missing from this switch would be scoreboarded with no
      // VRF sources; fail loudly instead (the scalar ops land here too —
      // they have no vector reads by construction).
      IMAC_ASSERT(!is_vector(op), "predecode: vector op missing its VRF source set: " +
                                      mnemonic(op));
      return 0;
  }
}

VLatClass latency_class_of(Op op) {
  switch (op) {
    case Op::kVaddVx:
    case Op::kVaddVi:
    case Op::kVaddVV:
    case Op::kVfaddVV:
      return VLatClass::kAlu;
    case Op::kVmulVV:
    case Op::kVfmulVV:
    case Op::kVmaccVx:
    case Op::kVfmaccVf:
    case Op::kVindexmacVx:
    case Op::kVfindexmacVx:
    case Op::kVindexmacpVx:
    case Op::kVfindexmacpVx:
    case Op::kVindexmac2Vx:
    case Op::kVfindexmac2Vx:
    case Op::kVindexmacsV:
    case Op::kVfindexmacsV:
      return VLatClass::kMac;
    case Op::kVslidedownVx:
    case Op::kVslidedownVi:
    case Op::kVslide1downVx:
      return VLatClass::kSlide;
    case Op::kVmvVX:
    case Op::kVmvVI:
    case Op::kVmvSX:
    case Op::kVmvXS:
    case Op::kVfmvFS:
      return VLatClass::kMove;
    case Op::kVredsumVS:
    case Op::kVfredusumVS:
      return VLatClass::kReduction;
    default:
      return VLatClass::kNone;  // memory ops and everything scalar
  }
}

}  // namespace

StaticInstInfo predecode(const Instruction& inst) {
  const Op op = inst.op;
  StaticInstInfo s;
  if (is_vector(op)) s.flags |= kSiVector;
  if (is_branch(op)) s.flags |= kSiBranch;
  if (is_jump(op)) s.flags |= kSiJump;
  if (is_scalar_load(op)) s.flags |= kSiScalarLoad;
  if (is_scalar_store(op)) s.flags |= kSiScalarStore;
  if (is_vector_load(op)) s.flags |= kSiVectorLoad;
  if (is_vector_store(op)) s.flags |= kSiVectorStore;
  if (is_vector_to_scalar(op)) s.flags |= kSiVectorToScalar;
  if (op == Op::kEbreak || op == Op::kEcall) s.flags |= kSiHalt;
  if (op == Op::kMarker) s.flags |= kSiMarker;
  if (reads_x_rs1(inst)) s.flags |= kSiReadsXRs1;
  if (reads_x_rs2(inst)) s.flags |= kSiReadsXRs2;
  if (reads_f_rs1(inst)) s.flags |= kSiReadsFRs1;
  if (op == Op::kFsw) s.flags |= kSiReadsFRs2;
  if (writes_x(inst)) s.flags |= kSiWritesX;
  if (writes_f(inst)) s.flags |= kSiWritesF;
  if (writes_v(inst)) s.flags |= kSiWritesV;
  if (op == Op::kVluxei32) s.flags |= kSiGather;
  const bool packed_mac = op == Op::kVindexmacpVx || op == Op::kVfindexmacpVx ||
                          op == Op::kVindexmac2Vx || op == Op::kVfindexmac2Vx;
  if (op == Op::kVindexmacVx || op == Op::kVfindexmacVx || packed_mac)
    s.flags |= kSiIndirectVreg;
  if (packed_mac) s.flags |= kSiPackedIndex;
  if (op == Op::kVindexmac2Vx || op == Op::kVfindexmac2Vx) s.flags |= kSiDualMac;
  const bool ssr_mac = op == Op::kVindexmacsV || op == Op::kVfindexmacsV;
  if (ssr_mac) s.flags |= kSiSsrMac;
  if (op == Op::kSsrCfg || op == Op::kSsrEn) s.flags |= kSiSsrCtl;
  if (op == Op::kVmaccVx || op == Op::kVfmaccVf || op == Op::kVindexmacVx ||
      op == Op::kVfindexmacVx || packed_mac || ssr_mac)
    s.flags |= kSiVectorMac;
  // Threaded-engine closure binding: SSR ops mutate Machine-private stream
  // state and can raise mid-instruction, and illegal encodings must fault
  // with the interpreter's exact error, so all of them execute through the
  // Machine::step fallback. Everything else gets a pre-bound handler.
  if (ssr_mac || s.has(kSiSsrCtl) || op == Op::kIllegal) s.flags |= kSiThreadedFallback;
  // Superblock candidates: the ops the Algorithm 2/3/4 inner loops chain
  // (index extract -> MAC -> slide / packed-word shift). The chain builder
  // still applies structural constraints (in-place slides, no writes to
  // shift-deferred registers) on top of this per-op eligibility.
  if (op == Op::kVmvXS || op == Op::kVfmvFS || op == Op::kVslide1downVx ||
      op == Op::kVslidedownVi || op == Op::kSrli || op == Op::kVle32 ||
      op == Op::kVmaccVx || op == Op::kVfmaccVf || s.has(kSiIndirectVreg))
    s.flags |= kSiChainFusable;

  if (s.has(kSiScalarLoad | kSiScalarStore))
    s.scalar_mem_bytes = (op == Op::kLd || op == Op::kSd) ? 8 : 4;
  s.vreg_reads = vector_reads_of(op);
  s.vlat = latency_class_of(op);
  // Every non-memory vector op must carry an engine latency class; a new
  // vector op missing from latency_class_of() would otherwise be silently
  // mis-timed as kNone. Fails loudly at program load, where the old
  // process_vector default-raise fired per dynamic instruction.
  IMAC_ASSERT(!s.has(kSiVector) || s.has(kSiVectorLoad | kSiVectorStore) ||
                  s.vlat != VLatClass::kNone,
              "predecode: vector op missing a latency class: " + mnemonic(op));
  return s;
}

}  // namespace indexmac::isa
