// Binary encoding and decoding between 32-bit RISC-V instruction words and
// the decoded Instruction form.
//
// Standard instructions follow the RISC-V unprivileged spec and RVV 1.0
// encodings. Custom instructions:
//   * vindexmac.vx  — OP-V, OPIVX funct3, funct6 0b110000 (RVV-reserved)
//   * vfindexmac.vx — OP-V, OPIVX funct3, funct6 0b110001 (RVV-reserved)
//   * marker        — custom-0 opcode (0x0b), I-type layout, id in imm[11:0]
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/isa.h"

namespace indexmac::isa {

/// Encodes `inst` to its 32-bit instruction word. Throws SimError for
/// out-of-range immediates or ops this subset cannot encode.
[[nodiscard]] std::uint32_t encode(const Instruction& inst);

/// Decodes one instruction word. Returns Op::kIllegal inside the result
/// (never throws) for words outside the supported subset; `error` (when
/// non-null) receives a diagnostic in that case.
[[nodiscard]] Instruction decode(std::uint32_t word, std::string* error = nullptr);

/// Renders a decoded instruction in the syntax the text assembler accepts,
/// e.g. "vindexmac.vx v2, v4, x7" or "lw x5, 16(x6)".
[[nodiscard]] std::string disassemble(const Instruction& inst);

}  // namespace indexmac::isa
