// Instruction-set definitions for the RV64 + RVV subset used by the
// IndexMAC kernels, including the custom vindexmac/vfindexmac instructions.
//
// The subset is exactly what the paper's kernels require (plus a few
// conveniences for tests/examples): RV64I integer ALU ops, loads/stores,
// branches/jumps, M-extension mul, F-extension flw/fsw, and an RVV 1.0
// slice with SEW=32 / LMUL=1 semantics. Everything else is rejected by the
// decoder with a precise error.
#pragma once

#include <cstdint>
#include <string>

namespace indexmac::isa {

/// Hardware vector length in bits (Table I: 512-bit vector engine).
inline constexpr unsigned kVlenBits = 512;
/// Element width in bits; the kernels use 32-bit elements exclusively.
inline constexpr unsigned kSewBits = 32;
/// Elements per vector register (VLMAX at LMUL=1): 16 lanes worth.
inline constexpr unsigned kVlMax = kVlenBits / kSewBits;
/// Number of architectural registers in each file.
inline constexpr unsigned kNumXRegs = 32;
inline constexpr unsigned kNumFRegs = 32;
inline constexpr unsigned kNumVRegs = 32;

/// Mnemonic-level operation. Suffixes follow RVV conventions: Vx = vector
/// op with scalar x-register operand, Vi = 5-bit immediate operand,
/// Vf = scalar f-register operand.
enum class Op : std::uint8_t {
  kIllegal,
  // RV64I upper-immediate / jumps.
  kLui, kAuipc, kJal, kJalr,
  // Branches.
  kBeq, kBne, kBlt, kBge, kBltu, kBgeu,
  // Loads / stores (x and f register files).
  kLw, kLwu, kLd, kSw, kSd, kFlw, kFsw,
  // Integer ALU, immediate forms.
  kAddi, kSlti, kSltiu, kXori, kOri, kAndi, kSlli, kSrli, kSrai,
  // Integer ALU, register forms (+ M-extension multiply).
  kAdd, kSub, kSll, kSlt, kSltu, kXor, kSrl, kSra, kOr, kAnd, kMul,
  // System.
  kEcall, kEbreak,
  // Simulation marker (custom-0 opcode): architectural no-op that carries a
  // 12-bit id; the simulators record the cycle/statistics snapshot at which
  // each marker commits. Used by the sampled experiment runner.
  kMarker,
  // RVV configuration.
  kVsetvli,
  // RVV unit-stride memory.
  kVle32, kVse32,
  // RVV indexed-unordered load (gather): vd[i] = mem32[x[rs1] + vs2[i]].
  kVluxei32,
  // RVV arithmetic / moves / slides (SEW=32).
  kVaddVx, kVaddVi, kVaddVV, kVfaddVV, kVmulVV, kVfmulVV,
  kVmaccVx, kVfmaccVf,
  // Sum reductions: vd[0] = vs1[0] + sum(vs2[0..vl)).
  kVredsumVS, kVfredusumVS,
  kVmvVX, kVmvVI,
  kVmvXS, kVfmvFS, kVmvSX,
  kVslidedownVx, kVslidedownVi, kVslide1downVx,
  // Custom IndexMAC instructions (Section III of the paper):
  //   vd[i] += vs2[0] * VRF[x[rs1] & 0x1f][i]
  // Integer and fp32 element interpretations share the datapath.
  kVindexmacVx, kVfindexmacVx,
  // Follow-up-paper variants (arXiv:2501.10189, "Optimizing Structured-
  // Sparse Matrix Multiplication in RISC-V Vector Processors"):
  //  * vindexmacp.vx — packed-index form: the B-row source is named by the
  //    low nibble of x[rs1], addressing the upper half of the register
  //    file (VRF[16 | (x[rs1] & 0xf)]). Kernels consume a packed
  //    16-nibble index word with plain scalar shifts instead of one
  //    vmv.x.s round trip per non-zero slot.
  //  * vindexmac2.vx — dual-row form: one issue multiply-accumulates two
  //    adjacent A slots (values vs2[0] and vs2[1], indices nibbles 0 and 1
  //    of x[rs1]), equivalent to two back-to-back vindexmacp.vx ops. It
  //    occupies the MAC datapath for two operations but costs a single
  //    dispatch, halving the dependent-MAC chain on the accumulator.
  kVindexmacpVx, kVfindexmacpVx,
  kVindexmac2Vx, kVfindexmac2Vx,
  // Stream-semantic-register extension (Algorithm 5; after the SSR /
  // ISSR line of work, arXiv:2305.05559 and arXiv:2011.08070): four
  // address-generation state machines that feed operands straight into
  // the vector engine, removing explicit index/value loads from the
  // dynamic instruction stream.
  //  * ssrcfg sid, rs1, rs2 — programs stream `sid` (0..3, carried in the
  //    rd field): base address x[rs1], wrap length x[rs2] 32-bit words;
  //    resets the stream position.
  //  * ssren rs1 — enables the streams named by the low 4 bits of x[rs1]
  //    (bit s = stream s) and disables the rest; enabling rewinds a
  //    stream to its configured base. `ssren x0` disables all streams.
  //  * vindexmacs.v / vfindexmacs.v vd — streaming MAC: pops an A value
  //    from stream 0 and a VRF row index from stream 1, then performs
  //    vd[i] += value * VRF[index & 0x1f][i]. Both streams advance one
  //    word and wrap at their configured length.
  kSsrCfg, kSsrEn,
  kVindexmacsV, kVfindexmacsV,
};

/// A decoded instruction. Register fields are interpreted per-op:
/// scalar ops use x registers, kFlw/kFsw/kVfmaccVf/kVfmvFS touch f
/// registers, and vector ops use v registers where noted in encoding.cpp.
struct Instruction {
  Op op = Op::kIllegal;
  std::uint8_t rd = 0;   ///< destination (x/f/v); vs3 for stores
  std::uint8_t rs1 = 0;  ///< first source (x/f); base address for memory ops
  std::uint8_t rs2 = 0;  ///< second source (x) or vs2 (v)
  std::int32_t imm = 0;  ///< immediate / vtype / marker id

  friend bool operator==(const Instruction&, const Instruction&) = default;
};

/// vtype immediate for `vsetvli` encoding SEW=32, LMUL=1, ta, ma — the only
/// configuration this subset supports.
inline constexpr std::int32_t kVtypeE32M1 = 0xD0;

// ---- Instruction classification (shared by both simulators) ----

[[nodiscard]] bool is_vector(Op op);        ///< executes on the vector engine
[[nodiscard]] bool is_branch(Op op);        ///< conditional branch
[[nodiscard]] bool is_jump(Op op);          ///< jal/jalr
[[nodiscard]] bool is_scalar_load(Op op);   ///< lw/lwu/ld/flw
[[nodiscard]] bool is_scalar_store(Op op);  ///< sw/sd/fsw
[[nodiscard]] bool is_vector_load(Op op);
[[nodiscard]] bool is_vector_store(Op op);
/// Vector instruction that produces a scalar (x or f) result and therefore
/// requires a vector-engine -> scalar-core round trip (vmv.x.s / vfmv.f.s).
[[nodiscard]] bool is_vector_to_scalar(Op op);

/// Register-file usage queries used by rename/scoreboard logic.
[[nodiscard]] bool writes_x(const Instruction& inst);
[[nodiscard]] bool writes_f(const Instruction& inst);
[[nodiscard]] bool writes_v(const Instruction& inst);
[[nodiscard]] bool reads_x_rs1(const Instruction& inst);
[[nodiscard]] bool reads_x_rs2(const Instruction& inst);
[[nodiscard]] bool reads_f_rs1(const Instruction& inst);

/// Mnemonic text ("vindexmac.vx"), as accepted by the text assembler.
[[nodiscard]] std::string mnemonic(Op op);

}  // namespace indexmac::isa
