// Structured-sparse matrix-vector multiplication (y = A * x) using the
// RVV gather (vluxei32) and reduction (vfredusum/vredsum) instructions.
//
// This extends the paper's SpMM focus to the other staple sparse kernel:
// per row, the packed non-zero values are multiplied element-wise against
// x elements gathered through precomputed byte offsets, then reduced to a
// scalar. The N:M format's fixed slot count keeps the loop regular.
#pragma once

#include <cstdint>
#include <vector>

#include "asm/program.h"
#include "kernels/kernels.h"
#include "sparse/nm_matrix.h"

namespace indexmac::kernels {

/// Memory layout of one SpMV.
struct SpmvLayout {
  std::size_t rows = 0;
  std::size_t k = 0;              ///< length of x
  std::size_t slots_padded = 0;   ///< per-row slots, multiple of 16
  std::uint64_t a_values = 0;
  std::uint64_t a_offsets = 0;    ///< x element byte offsets
  std::uint64_t x_base = 0;
  std::uint64_t y_base = 0;
};

/// Packed per-row operand streams for the SpMV kernel.
template <typename T>
struct PackedSpmv {
  std::size_t rows = 0;
  std::size_t slots_padded = 0;
  std::vector<T> values;
  std::vector<std::int32_t> offsets;
};

/// Packs an N:M matrix for SpMV: slot offsets address x directly
/// (global column * 4 bytes). Padding slots read x[0] with value zero.
template <typename T>
[[nodiscard]] PackedSpmv<T> pack_spmv(const sparse::NmMatrix<T>& a) {
  PackedSpmv<T> out;
  out.rows = a.rows();
  out.slots_padded = round_up(a.slots_per_row(), isa::kVlMax);
  out.values.assign(out.rows * out.slots_padded, T{});
  out.offsets.assign(out.rows * out.slots_padded, 0);
  const sparse::Sparsity sp = a.sparsity();
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t b = 0; b < a.blocks_per_row(); ++b)
      for (unsigned s = 0; s < sp.n; ++s) {
        const std::size_t slot = r * out.slots_padded + b * sp.n + s;
        out.values[slot] = a.value_at(r, b, s);
        out.offsets[slot] =
            static_cast<std::int32_t>((b * sp.m + a.index_at(r, b, s)) * 4);
      }
  return out;
}

/// Computes the layout, reserving space via `alloc`.
[[nodiscard]] SpmvLayout make_spmv_layout(std::size_t rows, std::size_t k,
                                          std::size_t slots_padded, AddressAllocator& alloc);

/// Emits the SpMV kernel (unroll 1; fp32 or int32 lanes).
[[nodiscard]] Program emit_spmv_kernel(const SpmvLayout& layout, ElemType elem);

}  // namespace indexmac::kernels
