// Memory layout of one sparse x dense matrix multiplication in the
// simulated address space, shared between operand placement (core) and
// kernel code generation (kernels).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/bitutil.h"
#include "common/error.h"
#include "isa/isa.h"
#include "mem/main_memory.h"
#include "sparse/nm_matrix.h"

namespace indexmac::kernels {

/// Logical GEMM dimensions: C[rows_a x cols_b] = A[rows_a x k] * B[k x cols_b].
struct GemmDims {
  std::size_t rows_a = 0;
  std::size_t k = 0;
  std::size_t cols_b = 0;
};

/// Placement and derived geometry of all operands.
///
/// B and C rows are padded to a multiple of the vector length (16 fp32
/// elements = 64 bytes) so every column strip of every row stays inside the
/// row's own allocation, and k is padded to a multiple of the B-tile height
/// L so every k-tile is complete (padding rows are zero).
struct SpmmLayout {
  GemmDims dims;
  sparse::Sparsity sp;
  unsigned tile_rows = 16;       ///< L
  std::size_t k_padded = 0;      ///< k rounded up to a multiple of L
  std::size_t num_ktiles = 0;
  unsigned slots_per_tile = 0;   ///< A (value,index) slots per row per k-tile
  std::size_t b_pitch_elems = 0; ///< elements per stored B row
  std::size_t c_pitch_elems = 0;
  std::uint64_t a_values = 0;    ///< base addresses in simulated memory
  std::uint64_t a_indices = 0;
  std::uint64_t b_base = 0;
  std::uint64_t c_base = 0;

  [[nodiscard]] std::size_t full_strips() const { return dims.cols_b / isa::kVlMax; }
  [[nodiscard]] unsigned tail_cols() const {
    return static_cast<unsigned>(dims.cols_b % isa::kVlMax);
  }
  [[nodiscard]] std::size_t a_stream_words() const {
    return num_ktiles * dims.rows_a * slots_per_tile;
  }
  /// Bytes reserved for the A index stream. Sized for both index layouts —
  /// one 32-bit word per slot (Algorithms 2/3) and one packed 64-bit nibble
  /// word per (row, k-tile) (Algorithm 4) — so a single layout serves every
  /// kernel; the forms only differ when slots_per_tile < 2.
  [[nodiscard]] std::size_t a_index_bytes() const {
    return std::max<std::size_t>(a_stream_words() * 4, num_ktiles * dims.rows_a * 8);
  }
};

/// Computes the layout for `dims` under `sp` sparsity with an L-row B tile,
/// reserving space via `alloc`.
[[nodiscard]] inline SpmmLayout make_layout(const GemmDims& dims, sparse::Sparsity sp,
                                            unsigned tile_rows, AddressAllocator& alloc) {
  IMAC_CHECK(dims.rows_a > 0 && dims.k > 0 && dims.cols_b > 0, "GEMM dims must be positive");
  IMAC_CHECK(tile_rows > 0 && tile_rows % sp.m == 0, "tile_rows (L) must be a multiple of M");
  IMAC_CHECK(tile_rows <= isa::kNumVRegs, "tile_rows cannot exceed the register file");

  SpmmLayout out;
  out.dims = dims;
  out.sp = sp;
  out.tile_rows = tile_rows;
  out.k_padded = round_up(round_up(dims.k, sp.m), tile_rows);
  out.num_ktiles = out.k_padded / tile_rows;
  out.slots_per_tile = tile_rows / sp.m * sp.n;
  out.b_pitch_elems = round_up(dims.cols_b, isa::kVlMax);
  out.c_pitch_elems = out.b_pitch_elems;
  out.a_values = alloc.alloc(out.a_stream_words() * 4);
  out.a_indices = alloc.alloc(out.a_index_bytes());
  out.b_base = alloc.alloc(out.k_padded * out.b_pitch_elems * 4);
  out.c_base = alloc.alloc(dims.rows_a * out.c_pitch_elems * 4);
  return out;
}

}  // namespace indexmac::kernels
