#include "kernels/spmv_kernel.h"

#include "asm/assembler.h"
#include "common/error.h"

namespace indexmac::kernels {

SpmvLayout make_spmv_layout(std::size_t rows, std::size_t k, std::size_t slots_padded,
                            AddressAllocator& alloc) {
  IMAC_CHECK(rows > 0 && k > 0, "SpMV dims must be positive");
  IMAC_CHECK(slots_padded % isa::kVlMax == 0, "slots must be padded to the vector length");
  SpmvLayout out;
  out.rows = rows;
  out.k = k;
  out.slots_padded = slots_padded;
  out.a_values = alloc.alloc(rows * slots_padded * 4);
  out.a_offsets = alloc.alloc(rows * slots_padded * 4);
  out.x_base = alloc.alloc(k * 4);
  out.y_base = alloc.alloc(rows * 4);
  return out;
}

// Register plan:
//  x6 value ptr   x7 offset ptr   x8 y ptr     x9 x base
//  x10 chunk ctr  x11 row ctr     x13 vl=16    x24 chunk bound
//  v0 accumulator, v4 values, v8 offsets, v12 gathered x, v16 products,
//  v20 reduction result, v24 zero seed
Program emit_spmv_kernel(const SpmvLayout& layout, ElemType elem) {
  Assembler a;
  a.li(x(13), isa::kVlMax);
  a.vsetvli_e32m1(x(0), x(13));
  a.vmv_v_i(v(24), 0);  // reduction seed
  a.li(x(6), static_cast<std::int64_t>(layout.a_values));
  a.li(x(7), static_cast<std::int64_t>(layout.a_offsets));
  a.li(x(8), static_cast<std::int64_t>(layout.y_base));
  a.li(x(9), static_cast<std::int64_t>(layout.x_base));
  a.li(x(24), static_cast<std::int64_t>(layout.slots_padded / isa::kVlMax));
  a.li(x(11), static_cast<std::int64_t>(layout.rows));

  Assembler::Label row_loop = a.new_label();
  a.bind(row_loop);
  a.vmv_v_i(v(0), 0);
  a.li(x(10), 0);
  Assembler::Label chunk_loop = a.new_label();
  a.bind(chunk_loop);
  a.vle32(v(4), x(6));
  a.vle32(v(8), x(7));
  a.vluxei32(v(12), x(9), v(8));  // gather x elements
  if (elem == ElemType::kF32) {
    a.vfmul_vv(v(16), v(4), v(12));
    a.vfadd_vv(v(0), v(0), v(16));
  } else {
    a.vmul_vv(v(16), v(4), v(12));
    a.vadd_vv(v(0), v(0), v(16));
  }
  a.addi(x(6), x(6), 64);
  a.addi(x(7), x(7), 64);
  a.addi(x(10), x(10), 1);
  a.blt(x(10), x(24), chunk_loop);
  if (elem == ElemType::kF32) {
    a.vfredusum_vs(v(20), v(0), v(24));
    a.vfmv_f_s(f(1), v(20));
    a.fsw(f(1), x(8), 0);
  } else {
    a.vredsum_vs(v(20), v(0), v(24));
    a.vmv_x_s(x(5), v(20));
    a.sw(x(5), x(8), 0);
  }
  a.addi(x(8), x(8), 4);
  a.addi(x(11), x(11), -1);
  a.bne(x(11), x(0), row_loop);
  a.ebreak();
  return a.finish();
}

}  // namespace indexmac::kernels
