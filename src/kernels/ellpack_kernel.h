// Unstructured-sparsity baseline kernel: row-wise ELLPACK SpMM.
//
// Because unstructured column indexes are unbounded, no B tile can be kept
// resident in the vector register file (the paper's Section III argument);
// every non-zero therefore loads its B row from memory, exactly like
// Algorithm 2, but the value/index strips are consumed in chunks of the
// vector length since rows can hold arbitrarily many non-zeros. The kernel
// is C-stationary (C rows live in a register across the whole row).
#pragma once

#include <cstdint>

#include "asm/program.h"
#include "kernels/kernels.h"

namespace indexmac::kernels {

/// Memory layout of one ELLPACK multiplication.
struct EllpackLayout {
  GemmDims dims;
  std::size_t slots_padded = 0;   ///< padded slots per row (multiple of 16)
  std::size_t b_pitch_elems = 0;
  std::size_t c_pitch_elems = 0;
  std::uint64_t a_values = 0;
  std::uint64_t a_offsets = 0;    ///< B-row byte offsets
  std::uint64_t b_base = 0;
  std::uint64_t c_base = 0;

  [[nodiscard]] std::size_t full_strips() const { return dims.cols_b / isa::kVlMax; }
  [[nodiscard]] unsigned tail_cols() const {
    return static_cast<unsigned>(dims.cols_b % isa::kVlMax);
  }
};

/// Computes the layout, reserving space via `alloc`.
[[nodiscard]] EllpackLayout make_ellpack_layout(const GemmDims& dims, std::size_t slots_padded,
                                                AddressAllocator& alloc);

/// Emits the ELLPACK kernel (fp32, unroll 1).
[[nodiscard]] Program emit_ellpack_kernel(const EllpackLayout& layout);

/// Dynamic memory-operation counts (for access accounting).
[[nodiscard]] KernelFootprint predict_ellpack_footprint(const EllpackLayout& layout);

}  // namespace indexmac::kernels
