// Code generators for the paper's three matrix-multiplication kernels.
//
//  * Algorithm 1 — dense row-wise vector matmul (baseline for examples).
//  * Algorithm 2 — "Row-Wise-SpMM": vectorized structured-sparse x dense
//    matmul; per non-zero it loads the selected B row from memory
//    (vle32) and multiply-accumulates (vfmacc.vf). Supports the A-, B- and
//    C-stationary dataflows compared in Section IV-A.
//  * Algorithm 3 — "Proposed": B tiles are preloaded into v[base..base+L)
//    and the per-non-zero vector load is replaced by the custom
//    vindexmac instruction's indirect VRF read.
//  * Algorithm 4 — follow-up paper (arXiv:2501.10189): like Algorithm 3,
//    but the per-(row, k-tile) indices arrive as one packed 64-bit nibble
//    word loaded with a scalar ld and consumed with scalar shifts —
//    eliminating Algorithm 3's per-slot vmv.x.s round trips — and
//    adjacent slot pairs issue as one dual-row vindexmac2 MAC, halving
//    the dependent-MAC chain on each accumulator.
//  * Algorithm 5 — SSR streaming baseline (after arXiv:2305.05559 /
//    arXiv:2011.08070): the A value and index streams never touch the
//    vector register file. Two SSR address generators are configured once
//    over the whole [ktile][row][slot] A sequence (wrapping per column
//    strip) and the vindexmacs.v streaming MAC pops both operands, so the
//    per-row body collapses to load C, slots_per_tile MACs, store C.
//
// All generators emit complete, self-contained programs (addresses baked as
// immediates) that halt with ebreak; loop unrolling over U output rows
// follows [17] as applied in the paper's evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "asm/program.h"
#include "kernels/layout.h"

namespace indexmac::kernels {

/// Dataflow (operand kept stationary in registers) for Algorithm 2.
/// Algorithm 3 is B-stationary by construction.
enum class Dataflow { kAStationary, kBStationary, kCStationary };

/// Element interpretation of the 32-bit lanes.
enum class ElemType { kF32, kI32 };

/// Marker ids emitted when KernelOptions::emit_markers is set. Markers are
/// architectural no-ops whose commit cycles the timing simulator records;
/// the sampled runner reconstructs per-phase costs from the event sequence.
enum MarkerId : std::int32_t {
  kMarkerKernelStart = 1,
  kMarkerPreloadDone = 2,   ///< after each B-tile preload (Algorithm 3)
  kMarkerRowGroupDone = 3,  ///< after each unrolled row-group body
  kMarkerKernelEnd = 4,
};

struct KernelOptions {
  unsigned unroll = 4;            ///< U: output rows per row-group ([17])
  Dataflow dataflow = Dataflow::kBStationary;
  ElemType elem = ElemType::kF32;
  bool emit_markers = false;
};

/// First vector register of the preloaded B tile: the tile occupies the top
/// of the register file (v[32-L] .. v31). Operand packing must use this as
/// PackConfig::base_vreg so packed indices land in the tile.
[[nodiscard]] constexpr unsigned b_tile_base_vreg(unsigned tile_rows) {
  return isa::kNumVRegs - tile_rows;
}

/// Algorithm 3 ("Proposed"): requires layout.tile_rows + unroll * 3 <= 32
/// vector registers (B tile in v[32-L..31], C/value/index groups below).
[[nodiscard]] Program emit_indexmac_kernel(const SpmmLayout& layout,
                                           const KernelOptions& options);

/// Algorithm 2 ("Row-Wise-SpMM") with the selected dataflow.
[[nodiscard]] Program emit_rowwise_spmm_kernel(const SpmmLayout& layout,
                                               const KernelOptions& options);

/// Algorithm 4 (packed-index + dual-row vindexmac variants). B-stationary
/// by construction, like Algorithm 3; honors unroll and markers. Requires
/// the B tile in the upper register-file half (tile_rows <= 16) and
/// layout.slots_per_tile <= 16 (one packed 64-bit index word per row).
[[nodiscard]] Program emit_algorithm4(const SpmmLayout& layout, const KernelOptions& options);

/// Algorithm 5 (SSR streaming). B-stationary by construction and restricted
/// to unroll=1: the streams deliver A in strict [ktile][row][slot] order,
/// which an interleaved row group would consume out of order.
[[nodiscard]] Program emit_algorithm_ssr(const SpmmLayout& layout,
                                         const KernelOptions& options);

/// Algorithm 1 (dense row-wise). A is stored dense, row-major with pitch
/// round_up(k,16); the sparse layout fields a_values/a_indices are unused —
/// pass the dense A base via `a_dense_base`.
[[nodiscard]] Program emit_dense_rowwise_kernel(const SpmmLayout& layout,
                                                std::uint64_t a_dense_base,
                                                std::size_t a_pitch_elems,
                                                const KernelOptions& options);

/// Static instruction/operation counts per whole-kernel execution, used by
/// tests to cross-check the dynamic counts the simulators report.
struct KernelFootprint {
  std::uint64_t vector_loads = 0;   ///< vle32 executed
  std::uint64_t vector_stores = 0;  ///< vse32 executed
  std::uint64_t macs = 0;           ///< MAC operations (dual-row forms count 2)
  std::uint64_t scalar_loads = 0;   ///< ld/lw executed (Algorithm 4's index words)
};

/// Predicts dynamic memory-operation counts for Algorithm 3.
[[nodiscard]] KernelFootprint predict_indexmac_footprint(const SpmmLayout& layout);
/// Predicts dynamic memory-operation counts for Algorithm 2, B-stationary.
[[nodiscard]] KernelFootprint predict_rowwise_footprint(const SpmmLayout& layout);
/// Predicts dynamic memory-operation counts for Algorithm 4.
[[nodiscard]] KernelFootprint predict_algorithm4_footprint(const SpmmLayout& layout);
/// Predicts dynamic memory-operation counts for Algorithm 5. Stream-side
/// 64-byte line fetches count as vector loads, matching the timing model.
[[nodiscard]] KernelFootprint predict_ssr_footprint(const SpmmLayout& layout);

}  // namespace indexmac::kernels
