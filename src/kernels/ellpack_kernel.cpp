#include "kernels/ellpack_kernel.h"

#include "asm/assembler.h"
#include "common/error.h"

namespace indexmac::kernels {

EllpackLayout make_ellpack_layout(const GemmDims& dims, std::size_t slots_padded,
                                  AddressAllocator& alloc) {
  IMAC_CHECK(dims.rows_a > 0 && dims.k > 0 && dims.cols_b > 0, "GEMM dims must be positive");
  IMAC_CHECK(slots_padded % isa::kVlMax == 0, "slots must be padded to the vector length");
  EllpackLayout out;
  out.dims = dims;
  out.slots_padded = slots_padded;
  out.b_pitch_elems = round_up(dims.cols_b, isa::kVlMax);
  out.c_pitch_elems = out.b_pitch_elems;
  if (slots_padded > 0) {
    out.a_values = alloc.alloc(dims.rows_a * slots_padded * 4);
    out.a_offsets = alloc.alloc(dims.rows_a * slots_padded * 4);
  }  // else: no operand stream at all (all-zero A); the kernel never
     // references these bases.
  out.b_base = alloc.alloc(dims.k * out.b_pitch_elems * 4);
  out.c_base = alloc.alloc(dims.rows_a * out.c_pitch_elems * 4);
  return out;
}

namespace {

// Register plan (self-contained; no overlap with loop-carried state):
//  x5 scratch (vmv.x.s)   x6 value ptr      x7 offset ptr    x8 C row ptr
//  x10 chunk ctr          x11 row ctr       x12 strip ctr    x13 vl=16
//  x14 addr scratch       x15 C strip base  x16 B strip base x17 tail vl
//  x20 C pitch            x22 strip step    x24 chunk bound  x26 strip bound
//  v0 accumulator, v4 values, v8 offsets, v12 B row scratch
class EllpackGenerator {
 public:
  explicit EllpackGenerator(const EllpackLayout& layout) : l_(layout) {}

  Program generate() {
    a_.li(x(13), isa::kVlMax);
    a_.vsetvli_e32m1(x(0), x(13));
    a_.li(x(17), l_.tail_cols() == 0 ? isa::kVlMax : l_.tail_cols());
    a_.li(x(20), static_cast<std::int64_t>(l_.c_pitch_elems * 4));
    a_.li(x(22), 64);
    a_.li(x(24), static_cast<std::int64_t>(l_.slots_padded / isa::kVlMax));
    a_.li(x(26), static_cast<std::int64_t>(l_.full_strips()));
    a_.li(x(15), static_cast<std::int64_t>(l_.c_base));
    a_.li(x(16), static_cast<std::int64_t>(l_.b_base));

    if (l_.full_strips() > 0) {
      a_.li(x(12), 0);
      Assembler::Label strip_loop = a_.new_label();
      a_.bind(strip_loop);
      strip_body(/*tail=*/false);
      a_.add(x(15), x(15), x(22));
      a_.add(x(16), x(16), x(22));
      a_.addi(x(12), x(12), 1);
      a_.blt(x(12), x(26), strip_loop);
    }
    if (l_.tail_cols() != 0) strip_body(/*tail=*/true);
    a_.ebreak();
    return a_.finish();
  }

 private:
  void strip_body(bool tail) {
    a_.li(x(6), static_cast<std::int64_t>(l_.a_values));
    a_.li(x(7), static_cast<std::int64_t>(l_.a_offsets));
    a_.mv(x(8), x(15));
    a_.li(x(11), static_cast<std::int64_t>(l_.dims.rows_a));
    Assembler::Label row_loop = a_.new_label();
    a_.bind(row_loop);
    a_.vmv_v_i(v(0), 0);
    // A slot-free matrix (all-zero A, see EllpackMatrix::from_dense) has
    // no operand stream at all: skip the gather loop entirely — C rows are
    // plain zero stores — instead of issuing phantom loads the baseline
    // memory-access numbers would then count.
    if (l_.slots_padded > 0) {
      a_.li(x(10), 0);
      Assembler::Label chunk_loop = a_.new_label();
      a_.bind(chunk_loop);
      a_.vle32(v(4), x(6));
      a_.vle32(v(8), x(7));
      a_.vadd_vx(v(8), v(8), x(16));  // offsets -> absolute strip addresses
      for (unsigned j = 0; j < isa::kVlMax; ++j) {
        a_.vmv_x_s(x(5), v(8));
        a_.vle32(v(12), x(5));       // the unavoidable per-non-zero B load
        a_.vfmv_f_s(f(1), v(4));
        a_.vfmacc_vf(v(0), f(1), v(12));
        a_.vslide1down_vx(v(4), v(4), x(0));
        a_.vslide1down_vx(v(8), v(8), x(0));
      }
      a_.addi(x(6), x(6), 64);
      a_.addi(x(7), x(7), 64);
      a_.addi(x(10), x(10), 1);
      a_.blt(x(10), x(24), chunk_loop);
    }
    // Store the finished C row (narrow the store in the tail strip).
    if (tail) a_.vsetvli_e32m1(x(0), x(17));
    a_.vse32(v(0), x(8));
    if (tail) a_.vsetvli_e32m1(x(0), x(13));
    a_.add(x(8), x(8), x(20));
    a_.addi(x(11), x(11), -1);
    a_.bne(x(11), x(0), row_loop);
  }

  const EllpackLayout& l_;
  Assembler a_;
};

}  // namespace

Program emit_ellpack_kernel(const EllpackLayout& layout) {
  return EllpackGenerator(layout).generate();
}

KernelFootprint predict_ellpack_footprint(const EllpackLayout& layout) {
  const std::uint64_t strips = layout.full_strips() + (layout.tail_cols() != 0 ? 1 : 0);
  const std::uint64_t chunks = layout.slots_padded / isa::kVlMax;
  KernelFootprint fp;
  fp.vector_loads =
      strips * layout.dims.rows_a * (2 * chunks + layout.slots_padded);  // A strips + B rows
  fp.vector_stores = strips * layout.dims.rows_a;
  fp.macs = strips * layout.dims.rows_a * layout.slots_padded;
  return fp;
}

}  // namespace indexmac::kernels
