#include "kernels/kernels.h"

#include "asm/assembler.h"
#include "common/error.h"

namespace indexmac::kernels {
namespace {

// Scalar register allocation shared by all generators (no ABI: whole-program
// kernels). Comments give the role; all values fit the listed registers.
constexpr unsigned kXScratchMv = 5;    // vmv.x.s destination (index/address)
constexpr unsigned kXAval = 6;         // A values stream pointer
constexpr unsigned kXAidx = 7;         // A indices stream pointer
constexpr unsigned kXCRow = 8;         // current C row pointer
constexpr unsigned kXBTile = 9;        // current B tile pointer (Alg3) / B row base (Alg1)
constexpr unsigned kXKtile = 10;       // k-tile loop counter
constexpr unsigned kXGroup = 11;       // row-group loop counter
constexpr unsigned kXStrip = 12;       // column-strip loop counter
constexpr unsigned kXVlFull = 13;      // constant 16 (full vector length)
constexpr unsigned kXAddr = 14;        // address scratch
constexpr unsigned kXCStrip = 15;      // C strip base
constexpr unsigned kXBStrip = 16;      // B strip base
constexpr unsigned kXVlTail = 17;      // constant: tail strip width
constexpr unsigned kXBPitch = 19;      // B row pitch in bytes
constexpr unsigned kXCPitch = 20;      // C row pitch in bytes
constexpr unsigned kXStripStep = 22;   // constant 64 (one strip in bytes)
constexpr unsigned kXNumKtiles = 24;   // k-tile loop bound
constexpr unsigned kXKtileStep = 25;   // B-tile step (Alg3) / A k-tile stride (strided traversals)
constexpr unsigned kXNumStrips = 26;   // full-strip loop bound
constexpr unsigned kXStripBound = 27;  // A-stationary strip loop bound
constexpr unsigned kXGroupAvalBase = 28;  // A-group base pointers (strided traversals)
constexpr unsigned kXGroupAidxBase = 29;
constexpr unsigned kXValXfer0 = 30;    // integer value transfer scratch (i32 Alg2), +1
constexpr unsigned kXPacked0 = 1;      // x1..x4: packed index words (Alg4), one per unrolled row

// Vector register allocation.
constexpr unsigned kVAcc = 0;      // v0..v3: C accumulators (U <= 4)
constexpr unsigned kVVal = 4;      // v4..v7: A value strips
constexpr unsigned kVIdx = 8;      // v8..v11: A index strips
constexpr unsigned kVBScratch = 12;  // v12..v15: B rows loaded from memory (Alg2) / dense A (Alg1)
constexpr unsigned kVMasterVal = 16;  // v16..v19: A-stationary master copies
constexpr unsigned kVMasterIdx = 20;  // v20..v23

/// Shared emission state for one kernel generation.
class Generator {
 public:
  Generator(const SpmmLayout& layout, const KernelOptions& options)
      : l_(layout), o_(options) {
    IMAC_CHECK(o_.unroll >= 1 && o_.unroll <= 4, "unroll must be in [1,4]");
    IMAC_CHECK(l_.tile_rows <= 16, "tile_rows beyond 16 collides with working registers");
  }

  Program indexmac() {
    IMAC_CHECK(b_tile_base_vreg(l_.tile_rows) >= kVMasterVal,
               "B tile would collide with working vector registers");
    prologue();
    emit_strips([this](bool tail) { bstationary_strip_body(Inner::kIndexmac, tail); });
    epilogue();
    return a_.finish();
  }

  Program algorithm4() {
    // One bound covers both constraints (kVMasterVal == 16): the tile must
    // clear the working registers AND sit in v16..v31, the only half the
    // packed nibble indices can address.
    static_assert(kVMasterVal == 16);
    IMAC_CHECK(b_tile_base_vreg(l_.tile_rows) >= 16,
               "Algorithm 4 needs the B tile in v16..v31 (nibble-addressable, "
               "clear of working registers)");
    IMAC_CHECK(l_.slots_per_tile <= 16,
               "Algorithm 4 packs at most 16 index nibbles per (row, k-tile)");
    prologue();
    emit_strips([this](bool tail) { bstationary_strip_body(Inner::kIndexmac4, tail); });
    epilogue();
    return a_.finish();
  }

  Program ssr() {
    IMAC_CHECK(o_.unroll == 1,
               "Algorithm 5 streams A in strict sequential order: unroll=1 only");
    prologue();
    // Configure the two A streams once: both wrap at the full stream
    // length, so every column strip replays the whole [ktile][row][slot]
    // sequence without reprogramming.
    a_.li(x(kXAval), static_cast<std::int64_t>(l_.a_values));
    a_.li(x(kXAidx), static_cast<std::int64_t>(l_.a_indices));
    a_.li(x(kXAddr), static_cast<std::int64_t>(l_.a_stream_words()));
    a_.ssrcfg(0, x(kXAval), x(kXAddr));
    a_.ssrcfg(1, x(kXAidx), x(kXAddr));
    a_.li(x(kXAddr), 0b11);
    a_.ssren(x(kXAddr));
    emit_strips([this](bool tail) { ssr_strip_body(tail); });
    epilogue();
    return a_.finish();
  }

  Program rowwise() {
    prologue();
    switch (o_.dataflow) {
      case Dataflow::kBStationary:
        emit_strips([this](bool tail) { bstationary_strip_body(Inner::kRowwise, tail); });
        break;
      case Dataflow::kCStationary:
        emit_strips([this](bool tail) { cstationary_strip_body(tail); });
        break;
      case Dataflow::kAStationary:
        astationary_all();
        break;
    }
    epilogue();
    return a_.finish();
  }

  Program dense(std::uint64_t a_base, std::size_t a_pitch_elems) {
    prologue();
    dense_a_base_ = a_base;
    dense_a_pitch_bytes_ = a_pitch_elems * 4;
    emit_strips([this](bool tail) { dense_strip_body(tail); });
    epilogue();
    return a_.finish();
  }

 private:
  using Label = Assembler::Label;

  /// Inner-loop flavor of the shared B-stationary strip body.
  enum class Inner {
    kRowwise,    ///< Algorithm 2: per-slot B-row loads from memory
    kIndexmac,   ///< Algorithm 3: preloaded tile + vmv.x.s/vindexmac
    kIndexmac4,  ///< Algorithm 4: preloaded tile + packed-index dual MACs
  };

  // ---- small helpers ----

  void marker(MarkerId id) {
    if (o_.emit_markers) a_.marker(id);
  }

  unsigned slots4() const { return l_.slots_per_tile * 4; }

  /// Emits the constant setup shared by every kernel.
  void prologue() {
    a_.li(x(kXVlFull), isa::kVlMax);
    a_.vsetvli_e32m1(x(0), x(kXVlFull));
    a_.li(x(kXVlTail), l_.tail_cols() == 0 ? isa::kVlMax : l_.tail_cols());
    a_.li(x(kXBPitch), static_cast<std::int64_t>(l_.b_pitch_elems * 4));
    a_.li(x(kXCPitch), static_cast<std::int64_t>(l_.c_pitch_elems * 4));
    a_.li(x(kXStripStep), 64);
    a_.li(x(kXNumKtiles), static_cast<std::int64_t>(l_.num_ktiles));
    a_.li(x(kXNumStrips), static_cast<std::int64_t>(l_.full_strips()));
    marker(kMarkerKernelStart);
  }

  void epilogue() {
    marker(kMarkerKernelEnd);
    a_.ebreak();
  }

  /// Runs `body(tail)` over all full strips (as an asm loop) and once more
  /// for the tail strip if the column count is not a multiple of 16.
  template <typename Body>
  void emit_strips(Body&& body) {
    a_.li(x(kXCStrip), static_cast<std::int64_t>(l_.c_base));
    a_.li(x(kXBStrip), static_cast<std::int64_t>(l_.b_base));
    if (l_.full_strips() > 0) {
      a_.li(x(kXStrip), 0);
      Label strip_loop = a_.new_label();
      a_.bind(strip_loop);
      body(/*tail=*/false);
      a_.add(x(kXCStrip), x(kXCStrip), x(kXStripStep));
      a_.add(x(kXBStrip), x(kXBStrip), x(kXStripStep));
      a_.addi(x(kXStrip), x(kXStrip), 1);
      a_.blt(x(kXStrip), x(kXNumStrips), strip_loop);
    }
    if (l_.tail_cols() != 0) body(/*tail=*/true);
  }

  /// Loads the A value/index strips for `u` consecutive rows from the
  /// stream pointers (sequential [ktile][row][slot] layout).
  void load_a_group(unsigned u) {
    for (unsigned r = 0; r < u; ++r) {
      a_.addi(x(kXAddr), x(kXAval), static_cast<std::int32_t>(r * slots4()));
      a_.vle32(v(kVVal + r), x(kXAddr));
    }
    for (unsigned r = 0; r < u; ++r) {
      a_.addi(x(kXAddr), x(kXAidx), static_cast<std::int32_t>(r * slots4()));
      a_.vle32(v(kVIdx + r), x(kXAddr));
    }
  }

  /// Algorithm 4: loads the A value strips plus each row's packed 64-bit
  /// index word (one scalar ld per row; the stream holds one word per
  /// (ktile, row) in [ktile][row] order).
  void load_a_group_packed(unsigned u) {
    for (unsigned r = 0; r < u; ++r) {
      a_.addi(x(kXAddr), x(kXAval), static_cast<std::int32_t>(r * slots4()));
      a_.vle32(v(kVVal + r), x(kXAddr));
    }
    for (unsigned r = 0; r < u; ++r)
      a_.ld(x(kXPacked0 + r), x(kXAidx), static_cast<std::int32_t>(r * 8));
  }

  /// Turns the loaded byte-offset indices into absolute B row addresses
  /// for the current strip (paper Alg. 2 line 5).
  void adjust_indices_group(unsigned u) {
    for (unsigned r = 0; r < u; ++r) a_.vadd_vx(v(kVIdx + r), v(kVIdx + r), x(kXBStrip));
  }

  void load_c_group(unsigned u) {
    a_.mv(x(kXAddr), x(kXCRow));
    for (unsigned r = 0; r < u; ++r) {
      if (r > 0) a_.add(x(kXAddr), x(kXAddr), x(kXCPitch));
      a_.vle32(v(kVAcc + r), x(kXAddr));
    }
  }

  void zero_c_group(unsigned u) {
    for (unsigned r = 0; r < u; ++r) a_.vmv_v_i(v(kVAcc + r), 0);
  }

  /// Stores C rows; in a tail strip the store width is narrowed so the next
  /// row's data is not clobbered.
  void store_c_group(unsigned u, bool tail) {
    if (tail) a_.vsetvli_e32m1(x(0), x(kXVlTail));
    a_.mv(x(kXAddr), x(kXCRow));
    for (unsigned r = 0; r < u; ++r) {
      if (r > 0) a_.add(x(kXAddr), x(kXAddr), x(kXCPitch));
      a_.vse32(v(kVAcc + r), x(kXAddr));
    }
    if (tail) a_.vsetvli_e32m1(x(0), x(kXVlFull));
  }

  /// Algorithm 3 inner body: per non-zero slot, move the packed VRF index
  /// to a scalar register and issue the indirect multiply-accumulate.
  /// The value/index strips are consumed with vector slides (paper Alg. 3
  /// lines 10-13), fully unrolled over the slots of this k-tile.
  void inner_indexmac(unsigned u) {
    for (unsigned j = 0; j < l_.slots_per_tile; ++j) {
      for (unsigned r = 0; r < u; ++r) {
        a_.vmv_x_s(x(kXScratchMv), v(kVIdx + r));
        if (o_.elem == ElemType::kF32)
          a_.vfindexmac_vx(v(kVAcc + r), v(kVVal + r), x(kXScratchMv));
        else
          a_.vindexmac_vx(v(kVAcc + r), v(kVVal + r), x(kXScratchMv));
      }
      for (unsigned r = 0; r < u; ++r) {
        a_.vslide1down_vx(v(kVVal + r), v(kVVal + r), x(0));
        a_.vslide1down_vx(v(kVIdx + r), v(kVIdx + r), x(0));
      }
    }
  }

  /// Algorithm 4 inner body: adjacent slot pairs issue as one dual-row MAC
  /// whose two indices are the low byte of the packed word; plain scalar
  /// shifts walk the word (1-cycle ALU ops), replacing Algorithm 3's
  /// per-slot vmv.x.s round trips, and each pair slides the value strip
  /// down by two. An odd trailing slot issues as a single packed MAC.
  void inner_indexmac4(unsigned u) {
    const unsigned slots = l_.slots_per_tile;
    for (unsigned consumed = 0; consumed + 2 <= slots; consumed += 2) {
      for (unsigned r = 0; r < u; ++r) {
        if (o_.elem == ElemType::kF32)
          a_.vfindexmac2_vx(v(kVAcc + r), v(kVVal + r), x(kXPacked0 + r));
        else
          a_.vindexmac2_vx(v(kVAcc + r), v(kVVal + r), x(kXPacked0 + r));
      }
      if (consumed + 2 < slots) {  // more slots follow: expose the next pair
        for (unsigned r = 0; r < u; ++r) a_.srli(x(kXPacked0 + r), x(kXPacked0 + r), 8);
        for (unsigned r = 0; r < u; ++r) a_.vslidedown_vi(v(kVVal + r), v(kVVal + r), 2);
      }
    }
    if (slots % 2 != 0) {
      for (unsigned r = 0; r < u; ++r) {
        if (o_.elem == ElemType::kF32)
          a_.vfindexmacp_vx(v(kVAcc + r), v(kVVal + r), x(kXPacked0 + r));
        else
          a_.vindexmacp_vx(v(kVAcc + r), v(kVVal + r), x(kXPacked0 + r));
      }
    }
  }

  /// Algorithm 2 inner body: per non-zero slot, move the B row address to a
  /// scalar register, load the B row from memory, move the value to a
  /// scalar register and multiply-accumulate (paper Alg. 2 lines 7-12).
  void inner_rowwise(unsigned u) {
    for (unsigned j = 0; j < l_.slots_per_tile; ++j) {
      for (unsigned r = 0; r < u; ++r) {
        a_.vmv_x_s(x(kXScratchMv), v(kVIdx + r));
        a_.vle32(v(kVBScratch + r), x(kXScratchMv));
      }
      for (unsigned r = 0; r < u; ++r) {
        if (o_.elem == ElemType::kF32) {
          a_.vfmv_f_s(f(1 + r), v(kVVal + r));
          a_.vfmacc_vf(v(kVAcc + r), f(1 + r), v(kVBScratch + r));
        } else {
          a_.vmv_x_s(x(kXValXfer0 + (r & 1)), v(kVVal + r));
          a_.vmacc_vx(v(kVAcc + r), x(kXValXfer0 + (r & 1)), v(kVBScratch + r));
        }
      }
      for (unsigned r = 0; r < u; ++r) {
        a_.vslide1down_vx(v(kVVal + r), v(kVVal + r), x(0));
        a_.vslide1down_vx(v(kVIdx + r), v(kVIdx + r), x(0));
      }
    }
  }

  /// Advances the A stream and C row pointers past `u` rows. The index
  /// stream stride differs per form: one word per slot (Algorithms 2/3)
  /// vs one packed 64-bit word per row (Algorithm 4).
  void advance_group(unsigned u, unsigned idx_bytes_per_row) {
    a_.addi(x(kXAval), x(kXAval), static_cast<std::int32_t>(u * slots4()));
    a_.addi(x(kXAidx), x(kXAidx), static_cast<std::int32_t>(u * idx_bytes_per_row));
    for (unsigned r = 0; r < u; ++r) a_.add(x(kXCRow), x(kXCRow), x(kXCPitch));
  }

  /// Emits a counted loop over the full row groups plus a remainder body.
  template <typename GroupBody>
  void emit_row_groups(GroupBody&& body) {
    const std::size_t full_groups = l_.dims.rows_a / o_.unroll;
    const unsigned rem = static_cast<unsigned>(l_.dims.rows_a % o_.unroll);
    if (full_groups > 0) {
      a_.li(x(kXGroup), static_cast<std::int64_t>(full_groups));
      Label group_loop = a_.new_label();
      a_.bind(group_loop);
      body(o_.unroll);
      a_.addi(x(kXGroup), x(kXGroup), -1);
      a_.bne(x(kXGroup), x(0), group_loop);
    }
    if (rem > 0) body(rem);
  }

  /// Preloads the L-row B tile into v[32-L..31] (paper Alg. 3 lines 2-4).
  void preload_b_tile() {
    a_.mv(x(kXAddr), x(kXBTile));
    const unsigned base = b_tile_base_vreg(l_.tile_rows);
    for (unsigned row = 0; row < l_.tile_rows; ++row) {
      if (row > 0) a_.add(x(kXAddr), x(kXAddr), x(kXBPitch));
      a_.vle32(v(base + row), x(kXAddr));
    }
  }

  /// B-stationary strip body shared by Algorithms 3 and 4 (preloaded B
  /// tiles) and the B-stationary variant of Algorithm 2:
  ///   for each k-tile: [preload B tile;] for each row group:
  ///     load A strips (+C), run the inner body, store C.
  void bstationary_strip_body(Inner inner, bool tail) {
    const bool preload = inner != Inner::kRowwise;
    a_.li(x(kXAval), static_cast<std::int64_t>(l_.a_values));
    a_.li(x(kXAidx), static_cast<std::int64_t>(l_.a_indices));
    a_.mv(x(kXBTile), x(kXBStrip));
    if (preload)
      a_.li(x(kXKtileStep), static_cast<std::int64_t>(l_.tile_rows * l_.b_pitch_elems * 4));
    a_.li(x(kXKtile), 0);
    Label ktile_loop = a_.new_label();
    a_.bind(ktile_loop);
    if (preload) preload_b_tile();
    marker(kMarkerPreloadDone);
    a_.mv(x(kXCRow), x(kXCStrip));
    emit_row_groups([&](unsigned u) {
      if (inner == Inner::kIndexmac4)
        load_a_group_packed(u);
      else
        load_a_group(u);
      if (inner == Inner::kRowwise) adjust_indices_group(u);
      load_c_group(u);
      switch (inner) {
        case Inner::kRowwise: inner_rowwise(u); break;
        case Inner::kIndexmac: inner_indexmac(u); break;
        case Inner::kIndexmac4: inner_indexmac4(u); break;
      }
      store_c_group(u, tail);
      marker(kMarkerRowGroupDone);
      advance_group(u, inner == Inner::kIndexmac4 ? 8 : slots4());
    });
    if (preload) a_.add(x(kXBTile), x(kXBTile), x(kXKtileStep));
    a_.addi(x(kXKtile), x(kXKtile), 1);
    a_.blt(x(kXKtile), x(kXNumKtiles), ktile_loop);
  }

  /// Algorithm 5 strip body: Algorithm 3's B-stationary shape, but the A
  /// value/index strips never enter the vector register file — the
  /// streaming MAC pops both operands from the SSR address generators, so
  /// the per-row body is just load C, slots_per_tile MACs, store C, and
  /// only the C pointer advances between rows.
  void ssr_strip_body(bool tail) {
    a_.mv(x(kXBTile), x(kXBStrip));
    a_.li(x(kXKtileStep), static_cast<std::int64_t>(l_.tile_rows * l_.b_pitch_elems * 4));
    a_.li(x(kXKtile), 0);
    Label ktile_loop = a_.new_label();
    a_.bind(ktile_loop);
    preload_b_tile();
    marker(kMarkerPreloadDone);
    a_.mv(x(kXCRow), x(kXCStrip));
    emit_row_groups([&](unsigned u) {
      load_c_group(u);
      for (unsigned j = 0; j < l_.slots_per_tile; ++j) {
        for (unsigned r = 0; r < u; ++r) {
          if (o_.elem == ElemType::kF32)
            a_.vfindexmacs_v(v(kVAcc + r));
          else
            a_.vindexmacs_v(v(kVAcc + r));
        }
      }
      store_c_group(u, tail);
      marker(kMarkerRowGroupDone);
      for (unsigned r = 0; r < u; ++r) a_.add(x(kXCRow), x(kXCRow), x(kXCPitch));
    });
    a_.add(x(kXBTile), x(kXBTile), x(kXKtileStep));
    a_.addi(x(kXKtile), x(kXKtile), 1);
    a_.blt(x(kXKtile), x(kXNumKtiles), ktile_loop);
  }

  /// C-stationary Algorithm 2: C rows stay in registers across all k-tiles;
  /// the A stream is traversed strided ([ktile][row] layout, fixed row).
  void cstationary_strip_body(bool tail) {
    a_.li(x(kXGroupAvalBase), static_cast<std::int64_t>(l_.a_values));
    a_.li(x(kXGroupAidxBase), static_cast<std::int64_t>(l_.a_indices));
    a_.li(x(kXKtileStep), static_cast<std::int64_t>(l_.dims.rows_a * slots4()));
    a_.mv(x(kXCRow), x(kXCStrip));
    emit_row_groups([&](unsigned u) {
      zero_c_group(u);  // C starts at zero; no memory read needed
      a_.mv(x(kXAval), x(kXGroupAvalBase));
      a_.mv(x(kXAidx), x(kXGroupAidxBase));
      a_.li(x(kXKtile), 0);
      Label ktile_loop = a_.new_label();
      a_.bind(ktile_loop);
      marker(kMarkerPreloadDone);
      load_a_group(u);
      adjust_indices_group(u);
      inner_rowwise(u);
      a_.add(x(kXAval), x(kXAval), x(kXKtileStep));
      a_.add(x(kXAidx), x(kXAidx), x(kXKtileStep));
      a_.addi(x(kXKtile), x(kXKtile), 1);
      a_.blt(x(kXKtile), x(kXNumKtiles), ktile_loop);
      store_c_group(u, tail);
      marker(kMarkerRowGroupDone);
      a_.addi(x(kXGroupAvalBase), x(kXGroupAvalBase), static_cast<std::int32_t>(u * slots4()));
      a_.addi(x(kXGroupAidxBase), x(kXGroupAidxBase), static_cast<std::int32_t>(u * slots4()));
      for (unsigned r = 0; r < u; ++r) a_.add(x(kXCRow), x(kXCRow), x(kXCPitch));
    });
  }

  /// A-stationary Algorithm 2: A value/index strips are loaded once per
  /// (row group, k-tile) into master registers and re-derived per strip
  /// (index copy folds in the strip base; value copy is a bit-preserving
  /// integer add of zero).
  void astationary_all() {
    IMAC_CHECK(o_.unroll <= 4, "A-stationary masters support up to 4-way unroll");
    a_.li(x(kXGroupAvalBase), static_cast<std::int64_t>(l_.a_values));
    a_.li(x(kXGroupAidxBase), static_cast<std::int64_t>(l_.a_indices));
    a_.li(x(kXKtileStep), static_cast<std::int64_t>(l_.dims.rows_a * slots4()));
    a_.li(x(kXCRow), static_cast<std::int64_t>(l_.c_base));  // group base (strip 0)
    emit_row_groups([&](unsigned u) {
      a_.mv(x(kXAval), x(kXGroupAvalBase));
      a_.mv(x(kXAidx), x(kXGroupAidxBase));
      a_.li(x(kXKtile), 0);
      Label ktile_loop = a_.new_label();
      a_.bind(ktile_loop);
      marker(kMarkerPreloadDone);
      // Load masters.
      for (unsigned r = 0; r < u; ++r) {
        a_.addi(x(kXAddr), x(kXAval), static_cast<std::int32_t>(r * slots4()));
        a_.vle32(v(kVMasterVal + r), x(kXAddr));
      }
      for (unsigned r = 0; r < u; ++r) {
        a_.addi(x(kXAddr), x(kXAidx), static_cast<std::int32_t>(r * slots4()));
        a_.vle32(v(kVMasterIdx + r), x(kXAddr));
      }
      // Sweep strips with working copies.
      a_.li(x(kXCStrip), 0);  // byte offset of the strip
      a_.li(x(kXBStrip), static_cast<std::int64_t>(l_.b_base));
      auto strip_visit = [&](bool tail) {
        for (unsigned r = 0; r < u; ++r) {
          a_.vadd_vx(v(kVIdx + r), v(kVMasterIdx + r), x(kXBStrip));
          a_.vadd_vi(v(kVVal + r), v(kVMasterVal + r), 0);
        }
        a_.add(x(kXAddr), x(kXCRow), x(kXCStrip));
        a_.mv(x(kXStrip), x(kXAddr));  // stash C strip pointer
        load_c_group_at(u, x(kXStrip));
        inner_rowwise(u);
        store_c_group_at(u, x(kXStrip), tail);
      };
      if (l_.full_strips() > 0) {
        a_.li(x(kXStripBound), static_cast<std::int64_t>(l_.full_strips() * 64));
        Label strip_loop = a_.new_label();
        a_.bind(strip_loop);
        strip_visit(/*tail=*/false);
        a_.add(x(kXBStrip), x(kXBStrip), x(kXStripStep));
        a_.addi(x(kXCStrip), x(kXCStrip), 64);
        a_.blt(x(kXCStrip), x(kXStripBound), strip_loop);
      }
      if (l_.tail_cols() != 0) strip_visit(/*tail=*/true);
      a_.add(x(kXAval), x(kXAval), x(kXKtileStep));
      a_.add(x(kXAidx), x(kXAidx), x(kXKtileStep));
      a_.addi(x(kXKtile), x(kXKtile), 1);
      a_.blt(x(kXKtile), x(kXNumKtiles), ktile_loop);
      marker(kMarkerRowGroupDone);
      a_.addi(x(kXGroupAvalBase), x(kXGroupAvalBase), static_cast<std::int32_t>(u * slots4()));
      a_.addi(x(kXGroupAidxBase), x(kXGroupAidxBase), static_cast<std::int32_t>(u * slots4()));
      for (unsigned r = 0; r < u; ++r) a_.add(x(kXCRow), x(kXCRow), x(kXCPitch));
    });
  }

  /// C group load/store from an explicit base register (A-stationary).
  void load_c_group_at(unsigned u, XReg base) {
    a_.mv(x(kXAddr), base);
    for (unsigned r = 0; r < u; ++r) {
      if (r > 0) a_.add(x(kXAddr), x(kXAddr), x(kXCPitch));
      a_.vle32(v(kVAcc + r), x(kXAddr));
    }
  }
  void store_c_group_at(unsigned u, XReg base, bool tail) {
    if (tail) a_.vsetvli_e32m1(x(0), x(kXVlTail));
    a_.mv(x(kXAddr), base);
    for (unsigned r = 0; r < u; ++r) {
      if (r > 0) a_.add(x(kXAddr), x(kXAddr), x(kXCPitch));
      a_.vse32(v(kVAcc + r), x(kXAddr));
    }
    if (tail) a_.vsetvli_e32m1(x(0), x(kXVlFull));
  }

  /// Algorithm 1: dense row-wise matmul, one output row at a time. The A
  /// row is processed in 16-element chunks; each element multiplies the
  /// corresponding B row (paper Alg. 1).
  void dense_strip_body(bool tail) {
    a_.li(x(kXAval), static_cast<std::int64_t>(dense_a_base_));
    a_.mv(x(kXCRow), x(kXCStrip));
    const std::size_t chunks = ceil_div(l_.dims.k, isa::kVlMax);
    a_.li(x(kXKtileStep), static_cast<std::int64_t>(chunks));
    emit_row_groups_dense([&]() {
      a_.vmv_v_i(v(kVAcc), 0);
      a_.mv(x(kXBTile), x(kXBStrip));   // current B row pointer
      a_.mv(x(kXGroupAvalBase), x(kXAval));  // chunk pointer
      a_.li(x(kXKtile), 0);
      Label chunk_loop = a_.new_label();
      a_.bind(chunk_loop);
      marker(kMarkerPreloadDone);
      a_.vle32(v(kVVal), x(kXGroupAvalBase));
      for (unsigned j = 0; j < isa::kVlMax; ++j) {
        a_.vfmv_f_s(f(1), v(kVVal));
        a_.vle32(v(kVBScratch), x(kXBTile));
        a_.vfmacc_vf(v(kVAcc), f(1), v(kVBScratch));
        a_.vslide1down_vx(v(kVVal), v(kVVal), x(0));
        a_.add(x(kXBTile), x(kXBTile), x(kXBPitch));
      }
      a_.addi(x(kXGroupAvalBase), x(kXGroupAvalBase), 64);
      a_.addi(x(kXKtile), x(kXKtile), 1);
      a_.blt(x(kXKtile), x(kXKtileStep), chunk_loop);
      store_c_group(1, tail);
      marker(kMarkerRowGroupDone);
      a_.li(x(kXAddr), static_cast<std::int64_t>(dense_a_pitch_bytes_));
      a_.add(x(kXAval), x(kXAval), x(kXAddr));
      a_.add(x(kXCRow), x(kXCRow), x(kXCPitch));
    });
  }

  template <typename RowBody>
  void emit_row_groups_dense(RowBody&& body) {
    a_.li(x(kXGroup), static_cast<std::int64_t>(l_.dims.rows_a));
    Label row_loop = a_.new_label();
    a_.bind(row_loop);
    body();
    a_.addi(x(kXGroup), x(kXGroup), -1);
    a_.bne(x(kXGroup), x(0), row_loop);
  }

  const SpmmLayout& l_;
  const KernelOptions& o_;
  Assembler a_;
  std::uint64_t dense_a_base_ = 0;
  std::size_t dense_a_pitch_bytes_ = 0;
};

}  // namespace

Program emit_indexmac_kernel(const SpmmLayout& layout, const KernelOptions& options) {
  IMAC_CHECK(options.dataflow == Dataflow::kBStationary,
             "Algorithm 3 is B-stationary by construction");
  return Generator(layout, options).indexmac();
}

Program emit_rowwise_spmm_kernel(const SpmmLayout& layout, const KernelOptions& options) {
  return Generator(layout, options).rowwise();
}

Program emit_algorithm4(const SpmmLayout& layout, const KernelOptions& options) {
  IMAC_CHECK(options.dataflow == Dataflow::kBStationary,
             "Algorithm 4 is B-stationary by construction");
  return Generator(layout, options).algorithm4();
}

Program emit_algorithm_ssr(const SpmmLayout& layout, const KernelOptions& options) {
  IMAC_CHECK(options.dataflow == Dataflow::kBStationary,
             "Algorithm 5 is B-stationary by construction");
  return Generator(layout, options).ssr();
}

Program emit_dense_rowwise_kernel(const SpmmLayout& layout, std::uint64_t a_dense_base,
                                  std::size_t a_pitch_elems, const KernelOptions& options) {
  IMAC_CHECK(options.unroll == 1, "the dense baseline supports unroll=1 only");
  return Generator(layout, options).dense(a_dense_base, a_pitch_elems);
}

KernelFootprint predict_indexmac_footprint(const SpmmLayout& layout) {
  const std::uint64_t strips = layout.full_strips() + (layout.tail_cols() != 0 ? 1 : 0);
  const std::uint64_t per_ktile_loads =
      layout.tile_rows + 3ull * layout.dims.rows_a;  // preload + (values+indices+C) per row
  KernelFootprint fp;
  fp.vector_loads = strips * layout.num_ktiles * per_ktile_loads;
  fp.vector_stores = strips * layout.num_ktiles * layout.dims.rows_a;
  fp.macs = strips * layout.num_ktiles * layout.dims.rows_a * layout.slots_per_tile;
  return fp;
}

KernelFootprint predict_rowwise_footprint(const SpmmLayout& layout) {
  const std::uint64_t strips = layout.full_strips() + (layout.tail_cols() != 0 ? 1 : 0);
  const std::uint64_t per_row_loads = 3ull + layout.slots_per_tile;  // values+indices+C+B rows
  KernelFootprint fp;
  fp.vector_loads = strips * layout.num_ktiles * layout.dims.rows_a * per_row_loads;
  fp.vector_stores = strips * layout.num_ktiles * layout.dims.rows_a;
  fp.macs = strips * layout.num_ktiles * layout.dims.rows_a * layout.slots_per_tile;
  return fp;
}

KernelFootprint predict_algorithm4_footprint(const SpmmLayout& layout) {
  const std::uint64_t strips = layout.full_strips() + (layout.tail_cols() != 0 ? 1 : 0);
  // Preload + per row (values + C): the per-row index strip load of
  // Algorithm 3 becomes one scalar ld of the packed word instead.
  const std::uint64_t per_ktile_loads = layout.tile_rows + 2ull * layout.dims.rows_a;
  KernelFootprint fp;
  fp.vector_loads = strips * layout.num_ktiles * per_ktile_loads;
  fp.vector_stores = strips * layout.num_ktiles * layout.dims.rows_a;
  fp.macs = strips * layout.num_ktiles * layout.dims.rows_a * layout.slots_per_tile;
  fp.scalar_loads = strips * layout.num_ktiles * layout.dims.rows_a;
  return fp;
}

KernelFootprint predict_ssr_footprint(const SpmmLayout& layout) {
  const std::uint64_t strips = layout.full_strips() + (layout.tail_cols() != 0 ? 1 : 0);
  // The SSR streams fetch whole 64-byte lines. Addresses ascend, so every
  // line of a stream window is fetched once per strip — the wrap at the
  // strip boundary refetches the first line — except a window that fits in
  // a single line, which stays buffered across all strips.
  const auto stream_line_fetches = [&](std::uint64_t base) {
    const std::uint64_t words = layout.a_stream_words();
    const std::uint64_t lines = ((base + 4 * words - 1) >> 6) - (base >> 6) + 1;
    return lines == 1 ? 1 : strips * lines;
  };
  KernelFootprint fp;
  fp.vector_loads = strips * layout.num_ktiles * (layout.tile_rows + layout.dims.rows_a) +
                    stream_line_fetches(layout.a_values) +
                    stream_line_fetches(layout.a_indices);
  fp.vector_stores = strips * layout.num_ktiles * layout.dims.rows_a;
  fp.macs = strips * layout.num_ktiles * layout.dims.rows_a * layout.slots_per_tile;
  return fp;
}

}  // namespace indexmac::kernels
