// Operand packing: turns an NmMatrix into the flat, k-tiled value/index
// streams the vectorized kernels consume, and dense matrices into padded
// row-major images for the simulated address space.
//
// Index stream variants (Section II/III of the paper):
//  * kByteOffset — for Algorithm 2 ("Row-Wise-SpMM"): each slot holds the
//    byte offset of its B row (global row * row pitch). The kernel adds the
//    strip base address with one vadd.vx (paper Alg. 2, line 5) and then
//    uses the element directly as a load address.
//  * kVrfIndex — for Algorithm 3 (vindexmac): each slot holds the vector
//    register number that holds its B row once the L-row tile is preloaded
//    (base_vreg + row-within-tile). Structured sparsity bounds the in-block
//    index by M, which is what makes this precomputation possible.
//  * kPackedNibble — for Algorithm 4 (vindexmacp/vindexmac2, the
//    follow-up paper's packed-index variants): all of a row's per-k-tile
//    indices are packed as 4-bit nibbles into one 64-bit word (slot s in
//    bits [4s, 4s+4)). Each nibble addresses the upper half of the
//    register file — VRF[16 | nibble] — which the B tile occupies by
//    convention, so the kernel loads one scalar word per (row, k-tile)
//    and feeds successive slots to the MAC with plain scalar shifts.
#pragma once

#include <cstdint>
#include <vector>

#include "sparse/nm_matrix.h"

namespace indexmac::sparse {

enum class IndexMode { kByteOffset, kVrfIndex, kPackedNibble };

/// Parameters shared by the packer and the kernel generators.
struct PackConfig {
  unsigned tile_rows = 16;       ///< L: B-tile rows held in the VRF (multiple of M)
  IndexMode mode = IndexMode::kVrfIndex;
  std::uint32_t b_pitch_bytes = 0;  ///< B row pitch (kByteOffset mode)
  unsigned base_vreg = 16;          ///< first B-tile vector register (kVrfIndex mode)
};

/// Flat k-tiled operand streams for one structured-sparse A matrix.
template <typename T>
struct PackedA {
  Sparsity sp;
  std::size_t rows = 0;
  std::size_t k_padded = 0;      ///< k padded to a multiple of tile_rows
  unsigned tile_rows = 0;        ///< L
  std::size_t num_ktiles = 0;
  unsigned slots_per_tile = 0;   ///< non-zero slots per (row, ktile) = N * L / M
  IndexMode mode = IndexMode::kVrfIndex;
  /// values[(t * rows + r) * slots_per_tile + s]
  std::vector<T> values;
  /// kByteOffset/kVrfIndex: one word per slot, parallel to `values`.
  /// kPackedNibble: two words per (ktile, row) — the little-endian halves
  /// of the 64-bit packed index word (slot s in bits [4s, 4s+4)).
  std::vector<std::int32_t> indices;

  [[nodiscard]] std::size_t slot_offset(std::size_t ktile, std::size_t row) const {
    IMAC_CHECK(ktile < num_ktiles && row < rows, "PackedA index out of range");
    return (ktile * rows + row) * slots_per_tile;
  }
};

template <typename T>
[[nodiscard]] PackedA<T> pack_a(const NmMatrix<T>& a, const PackConfig& config) {
  const Sparsity sp = a.sparsity();
  IMAC_CHECK(config.tile_rows % sp.m == 0, "tile_rows (L) must be a multiple of M");
  IMAC_CHECK(config.mode != IndexMode::kByteOffset || config.b_pitch_bytes > 0,
             "byte-offset packing requires the B row pitch");

  PackedA<T> out;
  out.sp = sp;
  out.rows = a.rows();
  out.tile_rows = config.tile_rows;
  out.k_padded = round_up(a.padded_cols(), config.tile_rows);
  out.num_ktiles = out.k_padded / config.tile_rows;
  const unsigned blocks_per_tile = config.tile_rows / sp.m;
  out.slots_per_tile = blocks_per_tile * sp.n;
  out.mode = config.mode;
  out.values.assign(out.num_ktiles * out.rows * out.slots_per_tile, T{});
  if (config.mode == IndexMode::kPackedNibble) {
    // Nibble addressing covers VRF[16..31]: the tile must sit in the upper
    // half of the register file, and all slots must fit one 64-bit word.
    IMAC_CHECK(config.base_vreg >= 16 && config.base_vreg + config.tile_rows <= 32,
               "packed-nibble indices require the B tile in v16..v31");
    IMAC_CHECK(out.slots_per_tile <= 16,
               "packed index word holds at most 16 nibble slots per (row, k-tile)");
    out.indices.assign(out.num_ktiles * out.rows * 2, 0);
  } else {
    out.indices.assign(out.values.size(), 0);
  }

  for (std::size_t t = 0; t < out.num_ktiles; ++t)
    for (std::size_t r = 0; r < out.rows; ++r) {
      const std::size_t base = out.slot_offset(t, r);
      for (unsigned bt = 0; bt < blocks_per_tile; ++bt) {
        const std::size_t block = t * blocks_per_tile + bt;
        for (unsigned s = 0; s < sp.n; ++s) {
          const unsigned tile_slot = bt * sp.n + s;
          const std::size_t slot = base + tile_slot;
          std::uint32_t local = sp.m - 1;  // padding default (zero value)
          if (block < a.blocks_per_row()) {
            out.values[slot] = a.value_at(r, block, s);
            local = a.index_at(r, block, s);
          }
          const std::uint32_t row_in_tile = bt * sp.m + local;
          if (config.mode == IndexMode::kVrfIndex) {
            out.indices[slot] = static_cast<std::int32_t>(config.base_vreg + row_in_tile);
          } else if (config.mode == IndexMode::kPackedNibble) {
            const std::uint32_t nibble = config.base_vreg + row_in_tile - 16;
            const std::size_t word = (t * out.rows + r) * 2 + (tile_slot >> 3);
            out.indices[word] = static_cast<std::int32_t>(
                static_cast<std::uint32_t>(out.indices[word]) |
                (nibble << ((tile_slot & 7) * 4)));
          } else {
            const std::uint64_t global_row = t * config.tile_rows + row_in_tile;
            out.indices[slot] =
                static_cast<std::int32_t>(global_row * config.b_pitch_bytes);
          }
        }
      }
    }
  return out;
}

/// Lays out `m` row-major with `pitch_elems` elements per row (>= cols) and
/// `total_rows` rows (>= rows; extra rows zero-filled). Used to place B with
/// 64-byte-aligned rows and k padded to the tile size.
template <typename T>
[[nodiscard]] std::vector<T> to_padded_rows(const DenseMatrix<T>& m, std::size_t pitch_elems,
                                            std::size_t total_rows) {
  IMAC_CHECK(pitch_elems >= m.cols(), "pitch must cover all columns");
  IMAC_CHECK(total_rows >= m.rows(), "row padding cannot shrink the matrix");
  std::vector<T> out(total_rows * pitch_elems, T{});
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) out[r * pitch_elems + c] = m.at(r, c);
  return out;
}

/// Host-side model of Algorithm 3's arithmetic on packed operands: applies
/// every (value, index) slot against the B image exactly as the kernel
/// would. Validates packing independent of the ISA pipeline.
template <typename T>
[[nodiscard]] DenseMatrix<T> packed_spmm_reference(const PackedA<T>& a,
                                                   const std::vector<T>& b_image,
                                                   std::size_t b_pitch_elems,
                                                   std::size_t b_cols,
                                                   unsigned base_vreg = 16) {
  DenseMatrix<T> c(a.rows, b_cols);
  const unsigned l = a.tile_rows;
  for (std::size_t t = 0; t < a.num_ktiles; ++t)
    for (std::size_t r = 0; r < a.rows; ++r) {
      const std::size_t base = a.slot_offset(t, r);
      for (unsigned s = 0; s < a.slots_per_tile; ++s) {
        const T value = a.values[base + s];
        if (value == T{}) continue;
        std::size_t row;
        if (a.mode == IndexMode::kVrfIndex) {
          row = t * l + (static_cast<std::uint32_t>(a.indices[base + s]) - base_vreg);
        } else if (a.mode == IndexMode::kPackedNibble) {
          const std::size_t word = (t * a.rows + r) * 2 + (s >> 3);
          const std::uint32_t nibble =
              (static_cast<std::uint32_t>(a.indices[word]) >> ((s & 7) * 4)) & 0xf;
          row = t * l + (16 + nibble - base_vreg);
        } else {
          row = static_cast<std::uint32_t>(a.indices[base + s]) / (b_pitch_elems * sizeof(T));
        }
        for (std::size_t j = 0; j < b_cols; ++j)
          c.at(r, j) += value * b_image[row * b_pitch_elems + j];
      }
    }
  return c;
}

}  // namespace indexmac::sparse
