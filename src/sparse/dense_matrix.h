// Row-major dense matrix used for reference computations and as the source
// for N:M pruning. Only float (fp32) and std::int32_t instantiations are
// used in the library.
#pragma once

#include <cstdint>
#include <random>
#include <span>
#include <type_traits>  // std::is_floating_point_v in random_matrix
#include <vector>

#include "common/error.h"

namespace indexmac::sparse {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] T& at(std::size_t r, std::size_t c) {
    IMAC_CHECK(r < rows_ && c < cols_, "DenseMatrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& at(std::size_t r, std::size_t c) const {
    IMAC_CHECK(r < rows_ && c < cols_, "DenseMatrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    IMAC_CHECK(r < rows_, "DenseMatrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<T> row(std::size_t r) {
    IMAC_CHECK(r < rows_, "DenseMatrix row out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] const std::vector<T>& data() const { return data_; }
  [[nodiscard]] std::vector<T>& data() { return data_; }

  friend bool operator==(const DenseMatrix&, const DenseMatrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

/// Uniform random matrix in [lo, hi] with a deterministic seed.
template <typename T>
[[nodiscard]] DenseMatrix<T> random_matrix(std::size_t rows, std::size_t cols,
                                           std::uint32_t seed, T lo, T hi) {
  DenseMatrix<T> m(rows, cols);
  std::mt19937 rng(seed);
  if constexpr (std::is_floating_point_v<T>) {
    std::uniform_real_distribution<T> dist(lo, hi);
    for (T& v : m.data()) v = dist(rng);
  } else {
    std::uniform_int_distribution<T> dist(lo, hi);
    for (T& v : m.data()) v = dist(rng);
  }
  return m;
}

/// Reference (scalar) dense GEMM: C = A * B.
template <typename T>
[[nodiscard]] DenseMatrix<T> matmul_reference(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  IMAC_CHECK(a.cols() == b.rows(), "matmul: inner dimensions must match");
  DenseMatrix<T> c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const T aik = a.at(i, k);
      if (aik == T{}) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c.at(i, j) += aik * b.at(k, j);
    }
  return c;
}

}  // namespace indexmac::sparse
