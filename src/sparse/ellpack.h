// ELLPACK storage for *unstructured* sparsity: every row keeps max-nnz
// (value, column) slots, zero-padded. This is the classic vector-machine
// sparse format and serves as the unstructured baseline the paper's
// introduction argues against: without the N:M bound on column indexes,
// B rows cannot be preloaded into the vector register file, so every
// non-zero pays a memory load (see kernels::emit_ellpack_kernel).
#pragma once

#include <algorithm>
#include <cmath>    // std::abs(float)
#include <cstdint>
#include <cstdlib>  // std::abs(int)
#include <vector>

#include "common/bitutil.h"
#include "common/error.h"
#include "sparse/dense_matrix.h"

namespace indexmac::sparse {

/// Unstructured sparse matrix, row-padded to a uniform slot count.
template <typename T>
class EllpackMatrix {
 public:
  /// Builds from any dense matrix; slots = max non-zeros over all rows.
  ///
  /// Slot-count semantics (the unstructured-baseline cost model depends on
  /// them): rows sparser than the densest row ARE padded up to max-nnz
  /// with (0.0, column 0) slots, and those slots DO issue gather loads in
  /// the ELLPACK kernel — the classic row-imbalance inefficiency of the
  /// format, which real vector hardware pays too. An all-zero matrix,
  /// however, stores zero slots per row (max-nnz is NOT floored to 1), so
  /// it issues no phantom loads that would inflate the baseline's
  /// memory-access numbers.
  static EllpackMatrix from_dense(const DenseMatrix<T>& dense) {
    std::size_t max_nnz = 0;  // an all-zero matrix keeps zero slots
    for (std::size_t r = 0; r < dense.rows(); ++r) {
      std::size_t nnz = 0;
      for (std::size_t c = 0; c < dense.cols(); ++c)
        if (dense.at(r, c) != T{}) ++nnz;
      max_nnz = std::max(max_nnz, nnz);
    }
    EllpackMatrix out(dense.rows(), dense.cols(), max_nnz);
    for (std::size_t r = 0; r < dense.rows(); ++r) {
      std::size_t slot = 0;
      for (std::size_t c = 0; c < dense.cols(); ++c) {
        if (dense.at(r, c) == T{}) continue;
        out.values_[r * max_nnz + slot] = dense.at(r, c);
        out.columns_[r * max_nnz + slot] = static_cast<std::uint32_t>(c);
        ++slot;
      }
      // Padding slots keep column 0 with zero values: harmless to apply.
    }
    return out;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t slots_per_row() const { return slots_; }

  [[nodiscard]] T value_at(std::size_t r, std::size_t slot) const {
    return values_[index(r, slot)];
  }
  [[nodiscard]] std::uint32_t column_at(std::size_t r, std::size_t slot) const {
    return columns_[index(r, slot)];
  }

  [[nodiscard]] DenseMatrix<T> to_dense() const {
    DenseMatrix<T> out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t s = 0; s < slots_; ++s) {
        const T v = values_[index(r, s)];
        if (v != T{}) out.at(r, columns_[index(r, s)]) += v;
      }
    return out;
  }

  /// Fraction of slots that are padding (ELLPACK inefficiency measure).
  /// A slot-free (all-zero) matrix has no padding by definition.
  [[nodiscard]] double padding_fraction() const {
    if (values_.empty()) return 0.0;
    std::size_t padded = 0;
    for (const T& v : values_)
      if (v == T{}) ++padded;
    return static_cast<double>(padded) / static_cast<double>(values_.size());
  }

 private:
  EllpackMatrix(std::size_t rows, std::size_t cols, std::size_t slots)
      : rows_(rows), cols_(cols), slots_(slots),
        values_(rows * slots, T{}),
        columns_(rows * slots, 0) {}

  [[nodiscard]] std::size_t index(std::size_t r, std::size_t slot) const {
    IMAC_CHECK(r < rows_ && slot < slots_, "EllpackMatrix index out of range");
    return r * slots_ + slot;
  }

  std::size_t rows_;
  std::size_t cols_;
  std::size_t slots_;
  std::vector<T> values_;
  std::vector<std::uint32_t> columns_;
};

/// Unstructured magnitude pruning: keeps the `keep` largest-|value|
/// elements of each row (row-balanced, the ELLPACK-friendly variant).
template <typename T>
[[nodiscard]] DenseMatrix<T> prune_unstructured(const DenseMatrix<T>& dense, std::size_t keep) {
  DenseMatrix<T> out(dense.rows(), dense.cols());
  std::vector<std::size_t> order(dense.cols());
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    for (std::size_t c = 0; c < dense.cols(); ++c) order[c] = c;
    std::partial_sort(order.begin(), order.begin() + std::min(keep, dense.cols()), order.end(),
                      [&](std::size_t a, std::size_t b) {
                        return std::abs(dense.at(r, a)) > std::abs(dense.at(r, b));
                      });
    for (std::size_t i = 0; i < std::min(keep, dense.cols()); ++i)
      out.at(r, order[i]) = dense.at(r, order[i]);
  }
  return out;
}

/// Flat operand streams for the ELLPACK kernel: values (row-major, padded
/// slot count rounded up to the vector length) and B-row *byte offsets*.
template <typename T>
struct PackedEllpack {
  std::size_t rows = 0;
  std::size_t slots_padded = 0;  ///< multiple of kVlMax
  std::vector<T> values;
  std::vector<std::int32_t> offsets;  ///< column * b_pitch_bytes
};

template <typename T>
[[nodiscard]] PackedEllpack<T> pack_ellpack(const EllpackMatrix<T>& m,
                                            std::uint32_t b_pitch_bytes, unsigned pad_to) {
  IMAC_CHECK(b_pitch_bytes > 0, "packing requires the B row pitch");
  PackedEllpack<T> out;
  out.rows = m.rows();
  out.slots_padded = round_up(m.slots_per_row(), pad_to);
  out.values.assign(out.rows * out.slots_padded, T{});
  out.offsets.assign(out.rows * out.slots_padded, 0);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t s = 0; s < m.slots_per_row(); ++s) {
      out.values[r * out.slots_padded + s] = m.value_at(r, s);
      out.offsets[r * out.slots_padded + s] =
          static_cast<std::int32_t>(m.column_at(r, s) * b_pitch_bytes);
    }
  return out;
}

}  // namespace indexmac::sparse
