// N:M structured-sparse matrix format (Fig. 1(b) of the paper).
//
// The logical matrix is split row-wise into blocks of M consecutive
// columns; each block holds at most N non-zero elements. Storage keeps
// exactly N (value, local-index) slots per block — real non-zeros first,
// zero-valued padding after — giving the fixed-stride values / col_idx
// vectors the paper's kernels rely on.
#pragma once

#include <cmath>    // std::abs(float) in prune_from_dense
#include <cstdint>
#include <cstdlib>  // std::abs(int) for integral instantiations
#include <vector>

#include "common/bitutil.h"
#include "common/error.h"
#include "sparse/dense_matrix.h"

namespace indexmac::sparse {

/// An N:M sparsity pattern ("up to N non-zeros in every M consecutive
/// elements"). The paper evaluates 1:4 and 2:4.
struct Sparsity {
  unsigned n = 2;
  unsigned m = 4;

  [[nodiscard]] double density() const { return static_cast<double>(n) / m; }
  friend bool operator==(const Sparsity&, const Sparsity&) = default;
};

inline constexpr Sparsity kSparsity14{1, 4};
inline constexpr Sparsity kSparsity24{2, 4};

/// True if `dense` already satisfies the N:M constraint (every aligned
/// M-block of every row has at most N non-zeros). The column count must be
/// a multiple of M.
template <typename T>
[[nodiscard]] bool is_valid_nm(const DenseMatrix<T>& dense, Sparsity sp) {
  if (dense.cols() % sp.m != 0) return false;
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t b = 0; b < dense.cols() / sp.m; ++b) {
      unsigned nnz = 0;
      for (unsigned j = 0; j < sp.m; ++j)
        if (dense.at(r, b * sp.m + j) != T{}) ++nnz;
      if (nnz > sp.n) return false;
    }
  return true;
}

/// Structured-sparse matrix in padded block storage.
template <typename T>
class NmMatrix {
 public:
  /// Builds from a dense matrix that must already satisfy N:M. Columns are
  /// padded up to a multiple of M with zeros.
  static NmMatrix from_dense(const DenseMatrix<T>& dense, Sparsity sp) {
    NmMatrix out(dense.rows(), dense.cols(), sp);
    for (std::size_t r = 0; r < dense.rows(); ++r)
      for (std::size_t b = 0; b < out.blocks_per_row(); ++b) {
        unsigned slot = 0;
        for (unsigned j = 0; j < sp.m; ++j) {
          const std::size_t c = b * sp.m + j;
          if (c >= dense.cols()) break;
          const T v = dense.at(r, c);
          if (v == T{}) continue;
          IMAC_CHECK(slot < sp.n, "matrix violates the N:M constraint");
          out.value_at(r, b, slot) = v;
          out.index_at(r, b, slot) = static_cast<std::uint8_t>(j);
          ++slot;
        }
        // Padding slots keep index m-1: a harmless in-block position whose
        // zero value contributes nothing (mirrors fixed-stride kernels).
        for (; slot < sp.n; ++slot) out.index_at(r, b, slot) = static_cast<std::uint8_t>(sp.m - 1);
      }
    return out;
  }

  /// Magnitude-based pruning: keeps the N largest-|value| elements of each
  /// M-block. This reproduces the *structure* of the paper's
  /// TensorFlow-pruned CNN weights (see DESIGN.md substitutions).
  static NmMatrix prune_from_dense(const DenseMatrix<T>& dense, Sparsity sp) {
    DenseMatrix<T> pruned = dense;
    const std::size_t blocks = ceil_div(dense.cols(), sp.m);
    for (std::size_t r = 0; r < dense.rows(); ++r)
      for (std::size_t b = 0; b < blocks; ++b) {
        // Select the N largest magnitudes in this block (stable for ties).
        std::vector<unsigned> keep;
        for (unsigned round = 0; round < sp.n; ++round) {
          int best = -1;
          for (unsigned j = 0; j < sp.m; ++j) {
            const std::size_t c = b * sp.m + j;
            if (c >= dense.cols()) break;
            bool kept = false;
            for (unsigned kj : keep) kept = kept || kj == j;
            if (kept) continue;
            if (best < 0 || std::abs(dense.at(r, c)) > std::abs(dense.at(r, b * sp.m + best)))
              best = static_cast<int>(j);
          }
          if (best >= 0) keep.push_back(static_cast<unsigned>(best));
        }
        for (unsigned j = 0; j < sp.m; ++j) {
          const std::size_t c = b * sp.m + j;
          if (c >= dense.cols()) break;
          bool kept = false;
          for (unsigned kj : keep) kept = kept || kj == j;
          if (!kept) pruned.at(r, c) = T{};
        }
      }
    return from_dense(pruned, sp);
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  /// Logical (unpadded) column count.
  [[nodiscard]] std::size_t cols() const { return cols_; }
  /// Column count padded to a multiple of M.
  [[nodiscard]] std::size_t padded_cols() const { return blocks_ * sp_.m; }
  [[nodiscard]] Sparsity sparsity() const { return sp_; }
  [[nodiscard]] std::size_t blocks_per_row() const { return blocks_; }
  /// Stored slots per row (N per block, padding included).
  [[nodiscard]] std::size_t slots_per_row() const { return blocks_ * sp_.n; }

  [[nodiscard]] T& value_at(std::size_t r, std::size_t block, unsigned slot) {
    return values_[offset(r, block, slot)];
  }
  [[nodiscard]] const T& value_at(std::size_t r, std::size_t block, unsigned slot) const {
    return values_[offset(r, block, slot)];
  }
  /// Local column index within the block, in [0, M).
  [[nodiscard]] std::uint8_t& index_at(std::size_t r, std::size_t block, unsigned slot) {
    return indices_[offset(r, block, slot)];
  }
  [[nodiscard]] std::uint8_t index_at(std::size_t r, std::size_t block, unsigned slot) const {
    return indices_[offset(r, block, slot)];
  }

  /// Reconstructs the dense equivalent (logical size, padding dropped).
  [[nodiscard]] DenseMatrix<T> to_dense() const {
    DenseMatrix<T> out(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t b = 0; b < blocks_; ++b)
        for (unsigned s = 0; s < sp_.n; ++s) {
          const T v = value_at(r, b, s);
          if (v == T{}) continue;
          const std::size_t c = b * sp_.m + index_at(r, b, s);
          IMAC_ASSERT(c < cols_, "stored non-zero lands in padding");
          out.at(r, c) += v;
        }
    return out;
  }

  /// Number of stored non-zero values (excluding padding slots).
  [[nodiscard]] std::size_t nnz() const {
    std::size_t count = 0;
    for (const T& v : values_)
      if (v != T{}) ++count;
    return count;
  }

 private:
  NmMatrix(std::size_t rows, std::size_t cols, Sparsity sp)
      : rows_(rows), cols_(cols), sp_(sp), blocks_(ceil_div(cols, sp.m)) {
    IMAC_CHECK(sp.n >= 1 && sp.m >= sp.n, "sparsity must satisfy 1 <= N <= M");
    values_.assign(rows_ * blocks_ * sp_.n, T{});
    indices_.assign(rows_ * blocks_ * sp_.n, 0);
  }

  [[nodiscard]] std::size_t offset(std::size_t r, std::size_t block, unsigned slot) const {
    IMAC_CHECK(r < rows_ && block < blocks_ && slot < sp_.n, "NmMatrix index out of range");
    return (r * blocks_ + block) * sp_.n + slot;
  }

  std::size_t rows_;
  std::size_t cols_;
  Sparsity sp_;
  std::size_t blocks_;
  std::vector<T> values_;
  std::vector<std::uint8_t> indices_;
};

/// Reference sparse x dense product via densification (golden model).
template <typename T>
[[nodiscard]] DenseMatrix<T> spmm_reference(const NmMatrix<T>& a, const DenseMatrix<T>& b) {
  return matmul_reference(a.to_dense(), b);
}

}  // namespace indexmac::sparse
