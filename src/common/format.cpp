#include "common/format.h"

#include <charconv>
#include <sstream>
#include <system_error>

#include "common/error.h"

namespace indexmac {

void TextTable::set_header(std::vector<std::string> header) { header_ = std::move(header); }

void TextTable::add_row(std::vector<std::string> row) {
  IMAC_CHECK(header_.empty() || row.size() == header_.size(),
             "table row width must match header width");
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&widths](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i] << std::string(widths[i] - row[i].size(), ' ');
      if (i + 1 < row.size()) out << "  ";
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

namespace {

/// std::to_chars with a given chars_format; the buffer covers any double
/// at the precisions used in this codebase (<= 64 significant chars).
std::string to_chars_double(double v, std::chars_format fmt, int precision) {
  char buf[512];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v, fmt, precision);
  IMAC_ASSERT(ec == std::errc{}, "double formatting buffer exhausted");
  return std::string(buf, ptr);
}

}  // namespace

std::string fmt_fixed(double v, int digits) {
  return to_chars_double(v, std::chars_format::fixed, digits);
}

std::string fmt_general(double v, int precision) {
  return to_chars_double(v, std::chars_format::general, precision);
}

double parse_double(const std::string& text, const char* what) {
  double value = 0;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  IMAC_CHECK(ec == std::errc{} && ptr == last && !text.empty(),
             std::string("bad ") + what + " \"" + text + "\" (expected a C-locale number)");
  return value;
}

std::string fmt_speedup(double v) { return fmt_fixed(v, 2) + "x"; }

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  const std::size_t n = digits.size();
  for (std::size_t i = 0; i < n; ++i) {
    out += digits[i];
    const std::size_t rem = n - 1 - i;
    if (rem > 0 && rem % 3 == 0) out += ',';
  }
  return out;
}

}  // namespace indexmac
