// Bit-manipulation helpers used by the ISA encoder/decoder and simulators.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/error.h"

namespace indexmac {

/// Extract bits [hi:lo] (inclusive) of `value`, right-aligned.
constexpr std::uint32_t bits(std::uint32_t value, unsigned hi, unsigned lo) {
  return (value >> lo) & ((hi - lo == 31u) ? ~0u : ((1u << (hi - lo + 1)) - 1u));
}

/// Extract a single bit.
constexpr std::uint32_t bit(std::uint32_t value, unsigned pos) { return (value >> pos) & 1u; }

/// Sign-extend the low `width` bits of `value` to 64 bits.
constexpr std::int64_t sign_extend(std::uint64_t value, unsigned width) {
  const std::uint64_t mask = (width >= 64) ? ~0ull : ((1ull << width) - 1ull);
  const std::uint64_t sign = 1ull << (width - 1);
  const std::uint64_t v = value & mask;
  return static_cast<std::int64_t>((v ^ sign) - sign);
}

/// True if `value` fits in a signed immediate of `width` bits.
constexpr bool fits_signed(std::int64_t value, unsigned width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return value >= lo && value <= hi;
}

/// True if `value` fits in an unsigned immediate of `width` bits.
constexpr bool fits_unsigned(std::uint64_t value, unsigned width) {
  return width >= 64 || value < (1ull << width);
}

/// True if `v` is a power of two (and non-zero).
constexpr bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// log2 of a power of two.
constexpr unsigned log2_exact(std::uint64_t v) {
  unsigned n = 0;
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

/// Round `v` up to a multiple of `m` (m > 0).
constexpr std::uint64_t round_up(std::uint64_t v, std::uint64_t m) {
  return ((v + m - 1) / m) * m;
}

/// Ceiling division for positive integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) { return (a + b - 1) / b; }

/// CRC-32 (reflected polynomial 0xEDB88320, the zlib/PNG variant) over
/// `size` bytes, seedable for incremental computation. Guards the
/// result-store journal records against on-disk corruption.
inline std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc ^= bytes[i];
    for (int b = 0; b < 8; ++b) crc = (crc >> 1) ^ (0xEDB88320u & (0u - (crc & 1u)));
  }
  return ~crc;
}

}  // namespace indexmac
