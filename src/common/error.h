// Error handling for the indexmac library.
//
// Library-level misuse (bad configuration, malformed programs, illegal
// instructions reaching a simulator) raises SimError; internal invariant
// violations use IMAC_ASSERT which also throws so tests can observe them.
#pragma once

#include <stdexcept>
#include <string>

namespace indexmac {

/// Exception thrown for all user-visible error conditions in the library.
class SimError : public std::runtime_error {
 public:
  explicit SimError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void raise(const std::string& what) { throw SimError(what); }

}  // namespace indexmac

/// Check a condition that guards against API misuse; throws SimError.
#define IMAC_CHECK(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) ::indexmac::raise(std::string("check failed: ") + msg); \
  } while (0)

/// Internal invariant; failure indicates a library bug.
#define IMAC_ASSERT(cond, msg)                                                    \
  do {                                                                            \
    if (!(cond)) ::indexmac::raise(std::string("internal invariant: ") + (msg)); \
  } while (0)
