// Minimal fixed-width table formatting used by benches and examples to print
// paper-style result tables without external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace indexmac {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row; column count of all rows must match it.
  void set_header(std::vector<std::string> header);

  /// Appends a data row.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places (no locale surprises).
[[nodiscard]] std::string fmt_fixed(double v, int digits);

/// Formats "1.95x"-style speedup cells.
[[nodiscard]] std::string fmt_speedup(double v);

/// Formats a large count with thousands separators ("12,345,678").
[[nodiscard]] std::string fmt_count(std::uint64_t v);

}  // namespace indexmac
