// Minimal fixed-width table formatting used by benches and examples to print
// paper-style result tables without external dependencies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace indexmac {

/// Accumulates rows of string cells and renders an aligned ASCII table.
class TextTable {
 public:
  /// Sets the header row; column count of all rows must match it.
  void set_header(std::vector<std::string> header);

  /// Appends a data row.
  void add_row(std::vector<std::string> row);

  /// Renders the table with a separator under the header.
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places. Locale-independent: the
/// decimal separator is always '.', regardless of LC_NUMERIC — CSV/JSON
/// reports and golden byte-for-byte diffs must not drift on comma-decimal
/// locales (implemented on std::to_chars, never printf).
[[nodiscard]] std::string fmt_fixed(double v, int digits);

/// Shortest-form general formatting, equivalent to printf("%.*g") in the
/// C locale (std::to_chars, chars_format::general). Used for JSON number
/// emission.
[[nodiscard]] std::string fmt_general(double v, int precision);

/// Locale-independent full-string double parse (std::from_chars): the
/// whole of `text` must be one finite-syntax C-locale number. Throws
/// SimError naming `what` on empty, partial, or malformed input.
[[nodiscard]] double parse_double(const std::string& text, const char* what);

/// Formats "1.95x"-style speedup cells.
[[nodiscard]] std::string fmt_speedup(double v);

/// Formats a large count with thousands separators ("12,345,678").
[[nodiscard]] std::string fmt_count(std::uint64_t v);

}  // namespace indexmac
