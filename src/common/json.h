// Minimal JSON-subset parser for sweep specs and report emission.
//
// Supports objects, arrays, double-quoted strings (with \" \\ \/ \n \t
// escapes), integers/doubles, booleans and null — enough for declarative
// configuration files, with no external dependency. Parse errors throw
// SimError with a line-numbered message.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.h"

namespace indexmac {

/// A parsed JSON value. Objects keep insertion order so emitted JSON is
/// stable and diffs stay readable.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  [[nodiscard]] static JsonValue make_array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  [[nodiscard]] static JsonValue make_object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }

  /// Typed accessors; throw SimError when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  /// Number that must be a non-negative integer (sweep counts, unrolls...).
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;

  /// Object field access. `get` returns nullptr when absent.
  [[nodiscard]] const JsonValue* get(const std::string& key) const;
  /// Required field; throws SimError naming the missing key.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Builder helpers (arrays/objects only).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Serializes with 2-space indentation and deterministic member order
  /// (insertion order), ending without a trailing newline.
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(std::string& out, int indent) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses one JSON document; trailing non-whitespace is an error.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace indexmac
