#include "common/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

namespace indexmac {
namespace {

const char* kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    raise("json: " + what + " (line " + std::to_string(line_) + ")");
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') ++line_;
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue out = JsonValue::make_object();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      if (peek() != '"') fail("object key must be a string");
      std::string key = parse_string();
      expect(':');
      if (out.get(key) != nullptr) fail("duplicate object key \"" + key + "\"");
      out.set(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return out;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue out = JsonValue::make_array();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return out;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\n') fail("unterminated string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        default: fail(std::string("unsupported escape '\\") + esc + "'");
      }
    }
    fail("unterminated string");
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("invalid value");
    // std::from_chars, not std::stod: stod honours LC_NUMERIC, so under a
    // comma-decimal locale it would stop at the '.' and silently truncate
    // every fractional constant in a spec.
    const std::string token = text_.substr(start, pos_ - start);
    double value = 0;
    const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec != std::errc{} || ptr != token.data() + token.size())
      fail("invalid number \"" + token + "\"");
    return JsonValue(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1;
};

void dump_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out.push_back(c);
    }
  }
  out.push_back('"');
}

}  // namespace

bool JsonValue::as_bool() const {
  IMAC_CHECK(kind_ == Kind::kBool, std::string("json: expected bool, got ") + kind_name(kind_));
  return bool_;
}

double JsonValue::as_number() const {
  IMAC_CHECK(kind_ == Kind::kNumber,
             std::string("json: expected number, got ") + kind_name(kind_));
  return number_;
}

std::uint64_t JsonValue::as_uint() const {
  const double n = as_number();
  IMAC_CHECK(n >= 0 && n == std::floor(n) && n <= 1e15,
             "json: expected a non-negative integer");
  return static_cast<std::uint64_t>(n);
}

const std::string& JsonValue::as_string() const {
  IMAC_CHECK(kind_ == Kind::kString,
             std::string("json: expected string, got ") + kind_name(kind_));
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  IMAC_CHECK(kind_ == Kind::kArray, std::string("json: expected array, got ") + kind_name(kind_));
  return array_;
}

const JsonValue* JsonValue::get(const std::string& key) const {
  IMAC_CHECK(kind_ == Kind::kObject,
             std::string("json: expected object, got ") + kind_name(kind_));
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = get(key);
  IMAC_CHECK(v != nullptr, "json: missing required key \"" + key + "\"");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  IMAC_CHECK(kind_ == Kind::kObject,
             std::string("json: expected object, got ") + kind_name(kind_));
  return object_;
}

void JsonValue::push_back(JsonValue v) {
  IMAC_CHECK(kind_ == Kind::kArray, "json: push_back on a non-array");
  array_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  IMAC_CHECK(kind_ == Kind::kObject, "json: set on a non-object");
  object_.emplace_back(std::move(key), std::move(v));
}

void JsonValue::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (kind_) {
    case Kind::kNull: out += "null"; break;
    case Kind::kBool: out += bool_ ? "true" : "false"; break;
    case Kind::kNumber: {
      char buf[64];
      if (number_ == std::floor(number_) && std::abs(number_) < 1e15) {
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(number_));
        out += buf;
      } else {
        // to_chars(general, 10) == printf("%.10g") in the C locale; the
        // printf form would emit a ',' decimal separator under
        // comma-decimal LC_NUMERIC and break byte-stable reports.
        const auto [ptr, ec] =
            std::to_chars(buf, buf + sizeof buf, number_, std::chars_format::general, 10);
        IMAC_ASSERT(ec == std::errc{}, "json: number formatting buffer exhausted");
        out.append(buf, ptr);
      }
      break;
    }
    case Kind::kString: dump_string(out, string_); break;
    case Kind::kArray:
      if (array_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        out += pad_in;
        array_[i].dump_to(out, indent + 1);
        out += i + 1 < array_.size() ? ",\n" : "\n";
      }
      out += pad + "]";
      break;
    case Kind::kObject:
      if (object_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        out += pad_in;
        dump_string(out, object_[i].first);
        out += ": ";
        object_[i].second.dump_to(out, indent + 1);
        out += i + 1 < object_.size() ? ",\n" : "\n";
      }
      out += pad + "}";
      break;
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out, 0);
  return out;
}

JsonValue parse_json(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace indexmac
