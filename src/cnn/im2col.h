// Real im2col lowering and a direct-convolution reference. The figure
// benches only need layer *dimensions*; this module carries actual feature
// maps through the same mapping so end-to-end tests can check that a
// convolution computed by the simulated vindexmac kernel equals a direct
// convolution with the same (pruned) weights.
#pragma once

#include <cstdint>
#include <vector>

#include "cnn/conv_layer.h"
#include "sparse/dense_matrix.h"

namespace indexmac::cnn {

/// A CHW feature map (batch 1).
struct FeatureMap {
  unsigned channels = 0;
  unsigned height = 0;
  unsigned width = 0;
  std::vector<float> data;  ///< data[(c*height + y)*width + x]

  FeatureMap() = default;
  FeatureMap(unsigned c, unsigned h, unsigned w)
      : channels(c), height(h), width(w), data(static_cast<std::size_t>(c) * h * w, 0.0f) {}

  [[nodiscard]] float at(unsigned c, unsigned y, unsigned x) const {
    IMAC_CHECK(c < channels && y < height && x < width, "FeatureMap index out of range");
    return data[(static_cast<std::size_t>(c) * height + y) * width + x];
  }
  [[nodiscard]] float& at(unsigned c, unsigned y, unsigned x) {
    IMAC_CHECK(c < channels && y < height && x < width, "FeatureMap index out of range");
    return data[(static_cast<std::size_t>(c) * height + y) * width + x];
  }

  /// Reads a pixel with zero padding outside the map.
  [[nodiscard]] float padded(unsigned c, int y, int x) const {
    if (y < 0 || x < 0 || y >= static_cast<int>(height) || x >= static_cast<int>(width))
      return 0.0f;
    return at(c, static_cast<unsigned>(y), static_cast<unsigned>(x));
  }
};

/// Deterministic random feature map in [-1, 1].
[[nodiscard]] FeatureMap random_feature_map(unsigned channels, unsigned height, unsigned width,
                                            std::uint32_t seed);

/// Lowers `input` to the B matrix of layer's GEMM:
/// B[(c*kh + i)*kw + j, y*out_w + x] = input[c, y*s - ph + i, x*s - pw + j].
[[nodiscard]] sparse::DenseMatrix<float> im2col(const FeatureMap& input, const ConvLayer& layer);

/// Direct convolution (no GEMM): the golden model for end-to-end tests.
/// `weights` is [out_channels x in_channels*kh*kw], matching layer.gemm().
[[nodiscard]] FeatureMap conv_reference(const FeatureMap& input, const ConvLayer& layer,
                                        const sparse::DenseMatrix<float>& weights);

/// Reinterprets a GEMM result C [out_channels x out_h*out_w] as a map.
[[nodiscard]] FeatureMap gemm_result_to_map(const sparse::DenseMatrix<float>& c,
                                            const ConvLayer& layer);

}  // namespace indexmac::cnn
