// Layer tables for ResNet50, DenseNet121 and InceptionV3 (standard
// torchvision geometry, batch 1, ImageNet inputs). These reproduce the
// workloads of the paper's evaluation; weights themselves are synthetic
// (see DESIGN.md substitutions).
#include <map>

#include "cnn/conv_layer.h"

namespace indexmac::cnn {
namespace {

/// Convenience builder collecting layers while tracking feature-map state.
class Net {
 public:
  Net(unsigned channels, unsigned hw) : channels_(channels), h_(hw), w_(hw) {}

  /// Adds a conv layer that consumes the current feature map.
  void conv(const std::string& name, unsigned out_c, unsigned kh, unsigned kw, unsigned stride,
            unsigned ph, unsigned pw, bool advance = true) {
    ConvLayer layer{name, channels_, out_c, kh, kw, stride, ph, pw, h_, w_};
    const unsigned oh = layer.out_h();
    const unsigned ow = layer.out_w();
    layers_.push_back(std::move(layer));
    if (advance) {
      channels_ = out_c;
      h_ = oh;
      w_ = ow;
    }
  }

  /// Square-kernel shorthand.
  void conv(const std::string& name, unsigned out_c, unsigned k, unsigned stride, unsigned pad,
            bool advance = true) {
    conv(name, out_c, k, k, stride, pad, pad, advance);
  }

  /// Pooling: updates geometry only (no GEMM).
  void pool(unsigned k, unsigned stride, unsigned pad) {
    h_ = (h_ + 2 * pad - k) / stride + 1;
    w_ = (w_ + 2 * pad - k) / stride + 1;
  }

  void set_channels(unsigned c) { channels_ = c; }
  [[nodiscard]] unsigned channels() const { return channels_; }
  [[nodiscard]] unsigned height() const { return h_; }
  /// Appends a fully-specified layer without touching the tracked state
  /// (side branches such as projection shortcuts).
  void add_raw(ConvLayer layer) { layers_.push_back(std::move(layer)); }
  [[nodiscard]] std::vector<ConvLayer> take() { return std::move(layers_); }

 private:
  unsigned channels_;
  unsigned h_;
  unsigned w_;
  std::vector<ConvLayer> layers_;
};

}  // namespace

std::vector<LayerGemm> unique_gemms(const CnnModel& model) {
  std::vector<LayerGemm> out;
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, std::size_t> index;
  for (const ConvLayer& layer : model.layers) {
    const kernels::GemmDims dims = layer.gemm();
    const auto key = std::make_tuple(dims.rows_a, dims.k, dims.cols_b);
    if (const auto it = index.find(key); it != index.end()) {
      ++out[it->second].count;
    } else {
      index.emplace(key, out.size());
      out.push_back(LayerGemm{layer, dims, 1});
    }
  }
  return out;
}

CnnModel resnet50() {
  Net net(3, 224);
  net.conv("conv1", 64, 7, 2, 3);
  net.pool(3, 2, 1);  // 112 -> 56

  struct Stage {
    unsigned blocks, width, out;
  };
  const Stage stages[4] = {{3, 64, 256}, {4, 128, 512}, {6, 256, 1024}, {3, 512, 2048}};
  for (unsigned s = 0; s < 4; ++s) {
    const Stage& st = stages[s];
    for (unsigned b = 0; b < st.blocks; ++b) {
      const std::string base = "layer" + std::to_string(s + 1) + "." + std::to_string(b);
      const unsigned stride = (s > 0 && b == 0) ? 2 : 1;
      const unsigned block_in_c = net.channels();
      const unsigned block_in_hw = net.height();
      net.conv(base + ".conv1", st.width, 1, 1, 0);
      net.conv(base + ".conv2", st.width, 3, stride, 1);
      net.conv(base + ".conv3", st.out, 1, 1, 0);
      if (b == 0) {
        // Projection shortcut: 1x1 conv on the block input (strided when
        // the block downsamples). Side branch: does not advance the state.
        net.add_raw(ConvLayer{base + ".downsample", block_in_c, st.out, 1, 1, stride, 0, 0,
                              block_in_hw, block_in_hw});
      }
    }
  }
  return CnnModel{"ResNet50", net.take()};
}

CnnModel mobilenetv1() {
  Net net(3, 224);
  net.conv("conv1", 32, 3, 2, 1);  // 224 -> 112

  // One depthwise-separable block: a 3x3 depthwise conv (modeled as the
  // [C x 9] GEMM proxy of its stacked per-channel filters, see
  // conv_layer.h) followed by a 1x1 pointwise conv to out_c channels.
  unsigned block = 0;
  auto separable = [&net, &block](unsigned out_c, unsigned stride) {
    const std::string base = "block" + std::to_string(++block);
    const unsigned c = net.channels();
    const unsigned hw = net.height();
    ConvLayer dw{base + ".dw", 1, c, 3, 3, stride, 1, 1, hw, hw};
    const unsigned out_hw = dw.out_h();
    net.add_raw(std::move(dw));
    net.set_channels(c);
    // Advance the tracked geometry through the depthwise stride, then the
    // pointwise conv consumes the downsampled map.
    ConvLayer pw{base + ".pw", c, out_c, 1, 1, 1, 0, 0, out_hw, out_hw};
    net.add_raw(std::move(pw));
    net.set_channels(out_c);
    while (net.height() > out_hw) net.pool(1, 2, 0);  // geometry bookkeeping only
  };

  separable(64, 1);
  separable(128, 2);   // -> 56
  separable(128, 1);
  separable(256, 2);   // -> 28
  separable(256, 1);
  separable(512, 2);   // -> 14
  for (int i = 0; i < 5; ++i) separable(512, 1);
  separable(1024, 2);  // -> 7
  separable(1024, 1);
  return CnnModel{"MobileNetV1", net.take()};
}

CnnModel densenet121() {
  Net net(3, 224);
  net.conv("features.conv0", 64, 7, 2, 3);
  net.pool(3, 2, 1);  // -> 56

  const unsigned growth = 32;
  const unsigned block_sizes[4] = {6, 12, 24, 16};
  for (unsigned b = 0; b < 4; ++b) {
    for (unsigned l = 0; l < block_sizes[b]; ++l) {
      const std::string base =
          "denseblock" + std::to_string(b + 1) + ".denselayer" + std::to_string(l + 1);
      const unsigned in_c = net.channels();
      net.conv(base + ".conv1", 4 * growth, 1, 1, 0);       // bottleneck
      net.conv(base + ".conv2", growth, 3, 1, 1);           // growth output
      net.set_channels(in_c + growth);                      // dense concatenation
    }
    if (b < 3) {
      net.conv("transition" + std::to_string(b + 1) + ".conv", net.channels() / 2, 1, 1, 0);
      net.pool(2, 2, 0);
    }
  }
  return CnnModel{"DenseNet121", net.take()};
}

CnnModel inceptionv3() {
  Net net(3, 299);
  net.conv("Conv2d_1a_3x3", 32, 3, 2, 0);   // 299 -> 149
  net.conv("Conv2d_2a_3x3", 32, 3, 1, 0);   // -> 147
  net.conv("Conv2d_2b_3x3", 64, 3, 1, 1);   // -> 147
  net.pool(3, 2, 0);                        // -> 73
  net.conv("Conv2d_3b_1x1", 80, 1, 1, 0);
  net.conv("Conv2d_4a_3x3", 192, 3, 1, 0);  // -> 71
  net.pool(3, 2, 0);                        // -> 35

  // Branch helper: emits a chain of convs starting from the block input
  // geometry (each inception branch consumes the block input).
  struct Branch {
    unsigned channels;
    unsigned h, w;
    std::vector<ConvLayer> layers;
    void conv(const std::string& name, unsigned out_c, unsigned kh, unsigned kw, unsigned stride,
              unsigned ph, unsigned pw) {
      ConvLayer layer{name, channels, out_c, kh, kw, stride, ph, pw, h, w};
      const unsigned oh = layer.out_h();
      const unsigned ow = layer.out_w();
      layers.push_back(std::move(layer));
      channels = out_c;
      h = oh;
      w = ow;
    }
  };
  std::vector<ConvLayer> extra;
  unsigned cur_c = net.channels();
  unsigned cur_hw = 35;

  auto run_branches =
      [&extra, &cur_c, &cur_hw](
          const std::string& mixed,
          const std::vector<std::vector<std::tuple<std::string, unsigned, unsigned, unsigned,
                                                   unsigned, unsigned, unsigned>>>& branches,
          unsigned out_channels, unsigned out_hw) {
        for (const auto& branch : branches) {
          Branch b{cur_c, cur_hw, cur_hw, {}};
          for (const auto& [name, out_c, kh, kw, stride, ph, pw] : branch)
            b.conv(mixed + "." + name, out_c, kh, kw, stride, ph, pw);
          for (ConvLayer& l : b.layers) extra.push_back(std::move(l));
        }
        cur_c = out_channels;
        cur_hw = out_hw;
      };

  using Spec = std::tuple<std::string, unsigned, unsigned, unsigned, unsigned, unsigned, unsigned>;
  auto inception_a = [&run_branches](const std::string& mixed, unsigned pool_features,
                                     unsigned out_c) {
    run_branches(mixed,
                 {{Spec{"branch1x1", 64, 1, 1, 1, 0, 0}},
                  {Spec{"branch5x5_1", 48, 1, 1, 1, 0, 0}, Spec{"branch5x5_2", 64, 5, 5, 1, 2, 2}},
                  {Spec{"branch3x3dbl_1", 64, 1, 1, 1, 0, 0},
                   Spec{"branch3x3dbl_2", 96, 3, 3, 1, 1, 1},
                   Spec{"branch3x3dbl_3", 96, 3, 3, 1, 1, 1}},
                  {Spec{"branch_pool", pool_features, 1, 1, 1, 0, 0}}},
                 out_c, 35);
  };
  inception_a("Mixed_5b", 32, 256);
  inception_a("Mixed_5c", 64, 288);
  inception_a("Mixed_5d", 64, 288);

  // InceptionB: 35 -> 17.
  run_branches("Mixed_6a",
               {{Spec{"branch3x3", 384, 3, 3, 2, 0, 0}},
                {Spec{"branch3x3dbl_1", 64, 1, 1, 1, 0, 0},
                 Spec{"branch3x3dbl_2", 96, 3, 3, 1, 1, 1},
                 Spec{"branch3x3dbl_3", 96, 3, 3, 2, 0, 0}}},
               768, 17);

  auto inception_c = [&run_branches](const std::string& mixed, unsigned c7) {
    run_branches(
        mixed,
        {{Spec{"branch1x1", 192, 1, 1, 1, 0, 0}},
         {Spec{"branch7x7_1", c7, 1, 1, 1, 0, 0}, Spec{"branch7x7_2", c7, 1, 7, 1, 0, 3},
          Spec{"branch7x7_3", 192, 7, 1, 1, 3, 0}},
         {Spec{"branch7x7dbl_1", c7, 1, 1, 1, 0, 0}, Spec{"branch7x7dbl_2", c7, 7, 1, 1, 3, 0},
          Spec{"branch7x7dbl_3", c7, 1, 7, 1, 0, 3}, Spec{"branch7x7dbl_4", c7, 7, 1, 1, 3, 0},
          Spec{"branch7x7dbl_5", 192, 1, 7, 1, 0, 3}},
         {Spec{"branch_pool", 192, 1, 1, 1, 0, 0}}},
        768, 17);
  };
  inception_c("Mixed_6b", 128);
  inception_c("Mixed_6c", 160);
  inception_c("Mixed_6d", 160);
  inception_c("Mixed_6e", 192);

  // InceptionD: 17 -> 8.
  run_branches("Mixed_7a",
               {{Spec{"branch3x3_1", 192, 1, 1, 1, 0, 0}, Spec{"branch3x3_2", 320, 3, 3, 2, 0, 0}},
                {Spec{"branch7x7x3_1", 192, 1, 1, 1, 0, 0},
                 Spec{"branch7x7x3_2", 192, 1, 7, 1, 0, 3},
                 Spec{"branch7x7x3_3", 192, 7, 1, 1, 3, 0},
                 Spec{"branch7x7x3_4", 192, 3, 3, 2, 0, 0}}},
               1280, 8);

  auto inception_e = [&run_branches](const std::string& mixed) {
    run_branches(mixed,
                 {{Spec{"branch1x1", 320, 1, 1, 1, 0, 0}},
                  {Spec{"branch3x3_1", 384, 1, 1, 1, 0, 0},
                   Spec{"branch3x3_2a", 384, 1, 3, 1, 0, 1},
                   Spec{"branch3x3_2b", 384, 3, 1, 1, 1, 0}},
                  {Spec{"branch3x3dbl_1", 448, 1, 1, 1, 0, 0},
                   Spec{"branch3x3dbl_2", 384, 3, 3, 1, 1, 1},
                   Spec{"branch3x3dbl_3a", 384, 1, 3, 1, 0, 1},
                   Spec{"branch3x3dbl_3b", 384, 3, 1, 1, 1, 0}},
                  {Spec{"branch_pool", 192, 1, 1, 1, 0, 0}}},
                 2048, 8);
  };
  inception_e("Mixed_7b");
  inception_e("Mixed_7c");

  CnnModel model{"InceptionV3", net.take()};
  for (ConvLayer& l : extra) model.layers.push_back(std::move(l));
  return model;
}

}  // namespace indexmac::cnn
