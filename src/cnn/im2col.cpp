#include "cnn/im2col.h"

#include <random>

namespace indexmac::cnn {

FeatureMap random_feature_map(unsigned channels, unsigned height, unsigned width,
                              std::uint32_t seed) {
  FeatureMap map(channels, height, width);
  std::mt19937 rng(seed);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (float& v : map.data) v = dist(rng);
  return map;
}

sparse::DenseMatrix<float> im2col(const FeatureMap& input, const ConvLayer& layer) {
  IMAC_CHECK(input.channels == layer.in_channels && input.height == layer.in_h &&
                 input.width == layer.in_w,
             "feature map does not match the layer geometry");
  const unsigned oh = layer.out_h();
  const unsigned ow = layer.out_w();
  sparse::DenseMatrix<float> b(layer.gemm().k, layer.gemm().cols_b);
  for (unsigned c = 0; c < layer.in_channels; ++c)
    for (unsigned i = 0; i < layer.kernel_h; ++i)
      for (unsigned j = 0; j < layer.kernel_w; ++j) {
        const std::size_t row = (static_cast<std::size_t>(c) * layer.kernel_h + i) * layer.kernel_w + j;
        for (unsigned y = 0; y < oh; ++y)
          for (unsigned x = 0; x < ow; ++x) {
            const int sy = static_cast<int>(y * layer.stride + i) - static_cast<int>(layer.pad_h);
            const int sx = static_cast<int>(x * layer.stride + j) - static_cast<int>(layer.pad_w);
            b.at(row, static_cast<std::size_t>(y) * ow + x) = input.padded(c, sy, sx);
          }
      }
  return b;
}

FeatureMap conv_reference(const FeatureMap& input, const ConvLayer& layer,
                          const sparse::DenseMatrix<float>& weights) {
  IMAC_CHECK(weights.rows() == layer.out_channels && weights.cols() == layer.gemm().k,
             "weight matrix does not match the layer");
  const unsigned oh = layer.out_h();
  const unsigned ow = layer.out_w();
  FeatureMap out(layer.out_channels, oh, ow);
  for (unsigned o = 0; o < layer.out_channels; ++o)
    for (unsigned y = 0; y < oh; ++y)
      for (unsigned x = 0; x < ow; ++x) {
        float acc = 0.0f;
        for (unsigned c = 0; c < layer.in_channels; ++c)
          for (unsigned i = 0; i < layer.kernel_h; ++i)
            for (unsigned j = 0; j < layer.kernel_w; ++j) {
              const std::size_t widx =
                  (static_cast<std::size_t>(c) * layer.kernel_h + i) * layer.kernel_w + j;
              const int sy = static_cast<int>(y * layer.stride + i) - static_cast<int>(layer.pad_h);
              const int sx = static_cast<int>(x * layer.stride + j) - static_cast<int>(layer.pad_w);
              acc += weights.at(o, widx) * input.padded(c, sy, sx);
            }
        out.at(o, y, x) = acc;
      }
  return out;
}

FeatureMap gemm_result_to_map(const sparse::DenseMatrix<float>& c, const ConvLayer& layer) {
  const unsigned oh = layer.out_h();
  const unsigned ow = layer.out_w();
  IMAC_CHECK(c.rows() == layer.out_channels && c.cols() == static_cast<std::size_t>(oh) * ow,
             "GEMM result does not match the layer output geometry");
  FeatureMap out(layer.out_channels, oh, ow);
  for (unsigned o = 0; o < layer.out_channels; ++o)
    for (unsigned y = 0; y < oh; ++y)
      for (unsigned x = 0; x < ow; ++x)
        out.at(o, y, x) = c.at(o, static_cast<std::size_t>(y) * ow + x);
  return out;
}

}  // namespace indexmac::cnn
