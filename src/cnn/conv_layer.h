// Convolution-layer descriptors and the conv -> GEMM (im2col) mapping used
// by the paper's evaluation: each conv layer becomes C = A x B with
//   A = [out_channels x in_channels*kh*kw]   (structured-sparse weights)
//   B = [in_channels*kh*kw x out_h*out_w]    (dense im2col input features)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "kernels/layout.h"

namespace indexmac::cnn {

/// One convolution layer (batch 1). Non-square kernels (Inception's 1x7 /
/// 7x1) carry separate h/w geometry.
struct ConvLayer {
  std::string name;
  unsigned in_channels = 0;
  unsigned out_channels = 0;
  unsigned kernel_h = 1;
  unsigned kernel_w = 1;
  unsigned stride = 1;
  unsigned pad_h = 0;
  unsigned pad_w = 0;
  unsigned in_h = 0;
  unsigned in_w = 0;

  [[nodiscard]] unsigned out_h() const {
    IMAC_CHECK(in_h + 2 * pad_h >= kernel_h, "conv does not fit input height");
    return (in_h + 2 * pad_h - kernel_h) / stride + 1;
  }
  [[nodiscard]] unsigned out_w() const {
    IMAC_CHECK(in_w + 2 * pad_w >= kernel_w, "conv does not fit input width");
    return (in_w + 2 * pad_w - kernel_w) / stride + 1;
  }

  /// GEMM dimensions under the im2col mapping.
  [[nodiscard]] kernels::GemmDims gemm() const {
    return kernels::GemmDims{
        .rows_a = out_channels,
        .k = static_cast<std::size_t>(in_channels) * kernel_h * kernel_w,
        .cols_b = static_cast<std::size_t>(out_h()) * out_w(),
    };
  }

  /// Multiply-accumulate count of the dense layer (2*MACs = FLOPs).
  [[nodiscard]] std::uint64_t macs() const {
    const auto g = gemm();
    return static_cast<std::uint64_t>(g.rows_a) * g.k * g.cols_b;
  }
};

/// A whole network: conv layers in execution order.
struct CnnModel {
  std::string name;
  std::vector<ConvLayer> layers;
};

/// One unique GEMM shape with its multiplicity in the network. Layers with
/// identical GEMM dimensions cost the same simulated time, so experiments
/// run each shape once and weight by count.
struct LayerGemm {
  ConvLayer representative;
  kernels::GemmDims dims;
  unsigned count = 1;
};

/// Groups a model's layers by GEMM shape, preserving first-occurrence order.
[[nodiscard]] std::vector<LayerGemm> unique_gemms(const CnnModel& model);

/// The three CNNs of the paper's evaluation (ImageNet geometry).
[[nodiscard]] CnnModel resnet50();      ///< 53 conv layers, 224x224 input
[[nodiscard]] CnnModel densenet121();   ///< 120 conv layers, 224x224 input
[[nodiscard]] CnnModel inceptionv3();   ///< 94 conv layers, 299x299 input

/// MobileNetV1 (width 1.0, 224x224): the depthwise/pointwise workload of
/// the related structured-sparsity evaluations. Depthwise 3x3 layers are
/// modeled as a [channels x 9] x [9 x out_hw] GEMM proxy (the stacked
/// per-channel filters; identical MAC count to the real grouped conv).
[[nodiscard]] CnnModel mobilenetv1();   ///< 27 conv layers

}  // namespace indexmac::cnn
