// GDB remote-serial-protocol stub over a functional Machine: the command/
// session layer (packet framing lives in debug/gdb_stub.h, sockets in
// serve/net.h). `imac_run gdb file.s` serves one debugger connection so a
// generated kernel can be breakpointed, single-stepped, and inspected with
// stock `riscv64-elf-gdb` ("target remote :PORT") or the stdlib-only
// client in tools/rsp_client.py.
//
// Protocol surface (enough for real debugging, single thread, no-ack mode
// supported):
//
//   qSupported / qXfer:features:read   handshake + target XML describing
//                                      x0..x31+pc, f0..f31, v0..v31+vl
//   g / G, p / P                       whole-file and per-register access
//   m / M                              memory read/write (MainMemory bytes)
//   c / s [addr]                       continue / step; stop replies:
//                                      T05swbreak:; (breakpoint), S05
//                                      (step), S02 (Ctrl-C interrupt),
//                                      S0b (SimError fault, e.g. pc left
//                                      the program), W00 (ebreak/ecall)
//   Z0 / z0                            software breakpoints by pc — checked
//                                      by the engines, never patched into
//                                      the program image
//   qRcmd ("monitor")                  retired / markers / symbols / engine
//                                      / fault — simulator introspection
//
// Execution engine: --engine threaded runs breakpoint-free basic blocks
// through the predecoded fast path and interpreter-steps only through
// blocks containing a breakpoint (ThreadedEngine::run_with_breakpoints),
// so debugging stays usable on long-running kernels; --engine interp is
// the golden reference. Register/memory state observed at a stop is
// bit-identical between the two by the engines' correctness contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "asm/text_assembler.h"
#include "fsim/breakpoints.h"
#include "fsim/engine.h"
#include "fsim/machine.h"
#include "fsim/threaded.h"
#include "mem/main_memory.h"

namespace indexmac::debug {

/// Register numbering of the target XML (contiguous; the g/G packet is the
/// concatenation of all of these in regnum order, little-endian hex).
inline constexpr unsigned kRegX0 = 0;        ///< x0..x31: 64-bit
inline constexpr unsigned kRegPc = 32;       ///< 64-bit
inline constexpr unsigned kRegF0 = 33;       ///< f0..f31: 32-bit fp32 bits
inline constexpr unsigned kRegV0 = 65;       ///< v0..v31: 512-bit (16 x u32 lanes)
inline constexpr unsigned kRegVl = 97;       ///< 32-bit
inline constexpr unsigned kNumDebugRegs = 98;

/// The target description served via qXfer:features:read:target.xml.
[[nodiscard]] const std::string& target_xml();

/// One debugger session over one Machine. Transport-free: handle() maps a
/// decoded packet payload to a reply payload, so tests drive it directly
/// and the socket loop in run_gdb_server stays thin.
class GdbSession {
 public:
  /// The session steps `machine` with `engine` semantics; `memory` must be
  /// the machine's backing store (M packets write it; Machine only exposes
  /// a const view); `assembled` additionally provides label symbols and
  /// marker pcs for qRcmd.
  GdbSession(const AssembledText& assembled, Machine& machine, MainMemory& memory,
             ExecEngine engine);

  /// Handles one packet payload, returns the reply payload ("" = unsupported
  /// packet, per protocol). SimErrors from malformed packets become "E.."
  /// replies; SimErrors raised by execution become "S0b" stops with the
  /// fault text retained for `monitor fault`.
  [[nodiscard]] std::string handle(std::string_view payload);

  /// Polled between execution slices during c/s so the transport can
  /// deliver a Ctrl-C (0x03) or the process a SIGINT; returning true stops
  /// with S02. Unset = uninterruptible until the program stops itself.
  void set_interrupt_poll(std::function<bool()> poll) { interrupt_poll_ = std::move(poll); }

  /// True once the debugger detached ('D') or killed ('k') the session.
  [[nodiscard]] bool finished() const { return finished_; }
  /// True when the last handle()d packet expects no reply at all ('k' —
  /// GDB closes without reading one; an empty packet would be misread as
  /// "unsupported").
  [[nodiscard]] bool reply_suppressed() const { return reply_suppressed_; }
  /// True once QStartNoAckMode was negotiated ('+'/'-' acks stop).
  [[nodiscard]] bool no_ack() const { return no_ack_; }

  [[nodiscard]] const BreakpointSet& breakpoints() const { return breakpoints_; }
  [[nodiscard]] const std::string& last_fault() const { return last_fault_; }

 private:
  [[nodiscard]] std::string resume(bool single_step, std::string_view addr_text);
  [[nodiscard]] std::string read_register(unsigned regnum) const;
  [[nodiscard]] bool write_register(unsigned regnum, std::string_view hex);
  [[nodiscard]] std::string monitor(std::string_view command);

  const AssembledText& assembled_;
  Machine& machine_;
  MainMemory& memory_;
  ThreadedEngine threaded_;  ///< built eagerly; used only when engine is threaded
  ExecEngine engine_;
  BreakpointSet breakpoints_;
  std::function<bool()> interrupt_poll_;
  std::string last_stop_ = "S05";  ///< reply to '?'
  std::string last_fault_;
  bool finished_ = false;
  bool no_ack_ = false;
  bool reply_suppressed_ = false;
  bool exited_ = false;  ///< program hit ebreak/ecall; further resumes reply W00
};

struct GdbServerOptions {
  std::uint16_t port = 0;       ///< 0 = kernel-assigned; see port_file
  std::string port_file;        ///< write the bound port here (harness handshake)
  ExecEngine engine = ExecEngine::kInterp;
  std::atomic<bool>* stop = nullptr;  ///< SIGINT/SIGTERM flag; exit 130
  bool quiet = false;
};

/// Binds 127.0.0.1, publishes the port, serves ONE debugger connection to
/// completion (client EOF, detach, or kill), and returns a process exit
/// code: 0 on a clean session, 130 when `*stop` was raised. Throws SimError
/// on setup failures (bad port file path, socket errors).
[[nodiscard]] int run_gdb_server(const AssembledText& assembled, MainMemory& memory,
                                 const GdbServerOptions& options);

}  // namespace indexmac::debug
