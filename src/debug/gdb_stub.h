// GDB remote-serial-protocol (RSP) packet layer: framing, checksums,
// escaping, and an incremental decoder — the transport-independent half of
// the debug stub (the session/command layer lives in debug/gdb_server.h).
//
// Wire format (GDB "Remote Protocol", appendix E of the manual):
//
//   packet     "$" payload-bytes "#" checksum
//   checksum   two lowercase hex digits: sum of payload bytes mod 256
//   escaping   0x7d ('}') introduces an escape; the next byte is the
//              original xor 0x20. '$', '#', '}' (and '*', reserved for
//              run-length encoding) must travel escaped. The checksum is
//              computed over the ESCAPED payload, exactly as transmitted.
//   acks       receiver answers '+' (good checksum) or '-' (retransmit
//              request) per packet until QStartNoAckMode is negotiated.
//   interrupt  a raw 0x03 byte between packets (GDB's Ctrl-C).
//
// Bytes between packets that are not '+'/'-'/0x03 are line noise by
// protocol definition and are skipped silently.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace indexmac::debug {

/// Upper bound on one packet's escaped payload. A debugger has no business
/// sending more (our advertised PacketSize is far smaller); a longer body
/// means a corrupt or hostile peer, and feeding it further would buffer
/// unbounded garbage — PacketBuffer raises SimError instead.
inline constexpr std::size_t kMaxPacketBytes = 1u << 20;

/// Mod-256 sum of `data` (the RSP packet checksum, over escaped bytes).
[[nodiscard]] std::uint8_t rsp_checksum(std::string_view data);

/// Escapes '$', '#', '}', '*' as "0x7d, byte^0x20".
[[nodiscard]] std::string rsp_escape(std::string_view payload);

/// Inverse of rsp_escape. Throws SimError on a trailing lone 0x7d (an
/// escape with no byte to apply it to — only a corrupt peer produces one).
[[nodiscard]] std::string rsp_unescape(std::string_view data);

/// Renders one complete packet: "$" + escape(payload) + "#" + checksum.
[[nodiscard]] std::string rsp_frame(std::string_view payload);

// --- hex helpers (RSP uses lowercase hex throughout) ----------------------

/// Bytes -> lowercase hex, two digits per byte.
[[nodiscard]] std::string bytes_to_hex(std::string_view bytes);

/// Hex -> bytes. Throws SimError on odd length or a non-hex digit.
[[nodiscard]] std::string hex_to_bytes(std::string_view hex);

/// Value -> `bytes`-wide little-endian hex (GDB register/memory order for a
/// little-endian target: least-significant byte first).
[[nodiscard]] std::string u64_to_hex_le(std::uint64_t value, unsigned bytes);

/// Little-endian hex (1..8 bytes, even digit count) -> value. Throws
/// SimError on bad digits or length.
[[nodiscard]] std::uint64_t hex_le_to_u64(std::string_view hex);

/// Big-endian hex number (the "addr"/"length" fields of m/M/Z packets, up
/// to 16 digits, no 0x prefix) -> value. Throws SimError on empty or
/// malformed input.
[[nodiscard]] std::uint64_t parse_hex_u64(std::string_view hex);

// --- incremental decoder --------------------------------------------------

/// Feed() raw received bytes; next() yields protocol events in order. A
/// packet split across arbitrarily many recv boundaries assembles exactly
/// once; a '$..#xx' frame whose checksum fails surfaces as kBadChecksum so
/// the session can answer '-' (retransmit request).
class PacketBuffer {
 public:
  enum class Kind : std::uint8_t {
    kPacket,       ///< well-formed packet; payload is UNESCAPED
    kBadChecksum,  ///< framed packet whose checksum failed; payload raw
    kAck,          ///< '+'
    kNak,          ///< '-' (peer requests retransmission)
    kInterrupt,    ///< raw 0x03 (GDB Ctrl-C)
  };
  struct Event {
    Kind kind;
    std::string payload;  ///< kPacket/kBadChecksum only
  };

  void feed(const char* data, std::size_t n) { buffer_.append(data, n); }
  void feed(std::string_view data) { buffer_.append(data); }

  /// Next complete event, or nullopt when more bytes are needed. Throws
  /// SimError when an in-flight packet body exceeds kMaxPacketBytes.
  [[nodiscard]] std::optional<Event> next();

  /// Bytes of an incomplete trailing frame (diagnostics).
  [[nodiscard]] std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

}  // namespace indexmac::debug
