#include "debug/gdb_stub.h"

#include "common/error.h"

namespace indexmac::debug {

namespace {

constexpr char kEscape = '\x7d';

[[nodiscard]] bool needs_escape(char c) {
  return c == '$' || c == '#' || c == '}' || c == '*';
}

[[nodiscard]] int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

constexpr char kHexDigits[] = "0123456789abcdef";

}  // namespace

std::uint8_t rsp_checksum(std::string_view data) {
  unsigned sum = 0;
  for (const char c : data) sum += static_cast<unsigned char>(c);
  return static_cast<std::uint8_t>(sum & 0xff);
}

std::string rsp_escape(std::string_view payload) {
  std::string out;
  out.reserve(payload.size());
  for (const char c : payload) {
    if (needs_escape(c)) {
      out.push_back(kEscape);
      out.push_back(static_cast<char>(c ^ 0x20));
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string rsp_unescape(std::string_view data) {
  std::string out;
  out.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i] == kEscape) {
      if (i + 1 >= data.size()) raise("RSP packet ends with a lone escape byte");
      out.push_back(static_cast<char>(data[++i] ^ 0x20));
    } else {
      out.push_back(data[i]);
    }
  }
  return out;
}

std::string rsp_frame(std::string_view payload) {
  const std::string escaped = rsp_escape(payload);
  const std::uint8_t sum = rsp_checksum(escaped);
  std::string out;
  out.reserve(escaped.size() + 4);
  out.push_back('$');
  out.append(escaped);
  out.push_back('#');
  out.push_back(kHexDigits[sum >> 4]);
  out.push_back(kHexDigits[sum & 0xf]);
  return out;
}

std::string bytes_to_hex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<unsigned char>(c);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::string hex_to_bytes(std::string_view hex) {
  if (hex.size() % 2 != 0)
    raise("RSP hex string has odd length " + std::to_string(hex.size()));
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0)
      raise("RSP hex string contains a non-hex digit: \"" + std::string(hex) + "\"");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

std::string u64_to_hex_le(std::uint64_t value, unsigned bytes) {
  std::string out;
  out.reserve(bytes * 2);
  for (unsigned i = 0; i < bytes; ++i) {
    const auto b = static_cast<unsigned char>((value >> (8 * i)) & 0xff);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

std::uint64_t hex_le_to_u64(std::string_view hex) {
  if (hex.empty() || hex.size() % 2 != 0 || hex.size() > 16)
    raise("RSP little-endian hex value has bad length " + std::to_string(hex.size()));
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0)
      raise("RSP hex value contains a non-hex digit: \"" + std::string(hex) + "\"");
    value |= static_cast<std::uint64_t>((hi << 4) | lo) << (8 * (i / 2));
  }
  return value;
}

std::uint64_t parse_hex_u64(std::string_view hex) {
  if (hex.empty() || hex.size() > 16)
    raise("RSP hex number has bad length " + std::to_string(hex.size()));
  std::uint64_t value = 0;
  for (const char c : hex) {
    const int d = hex_digit(c);
    if (d < 0) raise("RSP hex number contains a non-hex digit: \"" + std::string(hex) + "\"");
    value = (value << 4) | static_cast<unsigned>(d);
  }
  return value;
}

std::optional<PacketBuffer::Event> PacketBuffer::next() {
  std::size_t i = 0;
  // Skip inter-packet bytes, emitting the single-byte events they encode.
  while (i < buffer_.size() && buffer_[i] != '$') {
    const char c = buffer_[i];
    if (c == '+' || c == '-' || c == '\x03') {
      buffer_.erase(0, i + 1);
      return Event{c == '+'   ? Kind::kAck
                   : c == '-' ? Kind::kNak
                              : Kind::kInterrupt,
                   {}};
    }
    ++i;  // line noise per protocol; skipped
  }
  if (i > 0) buffer_.erase(0, i);
  if (buffer_.empty()) return std::nullopt;

  // buffer_[0] == '$': find the frame terminator.
  const std::size_t hash = buffer_.find('#', 1);
  const std::size_t body_len = (hash == std::string::npos ? buffer_.size() : hash) - 1;
  if (body_len > kMaxPacketBytes)
    raise("oversized RSP packet: " + std::to_string(body_len) + " bytes (limit " +
          std::to_string(kMaxPacketBytes) + ")");
  if (hash == std::string::npos || hash + 2 >= buffer_.size())
    return std::nullopt;  // frame still in flight across recv boundaries

  const std::string body = buffer_.substr(1, hash - 1);
  const std::string sum_text = buffer_.substr(hash + 1, 2);
  buffer_.erase(0, hash + 3);

  const int hi = hex_digit(sum_text[0]);
  const int lo = hex_digit(sum_text[1]);
  const bool sum_ok =
      hi >= 0 && lo >= 0 && ((hi << 4) | lo) == rsp_checksum(body);
  if (!sum_ok) return Event{Kind::kBadChecksum, body};
  return Event{Kind::kPacket, rsp_unescape(body)};
}

}  // namespace indexmac::debug
