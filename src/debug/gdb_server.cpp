#include "debug/gdb_server.h"

#include <cstdio>
#include <deque>
#include <fstream>
#include <optional>

#include "common/error.h"
#include "debug/gdb_stub.h"
#include "serve/net.h"

namespace indexmac::debug {

namespace {

/// Steps the continue loop in slices so the interrupt poll (Ctrl-C over the
/// socket, SIGINT on the process) gets a look between them. Large enough
/// that the threaded engine's fast path dominates; small enough that an
/// interrupt lands within milliseconds.
constexpr std::uint64_t kRunSliceSteps = 1'000'000;

/// Memory reads/writes per m/M packet are bounded: GDB chunks its own
/// requests well below this, and an absurd length is a corrupt packet, not
/// a real transfer.
constexpr std::uint64_t kMaxMemoryXfer = 1u << 16;

[[nodiscard]] std::string hex_addr(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(value));
  return buf;
}

/// Bytes of one register in the g/G file (regnum order, see gdb_server.h).
[[nodiscard]] unsigned reg_bytes(unsigned regnum) {
  if (regnum <= kRegPc) return 8;                      // x0..x31, pc
  if (regnum < kRegV0) return 4;                       // f0..f31
  if (regnum < kRegVl) return isa::kVlMax * 4;         // v0..v31 (512-bit)
  return 4;                                            // vl
}

}  // namespace

const std::string& target_xml() {
  static const std::string xml = [] {
    std::string s;
    s += "<?xml version=\"1.0\"?>\n";
    s += "<!DOCTYPE target SYSTEM \"gdb-target.dtd\">\n";
    s += "<target version=\"1.0\">\n";
    s += "  <architecture>riscv:rv64</architecture>\n";
    s += "  <feature name=\"org.gnu.gdb.riscv.cpu\">\n";
    for (unsigned r = 0; r < isa::kNumXRegs; ++r)
      s += "    <reg name=\"x" + std::to_string(r) + "\" bitsize=\"64\" type=\"int\" regnum=\"" +
           std::to_string(kRegX0 + r) + "\"/>\n";
    s += "    <reg name=\"pc\" bitsize=\"64\" type=\"code_ptr\" regnum=\"" +
         std::to_string(kRegPc) + "\"/>\n";
    s += "  </feature>\n";
    s += "  <feature name=\"org.gnu.gdb.riscv.fpu\">\n";
    for (unsigned r = 0; r < isa::kNumFRegs; ++r)
      s += "    <reg name=\"f" + std::to_string(r) +
           "\" bitsize=\"32\" type=\"ieee_single\" regnum=\"" + std::to_string(kRegF0 + r) +
           "\"/>\n";
    s += "  </feature>\n";
    s += "  <feature name=\"org.gnu.gdb.riscv.vector\">\n";
    s += "    <vector id=\"v16u32\" type=\"uint32\" count=\"" + std::to_string(isa::kVlMax) +
         "\"/>\n";
    for (unsigned r = 0; r < isa::kNumVRegs; ++r)
      s += "    <reg name=\"v" + std::to_string(r) + "\" bitsize=\"" +
           std::to_string(isa::kVlenBits) + "\" type=\"v16u32\" regnum=\"" +
           std::to_string(kRegV0 + r) + "\"/>\n";
    s += "    <reg name=\"vl\" bitsize=\"32\" type=\"int\" regnum=\"" + std::to_string(kRegVl) +
         "\"/>\n";
    s += "  </feature>\n";
    s += "</target>\n";
    return s;
  }();
  return xml;
}

GdbSession::GdbSession(const AssembledText& assembled, Machine& machine, MainMemory& memory,
                       ExecEngine engine)
    : assembled_(assembled),
      machine_(machine),
      memory_(memory),
      threaded_(machine),
      engine_(engine) {}

std::string GdbSession::read_register(unsigned regnum) const {
  const ArchState& st = machine_.state();
  if (regnum < isa::kNumXRegs) return u64_to_hex_le(st.x[regnum], 8);
  if (regnum == kRegPc) return u64_to_hex_le(st.pc, 8);
  if (regnum >= kRegF0 && regnum < kRegV0) return u64_to_hex_le(st.f[regnum - kRegF0], 4);
  if (regnum >= kRegV0 && regnum < kRegVl) {
    std::string out;
    out.reserve(isa::kVlMax * 8);
    for (unsigned lane = 0; lane < isa::kVlMax; ++lane)
      out += u64_to_hex_le(st.v[regnum - kRegV0][lane], 4);
    return out;
  }
  if (regnum == kRegVl) return u64_to_hex_le(st.vl, 4);
  raise("gdb stub: register number " + std::to_string(regnum) + " out of range");
}

bool GdbSession::write_register(unsigned regnum, std::string_view hex) {
  if (regnum >= kNumDebugRegs || hex.size() != reg_bytes(regnum) * 2) return false;
  ArchState& st = machine_.state();
  if (regnum < isa::kNumXRegs) {
    // x0 is architecturally zero; GDB may still write the slot — ignore.
    if (regnum != 0) st.x[regnum] = hex_le_to_u64(hex);
  } else if (regnum == kRegPc) {
    st.pc = hex_le_to_u64(hex);
  } else if (regnum < kRegV0) {
    st.f[regnum - kRegF0] = static_cast<std::uint32_t>(hex_le_to_u64(hex));
  } else if (regnum < kRegVl) {
    for (unsigned lane = 0; lane < isa::kVlMax; ++lane)
      st.v[regnum - kRegV0][lane] =
          static_cast<std::uint32_t>(hex_le_to_u64(hex.substr(lane * 8, 8)));
  } else {
    st.vl = static_cast<std::uint32_t>(hex_le_to_u64(hex));
  }
  return true;
}

std::string GdbSession::resume(bool single_step, std::string_view addr_text) {
  if (exited_) return last_stop_;  // process already reported W00
  if (!addr_text.empty()) machine_.state().pc = parse_hex_u64(addr_text);
  try {
    const auto step_once = [&] {
      return engine_ == ExecEngine::kThreaded ? threaded_.step() : machine_.step();
    };
    if (single_step) {
      const StopReason r = step_once();
      if (r == StopReason::kEbreak || r == StopReason::kEcall) {
        exited_ = true;
        last_stop_ = "W00";
      } else {
        last_stop_ = "S05";
      }
      return last_stop_;
    }
    // Continue. A pc parked on a breakpoint steps over it first, exactly as
    // GDB drives real stubs (it removes/reinserts traps; we just step).
    if (breakpoints_.contains(machine_.state().pc)) {
      const StopReason r = step_once();
      if (r == StopReason::kEbreak || r == StopReason::kEcall) {
        exited_ = true;
        last_stop_ = "W00";
        return last_stop_;
      }
    }
    while (true) {
      const StopReason r =
          engine_ == ExecEngine::kThreaded
              ? threaded_.run_with_breakpoints(breakpoints_, kRunSliceSteps)
              : machine_.run_with_breakpoints(breakpoints_, kRunSliceSteps);
      if (r == StopReason::kRunning) {
        last_stop_ = "T05swbreak:;";  // parked on a breakpoint
        return last_stop_;
      }
      if (r == StopReason::kEbreak || r == StopReason::kEcall) {
        exited_ = true;
        last_stop_ = "W00";
        return last_stop_;
      }
      // kMaxSteps: slice exhausted — give the transport a chance to Ctrl-C.
      if (interrupt_poll_ && interrupt_poll_()) {
        last_stop_ = "S02";
        return last_stop_;
      }
    }
  } catch (const SimError& e) {
    // Execution fault (pc left the program, disabled SSR pop, ...): the
    // debugger sees a SIGSEGV-style stop and can inspect state; the text
    // is kept for `monitor fault`.
    last_fault_ = e.what();
    last_stop_ = "S0b";
    return last_stop_;
  }
}

std::string GdbSession::monitor(std::string_view command) {
  if (command == "retired")
    return std::to_string(machine_.instructions_retired()) + "\n";
  if (command == "engine") return std::string(exec_engine_name(engine_)) + "\n";
  if (command == "fault") return (last_fault_.empty() ? "none" : last_fault_) + "\n";
  if (command == "markers") {
    std::string out;
    const Program& p = machine_.program();
    for (std::size_t slot = 0; slot < p.decoded().size(); ++slot)
      if (p.decoded()[slot].op == isa::Op::kMarker)
        out += "marker " + std::to_string(p.decoded()[slot].imm) + " " +
               hex_addr(p.base() + 4 * slot) + "\n";
    return out.empty() ? "no markers\n" : out;
  }
  if (command == "symbols") {
    std::string out;
    for (const auto& [name, addr] : assembled_.symbols)
      out += name + " " + hex_addr(addr) + "\n";
    return out.empty() ? "no symbols\n" : out;
  }
  return "unknown monitor command \"" + std::string(command) +
         "\" (try: retired, engine, fault, markers, symbols)\n";
}

std::string GdbSession::handle(std::string_view payload) {
  reply_suppressed_ = false;
  if (payload.empty()) return "";
  try {
    const char cmd = payload[0];
    const std::string_view rest = payload.substr(1);
    switch (cmd) {
      case '?':
        return last_stop_;
      case 'g': {
        std::string out;
        for (unsigned r = 0; r < kNumDebugRegs; ++r) out += read_register(r);
        return out;
      }
      case 'G': {
        std::size_t off = 0;
        for (unsigned r = 0; r < kNumDebugRegs; ++r) {
          const std::size_t digits = reg_bytes(r) * 2;
          if (off + digits > rest.size()) return "E01";
          if (!write_register(r, rest.substr(off, digits))) return "E01";
          off += digits;
        }
        return off == rest.size() ? "OK" : "E01";
      }
      case 'p': {
        const auto regnum = static_cast<unsigned>(parse_hex_u64(rest));
        if (regnum >= kNumDebugRegs) return "E01";
        return read_register(regnum);
      }
      case 'P': {
        const std::size_t eq = rest.find('=');
        if (eq == std::string_view::npos) return "E01";
        const auto regnum = static_cast<unsigned>(parse_hex_u64(rest.substr(0, eq)));
        return write_register(regnum, rest.substr(eq + 1)) ? "OK" : "E01";
      }
      case 'm': {
        const std::size_t comma = rest.find(',');
        if (comma == std::string_view::npos) return "E01";
        const std::uint64_t addr = parse_hex_u64(rest.substr(0, comma));
        const std::uint64_t len = parse_hex_u64(rest.substr(comma + 1));
        if (len == 0 || len > kMaxMemoryXfer) return "E01";
        std::string bytes(len, '\0');
        memory_.read_bytes(addr, {reinterpret_cast<std::uint8_t*>(bytes.data()), bytes.size()});
        return bytes_to_hex(bytes);
      }
      case 'M': {
        const std::size_t comma = rest.find(',');
        const std::size_t colon = rest.find(':');
        if (comma == std::string_view::npos || colon == std::string_view::npos || colon < comma)
          return "E01";
        const std::uint64_t addr = parse_hex_u64(rest.substr(0, comma));
        const std::uint64_t len = parse_hex_u64(rest.substr(comma + 1, colon - comma - 1));
        if (len > kMaxMemoryXfer) return "E01";
        const std::string bytes = hex_to_bytes(rest.substr(colon + 1));
        if (bytes.size() != len) return "E01";
        memory_.write_bytes(addr,
                            {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
        return "OK";
      }
      case 'c':
        return resume(/*single_step=*/false, rest);
      case 's':
        return resume(/*single_step=*/true, rest);
      case 'Z':
      case 'z': {
        if (rest.size() < 2 || rest[0] != '0' || rest[1] != ',') return "";  // sw bp only
        const std::string_view body = rest.substr(2);
        const std::size_t comma = body.find(',');
        const std::uint64_t addr =
            parse_hex_u64(comma == std::string_view::npos ? body : body.substr(0, comma));
        if (cmd == 'Z')
          breakpoints_.add(addr);
        else
          breakpoints_.remove(addr);
        return "OK";
      }
      case 'H':
        return "OK";  // thread ops: single-threaded target, any Hg/Hc is fine
      case 'T':
        return "OK";  // "is thread alive" — the only thread always is
      case 'D':
        finished_ = true;
        return "OK";
      case 'k':
        finished_ = true;
        reply_suppressed_ = true;  // GDB closes without reading a reply
        return "";
      default:
        break;
    }
    if (payload == "qC") return "QC1";
    if (payload == "qAttached") return "1";
    if (payload == "QStartNoAckMode") {
      no_ack_ = true;
      return "OK";
    }
    if (payload.rfind("qSupported", 0) == 0)
      return "PacketSize=4000;qXfer:features:read+;swbreak+;QStartNoAckMode+";
    if (payload.rfind("qXfer:features:read:", 0) == 0) {
      // qXfer:features:read:ANNEX:OFFSET,LENGTH
      const std::string_view tail = payload.substr(std::string_view("qXfer:features:read:").size());
      const std::size_t colon = tail.rfind(':');
      if (colon == std::string_view::npos) return "E01";
      if (tail.substr(0, colon) != "target.xml") return "E00";
      const std::string_view range = tail.substr(colon + 1);
      const std::size_t comma = range.find(',');
      if (comma == std::string_view::npos) return "E01";
      const std::uint64_t offset = parse_hex_u64(range.substr(0, comma));
      const std::uint64_t length = parse_hex_u64(range.substr(comma + 1));
      const std::string& xml = target_xml();
      if (offset >= xml.size()) return "l";
      const std::string chunk = xml.substr(offset, length);
      const bool final_chunk = offset + chunk.size() >= xml.size();
      return (final_chunk ? "l" : "m") + chunk;
    }
    if (payload.rfind("qRcmd,", 0) == 0) {
      const std::string command = hex_to_bytes(payload.substr(6));
      return bytes_to_hex(monitor(command));
    }
  } catch (const SimError&) {
    return "E01";  // malformed packet contents (bad hex, short fields, ...)
  }
  return "";  // unsupported packet: empty reply, per protocol
}

int run_gdb_server(const AssembledText& assembled, MainMemory& memory,
                   const GdbServerOptions& options) {
  serve::Listener listener(options.port);
  if (!options.port_file.empty()) {
    std::ofstream pf(options.port_file, std::ios::binary | std::ios::trunc);
    IMAC_CHECK(pf.good(), "gdb stub: cannot write port file " + options.port_file);
    pf << listener.port() << "\n";
    pf.close();
    IMAC_CHECK(pf.good(), "gdb stub: cannot write port file " + options.port_file);
  }
  if (!options.quiet)
    std::fprintf(stderr, "gdb stub: listening on 127.0.0.1:%u (engine %s)\n", listener.port(),
                 exec_engine_name(options.engine));

  const auto stop_raised = [&] { return options.stop != nullptr && options.stop->load(); };

  serve::Socket client;
  while (!client.valid()) {
    if (stop_raised()) return 130;
    if (serve::wait_readable(listener.fd(), 100)) client = listener.accept();
  }
  if (!options.quiet) std::fprintf(stderr, "gdb stub: debugger connected\n");

  Machine machine(assembled.program, memory);
  GdbSession session(assembled, machine, memory, options.engine);
  PacketBuffer buffer;
  // Events decoded by the interrupt poll while the target was running;
  // processed once control returns to the main loop.
  std::deque<PacketBuffer::Event> queued;
  std::string last_reply_frame;
  bool peer_eof = false;

  session.set_interrupt_poll([&]() -> bool {
    if (stop_raised()) return true;
    char tmp[4096];
    while (serve::wait_readable(client.fd(), 0)) {
      const std::size_t n = client.recv_some(tmp, sizeof tmp);
      if (n == 0) {
        peer_eof = true;
        return true;  // debugger vanished: stop running, exit cleanly
      }
      buffer.feed(tmp, n);
    }
    bool interrupted = false;
    while (auto event = buffer.next()) {
      if (event->kind == PacketBuffer::Kind::kInterrupt)
        interrupted = true;
      else if (event->kind != PacketBuffer::Kind::kAck)
        queued.push_back(std::move(*event));
    }
    return interrupted;
  });

  while (!session.finished() && !peer_eof) {
    if (stop_raised()) return 130;
    std::optional<PacketBuffer::Event> event;
    if (!queued.empty()) {
      event = std::move(queued.front());
      queued.pop_front();
    } else {
      event = buffer.next();
    }
    if (!event.has_value()) {
      if (!serve::wait_readable(client.fd(), 100)) continue;
      char tmp[4096];
      const std::size_t n = client.recv_some(tmp, sizeof tmp);
      if (n == 0) break;  // orderly EOF: debugger closed the connection
      buffer.feed(tmp, n);
      continue;
    }
    switch (event->kind) {
      case PacketBuffer::Kind::kAck:
        break;
      case PacketBuffer::Kind::kNak:
        if (!last_reply_frame.empty())
          client.send_all(last_reply_frame.data(), last_reply_frame.size());
        break;
      case PacketBuffer::Kind::kInterrupt:
        break;  // target already stopped; nothing to interrupt
      case PacketBuffer::Kind::kBadChecksum:
        client.send_all("-", 1);
        break;
      case PacketBuffer::Kind::kPacket: {
        if (!session.no_ack()) client.send_all("+", 1);
        const std::string reply = session.handle(event->payload);
        if (session.reply_suppressed()) {
          last_reply_frame.clear();
          break;
        }
        last_reply_frame = rsp_frame(reply);
        client.send_all(last_reply_frame.data(), last_reply_frame.size());
        break;
      }
    }
  }
  if (!options.quiet) std::fprintf(stderr, "gdb stub: session ended\n");
  return 0;
}

}  // namespace indexmac::debug
