#include "fsim/machine.h"

#include <cstdio>
#include <cstring>

#include "common/bitutil.h"
#include "common/error.h"
#include "isa/encoding.h"

namespace indexmac {

using isa::Instruction;
using isa::kVlMax;
using isa::Op;

namespace {

float bits_to_f32(std::uint32_t raw) {
  float out;
  std::memcpy(&out, &raw, sizeof out);
  return out;
}

std::uint32_t f32_to_bits(float value) {
  std::uint32_t raw;
  std::memcpy(&raw, &value, sizeof raw);
  return raw;
}

}  // namespace

float ArchState::freg_f32(unsigned r) const { return bits_to_f32(f[r]); }
void ArchState::set_freg_f32(unsigned r, float value) { f[r] = f32_to_bits(value); }
float ArchState::velem_f32(unsigned reg, unsigned lane) const { return bits_to_f32(v[reg][lane]); }
void ArchState::set_velem_f32(unsigned reg, unsigned lane, float value) {
  v[reg][lane] = f32_to_bits(value);
}

std::string describe_pc(const Program& program, std::uint64_t pc) {
  char head[32];
  std::snprintf(head, sizeof head, "pc 0x%llx", static_cast<unsigned long long>(pc));
  if (!program.contains(pc)) {
    char range[80];
    std::snprintf(range, sizeof range, " (outside program [0x%llx, 0x%llx))",
                  static_cast<unsigned long long>(program.base()),
                  static_cast<unsigned long long>(program.end()));
    return std::string(head) + range;
  }
  return std::string(head) + " (`" + isa::disassemble(program.at(pc)) + "`)";
}

Machine::Machine(const Program& program, MainMemory& memory)
    : program_(program),
      memory_(memory),
      code_(program.decoded().data()),
      info_(program.static_info().data()),
      base_(program.base()),
      code_bytes_(program.end() - program.base()) {
  state_.pc = program.base();
  state_.vl = 0;
}

StopReason Machine::step() {
  // Explicit out-of-range fault: a pc below the program base (stray jump
  // through a cleared register, a negative branch out of the prologue) must
  // not reach the slot computation via unsigned wraparound of pc - base_.
  const std::uint64_t pc = state_.pc;
  if (pc < base_ || pc - base_ >= code_bytes_ || ((pc - base_) & 3) != 0)
    raise("functional execution left the program: " + describe_pc(program_, pc));
  const std::size_t slot = (pc - base_) >> 2;
  const Instruction& inst = code_[slot];
  const std::uint64_t next_pc = state_.pc + 4;
  // The halt ops are the only ones that stop execution; predecode flags
  // them so exec's switch needn't route a stop reason back out.
  pending_stop_ = info_[slot].has(isa::kSiHalt)
                      ? (inst.op == Op::kEcall ? StopReason::kEcall : StopReason::kEbreak)
                      : StopReason::kRunning;
  exec(inst, next_pc);
  state_.x[0] = 0;  // x0 is hardwired to zero
  ++retired_;
  return pending_stop_;
}

StopReason Machine::run(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    const StopReason r = step();
    if (r != StopReason::kRunning) return r;
  }
  return StopReason::kMaxSteps;
}

StopReason Machine::run_with_breakpoints(const BreakpointSet& breakpoints,
                                         std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (breakpoints.contains(state_.pc)) return StopReason::kRunning;
    const StopReason r = step();
    if (r != StopReason::kRunning) return r;
  }
  return StopReason::kMaxSteps;
}

std::uint32_t Machine::ssr_pop(unsigned sid) {
  SsrStream& s = ssr_[sid];
  if (!s.enabled || s.count == 0)
    raise("vindexmacs.v with stream " + std::to_string(sid) +
          (s.enabled ? " configured empty" : " disabled") + " at " +
          describe_pc(program_, state_.pc));
  const std::uint32_t word = memory_.read_u32(s.base + 4ull * s.pos);
  if (++s.pos == s.count) s.pos = 0;
  return word;
}

void Machine::exec(const Instruction& in, std::uint64_t next_pc) {
  auto& x = state_.x;
  const auto sx = [&x](unsigned r) { return static_cast<std::int64_t>(x[r]); };
  std::uint64_t new_pc = next_pc;

  switch (in.op) {
    case Op::kLui:
      x[in.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm) << 12);
      break;
    case Op::kAuipc:
      x[in.rd] = state_.pc + static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm) << 12);
      break;
    case Op::kJal:
      x[in.rd] = next_pc;
      new_pc = state_.pc + static_cast<std::int64_t>(in.imm);
      break;
    case Op::kJalr: {
      const std::uint64_t target = (x[in.rs1] + static_cast<std::int64_t>(in.imm)) & ~1ull;
      x[in.rd] = next_pc;
      new_pc = target;
      break;
    }
    case Op::kBeq:
      if (x[in.rs1] == x[in.rs2]) new_pc = state_.pc + static_cast<std::int64_t>(in.imm);
      break;
    case Op::kBne:
      if (x[in.rs1] != x[in.rs2]) new_pc = state_.pc + static_cast<std::int64_t>(in.imm);
      break;
    case Op::kBlt:
      if (sx(in.rs1) < sx(in.rs2)) new_pc = state_.pc + static_cast<std::int64_t>(in.imm);
      break;
    case Op::kBge:
      if (sx(in.rs1) >= sx(in.rs2)) new_pc = state_.pc + static_cast<std::int64_t>(in.imm);
      break;
    case Op::kBltu:
      if (x[in.rs1] < x[in.rs2]) new_pc = state_.pc + static_cast<std::int64_t>(in.imm);
      break;
    case Op::kBgeu:
      if (x[in.rs1] >= x[in.rs2]) new_pc = state_.pc + static_cast<std::int64_t>(in.imm);
      break;
    case Op::kLw:
      x[in.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(
          static_cast<std::int32_t>(memory_.read_u32(x[in.rs1] + in.imm))));
      break;
    case Op::kLwu:
      x[in.rd] = memory_.read_u32(x[in.rs1] + in.imm);
      break;
    case Op::kLd:
      x[in.rd] = memory_.read_u64(x[in.rs1] + in.imm);
      break;
    case Op::kSw:
      memory_.write_u32(x[in.rs1] + in.imm, static_cast<std::uint32_t>(x[in.rs2]));
      break;
    case Op::kSd:
      memory_.write_u64(x[in.rs1] + in.imm, x[in.rs2]);
      break;
    case Op::kFlw:
      state_.f[in.rd] = memory_.read_u32(x[in.rs1] + in.imm);
      break;
    case Op::kFsw:
      memory_.write_u32(x[in.rs1] + in.imm, state_.f[in.rs2]);
      break;
    case Op::kAddi: x[in.rd] = x[in.rs1] + static_cast<std::int64_t>(in.imm); break;
    case Op::kSlti: x[in.rd] = sx(in.rs1) < in.imm ? 1 : 0; break;
    case Op::kSltiu:
      x[in.rd] = x[in.rs1] < static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm)) ? 1 : 0;
      break;
    case Op::kXori: x[in.rd] = x[in.rs1] ^ static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm)); break;
    case Op::kOri: x[in.rd] = x[in.rs1] | static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm)); break;
    case Op::kAndi: x[in.rd] = x[in.rs1] & static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm)); break;
    case Op::kSlli: x[in.rd] = x[in.rs1] << in.imm; break;
    case Op::kSrli: x[in.rd] = x[in.rs1] >> in.imm; break;
    case Op::kSrai: x[in.rd] = static_cast<std::uint64_t>(sx(in.rs1) >> in.imm); break;
    case Op::kAdd: x[in.rd] = x[in.rs1] + x[in.rs2]; break;
    case Op::kSub: x[in.rd] = x[in.rs1] - x[in.rs2]; break;
    case Op::kSll: x[in.rd] = x[in.rs1] << (x[in.rs2] & 63); break;
    case Op::kSlt: x[in.rd] = sx(in.rs1) < sx(in.rs2) ? 1 : 0; break;
    case Op::kSltu: x[in.rd] = x[in.rs1] < x[in.rs2] ? 1 : 0; break;
    case Op::kXor: x[in.rd] = x[in.rs1] ^ x[in.rs2]; break;
    case Op::kSrl: x[in.rd] = x[in.rs1] >> (x[in.rs2] & 63); break;
    case Op::kSra: x[in.rd] = static_cast<std::uint64_t>(sx(in.rs1) >> (x[in.rs2] & 63)); break;
    case Op::kOr: x[in.rd] = x[in.rs1] | x[in.rs2]; break;
    case Op::kAnd: x[in.rd] = x[in.rs1] & x[in.rs2]; break;
    case Op::kMul: x[in.rd] = x[in.rs1] * x[in.rs2]; break;
    case Op::kEcall:
    case Op::kEbreak:
      break;  // stop reason precomputed from the halt flag in step()
    case Op::kMarker:
      if (marker_hook_) marker_hook_(in.imm);
      break;
    case Op::kVsetvli: {
      // AVL: x[rs1], or "as large as possible" when rs1 is x0 (and rd != x0).
      const std::uint64_t avl = in.rs1 == 0 ? kVlMax : x[in.rs1];
      state_.vl = static_cast<std::uint32_t>(std::min<std::uint64_t>(avl, kVlMax));
      if (in.rd != 0) x[in.rd] = state_.vl;
      break;
    }
    case Op::kVle32: {
      const std::uint64_t base = x[in.rs1];
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = memory_.read_u32(base + 4ull * i);
      break;
    }
    case Op::kVse32: {
      const std::uint64_t base = x[in.rs1];
      for (unsigned i = 0; i < state_.vl; ++i)
        memory_.write_u32(base + 4ull * i, state_.v[in.rd][i]);
      break;
    }
    case Op::kVluxei32: {
      const std::uint64_t base = x[in.rs1];
      // Snapshot the index register: vd may alias vs2.
      std::array<std::uint32_t, kVlMax> idx = state_.v[in.rs2];
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = memory_.read_u32(base + idx[i]);
      break;
    }
    case Op::kVaddVx:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = state_.v[in.rs2][i] + static_cast<std::uint32_t>(x[in.rs1]);
      break;
    case Op::kVaddVV:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = state_.v[in.rs2][i] + state_.v[in.rs1][i];
      break;
    case Op::kVfaddVV:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.set_velem_f32(in.rd, i,
                             state_.velem_f32(in.rs2, i) + state_.velem_f32(in.rs1, i));
      break;
    case Op::kVmulVV:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = state_.v[in.rs2][i] * state_.v[in.rs1][i];
      break;
    case Op::kVfmulVV:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.set_velem_f32(in.rd, i,
                             state_.velem_f32(in.rs2, i) * state_.velem_f32(in.rs1, i));
      break;
    case Op::kVredsumVS: {
      std::uint32_t acc = state_.v[in.rs1][0];
      for (unsigned i = 0; i < state_.vl; ++i) acc += state_.v[in.rs2][i];
      if (state_.vl > 0) state_.v[in.rd][0] = acc;
      break;
    }
    case Op::kVfredusumVS: {
      float acc = state_.velem_f32(in.rs1, 0);
      for (unsigned i = 0; i < state_.vl; ++i) acc += state_.velem_f32(in.rs2, i);
      if (state_.vl > 0) state_.set_velem_f32(in.rd, 0, acc);
      break;
    }
    case Op::kVaddVi:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = state_.v[in.rs2][i] + static_cast<std::uint32_t>(in.imm);
      break;
    case Op::kVmaccVx:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] += static_cast<std::uint32_t>(x[in.rs1]) * state_.v[in.rs2][i];
      break;
    case Op::kVfmaccVf: {
      const float s = state_.freg_f32(in.rs1);
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.set_velem_f32(in.rd, i, state_.velem_f32(in.rd, i) + s * state_.velem_f32(in.rs2, i));
      break;
    }
    case Op::kVmvVX:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = static_cast<std::uint32_t>(x[in.rs1]);
      break;
    case Op::kVmvVI:
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] = static_cast<std::uint32_t>(in.imm);
      break;
    case Op::kVmvXS:
      // SEW=32 source element is sign-extended into the x register.
      x[in.rd] = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(static_cast<std::int32_t>(state_.v[in.rs2][0])));
      break;
    case Op::kVfmvFS:
      state_.f[in.rd] = state_.v[in.rs2][0];
      break;
    case Op::kVmvSX:
      if (state_.vl > 0) state_.v[in.rd][0] = static_cast<std::uint32_t>(x[in.rs1]);
      break;
    case Op::kVslidedownVx:
    case Op::kVslidedownVi: {
      const std::uint64_t offset =
          in.op == Op::kVslidedownVx ? x[in.rs1] : static_cast<std::uint64_t>(in.imm);
      std::array<std::uint32_t, kVlMax> src = state_.v[in.rs2];
      for (unsigned i = 0; i < state_.vl; ++i) {
        const std::uint64_t j = i + offset;
        state_.v[in.rd][i] = j < kVlMax ? src[j] : 0;
      }
      break;
    }
    case Op::kVslide1downVx: {
      std::array<std::uint32_t, kVlMax> src = state_.v[in.rs2];
      if (state_.vl > 0) {
        for (unsigned i = 0; i + 1 < state_.vl; ++i) state_.v[in.rd][i] = src[i + 1];
        state_.v[in.rd][state_.vl - 1] = static_cast<std::uint32_t>(x[in.rs1]);
      }
      break;
    }
    case Op::kVindexmacVx: {
      const unsigned src_reg = static_cast<unsigned>(x[in.rs1] & 0x1f);
      // Unsigned arithmetic: same bits as two's-complement int32 MAC, but
      // wraparound is defined (the ISA wraps modulo 2^32).
      const std::uint32_t scale = state_.v[in.rs2][0];
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] += scale * state_.v[src_reg][i];
      break;
    }
    case Op::kVfindexmacVx: {
      const unsigned src_reg = static_cast<unsigned>(x[in.rs1] & 0x1f);
      const float scale = state_.velem_f32(in.rs2, 0);
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.set_velem_f32(in.rd, i,
                             state_.velem_f32(in.rd, i) + scale * state_.velem_f32(src_reg, i));
      break;
    }
    case Op::kVindexmacpVx: {
      // Packed-index form: the nibble names a row of the upper half of the
      // register file (the B tile lives in v[32-L..31] by convention).
      const unsigned src_reg = 16u | static_cast<unsigned>(x[in.rs1] & 0xf);
      const std::uint32_t scale = state_.v[in.rs2][0];
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] += scale * state_.v[src_reg][i];
      break;
    }
    case Op::kVfindexmacpVx: {
      const unsigned src_reg = 16u | static_cast<unsigned>(x[in.rs1] & 0xf);
      const float scale = state_.velem_f32(in.rs2, 0);
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.set_velem_f32(in.rd, i,
                             state_.velem_f32(in.rd, i) + scale * state_.velem_f32(src_reg, i));
      break;
    }
    case Op::kVindexmac2Vx: {
      // Dual-row form: bit-identical to vindexmacp on nibble 0 followed by
      // vindexmacp on nibble 1 (values vs2[0] then vs2[1]).
      const unsigned src0 = 16u | static_cast<unsigned>(x[in.rs1] & 0xf);
      const unsigned src1 = 16u | static_cast<unsigned>((x[in.rs1] >> 4) & 0xf);
      const std::uint32_t s0 = state_.v[in.rs2][0];
      const std::uint32_t s1 = state_.v[in.rs2][1];
      for (unsigned i = 0; i < state_.vl; ++i) {
        state_.v[in.rd][i] += s0 * state_.v[src0][i];
        state_.v[in.rd][i] += s1 * state_.v[src1][i];
      }
      break;
    }
    case Op::kVfindexmac2Vx: {
      const unsigned src0 = 16u | static_cast<unsigned>(x[in.rs1] & 0xf);
      const unsigned src1 = 16u | static_cast<unsigned>((x[in.rs1] >> 4) & 0xf);
      const float s0 = state_.velem_f32(in.rs2, 0);
      const float s1 = state_.velem_f32(in.rs2, 1);
      for (unsigned i = 0; i < state_.vl; ++i) {
        state_.set_velem_f32(in.rd, i,
                             state_.velem_f32(in.rd, i) + s0 * state_.velem_f32(src0, i));
        state_.set_velem_f32(in.rd, i,
                             state_.velem_f32(in.rd, i) + s1 * state_.velem_f32(src1, i));
      }
      break;
    }
    case Op::kSsrCfg: {
      SsrStream& s = ssr_[in.rd];
      s.base = x[in.rs1];
      s.count = static_cast<std::uint32_t>(x[in.rs2]);
      s.pos = 0;
      break;
    }
    case Op::kSsrEn:
      // Bit s of x[rs1] enables stream s; enabling rewinds to the base so a
      // re-enable replays the window from the start.
      for (unsigned s = 0; s < 4; ++s) {
        ssr_[s].enabled = ((x[in.rs1] >> s) & 1) != 0;
        if (ssr_[s].enabled) ssr_[s].pos = 0;
      }
      break;
    case Op::kVindexmacsV: {
      // Streaming MAC: the A value and the VRF row index arrive from the
      // address-generation state machines instead of explicit loads. Both
      // streams advance even at vl==0 (operand fetch precedes lane work).
      const std::uint32_t scale = ssr_pop(0);
      const unsigned src_reg = ssr_pop(1) & 0x1f;
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.v[in.rd][i] += scale * state_.v[src_reg][i];
      break;
    }
    case Op::kVfindexmacsV: {
      const float scale = bits_to_f32(ssr_pop(0));
      const unsigned src_reg = ssr_pop(1) & 0x1f;
      for (unsigned i = 0; i < state_.vl; ++i)
        state_.set_velem_f32(in.rd, i,
                             state_.velem_f32(in.rd, i) + scale * state_.velem_f32(src_reg, i));
      break;
    }
    case Op::kIllegal:
      raise("functional execution reached an illegal instruction at " +
            describe_pc(program_, state_.pc));
  }
  state_.pc = new_pc;
}

}  // namespace indexmac
