// Execution tracing for the functional simulator: per-instruction listing
// with architectural effects (register writes, memory traffic), for
// debugging hand-written kernels and for differential testing.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

#include "fsim/machine.h"

namespace indexmac {

/// One executed instruction and its visible effects.
struct TraceRecord {
  std::uint64_t index = 0;  ///< dynamic instruction number (0-based)
  std::uint64_t pc = 0;
  isa::Instruction inst;
  std::string disasm;
  /// Destination register value after execution, when the op writes one.
  std::optional<std::uint64_t> x_write;
  std::optional<std::uint32_t> f_write;  ///< raw fp32 bits
  bool v_write = false;                  ///< a vector register changed
  std::uint32_t vl = 0;
};

/// Steps a Machine while producing TraceRecords. The tracer does not own
/// the machine; interleaving manual steps would desynchronize the count.
class Tracer {
 public:
  explicit Tracer(Machine& machine) : machine_(machine) {}

  /// Executes one instruction and returns its record plus the stop reason.
  std::pair<TraceRecord, StopReason> step();

  /// Runs up to `max_steps`, streaming one line per instruction to `out`.
  /// Returns the stop reason.
  StopReason run(std::ostream& out, std::uint64_t max_steps = 1'000'000);

  /// Renders a record as a fixed-layout text line.
  [[nodiscard]] static std::string format(const TraceRecord& record);

 private:
  Machine& machine_;
  std::uint64_t count_ = 0;
};

}  // namespace indexmac
