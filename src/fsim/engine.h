// Functional-execution engine selection. The interpreter (fsim::Machine)
// is the golden model; the threaded-code engine (fsim::ThreadedEngine)
// produces bit-identical architectural results faster. The choice is a
// simulator implementation detail: it never enters sweep cache keys or
// report bytes, and both engines must render byte-identical golden output.
#pragma once

#include <string>

namespace indexmac {

enum class ExecEngine {
  kInterp,    ///< Machine::step interpreter (golden reference)
  kThreaded,  ///< predecoded threaded-code blocks + fused superblocks
};

/// Stable CLI/JSON name ("interp" / "threaded").
[[nodiscard]] const char* exec_engine_name(ExecEngine engine);

/// Parses an engine name; throws SimError listing the valid names.
[[nodiscard]] ExecEngine parse_exec_engine(const std::string& text);

}  // namespace indexmac
