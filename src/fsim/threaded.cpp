// Threaded-code engine implementation. Three layers:
//
//   1. Per-op records (TOp): one pre-bound handler + resolved operands per
//      pc slot. step() executes exactly one of these with Machine::step's
//      observable semantics (the timing trace runs on this layer so the
//      DynInst stream is identical under both engines).
//   2. Basic blocks: maximal straight-line TOp runs ending at a branch,
//      jump, halt, or fallback op, executed without touching state_.pc
//      until the block exits. run() executes whole blocks.
//   3. Superblock chains: straight-line runs of the Algorithm 2/3/4 inner
//      shapes inside a block, fused into native loops. Slides are deferred
//      into per-register element offsets; every other op executes for real
//      in program order, reading shift-deferred registers through baked
//      offsets. A MAC whose runtime-resolved VRF row carries a pending
//      shift bails out: the pending slides are materialized and the rest
//      of the chain replays through its original per-op records, so the
//      result is bit-identical in every case.
//
// The per-op handlers below mirror Machine::exec case by case; when editing
// one, edit the other (the lockstep differential tests catch divergence).
#include "fsim/threaded.h"

#include <algorithm>
#include <array>
#include <cstring>
#include <deque>
#include <vector>

#include "common/error.h"
#include "isa/static_info.h"

namespace indexmac {

namespace {

using isa::Instruction;
using isa::kVlMax;
using isa::Op;

float bits_to_f32(std::uint32_t raw) {
  float out;
  std::memcpy(&out, &raw, sizeof out);
  return out;
}

std::uint32_t f32_to_bits(float value) {
  std::uint32_t raw;
  std::memcpy(&raw, &value, sizeof raw);
  return raw;
}

struct TOp;
struct Chain;

/// Per-block execution context the handlers mutate. next_pc is preset to
/// the fall-through pc; only control-flow handlers overwrite it.
struct Ctx {
  ArchState& st;
  MainMemory& mem;
  const std::function<void(int)>* marker_hook;
  ThreadedEngine::Stats* stats;
  std::uint64_t next_pc;
  StopReason stop = StopReason::kRunning;
};

using Handler = void (*)(Ctx&, const TOp&);

/// One pre-bound operation record. `simm` carries the sign-extended
/// immediate (addresses, ALU immediates, jal/jalr link values); `aux`
/// carries a pc-resolved constant (lui/auipc results, branch/jump targets).
struct TOp {
  Handler fn = nullptr;
  std::uint8_t rd = 0, rs1 = 0, rs2 = 0;
  std::int32_t imm = 0;
  std::int64_t simm = 0;
  std::uint64_t aux = 0;
  const Chain* chain = nullptr;
};

/// One fused micro-operation. Slides are not materialized as micros at all
/// (their whole effect is baked into later micros' element offsets and the
/// chain's end fixups); each micro instead records its original op index
/// and how many slides precede it, so a bail can reconstruct the exact
/// interpreter state at its instruction boundary.
struct Micro {
  enum class K : std::uint8_t {
    kMvXS,      ///< x[a] = sext32(elem(v[b], off))
    kMvFS,      ///< f[a] = elem(v[b], off)
    kSrli,      ///< x[a] >>= shamt (packed index words, executed for real)
    kLoadRow,   ///< v[a][0..vl) = mem[x[c] + 4i] (Algorithm 2 B-row load)
    kMacIdxU,   ///< v[a] += elem(v[b], off) * v[x[c] & 0x1f] (int)
    kMacIdxF,   ///< float form
    kMacLaneU,  ///< fused vmv.x.s + vindexmac: x[x] = sext32(elem(v[c], shamt)),
                ///< then v[a] += elem(v[b], off) * v[lane & 0x1f]
    kMacLaneF,  ///< float form
    kMacPackU,  ///< row = 16 | (x[c] & 0xf)
    kMacPackF,
    kMacDualU,  ///< rows from x[c] nibbles 0/1, values elem(v[b], off/off+1)
    kMacDualF,
    kMaccVxU,   ///< v[a] += (u32)x[c] * v[b] (vmacc.vx; b has no pending shift)
    kFmaccVf,   ///< v[a] += f[c] * v[b] (vfmacc.vf)
  };
  K k;
  std::uint8_t a = 0, b = 0, c = 0;
  std::uint8_t off = 0;           ///< baked element offset of v[b] at this point
  std::uint8_t shamt = 0;         ///< kSrli shift amount / kMacLane* index offset
  std::uint8_t x = 0;             ///< kMacLane*: scalar dest of the fused vmv.x.s
  std::uint16_t op_idx = 0;       ///< index of the original op within the chain
  std::uint16_t slide_count = 0;  ///< slide_log entries preceding this micro
  std::uint32_t unsafe_mask = 0;  ///< vregs with a pending shift here (MACs bail)
};

struct Chain {
  std::vector<Micro> micros;
  struct Fixup {
    std::uint8_t reg = 0;
    std::uint8_t shift = 0;
  };
  std::vector<Fixup> fixups;       ///< net slides applied on clean completion
  std::vector<Fixup> slide_log;    ///< every deferred slide, in program order
  const TOp* replay = nullptr;     ///< original per-op records (bail path)
  std::uint32_t op_count = 0;
  std::uint32_t mac_count = 0;
};

struct Block {
  std::uint64_t entry_pc = 0;
  std::uint64_t fall_pc = 0;  ///< pc after the last instruction of the block
  std::uint32_t n_ops = 0;    ///< dynamic instructions per full execution
  std::vector<TOp> ops;       ///< per-instruction records (step/replay layer)
  std::vector<TOp> fast;      ///< chains collapsed (run layer)
};

// ---- scalar handlers -----------------------------------------------------

void h_nop(Ctx&, const TOp&) {}

void h_const_x(Ctx& c, const TOp& o) { c.st.x[o.rd] = o.aux; }  // lui/auipc

void h_jal(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = static_cast<std::uint64_t>(o.simm);  // link (pc + 4)
  c.next_pc = o.aux;
}

void h_j(Ctx& c, const TOp& o) { c.next_pc = o.aux; }  // jal rd=x0

void h_jalr(Ctx& c, const TOp& o) {
  const std::uint64_t target = (c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm)) & ~1ull;
  if (o.rd != 0) c.st.x[o.rd] = o.aux;  // link (pc + 4)
  c.next_pc = target;
}

void h_beq(Ctx& c, const TOp& o) {
  if (c.st.x[o.rs1] == c.st.x[o.rs2]) c.next_pc = o.aux;
}
void h_bne(Ctx& c, const TOp& o) {
  if (c.st.x[o.rs1] != c.st.x[o.rs2]) c.next_pc = o.aux;
}
void h_blt(Ctx& c, const TOp& o) {
  if (static_cast<std::int64_t>(c.st.x[o.rs1]) < static_cast<std::int64_t>(c.st.x[o.rs2]))
    c.next_pc = o.aux;
}
void h_bge(Ctx& c, const TOp& o) {
  if (static_cast<std::int64_t>(c.st.x[o.rs1]) >= static_cast<std::int64_t>(c.st.x[o.rs2]))
    c.next_pc = o.aux;
}
void h_bltu(Ctx& c, const TOp& o) {
  if (c.st.x[o.rs1] < c.st.x[o.rs2]) c.next_pc = o.aux;
}
void h_bgeu(Ctx& c, const TOp& o) {
  if (c.st.x[o.rs1] >= c.st.x[o.rs2]) c.next_pc = o.aux;
}

void h_lw(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(
      c.mem.read_u32(c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm)))));
}
void h_lwu(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = c.mem.read_u32(c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm));
}
void h_ld(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = c.mem.read_u64(c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm));
}
void h_sw(Ctx& c, const TOp& o) {
  c.mem.write_u32(c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm),
                  static_cast<std::uint32_t>(c.st.x[o.rs2]));
}
void h_sd(Ctx& c, const TOp& o) {
  c.mem.write_u64(c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm), c.st.x[o.rs2]);
}
void h_flw(Ctx& c, const TOp& o) {
  c.st.f[o.rd] = c.mem.read_u32(c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm));
}
void h_fsw(Ctx& c, const TOp& o) {
  c.mem.write_u32(c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm), c.st.f[o.rs2]);
}

void h_addi(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = c.st.x[o.rs1] + static_cast<std::uint64_t>(o.simm);
}
void h_slti(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = static_cast<std::int64_t>(c.st.x[o.rs1]) < o.simm ? 1 : 0;
}
void h_sltiu(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = c.st.x[o.rs1] < static_cast<std::uint64_t>(o.simm) ? 1 : 0;
}
void h_xori(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = c.st.x[o.rs1] ^ static_cast<std::uint64_t>(o.simm);
}
void h_ori(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = c.st.x[o.rs1] | static_cast<std::uint64_t>(o.simm);
}
void h_andi(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = c.st.x[o.rs1] & static_cast<std::uint64_t>(o.simm);
}
void h_slli(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] << o.imm; }
void h_srli(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] >> o.imm; }
void h_srai(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(c.st.x[o.rs1]) >> o.imm);
}
void h_add(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] + c.st.x[o.rs2]; }
void h_sub(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] - c.st.x[o.rs2]; }
void h_sll(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] << (c.st.x[o.rs2] & 63); }
void h_slt(Ctx& c, const TOp& o) {
  c.st.x[o.rd] =
      static_cast<std::int64_t>(c.st.x[o.rs1]) < static_cast<std::int64_t>(c.st.x[o.rs2]) ? 1 : 0;
}
void h_sltu(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] < c.st.x[o.rs2] ? 1 : 0; }
void h_xor(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] ^ c.st.x[o.rs2]; }
void h_srl(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] >> (c.st.x[o.rs2] & 63); }
void h_sra(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = static_cast<std::uint64_t>(static_cast<std::int64_t>(c.st.x[o.rs1]) >>
                                            (c.st.x[o.rs2] & 63));
}
void h_or(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] | c.st.x[o.rs2]; }
void h_and(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] & c.st.x[o.rs2]; }
void h_mul(Ctx& c, const TOp& o) { c.st.x[o.rd] = c.st.x[o.rs1] * c.st.x[o.rs2]; }

void h_ebreak(Ctx& c, const TOp&) { c.stop = StopReason::kEbreak; }
void h_ecall(Ctx& c, const TOp&) { c.stop = StopReason::kEcall; }

void h_marker(Ctx& c, const TOp& o) {
  if (*c.marker_hook) (*c.marker_hook)(o.imm);
}

// ---- vector handlers -----------------------------------------------------

void h_vsetvli(Ctx& c, const TOp& o) {
  const std::uint64_t avl = o.rs1 == 0 ? kVlMax : c.st.x[o.rs1];
  c.st.vl = static_cast<std::uint32_t>(std::min<std::uint64_t>(avl, kVlMax));
  if (o.rd != 0) c.st.x[o.rd] = c.st.vl;
}

void h_vle32(Ctx& c, const TOp& o) {
  c.mem.read_u32_block(c.st.x[o.rs1], c.st.v[o.rd].data(), c.st.vl);
}
void h_vse32(Ctx& c, const TOp& o) {
  c.mem.write_u32_block(c.st.x[o.rs1], c.st.v[o.rd].data(), c.st.vl);
}
void h_vluxei32(Ctx& c, const TOp& o) {
  const std::uint64_t base = c.st.x[o.rs1];
  const std::array<std::uint32_t, kVlMax> idx = c.st.v[o.rs2];  // vd may alias vs2
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] = c.mem.read_u32(base + idx[i]);
}

void h_vadd_vx(Ctx& c, const TOp& o) {
  const std::uint32_t s = static_cast<std::uint32_t>(c.st.x[o.rs1]);
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] = c.st.v[o.rs2][i] + s;
}
void h_vadd_vv(Ctx& c, const TOp& o) {
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] = c.st.v[o.rs2][i] + c.st.v[o.rs1][i];
}
void h_vfadd_vv(Ctx& c, const TOp& o) {
  for (unsigned i = 0; i < c.st.vl; ++i)
    c.st.v[o.rd][i] =
        f32_to_bits(bits_to_f32(c.st.v[o.rs2][i]) + bits_to_f32(c.st.v[o.rs1][i]));
}
void h_vmul_vv(Ctx& c, const TOp& o) {
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] = c.st.v[o.rs2][i] * c.st.v[o.rs1][i];
}
void h_vfmul_vv(Ctx& c, const TOp& o) {
  for (unsigned i = 0; i < c.st.vl; ++i)
    c.st.v[o.rd][i] =
        f32_to_bits(bits_to_f32(c.st.v[o.rs2][i]) * bits_to_f32(c.st.v[o.rs1][i]));
}
void h_vredsum(Ctx& c, const TOp& o) {
  std::uint32_t acc = c.st.v[o.rs1][0];
  for (unsigned i = 0; i < c.st.vl; ++i) acc += c.st.v[o.rs2][i];
  if (c.st.vl > 0) c.st.v[o.rd][0] = acc;
}
void h_vfredusum(Ctx& c, const TOp& o) {
  float acc = bits_to_f32(c.st.v[o.rs1][0]);
  for (unsigned i = 0; i < c.st.vl; ++i) acc += bits_to_f32(c.st.v[o.rs2][i]);
  if (c.st.vl > 0) c.st.v[o.rd][0] = f32_to_bits(acc);
}
void h_vadd_vi(Ctx& c, const TOp& o) {
  const std::uint32_t s = static_cast<std::uint32_t>(o.imm);
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] = c.st.v[o.rs2][i] + s;
}
void h_vmacc_vx(Ctx& c, const TOp& o) {
  const std::uint32_t s = static_cast<std::uint32_t>(c.st.x[o.rs1]);
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] += s * c.st.v[o.rs2][i];
}
void h_vfmacc_vf(Ctx& c, const TOp& o) {
  const float s = bits_to_f32(c.st.f[o.rs1]);
  for (unsigned i = 0; i < c.st.vl; ++i)
    c.st.v[o.rd][i] =
        f32_to_bits(bits_to_f32(c.st.v[o.rd][i]) + s * bits_to_f32(c.st.v[o.rs2][i]));
}
void h_vmv_v_x(Ctx& c, const TOp& o) {
  const std::uint32_t s = static_cast<std::uint32_t>(c.st.x[o.rs1]);
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] = s;
}
void h_vmv_v_i(Ctx& c, const TOp& o) {
  const std::uint32_t s = static_cast<std::uint32_t>(o.imm);
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] = s;
}
void h_vmv_x_s(Ctx& c, const TOp& o) {
  c.st.x[o.rd] = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(static_cast<std::int32_t>(c.st.v[o.rs2][0])));
}
void h_vfmv_f_s(Ctx& c, const TOp& o) { c.st.f[o.rd] = c.st.v[o.rs2][0]; }
void h_vmv_s_x(Ctx& c, const TOp& o) {
  if (c.st.vl > 0) c.st.v[o.rd][0] = static_cast<std::uint32_t>(c.st.x[o.rs1]);
}

void h_vslidedown_vx(Ctx& c, const TOp& o) {
  const std::uint64_t offset = c.st.x[o.rs1];
  const std::array<std::uint32_t, kVlMax> src = c.st.v[o.rs2];
  for (unsigned i = 0; i < c.st.vl; ++i) {
    const std::uint64_t j = i + offset;
    c.st.v[o.rd][i] = j < kVlMax ? src[j] : 0;
  }
}
void h_vslidedown_vi(Ctx& c, const TOp& o) {
  const std::uint64_t offset = static_cast<std::uint64_t>(o.imm);
  const std::array<std::uint32_t, kVlMax> src = c.st.v[o.rs2];
  for (unsigned i = 0; i < c.st.vl; ++i) {
    const std::uint64_t j = i + offset;
    c.st.v[o.rd][i] = j < kVlMax ? src[j] : 0;
  }
}
void h_vslide1down(Ctx& c, const TOp& o) {
  const std::array<std::uint32_t, kVlMax> src = c.st.v[o.rs2];
  if (c.st.vl > 0) {
    for (unsigned i = 0; i + 1 < c.st.vl; ++i) c.st.v[o.rd][i] = src[i + 1];
    c.st.v[o.rd][c.st.vl - 1] = static_cast<std::uint32_t>(c.st.x[o.rs1]);
  }
}

void h_vindexmac_u(Ctx& c, const TOp& o) {
  const unsigned src = static_cast<unsigned>(c.st.x[o.rs1] & 0x1f);
  const std::uint32_t scale = c.st.v[o.rs2][0];
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] += scale * c.st.v[src][i];
}
void h_vindexmac_f(Ctx& c, const TOp& o) {
  const unsigned src = static_cast<unsigned>(c.st.x[o.rs1] & 0x1f);
  const float scale = bits_to_f32(c.st.v[o.rs2][0]);
  for (unsigned i = 0; i < c.st.vl; ++i)
    c.st.v[o.rd][i] =
        f32_to_bits(bits_to_f32(c.st.v[o.rd][i]) + scale * bits_to_f32(c.st.v[src][i]));
}
void h_vindexmacp_u(Ctx& c, const TOp& o) {
  const unsigned src = 16u | static_cast<unsigned>(c.st.x[o.rs1] & 0xf);
  const std::uint32_t scale = c.st.v[o.rs2][0];
  for (unsigned i = 0; i < c.st.vl; ++i) c.st.v[o.rd][i] += scale * c.st.v[src][i];
}
void h_vindexmacp_f(Ctx& c, const TOp& o) {
  const unsigned src = 16u | static_cast<unsigned>(c.st.x[o.rs1] & 0xf);
  const float scale = bits_to_f32(c.st.v[o.rs2][0]);
  for (unsigned i = 0; i < c.st.vl; ++i)
    c.st.v[o.rd][i] =
        f32_to_bits(bits_to_f32(c.st.v[o.rd][i]) + scale * bits_to_f32(c.st.v[src][i]));
}
void h_vindexmac2_u(Ctx& c, const TOp& o) {
  const unsigned src0 = 16u | static_cast<unsigned>(c.st.x[o.rs1] & 0xf);
  const unsigned src1 = 16u | static_cast<unsigned>((c.st.x[o.rs1] >> 4) & 0xf);
  const std::uint32_t s0 = c.st.v[o.rs2][0];
  const std::uint32_t s1 = c.st.v[o.rs2][1];
  for (unsigned i = 0; i < c.st.vl; ++i) {
    c.st.v[o.rd][i] += s0 * c.st.v[src0][i];
    c.st.v[o.rd][i] += s1 * c.st.v[src1][i];
  }
}
void h_vindexmac2_f(Ctx& c, const TOp& o) {
  const unsigned src0 = 16u | static_cast<unsigned>(c.st.x[o.rs1] & 0xf);
  const unsigned src1 = 16u | static_cast<unsigned>((c.st.x[o.rs1] >> 4) & 0xf);
  const float s0 = bits_to_f32(c.st.v[o.rs2][0]);
  const float s1 = bits_to_f32(c.st.v[o.rs2][1]);
  for (unsigned i = 0; i < c.st.vl; ++i) {
    c.st.v[o.rd][i] =
        f32_to_bits(bits_to_f32(c.st.v[o.rd][i]) + s0 * bits_to_f32(c.st.v[src0][i]));
    c.st.v[o.rd][i] =
        f32_to_bits(bits_to_f32(c.st.v[o.rd][i]) + s1 * bits_to_f32(c.st.v[src1][i]));
  }
}

// ---- superblock chain execution ------------------------------------------

/// Element `off` of v[reg] under a deferred shift: reads past the register
/// end are the zeros the slides would have filled in.
std::uint32_t shifted_elem(const ArchState& st, unsigned reg, unsigned off) {
  return off < kVlMax ? st.v[reg][off] : 0;
}

/// Materializes a deferred shift: v[i] = v[i + s], zero-filled.
void apply_shift(ArchState& st, unsigned reg, unsigned s) {
  auto& v = st.v[reg];
  for (unsigned i = 0; i < kVlMax; ++i) v[i] = i + s < kVlMax ? v[i + s] : 0;
}

/// Abandons fused execution before original op `op_idx`: applies the
/// `slide_count` slides deferred so far (state is then exactly the
/// interpreter's after op_idx instructions) and replays the rest of the
/// chain through its original per-op records.
void chain_bail(Ctx& c, const Chain& ch, std::uint32_t slide_count, std::uint32_t op_idx) {
  std::array<std::uint8_t, isa::kNumVRegs> pend{};
  for (std::uint32_t j = 0; j < slide_count; ++j) {
    const Chain::Fixup& s = ch.slide_log[j];
    pend[s.reg] =
        static_cast<std::uint8_t>(std::min<unsigned>(kVlMax, pend[s.reg] + s.shift));
  }
  for (unsigned r = 0; r < isa::kNumVRegs; ++r)
    if (pend[r] != 0) apply_shift(c.st, r, pend[r]);
  ++c.stats->chain_bails;
  for (std::uint32_t j = op_idx; j < ch.op_count; ++j) {
    const TOp& op = ch.replay[j];
    op.fn(c, op);
  }
}

void h_chain(Ctx& c, const TOp& o) {
  const Chain& ch = *o.chain;
  ArchState& st = c.st;
  // The deferred-slide model bakes in vslide semantics at vl == kVlMax
  // (tail elements untouched otherwise); narrower vl replays per-op.
  if (st.vl != kVlMax) {
    chain_bail(c, ch, 0, 0);
    return;
  }
  const std::size_t n = ch.micros.size();
  for (std::size_t k = 0; k < n; ++k) {
    const Micro& u = ch.micros[k];
    switch (u.k) {
      case Micro::K::kMvXS:
        st.x[u.a] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(shifted_elem(st, u.b, u.off))));
        break;
      case Micro::K::kMvFS:
        st.f[u.a] = shifted_elem(st, u.b, u.off);
        break;
      case Micro::K::kSrli:
        st.x[u.a] >>= u.shamt;
        break;
      case Micro::K::kLoadRow:
        c.mem.read_u32_block(st.x[u.c], st.v[u.a].data(), kVlMax);
        break;
      case Micro::K::kMacIdxU: {
        const unsigned row = static_cast<unsigned>(st.x[u.c] & 0x1f);
        if ((u.unsafe_mask >> row) & 1u) {
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const std::uint32_t scale = shifted_elem(st, u.b, u.off);
        auto& acc = st.v[u.a];
        const auto& src = st.v[row];
        for (unsigned i = 0; i < kVlMax; ++i) acc[i] += scale * src[i];
        break;
      }
      case Micro::K::kMacIdxF: {
        const unsigned row = static_cast<unsigned>(st.x[u.c] & 0x1f);
        if ((u.unsafe_mask >> row) & 1u) {
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const float scale = bits_to_f32(shifted_elem(st, u.b, u.off));
        auto& acc = st.v[u.a];
        const auto& src = st.v[row];
        for (unsigned i = 0; i < kVlMax; ++i)
          acc[i] = f32_to_bits(bits_to_f32(acc[i]) + scale * bits_to_f32(src[i]));
        break;
      }
      case Micro::K::kMacLaneU: {
        const std::uint32_t lane = shifted_elem(st, u.c, u.shamt);
        st.x[u.x] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(lane)));
        const unsigned row = lane & 0x1f;
        if ((u.unsafe_mask >> row) & 1u) {
          // The replayed vmv.x.s recomputes the identical x value: its
          // source vreg cannot have changed since this micro started.
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const std::uint32_t scale = shifted_elem(st, u.b, u.off);
        auto& acc = st.v[u.a];
        const auto& src = st.v[row];
        for (unsigned i = 0; i < kVlMax; ++i) acc[i] += scale * src[i];
        break;
      }
      case Micro::K::kMacLaneF: {
        const std::uint32_t lane = shifted_elem(st, u.c, u.shamt);
        st.x[u.x] = static_cast<std::uint64_t>(
            static_cast<std::int64_t>(static_cast<std::int32_t>(lane)));
        const unsigned row = lane & 0x1f;
        if ((u.unsafe_mask >> row) & 1u) {
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const float scale = bits_to_f32(shifted_elem(st, u.b, u.off));
        auto& acc = st.v[u.a];
        const auto& src = st.v[row];
        for (unsigned i = 0; i < kVlMax; ++i)
          acc[i] = f32_to_bits(bits_to_f32(acc[i]) + scale * bits_to_f32(src[i]));
        break;
      }
      case Micro::K::kMacPackU: {
        const unsigned row = 16u | static_cast<unsigned>(st.x[u.c] & 0xf);
        if ((u.unsafe_mask >> row) & 1u) {
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const std::uint32_t scale = shifted_elem(st, u.b, u.off);
        auto& acc = st.v[u.a];
        const auto& src = st.v[row];
        for (unsigned i = 0; i < kVlMax; ++i) acc[i] += scale * src[i];
        break;
      }
      case Micro::K::kMacPackF: {
        const unsigned row = 16u | static_cast<unsigned>(st.x[u.c] & 0xf);
        if ((u.unsafe_mask >> row) & 1u) {
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const float scale = bits_to_f32(shifted_elem(st, u.b, u.off));
        auto& acc = st.v[u.a];
        const auto& src = st.v[row];
        for (unsigned i = 0; i < kVlMax; ++i)
          acc[i] = f32_to_bits(bits_to_f32(acc[i]) + scale * bits_to_f32(src[i]));
        break;
      }
      case Micro::K::kMacDualU: {
        const unsigned r0 = 16u | static_cast<unsigned>(st.x[u.c] & 0xf);
        const unsigned r1 = 16u | static_cast<unsigned>((st.x[u.c] >> 4) & 0xf);
        if (((u.unsafe_mask >> r0) | (u.unsafe_mask >> r1)) & 1u) {
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const std::uint32_t s0 = shifted_elem(st, u.b, u.off);
        const std::uint32_t s1 = shifted_elem(st, u.b, u.off + 1u);
        auto& acc = st.v[u.a];
        const auto& src0 = st.v[r0];
        const auto& src1 = st.v[r1];
        for (unsigned i = 0; i < kVlMax; ++i) {
          acc[i] += s0 * src0[i];
          acc[i] += s1 * src1[i];
        }
        break;
      }
      case Micro::K::kMacDualF: {
        const unsigned r0 = 16u | static_cast<unsigned>(st.x[u.c] & 0xf);
        const unsigned r1 = 16u | static_cast<unsigned>((st.x[u.c] >> 4) & 0xf);
        if (((u.unsafe_mask >> r0) | (u.unsafe_mask >> r1)) & 1u) {
          chain_bail(c, ch, u.slide_count, u.op_idx);
          return;
        }
        const float s0 = bits_to_f32(shifted_elem(st, u.b, u.off));
        const float s1 = bits_to_f32(shifted_elem(st, u.b, u.off + 1u));
        auto& acc = st.v[u.a];
        const auto& src0 = st.v[r0];
        const auto& src1 = st.v[r1];
        for (unsigned i = 0; i < kVlMax; ++i) {
          acc[i] = f32_to_bits(bits_to_f32(acc[i]) + s0 * bits_to_f32(src0[i]));
          acc[i] = f32_to_bits(bits_to_f32(acc[i]) + s1 * bits_to_f32(src1[i]));
        }
        break;
      }
      case Micro::K::kMaccVxU: {
        const std::uint32_t scale = static_cast<std::uint32_t>(st.x[u.c]);
        auto& acc = st.v[u.a];
        const auto& src = st.v[u.b];
        for (unsigned i = 0; i < kVlMax; ++i) acc[i] += scale * src[i];
        break;
      }
      case Micro::K::kFmaccVf: {
        const float scale = bits_to_f32(st.f[u.c]);
        auto& acc = st.v[u.a];
        const auto& src = st.v[u.b];
        for (unsigned i = 0; i < kVlMax; ++i)
          acc[i] = f32_to_bits(bits_to_f32(acc[i]) + scale * bits_to_f32(src[i]));
        break;
      }
    }
  }
  for (const Chain::Fixup& f : ch.fixups) apply_shift(st, f.reg, f.shift);
  c.stats->superblock_macs += ch.mac_count;
}

}  // namespace

// ---- engine implementation -----------------------------------------------

struct ThreadedEngine::Impl {
  Machine& m;
  const Instruction* code;
  const isa::StaticInstInfo* info;
  std::uint64_t base;
  std::uint64_t code_bytes;
  std::size_t nslots;

  enum : std::uint8_t { kUnknown = 0, kFallbackSlot = 1, kBuilt = 2 };
  std::vector<std::uint8_t> slot_state;
  std::vector<Block*> slot_ptr;
  std::deque<Block> blocks;
  std::deque<Chain> chains;
  std::vector<TOp> step_ops;  ///< lazily-built per-slot records for step()
  Stats stats;

  explicit Impl(Machine& machine)
      : m(machine),
        code(machine.code_),
        info(machine.info_),
        base(machine.base_),
        code_bytes(machine.code_bytes_),
        nslots(static_cast<std::size_t>(machine.code_bytes_ >> 2)),
        slot_state(nslots, kUnknown),
        slot_ptr(nslots, nullptr),
        step_ops(nslots) {}

  Ctx make_ctx(std::uint64_t fall_pc) {
    return Ctx{m.state_, m.memory_, &m.marker_hook_, &stats, fall_pc, StopReason::kRunning};
  }

  TOp make_op(std::size_t slot);
  Block* build_block(std::size_t entry);
  void build_fast(Block& b, std::size_t entry);
  Block* lookup_block(std::uint64_t pc);
  StopReason run(std::uint64_t max_steps);
  StopReason run_with_breakpoints(const BreakpointSet& bps, std::uint64_t max_steps);
  StopReason step();
};

TOp ThreadedEngine::Impl::make_op(std::size_t slot) {
  const Instruction& in = code[slot];
  const std::uint64_t pc = base + 4 * slot;
  TOp o;
  o.rd = in.rd;
  o.rs1 = in.rs1;
  o.rs2 = in.rs2;
  o.imm = in.imm;
  o.simm = static_cast<std::int64_t>(in.imm);
  // rd == x0: pure x-register writes become no-ops at bind time so handlers
  // never need the interpreter's post-instruction x0 clear mid-block.
  const bool x0_sink = in.rd == 0;
  switch (in.op) {
    case Op::kLui:
      o.aux = static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm) << 12);
      o.fn = x0_sink ? h_nop : h_const_x;
      break;
    case Op::kAuipc:
      o.aux = pc + static_cast<std::uint64_t>(static_cast<std::int64_t>(in.imm) << 12);
      o.fn = x0_sink ? h_nop : h_const_x;
      break;
    case Op::kJal:
      o.aux = pc + static_cast<std::uint64_t>(o.simm);   // target
      o.simm = static_cast<std::int64_t>(pc + 4);        // link
      o.fn = x0_sink ? h_j : h_jal;
      break;
    case Op::kJalr:
      o.aux = pc + 4;  // link
      o.fn = h_jalr;
      break;
    case Op::kBeq:
    case Op::kBne:
    case Op::kBlt:
    case Op::kBge:
    case Op::kBltu:
    case Op::kBgeu:
      o.aux = pc + static_cast<std::uint64_t>(o.simm);  // taken target
      o.fn = in.op == Op::kBeq    ? h_beq
             : in.op == Op::kBne  ? h_bne
             : in.op == Op::kBlt  ? h_blt
             : in.op == Op::kBge  ? h_bge
             : in.op == Op::kBltu ? h_bltu
                                  : h_bgeu;
      break;
    case Op::kLw: o.fn = x0_sink ? h_nop : h_lw; break;
    case Op::kLwu: o.fn = x0_sink ? h_nop : h_lwu; break;
    case Op::kLd: o.fn = x0_sink ? h_nop : h_ld; break;
    case Op::kSw: o.fn = h_sw; break;
    case Op::kSd: o.fn = h_sd; break;
    case Op::kFlw: o.fn = h_flw; break;
    case Op::kFsw: o.fn = h_fsw; break;
    case Op::kAddi: o.fn = x0_sink ? h_nop : h_addi; break;
    case Op::kSlti: o.fn = x0_sink ? h_nop : h_slti; break;
    case Op::kSltiu: o.fn = x0_sink ? h_nop : h_sltiu; break;
    case Op::kXori: o.fn = x0_sink ? h_nop : h_xori; break;
    case Op::kOri: o.fn = x0_sink ? h_nop : h_ori; break;
    case Op::kAndi: o.fn = x0_sink ? h_nop : h_andi; break;
    case Op::kSlli: o.fn = x0_sink ? h_nop : h_slli; break;
    case Op::kSrli: o.fn = x0_sink ? h_nop : h_srli; break;
    case Op::kSrai: o.fn = x0_sink ? h_nop : h_srai; break;
    case Op::kAdd: o.fn = x0_sink ? h_nop : h_add; break;
    case Op::kSub: o.fn = x0_sink ? h_nop : h_sub; break;
    case Op::kSll: o.fn = x0_sink ? h_nop : h_sll; break;
    case Op::kSlt: o.fn = x0_sink ? h_nop : h_slt; break;
    case Op::kSltu: o.fn = x0_sink ? h_nop : h_sltu; break;
    case Op::kXor: o.fn = x0_sink ? h_nop : h_xor; break;
    case Op::kSrl: o.fn = x0_sink ? h_nop : h_srl; break;
    case Op::kSra: o.fn = x0_sink ? h_nop : h_sra; break;
    case Op::kOr: o.fn = x0_sink ? h_nop : h_or; break;
    case Op::kAnd: o.fn = x0_sink ? h_nop : h_and; break;
    case Op::kMul: o.fn = x0_sink ? h_nop : h_mul; break;
    case Op::kEbreak: o.fn = h_ebreak; break;
    case Op::kEcall: o.fn = h_ecall; break;
    case Op::kMarker: o.fn = h_marker; break;
    case Op::kVsetvli: o.fn = h_vsetvli; break;
    case Op::kVle32: o.fn = h_vle32; break;
    case Op::kVse32: o.fn = h_vse32; break;
    case Op::kVluxei32: o.fn = h_vluxei32; break;
    case Op::kVaddVx: o.fn = h_vadd_vx; break;
    case Op::kVaddVV: o.fn = h_vadd_vv; break;
    case Op::kVfaddVV: o.fn = h_vfadd_vv; break;
    case Op::kVmulVV: o.fn = h_vmul_vv; break;
    case Op::kVfmulVV: o.fn = h_vfmul_vv; break;
    case Op::kVredsumVS: o.fn = h_vredsum; break;
    case Op::kVfredusumVS: o.fn = h_vfredusum; break;
    case Op::kVaddVi: o.fn = h_vadd_vi; break;
    case Op::kVmaccVx: o.fn = h_vmacc_vx; break;
    case Op::kVfmaccVf: o.fn = h_vfmacc_vf; break;
    case Op::kVmvVX: o.fn = h_vmv_v_x; break;
    case Op::kVmvVI: o.fn = h_vmv_v_i; break;
    case Op::kVmvXS: o.fn = x0_sink ? h_nop : h_vmv_x_s; break;
    case Op::kVfmvFS: o.fn = h_vfmv_f_s; break;
    case Op::kVmvSX: o.fn = h_vmv_s_x; break;
    case Op::kVslidedownVx: o.fn = h_vslidedown_vx; break;
    case Op::kVslidedownVi: o.fn = h_vslidedown_vi; break;
    case Op::kVslide1downVx: o.fn = h_vslide1down; break;
    case Op::kVindexmacVx: o.fn = h_vindexmac_u; break;
    case Op::kVfindexmacVx: o.fn = h_vindexmac_f; break;
    case Op::kVindexmacpVx: o.fn = h_vindexmacp_u; break;
    case Op::kVfindexmacpVx: o.fn = h_vindexmacp_f; break;
    case Op::kVindexmac2Vx: o.fn = h_vindexmac2_u; break;
    case Op::kVfindexmac2Vx: o.fn = h_vindexmac2_f; break;
    default:
      // Fallback-class ops (SSR, illegal) never reach here: both the block
      // builder and step() route them to Machine::step by flag.
      IMAC_ASSERT(false, "threaded: no handler bound for " + isa::mnemonic(in.op));
  }
  return o;
}

Block* ThreadedEngine::Impl::build_block(std::size_t entry) {
  if (info[entry].has(isa::kSiThreadedFallback)) {
    slot_state[entry] = kFallbackSlot;
    return nullptr;
  }
  Block b;
  b.entry_pc = base + 4 * entry;
  for (std::size_t s = entry; s < nslots; ++s) {
    const isa::StaticInstInfo& si = info[s];
    if (si.has(isa::kSiThreadedFallback)) break;  // fall through into Machine::step
    b.ops.push_back(make_op(s));
    if (si.has(isa::kSiBranch | isa::kSiJump | isa::kSiHalt)) break;
  }
  b.n_ops = static_cast<std::uint32_t>(b.ops.size());
  b.fall_pc = b.entry_pc + 4ull * b.n_ops;
  blocks.push_back(std::move(b));
  Block& placed = blocks.back();
  build_fast(placed, entry);
  slot_state[entry] = kBuilt;
  slot_ptr[entry] = &placed;
  ++stats.blocks_built;
  return &placed;
}

namespace {

/// Incremental chain construction state over one candidate run.
struct ChainScan {
  std::vector<Micro> micros;
  std::vector<Chain::Fixup> slide_log;              ///< deferred slides, in order
  std::array<std::uint8_t, isa::kNumVRegs> pend{};  ///< deferred shift per vreg
  std::uint32_t pend_mask = 0;     ///< vregs with pend > 0
  std::uint32_t written_mask = 0;  ///< vregs written by non-slide chain ops
  std::uint16_t op_idx = 0;        ///< ops accepted into the run so far
  unsigned macs = 0;

  void reset() {
    micros.clear();
    slide_log.clear();
    pend.fill(0);
    pend_mask = 0;
    written_mask = 0;
    op_idx = 0;
    macs = 0;
  }

  /// Appends the instruction as a micro if its structural constraints hold
  /// under the current deferred-shift state; false closes the run.
  bool try_add(const Instruction& in) {
    switch (in.op) {
      case Op::kVslide1downVx:
        if (in.rs1 != 0 || in.rd != in.rs2) return false;  // only in-place zero-fill
        if ((written_mask >> in.rd) & 1u) return false;    // slide of an in-chain write
        slide_log.push_back({in.rd, 1});
        bump(in.rd, 1);
        ++op_idx;
        return true;
      case Op::kVslidedownVi: {
        if (in.rd != in.rs2 || in.imm < 0) return false;
        if ((written_mask >> in.rd) & 1u) return false;
        const auto amt = static_cast<std::uint8_t>(std::min<std::int32_t>(in.imm, kVlMax));
        slide_log.push_back({in.rd, amt});
        bump(in.rd, amt);
        ++op_idx;
        return true;
      }
      case Op::kVmvXS:
        if (in.rd == 0) return false;
        push({Micro::K::kMvXS, in.rd, in.rs2, 0, pend[in.rs2], 0});
        return true;
      case Op::kVfmvFS:
        push({Micro::K::kMvFS, in.rd, in.rs2, 0, pend[in.rs2], 0});
        return true;
      case Op::kSrli:
        if (in.rd != in.rs1 || in.rd == 0 || in.imm < 0 || in.imm > 63) return false;
        push({Micro::K::kSrli, in.rd, 0, 0, 0, static_cast<std::uint8_t>(in.imm)});
        return true;
      case Op::kVle32:
        if (pend[in.rd] != 0) return false;  // load into a shift-deferred reg
        push({Micro::K::kLoadRow, in.rd, 0, in.rs1, 0, 0});
        written_mask |= 1u << in.rd;
        return true;
      case Op::kVmaccVx:
        // Wide read of vs2: only safe when it has no pending shift.
        if (pend[in.rd] != 0 || pend[in.rs2] != 0) return false;
        push({Micro::K::kMaccVxU, in.rd, in.rs2, in.rs1, 0, 0});
        written_mask |= 1u << in.rd;
        ++macs;
        return true;
      case Op::kVfmaccVf:
        if (pend[in.rd] != 0 || pend[in.rs2] != 0) return false;
        push({Micro::K::kFmaccVf, in.rd, in.rs2, in.rs1, 0, 0});
        written_mask |= 1u << in.rd;
        ++macs;
        return true;
      case Op::kVindexmacVx:
      case Op::kVfindexmacVx:
      case Op::kVindexmacpVx:
      case Op::kVfindexmacpVx:
      case Op::kVindexmac2Vx:
      case Op::kVfindexmac2Vx: {
        if (pend[in.rd] != 0) return false;  // accumulate into a deferred reg
        // Peephole: a vmv.x.s immediately feeding this MAC's row index (the
        // Algorithm 2/3 inner shape) fuses into one lane-MAC micro. The
        // mv's scalar write stays architectural; a bail replays both ops.
        if ((in.op == Op::kVindexmacVx || in.op == Op::kVfindexmacVx) && !micros.empty()) {
          Micro& prev = micros.back();
          if (prev.k == Micro::K::kMvXS && prev.a == in.rs1 && prev.op_idx + 1 == op_idx) {
            prev.k = in.op == Op::kVindexmacVx ? Micro::K::kMacLaneU : Micro::K::kMacLaneF;
            prev.x = prev.a;       // scalar dest of the mv
            prev.c = prev.b;       // index vreg
            prev.shamt = prev.off; // index element offset
            prev.a = in.rd;
            prev.b = in.rs2;
            prev.off = pend[in.rs2];
            prev.unsafe_mask = pend_mask;
            written_mask |= 1u << in.rd;
            ++macs;
            ++op_idx;
            return true;
          }
        }
        Micro::K k;
        switch (in.op) {
          case Op::kVindexmacVx: k = Micro::K::kMacIdxU; break;
          case Op::kVfindexmacVx: k = Micro::K::kMacIdxF; break;
          case Op::kVindexmacpVx: k = Micro::K::kMacPackU; break;
          case Op::kVfindexmacpVx: k = Micro::K::kMacPackF; break;
          case Op::kVindexmac2Vx: k = Micro::K::kMacDualU; break;
          default: k = Micro::K::kMacDualF; break;
        }
        push({k, in.rd, in.rs2, in.rs1, pend[in.rs2], 0, 0, 0, 0, pend_mask});
        written_mask |= 1u << in.rd;
        ++macs;
        return true;
      }
      default:
        return false;
    }
  }

 private:
  void push(Micro u) {
    u.op_idx = op_idx++;
    u.slide_count = static_cast<std::uint16_t>(slide_log.size());
    micros.push_back(u);
  }

  void bump(unsigned reg, unsigned amount) {
    pend[reg] = static_cast<std::uint8_t>(std::min<unsigned>(kVlMax, pend[reg] + amount));
    pend_mask |= 1u << reg;
  }
};

}  // namespace

void ThreadedEngine::Impl::build_fast(Block& b, std::size_t entry) {
  b.fast.reserve(b.ops.size());
  ChainScan scan;
  std::size_t run_begin = 0;  // first op index of the open candidate run

  const auto close_run = [&](std::size_t end) {
    const std::size_t count = end - run_begin;
    if (!scan.slide_log.empty() && count >= 2) {
      Chain ch;
      ch.micros = std::move(scan.micros);
      ch.slide_log = std::move(scan.slide_log);
      ch.replay = b.ops.data() + run_begin;
      ch.op_count = static_cast<std::uint32_t>(count);
      ch.mac_count = scan.macs;
      for (unsigned r = 0; r < isa::kNumVRegs; ++r)
        if (scan.pend[r] != 0) ch.fixups.push_back({static_cast<std::uint8_t>(r), scan.pend[r]});
      chains.push_back(std::move(ch));
      TOp t;
      t.fn = h_chain;
      t.chain = &chains.back();
      b.fast.push_back(t);
    } else {
      for (std::size_t j = run_begin; j < end; ++j) b.fast.push_back(b.ops[j]);
    }
    scan.reset();
  };

  for (std::size_t i = 0; i < b.ops.size(); ++i) {
    const std::size_t slot = entry + i;
    const Instruction& in = code[slot];
    if (info[slot].has(isa::kSiChainFusable) && scan.try_add(in)) continue;
    close_run(i);
    run_begin = i;
    if (info[slot].has(isa::kSiChainFusable) && scan.try_add(in)) continue;
    b.fast.push_back(b.ops[i]);
    run_begin = i + 1;
  }
  close_run(b.ops.size());
}

Block* ThreadedEngine::Impl::lookup_block(std::uint64_t pc) {
  if (pc < base || pc - base >= code_bytes || ((pc - base) & 3) != 0) return nullptr;
  const std::size_t slot = static_cast<std::size_t>((pc - base) >> 2);
  switch (slot_state[slot]) {
    case kUnknown: return build_block(slot);
    case kFallbackSlot: return nullptr;
    default: return slot_ptr[slot];
  }
}

StopReason ThreadedEngine::Impl::run(std::uint64_t max_steps) {
  std::uint64_t budget = max_steps;
  while (budget > 0) {
    Block* b = lookup_block(m.state_.pc);
    if (b == nullptr) {
      // Fallback-class op or out-of-range pc: the interpreter executes it
      // (or raises its exact fault).
      ++stats.fallback_steps;
      const StopReason r = m.step();
      --budget;
      if (r != StopReason::kRunning) return r;
      continue;
    }
    if (b->n_ops > budget) {
      // Not enough budget for the whole block: finish instruction-exact
      // through the interpreter.
      while (budget > 0) {
        ++stats.fallback_steps;
        const StopReason r = m.step();
        --budget;
        if (r != StopReason::kRunning) return r;
      }
      break;
    }
    Ctx ctx = make_ctx(b->fall_pc);
    for (const TOp& op : b->fast) op.fn(ctx, op);
    m.state_.pc = ctx.next_pc;
    m.state_.x[0] = 0;
    m.retired_ += b->n_ops;
    budget -= b->n_ops;
    ++stats.block_runs;
    if (ctx.stop != StopReason::kRunning) return ctx.stop;
  }
  return StopReason::kMaxSteps;
}

StopReason ThreadedEngine::Impl::run_with_breakpoints(const BreakpointSet& bps,
                                                      std::uint64_t max_steps) {
  if (bps.empty()) return run(max_steps);
  std::uint64_t budget = max_steps;
  while (budget > 0) {
    if (bps.contains(m.state_.pc)) return StopReason::kRunning;
    Block* b = lookup_block(m.state_.pc);
    if (b == nullptr || b->n_ops > budget || bps.intersects(b->entry_pc, b->fall_pc)) {
      // Interpreter-step: a fallback-class op, a block too big for the
      // remaining budget, or a block containing a breakpoint (a fused chain
      // must not sail past a pc the debugger is watching). Steps stay
      // inside the block's range so a breakpoint-free successor block goes
      // back to the fast path.
      const std::uint64_t lo = b != nullptr ? b->entry_pc : 0;
      const std::uint64_t hi = b != nullptr ? b->fall_pc : 0;
      do {
        ++stats.fallback_steps;
        const StopReason r = m.step();
        --budget;
        if (r != StopReason::kRunning) return r;
        if (bps.contains(m.state_.pc)) return StopReason::kRunning;
      } while (b != nullptr && budget > 0 && m.state_.pc >= lo && m.state_.pc < hi);
      continue;
    }
    Ctx ctx = make_ctx(b->fall_pc);
    for (const TOp& op : b->fast) op.fn(ctx, op);
    m.state_.pc = ctx.next_pc;
    m.state_.x[0] = 0;
    m.retired_ += b->n_ops;
    budget -= b->n_ops;
    ++stats.block_runs;
    if (ctx.stop != StopReason::kRunning) return ctx.stop;
  }
  return StopReason::kMaxSteps;
}

StopReason ThreadedEngine::Impl::step() {
  const std::uint64_t pc = m.state_.pc;
  if (pc < base || pc - base >= code_bytes || ((pc - base) & 3) != 0) {
    ++stats.fallback_steps;
    return m.step();  // raises the interpreter's exact out-of-range fault
  }
  const std::size_t slot = static_cast<std::size_t>((pc - base) >> 2);
  if (info[slot].has(isa::kSiThreadedFallback)) {
    ++stats.fallback_steps;
    return m.step();
  }
  TOp& op = step_ops[slot];
  if (op.fn == nullptr) op = make_op(slot);
  Ctx ctx = make_ctx(pc + 4);
  op.fn(ctx, op);
  m.state_.pc = ctx.next_pc;
  m.state_.x[0] = 0;
  ++m.retired_;
  return ctx.stop;
}

ThreadedEngine::ThreadedEngine(Machine& machine) : impl_(std::make_unique<Impl>(machine)) {}
ThreadedEngine::~ThreadedEngine() = default;

StopReason ThreadedEngine::run(std::uint64_t max_steps) { return impl_->run(max_steps); }
StopReason ThreadedEngine::run_with_breakpoints(const BreakpointSet& breakpoints,
                                                std::uint64_t max_steps) {
  return impl_->run_with_breakpoints(breakpoints, max_steps);
}
StopReason ThreadedEngine::step() { return impl_->step(); }
const ThreadedEngine::Stats& ThreadedEngine::stats() const { return impl_->stats; }
Machine& ThreadedEngine::machine() { return impl_->m; }

const char* exec_engine_name(ExecEngine engine) {
  return engine == ExecEngine::kThreaded ? "threaded" : "interp";
}

ExecEngine parse_exec_engine(const std::string& text) {
  if (text == "interp") return ExecEngine::kInterp;
  if (text == "threaded") return ExecEngine::kThreaded;
  raise("unknown execution engine \"" + text + "\" (valid: interp, threaded)");
}

}  // namespace indexmac
