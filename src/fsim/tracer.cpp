#include "fsim/tracer.h"

#include <cstdio>
#include <cstring>

#include "isa/encoding.h"

namespace indexmac {

std::pair<TraceRecord, StopReason> Tracer::step() {
  const ArchState& pre = machine_.state();
  TraceRecord rec;
  rec.index = count_++;
  rec.pc = pre.pc;
  rec.inst = machine_.program().at(pre.pc);
  rec.disasm = isa::disassemble(rec.inst);
  rec.vl = pre.vl;

  const StopReason stop = machine_.step();

  const ArchState& post = machine_.state();
  if (isa::writes_x(rec.inst)) rec.x_write = post.x[rec.inst.rd];
  if (isa::writes_f(rec.inst)) rec.f_write = post.f[rec.inst.rd];
  rec.v_write = isa::writes_v(rec.inst);
  return {rec, stop};
}

StopReason Tracer::run(std::ostream& out, std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    auto [rec, stop] = step();
    out << format(rec) << '\n';
    if (stop != StopReason::kRunning) return stop;
  }
  return StopReason::kMaxSteps;
}

std::string Tracer::format(const TraceRecord& rec) {
  char head[64];
  std::snprintf(head, sizeof head, "%8llu  %08llx  ",
                static_cast<unsigned long long>(rec.index),
                static_cast<unsigned long long>(rec.pc));
  std::string line = head + rec.disasm;
  if (rec.x_write) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "   # x%u=0x%llx", rec.inst.rd,
                  static_cast<unsigned long long>(*rec.x_write));
    line += buf;
  } else if (rec.f_write) {
    char buf[48];
    float value;
    std::memcpy(&value, &*rec.f_write, sizeof value);
    std::snprintf(buf, sizeof buf, "   # f%u=%g", rec.inst.rd, value);
    line += buf;
  } else if (rec.v_write) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "   # v%u updated (vl=%u)", rec.inst.rd, rec.vl);
    line += buf;
  }
  return line;
}

}  // namespace indexmac
