// Threaded-code execution engine over a functional Machine.
//
// The interpreter pays a bounds check, a table lookup and a ~60-way decode
// switch per dynamic instruction. This engine predecodes each basic block
// of the (immutable) Program once into a cached sequence of pre-bound
// operation records — operands, sign-extended immediates and pc-relative
// targets resolved at build time — and then dispatches through stored
// function pointers, one block at a time. On top of the block cache,
// straight-line runs of the three hot inner-loop shapes (the Algorithm
// 2/3/4 index-extract -> MAC -> slide chains) are fused into native C++
// loops ("superblocks") that track slid registers as element offsets
// instead of copying 16 lanes per slide.
//
// Correctness contract: every observable effect — architectural state,
// memory contents, instructions_retired, marker-hook calls, stop reasons
// and SimError text — is bit-identical to running the same program through
// Machine::step. Anything outside the fast path falls back to the
// interpreter: SSR stream ops and illegal encodings execute via
// Machine::step, a chain whose runtime-resolved VRF row carries a pending
// deferred slide replays its original per-op records, and out-of-range pcs
// delegate to Machine::step so the fault text matches exactly.
//
// Block predecode is keyed by pc slot against the Program the Machine was
// constructed with; Programs are immutable after construction, so the
// cache never needs invalidation within a Machine's lifetime.
#pragma once

#include <cstdint>
#include <memory>

#include "fsim/engine.h"
#include "fsim/machine.h"

namespace indexmac {

/// Threaded-code executor bound to one Machine. The Machine remains the
/// owner of all architectural state; this engine is a faster stepper over
/// it, and interleaving ThreadedEngine and Machine::step calls is safe.
class ThreadedEngine {
 public:
  explicit ThreadedEngine(Machine& machine);
  ~ThreadedEngine();

  ThreadedEngine(const ThreadedEngine&) = delete;
  ThreadedEngine& operator=(const ThreadedEngine&) = delete;

  /// Runs until ebreak/ecall or `max_steps`, like Machine::run. Blocks
  /// whose instruction count exceeds the remaining budget execute through
  /// the interpreter so the stopping point is instruction-exact.
  StopReason run(std::uint64_t max_steps = 100'000'000);

  /// Machine::run_with_breakpoints semantics on this engine: stops BEFORE
  /// executing any pc in `breakpoints` (kRunning, pc parked on the
  /// breakpoint; a pc already in the set returns immediately). Blocks whose
  /// pc range contains a breakpoint execute instruction-by-instruction
  /// through the interpreter — superblock fusion never skips a breakpoint —
  /// while breakpoint-free blocks keep the predecoded fast path, so a
  /// debugged program still runs at near-threaded speed between stops.
  StopReason run_with_breakpoints(const BreakpointSet& breakpoints,
                                  std::uint64_t max_steps = 100'000'000);

  /// Executes exactly one instruction through the pre-bound handler for
  /// its pc slot (superblocks are not used here), with Machine::step's
  /// exact observable semantics. This is what trace-driven timing runs use
  /// under --engine=threaded: the per-instruction DynInst stream must be
  /// identical to the interpreter's.
  StopReason step();

  /// Execution counters (diagnostics; not architectural state).
  struct Stats {
    std::uint64_t blocks_built = 0;     ///< basic blocks predecoded
    std::uint64_t block_runs = 0;       ///< whole-block executions
    std::uint64_t superblock_macs = 0;  ///< MAC ops retired through fused chains
    std::uint64_t chain_bails = 0;      ///< chains replayed per-op (alias/vl guard)
    std::uint64_t fallback_steps = 0;   ///< instructions delegated to Machine::step
  };
  [[nodiscard]] const Stats& stats() const;

  [[nodiscard]] Machine& machine();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace indexmac
