// A set of breakpoint PCs shared by the debug stub and the execution
// engines. Breakpoints are purely a stepping concern: they never modify the
// program image (no trap-instruction patching — the simulators check PCs
// directly), so setting or clearing one cannot perturb architectural
// results. Kept in fsim/ rather than debug/ because both engines take it as
// a run() parameter; the GDB server (debug/gdb_server.h) owns the instance.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

namespace indexmac {

/// A small ordered set of program counters. Sized for interactive debugging
/// (a handful of entries), so lookups binary-search a sorted vector — no
/// per-node allocation, and `intersects` answers "does this basic block
/// contain a breakpoint" in one lower_bound for the threaded engine.
class BreakpointSet {
 public:
  /// Inserts `pc`; idempotent.
  void add(std::uint64_t pc) {
    const auto it = std::lower_bound(pcs_.begin(), pcs_.end(), pc);
    if (it == pcs_.end() || *it != pc) pcs_.insert(it, pc);
  }

  /// Removes `pc`; returns false when it was not set.
  bool remove(std::uint64_t pc) {
    const auto it = std::lower_bound(pcs_.begin(), pcs_.end(), pc);
    if (it == pcs_.end() || *it != pc) return false;
    pcs_.erase(it);
    return true;
  }

  [[nodiscard]] bool contains(std::uint64_t pc) const {
    return std::binary_search(pcs_.begin(), pcs_.end(), pc);
  }

  /// True when any breakpoint lies in the half-open range [lo, hi).
  [[nodiscard]] bool intersects(std::uint64_t lo, std::uint64_t hi) const {
    const auto it = std::lower_bound(pcs_.begin(), pcs_.end(), lo);
    return it != pcs_.end() && *it < hi;
  }

  [[nodiscard]] bool empty() const { return pcs_.empty(); }
  [[nodiscard]] std::size_t size() const { return pcs_.size(); }
  void clear() { pcs_.clear(); }

  /// All breakpoint PCs in ascending order.
  [[nodiscard]] const std::vector<std::uint64_t>& pcs() const { return pcs_; }

 private:
  std::vector<std::uint64_t> pcs_;  // sorted ascending, unique
};

}  // namespace indexmac
