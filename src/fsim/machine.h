// Functional (architectural) simulator: executes programs instruction by
// instruction with exact RV64+RVV-subset semantics. It is the golden model
// the timing simulator is validated against, and the engine behind kernel
// correctness tests.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "asm/program.h"
#include "fsim/breakpoints.h"
#include "isa/isa.h"
#include "mem/main_memory.h"

namespace indexmac {

/// Architectural register state. f registers hold raw fp32 bits in the low
/// word (the subset has no fp64); v registers hold kVlMax 32-bit elements.
struct ArchState {
  std::uint64_t pc = 0;
  std::array<std::uint64_t, isa::kNumXRegs> x{};
  std::array<std::uint32_t, isa::kNumFRegs> f{};
  std::array<std::array<std::uint32_t, isa::kVlMax>, isa::kNumVRegs> v{};
  std::uint32_t vl = 0;

  [[nodiscard]] float freg_f32(unsigned r) const;
  void set_freg_f32(unsigned r, float value);
  [[nodiscard]] float velem_f32(unsigned reg, unsigned lane) const;
  void set_velem_f32(unsigned reg, unsigned lane, float value);
};

/// One SSR address-generation state machine (Algorithm 5): a configured
/// base/length window over memory that the streaming MAC pops 32-bit words
/// from, wrapping at `count`. Architectural state — the timing model's
/// trace reads it to resolve stream operands pre-execution.
struct SsrStream {
  std::uint64_t base = 0;  ///< first word address
  std::uint32_t count = 0; ///< words before wrap
  std::uint32_t pos = 0;   ///< next word index (< count when enabled)
  bool enabled = false;
};

/// Why a run loop stopped.
enum class StopReason { kRunning, kEbreak, kEcall, kMaxSteps };

/// Renders "pc 0x#### (`<disassembly>`)" for error messages, or a note that
/// the pc lies outside the program. Used by both simulators so faults carry
/// the faulting instruction, not just a bare message.
[[nodiscard]] std::string describe_pc(const Program& program, std::uint64_t pc);

/// One scalar core + vector engine executing a Program against MainMemory.
class Machine {
 public:
  Machine(const Program& program, MainMemory& memory);

  /// Executes a single instruction; returns the stop reason (kRunning if
  /// execution may continue). Throws SimError on malformed execution
  /// (pc outside program, vindexmac with vl==0 misuse never traps — the
  /// instruction simply does nothing for vl==0).
  StopReason step();

  /// Runs until ebreak/ecall or `max_steps`. Returns the stop reason.
  StopReason run(std::uint64_t max_steps = 100'000'000);

  /// Like run(), but additionally stops BEFORE executing any instruction
  /// whose pc is in `breakpoints`, returning kRunning with the pc parked on
  /// the breakpoint (a pc already in the set returns immediately — resuming
  /// past a breakpoint is the caller's step-over, exactly as GDB drives a
  /// stub). kMaxSteps still means the budget ran out. Used by the debug
  /// stub (debug/gdb_server.h); breakpoints never patch the program image,
  /// so architectural results are unchanged.
  StopReason run_with_breakpoints(const BreakpointSet& breakpoints,
                                  std::uint64_t max_steps = 100'000'000);

  [[nodiscard]] const ArchState& state() const { return state_; }
  [[nodiscard]] ArchState& state() { return state_; }
  [[nodiscard]] const Program& program() const { return program_; }
  [[nodiscard]] std::uint64_t instructions_retired() const { return retired_; }
  /// The four SSR address-generation state machines (index 0..3).
  [[nodiscard]] const std::array<SsrStream, 4>& ssr() const { return ssr_; }
  /// The backing memory — the trace needs a pre-execution peek at the word
  /// the index stream will deliver.
  [[nodiscard]] const MainMemory& memory() const { return memory_; }

  /// Called when a marker instruction retires (id passed through).
  void set_marker_hook(std::function<void(int)> hook) { marker_hook_ = std::move(hook); }

 private:
  // The threaded-code engine (fsim/threaded.h) executes pre-bound operation
  // records against this machine's architectural state and delegates
  // unsupported corners back to step(); it needs the same private view of
  // state/ssr/retired the interpreter has.
  friend class ThreadedEngine;

  void exec(const isa::Instruction& inst, std::uint64_t next_pc);
  /// Pops the next 32-bit word from stream `sid`, advancing and wrapping at
  /// the configured length. SimError if the stream is disabled or empty.
  std::uint32_t ssr_pop(unsigned sid);

  const Program& program_;
  MainMemory& memory_;
  // Hot-path view of the (immutable) program: raw pointers into its
  // predecoded tables, so step() indexes by slot instead of calling
  // Program::at per dynamic instruction.
  const isa::Instruction* code_ = nullptr;
  const isa::StaticInstInfo* info_ = nullptr;
  std::uint64_t base_ = 0;
  std::uint64_t code_bytes_ = 0;
  ArchState state_;
  std::array<SsrStream, 4> ssr_{};
  std::uint64_t retired_ = 0;
  std::function<void(int)> marker_hook_;
  StopReason pending_stop_ = StopReason::kRunning;
};

}  // namespace indexmac
