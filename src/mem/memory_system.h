// The timing-side memory hierarchy of Table I:
//   * L1I  64 KB 4-way, 1-cycle hit (scalar fetch)
//   * L1D  64 KB 4-way, 2-cycle hit (scalar data)
//   * L2  512 KB 8-way, 8 banks, 8-cycle hit, shared; the vector engine's
//     load/store queues access the L2 directly (no L1 on the vector path)
//   * DDR4-2400-like DRAM: fixed latency plus per-line channel occupancy
//
// The model is latency-computing: each access is presented with its start
// cycle and returns its completion cycle. Contention is modelled with
// next-free counters per L2 bank and for the DRAM channel, and in-flight
// DRAM fills merge accesses to the same line (MSHR-style).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "mem/cache.h"

namespace indexmac {

/// Configuration of the whole hierarchy (defaults reproduce Table I).
struct MemHierConfig {
  CacheConfig l1i{.size_bytes = 64 * 1024, .ways = 4, .line_bytes = 64, .hit_latency = 1};
  CacheConfig l1d{.size_bytes = 64 * 1024, .ways = 4, .line_bytes = 64, .hit_latency = 2};
  CacheConfig l2{.size_bytes = 512 * 1024, .ways = 8, .line_bytes = 64, .hit_latency = 8};
  unsigned l2_banks = 8;
  unsigned l2_bank_occupancy = 2;   ///< cycles a bank is busy per access
  unsigned dram_latency = 100;      ///< cycles from request to first data
  unsigned dram_line_occupancy = 7; ///< channel cycles per 64B line (~19.2 GB/s @2 GHz)
};

/// Counter block for the Fig. 6 metric and general reporting.
struct MemStats {
  std::uint64_t scalar_reads = 0;
  std::uint64_t scalar_writes = 0;
  std::uint64_t vector_reads = 0;
  std::uint64_t vector_writes = 0;
  std::uint64_t ifetch_lines = 0;
  std::uint64_t dram_lines = 0;  ///< lines transferred to/from DRAM

  /// Total data-side memory accesses (the paper's Fig. 6 counts memory
  /// operations performed by the kernels; instruction granularity).
  [[nodiscard]] std::uint64_t data_accesses() const {
    return scalar_reads + scalar_writes + vector_reads + vector_writes;
  }

  friend MemStats operator-(MemStats a, const MemStats& b) {
    a.scalar_reads -= b.scalar_reads;
    a.scalar_writes -= b.scalar_writes;
    a.vector_reads -= b.vector_reads;
    a.vector_writes -= b.vector_writes;
    a.ifetch_lines -= b.ifetch_lines;
    a.dram_lines -= b.dram_lines;
    return a;
  }
};

class MemorySystem {
 public:
  explicit MemorySystem(const MemHierConfig& config);

  /// Scalar load/store of `bytes` at `addr`, starting at `cycle`.
  /// Returns completion cycle.
  std::uint64_t scalar_data(std::uint64_t addr, unsigned bytes, bool is_store,
                            std::uint64_t cycle);

  /// Vector-engine load/store (straight to the banked L2).
  std::uint64_t vector_data(std::uint64_t addr, unsigned bytes, bool is_store,
                            std::uint64_t cycle);

  /// Instruction fetch of the line containing `addr`.
  std::uint64_t ifetch(std::uint64_t addr, std::uint64_t cycle);

  [[nodiscard]] const MemStats& stats() const { return stats_; }
  [[nodiscard]] const Cache& l1d() const { return l1d_; }
  [[nodiscard]] const Cache& l2() const { return l2_; }

  /// Clears tag arrays and counters (fresh machine).
  void reset();

 private:
  /// Access one line through the L2 (+DRAM on miss); returns completion.
  std::uint64_t l2_line(std::uint64_t line_addr, bool is_store, std::uint64_t cycle);
  /// Completion adjusted for an in-flight fill of this line, if any.
  std::uint64_t pending_fill(std::uint64_t line_addr, std::uint64_t cycle) const;
  /// DRAM fill/writeback of one line; returns data-ready cycle.
  std::uint64_t dram_line(std::uint64_t line_addr, std::uint64_t cycle);
  /// Walk all lines an access touches; returns worst completion.
  template <typename Fn>
  std::uint64_t for_lines(std::uint64_t addr, unsigned bytes, Fn&& fn);

  MemHierConfig config_;
  Cache l1i_;
  Cache l1d_;
  Cache l2_;
  unsigned l2_line_shift_ = 0;  ///< log2(l2.line_bytes): bank/line math without divisions
  unsigned l1i_line_shift_ = 0;
  std::vector<std::uint64_t> l2_bank_free_;
  std::uint64_t dram_channel_free_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> inflight_fills_;  ///< line -> ready cycle
  /// Upper bound on every ready cycle in inflight_fills_: accesses at or
  /// past it skip the hash lookup entirely (pure fast path; stale entries
  /// would have returned `cycle` unchanged anyway).
  std::uint64_t inflight_max_ready_ = 0;
  MemStats stats_;
};

}  // namespace indexmac
