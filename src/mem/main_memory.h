// Functional (architectural) memory: a sparse, byte-addressable backing
// store shared by the functional and timing simulators. Timing models
// compute *when* an access completes; this class holds *what* the bytes are.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/error.h"

namespace indexmac {

/// Sparse page-granular memory. Reads of untouched memory return zeros.
class MainMemory {
 public:
  static constexpr std::uint64_t kPageBytes = 4096;

  MainMemory() = default;
  // Non-copyable/movable: the last-page caches below hold raw pointers
  // into pages_, which a memberwise copy would leave aliasing the source
  // object. Nothing in the stack copies a memory image; simulations share
  // one by reference.
  MainMemory(const MainMemory&) = delete;
  MainMemory& operator=(const MainMemory&) = delete;

  [[nodiscard]] std::uint8_t read_u8(std::uint64_t addr) const;
  [[nodiscard]] std::uint32_t read_u32(std::uint64_t addr) const;
  [[nodiscard]] std::uint64_t read_u64(std::uint64_t addr) const;
  [[nodiscard]] float read_f32(std::uint64_t addr) const;

  void write_u8(std::uint64_t addr, std::uint8_t v);
  void write_u32(std::uint64_t addr, std::uint32_t v);
  void write_u64(std::uint64_t addr, std::uint64_t v);
  void write_f32(std::uint64_t addr, float v);

  /// Bulk copy into memory.
  void write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data);
  /// Bulk copy out of memory.
  void read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const;

  /// Bulk 32-bit-word transfers for the threaded engine's vector load/store
  /// handlers: one page lookup covers the whole run when the range stays
  /// inside a page (the common case for 64-byte-aligned operand streams),
  /// falling back to per-word accesses across page boundaries. Results are
  /// bit-identical to `count` read_u32/write_u32 calls.
  void read_u32_block(std::uint64_t addr, std::uint32_t* out, std::size_t count) const;
  void write_u32_block(std::uint64_t addr, const std::uint32_t* data, std::size_t count);

  /// Convenience for fp32/int32 arrays (the only element types used).
  void write_f32s(std::uint64_t addr, std::span<const float> data);
  void write_i32s(std::uint64_t addr, std::span<const std::int32_t> data);
  [[nodiscard]] std::vector<float> read_f32s(std::uint64_t addr, std::size_t count) const;
  [[nodiscard]] std::vector<std::int32_t> read_i32s(std::uint64_t addr, std::size_t count) const;

  /// Number of pages currently materialized (for tests).
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

 private:
  using Page = std::vector<std::uint8_t>;

  [[nodiscard]] const Page* find_page(std::uint64_t addr) const;
  Page& page_for(std::uint64_t addr);

  std::unordered_map<std::uint64_t, Page> pages_;
  // Last-touched page per direction. Page addresses are stable (the map
  // never erases and rehashing preserves element addresses), so the cached
  // pointers can only go stale in one way — a cached "absent" read entry
  // whose page a later write materializes — and page_for refreshes the
  // read cache to cover it. Accessors stay O(1) without hashing across the
  // same-page streaks simulations produce. Note: the mutable read cache
  // makes concurrent use of a single MainMemory unsafe (each simulation
  // owns its memory; see core::BatchRunner).
  mutable std::uint64_t read_page_key_ = ~0ull;
  mutable const Page* read_page_ = nullptr;
  std::uint64_t write_page_key_ = ~0ull;
  Page* write_page_ = nullptr;
};

/// Bump allocator that hands out cache-line-aligned regions of the simulated
/// address space for kernel operands.
class AddressAllocator {
 public:
  explicit AddressAllocator(std::uint64_t start = 0x0010'0000, std::uint64_t align = 64)
      : next_(start), align_(align) {}

  /// Reserves `bytes` and returns the base address.
  [[nodiscard]] std::uint64_t alloc(std::uint64_t bytes);

  [[nodiscard]] std::uint64_t high_water() const { return next_; }

 private:
  std::uint64_t next_;
  std::uint64_t align_;
};

}  // namespace indexmac
