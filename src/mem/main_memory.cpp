#include "mem/main_memory.h"

#include "common/bitutil.h"

namespace indexmac {

const MainMemory::Page* MainMemory::find_page(std::uint64_t addr) const {
  const std::uint64_t key = addr / kPageBytes;
  if (key == read_page_key_) return read_page_;
  const auto it = pages_.find(key);
  read_page_key_ = key;
  read_page_ = it == pages_.end() ? nullptr : &it->second;
  return read_page_;
}

MainMemory::Page& MainMemory::page_for(std::uint64_t addr) {
  const std::uint64_t key = addr / kPageBytes;
  if (key == write_page_key_) return *write_page_;
  Page& p = pages_[key];
  if (p.empty()) p.resize(kPageBytes, 0);
  write_page_key_ = key;
  write_page_ = &p;
  read_page_key_ = key;  // a cached "absent" entry may just have appeared
  read_page_ = &p;
  return p;
}

std::uint8_t MainMemory::read_u8(std::uint64_t addr) const {
  const Page* p = find_page(addr);
  return p ? (*p)[addr % kPageBytes] : 0;
}

void MainMemory::write_u8(std::uint64_t addr, std::uint8_t v) {
  page_for(addr)[addr % kPageBytes] = v;
}

std::uint32_t MainMemory::read_u32(std::uint64_t addr) const {
  const std::uint64_t offset = addr % kPageBytes;
  if (offset + 4 <= kPageBytes) {  // within one page: a single lookup
    const Page* p = find_page(addr);
    if (p == nullptr) return 0;
    const std::uint8_t* b = p->data() + offset;
    return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
  }
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(read_u8(addr + i)) << (8 * i);
  return v;
}

std::uint64_t MainMemory::read_u64(std::uint64_t addr) const {
  const std::uint64_t offset = addr % kPageBytes;
  if (offset + 8 <= kPageBytes) {
    const Page* p = find_page(addr);
    if (p == nullptr) return 0;
    const std::uint8_t* b = p->data() + offset;
    std::uint64_t v = 0;
    for (unsigned i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
  }
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(read_u8(addr + i)) << (8 * i);
  return v;
}

float MainMemory::read_f32(std::uint64_t addr) const {
  const std::uint32_t raw = read_u32(addr);
  float out;
  std::memcpy(&out, &raw, sizeof out);
  return out;
}

void MainMemory::write_u32(std::uint64_t addr, std::uint32_t v) {
  const std::uint64_t offset = addr % kPageBytes;
  if (offset + 4 <= kPageBytes) {
    std::uint8_t* b = page_for(addr).data() + offset;
    for (unsigned i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return;
  }
  for (unsigned i = 0; i < 4; ++i) write_u8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void MainMemory::write_u64(std::uint64_t addr, std::uint64_t v) {
  const std::uint64_t offset = addr % kPageBytes;
  if (offset + 8 <= kPageBytes) {
    std::uint8_t* b = page_for(addr).data() + offset;
    for (unsigned i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
    return;
  }
  for (unsigned i = 0; i < 8; ++i) write_u8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void MainMemory::write_f32(std::uint64_t addr, float v) {
  std::uint32_t raw;
  std::memcpy(&raw, &v, sizeof raw);
  write_u32(addr, raw);
}

void MainMemory::read_u32_block(std::uint64_t addr, std::uint32_t* out, std::size_t count) const {
  const std::uint64_t offset = addr % kPageBytes;
  if (count > 0 && offset + 4 * count <= kPageBytes) {
    const Page* p = find_page(addr);
    if (p == nullptr) {
      for (std::size_t i = 0; i < count; ++i) out[i] = 0;
      return;
    }
    const std::uint8_t* b = p->data() + offset;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(out, b, 4 * count);  // pages hold LE bytes: words verbatim
      return;
    }
    for (std::size_t i = 0; i < count; ++i, b += 4)
      out[i] = static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
               static_cast<std::uint32_t>(b[2]) << 16 | static_cast<std::uint32_t>(b[3]) << 24;
    return;
  }
  for (std::size_t i = 0; i < count; ++i) out[i] = read_u32(addr + 4 * i);
}

void MainMemory::write_u32_block(std::uint64_t addr, const std::uint32_t* data,
                                 std::size_t count) {
  const std::uint64_t offset = addr % kPageBytes;
  if (count > 0 && offset + 4 * count <= kPageBytes) {
    std::uint8_t* b = page_for(addr).data() + offset;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(b, data, 4 * count);
      return;
    }
    for (std::size_t i = 0; i < count; ++i, b += 4) {
      const std::uint32_t v = data[i];
      b[0] = static_cast<std::uint8_t>(v);
      b[1] = static_cast<std::uint8_t>(v >> 8);
      b[2] = static_cast<std::uint8_t>(v >> 16);
      b[3] = static_cast<std::uint8_t>(v >> 24);
    }
    return;
  }
  for (std::size_t i = 0; i < count; ++i) write_u32(addr + 4 * i, data[i]);
}

void MainMemory::write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) write_u8(addr + i, data[i]);
}

void MainMemory::read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = read_u8(addr + i);
}

void MainMemory::write_f32s(std::uint64_t addr, std::span<const float> data) {
  for (std::size_t i = 0; i < data.size(); ++i) write_f32(addr + 4 * i, data[i]);
}

void MainMemory::write_i32s(std::uint64_t addr, std::span<const std::int32_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i)
    write_u32(addr + 4 * i, static_cast<std::uint32_t>(data[i]));
}

std::vector<float> MainMemory::read_f32s(std::uint64_t addr, std::size_t count) const {
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_f32(addr + 4 * i);
  return out;
}

std::vector<std::int32_t> MainMemory::read_i32s(std::uint64_t addr, std::size_t count) const {
  std::vector<std::int32_t> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = static_cast<std::int32_t>(read_u32(addr + 4 * i));
  return out;
}

std::uint64_t AddressAllocator::alloc(std::uint64_t bytes) {
  IMAC_CHECK(bytes > 0, "cannot allocate zero bytes");
  const std::uint64_t base = round_up(next_, align_);
  next_ = base + bytes;
  return base;
}

}  // namespace indexmac
