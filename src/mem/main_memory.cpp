#include "mem/main_memory.h"

#include "common/bitutil.h"

namespace indexmac {

const MainMemory::Page* MainMemory::find_page(std::uint64_t addr) const {
  const auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : &it->second;
}

MainMemory::Page& MainMemory::page_for(std::uint64_t addr) {
  Page& p = pages_[addr / kPageBytes];
  if (p.empty()) p.resize(kPageBytes, 0);
  return p;
}

std::uint8_t MainMemory::read_u8(std::uint64_t addr) const {
  const Page* p = find_page(addr);
  return p ? (*p)[addr % kPageBytes] : 0;
}

void MainMemory::write_u8(std::uint64_t addr, std::uint8_t v) {
  page_for(addr)[addr % kPageBytes] = v;
}

std::uint32_t MainMemory::read_u32(std::uint64_t addr) const {
  std::uint32_t v = 0;
  for (unsigned i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(read_u8(addr + i)) << (8 * i);
  return v;
}

std::uint64_t MainMemory::read_u64(std::uint64_t addr) const {
  std::uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(read_u8(addr + i)) << (8 * i);
  return v;
}

float MainMemory::read_f32(std::uint64_t addr) const {
  const std::uint32_t raw = read_u32(addr);
  float out;
  std::memcpy(&out, &raw, sizeof out);
  return out;
}

void MainMemory::write_u32(std::uint64_t addr, std::uint32_t v) {
  for (unsigned i = 0; i < 4; ++i) write_u8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void MainMemory::write_u64(std::uint64_t addr, std::uint64_t v) {
  for (unsigned i = 0; i < 8; ++i) write_u8(addr + i, static_cast<std::uint8_t>(v >> (8 * i)));
}

void MainMemory::write_f32(std::uint64_t addr, float v) {
  std::uint32_t raw;
  std::memcpy(&raw, &v, sizeof raw);
  write_u32(addr, raw);
}

void MainMemory::write_bytes(std::uint64_t addr, std::span<const std::uint8_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i) write_u8(addr + i, data[i]);
}

void MainMemory::read_bytes(std::uint64_t addr, std::span<std::uint8_t> out) const {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = read_u8(addr + i);
}

void MainMemory::write_f32s(std::uint64_t addr, std::span<const float> data) {
  for (std::size_t i = 0; i < data.size(); ++i) write_f32(addr + 4 * i, data[i]);
}

void MainMemory::write_i32s(std::uint64_t addr, std::span<const std::int32_t> data) {
  for (std::size_t i = 0; i < data.size(); ++i)
    write_u32(addr + 4 * i, static_cast<std::uint32_t>(data[i]));
}

std::vector<float> MainMemory::read_f32s(std::uint64_t addr, std::size_t count) const {
  std::vector<float> out(count);
  for (std::size_t i = 0; i < count; ++i) out[i] = read_f32(addr + 4 * i);
  return out;
}

std::vector<std::int32_t> MainMemory::read_i32s(std::uint64_t addr, std::size_t count) const {
  std::vector<std::int32_t> out(count);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = static_cast<std::int32_t>(read_u32(addr + 4 * i));
  return out;
}

std::uint64_t AddressAllocator::alloc(std::uint64_t bytes) {
  IMAC_CHECK(bytes > 0, "cannot allocate zero bytes");
  const std::uint64_t base = round_up(next_, align_);
  next_ = base + bytes;
  return base;
}

}  // namespace indexmac
