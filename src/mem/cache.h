// Timing-side cache model: a set-associative LRU tag array. It tracks
// hits/misses/writebacks; data contents live in MainMemory (the functional
// side), so this model answers only "was it resident" and "what got
// evicted", which is all the latency model needs.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bitutil.h"
#include "common/error.h"

namespace indexmac {

/// Geometry + latency of one cache level.
struct CacheConfig {
  std::uint64_t size_bytes = 64 * 1024;
  unsigned ways = 4;
  unsigned line_bytes = 64;
  unsigned hit_latency = 2;  ///< cycles from access start to data
};

/// Result of touching one line.
struct CacheLineResult {
  bool hit = false;
  bool writeback = false;            ///< a dirty victim was evicted
  std::uint64_t victim_addr = 0;     ///< line address of the writeback
};

/// Hit/miss bookkeeping for one cache level.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] std::uint64_t accesses() const { return hits + misses; }
};

/// Set-associative, write-back, write-allocate, true-LRU tag array.
///
/// Hot-path notes: line size and set count are powers of two, so set/tag
/// extraction is shift/mask (no divisions), and each set remembers its
/// most-recently-used way, which is checked before the associative scan —
/// repeated touches of the same line (streaming kernels, multi-line
/// accesses) hit without scanning. Both are pure shortcuts: hit/miss,
/// victim choice and statistics are identical to the plain LRU scan.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Touches the line containing `addr`. On a miss the line is allocated
  /// (evicting LRU). `is_store` marks the line dirty.
  CacheLineResult access(std::uint64_t addr, bool is_store);

  /// True if the line is currently resident (no state change; for tests).
  [[nodiscard]] bool probe(std::uint64_t addr) const;

  /// Drops all lines (dirty contents are not written back; functional data
  /// lives in MainMemory so nothing is lost).
  void invalidate_all();

  [[nodiscard]] const CacheConfig& config() const { return config_; }
  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  struct Line {
    bool valid = false;
    bool dirty = false;
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< larger = more recently used
  };

  [[nodiscard]] std::uint64_t set_index(std::uint64_t addr) const {
    return (addr >> line_shift_) & set_mask_;
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const {
    return addr >> (line_shift_ + set_shift_);
  }

  CacheConfig config_;
  std::uint64_t num_sets_;
  unsigned line_shift_ = 0;       ///< log2(line_bytes)
  unsigned set_shift_ = 0;        ///< log2(num_sets_)
  std::uint64_t set_mask_ = 0;    ///< num_sets_ - 1
  std::vector<Line> lines_;       ///< num_sets_ x ways, row-major
  std::vector<std::uint32_t> mru_;  ///< per-set most-recently-used way
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace indexmac
