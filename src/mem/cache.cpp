#include "mem/cache.h"

#include <algorithm>

namespace indexmac {

Cache::Cache(const CacheConfig& config) : config_(config) {
  IMAC_CHECK(config.ways > 0, "cache must have at least one way");
  IMAC_CHECK(is_pow2(config.line_bytes), "cache line size must be a power of two");
  IMAC_CHECK(config.size_bytes % (static_cast<std::uint64_t>(config.ways) * config.line_bytes) == 0,
             "cache size must divide evenly into sets");
  num_sets_ = config.size_bytes / config.ways / config.line_bytes;
  IMAC_CHECK(is_pow2(num_sets_), "number of sets must be a power of two");
  line_shift_ = log2_exact(config.line_bytes);
  set_shift_ = log2_exact(num_sets_);
  set_mask_ = num_sets_ - 1;
  lines_.resize(num_sets_ * config.ways);
  mru_.assign(num_sets_, 0);
}

CacheLineResult Cache::access(std::uint64_t addr, bool is_store) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* const begin = &lines_[set * config_.ways];
  ++tick_;

  // MRU front check: most accesses re-touch the set's last-hit line.
  const std::uint32_t front = mru_[set];
  {
    Line& line = begin[front];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      line.dirty = line.dirty || is_store;
      ++stats_.hits;
      return CacheLineResult{.hit = true};
    }
  }
  for (unsigned w = 0; w < config_.ways; ++w) {
    if (w == front) continue;
    Line& line = begin[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      line.dirty = line.dirty || is_store;
      mru_[set] = w;
      ++stats_.hits;
      return CacheLineResult{.hit = true};
    }
  }
  ++stats_.misses;

  // Choose victim: an invalid way, else true LRU.
  Line* victim = begin;
  for (unsigned w = 0; w < config_.ways; ++w) {
    Line& line = begin[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }

  CacheLineResult result{};
  if (victim->valid && victim->dirty) {
    result.writeback = true;
    result.victim_addr = ((victim->tag << set_shift_) | set) << line_shift_;
    ++stats_.writebacks;
  }
  victim->valid = true;
  victim->dirty = is_store;
  victim->tag = tag;
  victim->lru = tick_;
  mru_[set] = static_cast<std::uint32_t>(victim - begin);
  return result;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* const begin = &lines_[set * config_.ways];
  const Line& front = begin[mru_[set]];
  if (front.valid && front.tag == tag) return true;
  for (unsigned w = 0; w < config_.ways; ++w) {
    const Line& line = begin[w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

void Cache::invalidate_all() {
  for (Line& line : lines_) line = Line{};
  std::fill(mru_.begin(), mru_.end(), 0u);
}

}  // namespace indexmac
