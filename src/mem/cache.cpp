#include "mem/cache.h"

namespace indexmac {

Cache::Cache(const CacheConfig& config) : config_(config) {
  IMAC_CHECK(config.ways > 0, "cache must have at least one way");
  IMAC_CHECK(is_pow2(config.line_bytes), "cache line size must be a power of two");
  IMAC_CHECK(config.size_bytes % (static_cast<std::uint64_t>(config.ways) * config.line_bytes) == 0,
             "cache size must divide evenly into sets");
  num_sets_ = config.size_bytes / config.ways / config.line_bytes;
  IMAC_CHECK(is_pow2(num_sets_), "number of sets must be a power of two");
  lines_.resize(num_sets_ * config.ways);
}

CacheLineResult Cache::access(std::uint64_t addr, bool is_store) {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* const begin = &lines_[set * config_.ways];
  ++tick_;

  for (unsigned w = 0; w < config_.ways; ++w) {
    Line& line = begin[w];
    if (line.valid && line.tag == tag) {
      line.lru = tick_;
      line.dirty = line.dirty || is_store;
      ++stats_.hits;
      return CacheLineResult{.hit = true};
    }
  }
  ++stats_.misses;

  // Choose victim: an invalid way, else true LRU.
  Line* victim = begin;
  for (unsigned w = 0; w < config_.ways; ++w) {
    Line& line = begin[w];
    if (!line.valid) {
      victim = &line;
      break;
    }
    if (line.lru < victim->lru) victim = &line;
  }

  CacheLineResult result{};
  if (victim->valid && victim->dirty) {
    result.writeback = true;
    result.victim_addr = (victim->tag * num_sets_ + set) * config_.line_bytes;
    ++stats_.writebacks;
  }
  victim->valid = true;
  victim->dirty = is_store;
  victim->tag = tag;
  victim->lru = tick_;
  return result;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  for (unsigned w = 0; w < config_.ways; ++w) {
    const Line& line = lines_[set * config_.ways + w];
    if (line.valid && line.tag == tag) return true;
  }
  return false;
}

void Cache::invalidate_all() {
  for (Line& line : lines_) line = Line{};
}

}  // namespace indexmac
