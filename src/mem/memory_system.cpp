#include "mem/memory_system.h"

#include <algorithm>

#include "common/bitutil.h"

namespace indexmac {

MemorySystem::MemorySystem(const MemHierConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2),
      l2_line_shift_(log2_exact(config.l2.line_bytes)),
      l1i_line_shift_(log2_exact(config.l1i.line_bytes)),
      l2_bank_free_(config.l2_banks, 0) {
  IMAC_CHECK(config.l2_banks > 0, "L2 needs at least one bank");
}

std::uint64_t MemorySystem::dram_line(std::uint64_t line_addr, std::uint64_t cycle) {
  // Merge with an in-flight fill of the same line if one exists.
  if (const auto it = inflight_fills_.find(line_addr); it != inflight_fills_.end()) {
    if (cycle < it->second) return it->second;
    inflight_fills_.erase(it);
  }
  const std::uint64_t start = std::max(cycle, dram_channel_free_);
  dram_channel_free_ = start + config_.dram_line_occupancy;
  const std::uint64_t ready = start + config_.dram_latency;
  ++stats_.dram_lines;
  if (inflight_fills_.size() > 4096) inflight_fills_.clear();  // bound the merge window
  inflight_fills_[line_addr] = ready;
  inflight_max_ready_ = std::max(inflight_max_ready_, ready);
  return ready;
}

std::uint64_t MemorySystem::pending_fill(std::uint64_t line_addr, std::uint64_t cycle) const {
  // A tag-array hit on a line whose DRAM fill is still in flight must wait
  // for the fill (the tag allocates at miss time in this model). Once
  // `cycle` is past every in-flight ready time no entry can delay it, so
  // the common steady-state hit skips the hash lookup.
  if (cycle >= inflight_max_ready_) return cycle;
  const auto it = inflight_fills_.find(line_addr);
  return (it != inflight_fills_.end() && cycle < it->second) ? it->second : cycle;
}

std::uint64_t MemorySystem::l2_line(std::uint64_t line_addr, bool is_store, std::uint64_t cycle) {
  const std::uint64_t bank_count = l2_bank_free_.size();
  const std::uint64_t bank = (line_addr >> l2_line_shift_) % bank_count;
  const std::uint64_t start = std::max(cycle, l2_bank_free_[bank]);
  l2_bank_free_[bank] = start + config_.l2_bank_occupancy;

  const CacheLineResult r = l2_.access(line_addr, is_store);
  if (r.writeback) dram_line(r.victim_addr, start + config_.l2.hit_latency);
  if (r.hit) return pending_fill(line_addr, start + config_.l2.hit_latency);
  return dram_line(line_addr, start + config_.l2.hit_latency);
}

template <typename Fn>
std::uint64_t MemorySystem::for_lines(std::uint64_t addr, unsigned bytes, Fn&& fn) {
  std::uint64_t done = 0;
  const std::uint64_t first = addr >> l2_line_shift_;
  const std::uint64_t last = (addr + std::max(bytes, 1u) - 1) >> l2_line_shift_;
  for (std::uint64_t l = first; l <= last; ++l)
    done = std::max(done, fn(l << l2_line_shift_));
  return done;
}

std::uint64_t MemorySystem::scalar_data(std::uint64_t addr, unsigned bytes, bool is_store,
                                        std::uint64_t cycle) {
  (is_store ? stats_.scalar_writes : stats_.scalar_reads) += 1;
  return for_lines(addr, bytes, [&](std::uint64_t line_addr) {
    const CacheLineResult r = l1d_.access(line_addr, is_store);
    const std::uint64_t tag_done = cycle + config_.l1d.hit_latency;
    if (r.writeback) l2_line(r.victim_addr, /*is_store=*/true, tag_done);
    if (r.hit) return pending_fill(line_addr, tag_done);
    return l2_line(line_addr, /*is_store=*/false, tag_done);
  });
}

std::uint64_t MemorySystem::vector_data(std::uint64_t addr, unsigned bytes, bool is_store,
                                        std::uint64_t cycle) {
  (is_store ? stats_.vector_writes : stats_.vector_reads) += 1;
  return for_lines(addr, bytes,
                   [&](std::uint64_t line_addr) { return l2_line(line_addr, is_store, cycle); });
}

std::uint64_t MemorySystem::ifetch(std::uint64_t addr, std::uint64_t cycle) {
  ++stats_.ifetch_lines;
  const std::uint64_t line_addr = addr >> l1i_line_shift_ << l1i_line_shift_;
  const CacheLineResult r = l1i_.access(line_addr, /*is_store=*/false);
  const std::uint64_t tag_done = cycle + config_.l1i.hit_latency;
  if (r.hit) return tag_done;
  return l2_line(line_addr, /*is_store=*/false, tag_done);
}

void MemorySystem::reset() {
  l1i_.invalidate_all();
  l1d_.invalidate_all();
  l2_.invalidate_all();
  l1i_.reset_stats();
  l1d_.reset_stats();
  l2_.reset_stats();
  std::fill(l2_bank_free_.begin(), l2_bank_free_.end(), 0);
  dram_channel_free_ = 0;
  inflight_fills_.clear();
  inflight_max_ready_ = 0;
  stats_ = MemStats{};
}

}  // namespace indexmac
