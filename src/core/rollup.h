// Whole-network rollups: folds a sweep's count-weighted per-layer cycles
// into end-to-end network latency and a bytes-moved energy proxy per
// (suite x sparsity x algorithm x kernel config x mode) group.
//
// A sweep measures each unique GEMM shape once and records its suite
// multiplicity (`count`); a rollup multiplies every row back out and sums,
// answering "what does one full forward pass of this model cost on this
// core" instead of "what does one GEMM cost". Rendered as a `# rollup`
// CSV section appended after the per-point rows (parse_csv_report stops at
// the marker, so rollup-bearing CSVs stay loadable, mergeable and
// shardable) and as a "rollup" array in the JSON report — both byte-stable
// and golden-tested like the per-point reports.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/sweep.h"

namespace indexmac::core {

/// One network total: every sweep row of the group, weighted by count.
struct RollupRow {
  std::string suite;
  sparse::Sparsity sp;
  Algorithm algorithm{};
  kernels::Dataflow dataflow = kernels::Dataflow::kBStationary;
  unsigned unroll = 1;
  unsigned tile_rows = 16;
  SweepMode mode = SweepMode::kSampled;
  std::size_t layers = 0;     ///< count-weighted layer instances folded in
  std::size_t workloads = 0;  ///< distinct measured shapes folded in
  /// Sum of per-shape cycles x count: one full pass, end to end.
  double cycles = 0;
  /// Sum of per-shape data accesses x count (scalar + vector reads and
  /// writes at instruction granularity, the Fig. 6 metric).
  std::uint64_t data_accesses = 0;
  /// Bytes-moved energy proxy: data_accesses x 64 (one cache line per
  /// access — an upper bound; scalar accesses touch at most 8 bytes).
  [[nodiscard]] std::uint64_t energy_proxy_bytes() const { return data_accesses * 64; }
};

struct RollupReport {
  std::string spec_name;
  std::uint64_t spec_hash = 0;
  std::vector<RollupRow> rows;
};

/// First line of the CSV rollup section. parse_csv_report treats any line
/// starting with this prefix as end-of-point-data.
inline constexpr const char* kRollupMarkerPrefix = "# rollup";

/// Groups report rows by (suite, sparsity, algorithm, dataflow, unroll,
/// tile_rows, mode) in first-occurrence order and folds each group into a
/// count-weighted network total. Deterministic for a deterministic report.
[[nodiscard]] RollupReport compute_rollup(const SweepReport& report);

/// Stable CSV rendition: the `# rollup` marker line, a header, one row per
/// group. Appended verbatim after report_to_csv output by `sweep --rollup`.
[[nodiscard]] std::string rollup_to_csv(const RollupReport& rollup);

/// The same rows as a JSON array (the report document's "rollup" key).
[[nodiscard]] JsonValue rollup_to_json(const RollupReport& rollup);

/// report_to_json plus a "rollup" section — the `sweep --rollup` JSON body.
[[nodiscard]] std::string report_to_json_with_rollup(const SweepReport& report,
                                                     const RollupReport& rollup);

}  // namespace indexmac::core
