#include "core/runner.h"

#include <algorithm>

#include "common/error.h"
#include "core/algorithm_registry.h"
#include "kernels/kernels.h"

namespace indexmac::core {

using kernels::MarkerId;

ExactResult run_exact(const SpmmProblem& problem, const RunConfig& config,
                      const timing::ProcessorConfig& processor) {
  MainMemory mem;
  const PreparedRun run = prepare(problem, config, mem);
  timing::TimingSim sim(run.program, mem, processor, config.engine);
  ExactResult out;
  out.stats = sim.run();
  return out;
}

namespace {

/// Per-phase averages recovered from the marker event stream of a
/// miniature run (see kernels::MarkerId for the event protocol). The first
/// row group of each k-tile is tracked separately: it absorbs the cold
/// B-row / engine-backlog cost that later groups of the same tile do not
/// pay, so it must not be averaged into the steady per-group cost.
struct PhaseCosts {
  struct StripType {
    double preload = 0;       ///< per-ktile preload/loop overhead
    double head_total = 0;    ///< total cost of the head groups of each k-tile
    double steady_group = 0;  ///< per-group cost past the head
  };
  StripType full;
  StripType tail;
  double head_groups = 0;  ///< how many leading groups the head covers
  double startup = 0;      ///< prologue before the first strip
};

/// Leading row groups per k-tile that absorb cold B-row misses (with 1:4
/// sparsity one group of four rows touches at most 16 of the tile's rows,
/// so cold misses can spill into the second group).
constexpr std::size_t kHeadGroups = 2;

PhaseCosts decompose(const std::vector<timing::MarkerEvent>& events, std::size_t full_visits,
                     std::size_t tail_visits, std::size_t ktiles, std::size_t groups_per_ktile) {
  IMAC_CHECK(!events.empty() && events.front().id == kernels::kMarkerKernelStart,
             "sampled run must start with a kernel-start marker");
  const std::size_t per_visit = ktiles * (1 + groups_per_ktile);
  const std::size_t expected = 2 + (full_visits + tail_visits) * per_visit;
  IMAC_CHECK(events.size() == expected,
             "marker stream has " + std::to_string(events.size()) + " events, expected " +
                 std::to_string(expected));

  PhaseCosts out;
  const std::size_t head = std::min(kHeadGroups, groups_per_ktile);
  out.head_groups = static_cast<double>(head);
  out.startup = static_cast<double>(events.front().cycle);
  std::size_t idx = 1;
  std::uint64_t prev_cycle = events.front().cycle;
  struct Sums {
    double preload = 0, head = 0, steady = 0;
    std::uint64_t preload_n = 0, head_n = 0, steady_n = 0;
  } sums[2];

  for (std::size_t visit = 0; visit < full_visits + tail_visits; ++visit) {
    Sums& s = sums[visit < full_visits ? 0 : 1];
    for (std::size_t t = 0; t < ktiles; ++t) {
      IMAC_CHECK(events[idx].id == kernels::kMarkerPreloadDone, "expected preload marker");
      s.preload += static_cast<double>(events[idx].cycle - prev_cycle);
      ++s.preload_n;
      prev_cycle = events[idx].cycle;
      ++idx;
      for (std::size_t g = 0; g < groups_per_ktile; ++g) {
        IMAC_CHECK(events[idx].id == kernels::kMarkerRowGroupDone, "expected row-group marker");
        const auto delta = static_cast<double>(events[idx].cycle - prev_cycle);
        if (g < head) {
          s.head += delta;
          ++s.head_n;
        } else {
          s.steady += delta;
          ++s.steady_n;
        }
        prev_cycle = events[idx].cycle;
        ++idx;
      }
    }
  }
  IMAC_CHECK(events[idx].id == kernels::kMarkerKernelEnd, "expected kernel-end marker");

  auto finish = [head](const Sums& s) {
    PhaseCosts::StripType t;
    if (s.preload_n > 0) t.preload = s.preload / static_cast<double>(s.preload_n);
    const double visits = s.head_n > 0 ? static_cast<double>(s.head_n) / head : 1.0;
    t.head_total = s.head / visits;
    t.steady_group =
        s.steady_n > 0 ? s.steady / static_cast<double>(s.steady_n) : t.head_total / head;
    return t;
  };
  out.full = finish(sums[0]);
  out.tail = finish(sums[1]);
  return out;
}

/// Full-size cost of one (strip, k-tile) visit given measured phase costs.
double visit_cost(const PhaseCosts::StripType& t, double head_groups, double groups_full_eq) {
  if (groups_full_eq <= head_groups)
    return t.preload + t.head_total * (groups_full_eq / head_groups);
  return t.preload + t.head_total + t.steady_group * (groups_full_eq - head_groups);
}

std::uint64_t analytic_accesses(const kernels::GemmDims& dims, sparse::Sparsity sp,
                                const RunConfig& config) {
  AddressAllocator alloc;
  const kernels::SpmmLayout layout = kernels::make_layout(dims, sp, config.tile_rows, alloc);
  const AlgorithmDescriptor& desc = AlgorithmRegistry::instance().by_algorithm(config.algorithm);
  IMAC_CHECK(desc.footprint != nullptr,
             "algorithm \"" + desc.id + "\" has no analytic footprint model");
  const kernels::KernelFootprint fp = desc.footprint(layout);
  // Scalar index-word loads (Algorithm 4) are memory accesses too: the
  // exact runs count them in MemStats, so the analytic total must match.
  return fp.vector_loads + fp.vector_stores + fp.scalar_loads;
}

}  // namespace

SampledResult run_sampled(const kernels::GemmDims& dims, sparse::Sparsity sp,
                          const RunConfig& config, const timing::ProcessorConfig& processor,
                          const SampleParams& params) {
  IMAC_CHECK(config.kernel.dataflow == kernels::Dataflow::kBStationary,
             "run_sampled supports B-stationary kernels only");
  IMAC_CHECK(AlgorithmRegistry::instance().by_algorithm(config.algorithm).supports_sampled,
             "run_sampled supports the sparse kernels only");

  const unsigned unroll = config.kernel.unroll;
  // Miniature dims: reduced rows (multiple of the unroll factor, so the
  // marker stream is regular) and reduced full strips; full k depth.
  const std::size_t full_strips = dims.cols_b / isa::kVlMax;
  const unsigned tail = static_cast<unsigned>(dims.cols_b % isa::kVlMax);
  const std::size_t sample_full =
      std::min<std::size_t>(full_strips, std::max(1u, params.sample_full_strips));
  const std::size_t rows_r = std::min<std::size_t>(
      round_up(dims.rows_a, unroll), round_up(std::max(params.sample_rows, unroll), unroll));
  kernels::GemmDims sample_dims = dims;
  sample_dims.rows_a = rows_r;
  sample_dims.cols_b = (full_strips == 0 ? 0 : sample_full * isa::kVlMax) + tail;

  SpmmProblem problem = SpmmProblem::random(sample_dims, sp, /*seed=*/12345);
  RunConfig sample_config = config;
  sample_config.kernel.emit_markers = true;

  MainMemory mem;
  const PreparedRun run = prepare(problem, sample_config, mem);
  timing::TimingSim sim(run.program, mem, processor, config.engine);
  SampledResult out;
  out.sample_stats = sim.run(params.max_instructions);

  const std::size_t groups = rows_r / unroll;
  const PhaseCosts costs =
      decompose(sim.markers(), full_strips > 0 ? sample_full : 0, tail != 0 ? 1 : 0,
                run.layout.num_ktiles, groups);

  // Extrapolate: per strip type, each k-tile pays its preload/loop overhead
  // plus the measured first-group cost once and the steady per-group cost
  // for the remaining rows_a/unroll - 1 group equivalents.
  const double groups_full_eq = static_cast<double>(dims.rows_a) / unroll;
  const double ktiles = static_cast<double>(run.layout.num_ktiles);
  double cycles = costs.startup;
  if (full_strips > 0)
    cycles += static_cast<double>(full_strips) * ktiles *
              visit_cost(costs.full, costs.head_groups, groups_full_eq);
  if (tail != 0) cycles += ktiles * visit_cost(costs.tail, costs.head_groups, groups_full_eq);
  out.cycles = cycles;
  const PhaseCosts::StripType& rep = full_strips > 0 ? costs.full : costs.tail;
  out.preload_cycles_per_ktile = rep.preload;
  out.rowgroup_cycles_per_row = rep.steady_group / unroll;

  // Memory accesses are structure-determined; report the exact count.
  out.data_accesses = analytic_accesses(dims, sp, config);
  return out;
}

}  // namespace indexmac::core
