// AlgorithmRegistry: one descriptor per kernel family, replacing the
// hard-wired Algorithm switches that used to be scattered over sweep
// parsing, operand placement, kernel selection, the analytic footprint
// model and report pairing. Adding a family means writing one descriptor
// TU under core/algorithms/ and registering it in
// AlgorithmRegistry::instance() — every consumer (sweep ids, skip rules,
// prepare(), run_sampled, imac_run) picks it up from here.
//
// The registry is built lazily in an explicit, fixed order (no
// static-initialization registration: self-registering TUs are silently
// dead-stripped out of static libraries, and their order is unspecified),
// so iteration order, error messages and `list-algorithms` output are
// deterministic.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/spmm_problem.h"

namespace indexmac::core {

/// Role a family plays when `imac_run report` pairs measurements of the
/// same grid point into speedup columns.
enum class PairingRole {
  kBaseline,    ///< speedup denominator (Algorithm 2)
  kProposed,    ///< the paper's proposal, sped up vs the baseline (Algorithm 3)
  kProposedV2,  ///< follow-up proposal: the report's v2 columns (Algorithm 4)
  kStandalone,  ///< own report line; never folded into a speedup pair
};

[[nodiscard]] const char* pairing_role_name(PairingRole role);

/// Everything the stack needs to know about one kernel family.
struct AlgorithmDescriptor {
  Algorithm algorithm{};     ///< enum value the descriptor serves
  std::string id;            ///< stable CLI/CSV/cache-key identifier ("indexmac")
  std::string display_name;  ///< human-readable name (algorithm_name())
  std::string description;   ///< one-line summary for `list-algorithms`
  PairingRole pairing = PairingRole::kStandalone;
  bool supports_sampled = true;  ///< accepted by run_sampled / sampled sweeps
  bool dense_operands = false;   ///< A is placed dense; no sparse packing
  sparse::IndexMode index_mode = sparse::IndexMode::kByteOffset;

  /// Grid cells the family supports; sweep expansion skips (not errors on)
  /// the rest, so mixed ablations stay expressible.
  std::function<bool(kernels::Dataflow, unsigned unroll)> supports;

  /// Inputs to the program emitter. The dense_* fields are only meaningful
  /// for families with dense_operands set.
  struct EmitContext {
    const kernels::SpmmLayout& layout;
    const kernels::KernelOptions& options;
    std::uint64_t dense_a_base = 0;
    std::size_t dense_a_pitch_elems = 0;
  };
  std::function<Program(const EmitContext&)> emit;

  /// Analytic footprint predictor for sampled runs (null: the family has
  /// no analytic memory model and must be measured exactly).
  std::function<kernels::KernelFootprint(const kernels::SpmmLayout&)> footprint;
};

/// Ordered collection of AlgorithmDescriptors. Standalone-constructible so
/// tests can exercise registration rules without touching the process-wide
/// instance.
class AlgorithmRegistry {
 public:
  AlgorithmRegistry() = default;

  /// The process-wide registry with the built-in families, constructed on
  /// first use in registration order: rowwise, indexmac, indexmac4, dense,
  /// ssr (the order all(), known_ids() and error messages present).
  [[nodiscard]] static const AlgorithmRegistry& instance();

  /// Registers a descriptor. SimError on a duplicate id or enum value, or
  /// on a descriptor missing its id, supports predicate or emitter.
  void add(AlgorithmDescriptor desc);

  /// Descriptor by CLI id, or nullptr if unknown.
  [[nodiscard]] const AlgorithmDescriptor* find(const std::string& id) const;
  /// Descriptor by CLI id; SimError naming every known id if unknown.
  [[nodiscard]] const AlgorithmDescriptor& by_id(const std::string& id) const;
  /// Descriptor by enum value; SimError if no family registered it.
  [[nodiscard]] const AlgorithmDescriptor& by_algorithm(Algorithm a) const;

  /// All descriptors, in registration order.
  [[nodiscard]] const std::vector<AlgorithmDescriptor>& all() const { return entries_; }
  /// Comma-separated ids in registration order ("rowwise, indexmac, ...").
  [[nodiscard]] std::string known_ids() const;

 private:
  std::vector<AlgorithmDescriptor> entries_;
};

}  // namespace indexmac::core
