#include "core/batch.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <utility>

#include "common/error.h"

namespace indexmac::core {

namespace {
/// CLI-supplied default pool width; 0 = no override (see set_thread_override).
std::atomic<unsigned> g_thread_override{0};
}  // namespace

BatchRunner::BatchRunner(unsigned threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

BatchRunner::~BatchRunner() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

unsigned BatchRunner::parse_thread_count(const std::string& text) {
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(text.c_str(), &end, 10);
  const bool parsed_fully = end != text.c_str() && *end == '\0' && errno == 0;
  IMAC_CHECK(parsed_fully && parsed >= 1 && parsed <= static_cast<long>(kMaxThreads),
             "thread count must be an integer in [1, " + std::to_string(kMaxThreads) +
                 "], got \"" + text + "\"");
  return static_cast<unsigned>(parsed);
}

void BatchRunner::set_thread_override(unsigned threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

unsigned BatchRunner::default_thread_count() {
  if (const unsigned override = g_thread_override.load(std::memory_order_relaxed); override != 0)
    return override;
  if (const char* env = std::getenv("INDEXMAC_THREADS")) {
    // Reject malformed values loudly: a silently-ignored typo would run a
    // benchmark at an unintended width and corrupt every wall-clock
    // comparison made with it.
    char* end = nullptr;
    errno = 0;
    const long parsed = std::strtol(env, &end, 10);
    const bool parsed_fully = end != env && *end == '\0' && errno == 0;
    IMAC_CHECK(parsed_fully && parsed >= 1 && parsed <= static_cast<long>(kMaxThreads),
               "INDEXMAC_THREADS must be an integer in [1, " + std::to_string(kMaxThreads) +
                   "], got \"" + env + "\"");
    return static_cast<unsigned>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void BatchRunner::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    IMAC_CHECK(!stopping_, "BatchRunner: submit after shutdown");
    queue_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void BatchRunner::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ && drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task routes any exception into the job's future, so a
    // throwing job cannot take the worker (or the pool) down.
    job();
  }
}

BatchJob sampled_job(const kernels::GemmDims& dims, sparse::Sparsity sp, const RunConfig& config,
                     const timing::ProcessorConfig& processor, const SampleParams& sample) {
  BatchJob job;
  job.mode = BatchJob::Mode::kSampled;
  job.dims = dims;
  job.sp = sp;
  job.config = config;
  job.processor = processor;
  job.sample = sample;
  return job;
}

BatchJob exact_job(std::shared_ptr<const SpmmProblem> problem, const RunConfig& config,
                   const timing::ProcessorConfig& processor) {
  IMAC_CHECK(problem != nullptr, "exact_job: null problem");
  BatchJob job;
  job.mode = BatchJob::Mode::kExact;
  job.dims = problem->dims;
  job.sp = problem->sp;
  job.config = config;
  job.processor = processor;
  job.problem = std::move(problem);
  return job;
}

BatchResult run_job(const BatchJob& job) {
  BatchResult out;
  switch (job.mode) {
    case BatchJob::Mode::kExact: {
      // Materialize the problem inside the job so batched and serial
      // execution see byte-identical inputs for a given seed.
      std::shared_ptr<const SpmmProblem> problem = job.problem;
      if (!problem)
        problem = std::make_shared<const SpmmProblem>(
            SpmmProblem::random(job.dims, job.sp, job.seed));
      const ExactResult r = run_exact(*problem, job.config, job.processor);
      out.cycles = static_cast<double>(r.stats.cycles);
      out.data_accesses = r.data_accesses();
      out.stats = r.stats;
      break;
    }
    case BatchJob::Mode::kSampled: {
      const SampledResult r = run_sampled(job.dims, job.sp, job.config, job.processor, job.sample);
      out.cycles = r.cycles;
      out.data_accesses = r.data_accesses;
      out.stats = r.sample_stats;
      break;
    }
  }
  return out;
}

std::vector<BatchResult> run_batch(
    BatchRunner& runner, const std::vector<BatchJob>& jobs,
    const std::function<void(std::size_t, const BatchResult&)>& on_result,
    const std::atomic<bool>* cancel) {
  std::vector<std::future<BatchResult>> futures;
  futures.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    // on_result runs on the worker, immediately after its job: journaling
    // must not be head-of-line blocked behind the collection loop, or a
    // kill while job 0 (say, one huge GEMM) simulates would lose every
    // smaller job that already finished. `on_result` and its targets
    // outlive the blocking collection loop below by construction.
    const BatchJob& job = jobs[i];
    futures.push_back(runner.submit([job, i, &on_result, cancel] {
      // The cancel check lives on the worker, not the submit loop: a
      // signal that lands mid-batch skips everything still queued while
      // jobs already executing finish and journal normally.
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed))
        throw BatchCancelled("batch cancelled before this job started");
      BatchResult result = run_job(job);
      if (on_result) on_result(i, result);
      return result;
    }));
  }

  std::vector<BatchResult> results(jobs.size());
  std::exception_ptr first_error;
  bool cancelled = false;
  for (std::size_t i = 0; i < futures.size(); ++i) {
    try {
      results[i] = futures[i].get();
    } catch (const BatchCancelled&) {
      cancelled = true;
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  // A real job failure outranks the interrupt: it names a bug the user
  // must see, while BatchCancelled only restates what they requested.
  if (first_error) std::rethrow_exception(first_error);
  if (cancelled)
    throw BatchCancelled("batch cancelled: jobs not yet started were skipped (completed "
                         "results were delivered through on_result)");
  return results;
}

std::vector<BatchResult> run_batch(BatchRunner& runner, const std::vector<BatchJob>& jobs) {
  return run_batch(runner, jobs, {});
}

std::vector<BatchResult> run_batch(const std::vector<BatchJob>& jobs, unsigned threads) {
  BatchRunner runner(threads);
  return run_batch(runner, jobs);
}

}  // namespace indexmac::core
