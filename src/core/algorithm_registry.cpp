#include "core/algorithm_registry.h"

#include "common/error.h"
#include "core/algorithms/descriptors.h"

namespace indexmac::core {

const char* pairing_role_name(PairingRole role) {
  switch (role) {
    case PairingRole::kBaseline: return "baseline";
    case PairingRole::kProposed: return "proposed";
    case PairingRole::kProposedV2: return "proposed-v2";
    case PairingRole::kStandalone: return "standalone";
  }
  raise("unknown pairing role");
}

const AlgorithmRegistry& AlgorithmRegistry::instance() {
  // Explicit registration order — also the presentation order everywhere
  // (known-id error messages, `list-algorithms`, the README table).
  static const AlgorithmRegistry registry = [] {
    AlgorithmRegistry r;
    r.add(algorithms::rowwise_descriptor());
    r.add(algorithms::indexmac_descriptor());
    r.add(algorithms::indexmac4_descriptor());
    r.add(algorithms::dense_descriptor());
    r.add(algorithms::ssr_descriptor());
    return r;
  }();
  return registry;
}

void AlgorithmRegistry::add(AlgorithmDescriptor desc) {
  IMAC_CHECK(!desc.id.empty(), "algorithm descriptor needs an id");
  IMAC_CHECK(desc.supports != nullptr,
             "algorithm \"" + desc.id + "\" needs a supports predicate");
  IMAC_CHECK(desc.emit != nullptr, "algorithm \"" + desc.id + "\" needs an emitter");
  for (const AlgorithmDescriptor& e : entries_) {
    IMAC_CHECK(e.id != desc.id, "duplicate algorithm id \"" + desc.id + "\"");
    IMAC_CHECK(e.algorithm != desc.algorithm,
               "algorithms \"" + e.id + "\" and \"" + desc.id +
                   "\" register the same Algorithm value");
  }
  entries_.push_back(std::move(desc));
}

const AlgorithmDescriptor* AlgorithmRegistry::find(const std::string& id) const {
  for (const AlgorithmDescriptor& e : entries_)
    if (e.id == id) return &e;
  return nullptr;
}

const AlgorithmDescriptor& AlgorithmRegistry::by_id(const std::string& id) const {
  const AlgorithmDescriptor* d = find(id);
  if (d == nullptr) raise("unknown algorithm \"" + id + "\" (known: " + known_ids() + ")");
  return *d;
}

const AlgorithmDescriptor& AlgorithmRegistry::by_algorithm(Algorithm a) const {
  for (const AlgorithmDescriptor& e : entries_)
    if (e.algorithm == a) return e;
  raise("unknown algorithm");
}

std::string AlgorithmRegistry::known_ids() const {
  std::string out;
  for (const AlgorithmDescriptor& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.id;
  }
  return out;
}

}  // namespace indexmac::core
