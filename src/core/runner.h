// Experiment runners: measure one SpMM execution on the timing model.
//
//  * run_exact     — simulates the whole multiplication cycle by cycle.
//  * run_sampled   — simulates a row/strip-reduced replica of the problem
//    (full k depth, so cache behaviour along the k dimension is real) with
//    marker instrumentation, then extrapolates per-phase steady-state costs
//    to the full problem size. This is what makes whole-CNN sweeps
//    tractable; tests cross-validate it against run_exact.
//
// Memory-access counts (the Fig. 6 metric) are exact in both modes: the
// kernels' data accesses are fully determined by the layout (see
// kernels::predict_*_footprint), which tests verify dynamically.
#pragma once

#include <cstdint>

#include "core/spmm_problem.h"
#include "timing/timing_sim.h"

namespace indexmac::core {

/// Result of an exact (full-program) timing run.
struct ExactResult {
  timing::TimingStats stats;
  /// Total data-side memory accesses (vector + scalar instructions).
  [[nodiscard]] std::uint64_t data_accesses() const { return stats.mem.data_accesses(); }
};

/// Runs the full problem on the timing model. The problem's data content is
/// irrelevant to timing (kernels are data-independent), so callers usually
/// construct problems via SpmmProblem::random.
[[nodiscard]] ExactResult run_exact(const SpmmProblem& problem, const RunConfig& config,
                                    const timing::ProcessorConfig& processor);

/// Controls for the sampled estimator.
struct SampleParams {
  unsigned sample_rows = 16;       ///< rows of A simulated (rounded to unroll)
  unsigned sample_full_strips = 3; ///< full column strips simulated
  std::uint64_t max_instructions = 500'000'000;
};

/// Extrapolated measurement for a full problem.
struct SampledResult {
  double cycles = 0;                 ///< estimated total execution cycles
  std::uint64_t data_accesses = 0;   ///< exact (analytic) memory accesses
  timing::TimingStats sample_stats;  ///< raw stats of the miniature run
  double preload_cycles_per_ktile = 0;
  double rowgroup_cycles_per_row = 0;
};

/// Estimates cycles for (dims, sp, config) from a miniature instrumented
/// run. Only B-stationary kernels (both algorithms) are supported; the
/// dataflow ablations use run_exact on smaller layers.
[[nodiscard]] SampledResult run_sampled(const kernels::GemmDims& dims, sparse::Sparsity sp,
                                        const RunConfig& config,
                                        const timing::ProcessorConfig& processor,
                                        const SampleParams& params = SampleParams{});

}  // namespace indexmac::core
