#include "core/unstructured.h"

#include "common/error.h"
#include "sparse/packing.h"

namespace indexmac::core {

EllpackRun prepare_ellpack(const sparse::DenseMatrix<float>& a_sparse,
                           const sparse::DenseMatrix<float>& b, MainMemory& mem) {
  IMAC_CHECK(a_sparse.cols() == b.rows(), "ELLPACK SpMM: inner dimensions must match");
  const auto ell = sparse::EllpackMatrix<float>::from_dense(a_sparse);

  AddressAllocator alloc;
  const kernels::GemmDims dims{a_sparse.rows(), a_sparse.cols(), b.cols()};
  const std::size_t slots_padded = round_up(ell.slots_per_row(), isa::kVlMax);
  kernels::EllpackLayout layout = kernels::make_ellpack_layout(dims, slots_padded, alloc);

  const auto packed = sparse::pack_ellpack(
      ell, static_cast<std::uint32_t>(layout.b_pitch_elems * 4),
      isa::kVlMax);
  IMAC_ASSERT(packed.slots_padded == layout.slots_padded, "packing and layout disagree");
  mem.write_f32s(layout.a_values, packed.values);
  mem.write_i32s(layout.a_offsets, packed.offsets);
  mem.write_f32s(layout.b_base, sparse::to_padded_rows(b, layout.b_pitch_elems, dims.k));
  const std::vector<float> c_zero(dims.rows_a * layout.c_pitch_elems, 0.0f);
  mem.write_f32s(layout.c_base, c_zero);

  return EllpackRun{layout, kernels::emit_ellpack_kernel(layout)};
}

sparse::DenseMatrix<float> read_c_ellpack(const EllpackRun& run, const MainMemory& mem) {
  sparse::DenseMatrix<float> c(run.layout.dims.rows_a, run.layout.dims.cols_b);
  for (std::size_t r = 0; r < c.rows(); ++r) {
    const auto row = mem.read_f32s(run.layout.c_base + r * run.layout.c_pitch_elems * 4, c.cols());
    for (std::size_t j = 0; j < c.cols(); ++j) c.at(r, j) = row[j];
  }
  return c;
}

}  // namespace indexmac::core
