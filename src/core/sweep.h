// Declarative sweep engine: a JSON spec names workload suites and a
// RunConfig / ProcessorConfig grid; the engine expands the cross product,
// executes every unique measurement once on a BatchRunner pool (a result
// cache deduplicates repeated (shape, sparsity, config) points within and
// across sweeps), and emits stable CSV/JSON reports suitable for
// golden-file regression tests.
//
// Spec format (JSON subset, see common/json.h):
//
//   {
//     "name": "tiny-exact",
//     "workloads": ["tiny"],                      // registry suite names
//     "sparsities": ["1:4", "2:4"],               // optional: suite default
//     "algorithms": ["rowwise", "indexmac"],      // optional: both sparse
//     "unroll": [1, 4],                           // optional: [4]
//     "dataflows": ["b"],                         // optional: ["b"]
//     "tile_rows": [16],                          // optional: [16]
//     "mode": "exact",                            // or "sampled" (default)
//     "engine": "threaded",                       // optional: "interp" (default)
//     "seed": 1,                                  // exact-mode problem seed
//     "sample_rows": 16, "sample_full_strips": 3, // sampled-mode controls
//     "processor": {"vector.mac_latency": 5}      // optional overrides
//   }
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/json.h"
#include "core/batch.h"
#include "core/result_store.h"
#include "workloads/workloads.h"

namespace indexmac::core {

/// How each sweep point is measured.
enum class SweepMode {
  kExact,    ///< run_exact on a seeded random problem (cycle-accurate)
  kSampled,  ///< run_sampled extrapolation (whole-network scale)
};

[[nodiscard]] const char* sweep_mode_name(SweepMode mode);

/// A parsed, validated sweep specification.
struct SweepSpec {
  std::string name;
  std::vector<std::string> suites;
  /// Empty means "each suite's default sparsity list".
  std::vector<sparse::Sparsity> sparsities;
  std::vector<Algorithm> algorithms = {Algorithm::kRowwiseSpmm, Algorithm::kIndexmac};
  std::vector<unsigned> unrolls = {4};
  std::vector<kernels::Dataflow> dataflows = {kernels::Dataflow::kBStationary};
  std::vector<unsigned> tile_rows = {16};
  SweepMode mode = SweepMode::kSampled;
  /// Functional engine for every point. Deliberately absent from cache
  /// keys and reports: both engines produce identical measurements (see
  /// fsim/engine.h), so results are interchangeable under --resume.
  ExecEngine engine = ExecEngine::kInterp;
  std::uint32_t seed = 1;
  SampleParams sample;
  timing::ProcessorConfig processor;
};

/// Parses and validates a spec document; throws SimError on unknown keys,
/// unknown suites/algorithms, or empty grids.
[[nodiscard]] SweepSpec parse_sweep_spec(const std::string& json_text);

/// Convenience: reads `path` and parses it.
[[nodiscard]] SweepSpec parse_sweep_spec_file(const std::string& path);

/// One fully-resolved measurement of the expanded grid.
struct SweepPoint {
  std::string suite;
  std::string workload;
  unsigned count = 1;
  kernels::GemmDims dims;
  sparse::Sparsity sp;
  RunConfig config;
  SweepMode mode = SweepMode::kSampled;

  /// Canonical serialization of everything the measurement depends on
  /// (shape, sparsity, kernel config, mode, seed/sample controls, processor
  /// digest) — the result-cache key. Suite/workload names are deliberately
  /// excluded: identical shapes share one simulation.
  [[nodiscard]] std::string cache_key(const SweepSpec& spec) const;
};

/// The BatchJob measuring one expanded point — exactly the job run_sweep
/// builds, factored out so distributed workers measure leased points
/// bit-identically to a single-process sweep.
[[nodiscard]] BatchJob point_job(const SweepSpec& spec, const SweepPoint& point);

/// Cache keys of every expanded point in expansion order (each computed
/// once; the orchestrator indexes points by position and keys them here).
[[nodiscard]] std::vector<std::string> grid_keys(const SweepSpec& spec,
                                                 const std::vector<SweepPoint>& points);

/// FNV-1a digest chained over the keys in order — exactly the value
/// run_sweep records as SweepReport::spec_hash. The orchestrator and its
/// workers compare this to prove they expanded the same grid from the
/// same spec before any lease names a point by bare index.
[[nodiscard]] std::uint64_t grid_hash(const std::vector<std::string>& keys);

/// Expands the spec's cross product in deterministic report order:
/// suite -> sparsity -> workload -> algorithm -> dataflow -> unroll ->
/// tile_rows. Structurally-unsupported cells are skipped rather than
/// errored (indexmac exists only B-stationary; the dense baseline only at
/// unroll 1), so mixed ablation grids stay expressible; an all-skipped
/// grid throws.
[[nodiscard]] std::vector<SweepPoint> expand_sweep(const SweepSpec& spec);

/// A measured point.
struct SweepRow {
  SweepPoint point;
  double cycles = 0;
  std::uint64_t data_accesses = 0;
};

struct SweepReport {
  std::string spec_name;
  /// FNV-1a digest chained over every expanded cache key in expansion
  /// order: identifies the measurement sequence independent of suite or
  /// workload naming (two reports with equal hashes measured the same
  /// points in the same order with the same inputs).
  std::uint64_t spec_hash = 0;
  std::vector<SweepRow> rows;
};

/// Memoizes measurements across run_sweep calls. Thread-safe.
///
/// Optionally backed by a persistent ResultStore (attach_store): every
/// insert is then written through to the store's on-disk journal, and —
/// when preloading is requested — previously journaled measurements are
/// served from the cache without re-simulation (`imac_run sweep --store
/// DIR --resume`). Entries loaded from disk carry the journaled headline
/// metrics only; their TimingStats are default-constructed (reports never
/// read them).
class SweepCache {
 public:
  /// Returns the cached result or nullptr.
  [[nodiscard]] const BatchResult* find(const std::string& key) const;
  void insert(const std::string& key, const BatchResult& result);

  /// Attaches a persistent backing store (must outlive this cache). With
  /// `preload`, every journaled record becomes a cache entry immediately —
  /// the resume path. Without it, the store only receives write-through
  /// appends; re-measured points must then reproduce the journaled metrics
  /// exactly or ResultStore::put throws (a deterministic-simulator
  /// cross-check against model drift under a warm store).
  void attach_store(ResultStore& store, bool preload);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  /// Entries preloaded from the attached store (0 when none attached).
  [[nodiscard]] std::uint64_t store_loads() const { return store_loads_; }

 private:
  mutable std::mutex mutex_;
  std::map<std::string, BatchResult> results_;
  ResultStore* store_ = nullptr;
  mutable std::uint64_t hits_ = 0;
  mutable std::uint64_t misses_ = 0;
  std::uint64_t store_loads_ = 0;
};

/// Runs the sweep on `runner`'s pool. Duplicate points within the sweep are
/// simulated once; `cache` (optional) additionally carries results across
/// sweeps. Rows come back in expansion order regardless of thread count.
[[nodiscard]] SweepReport run_sweep(const SweepSpec& spec, BatchRunner& runner,
                                    SweepCache* cache = nullptr);

/// Same, but over an already-expanded grid (callers that expand_sweep()
/// first — e.g. to report the point count — avoid expanding twice).
/// `points` must come from expand_sweep(spec). `cancel` (optional) is the
/// graceful-interrupt hook: once it reads true, queued measurements are
/// skipped, in-flight ones finish and journal through the cache's store,
/// and run_sweep throws BatchCancelled instead of returning a report (a
/// partially-measured grid must never render as a complete one).
[[nodiscard]] SweepReport run_sweep(const SweepSpec& spec,
                                    const std::vector<SweepPoint>& points, BatchRunner& runner,
                                    SweepCache* cache = nullptr,
                                    const std::atomic<bool>* cancel = nullptr);

/// Convenience overload on a temporary pool (0 = default size).
[[nodiscard]] SweepReport run_sweep(const SweepSpec& spec, unsigned threads = 0,
                                    SweepCache* cache = nullptr);

// --- sharding and merging -------------------------------------------------

/// A 1-based shard selector: this process owns shard `index` of `count`
/// equal digest-partitions of the expanded grid.
struct ShardSpec {
  unsigned index = 1;
  unsigned count = 1;
};

/// Parses the CLI form "i/N" (1 <= i <= N <= 4096); SimError otherwise.
[[nodiscard]] ShardSpec parse_shard(const std::string& text);

/// Deterministic owner test: a point belongs to shard i/N iff
/// fnv1a(cache_key) % N == i-1. Purely a function of the key, so every
/// shard of every process partitions identically, duplicate points land on
/// one shard, and re-partitioning with a different N is safe.
[[nodiscard]] bool shard_owns(const ShardSpec& shard, const std::string& cache_key);

/// Filters an expanded grid down to the shard's points, preserving
/// expansion order. A shard may legitimately own zero points of a small
/// grid; the resulting report is then header-only.
[[nodiscard]] std::vector<SweepPoint> filter_shard(const SweepSpec& spec,
                                                   const std::vector<SweepPoint>& points,
                                                   const ShardSpec& shard);

/// Folds one shard's measurements into `merged`, keyed by canonical cache
/// key under `spec`. Throws SimError when two inputs disagree about one
/// key (no silent wrong merges).
void accumulate_results(const SweepSpec& spec, const SweepReport& shard,
                        std::map<std::string, StoredResult>& merged);
void accumulate_results(const ResultStore& store, std::map<std::string, StoredResult>& merged);

/// Reassembles the canonical single-process report of `spec` from merged
/// shard measurements: rows in expansion order, spec_hash chained exactly
/// as run_sweep computes it — so the rendered CSV/JSON is byte-identical
/// to a single-process run. Throws SimError naming the first missing
/// point when the shards do not cover the full grid.
[[nodiscard]] SweepReport assemble_report(const SweepSpec& spec,
                                          const std::map<std::string, StoredResult>& merged);

/// Stable CSV rendition: fixed header, one row per point in report order,
/// '\n' line endings, exact-mode cycles printed as integers. Byte-stable
/// across platforms/compilers for identical measurements.
[[nodiscard]] std::string report_to_csv(const SweepReport& report);

/// Stable JSON rendition of the same rows.
[[nodiscard]] std::string report_to_json(const SweepReport& report);

/// The JSON report as a document, for callers that append sections (the
/// rollup mode) before serializing. report_to_json == dump(doc) + "\n".
[[nodiscard]] JsonValue report_json_doc(const SweepReport& report);

/// Parses a CSV produced by report_to_csv (the `report` CLI subcommand and
/// round-trip tests); throws SimError on malformed input.
[[nodiscard]] SweepReport parse_csv_report(const std::string& csv);

}  // namespace indexmac::core
