// Unstructured-sparsity execution path: prepares and reads back ELLPACK
// SpMM runs (the baseline the paper's introduction contrasts structured
// sparsity against).
#pragma once

#include "asm/program.h"
#include "kernels/ellpack_kernel.h"
#include "mem/main_memory.h"
#include "sparse/dense_matrix.h"
#include "sparse/ellpack.h"

namespace indexmac::core {

/// A prepared ELLPACK multiplication.
struct EllpackRun {
  kernels::EllpackLayout layout;
  Program program;
};

/// Lays out an unstructured sparse A (any density) and dense B in `mem`
/// and emits the ELLPACK kernel.
[[nodiscard]] EllpackRun prepare_ellpack(const sparse::DenseMatrix<float>& a_sparse,
                                         const sparse::DenseMatrix<float>& b, MainMemory& mem);

/// Reads the ELLPACK result matrix back.
[[nodiscard]] sparse::DenseMatrix<float> read_c_ellpack(const EllpackRun& run,
                                                        const MainMemory& mem);

}  // namespace indexmac::core
